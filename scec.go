// Package scec is a Go implementation of Secure Coded Edge Computing: the
// jointly optimal task allocation and linear coding design of
//
//	Cao, Wang, Wang, Lu, Zhou, Jukan, Zhao — "Optimal Task Allocation and
//	Coding Design for Secure Coded Edge Computing", IEEE ICDCS 2019.
//
// The library solves the Minimum Cost Secure Coded Edge Computing (MCSCEC)
// problem for distributed matrix–vector multiplication y = A·x on untrusted
// edge devices: the confidential matrix A is linearly coded with r uniformly
// random rows, split across the cheapest subset of devices, and the user
// decodes the exact result with m subtractions, while no single
// honest-but-curious device learns any linear combination of A's rows
// (information-theoretic security).
//
// # Quick start
//
//	f := scec.PrimeField()
//	rng := rand.New(rand.NewPCG(1, 2))
//	a := scec.RandomMatrix(f, rng, 1000, 64)       // the confidential matrix
//	costs := []float64{1.3, 2.1, 0.8, 1.7, 3.0}    // per-row device costs
//
//	dep, err := scec.Deploy(f, a, costs, rng)      // allocate + encode
//	// push dep.Encoding.Blocks[j] to device j, or compute in-process:
//	y, err := dep.MulVec(x)                        // y == A·x
//
// The subsystems are individually importable through this façade:
//
//   - task allocation & lower bound (Allocate, AllocateExhaustive,
//     LowerBound, the Baseline* functions),
//   - coding design (NewScheme, Encode, Decode, VerifyScheme),
//   - the collusion-resistant extension (NewCollusionScheme),
//   - the attack harness (AuditDevice),
//   - fields and dense matrices (PrimeField, GF256Field, RealField, Matrix).
package scec

import (
	"math/rand/v2"

	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/attack"
	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// Field is the arithmetic abstraction all coding runs over. Prime (exact,
// information-theoretically secure) is the recommended default; Real exists
// for ML-style workloads and GF256 for compact byte-level coding.
type Field[E comparable] = field.Field[E]

// Matrix is a dense row-major matrix over field elements E.
type Matrix[E comparable] = matrix.Dense[E]

// Instance is a task-allocation problem: m confidential rows and the
// per-row unit cost of every candidate edge device (see UnitCost for how
// storage/compute/communication prices fold into one number).
type Instance = alloc.Instance

// Plan is a solved task allocation: the number of random rows R, the number
// of participating devices I, and each device's row count.
type Plan = alloc.Plan

// Assignment is one device's share of a Plan.
type Assignment = alloc.Assignment

// Scheme is the structured linear coding design (Eq. (8) of the paper) for
// a given (m, r): availability and per-device security hold by construction
// (Theorem 3) and decoding costs m subtractions.
type Scheme = coding.Scheme

// Code is the scheme-agnostic coding contract every engine-selectable
// design satisfies: encode/decode (vector and batch), the per-device row
// layout, the recoverability threshold K, and the security level T. The
// Eq. (8) scheme (T = 1) and the Cauchy collusion design (arbitrary T)
// both implement it; Deploy selects between them via WithCollusion, and
// WithCode accepts any implementation.
type Code[E comparable] = coding.Code[E]

// Encoding holds the per-device coded blocks B_j·T produced by Encode.
type Encoding[E comparable] = coding.Encoding[E]

// CollusionScheme is the future-work extension: a Cauchy-based design that
// stays secure when up to t devices pool their coded rows.
type CollusionScheme[E comparable] = coding.CollusionScheme[E]

// PrimeField returns arithmetic over F_p with p = 2^61 − 1, the recommended
// exact field for secure coded computing.
func PrimeField() Field[uint64] { return field.Prime{} }

// GF256Field returns arithmetic over GF(2^8) (AES polynomial).
func GF256Field() Field[byte] { return field.GF256{} }

// RealField returns float64 arithmetic with tolerance tol for comparisons
// (0 selects a default of 1e-9).
func RealField(tol float64) Field[float64] { return field.Real{Tol: tol} }

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix[E comparable](rows, cols int) *Matrix[E] { return matrix.New[E](rows, cols) }

// MatrixFromRows builds a matrix from a slice of equal-length rows.
func MatrixFromRows[E comparable](rows [][]E) *Matrix[E] { return matrix.FromRows(rows) }

// RandomMatrix returns a rows×cols matrix with i.i.d. uniform entries.
func RandomMatrix[E comparable](f Field[E], rng *rand.Rand, rows, cols int) *Matrix[E] {
	return matrix.Random(f, rng, rows, cols)
}

// RandomVector returns a length-n vector with i.i.d. uniform entries.
func RandomVector[E comparable](f Field[E], rng *rand.Rand, n int) []E {
	return matrix.RandomVec(f, rng, n)
}

// MulVec returns A·x computed locally (the plaintext reference the coded
// pipeline is checked against).
func MulVec[E comparable](f Field[E], a *Matrix[E], x []E) []E {
	return matrix.MulVec(f, a, x)
}

// Mul returns the matrix product A·X computed locally.
func Mul[E comparable](f Field[E], a, x *Matrix[E]) *Matrix[E] {
	return matrix.Mul(f, a, x)
}

// MatrixEqual reports element-wise equality under the field's comparison
// (tolerance-based for RealField).
func MatrixEqual[E comparable](f Field[E], a, b *Matrix[E]) bool {
	return matrix.Equal(f, a, b)
}

// Allocate solves the MCSCEC task-allocation problem with the O(k) TA1
// algorithm; the result is cost-optimal (Theorem 4).
func Allocate(m int, unitCosts []float64) (Plan, error) {
	return alloc.TA1(Instance{M: m, Costs: unitCosts})
}

// AllocateExhaustive solves the same problem with the O(m+k) TA2 algorithm
// (Theorem 5); it always matches Allocate's cost and exists mainly for
// cross-validation and for fleets where k ≫ m.
func AllocateExhaustive(m int, unitCosts []float64) (Plan, error) {
	return alloc.TA2(Instance{M: m, Costs: unitCosts})
}

// LowerBound returns the Theorem 1 lower bound on any secure allocation's
// cost; Allocate attains it whenever (i*−1) divides m.
func LowerBound(m int, unitCosts []float64) (float64, error) {
	return alloc.LowerBound(Instance{M: m, Costs: unitCosts})
}

// Baseline allocators from the paper's evaluation, for comparison studies.
var (
	// BaselineWithoutSecurity spreads A over the i* cheapest devices with no
	// random rows — minimum cost, zero confidentiality.
	BaselineWithoutSecurity = alloc.TAWithoutSecurity
	// BaselineMaxNode uses the smallest admissible r (widest fleet).
	BaselineMaxNode = alloc.MaxNode
	// BaselineMinNode uses r = m (the two cheapest devices only).
	BaselineMinNode = alloc.MinNode
)

// NewScheme builds the structured coding design for m data rows and r
// random rows (use the R of a Plan from Allocate).
func NewScheme(m, r int) (*Scheme, error) { return coding.New(m, r) }

// Encode runs the cloud-side pre-processing: draw r random rows and produce
// every device's coded block B_j·T.
func Encode[E comparable](f Field[E], s *Scheme, a *Matrix[E], rng *rand.Rand) (*Encoding[E], error) {
	return coding.Encode(f, s, a, rng)
}

// Decode recovers A·x from the concatenated device results with m
// subtractions.
func Decode[E comparable](f Field[E], s *Scheme, y []E) ([]E, error) {
	return coding.Decode(f, s, y)
}

// VerifyScheme re-establishes Theorem 3 for a concrete scheme over f: the
// coefficient matrix is full rank (the user can decode) and every device's
// rows intersect the data subspace trivially (no device learns anything).
func VerifyScheme[E comparable](f Field[E], s *Scheme) error {
	return coding.Verify(f, s)
}

// NewCollusionScheme builds the t-collusion-resistant extension for the
// given per-device row counts (rows must sum to m+r and any t devices may
// hold at most r rows combined). The result is a Code: pass it to Deploy
// via WithCode, or let Deploy solve the row layout itself via
// WithCollusion. See CollusionRows for a feasible uniform layout helper.
func NewCollusionScheme[E comparable](f Field[E], m, r, t int, rows []int) (*CollusionScheme[E], error) {
	return coding.NewCollusion(f, m, r, t, rows)
}

// NewStructuredCode binds the Eq. (8) scheme for (m, r) to a concrete field
// as a Code — the same design Deploy uses by default, in the form WithCode
// and the engine layers accept.
func NewStructuredCode[E comparable](f Field[E], m, r int) (Code[E], error) {
	return coding.NewStructured(f, m, r)
}

// CollusionRows returns a feasible uniform per-device row layout for the
// collusion design: w rows per device with r = t·w, so any t devices hold
// at most r rows. It returns the per-device counts and r.
func CollusionRows(m, t, w int) (rows []int, r int, err error) {
	return coding.UniformCollusionRows(m, t, w)
}

// PolyMaskScheme is the polynomial-masking (Shamir-style) comparison design
// from the paper's related work ([8]–[10]): every device stores the whole
// masked matrix, any t may collude, any t+1 responses decode. Included as
// the related-work baseline the MCSCEC cost optimization is measured
// against (see experiments' comparison table).
type PolyMaskScheme[E comparable] = coding.PolyMaskScheme[E]

// NewPolyMaskScheme builds a polynomial-masking scheme for m data rows on n
// devices with collusion/straggler threshold t.
func NewPolyMaskScheme[E comparable](f Field[E], m, t, n int) (*PolyMaskScheme[E], error) {
	return coding.NewPolyMask(f, m, t, n)
}

// AuditDevice measures how many independent linear combinations of A's rows
// a device holding the scheme's j-th coefficient block could compute; 0
// means information-theoretically blind.
func AuditDevice[E comparable](f Field[E], s *Scheme, j int) int {
	return attack.Leakage(f, coding.DeviceMatrix(f, s, j), s.M())
}

// AuditCode is AuditDevice for any Code (structured or collusion): the leak
// dimension of the j-th device's coefficient block.
func AuditCode[E comparable](f Field[E], c Code[E], j int) int {
	return attack.Leakage(f, c.DeviceCoefficients(j), c.M())
}
