# Standard developer entry points. Everything is stdlib-only Go; no
# generated code, no external tools beyond the Go toolchain.

GO ?= go

.PHONY: all build vet lint test test-short test-fault trace-demo incident-demo bench bench-json bench-check bench-transport load-check adapt-check collusion-check fuzz reproduce examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@test -z "$$(gofmt -l .)" || (gofmt -l . && echo "gofmt: files need formatting" && exit 1)

# Static analysis beyond vet. staticcheck is optional locally (CI installs
# it); the target degrades to a notice when the binary is absent.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Fault-injection suite: drives the fleet runtime through dropped, delayed,
# black-holed, and truncated replicas (plus the concurrent kill-and-repair
# stream) under the race detector.
test-fault:
	$(GO) test -race -run Fault ./internal/fleet/ ./cmd/scecnet/

# Traced end-to-end demo: a replicated loopback fleet with injected faults
# and request coalescing, exporting every trace (engine → coalescer →
# replica races → transport → device compute) to results/trace.json. See
# README §Observability for reading the waterfall and EXPERIMENTS.md for
# the per-device tail-latency recipe built on it.
trace-demo:
	$(GO) run ./cmd/scecnet fleet -m 40 -l 16 -k 6 -replicas 2 -standbys 1 \
		-inject-faults -queries 6 -coalesce-window 5ms \
		-trace-export results/trace.json

# Anomaly-triggered incident capture, end to end: a 3-device loopback fleet
# (2 coded blocks, one replica each, one warm standby) with self-repair
# disabled loses every replica of block 0 mid-stream; the adaptive control
# plane replans and rehosts the block onto the standby, and the flight-
# recorder watchdog — armed on the replan-adopt journal event — captures an
# incident bundle (goroutine + heap profiles, metrics snapshot with
# exemplars, trace rings, journal tail, adapt history) under
# results/incidents/. The committed results/incident-demo.json validates
# the bundle: the profiles parse, the journal carries the breaker-open →
# replan-adopt → rehost-ok arc, and a retained trace shows the failing
# device's span. Exits non-zero if any check fails.
incident-demo:
	$(GO) run ./cmd/scecnet fleet -m 40 -l 16 -k 2 -replicas 1 -standbys 1 \
		-queries 12 -timeout 500ms -max-retries 2 -seed 2 \
		-adaptive -replan-every 100ms -no-repair -inject-one \
		-incident-dir results/incidents \
		-watch "journal:replan-adopt>=1/60s" \
		-incident-summary results/incident-demo.json

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable pipeline micro-benchmarks (results/bench.json), so the
# performance trajectory can be tracked commit over commit.
bench-json:
	$(GO) run ./cmd/experiments -fig bench -out results

# Bench smoke guard: run the pipeline micro-benchmarks and fail on NaN or
# zero throughput (a hung or broken kernel path), then give the kernel
# dispatch layer a full (un-short) race pass — the worker pool and the
# atomic tuning knobs live in internal/matrix.
bench-check:
	$(GO) run ./cmd/experiments -fig bench -check
	$(GO) test -race ./internal/matrix/

# Transport microbench: v3 wire protocol vs the legacy gob codec — in-memory
# frame round trips, single-stream loopback RTT (ping + coded-block store),
# and 64-way multiplexed QPS on one pooled connection — merged into
# results/bench.json, with the CheckTransportBench regression guard (frame
# overhead, v3-vs-gob ratio, mux QPS floor).
bench-transport:
	$(GO) run ./cmd/experiments -fig bench-transport -check -out results

# Security-tier regression guard: sweep the collusion threshold t = 1..4
# (plus the Eq. (8) structured baseline) on one deterministic fleet, write
# the cost/latency trajectory to results/collusion.json, and fail unless
# the plan cost is monotone in t and the t = 1 Cauchy plan degenerates to
# the TA1 baseline's cost.
collusion-check:
	$(GO) run ./cmd/experiments -fig collusion -check -out results

# Heavy-traffic SLO regression guard: one open-loop, coordinated-omission-
# safe sweep of a real-socket 3-device loopback fleet plus a 1000-virtual-
# device simulation with churn, writing the latency-vs-load curves and
# saturation knees to results/load.{json,md}. The declared SLOs carry large
# slack over the observed tails (p99 ≈ 5ms / 12ms respectively), so only a
# real latency regression — not CI jitter — makes this exit non-zero.
load-check:
	$(GO) run ./cmd/scecnet load -rates 50,100,200 -step-requests 200 \
		-slo "p99<=250ms@100" \
		-sim-devices 1000 -sim-rates 500,1000,2000,4000 -sim-step-requests 2000 \
		-sim-slo "p99<=100ms@1000" \
		-out results/load.json -md results/load.md

# Closed-loop recovery guard: the deterministic virtual-clock scenario (a
# 1000-device fleet hit by a chronic 5x straggler and an 8s outage) served
# by the adaptive control plane vs a frozen baseline vs an instant-replan
# oracle. Writes results/adapt.json and fails unless the adaptive arm
# recovers to within 1.5x the oracle's steady-state p99, stays >=2x better
# than frozen, and drops zero queries — everything on the virtual clock and
# one seeded RNG, so the committed report is bit-reproducible.
adapt-check:
	$(GO) run ./cmd/scecsim -adaptive -adapt-check -adapt-out results/adapt.json

# Short fuzzing passes over every fuzz target (CI-friendly budgets).
fuzz:
	$(GO) test -fuzz FuzzPrimeArithmetic -fuzztime 10s ./internal/field/
	$(GO) test -fuzz FuzzGF256Arithmetic -fuzztime 10s ./internal/field/
	$(GO) test -fuzz FuzzTA1TA2Agreement -fuzztime 10s ./internal/alloc/
	$(GO) test -fuzz FuzzEncodeDecodeGF256 -fuzztime 10s ./internal/coding/
	$(GO) test -fuzz FuzzDecodeNeverPanics -fuzztime 10s ./internal/coding/
	$(GO) test -fuzz FuzzWireFrame -fuzztime 10s ./internal/transport/
	$(GO) test -fuzz FuzzCollusionDecode -fuzztime 10s ./internal/coding/

# Regenerate every paper artifact into results/.
reproduce:
	$(GO) run ./cmd/experiments -fig all -claims -out results
	$(GO) run ./cmd/experiments -fig rsweep -out results
	$(GO) run ./cmd/experiments -fig delay -out results
	$(GO) run ./cmd/experiments -fig comparison -out results
	$(GO) run ./cmd/experiments -fig dist -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mlinference
	$(GO) run ./examples/gradientdescent
	$(GO) run ./examples/fleetplanner
	$(GO) run ./examples/collusion
	$(GO) run ./examples/quantized

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
