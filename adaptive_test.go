package scec_test

import (
	"encoding/json"
	"math/rand/v2"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/transport"
)

// serveAdaptiveEnv provisions a real loopback fleet and serves it with the
// adaptive control plane enabled.
func serveAdaptiveEnv(t *testing.T, aCfg scec.AdaptiveConfig) (*scec.Served[uint64], []uint64, []uint64) {
	t.Helper()
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(29, 31))
	a := scec.RandomMatrix(f, rng, 40, 10)
	costs := []float64{1.1, 2.5, 0.9, 1.8}
	dep, err := scec.Deploy(f, a, costs, rng)
	if err != nil {
		t.Fatal(err)
	}

	newSrv := func() string {
		srv, err := transport.NewDeviceServer[uint64](f, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		return srv.Addr()
	}
	cfg := scec.FleetConfig{
		Replicas:      make([][]string, dep.Devices()),
		ProbeInterval: -1,
	}
	for j := range cfg.Replicas {
		cfg.Replicas[j] = []string{newSrv()}
	}
	cfg.Standbys = []string{newSrv(), newSrv()}

	s, err := scec.Serve(dep, cfg, scec.WithAdaptive[uint64](aCfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	x := scec.RandomVector(f, rng, 10)
	return s, x, scec.MulVec(f, a, x)
}

// TestServeAdaptiveEndToEnd exercises the public adaptive path: queries stay
// exact while the background control loop runs, the controller is reachable
// through the handle, and /debug/adapt serves the live snapshot.
func TestServeAdaptiveEndToEnd(t *testing.T) {
	s, x, want := serveAdaptiveEnv(t, scec.AdaptiveConfig{ReplanEvery: 10 * time.Millisecond})

	ctrl := s.Adaptive()
	if ctrl == nil {
		t.Fatal("Adaptive() = nil on a WithAdaptive handle")
	}
	check := func() {
		t.Helper()
		got, err := s.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatal("adaptive serving decoded the wrong result")
			}
		}
	}
	check()

	// The background loop must tick on its own.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if replans, _, _ := ctrl.Stats(); replans > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("control loop never ran a cycle")
		}
		time.Sleep(5 * time.Millisecond)
	}
	check()

	rec := httptest.NewRecorder()
	s.AdaptDebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/adapt", nil))
	var info struct {
		Replans    int `json:"replans"`
		Placements []struct {
			Block int    `json:"block"`
			Addr  string `json:"addr"`
		} `json:"placements"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatalf("/debug/adapt is not JSON: %v\n%s", err, rec.Body.String())
	}
	if info.Replans == 0 || len(info.Placements) != s.Devices() {
		t.Fatalf("debug snapshot incomplete: %+v (devices %d)", info, s.Devices())
	}

	// Accessors resolve through the adapter (the control loop may already
	// have migrated — e.g. reshaped onto the standbys — so assert plumbing,
	// not placement): the session is live and devices+standbys cover the
	// whole provisioned pool.
	if s.Session() == nil {
		t.Fatal("Session() = nil")
	}
	if got := s.Devices() + s.Standbys(); got > 6 || s.Devices() < 2 {
		t.Fatalf("accessors inconsistent: devices %d standbys %d over a 6-device pool", s.Devices(), s.Standbys())
	}
	rec = httptest.NewRecorder()
	s.FleetDebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/fleet", nil))
	if rec.Code != 200 {
		t.Fatalf("fleet debug handler status %d", rec.Code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent, and the loop is stopped
		t.Fatal(err)
	}
}

// TestDeployRejectsAdaptive pins that the static facade refuses the option.
func TestDeployRejectsAdaptive(t *testing.T) {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(3, 5))
	a := scec.RandomMatrix(f, rng, 10, 4)
	_, err := scec.Deploy(f, a, []float64{1, 1, 1}, rng, scec.WithAdaptive[uint64](scec.AdaptiveConfig{}))
	if err == nil || !strings.Contains(err.Error(), "WithAdaptive") {
		t.Fatalf("Deploy accepted WithAdaptive: %v", err)
	}
}

// TestAdaptDebugHandlerWithoutAdaptive pins the 404 on a plain Serve handle.
func TestAdaptDebugHandlerWithoutAdaptive(t *testing.T) {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(41, 43))
	a := scec.RandomMatrix(f, rng, 20, 5)
	dep, err := scec.Deploy(f, a, []float64{1, 1.2, 0.8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := scec.FleetConfig{Replicas: make([][]string, dep.Devices()), ProbeInterval: -1}
	for j := range cfg.Replicas {
		srv, err := transport.NewDeviceServer[uint64](f, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		cfg.Replicas[j] = []string{srv.Addr()}
	}
	s, err := scec.Serve(dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	if s.Adaptive() != nil {
		t.Fatal("Adaptive() non-nil without WithAdaptive")
	}
	rec := httptest.NewRecorder()
	s.AdaptDebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/adapt", nil))
	if rec.Code != 404 {
		t.Fatalf("status %d, want 404", rec.Code)
	}
}
