package scec_test

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/transport"
)

// queryable is the MulVec surface shared by Deployment and Served.
type queryable interface {
	MulVecContext(ctx context.Context, x []uint64) ([]uint64, error)
	MulMatContext(ctx context.Context, x *scec.Matrix[uint64]) (*scec.Matrix[uint64], error)
}

// checkCancellation exercises one backend: a pre-cancelled context must be
// refused immediately, and cancelling mid-flight under concurrent load must
// release every caller promptly with ctx.Err().
func checkCancellation(t *testing.T, q queryable, l int) {
	t.Helper()
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(3, 3))
	x := scec.RandomVector(f, rng, l)
	xm := scec.RandomMatrix(f, rng, l, 2)

	// Pre-cancelled context: both query shapes refuse without dispatching.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.MulVecContext(pre, x); !errors.Is(err, context.Canceled) {
		t.Fatalf("MulVecContext with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := q.MulMatContext(pre, xm); !errors.Is(err, context.Canceled) {
		t.Fatalf("MulMatContext with cancelled ctx: err = %v, want context.Canceled", err)
	}

	// Mid-flight cancellation under concurrent load: workers hammer the
	// backend until ctx ends; every worker must return promptly after cancel.
	ctx, cancel := context.WithCancel(context.Background())
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				var err error
				if w%2 == 0 {
					_, err = q.MulVecContext(ctx, x)
				} else {
					_, err = q.MulMatContext(ctx, xm)
				}
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond) // let the load build
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("workers did not return within 5s of cancellation")
	}
	for w, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("worker %d: err = %v, want context.Canceled", w, err)
		}
	}
}

func deployBackend(t *testing.T, opts ...scec.DeployOption[uint64]) (*scec.Deployment[uint64], int) {
	t.Helper()
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(29, 31))
	const m, l = 40, 10
	a := scec.RandomMatrix(f, rng, m, l)
	dep, err := scec.Deploy(f, a, []float64{1.1, 2.5, 0.9, 1.8}, rng, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dep.Close() })
	return dep, l
}

func TestCancellationLocalBackend(t *testing.T) {
	dep, l := deployBackend(t)
	checkCancellation(t, dep, l)
}

func TestCancellationLocalBackendCoalescing(t *testing.T) {
	// Coalesced waiters park on a channel; cancellation must release them
	// without waiting out the window or the round.
	dep, l := deployBackend(t, scec.WithCoalescing[uint64](time.Millisecond, 8))
	checkCancellation(t, dep, l)
}

func TestCancellationSimBackend(t *testing.T) {
	dep, l := deployBackend(t, scec.WithExecutor(scec.SimExecutor[uint64](scec.SimExecutorConfig{})))
	checkCancellation(t, dep, l)
}

func TestCancellationFleetBackend(t *testing.T) {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(37, 41))
	const m, l = 40, 10
	a := scec.RandomMatrix(f, rng, m, l)
	dep, err := scec.Deploy(f, a, []float64{1.1, 2.5, 0.9, 1.8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := scec.FleetConfig{
		Replicas:      make([][]string, dep.Devices()),
		ProbeInterval: -1,
	}
	for j := range cfg.Replicas {
		srv, err := transport.NewDeviceServer[uint64](f, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		cfg.Replicas[j] = []string{srv.Addr()}
	}
	s, err := scec.Serve(dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	checkCancellation(t, s, l)
}
