package scec

import (
	"time"

	"github.com/scec/scec/internal/adapt"
	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/engine"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/sim"
)

// Executor is the pluggable execution substrate behind every deployment
// facade: it evaluates the coded compute round (B·T·x, and B·T·X for
// batches) over some backend — in-process kernels, the virtual-clock
// simulator, or the fault-tolerant TCP fleet. See internal/engine.
type Executor[E comparable] = engine.Executor[E]

// ExecutorBackend constructs an Executor for a freshly encoded deployment.
// Pass one to a facade with WithExecutor to choose the execution substrate.
type ExecutorBackend[E comparable] = engine.Backend[E]

// SimProfile models one simulated edge device's performance (compute rate,
// link rates, latency, straggling, failure probability).
type SimProfile = sim.DeviceProfile

// DefaultSimProfile is a nominal simulated edge device.
func DefaultSimProfile() SimProfile { return sim.DefaultProfile() }

// SimExecutorConfig configures a simulator-backed executor: per-device
// profiles, the user's decode rate, the failure-sampling seed, and the
// registry receiving virtual-clock telemetry.
type SimExecutorConfig = engine.SimConfig

// FleetExecutorConfig configures a fleet-backed executor: the fleet session
// policy plus an optional Provision hook that supplies replica addresses
// once the deployment's block count is known (chunked deployments provision
// one fleet per chunk through it).
type FleetExecutorConfig = engine.FleetConfig

// LocalExecutor returns the default backend: the in-process
// field-specialized kernels. Facades use it when no WithExecutor option is
// given.
func LocalExecutor[E comparable]() ExecutorBackend[E] {
	return engine.LocalBackend[E](nil)
}

// SimExecutor returns a backend that evaluates queries on internal/sim's
// virtual clock: results are computed by the same coding code paths as the
// local backend while device timelines follow cfg's profiles. Retrieve the
// per-round report via the deployment's Executor() — it is a
// *engine.SimExecutor.
func SimExecutor[E comparable](cfg SimExecutorConfig) ExecutorBackend[E] {
	return engine.SimBackend[E](cfg)
}

// FleetExecutor returns a backend that serves queries from the replicated,
// hedged, self-repairing device fleet described by cfg.
func FleetExecutor[E comparable](cfg FleetExecutorConfig) ExecutorBackend[E] {
	return engine.FleetBackend[E](cfg)
}

// deployConfig collects the facade options shared by Deploy, DeployChunked,
// and DeployQuantized.
type deployConfig[E comparable] struct {
	backend    engine.Backend[E]
	opts       engine.Options
	adaptive   *adapt.Config  // non-nil when WithAdaptive was given (Serve only)
	collusionT int            // > 0 when WithCollusion selected the Cauchy tier
	code       coding.Code[E] // non-nil when WithCode supplied a prebuilt code
}

// DeployOption customizes how a deployment executes queries.
type DeployOption[E comparable] func(*deployConfig[E])

// WithExecutor selects the execution backend for a deployment's queries.
// The default is LocalExecutor.
func WithExecutor[E comparable](b ExecutorBackend[E]) DeployOption[E] {
	return func(c *deployConfig[E]) { c.backend = b }
}

// WithCoalescing enables adaptive request coalescing on the deployment's
// query engine: concurrent MulVec callers arriving within the window (up to
// maxBatch of them; 0 means the engine default) merge into one batch round
// and each receives its own decoded column. The type parameter matches the
// deployment's element type, e.g. scec.WithCoalescing[uint64](2*time.Millisecond, 8).
func WithCoalescing[E comparable](window time.Duration, maxBatch int) DeployOption[E] {
	return func(c *deployConfig[E]) {
		c.opts.CoalesceWindow = window
		c.opts.CoalesceMaxBatch = maxBatch
	}
}

// WithEngineMetrics routes the deployment engine's dispatch counters and
// coalescing histogram (and the local backend's stage spans) to reg instead
// of the process-default registry.
func WithEngineMetrics[E comparable](reg *obs.Registry) DeployOption[E] {
	return func(c *deployConfig[E]) { c.opts.Metrics = reg }
}

// AdaptiveConfig tunes the closed-loop adaptive control plane enabled by
// WithAdaptive: the control period, the EWMA cost-learning parameters, the
// hysteresis margin and cooldown, and the migration timeout. The zero value
// selects sensible defaults for every field. See internal/adapt.Config.
type AdaptiveConfig = adapt.Config

// AdaptiveController is the running control loop behind an adaptive Served
// handle: it learns per-device costs from winning-attempt latencies and
// heartbeat RTTs, periodically re-runs the paper's TA2 allocation on the
// learned costs, and migrates coded blocks live when a re-plan clears the
// hysteresis margin. See internal/adapt.Controller.
type AdaptiveController = adapt.Controller

// WithCollusion selects the t-collusion security tier for a deployment: the
// allocation is solved with the coalition-aware TACollusion sweep and the
// matrix is encoded under the Cauchy-masked design of NewCollusionScheme, so
// any coalition of up to t honest-but-curious devices learns nothing about
// A. t = 1 deploys the Cauchy design at the classic threat model (useful for
// cross-checking the tiers); the default Eq. (8) scheme remains the cheaper
// choice there, with its m-subtraction decode.
func WithCollusion[E comparable](t int) DeployOption[E] {
	return func(c *deployConfig[E]) { c.collusionT = t }
}

// WithCode deploys a caller-constructed coding design instead of solving the
// allocation: the code fixes (m, r, per-device rows), coded block j is
// assigned to the j-th cheapest device, and the plan is reported with
// algorithm "custom". Use it to deploy a CollusionScheme with a hand-tuned
// row layout, or any future Code implementation, through the same facade.
func WithCode[E comparable](code coding.Code[E]) DeployOption[E] {
	return func(c *deployConfig[E]) { c.code = code }
}

// WithAdaptive enables the closed-loop adaptive control plane on a Serve
// deployment: a background controller learns per-device costs from the
// fleet's own query traffic, re-plans with TA2, and rehosts or reshapes the
// deployment live — without failing a single query. Only Serve accepts it;
// Deploy's static backends have nothing to adapt.
func WithAdaptive[E comparable](cfg AdaptiveConfig) DeployOption[E] {
	return func(c *deployConfig[E]) { c.adaptive = &cfg }
}

// newDeployConfig applies opts over the local-backend default.
func newDeployConfig[E comparable](opts []DeployOption[E]) deployConfig[E] {
	cfg := deployConfig[E]{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.backend == nil {
		cfg.backend = engine.LocalBackend[E](cfg.opts.Metrics)
	}
	return cfg
}

// Provisioned is the interface every deployment facade satisfies:
// Deployment, ChunkedDeployment, and QuantizedDeployment all expose the
// plan cost, fleet size, security audit, and engine lifecycle the same way.
type Provisioned interface {
	// Cost is the plan's variable provisioning cost.
	Cost() float64
	// Devices is the number of participating edge devices.
	Devices() int
	// Audit returns per-device leak dimensions (all zero when sound).
	Audit() []int
	// Close releases the execution engine (and any fleet it owns).
	Close() error
}

var (
	_ Provisioned = (*Deployment[uint64])(nil)
	_ Provisioned = (*ChunkedDeployment[uint64])(nil)
	_ Provisioned = (*QuantizedDeployment)(nil)
)
