module github.com/scec/scec

go 1.24
