package scec

import (
	"io"
	"net/http"

	"github.com/scec/scec/internal/obs"
)

// Runtime telemetry. Every layer of the stack — Deploy/MulVec stage spans,
// the TCP transport's RPC counters and latency histograms, and the
// simulator's virtual-clock stage timings — records into one process-wide
// registry. These accessors surface it without exposing the internal
// package; the README's Observability section documents every metric name.

// MetricsHandler returns the runtime-introspection handler bundle for the
// process-wide telemetry registry: /metrics (Prometheus text exposition),
// /metrics.json (JSON snapshot), /healthz, /debug/vars (expvar), and
// /debug/pprof/*. Mount it on any mux or serve it directly.
func MetricsHandler() http.Handler { return obs.Default().Handler() }

// WriteMetrics renders the process-wide registry in the Prometheus text
// exposition format.
func WriteMetrics(w io.Writer) error { return obs.Default().WritePrometheus(w) }

// WriteMetricsJSON renders a JSON snapshot of the process-wide registry.
func WriteMetricsJSON(w io.Writer) error { return obs.Default().WriteJSON(w) }

// WriteStageTable renders a human-readable table of the pipeline stage
// timings (allocate, encode, store, compute, gather, decode) recorded so
// far; it prints nothing when no stage has run.
func WriteStageTable(w io.Writer) error { return obs.WriteStageTable(w, nil) }

// Tails is the interpolated p50/p95/p99 summary of one latency histogram,
// in seconds.
type Tails = obs.Tails

// StageTails returns the tail-latency summary of every pipeline stage that
// has recorded at least one observation in the process-wide registry, keyed
// by stage name (allocate, encode, store, compute, gather, decode).
func StageTails() map[string]Tails { return obs.StageTails(nil) }

// ServeMetrics starts serving MetricsHandler on addr ("127.0.0.1:0" picks
// an ephemeral port) in a background goroutine and returns the bound
// address plus a closer that stops the server.
func ServeMetrics(addr string) (string, io.Closer, error) {
	srv, err := obs.StartServer(nil, addr)
	if err != nil {
		return "", nil, err
	}
	return srv.Addr(), srv, nil
}
