package scec

import (
	"math"
	"testing"
)

func TestDeployQuantizedEndToEnd(t *testing.T) {
	rng := testRNG()
	fR := RealField(0)
	a := RandomMatrix(fR, rng, 30, 12) // standard normals
	costs := []float64{1.5, 0.8, 2.2, 1.1}

	dep, err := DeployQuantized(a, 16, 8, costs, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The underlying deployment is audited like any other.
	for j, leak := range dep.Audit() {
		if leak != 0 {
			t.Fatalf("device %d leaks %d dimensions", j, leak)
		}
	}

	x := RandomVector(fR, rng, 12)
	got, err := dep.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	want := MulVec(fR, a, x)
	for i := range got {
		// 12 accumulated products, each with ~2^-17 operand error.
		if math.Abs(got[i]-want[i]) > 12*8.0/65536 {
			t.Fatalf("entry %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestDeployQuantizedMulMat(t *testing.T) {
	rng := testRNG()
	fR := RealField(0)
	a := RandomMatrix(fR, rng, 15, 8)
	costs := []float64{1.5, 0.8, 2.2}

	dep, err := DeployQuantized(a, 16, 8, costs, rng)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if dep.Devices() <= 0 {
		t.Fatal("quantized deployment reports no devices")
	}
	const n = 3
	x := NewMatrix[float64](8, n)
	for i := 0; i < 8; i++ {
		for j := 0; j < n; j++ {
			x.Set(i, j, fR.Rand(rng))
		}
	}
	got, err := dep.MulMat(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		col := make([]float64, 8)
		for i := range col {
			col[i] = x.At(i, j)
		}
		want := MulVec(fR, a, col)
		for i := range want {
			if math.Abs(got.At(i, j)-want[i]) > 8*8.0/65536 {
				t.Fatalf("entry (%d,%d): %g vs %g", i, j, got.At(i, j), want[i])
			}
		}
	}
	if _, err := dep.MulMat(NewMatrix[float64](9, 2)); err == nil {
		t.Error("wrong input height should be rejected")
	}
	big := NewMatrix[float64](8, 1)
	big.Set(0, 0, 1e12)
	if _, err := dep.MulMat(big); err == nil {
		t.Error("out-of-range batch input should be rejected at query time")
	}
}

func TestDeployQuantizedValidation(t *testing.T) {
	rng := testRNG()
	fR := RealField(0)
	a := RandomMatrix(fR, rng, 5, 3)

	if _, err := DeployQuantized(a, 0, 1, []float64{1, 2}, rng); err == nil {
		t.Error("invalid fracBits should be rejected")
	}
	// Precision so high the dot products overflow 61 bits.
	if _, err := DeployQuantized(a, 28, 1e9, []float64{1, 2}, rng); err == nil {
		t.Error("overflowing workload should be rejected")
	}
	dep, err := DeployQuantized(a, 16, 4, []float64{1, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.MulVec([]float64{1, 2}); err == nil {
		t.Error("wrong input length should be rejected")
	}
	if _, err := dep.MulVec([]float64{1e12, 0, 0}); err == nil {
		t.Error("out-of-range input should be rejected at query time")
	}
}
