package scec

import (
	"context"
	"errors"
	"math/rand/v2"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/scec/scec/internal/adapt"
	"github.com/scec/scec/internal/engine"
	"github.com/scec/scec/internal/fleet"
)

// FleetConfig tunes a fault-tolerant serving session: the replica topology
// (which device addresses host copies of each coded block, plus warm
// standbys), the hedging/retry/deadline policy, and the health-probe and
// circuit-breaker parameters. See internal/fleet.Config for field docs.
type FleetConfig = fleet.Config

// Session is the raw fault-tolerant fleet runtime for one deployment: it
// races each block's replicas per query, hedges stragglers, retries with
// backoff, quarantines dead devices behind circuit breakers, and re-pushes
// blocks to standbys in the background when a replica set degrades. Serve
// wraps one in the engine's query layer; use Served.Session for direct
// access.
type Session[E comparable] = fleet.Session[E]

// ErrBlockUnavailable reports that a query exhausted every replica, hedge,
// and retry for some coded block; test with errors.Is. The concrete error is
// a *BlockUnavailableError carrying the block index.
var ErrBlockUnavailable = fleet.ErrBlockUnavailable

// BlockUnavailableError is the typed per-block failure a Session query
// returns when no replica of one coded block could serve it in time.
type BlockUnavailableError = fleet.BlockUnavailableError

// Served is a live serving handle: the engine's query layer (validation,
// dispatch counters, optional request coalescing, decode) over a
// fault-tolerant fleet session. With WithAdaptive the handle additionally
// runs the closed-loop control plane, and the session underneath may be
// replaced live by a reshape — the accessors always reflect the current one.
type Served[E comparable] struct {
	q *engine.Query[E]
	s *fleet.Session[E]

	// Adaptive-only state (nil without WithAdaptive).
	adapter *adapt.FleetAdapter[E]
	ctrl    *adapt.Controller
}

// session resolves the fleet session currently serving queries: the adapter's
// view when the control plane may have reshaped it, the provisioning-time
// session otherwise.
func (v *Served[E]) session() *fleet.Session[E] {
	if v.adapter != nil {
		return v.adapter.Session()
	}
	return v.s
}

// Serve provisions dep's coded blocks onto the replicated device fleet
// described by cfg and returns a Served handle answering MulVec/MulMat
// queries with per-query fault tolerance. Options tune the engine layer
// (e.g. WithCoalescing); WithExecutor is rejected, since Serve's backend is
// by definition the given fleet.
//
// Replicating a block does not weaken the paper's Definition 2 security:
// every replica of block j stores exactly B_j·T, the per-device view already
// proven to leak no linear combination of A's rows (Theorem 3). Close the
// Served handle when done; the device servers themselves belong to the
// caller.
func Serve[E comparable](dep *Deployment[E], cfg FleetConfig, opts ...DeployOption[E]) (*Served[E], error) {
	c := deployConfig[E]{}
	for _, o := range opts {
		o(&c)
	}
	if c.backend != nil {
		return nil, errors.New("scec: Serve executes over the given fleet; WithExecutor is not applicable")
	}
	// One WithTracing (or one FleetConfig.Tracer) is enough: engine and
	// fleet layers share whichever tracer was provided.
	if c.opts.Tracer == nil {
		c.opts.Tracer = cfg.Tracer
	}
	if cfg.Tracer == nil {
		cfg.Tracer = c.opts.Tracer
	}
	if c.adaptive == nil {
		s, err := fleet.Serve(dep.F, dep.Encoding, cfg)
		if err != nil {
			return nil, err
		}
		q, err := engine.New(dep.F, dep.Encoding, engine.WrapSession(s, true), c.opts)
		if err != nil {
			_ = s.Close()
			return nil, err
		}
		return &Served[E]{q: q, s: s}, nil
	}
	return serveAdaptive(dep, cfg, c)
}

// serveAdaptive builds the adaptive serving stack: the fleet session feeds
// winning-attempt latencies into the controller through OnWin, the engine
// runs over a swappable executor so a reshape can replace the whole session
// behind a drain, and the controller closes the loop on a background ticker.
func serveAdaptive[E comparable](dep *Deployment[E], cfg FleetConfig, c deployConfig[E]) (*Served[E], error) {
	aCfg := *c.adaptive
	if aCfg.Tracer == nil {
		aCfg.Tracer = cfg.Tracer
	}
	if aCfg.Metrics == nil {
		aCfg.Metrics = cfg.Metrics
	}

	// The controller does not exist yet when the session starts serving, so
	// OnWin routes through an atomic pointer; a caller-provided OnWin still
	// sees every win.
	var ctrl atomic.Pointer[adapt.Controller]
	userOnWin := cfg.OnWin
	cfg.OnWin = func(device string, block int, latency time.Duration) {
		if cc := ctrl.Load(); cc != nil {
			cc.ObserveWin(device, block, latency)
		}
		if userOnWin != nil {
			userOnWin(device, block, latency)
		}
	}

	s, err := fleet.Serve(dep.F, dep.Encoding, cfg)
	if err != nil {
		return nil, err
	}
	sw, err := engine.NewSwappable[E](engine.WrapSession(s, true), dep.Code)
	if err != nil {
		_ = s.Close()
		return nil, err
	}
	q, err := engine.New(dep.F, dep.Encoding, sw, c.opts)
	if err != nil {
		_ = sw.Close()
		return nil, err
	}
	adapter, err := adapt.NewFleetAdapter(dep.F, dep.Encoding, s, sw, cfg, rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())))
	if err != nil {
		_ = q.Close()
		return nil, err
	}
	controller, err := adapt.New(aCfg, adapter)
	if err != nil {
		_ = q.Close()
		return nil, err
	}
	ctrl.Store(controller)
	controller.Start()
	return &Served[E]{q: q, s: s, adapter: adapter, ctrl: controller}, nil
}

// MulVec computes A·x through the fleet (coalescing concurrent callers into
// batch rounds when enabled).
func (v *Served[E]) MulVec(x []E) ([]E, error) {
	return v.MulVecContext(context.Background(), x)
}

// MulVecContext is MulVec bounded by ctx: cancelling it cancels the
// in-flight replica races. A span carried in ctx continues into the fleet's
// trace.
func (v *Served[E]) MulVecContext(ctx context.Context, x []E) ([]E, error) {
	y, err := v.q.MulVecContext(ctx, x)
	if err != nil {
		return nil, wrapEngineErr(err)
	}
	return y, nil
}

// MulMat computes A·X for an l×n input matrix through the fleet.
func (v *Served[E]) MulMat(x *Matrix[E]) (*Matrix[E], error) {
	return v.MulMatContext(context.Background(), x)
}

// MulMatContext is MulMat bounded by ctx; see MulVecContext.
func (v *Served[E]) MulMatContext(ctx context.Context, x *Matrix[E]) (*Matrix[E], error) {
	y, err := v.q.MulMatContext(ctx, x)
	if err != nil {
		return nil, wrapEngineErr(err)
	}
	return y, nil
}

// LoadTarget adapts the handle into a load-generator target: each call is
// one MulVec of x under the generator's per-request context. The input is
// captured by reference; do not mutate it while a run is in flight.
func (v *Served[E]) LoadTarget(x []E) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		_, err := v.MulVecContext(ctx, x)
		return err
	}
}

// Devices returns the number of logical coded blocks served. Under
// WithAdaptive this tracks the current plan: a reshape to a different r
// changes it.
func (v *Served[E]) Devices() int { return v.session().Devices() }

// Standbys returns how many warm standby devices remain unused.
func (v *Served[E]) Standbys() int { return v.session().Standbys() }

// ReplicaCount returns how many replicas currently serve block j.
func (v *Served[E]) ReplicaCount(j int) int { return v.session().ReplicaCount(j) }

// Session exposes the underlying fleet runtime. Under WithAdaptive it is the
// session currently serving queries — a reshape replaces it, so do not cache
// the pointer across control cycles.
func (v *Served[E]) Session() *Session[E] { return v.session() }

// Adaptive returns the running control loop, or nil when the handle was not
// served WithAdaptive.
func (v *Served[E]) Adaptive() *AdaptiveController { return v.ctrl }

// EngineDebugHandler serves the engine's dispatch/coalescing snapshot
// (mount as /debug/engine); FleetDebugHandler serves the fleet's breaker,
// replica-health, standby, and straggler snapshot (mount as /debug/fleet).
func (v *Served[E]) EngineDebugHandler() http.Handler { return v.q.DebugHandler() }

// FleetDebugHandler serves the fleet session's live runtime snapshot. Under
// WithAdaptive the handler resolves the current session per request, so it
// stays correct across reshapes.
func (v *Served[E]) FleetDebugHandler() http.Handler {
	if v.adapter == nil {
		return v.s.DebugHandler()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v.session().DebugHandler().ServeHTTP(w, r)
	})
}

// AdaptDebugHandler serves the adaptive control plane's live snapshot
// (learned factors, plan decisions, migration events); mount as /debug/adapt.
// Without WithAdaptive it reports 404.
func (v *Served[E]) AdaptDebugHandler() http.Handler {
	if v.ctrl == nil {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "adaptive control plane not enabled; serve with WithAdaptive", http.StatusNotFound)
		})
	}
	return v.ctrl.DebugHandler()
}

// Close stops the adaptive control loop (in-flight migrations finish first),
// flushes the query engine, and shuts the fleet session down. Safe to call
// more than once.
func (v *Served[E]) Close() error {
	if v.ctrl != nil {
		v.ctrl.Stop()
	}
	return v.q.Close()
}
