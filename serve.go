package scec

import (
	"context"
	"errors"
	"net/http"

	"github.com/scec/scec/internal/engine"
	"github.com/scec/scec/internal/fleet"
)

// FleetConfig tunes a fault-tolerant serving session: the replica topology
// (which device addresses host copies of each coded block, plus warm
// standbys), the hedging/retry/deadline policy, and the health-probe and
// circuit-breaker parameters. See internal/fleet.Config for field docs.
type FleetConfig = fleet.Config

// Session is the raw fault-tolerant fleet runtime for one deployment: it
// races each block's replicas per query, hedges stragglers, retries with
// backoff, quarantines dead devices behind circuit breakers, and re-pushes
// blocks to standbys in the background when a replica set degrades. Serve
// wraps one in the engine's query layer; use Served.Session for direct
// access.
type Session[E comparable] = fleet.Session[E]

// ErrBlockUnavailable reports that a query exhausted every replica, hedge,
// and retry for some coded block; test with errors.Is. The concrete error is
// a *BlockUnavailableError carrying the block index.
var ErrBlockUnavailable = fleet.ErrBlockUnavailable

// BlockUnavailableError is the typed per-block failure a Session query
// returns when no replica of one coded block could serve it in time.
type BlockUnavailableError = fleet.BlockUnavailableError

// Served is a live serving handle: the engine's query layer (validation,
// dispatch counters, optional request coalescing, decode) over a
// fault-tolerant fleet session.
type Served[E comparable] struct {
	q *engine.Query[E]
	s *fleet.Session[E]
}

// Serve provisions dep's coded blocks onto the replicated device fleet
// described by cfg and returns a Served handle answering MulVec/MulMat
// queries with per-query fault tolerance. Options tune the engine layer
// (e.g. WithCoalescing); WithExecutor is rejected, since Serve's backend is
// by definition the given fleet.
//
// Replicating a block does not weaken the paper's Definition 2 security:
// every replica of block j stores exactly B_j·T, the per-device view already
// proven to leak no linear combination of A's rows (Theorem 3). Close the
// Served handle when done; the device servers themselves belong to the
// caller.
func Serve[E comparable](dep *Deployment[E], cfg FleetConfig, opts ...DeployOption[E]) (*Served[E], error) {
	c := deployConfig[E]{}
	for _, o := range opts {
		o(&c)
	}
	if c.backend != nil {
		return nil, errors.New("scec: Serve executes over the given fleet; WithExecutor is not applicable")
	}
	// One WithTracing (or one FleetConfig.Tracer) is enough: engine and
	// fleet layers share whichever tracer was provided.
	if c.opts.Tracer == nil {
		c.opts.Tracer = cfg.Tracer
	}
	if cfg.Tracer == nil {
		cfg.Tracer = c.opts.Tracer
	}
	s, err := fleet.Serve(dep.F, dep.Scheme, dep.Encoding, cfg)
	if err != nil {
		return nil, err
	}
	q, err := engine.New(dep.F, dep.Encoding, engine.WrapSession(s, true), c.opts)
	if err != nil {
		_ = s.Close()
		return nil, err
	}
	return &Served[E]{q: q, s: s}, nil
}

// MulVec computes A·x through the fleet (coalescing concurrent callers into
// batch rounds when enabled).
func (v *Served[E]) MulVec(x []E) ([]E, error) {
	return v.MulVecContext(context.Background(), x)
}

// MulVecContext is MulVec bounded by ctx: cancelling it cancels the
// in-flight replica races. A span carried in ctx continues into the fleet's
// trace.
func (v *Served[E]) MulVecContext(ctx context.Context, x []E) ([]E, error) {
	y, err := v.q.MulVecContext(ctx, x)
	if err != nil {
		return nil, wrapEngineErr(err)
	}
	return y, nil
}

// MulMat computes A·X for an l×n input matrix through the fleet.
func (v *Served[E]) MulMat(x *Matrix[E]) (*Matrix[E], error) {
	return v.MulMatContext(context.Background(), x)
}

// MulMatContext is MulMat bounded by ctx; see MulVecContext.
func (v *Served[E]) MulMatContext(ctx context.Context, x *Matrix[E]) (*Matrix[E], error) {
	y, err := v.q.MulMatContext(ctx, x)
	if err != nil {
		return nil, wrapEngineErr(err)
	}
	return y, nil
}

// LoadTarget adapts the handle into a load-generator target: each call is
// one MulVec of x under the generator's per-request context. The input is
// captured by reference; do not mutate it while a run is in flight.
func (v *Served[E]) LoadTarget(x []E) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		_, err := v.MulVecContext(ctx, x)
		return err
	}
}

// Devices returns the number of logical coded blocks served.
func (v *Served[E]) Devices() int { return v.s.Devices() }

// Standbys returns how many warm standby devices remain unused.
func (v *Served[E]) Standbys() int { return v.s.Standbys() }

// ReplicaCount returns how many replicas currently serve block j.
func (v *Served[E]) ReplicaCount(j int) int { return v.s.ReplicaCount(j) }

// Session exposes the underlying fleet runtime.
func (v *Served[E]) Session() *Session[E] { return v.s }

// EngineDebugHandler serves the engine's dispatch/coalescing snapshot
// (mount as /debug/engine); FleetDebugHandler serves the fleet's breaker,
// replica-health, standby, and straggler snapshot (mount as /debug/fleet).
func (v *Served[E]) EngineDebugHandler() http.Handler { return v.q.DebugHandler() }

// FleetDebugHandler serves the fleet session's live runtime snapshot.
func (v *Served[E]) FleetDebugHandler() http.Handler { return v.s.DebugHandler() }

// Close flushes the query engine and shuts the fleet session down. Safe to
// call more than once.
func (v *Served[E]) Close() error { return v.q.Close() }
