package scec

import (
	"github.com/scec/scec/internal/fleet"
)

// FleetConfig tunes a fault-tolerant serving session: the replica topology
// (which device addresses host copies of each coded block, plus warm
// standbys), the hedging/retry/deadline policy, and the health-probe and
// circuit-breaker parameters. See internal/fleet.Config for field docs.
type FleetConfig = fleet.Config

// Session is a live fault-tolerant serving runtime for one deployment: it
// races each block's replicas per query, hedges stragglers, retries with
// backoff, quarantines dead devices behind circuit breakers, and re-pushes
// blocks to standbys in the background when a replica set degrades.
type Session[E comparable] = fleet.Session[E]

// ErrBlockUnavailable reports that a query exhausted every replica, hedge,
// and retry for some coded block; test with errors.Is. The concrete error is
// a *BlockUnavailableError carrying the block index.
var ErrBlockUnavailable = fleet.ErrBlockUnavailable

// BlockUnavailableError is the typed per-block failure a Session query
// returns when no replica of one coded block could serve it in time.
type BlockUnavailableError = fleet.BlockUnavailableError

// Serve provisions dep's coded blocks onto the replicated device fleet
// described by cfg and returns a Session serving MulVec/MulMat queries with
// per-query fault tolerance.
//
// Replicating a block does not weaken the paper's Definition 2 security:
// every replica of block j stores exactly B_j·T, the per-device view already
// proven to leak no linear combination of A's rows (Theorem 3). Close the
// Session when done; the device servers themselves belong to the caller.
func Serve[E comparable](dep *Deployment[E], cfg FleetConfig) (*Session[E], error) {
	return fleet.Serve(dep.F, dep.Scheme, dep.Encoding, cfg)
}
