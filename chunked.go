package scec

import (
	"fmt"
	"math/rand/v2"

	"github.com/scec/scec/internal/matrix"
)

// ChunkedDeployment splits a wide confidential matrix column-wise into
// independently deployed chunks: A = [A_1 | A_2 | … | A_c] and
// A·x = Σ_b A_b·x_b. Each chunk is its own MCSCEC deployment (allocation,
// coding, random rows), so security holds chunk-wise for the same threat
// model, and the user sums the decoded partial products.
//
// Chunking matters in two situations:
//
//   - quantized workloads, where the fixed-point overflow bound scales with
//     the dot-product length l — halving the chunk width doubles the usable
//     precision (see quant.CheckMatVec), and
//   - very wide matrices, where per-device storage of full-width coded rows
//     exceeds device capacity.
type ChunkedDeployment[E comparable] struct {
	f      Field[E]
	chunks []*Deployment[E]
	widths []int
	l      int
}

// DeployChunked deploys a column-wise split of a with chunk width at most
// chunkCols. Every chunk runs the full MCSCEC pipeline on the same fleet.
func DeployChunked[E comparable](f Field[E], a *Matrix[E], chunkCols int, unitCosts []float64, rng *rand.Rand) (*ChunkedDeployment[E], error) {
	if chunkCols < 1 {
		return nil, fmt.Errorf("scec: chunk width %d, need >= 1", chunkCols)
	}
	if a.Cols() < 1 {
		return nil, fmt.Errorf("scec: matrix has no columns")
	}
	cd := &ChunkedDeployment[E]{f: f, l: a.Cols()}
	for from := 0; from < a.Cols(); from += chunkCols {
		to := from + chunkCols
		if to > a.Cols() {
			to = a.Cols()
		}
		block := matrix.RowSliceCols(a, from, to)
		dep, err := Deploy(f, block, unitCosts, rng)
		if err != nil {
			return nil, fmt.Errorf("scec: chunk [%d,%d): %w", from, to, err)
		}
		cd.chunks = append(cd.chunks, dep)
		cd.widths = append(cd.widths, to-from)
	}
	return cd, nil
}

// Chunks returns the number of column chunks.
func (d *ChunkedDeployment[E]) Chunks() int { return len(d.chunks) }

// Cost returns the summed variable cost of all chunk deployments.
func (d *ChunkedDeployment[E]) Cost() float64 {
	total := 0.0
	for _, c := range d.chunks {
		total += c.Cost()
	}
	return total
}

// Audit aggregates the per-device leak dimensions across every chunk (all
// zeros for the sound construction).
func (d *ChunkedDeployment[E]) Audit() []int {
	var leaks []int
	for _, c := range d.chunks {
		leaks = append(leaks, c.Audit()...)
	}
	return leaks
}

// MulVec computes A·x by summing the decoded partial products of every
// chunk.
func (d *ChunkedDeployment[E]) MulVec(x []E) ([]E, error) {
	if len(x) != d.l {
		return nil, fmt.Errorf("scec: input vector has %d entries, want %d", len(x), d.l)
	}
	var acc []E
	at := 0
	for i, c := range d.chunks {
		part, err := c.MulVec(x[at : at+d.widths[i]])
		if err != nil {
			return nil, fmt.Errorf("scec: chunk %d: %w", i, err)
		}
		at += d.widths[i]
		if acc == nil {
			acc = part
			continue
		}
		for p := range acc {
			acc[p] = d.f.Add(acc[p], part[p])
		}
	}
	return acc, nil
}
