package scec

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"

	"github.com/scec/scec/internal/matrix"
)

// ChunkedDeployment splits a wide confidential matrix column-wise into
// independently deployed chunks: A = [A_1 | A_2 | … | A_c] and
// A·x = Σ_b A_b·x_b. Each chunk is its own MCSCEC deployment (allocation,
// coding, random rows), so security holds chunk-wise for the same threat
// model, and the user sums the decoded partial products.
//
// Chunking matters in two situations:
//
//   - quantized workloads, where the fixed-point overflow bound scales with
//     the dot-product length l — halving the chunk width doubles the usable
//     precision (see quant.CheckMatVec), and
//   - very wide matrices, where per-device storage of full-width coded rows
//     exceeds device capacity.
type ChunkedDeployment[E comparable] struct {
	f      Field[E]
	chunks []*Deployment[E]
	widths []int
	l      int
}

// DeployChunked deploys a column-wise split of a with chunk width at most
// chunkCols. Every chunk runs the full MCSCEC pipeline on the same fleet,
// and the per-chunk deployments (allocation, coding design, encoding,
// executor binding) run concurrently. Each chunk encodes from its own RNG
// stream seeded deterministically from rng, so results are reproducible for
// a given seed regardless of scheduling. Options apply to every chunk; a
// FleetExecutor backend should provision through its Provision hook, which
// is invoked once per chunk.
func DeployChunked[E comparable](f Field[E], a *Matrix[E], chunkCols int, unitCosts []float64, rng *rand.Rand, opts ...DeployOption[E]) (*ChunkedDeployment[E], error) {
	if chunkCols < 1 {
		return nil, fmt.Errorf("scec: chunk width %d, need >= 1", chunkCols)
	}
	if a.Cols() < 1 {
		return nil, fmt.Errorf("scec: matrix has no columns")
	}
	cd := &ChunkedDeployment[E]{f: f, l: a.Cols()}
	type span struct {
		from, to     int
		seed1, seed2 uint64
	}
	var spans []span
	for from := 0; from < a.Cols(); from += chunkCols {
		to := from + chunkCols
		if to > a.Cols() {
			to = a.Cols()
		}
		// Seeds are drawn sequentially here so the parallel deploys below
		// each own an independent, deterministic stream.
		spans = append(spans, span{from, to, rng.Uint64(), rng.Uint64()})
		cd.widths = append(cd.widths, to-from)
	}
	cd.chunks = make([]*Deployment[E], len(spans))
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for i, sp := range spans {
		wg.Add(1)
		go func() {
			defer wg.Done()
			block := matrix.RowSliceCols(a, sp.from, sp.to)
			chunkRng := rand.New(rand.NewPCG(sp.seed1, sp.seed2))
			dep, err := Deploy(f, block, unitCosts, chunkRng, opts...)
			if err != nil {
				errs[i] = fmt.Errorf("scec: chunk [%d,%d): %w", sp.from, sp.to, err)
				return
			}
			cd.chunks[i] = dep
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// First error wins; release the chunks that did deploy.
			_ = cd.Close()
			return nil, err
		}
	}
	return cd, nil
}

// Chunks returns the number of column chunks.
func (d *ChunkedDeployment[E]) Chunks() int { return len(d.chunks) }

// Cost returns the summed variable cost of all chunk deployments.
func (d *ChunkedDeployment[E]) Cost() float64 {
	total := 0.0
	for _, c := range d.chunks {
		total += c.Cost()
	}
	return total
}

// Devices returns the total device count across every chunk deployment
// (chunks allocate independently, so the same physical fleet may serve
// several logical slots).
func (d *ChunkedDeployment[E]) Devices() int {
	total := 0
	for _, c := range d.chunks {
		total += c.Devices()
	}
	return total
}

// Audit aggregates the per-device leak dimensions across every chunk (all
// zeros for the sound construction).
func (d *ChunkedDeployment[E]) Audit() []int {
	var leaks []int
	for _, c := range d.chunks {
		leaks = append(leaks, c.Audit()...)
	}
	return leaks
}

// Close releases every chunk's execution engine.
func (d *ChunkedDeployment[E]) Close() error {
	var errs []error
	for i, c := range d.chunks {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil {
			errs = append(errs, fmt.Errorf("scec: chunk %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// MulVec computes A·x by querying every chunk concurrently with its slice
// of x and summing the decoded partial products.
func (d *ChunkedDeployment[E]) MulVec(x []E) ([]E, error) {
	return d.MulVecContext(context.Background(), x)
}

// MulVecContext is MulVec bounded by ctx; each chunk's query runs under it
// (and under its trace span, when one is carried), so one chunked query
// yields one trace with a query span per chunk.
func (d *ChunkedDeployment[E]) MulVecContext(ctx context.Context, x []E) ([]E, error) {
	if len(x) != d.l {
		return nil, fmt.Errorf("scec: input vector has %d entries, want %d", len(x), d.l)
	}
	parts := make([][]E, len(d.chunks))
	err := d.fanOut(func(i, from, to int) error {
		part, err := d.chunks[i].MulVecContext(ctx, x[from:to])
		parts[i] = part
		return err
	})
	if err != nil {
		return nil, err
	}
	acc := parts[0]
	for _, part := range parts[1:] {
		for p := range acc {
			acc[p] = d.f.Add(acc[p], part[p])
		}
	}
	return acc, nil
}

// MulMat computes A·X for an l×n input matrix by querying every chunk
// concurrently with its row slice of X and summing the partial products.
func (d *ChunkedDeployment[E]) MulMat(x *Matrix[E]) (*Matrix[E], error) {
	return d.MulMatContext(context.Background(), x)
}

// MulMatContext is MulMat bounded by ctx; see MulVecContext.
func (d *ChunkedDeployment[E]) MulMatContext(ctx context.Context, x *Matrix[E]) (*Matrix[E], error) {
	if x.Rows() != d.l {
		return nil, fmt.Errorf("scec: input matrix has %d rows, want %d", x.Rows(), d.l)
	}
	parts := make([]*Matrix[E], len(d.chunks))
	err := d.fanOut(func(i, from, to int) error {
		part, err := d.chunks[i].MulMatContext(ctx, matrix.RowSlice(x, from, to))
		parts[i] = part
		return err
	})
	if err != nil {
		return nil, err
	}
	acc := parts[0]
	for _, part := range parts[1:] {
		acc = matrix.Add(d.f, acc, part)
	}
	return acc, nil
}

// fanOut runs fn concurrently for every chunk with its column range in x;
// the first error (in chunk order) wins.
func (d *ChunkedDeployment[E]) fanOut(fn func(i, from, to int) error) error {
	errs := make([]error, len(d.chunks))
	var wg sync.WaitGroup
	at := 0
	for i := range d.chunks {
		from, to := at, at+d.widths[i]
		at = to
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(i, from, to); err != nil {
				errs[i] = fmt.Errorf("scec: chunk %d: %w", i, err)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
