package main

import (
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/loadgen"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/flight"
	"github.com/scec/scec/internal/obs/trace"
	"github.com/scec/scec/internal/transport"
)

// startFullDebugServer stands up a Served adaptive fleet with every debug
// surface the binary can mount — fleet, engine, adapt, traces, SLO, journal,
// incidents — on one telemetry server, and returns its base URL.
func startFullDebugServer(t *testing.T) (string, []obs.Route) {
	t.Helper()
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(7, 9))
	a := scec.RandomMatrix(f, rng, 20, 6)
	dep, err := scec.Deploy(f, a, []float64{1, 2, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })

	tr := trace.New(trace.Options{Service: "debug-test"})
	cfg := scec.FleetConfig{
		Replicas:   make([][]string, dep.Devices()),
		RPCTimeout: 2 * time.Second,
		Tracer:     tr,
	}
	for j := range cfg.Replicas {
		srv, err := transport.NewDeviceServerOptions[uint64](f, "127.0.0.1:0", transport.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		cfg.Replicas[j] = []string{srv.Addr()}
	}
	served, err := scec.Serve(dep, cfg,
		scec.WithTracing[uint64](tr),
		scec.WithAdaptive[uint64](scec.AdaptiveConfig{ReplanEvery: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { served.Close() })
	if _, err := served.MulVec(scec.RandomVector(f, rng, 6)); err != nil {
		t.Fatal(err)
	}

	// One captured incident so /debug/incidents has content to serve.
	incidentDir := t.TempDir()
	jr := flight.Default()
	jr.Publish(flight.KindShed, "debug-test", 1, 0)
	wd, err := flight.NewWatchdog(flight.Config{
		Dir:   incidentDir,
		Rules: mustRules(t, "journal:shed>=1/10m"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wd.Capture("manual", "debug header sweep"); err != nil {
		t.Fatal(err)
	}

	col := loadgen.NewCollector()
	routes := append([]obs.Route{}, traceRoutes(tr, served.Session().Stragglers())...)
	routes = append(routes,
		obs.Route{Pattern: "/debug/fleet", Handler: served.FleetDebugHandler(), Desc: "fleet snapshot"},
		obs.Route{Pattern: "/debug/engine", Handler: served.EngineDebugHandler(), Desc: "engine snapshot"},
		obs.Route{Pattern: "/debug/adapt", Handler: served.AdaptDebugHandler(), Desc: "adapt snapshot"},
		obs.Route{Pattern: "/debug/slo", Handler: col.DebugHandler(), Desc: "SLO snapshot"},
	)
	routes = append(routes, flight.Routes(jr, incidentDir)...)
	srv, err := obs.StartServer(nil, "127.0.0.1:0", routes...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return "http://" + srv.Addr(), routes
}

func mustRules(t *testing.T, csv string) []flight.Rule {
	t.Helper()
	rules, err := flight.ParseRules(csv)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

// TestDebugHeaderSweep table-drives every mounted JSON debug route and
// asserts the response contract: 200, application/json, and no-store — no
// stale snapshots out of intermediary caches, no content sniffing.
func TestDebugHeaderSweep(t *testing.T) {
	base, _ := startFullDebugServer(t)
	jsonRoutes := []string{
		"/debug",
		"/debug/fleet",
		"/debug/engine",
		"/debug/adapt",
		"/debug/slo",
		"/debug/traces",
		"/debug/journal",
		"/debug/incidents",
		"/debug/vars",
		"/metrics.json",
		"/healthz",
	}
	for _, route := range jsonRoutes {
		t.Run(route, func(t *testing.T) {
			resp, err := http.Get(base + route)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
				t.Errorf("Cache-Control = %q, want no-store", cc)
			}
			if !json.Valid(body) {
				t.Errorf("body is not valid JSON: %.120s", body)
			}
		})
	}

	// The text-format metrics endpoint must also refuse caching.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("/metrics Cache-Control = %q, want no-store", cc)
	}
}

// TestDebugIndexListsAllRoutes asserts the /debug index enumerates every
// mounted route, each with a description.
func TestDebugIndexListsAllRoutes(t *testing.T) {
	base, extra := startFullDebugServer(t)
	resp, err := http.Get(base + "/debug")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var index struct {
		Routes []obs.RouteInfo `json:"routes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&index); err != nil {
		t.Fatal(err)
	}
	listed := map[string]string{}
	for _, r := range index.Routes {
		listed[r.Pattern] = r.Desc
	}
	// Every extra route mounted on the server plus the builtin bundle.
	want := []string{"/debug", "/metrics", "/metrics.json", "/healthz", "/debug/vars", "/debug/pprof/"}
	for _, r := range extra {
		want = append(want, r.Pattern)
	}
	for _, pattern := range want {
		desc, ok := listed[pattern]
		if !ok {
			t.Errorf("/debug index missing %s (have %v)", pattern, listed)
			continue
		}
		if desc == "" {
			t.Errorf("route %s listed without a description", pattern)
		}
	}
}

// TestDebugSnapshotSubcommand pulls a full snapshot from the live server via
// the CLI and checks the manifest plus a couple of pulled artifacts.
func TestDebugSnapshotSubcommand(t *testing.T) {
	base, _ := startFullDebugServer(t)
	addr := strings.TrimPrefix(base, "http://")
	dir := filepath.Join(t.TempDir(), "snap")
	var out strings.Builder
	if err := run([]string{"debug", "snapshot", "-addr", addr, "-out", dir}, &out); err != nil {
		t.Fatalf("snapshot failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"snapshot.json", "metrics.json", "debug-journal.json", "debug-fleet.json", "goroutines.txt"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("snapshot missing %s: %v", want, err)
		}
	}
	var manifest struct {
		Routes []struct {
			Pattern string `json:"pattern"`
			Err     string `json:"err"`
		} `json:"routes"`
	}
	b, err := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &manifest); err != nil {
		t.Fatal(err)
	}
	if len(manifest.Routes) == 0 {
		t.Fatal("manifest lists no routes")
	}
	for _, r := range manifest.Routes {
		if r.Err != "" {
			t.Errorf("route %s failed during snapshot: %s", r.Pattern, r.Err)
		}
	}

	if err := run([]string{"debug"}, io.Discard); err == nil {
		t.Error("bare `debug` must error with usage")
	}
	if err := run([]string{"debug", "snapshot"}, io.Discard); err == nil {
		t.Error("snapshot without -addr must error")
	}
}
