package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFleetIncidentDemo runs the full incident pipeline the Makefile's
// incident-demo target ships: a fleet with one replica per block, a full
// outage of block 0, adaptive rehost as the only recovery path, and the
// flight-recorder watchdog capturing + validating one bundle.
func TestFleetIncidentDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end incident capture")
	}
	dir := t.TempDir()
	summary := filepath.Join(dir, "incident-demo.json")
	var out strings.Builder
	args := []string{"fleet", "-m", "30", "-l", "8", "-k", "2", "-replicas", "1", "-standbys", "1",
		"-queries", "8", "-timeout", "500ms", "-max-retries", "2", "-seed", "2",
		"-adaptive", "-replan-every", "100ms", "-no-repair", "-inject-one",
		"-incident-dir", filepath.Join(dir, "incidents"),
		"-watch", "journal:replan-adopt>=1/60s",
		"-incident-summary", summary,
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("incident demo failed: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"flight recorder armed",
		"injected outage: killed all 1 replica(s) of block 0",
		"block 0 recovered: post-outage query verified exactly",
		"flight recorder: 1 incident bundle(s)",
		"incident summary written to",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	b, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	var s incidentSummary
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if !s.OK {
		t.Fatalf("summary reports an incomplete bundle: %+v", s.Checks)
	}
	if s.JournalEvents["breaker-open"] == 0 || s.JournalEvents["replan-adopt"] == 0 || s.JournalEvents["rehost-ok"] == 0 {
		t.Fatalf("journal events missing the outage→recovery arc: %v", s.JournalEvents)
	}
}

// TestFleetIncidentFlagValidation covers the flag interlocks the incident
// demo relies on.
func TestFleetIncidentFlagValidation(t *testing.T) {
	cases := [][]string{
		{"fleet", "-backend", "local", "-inject-one"},
		{"fleet", "-inject-one", "-inject-faults"},
		{"fleet", "-inject-one", "-coalesce-window", "5ms"},
		{"fleet", "-incident-summary", "x.json"},
		{"fleet", "-incident-dir", "/tmp/x", "-watch", "journal:bogus>=1/10s", "-m", "10", "-l", "4", "-k", "2", "-queries", "0"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("%v unexpectedly succeeded", args)
		}
	}
}
