// Command scecnet runs the SCEC protocol over real TCP connections.
//
// Roles:
//
//	scecnet device -addr 127.0.0.1:7001
//	    run one edge device (stores a coded block, answers compute requests)
//
//	scecnet drive -devices 127.0.0.1:7001,127.0.0.1:7002,... -m 100 -l 32
//	    act as cloud + user against a running fleet: allocate, encode,
//	    distribute the blocks, send x, gather, decode, verify
//
//	scecnet demo -m 100 -l 32 -k 8
//	    start an ephemeral loopback fleet in-process and drive it end to end
//
//	scecnet fleet -m 100 -l 32 -replicas 2 -standbys 1 -inject-faults
//	    start a replicated loopback fleet, stream queries through the
//	    fault-tolerant session, and (optionally) kill one replica of every
//	    coded block mid-stream to watch failover and self-repair
//
//	scecnet debug snapshot -addr 127.0.0.1:9090 -out DIR
//	    pull every debug/metrics route a running scecnet process serves
//	    (discovered from its /debug index) into a local directory for
//	    offline triage — metrics, journal, traces, incidents, goroutines
//
//	scecnet load -rates 50,100,200 -slo p99<=250ms@100
//	    heavy-traffic SLO harness: open-loop, coordinated-omission-safe
//	    offered-load sweeps against a 3-device real-socket fleet and a
//	    thousand-device virtual-clock simulation with churn, writing the
//	    latency-vs-load curves, saturation knees, and SLO verdicts to
//	    results/load.json + load.md (non-zero exit on any SLO violation);
//	    -metrics-addr adds a live /debug/slo route
//
// Every role accepts -metrics-addr to serve the telemetry bundle
// (/metrics, /metrics.json, /healthz, /debug/pprof/*, /debug/vars) while it
// runs; drive and demo print a per-stage timing table on completion, and
// device/drive accept -timeout to override the 10s round-trip bound.
//
// Tracing: drive, demo, and fleet accept -trace-export FILE to record one
// distributed trace per query (engine, coalescer, fleet racing/hedging,
// transport round trips, and device-side compute spans stitched under one
// trace ID) and write the JSON export on completion; with -metrics-addr the
// live traces are also served at /debug/traces and /debug/traces/{id}, and
// the fleet role adds /debug/fleet and /debug/engine. A device started with
// -trace records server-side spans and returns them to traced clients.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
	"github.com/scec/scec/internal/transport"
	"github.com/scec/scec/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scecnet:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: scecnet <device|drive|demo|fleet|load|debug> [flags]")
	}
	switch args[0] {
	case "device":
		return runDevice(args[1:], out)
	case "drive":
		return runDrive(args[1:], out)
	case "demo":
		return runDemo(args[1:], out)
	case "fleet":
		return runFleet(args[1:], out)
	case "load":
		return runLoad(args[1:], out)
	case "debug":
		return runDebug(args[1:], out)
	default:
		return fmt.Errorf("unknown role %q (want device, drive, demo, fleet, load, or debug)", args[0])
	}
}

// startMetrics serves the telemetry bundle on addr when non-empty, with any
// extra debug routes mounted on the same mux; the returned closer is nil
// when no server was requested.
func startMetrics(out io.Writer, addr string, extra ...obs.Route) (io.Closer, error) {
	if addr == "" {
		return nil, nil
	}
	srv, err := obs.StartServer(nil, addr, extra...)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "serving telemetry on http://%s/metrics (also /healthz, /debug/pprof/, /debug/vars)\n", srv.Addr())
	return srv, nil
}

// traceRoutes mounts the tracer's waterfall endpoints; an is optional.
func traceRoutes(t *trace.Tracer, an *trace.Stragglers) []obs.Route {
	h := trace.DebugHandler(t, an)
	return []obs.Route{
		{Pattern: "/debug/traces", Handler: h, Desc: "retained distributed traces, most recent first"},
		{Pattern: "/debug/traces/{id}", Handler: h, Desc: "one trace's span waterfall by trace ID"},
	}
}

// exportTraces writes the tracer's retained traces to path on completion.
func exportTraces(out io.Writer, t *trace.Tracer, path string) error {
	if t == nil || path == "" {
		return nil
	}
	if err := t.WriteFile(path); err != nil {
		return fmt.Errorf("trace export: %w", err)
	}
	_, _, _, retained := t.Stats()
	fmt.Fprintf(out, "exported %d retained spans to %s\n", retained, path)
	return nil
}

// protoFlag registers the wire-protocol selector shared by every role that
// dials devices (servers answer both protocols unconditionally).
func protoFlag(fs *flag.FlagSet) *string {
	return fs.String("proto", "auto", "wire protocol: auto (negotiate v3, fall back to gob), v3, or gob")
}

// writeStageTable prints the per-stage timing table when any stage ran.
func writeStageTable(out io.Writer) error {
	fmt.Fprintln(out, "stage timings:")
	return obs.WriteStageTable(out, nil)
}

func runDevice(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scecnet device", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:0", "listen address")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /healthz, and /debug endpoints on this address")
		timeout     = fs.Duration("timeout", transport.DefaultTimeout, "per-request exchange bound")
		traced      = fs.Bool("trace", false, "record server-side spans, return them to traced clients, and serve /debug/traces")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The signal context drives both the telemetry server's graceful
	// shutdown and the main wait.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var tr *trace.Tracer
	var routes []obs.Route
	if *traced {
		tr = trace.New(trace.Options{Service: "scecnet-device"})
		routes = traceRoutes(tr, nil)
	}
	if *metricsAddr != "" {
		srv, err := obs.StartServerContext(ctx, nil, *metricsAddr, routes...)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "serving telemetry on http://%s/metrics (also /healthz, /debug/pprof/, /debug/vars)\n", srv.Addr())
	}
	srv, err := transport.NewDeviceServerOptions[uint64](scec.PrimeField(), *addr, transport.Options{Timeout: *timeout, Tracer: tr})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "edge device listening on %s (ctrl-c to stop)\n", srv.Addr())
	<-ctx.Done()
	return srv.Close()
}

func runDrive(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scecnet drive", flag.ContinueOnError)
	var (
		devices     = fs.String("devices", "", "comma-separated device addresses, cheapest first")
		m           = fs.Int("m", 100, "rows of the confidential matrix A")
		l           = fs.Int("l", 32, "columns of A")
		t           = fs.Int("t", 1, "collusion threshold: t >= 2 deploys the Cauchy-masked coding tier secure against t colluding devices")
		batch       = fs.Int("batch", 0, "additionally verify a batch A·X with this many columns")
		seed        = fs.Uint64("seed", 1, "random seed")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /healthz, and /debug endpoints on this address")
		timeout     = fs.Duration("timeout", transport.DefaultTimeout, "per-round-trip bound for store and compute requests")
		traceFile   = fs.String("trace-export", "", "record a distributed trace per query and write the JSON export here on completion")
		protoName   = protoFlag(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, err := transport.ParseProto(*protoName)
	if err != nil {
		return err
	}
	addrs := splitAddrs(*devices)
	if len(addrs) < 2 {
		return fmt.Errorf("need at least two device addresses, got %d", len(addrs))
	}
	var tr *trace.Tracer
	var routes []obs.Route
	if *traceFile != "" {
		tr = trace.New(trace.Options{Service: "scecnet-drive"})
		routes = traceRoutes(tr, nil)
	}
	ms, err := startMetrics(out, *metricsAddr, routes...)
	if err != nil {
		return err
	}
	if ms != nil {
		defer ms.Close()
	}
	if err := drive(out, addrs, *m, *l, *batch, *t, *seed, *timeout, proto, tr); err != nil {
		return err
	}
	return exportTraces(out, tr, *traceFile)
}

func runDemo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scecnet demo", flag.ContinueOnError)
	var (
		m           = fs.Int("m", 100, "rows of the confidential matrix A")
		l           = fs.Int("l", 32, "columns of A")
		k           = fs.Int("k", 8, "devices to launch on loopback")
		t           = fs.Int("t", 1, "collusion threshold: t >= 2 deploys the Cauchy-masked coding tier secure against t colluding devices")
		batch       = fs.Int("batch", 4, "additionally verify a batch A·X with this many columns")
		seed        = fs.Uint64("seed", 1, "random seed")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /healthz, and /debug endpoints on this address")
		timeout     = fs.Duration("timeout", transport.DefaultTimeout, "per-round-trip bound for store and compute requests")
		traceFile   = fs.String("trace-export", "", "record a distributed trace per query and write the JSON export here on completion")
		protoName   = protoFlag(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, err := transport.ParseProto(*protoName)
	if err != nil {
		return err
	}
	var tr, devTr *trace.Tracer
	var routes []obs.Route
	if *traceFile != "" {
		tr = trace.New(trace.Options{Service: "scecnet-demo"})
		// The loopback devices get their own tracer so the demo exercises
		// the real cross-process span adoption path.
		devTr = trace.New(trace.Options{Service: "scecnet-device"})
		routes = traceRoutes(tr, nil)
	}
	ms, err := startMetrics(out, *metricsAddr, routes...)
	if err != nil {
		return err
	}
	if ms != nil {
		defer ms.Close()
	}
	f := scec.PrimeField()
	addrs := make([]string, *k)
	for j := 0; j < *k; j++ {
		srv, err := transport.NewDeviceServerOptions[uint64](f, "127.0.0.1:0", transport.Options{Timeout: *timeout, Tracer: devTr})
		if err != nil {
			return err
		}
		defer srv.Close()
		addrs[j] = srv.Addr()
	}
	fmt.Fprintf(out, "launched %d loopback devices\n", *k)
	if err := drive(out, addrs, *m, *l, *batch, *t, *seed, *timeout, proto, tr); err != nil {
		return err
	}
	return exportTraces(out, tr, *traceFile)
}

// drive plays cloud + user against a running fleet: the fleet's unit costs
// are sampled (a real deployment would read device price sheets), the
// cheapest plan.I devices are provisioned, and one multiplication is
// verified end to end. Completion prints the per-stage timing table. A
// non-nil tracer roots one trace per query; the transport layer carries it
// to the devices and adopts their server-side spans back.
func drive(out io.Writer, addrs []string, m, l, batch, t int, seed uint64, timeout time.Duration, proto transport.Proto, tr *trace.Tracer) error {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(seed, 0xd21fe))
	in := workload.Instance(rng, m, len(addrs), workload.Uniform{Max: 5})

	a := scec.RandomMatrix(f, rng, m, l)
	var opts []scec.DeployOption[uint64]
	if t >= 2 {
		opts = append(opts, scec.WithCollusion[uint64](t))
	}
	dep, err := scec.Deploy(f, a, in.Costs, rng, opts...)
	if err != nil {
		return err
	}
	// The plan's assignments are cheapest-first device indexes into addrs.
	selected := make([]string, dep.Devices())
	for j, as := range dep.Plan.Assignments {
		selected[j] = addrs[as.Device]
	}
	fmt.Fprintf(out, "plan: %s r=%d t=%d, %d of %d devices selected, cost %.2f\n",
		dep.Plan.Algorithm, dep.Plan.R, dep.Code.T(), dep.Devices(), len(addrs), dep.Cost())

	if err := (transport.Cloud[uint64]{Timeout: timeout, Proto: proto}).Distribute(context.Background(), selected, dep.Encoding); err != nil {
		return fmt.Errorf("distribute: %w", err)
	}
	fmt.Fprintf(out, "cloud distributed %d coded rows across the fleet\n", m+dep.Plan.R)

	client := transport.Client[uint64]{F: f, Code: dep.Code, Timeout: timeout, Proto: proto}
	x := scec.RandomVector(f, rng, l)
	vctx, vsp := tr.StartRoot(context.Background(), trace.SpanQueryVec, trace.A(trace.AttrKind, "vec"))
	got, err := client.MulVec(vctx, selected, x)
	vsp.SetError(err)
	vsp.End()
	if err != nil {
		return fmt.Errorf("gather: %w", err)
	}
	want := scec.MulVec(f, a, x)
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("verification failed at entry %d", i)
		}
	}
	fmt.Fprintf(out, "user decoded A·x over TCP and verified all %d entries\n", len(got))

	if batch > 0 {
		xm := scec.RandomMatrix(f, rng, l, batch)
		mctx, msp := tr.StartRoot(context.Background(), trace.SpanQueryMat, trace.A(trace.AttrKind, "mat"))
		gotM, err := client.MulMat(mctx, selected, xm)
		msp.SetError(err)
		msp.End()
		if err != nil {
			return fmt.Errorf("batch gather: %w", err)
		}
		if !scec.MatrixEqual(f, gotM, scec.Mul(f, a, xm)) {
			return fmt.Errorf("batch verification failed")
		}
		fmt.Fprintf(out, "user decoded the batch A·X (%d columns) over TCP and verified it\n", batch)
	}
	return writeStageTable(out)
}

func splitAddrs(csv string) []string {
	var addrs []string
	for _, a := range strings.Split(csv, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}
