// Command scecnet runs the SCEC protocol over real TCP connections.
//
// Roles:
//
//	scecnet device -addr 127.0.0.1:7001
//	    run one edge device (stores a coded block, answers compute requests)
//
//	scecnet drive -devices 127.0.0.1:7001,127.0.0.1:7002,... -m 100 -l 32
//	    act as cloud + user against a running fleet: allocate, encode,
//	    distribute the blocks, send x, gather, decode, verify
//
//	scecnet demo -m 100 -l 32 -k 8
//	    start an ephemeral loopback fleet in-process and drive it end to end
//
//	scecnet fleet -m 100 -l 32 -replicas 2 -standbys 1 -inject-faults
//	    start a replicated loopback fleet, stream queries through the
//	    fault-tolerant session, and (optionally) kill one replica of every
//	    coded block mid-stream to watch failover and self-repair
//
// Every role accepts -metrics-addr to serve the telemetry bundle
// (/metrics, /metrics.json, /healthz, /debug/pprof/*, /debug/vars) while it
// runs; drive and demo print a per-stage timing table on completion, and
// device/drive accept -timeout to override the 10s round-trip bound.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/transport"
	"github.com/scec/scec/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scecnet:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: scecnet <device|drive|demo|fleet> [flags]")
	}
	switch args[0] {
	case "device":
		return runDevice(args[1:], out)
	case "drive":
		return runDrive(args[1:], out)
	case "demo":
		return runDemo(args[1:], out)
	case "fleet":
		return runFleet(args[1:], out)
	default:
		return fmt.Errorf("unknown role %q (want device, drive, demo, or fleet)", args[0])
	}
}

// startMetrics serves the telemetry bundle on addr when non-empty; the
// returned closer is nil when no server was requested.
func startMetrics(out io.Writer, addr string) (io.Closer, error) {
	if addr == "" {
		return nil, nil
	}
	srv, err := obs.StartServer(nil, addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "serving telemetry on http://%s/metrics (also /healthz, /debug/pprof/, /debug/vars)\n", srv.Addr())
	return srv, nil
}

// writeStageTable prints the per-stage timing table when any stage ran.
func writeStageTable(out io.Writer) error {
	fmt.Fprintln(out, "stage timings:")
	return obs.WriteStageTable(out, nil)
}

func runDevice(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scecnet device", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:0", "listen address")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /healthz, and /debug endpoints on this address")
		timeout     = fs.Duration("timeout", transport.DefaultTimeout, "per-request exchange bound")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ms, err := startMetrics(out, *metricsAddr)
	if err != nil {
		return err
	}
	if ms != nil {
		defer ms.Close()
	}
	srv, err := transport.NewDeviceServerOptions[uint64](scec.PrimeField(), *addr, transport.Options{Timeout: *timeout})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "edge device listening on %s (ctrl-c to stop)\n", srv.Addr())
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	return srv.Close()
}

func runDrive(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scecnet drive", flag.ContinueOnError)
	var (
		devices     = fs.String("devices", "", "comma-separated device addresses, cheapest first")
		m           = fs.Int("m", 100, "rows of the confidential matrix A")
		l           = fs.Int("l", 32, "columns of A")
		batch       = fs.Int("batch", 0, "additionally verify a batch A·X with this many columns")
		seed        = fs.Uint64("seed", 1, "random seed")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /healthz, and /debug endpoints on this address")
		timeout     = fs.Duration("timeout", transport.DefaultTimeout, "per-round-trip bound for store and compute requests")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := splitAddrs(*devices)
	if len(addrs) < 2 {
		return fmt.Errorf("need at least two device addresses, got %d", len(addrs))
	}
	ms, err := startMetrics(out, *metricsAddr)
	if err != nil {
		return err
	}
	if ms != nil {
		defer ms.Close()
	}
	return drive(out, addrs, *m, *l, *batch, *seed, *timeout)
}

func runDemo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scecnet demo", flag.ContinueOnError)
	var (
		m           = fs.Int("m", 100, "rows of the confidential matrix A")
		l           = fs.Int("l", 32, "columns of A")
		k           = fs.Int("k", 8, "devices to launch on loopback")
		batch       = fs.Int("batch", 4, "additionally verify a batch A·X with this many columns")
		seed        = fs.Uint64("seed", 1, "random seed")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /healthz, and /debug endpoints on this address")
		timeout     = fs.Duration("timeout", transport.DefaultTimeout, "per-round-trip bound for store and compute requests")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ms, err := startMetrics(out, *metricsAddr)
	if err != nil {
		return err
	}
	if ms != nil {
		defer ms.Close()
	}
	f := scec.PrimeField()
	addrs := make([]string, *k)
	for j := 0; j < *k; j++ {
		srv, err := transport.NewDeviceServerOptions[uint64](f, "127.0.0.1:0", transport.Options{Timeout: *timeout})
		if err != nil {
			return err
		}
		defer srv.Close()
		addrs[j] = srv.Addr()
	}
	fmt.Fprintf(out, "launched %d loopback devices\n", *k)
	return drive(out, addrs, *m, *l, *batch, *seed, *timeout)
}

// drive plays cloud + user against a running fleet: the fleet's unit costs
// are sampled (a real deployment would read device price sheets), the
// cheapest plan.I devices are provisioned, and one multiplication is
// verified end to end. Completion prints the per-stage timing table.
func drive(out io.Writer, addrs []string, m, l, batch int, seed uint64, timeout time.Duration) error {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(seed, 0xd21fe))
	in := workload.Instance(rng, m, len(addrs), workload.Uniform{Max: 5})

	a := scec.RandomMatrix(f, rng, m, l)
	dep, err := scec.Deploy(f, a, in.Costs, rng)
	if err != nil {
		return err
	}
	// The plan's assignments are cheapest-first device indexes into addrs.
	selected := make([]string, dep.Devices())
	for j, as := range dep.Plan.Assignments {
		selected[j] = addrs[as.Device]
	}
	fmt.Fprintf(out, "plan: r=%d, %d of %d devices selected, cost %.2f\n",
		dep.Plan.R, dep.Devices(), len(addrs), dep.Cost())

	if err := (transport.Cloud[uint64]{Timeout: timeout}).Distribute(context.Background(), selected, dep.Encoding); err != nil {
		return fmt.Errorf("distribute: %w", err)
	}
	fmt.Fprintf(out, "cloud distributed %d coded rows across the fleet\n", m+dep.Plan.R)

	client := transport.Client[uint64]{F: f, Scheme: dep.Scheme, Timeout: timeout}
	x := scec.RandomVector(f, rng, l)
	got, err := client.MulVec(context.Background(), selected, x)
	if err != nil {
		return fmt.Errorf("gather: %w", err)
	}
	want := scec.MulVec(f, a, x)
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("verification failed at entry %d", i)
		}
	}
	fmt.Fprintf(out, "user decoded A·x over TCP and verified all %d entries\n", len(got))

	if batch > 0 {
		xm := scec.RandomMatrix(f, rng, l, batch)
		gotM, err := client.MulMat(context.Background(), selected, xm)
		if err != nil {
			return fmt.Errorf("batch gather: %w", err)
		}
		if !scec.MatrixEqual(f, gotM, scec.Mul(f, a, xm)) {
			return fmt.Errorf("batch verification failed")
		}
		fmt.Fprintf(out, "user decoded the batch A·X (%d columns) over TCP and verified it\n", batch)
	}
	return writeStageTable(out)
}

func splitAddrs(csv string) []string {
	var addrs []string
	for _, a := range strings.Split(csv, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}
