package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/scec/scec/internal/obs"
)

// runDebug implements `scecnet debug snapshot`: pull every debug/metrics
// route a running scecnet process serves (its -metrics-addr) into a local
// directory, for offline triage or attaching to a ticket. The route list is
// discovered live from the process's own /debug index, so a snapshot always
// covers exactly what that build mounts — including /debug/journal and
// /debug/incidents when the flight recorder is armed.
func runDebug(args []string, out io.Writer) error {
	if len(args) == 0 || args[0] != "snapshot" {
		return fmt.Errorf("usage: scecnet debug snapshot -addr HOST:PORT [-out DIR]")
	}
	fs := flag.NewFlagSet("scecnet debug snapshot", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "", "telemetry address of the running process (its -metrics-addr)")
		outDir  = fs.String("out", "", "directory to write the snapshot into (default results/snapshot-<timestamp>)")
		timeout = fs.Duration("timeout", 10*time.Second, "per-request bound")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("scecnet debug snapshot: -addr is required")
	}
	dir := *outDir
	if dir == "" {
		dir = filepath.Join("results", "snapshot-"+time.Now().UTC().Format("20060102T150405Z"))
	}
	return snapshotDebug(out, *addr, dir, *timeout)
}

// snapshotRoute is one fetched route in the snapshot manifest.
type snapshotRoute struct {
	Pattern string `json:"pattern"`
	Desc    string `json:"desc,omitempty"`
	File    string `json:"file,omitempty"`
	Bytes   int    `json:"bytes,omitempty"`
	Err     string `json:"err,omitempty"`
	Skipped string `json:"skipped,omitempty"`
}

func snapshotDebug(out io.Writer, addr, dir string, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}
	base := "http://" + addr

	// The /debug index is the source of truth for what this process mounts.
	var index struct {
		Routes []obs.RouteInfo `json:"routes"`
	}
	body, _, err := fetch(client, base+"/debug")
	if err != nil {
		return fmt.Errorf("scecnet debug snapshot: %s has no /debug index: %w", addr, err)
	}
	if err := json.Unmarshal(body, &index); err != nil {
		return fmt.Errorf("scecnet debug snapshot: parse /debug index from %s: %w", addr, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	manifest := make([]snapshotRoute, 0, len(index.Routes)+1)
	fetched := 0
	for _, rt := range index.Routes {
		sr := snapshotRoute{Pattern: rt.Pattern, Desc: rt.Desc}
		switch {
		case rt.Pattern == "/debug":
			sr.Skipped = "index itself (saved as snapshot.json)"
		case strings.Contains(rt.Pattern, "{"):
			sr.Skipped = "parameterized route; fetch ids via its listing route"
		case strings.HasPrefix(rt.Pattern, "/debug/pprof"):
			// Profiles are on-demand and some block (profile, trace); take
			// only the cheap instantaneous goroutine dump.
			if rt.Pattern != "/debug/pprof/" {
				sr.Skipped = "pprof profile; use go tool pprof against the live process"
				break
			}
			sr.Pattern = "/debug/pprof/goroutine?debug=2"
			b, _, err := fetch(client, base+sr.Pattern)
			if err != nil {
				sr.Err = err.Error()
				break
			}
			sr.File = "goroutines.txt"
			sr.Bytes = len(b)
			if err := os.WriteFile(filepath.Join(dir, sr.File), b, 0o644); err != nil {
				return err
			}
			fetched++
		default:
			b, ctype, err := fetch(client, base+rt.Pattern)
			if err != nil {
				sr.Err = err.Error()
				break
			}
			sr.File = snapshotFileName(rt.Pattern, ctype)
			sr.Bytes = len(b)
			if err := os.WriteFile(filepath.Join(dir, sr.File), b, 0o644); err != nil {
				return err
			}
			fetched++
		}
		manifest = append(manifest, sr)
	}

	mf, err := json.MarshalIndent(struct {
		Addr   string          `json:"addr"`
		At     string          `json:"at"`
		Routes []snapshotRoute `json:"routes"`
	}{addr, time.Now().UTC().Format(time.RFC3339), manifest}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), append(mf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "snapshot: pulled %d of %d routes from %s into %s\n", fetched, len(index.Routes), addr, dir)
	for _, sr := range manifest {
		switch {
		case sr.Err != "":
			fmt.Fprintf(out, "  %-28s ERROR %s\n", sr.Pattern, sr.Err)
		case sr.Skipped != "":
			fmt.Fprintf(out, "  %-28s skipped: %s\n", sr.Pattern, sr.Skipped)
		default:
			fmt.Fprintf(out, "  %-28s -> %s (%d bytes)\n", sr.Pattern, sr.File, sr.Bytes)
		}
	}
	return nil
}

// fetch GETs url and returns the body and Content-Type; non-200 is an error.
func fetch(client *http.Client, url string) ([]byte, string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("%s: %s", url, resp.Status)
	}
	return body, resp.Header.Get("Content-Type"), nil
}

// snapshotFileName maps a route pattern to a flat file name with an
// extension matching the served Content-Type.
func snapshotFileName(pattern, ctype string) string {
	name := strings.Trim(pattern, "/")
	name = strings.ReplaceAll(name, "/", "-")
	if name == "" {
		name = "root"
	}
	if strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".txt") {
		return name
	}
	if mt, _, err := mime.ParseMediaType(ctype); err == nil {
		switch mt {
		case "application/json":
			return name + ".json"
		case "text/plain":
			return name + ".txt"
		}
	}
	return name + ".txt"
}
