package main

import (
	"strings"
	"testing"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/transport"
)

func TestDemoEndToEnd(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"demo", "-m", "40", "-l", "8", "-k", "5", "-seed", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"launched 5 loopback devices", "plan:", "verified all 40 entries"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestDriveAgainstManagedFleet(t *testing.T) {
	f := scec.PrimeField()
	var addrs []string
	for j := 0; j < 4; j++ {
		srv, err := transport.NewDeviceServer[uint64](f, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, srv.Addr())
	}
	var out strings.Builder
	args := []string{"drive", "-devices", strings.Join(addrs, ","), "-m", "30", "-l", "6"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verified all 30 entries") {
		t.Fatalf("drive did not verify:\n%s", out.String())
	}
}

func TestFleetEndToEndWithFaults(t *testing.T) {
	var out strings.Builder
	args := []string{"fleet", "-m", "30", "-l", "6", "-k", "4", "-replicas", "2",
		"-standbys", "1", "-queries", "4", "-inject-faults", "-seed", "3"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"replicas per block",
		"injected faults: killed the first replica",
		"served 4 queries; every decoded A·x verified exactly",
		"fleet summary:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestFleetFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"fleet", "-replicas", "0"}, &out); err == nil {
		t.Error("zero replicas should error")
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no args should error")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown role should error")
	}
	if err := run([]string{"drive", "-devices", "only-one:1"}, &out); err == nil {
		t.Error("single-device drive should error")
	}
}

func TestSplitAddrs(t *testing.T) {
	got := splitAddrs(" a:1, ,b:2,")
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("splitAddrs = %v", got)
	}
}

func TestFleetLocalBackendWithCoalescing(t *testing.T) {
	var out strings.Builder
	args := []string{"fleet", "-backend", "local", "-m", "24", "-l", "6", "-k", "4",
		"-queries", "6", "-coalesce-window", "50ms", "-seed", "7"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"backend local: queries run on the in-process engine",
		"served 6 queries; every decoded A·x verified exactly",
		"engine summary:",
		"coalescing:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestFleetBackendValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"fleet", "-backend", "bogus"}, &out); err == nil {
		t.Error("unknown backend should error")
	}
	if err := run([]string{"fleet", "-backend", "local", "-inject-faults"}, &out); err == nil {
		t.Error("local backend with fault injection should error")
	}
}
