package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/fleet"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/transport"
	"github.com/scec/scec/internal/workload"
)

// runFleet launches a replicated loopback fleet, serves a stream of queries
// through the fault-tolerant session, and — with -inject-faults — kills the
// first replica of every coded block mid-stream to demonstrate that hedging,
// failover, breakers, and standby self-repair keep every answer exact.
func runFleet(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scecnet fleet", flag.ContinueOnError)
	var (
		m            = fs.Int("m", 100, "rows of the confidential matrix A")
		l            = fs.Int("l", 32, "columns of A")
		k            = fs.Int("k", 8, "candidate devices offered to the allocator")
		replicas     = fs.Int("replicas", 2, "replicas per coded block")
		standbys     = fs.Int("standbys", 1, "warm standby devices for self-repair")
		queries      = fs.Int("queries", 8, "MulVec queries to stream through the session")
		hedgeAfter   = fs.Duration("hedge-after", 0, "hedge delay before a speculative replica request (0 adaptive, negative off)")
		maxRetries   = fs.Int("max-retries", fleet.DefaultMaxRetries, "extra replica-selection rounds per block fetch (negative for none)")
		injectFaults = fs.Bool("inject-faults", false, "kill the first replica of every block mid-stream")
		seed         = fs.Uint64("seed", 1, "random seed")
		metricsAddr  = fs.String("metrics-addr", "", "serve /metrics, /healthz, and /debug endpoints on this address")
		timeout      = fs.Duration("timeout", transport.DefaultTimeout, "per-round-trip bound for store and compute requests")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replicas < 1 || *standbys < 0 {
		return fmt.Errorf("need -replicas >= 1 and -standbys >= 0")
	}
	ms, err := startMetrics(out, *metricsAddr)
	if err != nil {
		return err
	}
	if ms != nil {
		defer ms.Close()
	}

	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(*seed, 0xf1ee7))
	in := workload.Instance(rng, *m, *k, workload.Uniform{Max: 5})
	a := scec.RandomMatrix(f, rng, *m, *l)
	dep, err := scec.Deploy(f, a, in.Costs, rng)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "plan: r=%d, %d coded blocks, cost %.2f\n", dep.Plan.R, dep.Devices(), dep.Cost())

	// Physical fleet: replicas per block plus the standby pool, every device
	// behind a fault proxy so -inject-faults can kill replicas on command.
	newProxied := func() (*fleet.FaultProxy, error) {
		srv, err := transport.NewDeviceServerOptions[uint64](f, "127.0.0.1:0", transport.Options{Timeout: *timeout})
		if err != nil {
			return nil, err
		}
		p, err := fleet.NewFaultProxy(srv.Addr())
		if err != nil {
			_ = srv.Close()
			return nil, err
		}
		return p, nil
	}
	proxies := make([][]*fleet.FaultProxy, dep.Devices())
	cfg := scec.FleetConfig{
		Replicas:   make([][]string, dep.Devices()),
		RPCTimeout: *timeout,
		HedgeAfter: *hedgeAfter,
		MaxRetries: *maxRetries,
		// Demo-paced health policy: notice a dead replica within a few
		// hundred milliseconds and keep it quarantined for the whole run.
		ProbeInterval:    150 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	}
	for j := range proxies {
		for range *replicas {
			p, err := newProxied()
			if err != nil {
				return err
			}
			defer p.Close()
			proxies[j] = append(proxies[j], p)
			cfg.Replicas[j] = append(cfg.Replicas[j], p.Addr())
		}
	}
	for range *standbys {
		p, err := newProxied()
		if err != nil {
			return err
		}
		defer p.Close()
		cfg.Standbys = append(cfg.Standbys, p.Addr())
	}
	fmt.Fprintf(out, "launched %d loopback devices (%d replicas per block + %d standbys)\n",
		dep.Devices()**replicas+*standbys, *replicas, *standbys)

	s, err := scec.Serve(dep, cfg)
	if err != nil {
		return err
	}
	defer s.Close()

	faultAt := *queries / 2
	for q := 0; q < *queries; q++ {
		if *injectFaults && q == faultAt {
			for j := range proxies {
				proxies[j][0].SetMode(fleet.FaultDrop)
			}
			fmt.Fprintf(out, "injected faults: killed the first replica of all %d blocks\n", dep.Devices())
		}
		x := scec.RandomVector(f, rng, *l)
		got, err := s.MulVec(x)
		if err != nil {
			if errors.Is(err, scec.ErrBlockUnavailable) {
				return fmt.Errorf("query %d: %w (raise -replicas or -standbys)", q, err)
			}
			return fmt.Errorf("query %d: %w", q, err)
		}
		want := scec.MulVec(f, a, x)
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("query %d: verification failed at entry %d", q, i)
			}
		}
	}
	fmt.Fprintf(out, "served %d queries; every decoded A·x verified exactly\n", *queries)

	if *injectFaults && *replicas > 1 && *standbys > 0 {
		// Give the prober a moment to open the dead replicas' breakers and
		// promote standbys, then show the repaired replica sets.
		deadline := time.Now().Add(5 * time.Second)
		for s.Standbys() > 0 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		for j := 0; j < dep.Devices(); j++ {
			fmt.Fprintf(out, "block %d: %d replicas after self-repair\n", j, s.ReplicaCount(j))
		}
	}
	if err := writeFleetSummary(out); err != nil {
		return err
	}
	return writeStageTable(out)
}

// writeFleetSummary prints the session's fault-tolerance counters from the
// default registry.
func writeFleetSummary(out io.Writer) error {
	totals := map[string]float64{}
	for _, fam := range obs.Default().Snapshot().Metrics {
		switch fam.Name {
		case obs.MetricFleetQueriesTotal, obs.MetricFleetHedgesTotal,
			obs.MetricFleetRetriesTotal, obs.MetricFleetRepairsTotal:
			for _, sr := range fam.Series {
				totals[fam.Name] += sr.Value
			}
		}
	}
	_, err := fmt.Fprintf(out, "fleet summary: queries=%.0f hedges=%.0f retries=%.0f repairs=%.0f\n",
		totals[obs.MetricFleetQueriesTotal], totals[obs.MetricFleetHedgesTotal],
		totals[obs.MetricFleetRetriesTotal], totals[obs.MetricFleetRepairsTotal])
	return err
}
