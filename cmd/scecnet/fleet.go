package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/fleet"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/flight"
	"github.com/scec/scec/internal/obs/trace"
	"github.com/scec/scec/internal/transport"
	"github.com/scec/scec/internal/workload"
)

// runFleet launches a replicated loopback fleet, serves a stream of queries
// through the fault-tolerant session, and — with -inject-faults — kills the
// first replica of every coded block mid-stream to demonstrate that hedging,
// failover, breakers, and standby self-repair keep every answer exact.
func runFleet(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scecnet fleet", flag.ContinueOnError)
	var (
		m            = fs.Int("m", 100, "rows of the confidential matrix A")
		l            = fs.Int("l", 32, "columns of A")
		k            = fs.Int("k", 8, "candidate devices offered to the allocator")
		replicas     = fs.Int("replicas", 2, "replicas per coded block")
		standbys     = fs.Int("standbys", 1, "warm standby devices for self-repair")
		queries      = fs.Int("queries", 8, "MulVec queries to stream through the session")
		hedgeAfter   = fs.Duration("hedge-after", 0, "hedge delay before a speculative replica request (0 adaptive, negative off)")
		maxRetries   = fs.Int("max-retries", fleet.DefaultMaxRetries, "extra replica-selection rounds per block fetch (negative for none)")
		injectFaults = fs.Bool("inject-faults", false, "kill the first replica of every block mid-stream")
		tFlag        = fs.Int("t", 1, "collusion threshold: t >= 2 deploys the Cauchy-masked coding tier secure against t colluding devices")
		seed         = fs.Uint64("seed", 1, "random seed")
		metricsAddr  = fs.String("metrics-addr", "", "serve /metrics, /healthz, and /debug endpoints on this address")
		timeout      = fs.Duration("timeout", transport.DefaultTimeout, "per-round-trip bound for store and compute requests")
		backend      = fs.String("backend", "fleet", "execution backend: fleet (replicated TCP devices) or local (in-process engine baseline)")
		coalesceWin  = fs.Duration("coalesce-window", 0, "merge concurrent MulVec queries within this window into one batch round (0 off; queries run concurrently when on)")
		coalesceMax  = fs.Int("coalesce-max", 0, "max queries per coalesced round (0 for the engine default)")
		traceFile    = fs.String("trace-export", "", "record a distributed trace per query and write the JSON export here on completion")
		adaptive     = fs.Bool("adaptive", false, "run the closed-loop adaptive control plane: learn per-device costs from live traffic, re-plan with TA2, and migrate blocks without dropping queries")
		replanEvery  = fs.Duration("replan-every", 500*time.Millisecond, "adaptive control period (with -adaptive)")
		incidentDir  = fs.String("incident-dir", "", "arm the flight-recorder watchdog: evaluate -watch rules against the event journal and write incident bundles under this directory (implies tracing)")
		watchRules   = fs.String("watch", "journal:breaker-open>=1/30s", "comma-separated watchdog trigger rules (with -incident-dir)")
		incidentSum  = fs.String("incident-summary", "", "validate the captured incident bundle and write a JSON summary to this file; non-zero exit when the bundle is incomplete (with -incident-dir)")
		injectOne    = fs.Bool("inject-one", false, "kill every replica of coded block 0 mid-stream: a full single-block outage only a rehost can cure")
		noRepair     = fs.Bool("no-repair", false, "disable standby self-repair, so outage recovery must come from the adaptive control plane")
		protoName    = protoFlag(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, err := transport.ParseProto(*protoName)
	if err != nil {
		return err
	}
	if *replicas < 1 || *standbys < 0 {
		return fmt.Errorf("need -replicas >= 1 and -standbys >= 0")
	}
	if *tFlag < 1 {
		return fmt.Errorf("-t %d: the collusion threshold must be at least 1", *tFlag)
	}
	if *adaptive && *tFlag >= 2 {
		return fmt.Errorf("-adaptive re-plans with the t = 1 allocators; the t-collusion tier (-t %d) is static for now", *tFlag)
	}
	switch *backend {
	case "fleet":
	case "local":
		if *injectFaults {
			return fmt.Errorf("-inject-faults needs -backend fleet (the local engine has no replicas to kill)")
		}
		if *injectOne {
			return fmt.Errorf("-inject-one needs -backend fleet (the local engine has no replicas to kill)")
		}
		if *adaptive {
			return fmt.Errorf("-adaptive needs -backend fleet (the local engine has no devices to migrate)")
		}
	default:
		return fmt.Errorf("unknown -backend %q (want fleet or local)", *backend)
	}
	if *injectOne && *injectFaults {
		return fmt.Errorf("-inject-one and -inject-faults are mutually exclusive")
	}
	if *injectOne && *coalesceWin > 0 {
		return fmt.Errorf("-inject-one needs the sequential query stream (drop -coalesce-window)")
	}
	if *incidentSum != "" && *incidentDir == "" {
		return fmt.Errorf("-incident-summary needs -incident-dir")
	}
	var engineOpts []scec.DeployOption[uint64]
	if *coalesceWin > 0 {
		engineOpts = append(engineOpts, scec.WithCoalescing[uint64](*coalesceWin, *coalesceMax))
	}
	var tr, devTr *trace.Tracer
	if *traceFile != "" || *incidentDir != "" {
		// An armed flight recorder needs live traces for its bundles even
		// without -trace-export.
		tr = trace.New(trace.Options{Service: "scecnet-fleet"})
		// Devices trace into their own buffer; the session adopts their
		// compute spans from the response frames, as over a real network.
		devTr = trace.New(trace.Options{Service: "scecnet-device"})
		engineOpts = append(engineOpts, scec.WithTracing[uint64](tr))
	}
	// The telemetry server starts after the session is up so /debug/fleet
	// and /debug/engine can snapshot the live runtime.

	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(*seed, 0xf1ee7))
	in := workload.Instance(rng, *m, *k, workload.Uniform{Max: 5})
	a := scec.RandomMatrix(f, rng, *m, *l)
	var deployOpts []scec.DeployOption[uint64]
	if *backend == "local" {
		// The local baseline binds the engine options at deploy time; the
		// fleet path binds them to the serving session below instead.
		deployOpts = engineOpts
	}
	if *tFlag >= 2 {
		deployOpts = append(deployOpts, scec.WithCollusion[uint64](*tFlag))
	}
	dep, err := scec.Deploy(f, a, in.Costs, rng, deployOpts...)
	if err != nil {
		return err
	}
	defer dep.Close()
	fmt.Fprintf(out, "plan: %s r=%d t=%d, %d coded blocks, cost %.2f\n",
		dep.Plan.Algorithm, dep.Plan.R, dep.Code.T(), dep.Devices(), dep.Cost())

	query := dep.MulVec
	injectNow := func() {}
	var served *scec.Served[uint64]
	var outageAddrs []string
	if *backend == "fleet" {
		// Physical fleet: replicas per block plus the standby pool, every
		// device behind a fault proxy so -inject-faults can kill replicas on
		// command.
		newProxied := func() (*fleet.FaultProxy, error) {
			srv, err := transport.NewDeviceServerOptions[uint64](f, "127.0.0.1:0", transport.Options{Timeout: *timeout, Tracer: devTr})
			if err != nil {
				return nil, err
			}
			p, err := fleet.NewFaultProxy(srv.Addr())
			if err != nil {
				_ = srv.Close()
				return nil, err
			}
			return p, nil
		}
		proxies := make([][]*fleet.FaultProxy, dep.Devices())
		cfg := scec.FleetConfig{
			Replicas:   make([][]string, dep.Devices()),
			RPCTimeout: *timeout,
			HedgeAfter: *hedgeAfter,
			MaxRetries: *maxRetries,
			Tracer:     tr,
			Proto:      proto,
			// Demo-paced health policy: notice a dead replica within a few
			// hundred milliseconds and keep it quarantined for the whole run.
			ProbeInterval:    150 * time.Millisecond,
			BreakerThreshold: 2,
			BreakerCooldown:  time.Minute,
			DisableRepair:    *noRepair,
		}
		for j := range proxies {
			for range *replicas {
				p, err := newProxied()
				if err != nil {
					return err
				}
				defer p.Close()
				proxies[j] = append(proxies[j], p)
				cfg.Replicas[j] = append(cfg.Replicas[j], p.Addr())
			}
		}
		for range *standbys {
			p, err := newProxied()
			if err != nil {
				return err
			}
			defer p.Close()
			cfg.Standbys = append(cfg.Standbys, p.Addr())
		}
		fmt.Fprintf(out, "launched %d loopback devices (%d replicas per block + %d standbys)\n",
			dep.Devices()**replicas+*standbys, *replicas, *standbys)

		serveOpts := engineOpts
		if *adaptive {
			serveOpts = append(serveOpts, scec.WithAdaptive[uint64](scec.AdaptiveConfig{
				ReplanEvery: *replanEvery,
				Tracer:      tr,
			}))
		}
		s, err := scec.Serve(dep, cfg, serveOpts...)
		if err != nil {
			return err
		}
		defer s.Close()
		served = s
		query = s.MulVec
		if *injectOne {
			// A full outage of one block: every replica of block 0 dies, so
			// no failover target remains and recovery needs a rehost (standby
			// self-repair, or the adaptive control plane with -no-repair).
			outageAddrs = append(outageAddrs, cfg.Replicas[0]...)
			injectNow = func() {
				for _, p := range proxies[0] {
					p.SetMode(fleet.FaultDrop)
				}
				fmt.Fprintf(out, "injected outage: killed all %d replica(s) of block 0\n", len(proxies[0]))
			}
		} else {
			injectNow = func() {
				for j := range proxies {
					proxies[j][0].SetMode(fleet.FaultDrop)
				}
				fmt.Fprintf(out, "injected faults: killed the first replica of all %d blocks\n", dep.Devices())
			}
		}
	} else {
		fmt.Fprintf(out, "backend local: queries run on the in-process engine (no devices launched)\n")
	}

	// An armed flight recorder evaluates the -watch rules against the event
	// journal and captures incident bundles while queries flow.
	var wd *flight.Watchdog
	if *incidentDir != "" {
		rules, err := flight.ParseRules(*watchRules)
		if err != nil {
			return err
		}
		wcfg := flight.Config{
			Dir:   *incidentDir,
			Rules: rules,
			// Let the recovery events (replan, rehost, repair) land in the
			// journal before the bundle freezes its tail.
			CaptureDelay: 250 * time.Millisecond,
		}
		if tr != nil {
			wcfg.Tracers = append(wcfg.Tracers, tr)
		}
		if devTr != nil {
			wcfg.Tracers = append(wcfg.Tracers, devTr)
		}
		if served != nil && *adaptive {
			ctrl := served.Adaptive()
			wcfg.Extra = map[string]func() ([]byte, error){
				"adapt.json": func() ([]byte, error) {
					return json.MarshalIndent(ctrl.Debug(), "", "  ")
				},
			}
		}
		wd, err = flight.NewWatchdog(wcfg)
		if err != nil {
			return err
		}
		wd.Start()
		defer wd.Stop()
		fmt.Fprintf(out, "flight recorder armed: rules %s, bundles under %s\n", *watchRules, *incidentDir)
	}

	// Telemetry + live introspection: /debug/engine and (fleet backend)
	// /debug/fleet join /metrics and /debug/pprof on one mux; the tracer
	// adds /debug/traces when -trace-export is on, and the flight recorder
	// adds /debug/journal (+ /debug/incidents when armed).
	var routes []obs.Route
	if tr != nil {
		var an *trace.Stragglers
		if served != nil {
			an = served.Session().Stragglers()
		}
		routes = traceRoutes(tr, an)
	}
	if served != nil {
		routes = append(routes,
			obs.Route{Pattern: "/debug/fleet", Handler: served.FleetDebugHandler(), Desc: "fleet session snapshot: blocks, replicas, breakers, standbys"},
			obs.Route{Pattern: "/debug/engine", Handler: served.EngineDebugHandler(), Desc: "engine dispatch and coalescer snapshot"})
		if *adaptive {
			routes = append(routes, obs.Route{Pattern: "/debug/adapt", Handler: served.AdaptDebugHandler(), Desc: "adaptive control plane: learned factors, decisions, migrations"})
		}
	} else {
		routes = append(routes, obs.Route{Pattern: "/debug/engine", Handler: dep.EngineDebugHandler(), Desc: "engine dispatch and coalescer snapshot"})
	}
	routes = append(routes, flight.Routes(flight.Default(), *incidentDir)...)
	ms, err := startMetrics(out, *metricsAddr, routes...)
	if err != nil {
		return err
	}
	if ms != nil {
		defer ms.Close()
	}

	// The query RNG is not goroutine-safe, so inputs are drawn up front
	// whether the stream runs sequentially or concurrently.
	xs := make([][]uint64, *queries)
	wants := make([][]uint64, *queries)
	for q := range xs {
		xs[q] = scec.RandomVector(f, rng, *l)
		wants[q] = scec.MulVec(f, a, xs[q])
	}
	outageFailures := 0
	checkOne := func(q int, got []uint64, err error) error {
		if err != nil {
			if errors.Is(err, scec.ErrBlockUnavailable) {
				return fmt.Errorf("query %d: %w (raise -replicas or -standbys)", q, err)
			}
			return fmt.Errorf("query %d: %w", q, err)
		}
		for i := range got {
			if got[i] != wants[q][i] {
				return fmt.Errorf("query %d: verification failed at entry %d", q, i)
			}
		}
		return nil
	}
	if *coalesceWin > 0 {
		// Coalescing only merges queries that are in flight together, so the
		// stream launches concurrently; faults are injected up front.
		if *injectFaults {
			injectNow()
		}
		results := make([][]uint64, *queries)
		errs := make([]error, *queries)
		var wg sync.WaitGroup
		for q := range xs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[q], errs[q] = query(xs[q])
			}()
		}
		wg.Wait()
		for q := range results {
			if err := checkOne(q, results[q], errs[q]); err != nil {
				return err
			}
		}
	} else {
		faultAt := *queries / 2
		for q := 0; q < *queries; q++ {
			if (*injectFaults || *injectOne) && q == faultAt {
				injectNow()
			}
			got, err := query(xs[q])
			if err != nil && *injectOne && q >= faultAt {
				// Block 0 has no live replica until a rehost lands; these
				// failures are the incident under demonstration.
				outageFailures++
				continue
			}
			if err := checkOne(q, got, err); err != nil {
				return err
			}
		}
	}
	if *injectOne && served != nil {
		// Recovery proof: keep retrying one query until the fleet heals
		// (standby self-repair, or an adaptive rehost with -no-repair).
		deadline := time.Now().Add(20 * time.Second)
		var got []uint64
		var qerr error
		for {
			got, qerr = query(xs[0])
			if qerr == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if qerr != nil {
			return fmt.Errorf("block 0 never recovered from the injected outage: %w", qerr)
		}
		for i := range got {
			if got[i] != wants[0][i] {
				return fmt.Errorf("post-recovery verification failed at entry %d", i)
			}
		}
		fmt.Fprintf(out, "block 0 recovered: post-outage query verified exactly\n")
	}
	if outageFailures > 0 {
		fmt.Fprintf(out, "served %d queries; %d failed during the block-0 outage, all others verified exactly\n", *queries, outageFailures)
	} else {
		fmt.Fprintf(out, "served %d queries; every decoded A·x verified exactly\n", *queries)
	}

	if served != nil && *injectFaults && *replicas > 1 && *standbys > 0 {
		// Give the prober a moment to open the dead replicas' breakers and
		// promote standbys, then show the repaired replica sets.
		deadline := time.Now().Add(5 * time.Second)
		for served.Standbys() > 0 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		for j := 0; j < dep.Devices(); j++ {
			fmt.Fprintf(out, "block %d: %d replicas after self-repair\n", j, served.ReplicaCount(j))
		}
	}
	if *backend == "fleet" {
		if err := writeFleetSummary(out); err != nil {
			return err
		}
	}
	if *adaptive && served != nil {
		replans, adopts, moved := served.Adaptive().Stats()
		fmt.Fprintf(out, "adaptive summary: replans=%d adopts=%d blocksMoved=%d\n", replans, adopts, moved)
	}
	if wd != nil {
		// The trigger rule may only now be satisfied (recovery events land
		// late); force checks until a bundle exists or clearly never will.
		deadline := time.Now().Add(10 * time.Second)
		for len(wd.Incidents()) == 0 && time.Now().Before(deadline) {
			if _, err := wd.CheckNow(); err != nil {
				return err
			}
			time.Sleep(100 * time.Millisecond)
		}
		incidents := wd.Incidents()
		fmt.Fprintf(out, "flight recorder: %d incident bundle(s) under %s\n", len(incidents), *incidentDir)
		if *incidentSum != "" {
			if err := writeIncidentSummary(out, *incidentSum, *incidentDir, incidents, outageAddrs, *adaptive); err != nil {
				return err
			}
		}
	}
	if err := writeEngineSummary(out); err != nil {
		return err
	}
	if err := exportTraces(out, tr, *traceFile); err != nil {
		return err
	}
	return writeStageTable(out)
}

// writeEngineSummary prints the execution engine's dispatch counters and —
// when coalescing ran — the merged-round accounting from the default
// registry.
func writeEngineSummary(out io.Writer) error {
	vec, mat := 0.0, 0.0
	rounds, callers := int64(0), 0.0
	backends := map[string]bool{}
	for _, fam := range obs.Default().Snapshot().Metrics {
		switch fam.Name {
		case obs.MetricEngineDispatchTotal:
			for _, sr := range fam.Series {
				if sr.Labels["kind"] == "vec" {
					vec += sr.Value
				} else {
					mat += sr.Value
				}
				if b := sr.Labels["backend"]; b != "" {
					backends[b] = true
				}
			}
		case obs.MetricEngineCoalescedBatchSize:
			for _, sr := range fam.Series {
				rounds += sr.Count
				callers += sr.Sum
			}
		}
	}
	names := make([]string, 0, len(backends))
	for b := range backends {
		names = append(names, b)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(out, "engine summary: backends=%s dispatches vec=%.0f mat=%.0f\n",
		strings.Join(names, ","), vec, mat); err != nil {
		return err
	}
	if rounds > 0 {
		_, err := fmt.Fprintf(out, "coalescing: %d rounds served %.0f callers (mean batch %.2f)\n",
			rounds, callers, callers/float64(rounds))
		return err
	}
	return nil
}

// writeFleetSummary prints the session's fault-tolerance counters from the
// default registry.
func writeFleetSummary(out io.Writer) error {
	totals := map[string]float64{}
	for _, fam := range obs.Default().Snapshot().Metrics {
		switch fam.Name {
		case obs.MetricFleetQueriesTotal, obs.MetricFleetHedgesTotal,
			obs.MetricFleetRetriesTotal, obs.MetricFleetRepairsTotal:
			for _, sr := range fam.Series {
				totals[fam.Name] += sr.Value
			}
		}
	}
	_, err := fmt.Fprintf(out, "fleet summary: queries=%.0f hedges=%.0f retries=%.0f repairs=%.0f\n",
		totals[obs.MetricFleetQueriesTotal], totals[obs.MetricFleetHedgesTotal],
		totals[obs.MetricFleetRetriesTotal], totals[obs.MetricFleetRepairsTotal])
	return err
}
