package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/scec/scec/internal/obs/flight"
)

// incidentCheck is one validation verdict over a captured bundle.
type incidentCheck struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// incidentSummary is the JSON record `scecnet fleet -incident-summary`
// writes (results/incident-demo.json in the committed demo): which bundle
// the watchdog captured, what it contains, and whether every artifact the
// incident pipeline promises actually landed.
type incidentSummary struct {
	Bundle        string          `json:"bundle"`
	Rule          string          `json:"rule"`
	Detail        string          `json:"detail,omitempty"`
	Files         []string        `json:"files"`
	JournalEvents map[string]int  `json:"journal_events"`
	Checks        []incidentCheck `json:"checks"`
	OK            bool            `json:"ok"`
}

// writeIncidentSummary validates the first captured bundle end to end and
// writes the summary JSON to path. adaptive selects the recovery events the
// journal must show (replan adopt + rehost vs. standby repair). A missing
// or incomplete bundle is an error, so the incident demo fails loudly.
func writeIncidentSummary(out io.Writer, path, dir string, incidents []flight.IncidentMeta, outageAddrs []string, adaptive bool) error {
	if len(incidents) == 0 {
		return fmt.Errorf("incident summary: no bundle was captured under %s", dir)
	}
	meta := incidents[0]
	bundle := filepath.Join(dir, meta.ID)
	s := incidentSummary{
		Bundle:        bundle,
		Rule:          meta.Rule,
		Detail:        meta.Detail,
		Files:         meta.Files,
		JournalEvents: map[string]int{},
	}
	check := func(name string, ok bool, detail string) {
		if ok {
			detail = ""
		}
		s.Checks = append(s.Checks, incidentCheck{Name: name, OK: ok, Detail: detail})
	}

	// Goroutine dump: non-empty and recognizably a stack dump.
	gs, err := os.ReadFile(filepath.Join(bundle, "goroutines.txt"))
	check("goroutine-profile", err == nil && strings.Contains(string(gs), "goroutine "),
		fmt.Sprintf("goroutines.txt unreadable or empty: %v", err))

	// Heap profile: present and non-empty (a binary pprof protobuf).
	hs, err := os.Stat(filepath.Join(bundle, "heap.pprof"))
	check("heap-profile", err == nil && hs.Size() > 0, fmt.Sprintf("heap.pprof missing: %v", err))

	// Metrics snapshot: valid JSON with at least one metric family.
	var metrics struct {
		Metrics []json.RawMessage `json:"metrics"`
	}
	mb, err := os.ReadFile(filepath.Join(bundle, "metrics.json"))
	if err == nil {
		err = json.Unmarshal(mb, &metrics)
	}
	check("metrics-snapshot", err == nil && len(metrics.Metrics) > 0,
		fmt.Sprintf("metrics.json unreadable or empty: %v", err))

	// Journal tail: must show the breaker opening on the outage and the
	// recovery path that cured it.
	var dump struct {
		Events []flight.Event `json:"events"`
	}
	jb, err := os.ReadFile(filepath.Join(bundle, "journal.json"))
	if err == nil {
		err = json.Unmarshal(jb, &dump)
	}
	check("journal", err == nil && len(dump.Events) > 0, fmt.Sprintf("journal.json unreadable or empty: %v", err))
	for _, ev := range dump.Events {
		s.JournalEvents[ev.Kind.String()]++
	}
	check("journal-breaker-open", s.JournalEvents[flight.KindBreakerOpen.String()] > 0,
		"no breaker-open event in the journal tail")
	if adaptive {
		check("journal-replan-adopt", s.JournalEvents[flight.KindReplanAdopt.String()] > 0,
			"no replan-adopt event: the control plane never adopted a recovery plan")
		check("journal-rehost-ok", s.JournalEvents[flight.KindRehostOK.String()] > 0,
			"no rehost-ok event: the recovery migration never landed")
	} else {
		check("journal-repair-ok", s.JournalEvents[flight.KindRepairOK.String()] > 0,
			"no repair-ok event: standby self-repair never landed")
	}

	// Trace rings: at least one retained span must belong to a device the
	// outage killed, proving the bundle can attribute the incident.
	var traced bool
	for _, f := range meta.Files {
		if !strings.HasPrefix(f, "traces-") {
			continue
		}
		tb, err := os.ReadFile(filepath.Join(bundle, f))
		if err != nil {
			continue
		}
		for _, addr := range outageAddrs {
			if strings.Contains(string(tb), addr) {
				traced = true
			}
		}
	}
	check("trace-failing-device", traced || len(outageAddrs) == 0,
		fmt.Sprintf("no retained span mentions the killed replica(s) %v", outageAddrs))

	s.OK = true
	for _, c := range s.Checks {
		if !c.OK {
			s.OK = false
		}
	}

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "incident summary: bundle %s (rule %s)\n", bundle, meta.Rule)
	for _, c := range s.Checks {
		verdict := "ok"
		if !c.OK {
			verdict = "FAIL: " + c.Detail
		}
		fmt.Fprintf(out, "  %-24s %s\n", c.Name, verdict)
	}
	if !s.OK {
		return fmt.Errorf("incident bundle %s is incomplete (see %s)", bundle, path)
	}
	fmt.Fprintf(out, "incident summary written to %s\n", path)
	return nil
}
