package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"time"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/loadgen"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/transport"
)

// runLoad is the heavy-traffic SLO harness: an open-loop, coordinated-
// omission-safe offered-load sweep against (1) a real-socket loopback fleet
// of exactly three devices and (2) a virtual-clock simulation of thousands
// of devices with churn. Both scenarios land in one results/load.json +
// load.md report with per-step p50/p99/p999, the detected saturation knee,
// and declared-SLO verdicts; any SLO violation makes the command exit
// non-zero, which is what lets `make load-check` gate regressions.
func runLoad(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scecnet load", flag.ContinueOnError)
	var (
		m           = fs.Int("m", 40, "rows of the confidential matrix A (even, so uniform costs select exactly 3 devices)")
		l           = fs.Int("l", 64, "columns of A")
		replicas    = fs.Int("replicas", 1, "replicas per coded block in the real-socket fleet")
		rates       = fs.String("rates", "50,100,200", "comma-separated offered-load steps (QPS) for the fleet sweep")
		stepReqs    = fs.Int("step-requests", 0, "requests per sweep step (0 derives from -step-duration)")
		stepDur     = fs.Duration("step-duration", 2*time.Second, "nominal step length when -step-requests is 0")
		arrivalSpec = fs.String("arrival", "poisson", "arrival schedule: poisson, uniform, or bursty[:FxL]")
		seed        = fs.Uint64("seed", 1, "random seed")
		timeout     = fs.Duration("timeout", transport.DefaultTimeout, "per-request deadline")
		maxInFlight = fs.Int("max-inflight", 0, "outstanding-request backstop (0 for the generator default)")
		sloSpec     = fs.String("slo", "", "comma-separated SLOs for the fleet sweep, e.g. p99<=50ms@100")
		simDevices  = fs.Int("sim-devices", 1000, "virtual fleet size for the simulated scenario (0 skips it)")
		simRates    = fs.String("sim-rates", "500,1000,2000,4000", "offered-load steps (QPS) for the virtual sweep")
		simChurn    = fs.Duration("sim-churn", 200*time.Millisecond, "mean virtual interval between churn events (0 disables churn)")
		simReqs     = fs.Int("sim-step-requests", 2000, "requests per virtual sweep step")
		simSloSpec  = fs.String("sim-slo", "", "comma-separated SLOs for the virtual sweep")
		outPath     = fs.String("out", "results/load.json", "JSON report path (empty to skip)")
		mdPath      = fs.String("md", "results/load.md", "markdown report path (empty to skip)")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics plus /debug/slo (live sweep state) on this address")
		protoName   = protoFlag(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, err := transport.ParseProto(*protoName)
	if err != nil {
		return err
	}
	arrival, err := loadgen.ParseArrival(*arrivalSpec)
	if err != nil {
		return err
	}
	fleetRates, err := loadgen.ParseRates(*rates)
	if err != nil {
		return err
	}
	fleetSLOs, err := loadgen.ParseSLOs(*sloSpec)
	if err != nil {
		return err
	}
	simSLOs, err := loadgen.ParseSLOs(*simSloSpec)
	if err != nil {
		return err
	}
	if *m%2 != 0 || *m <= 0 {
		return fmt.Errorf("-m must be positive and even (uniform costs then yield r=m/2 and a 3-device fleet), got %d", *m)
	}

	col := loadgen.NewCollector()

	// --- Scenario 1: real-socket loopback fleet, exactly three devices. ---
	// With k=3 candidates at uniform unit cost, TA1's optimum is r=m/2, so
	// i=⌈(m+r)/r⌉=3: every candidate serves, deterministically.
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(*seed, 0x10ad))
	a := scec.RandomMatrix(f, rng, *m, *l)
	dep, err := scec.Deploy(f, a, []float64{1, 1, 1}, rng)
	if err != nil {
		return err
	}
	defer dep.Close()
	if dep.Devices() != 3 {
		return fmt.Errorf("expected the uniform-cost plan to select 3 devices, got %d", dep.Devices())
	}
	cfg := scec.FleetConfig{
		Replicas:      make([][]string, dep.Devices()),
		RPCTimeout:    *timeout,
		ProbeInterval: -1,
		Proto:         proto,
	}
	for j := range cfg.Replicas {
		for range max(*replicas, 1) {
			srv, err := transport.NewDeviceServerOptions[uint64](f, "127.0.0.1:0", transport.Options{Timeout: *timeout})
			if err != nil {
				return err
			}
			defer srv.Close()
			cfg.Replicas[j] = append(cfg.Replicas[j], srv.Addr())
		}
	}
	served, err := scec.Serve(dep, cfg)
	if err != nil {
		return err
	}
	defer served.Close()
	fmt.Fprintf(out, "fleet: 3 real-socket devices (%d replica(s) per block), m=%d l=%d r=%d\n",
		max(*replicas, 1), *m, *l, dep.Plan.R)

	routes := []obs.Route{
		{Pattern: "/debug/slo", Handler: col.DebugHandler(), Desc: "live SLO snapshot of the current load step, with histogram exemplars"},
		{Pattern: "/debug/engine", Handler: served.EngineDebugHandler(), Desc: "engine dispatch and coalescer snapshot"},
		{Pattern: "/debug/fleet", Handler: served.FleetDebugHandler(), Desc: "fleet session snapshot: blocks, replicas, breakers, standbys"},
	}
	ms, err := startMetrics(out, *metricsAddr, routes...)
	if err != nil {
		return err
	}
	if ms != nil {
		defer ms.Close()
	}

	fleetScenario := loadgen.Scenario{
		Name:    "fleet-3dev",
		Backend: "fleet",
		Clock:   "wall",
		Arrival: arrival.Name(),
		Devices: 3,
	}
	col.StartScenario(fleetScenario)
	x := scec.RandomVector(f, rng, *l)
	fmt.Fprintf(out, "sweeping fleet at %s QPS (%s arrivals, open loop)...\n", *rates, arrival.Name())
	steps, err := loadgen.Sweep(context.Background(), served.LoadTarget(x), loadgen.SweepOptions{
		Rates:           fleetRates,
		RequestsPerStep: *stepReqs,
		StepDuration:    *stepDur,
		Arrival:         arrival,
		Seed:            *seed,
		Timeout:         *timeout,
		MaxInFlight:     *maxInFlight,
		Collector:       col,
	})
	if err != nil {
		return err
	}
	fleetScenario.Steps = steps
	fleetScenario.KneeQPS = loadgen.DetectKnee(steps, 0, 0)
	sloErr := fleetScenario.CheckSLOs(fleetSLOs)
	col.FinishScenario(fleetScenario)
	fleetScenario.WriteText(out)

	// --- Scenario 2: virtual-clock simulation at fleet scale with churn. ---
	if *simDevices > 0 {
		vRates, err := loadgen.ParseRates(*simRates)
		if err != nil {
			return err
		}
		// The virtual schedule draws fresh arrivals; bursty state must not
		// leak between scenarios, so parse a fresh instance.
		vArrival, _ := loadgen.ParseArrival(*arrivalSpec)
		rows := (*m + dep.Plan.R + *simDevices - 1) / *simDevices
		simScenario := loadgen.Scenario{
			Name:    fmt.Sprintf("sim-%ddev-churn", *simDevices),
			Backend: "sim",
			Clock:   "virtual",
			Arrival: vArrival.Name(),
			Devices: *simDevices,
		}
		col.StartScenario(simScenario)
		fmt.Fprintf(out, "sweeping %d virtual devices at %s QPS (churn every ~%v)...\n", *simDevices, *simRates, *simChurn)
		vSteps, stats, err := loadgen.VirtualSweep(loadgen.VirtualOptions{
			Devices:         *simDevices,
			RowsPerDevice:   max(rows, 1),
			Cols:            *l,
			ChurnEvery:      *simChurn,
			Rates:           vRates,
			RequestsPerStep: *simReqs,
			Arrival:         vArrival,
			Seed:            *seed,
			Collector:       col,
		})
		if err != nil {
			return err
		}
		simScenario.Steps = vSteps
		simScenario.KneeQPS = loadgen.DetectKnee(vSteps, 0, 0)
		simScenario.ChurnEvents = stats.ChurnEvents
		simScenario.Outages = stats.Outages
		if err := simScenario.CheckSLOs(simSLOs); err != nil && sloErr == nil {
			sloErr = err
		}
		col.FinishScenario(simScenario)
		simScenario.WriteText(out)
	}

	report := col.Report()
	if *outPath != "" {
		if err := os.MkdirAll(filepath.Dir(*outPath), 0o755); err != nil {
			return err
		}
	}
	if err := report.WriteFiles(*outPath, *mdPath); err != nil {
		return err
	}
	if *outPath != "" {
		fmt.Fprintf(out, "report written to %s", *outPath)
		if *mdPath != "" {
			fmt.Fprintf(out, " and %s", *mdPath)
		}
		fmt.Fprintln(out)
	}
	return sloErr
}
