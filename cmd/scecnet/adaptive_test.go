package main

import (
	"strings"
	"testing"
)

// TestFleetAdaptiveEndToEnd runs the fleet subcommand with the closed-loop
// control plane on: every query still verifies exactly and the adaptive
// summary line reports control activity.
func TestFleetAdaptiveEndToEnd(t *testing.T) {
	var out strings.Builder
	args := []string{"fleet", "-m", "30", "-l", "6", "-k", "4", "-standbys", "2",
		"-queries", "6", "-adaptive", "-replan-every", "20ms", "-seed", "3"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"served 6 queries; every decoded A·x verified exactly",
		"adaptive summary: replans=",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestFleetAdaptiveNeedsFleetBackend(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"fleet", "-backend", "local", "-adaptive"}, &out); err == nil {
		t.Error("local backend with -adaptive should error")
	}
}
