package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/scec/scec/internal/obs"
)

// TestDemoMetricsEndpoint runs one demo round trip and asserts the wired
// metric names are served on a live /metrics endpoint with non-zero RPC
// latency histograms and stage-span durations.
func TestDemoMetricsEndpoint(t *testing.T) {
	var out strings.Builder
	args := []string{"demo", "-m", "40", "-l", "8", "-k", "5", "-seed", "4", "-metrics-addr", "127.0.0.1:0"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"serving telemetry on http://", "stage timings:", "allocate", "gather"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("demo output missing %q:\n%s", want, out.String())
		}
	}

	// The demo's ephemeral server shuts down with the run; serve the same
	// process-wide registry again for the endpoint smoke test.
	srv, err := obs.StartServer(nil, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, name := range []string{
		obs.MetricRPCClientRequests,
		obs.MetricRPCClientSeconds + "_count",
		obs.MetricRPCClientSent,
		obs.MetricRPCClientReceived,
		obs.MetricRPCServerRequests,
		obs.MetricRPCServerSeconds + "_count",
		obs.MetricRPCServerRead,
		obs.MetricRPCServerWritten,
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	for _, stage := range obs.Stages {
		line := obs.MetricStageSeconds + `_count{stage="` + stage + `"}`
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing stage series %s", line)
			continue
		}
		// Non-zero: the count line must not read " 0".
		for _, l := range strings.Split(body, "\n") {
			if strings.HasPrefix(l, line) && strings.HasSuffix(l, " 0") {
				t.Errorf("stage %q has zero observations: %s", stage, l)
			}
		}
	}
	// Non-zero RPC latency histogram.
	for _, l := range strings.Split(body, "\n") {
		if strings.HasPrefix(l, obs.MetricRPCClientSeconds+"_count") && strings.HasSuffix(l, " 0") {
			t.Errorf("zero-count client latency histogram: %s", l)
		}
	}
}
