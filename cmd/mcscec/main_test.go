package main

import (
	"strings"
	"testing"
)

func TestRunWithExplicitCosts(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-m", "10", "-costs", "1,2,3,4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"instance: m=10 k=4", "optimal plan (TA1)", "TAw/oS", "MaxNode", "MinNode", "RNode"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunWithSampledFleets(t *testing.T) {
	for _, dist := range []string{"uniform", "normal"} {
		var out strings.Builder
		if err := run([]string{"-m", "100", "-k", "8", "-dist", dist, "-seed", "3"}, &out); err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if !strings.Contains(out.String(), "optimal plan") {
			t.Fatalf("%s: no plan printed", dist)
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-m", "50", "-k", "6", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-m", "50", "-k", "6", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed must reproduce identical output")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-m", "0", "-costs", "1,2"},                     // invalid m
		{"-m", "10", "-costs", "1"},                      // one device
		{"-m", "10", "-costs", "1,abc"},                  // unparseable cost
		{"-m", "10", "-dist", "exponential"},             // unknown distribution
		{"-m", "10", "-dist", "uniform", "-cmax", "0.5"}, // invalid c_max
		{"-m", "10", "-dist", "normal", "-mu", "-2"},     // invalid mu
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestBuildInstanceExplicit(t *testing.T) {
	in, err := buildInstance(5, " 1.5, 2.5 ", 0, "", 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.M != 5 || in.K() != 2 || in.Costs[0] != 1.5 {
		t.Fatalf("instance = %+v", in)
	}
}
