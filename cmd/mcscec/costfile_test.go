package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "costs.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadCostFileUnitCosts(t *testing.T) {
	path := writeTemp(t, `{"m": 50, "costs": [1.5, 0.7, 2.2]}`)
	in, err := loadCostFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if in.M != 50 || in.K() != 3 || in.Costs[1] != 0.7 {
		t.Fatalf("instance = %+v", in)
	}
}

func TestLoadCostFileComponents(t *testing.T) {
	path := writeTemp(t, `{
		"m": 20, "l": 4,
		"components": [
			{"storage": 1, "add": 1, "mul": 2, "comm": 3},
			{"storage": 0, "add": 0, "mul": 1, "comm": 0}
		]}`)
	in, err := loadCostFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// device 0: 5*1 + 4*2 + 3*1 + 3 = 19; device 1: 4*1 = 4
	if in.M != 20 || in.Costs[0] != 19 || in.Costs[1] != 4 {
		t.Fatalf("instance = %+v", in)
	}
}

func TestLoadCostFileErrors(t *testing.T) {
	cases := map[string]string{
		"both forms":     `{"m": 5, "costs": [1], "components": [{"mul": 1}]}`,
		"neither form":   `{"m": 5}`,
		"missing l":      `{"m": 5, "components": [{"mul": 1}]}`,
		"bad components": `{"m": 5, "l": 2, "components": [{"add": 3, "mul": 1}]}`,
		"bad json":       `{`,
	}
	for name, content := range cases {
		if _, err := loadCostFile(writeTemp(t, content)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := loadCostFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file: expected error")
	}
}

func TestRunWithCostFileAndJSONOutput(t *testing.T) {
	path := writeTemp(t, `{"m": 12, "costs": [1, 2, 3, 4]}`)
	var out strings.Builder
	if err := run([]string{"-costfile", path, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc planJSON
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, out.String())
	}
	if doc.M != 12 || doc.K != 4 || doc.R < 1 || doc.Cost < doc.LowerBound-1e-9 {
		t.Fatalf("doc = %+v", doc)
	}
	if len(doc.Baselines) != 4 {
		t.Fatalf("baselines = %v", doc.Baselines)
	}
	if len(doc.Assignments) != doc.Devices {
		t.Fatalf("%d assignments for %d devices", len(doc.Assignments), doc.Devices)
	}
}

func TestRunCostFileMFallback(t *testing.T) {
	path := writeTemp(t, `{"costs": [1, 2]}`)
	var out strings.Builder
	if err := run([]string{"-costfile", path, "-m", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "m=7") {
		t.Fatalf("fallback m not used:\n%s", out.String())
	}
}
