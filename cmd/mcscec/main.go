// Command mcscec solves one MCSCEC task-allocation instance and prints the
// optimal plan next to the lower bound and every baseline from the paper's
// evaluation.
//
// Device costs come from one of:
//
//	-costs 1.5,0.7,2.2      explicit per-device unit costs
//	-k 25 -dist uniform     a fleet sampled from U(1, c_max)
//	-k 25 -dist normal      a fleet sampled from N(mu, sigma²)
//
// Example:
//
//	mcscec -m 5000 -k 25 -dist uniform -cmax 5 -seed 7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"

	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcscec:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcscec", flag.ContinueOnError)
	var (
		m        = fs.Int("m", 5000, "number of rows of the confidential matrix A")
		costs    = fs.String("costs", "", "comma-separated per-device unit costs (overrides -k/-dist)")
		k        = fs.Int("k", 25, "number of edge devices when sampling a fleet")
		dist     = fs.String("dist", "uniform", "cost distribution: uniform | normal")
		cmax     = fs.Float64("cmax", 5, "c_max for the uniform distribution U(1, c_max)")
		mu       = fs.Float64("mu", 5, "mu for the normal distribution")
		sigma    = fs.Float64("sigma", 1.25, "sigma for the normal distribution")
		seed     = fs.Uint64("seed", 1, "random seed for fleet sampling and RNode")
		verify   = fs.Bool("verify", true, "cross-check TA1 against TA2 and the plan invariants")
		costfile = fs.String("costfile", "", "JSON cost file (see cmd doc); overrides -costs/-k/-dist")
		jsonOut  = fs.Bool("json", false, "emit the result as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in alloc.Instance
	if *costfile != "" {
		loaded, err := loadCostFile(*costfile)
		if err != nil {
			return err
		}
		in = loaded
		if in.M == 0 {
			in.M = *m
		}
	} else {
		built, err := buildInstance(*m, *costs, *k, *dist, *cmax, *mu, *sigma, *seed)
		if err != nil {
			return err
		}
		in = built
	}

	plan, err := alloc.TA1(in)
	if err != nil {
		return err
	}
	if *verify {
		p2, err := alloc.TA2(in)
		if err != nil {
			return err
		}
		if diff := plan.Cost - p2.Cost; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("TA1 (%g) and TA2 (%g) disagree — please report this instance", plan.Cost, p2.Cost)
		}
		if err := alloc.Verify(in, plan); err != nil {
			return err
		}
	}

	lb, err := alloc.LowerBound(in)
	if err != nil {
		return err
	}
	star, err := alloc.IStar(in)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewPCG(*seed, 0xba5e))
	baselines := []struct {
		name  string
		solve func() (alloc.Plan, error)
	}{
		{"TAw/oS", func() (alloc.Plan, error) { return alloc.TAWithoutSecurity(in) }},
		{"MaxNode", func() (alloc.Plan, error) { return alloc.MaxNode(in) }},
		{"MinNode", func() (alloc.Plan, error) { return alloc.MinNode(in) }},
		{"RNode", func() (alloc.Plan, error) { return alloc.RNode(in, rng) }},
	}

	if *jsonOut {
		doc := planJSON{
			M: in.M, K: in.K(), IStar: star, R: plan.R, Devices: plan.I,
			Cost: plan.Cost, LowerBound: lb,
			Baselines: make(map[string]costJS, len(baselines)),
		}
		for _, a := range plan.Assignments {
			doc.Assignments = append(doc.Assignments, assignmentJSON{
				Device: a.Device, UnitCost: in.Costs[a.Device], Rows: a.Rows,
			})
		}
		for _, b := range baselines {
			p, err := b.solve()
			if err != nil {
				return err
			}
			doc.Baselines[b.name] = costJS{R: p.R, I: p.I, Cost: p.Cost}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	fmt.Fprintf(out, "instance: m=%d k=%d i*=%d\n", in.M, in.K(), star)
	fmt.Fprintf(out, "optimal plan (TA1): r=%d devices=%d cost=%.4f (lower bound %.4f, gap %.4f%%)\n",
		plan.R, plan.I, plan.Cost, lb, 100*(plan.Cost-lb)/lb)
	for _, a := range plan.Assignments {
		fmt.Fprintf(out, "  device %2d  unit cost %8.4f  coded rows %d\n", a.Device, in.Costs[a.Device], a.Rows)
	}

	fmt.Fprintln(out, "baselines:")
	for _, b := range baselines {
		p, err := b.solve()
		if err != nil {
			return err
		}
		rel := 100 * (p.Cost - plan.Cost) / plan.Cost
		fmt.Fprintf(out, "  %-7s r=%5d devices=%2d cost=%.4f (%+.2f%% vs optimal)\n", b.name, p.R, p.I, p.Cost, rel)
	}
	return nil
}

func buildInstance(m int, costsCSV string, k int, dist string, cmax, mu, sigma float64, seed uint64) (alloc.Instance, error) {
	if costsCSV != "" {
		parts := strings.Split(costsCSV, ",")
		costs := make([]float64, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return alloc.Instance{}, fmt.Errorf("parse cost %q: %w", p, err)
			}
			costs = append(costs, v)
		}
		return alloc.Instance{M: m, Costs: costs}, nil
	}
	rng := rand.New(rand.NewPCG(seed, 0xf1ee7))
	switch dist {
	case "uniform":
		d := workload.Uniform{Max: cmax}
		if err := d.Validate(); err != nil {
			return alloc.Instance{}, err
		}
		return workload.Instance(rng, m, k, d), nil
	case "normal":
		d := workload.Normal{Mu: mu, Sigma: sigma}
		if err := d.Validate(); err != nil {
			return alloc.Instance{}, err
		}
		return workload.Instance(rng, m, k, d), nil
	default:
		return alloc.Instance{}, fmt.Errorf("unknown distribution %q (want uniform or normal)", dist)
	}
}
