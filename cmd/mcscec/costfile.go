package main

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/cost"
)

// costFile is the JSON schema accepted by -costfile. Either give unit costs
// directly:
//
//	{"m": 5000, "costs": [1.5, 0.7, 2.2]}
//
// or per-device component prices plus the row length l used to fold them
// (Eq. (1)):
//
//	{"m": 5000, "l": 256,
//	 "components": [{"storage": 0.01, "add": 0.004, "mul": 0.008, "comm": 0.9}, …]}
type costFile struct {
	M          int              `json:"m"`
	Costs      []float64        `json:"costs,omitempty"`
	L          int              `json:"l,omitempty"`
	Components []costFileDevice `json:"components,omitempty"`
}

type costFileDevice struct {
	Storage float64 `json:"storage"`
	Add     float64 `json:"add"`
	Mul     float64 `json:"mul"`
	Comm    float64 `json:"comm"`
}

// loadCostFile parses a -costfile JSON document into an instance.
func loadCostFile(path string) (alloc.Instance, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return alloc.Instance{}, fmt.Errorf("read cost file: %w", err)
	}
	var cf costFile
	if err := json.Unmarshal(raw, &cf); err != nil {
		return alloc.Instance{}, fmt.Errorf("parse cost file %s: %w", path, err)
	}
	switch {
	case len(cf.Costs) > 0 && len(cf.Components) > 0:
		return alloc.Instance{}, fmt.Errorf("cost file %s: give either costs or components, not both", path)
	case len(cf.Costs) > 0:
		return alloc.Instance{M: cf.M, Costs: cf.Costs}, nil
	case len(cf.Components) > 0:
		if cf.L < 1 {
			return alloc.Instance{}, fmt.Errorf("cost file %s: components need a row length l >= 1", path)
		}
		comps := make([]cost.Components, len(cf.Components))
		for j, d := range cf.Components {
			comps[j] = cost.Components{Storage: d.Storage, Add: d.Add, Mul: d.Mul, Comm: d.Comm}
		}
		units, err := cost.Units(cf.L, comps)
		if err != nil {
			return alloc.Instance{}, fmt.Errorf("cost file %s: %w", path, err)
		}
		return alloc.Instance{M: cf.M, Costs: units}, nil
	default:
		return alloc.Instance{}, fmt.Errorf("cost file %s: no costs or components", path)
	}
}

// planJSON is the -json output schema.
type planJSON struct {
	M           int               `json:"m"`
	K           int               `json:"k"`
	IStar       int               `json:"iStar"`
	R           int               `json:"r"`
	Devices     int               `json:"devices"`
	Cost        float64           `json:"cost"`
	LowerBound  float64           `json:"lowerBound"`
	Assignments []assignmentJSON  `json:"assignments"`
	Baselines   map[string]costJS `json:"baselines"`
}

type assignmentJSON struct {
	Device   int     `json:"device"`
	UnitCost float64 `json:"unitCost"`
	Rows     int     `json:"rows"`
}

type costJS struct {
	R    int     `json:"r"`
	I    int     `json:"devices"`
	Cost float64 `json:"cost"`
}
