package main

import (
	"strings"
	"testing"

	"github.com/scec/scec/internal/sim"
)

func TestRunVerifiesPipeline(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-m", "100", "-l", "16", "-k", "6", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"plan:", "totals:", "decoded result verified"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunWithStraggler(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-m", "60", "-l", "8", "-k", "5", "-straggler", "0=100"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "decoded result verified") {
		t.Fatal("straggler run should still verify")
	}
}

func TestRunWithForcedFailure(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-m", "60", "-l", "8", "-k", "5", "-fail", "0"}, &out)
	if err == nil {
		t.Fatal("forced failure should abort the run")
	}
	if !strings.Contains(out.String(), "FAILED") {
		t.Fatalf("report should flag the failed device:\n%s", out.String())
	}
}

func TestRunWithReplication(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-m", "60", "-l", "8", "-k", "5", "-replicas", "3", "-straggler", "0=100"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "replication x3") || !strings.Contains(got, "storage overhead 3.0x") {
		t.Fatalf("replication summary missing:\n%s", got)
	}
	if !strings.Contains(got, "decoded result verified") {
		t.Fatal("replicated run should verify")
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-m", "60", "-l", "8", "-k", "5", "-fail", "99"},
		{"-m", "60", "-l", "8", "-k", "5", "-straggler", "bogus"},
		{"-m", "60", "-l", "8", "-k", "5", "-straggler", "99=2"},
		{"-m", "60", "-l", "8", "-k", "5", "-straggler", "x=2"},
		{"-m", "60", "-l", "8", "-k", "5", "-straggler", "0=x"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestApplyStragglers(t *testing.T) {
	profiles := []sim.DeviceProfile{sim.DefaultProfile(), sim.DefaultProfile()}
	if err := applyStragglers(profiles, "1=4.5"); err != nil {
		t.Fatal(err)
	}
	if profiles[1].StragglerFactor != 4.5 || profiles[0].StragglerFactor != 1 {
		t.Fatalf("profiles = %+v", profiles)
	}
	if err := applyStragglers(profiles, ""); err != nil {
		t.Fatal("empty spec should be a no-op")
	}
}
