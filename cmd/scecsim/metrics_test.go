package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/scec/scec/internal/obs"
)

// TestMetricsJSONSnapshot runs the simulator with -metrics-json and checks
// the snapshot carries the same stage metric names a real transport run
// records (the acceptance contract: simulated and live exports are
// comparable by name).
func TestMetricsJSONSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out strings.Builder
	if err := run([]string{"-m", "100", "-l", "16", "-k", "6", "-seed", "2", "-metrics-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stage timings") {
		t.Errorf("output missing the stage table:\n%s", out.String())
	}

	var snap obs.Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}

	stages := map[string]int64{}
	names := map[string]bool{}
	for _, fam := range snap.Metrics {
		names[fam.Name] = true
		if fam.Name == obs.MetricStageSeconds {
			for _, s := range fam.Series {
				stages[s.Labels["stage"]] += s.Count
			}
		}
	}
	// Identical names to a real run: every pipeline stage appears under
	// obs.MetricStageSeconds with observations (allocate/encode recorded by
	// Deploy on the wall clock, store/compute/gather/decode by the
	// simulator on the virtual clock).
	for _, stage := range obs.Stages {
		if stages[stage] == 0 {
			t.Errorf("snapshot missing observations for stage %q (got %v)", stage, stages)
		}
	}
	for _, name := range []string{obs.MetricStageLastSeconds, obs.MetricSimDeviceResultSeconds, obs.MetricSimRuns} {
		if !names[name] {
			t.Errorf("snapshot missing %s", name)
		}
	}
}
