package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/scec/scec/internal/adapt"
)

// adaptConfig carries the -adaptive flags into runAdaptScenario.
type adaptConfig struct {
	devices  int
	m        int
	qps      float64
	duration time.Duration
	seed     uint64
	initialR int
	out      string
	check    bool
}

// Acceptance bounds for -adapt-check (and the committed results/adapt.json):
// the adaptive arm's steady-state p99 must recover to within 1.5× the
// instant-replanning oracle, the frozen baseline must remain at least 2×
// worse than adaptive, and no arm may fail a single query.
const (
	adaptMaxOverOracle   = 1.5
	adaptMinFrozenFactor = 2.0
)

// runAdaptScenario is scecsim's closed-loop recovery study: a large
// virtual-clock fleet deployed by TA2 is hit mid-run by a chronic straggler
// and a transient outage, and three regimes serve the same Poisson arrivals —
// adaptive (the internal/adapt control plane), frozen (never re-plans), and
// oracle (re-plans instantly on the true factors). The report is
// deterministic for a given seed.
func runAdaptScenario(out io.Writer, cfg adaptConfig) error {
	rep, err := adapt.RunScenario(adapt.ScenarioConfig{
		Devices:  cfg.devices,
		M:        cfg.m,
		QPS:      cfg.qps,
		Duration: cfg.duration,
		Seed:     cfg.seed,
		InitialR: cfg.initialR,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "recovery scenario: %d devices, m=%d, %.0f QPS for %s (seed %d)\n",
		rep.Devices, rep.M, rep.QPS, time.Duration(rep.DurationMs)*time.Millisecond, rep.Seed)
	fmt.Fprintf(out, "faults: chronic straggler on device %d, outage on device %d\n",
		rep.StragglerDevice, rep.OutageDevice)
	fmt.Fprintln(out, "arm       steady-p50   steady-p95   steady-p99   overall-p99  final-r  replans  adopts  moved")
	for _, a := range []adapt.ArmResult{rep.Frozen, rep.Adaptive, rep.Oracle} {
		fmt.Fprintf(out, "%-8s %9.2fms  %9.2fms  %9.2fms  %9.2fms  %7d  %7d  %6d  %5d\n",
			a.Name, a.SteadyP50Ms, a.SteadyP95Ms, a.SteadyP99Ms, a.OverallP99Ms,
			a.FinalR, a.Replans, a.Adopts, a.BlocksMoved)
	}
	fmt.Fprintf(out, "adaptive/oracle steady p99 = %.2fx (bound ≤ %.1fx); frozen/adaptive = %.2fx (bound ≥ %.1fx)\n",
		rep.AdaptiveOverOracleP99, adaptMaxOverOracle, rep.FrozenOverAdaptiveP99, adaptMinFrozenFactor)
	for _, ev := range rep.Events {
		fmt.Fprintf(out, "  %s\n", ev)
	}

	if cfg.out != "" {
		if dir := filepath.Dir(cfg.out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", cfg.out)
	}
	if cfg.check {
		return checkAdaptReport(rep)
	}
	return nil
}

// checkAdaptReport enforces the recovery acceptance bounds.
func checkAdaptReport(rep *adapt.RecoveryReport) error {
	for _, a := range []adapt.ArmResult{rep.Frozen, rep.Adaptive, rep.Oracle} {
		if a.FailedQueries != 0 {
			return fmt.Errorf("adapt-check: %s arm failed %d queries; migrations must drop none", a.Name, a.FailedQueries)
		}
	}
	if rep.AdaptiveOverOracleP99 > adaptMaxOverOracle {
		return fmt.Errorf("adapt-check: adaptive steady p99 is %.2fx the oracle's (bound %.1fx)",
			rep.AdaptiveOverOracleP99, adaptMaxOverOracle)
	}
	if rep.FrozenOverAdaptiveP99 < adaptMinFrozenFactor {
		return fmt.Errorf("adapt-check: frozen baseline is only %.2fx worse than adaptive (bound %.1fx): the control plane bought too little",
			rep.FrozenOverAdaptiveP99, adaptMinFrozenFactor)
	}
	return nil
}
