// Command scecsim runs the complete SCEC pipeline in-process on the
// event-level simulator: allocate, encode, distribute, compute on every
// simulated device, decode, and verify against the plaintext product. It
// prints the per-device timeline and the resource accounting that Eq. (1)
// prices.
//
// With -load it switches from one verified pipeline run to the heavy-traffic
// harness: an open-loop, coordinated-omission-safe offered-load sweep over
// the planned fleet (or -load-devices virtual devices) on the virtual clock,
// with churn, reporting the latency-vs-load curve and saturation knee.
//
// Examples:
//
//	scecsim -m 2000 -l 128 -k 12 -seed 3 -straggler 2=25
//	scecsim -load -load-devices 1000 -load-rates 500,1000,2000,4000
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/engine"
	"github.com/scec/scec/internal/loadgen"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
	"github.com/scec/scec/internal/sim"
	"github.com/scec/scec/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scecsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scecsim", flag.ContinueOnError)
	var (
		m         = fs.Int("m", 1000, "rows of the confidential matrix A")
		l         = fs.Int("l", 64, "columns of A (and length of x)")
		k         = fs.Int("k", 10, "edge devices in the candidate fleet")
		cmax      = fs.Float64("cmax", 5, "fleet costs sampled from U(1, c_max)")
		tFlag     = fs.Int("t", 1, "collusion threshold: t >= 2 deploys the Cauchy-masked coding tier secure against t colluding devices")
		seed      = fs.Uint64("seed", 1, "random seed")
		straggler = fs.String("straggler", "", "per-device slowdowns, e.g. 0=10,2=3")
		failDev   = fs.Int("fail", -1, "force this device (scheme order) to fail")
		replicas  = fs.Int("replicas", 1, "copies of each coded block (replication masks stragglers/failures)")
		backend   = fs.String("backend", "sim", "execution backend: sim (virtual clock) or local (in-process kernels)")
		metrics   = fs.String("metrics-json", "", "write the run's telemetry snapshot as JSON to this path (- for stdout)")
		traceFile = fs.String("trace-export", "", "export the query's trace as JSON: the wall-clock engine spans plus the linked virtual-clock sim.run/sim.device timeline")

		load        = fs.Bool("load", false, "run the open-loop heavy-traffic sweep on the virtual clock instead of one pipeline run")
		loadDevices = fs.Int("load-devices", 0, "virtual fleet size for -load (0 uses the deployment plan's device count)")
		loadRates   = fs.String("load-rates", "500,1000,2000,4000", "offered-load steps (QPS) for -load")
		loadReqs    = fs.Int("load-requests", 2000, "requests per -load sweep step")
		loadChurn   = fs.Duration("load-churn", 200*time.Millisecond, "mean virtual interval between churn events during -load (0 disables churn)")
		loadArrival = fs.String("load-arrival", "poisson", "-load arrival schedule: poisson, uniform, or bursty[:FxL]")
		loadSLO     = fs.String("load-slo", "", "comma-separated SLOs for -load, e.g. p99<=50ms@1000 (violations exit non-zero)")
		loadOut     = fs.String("load-out", "", "write the -load report as JSON to this path")
		loadMD      = fs.String("load-md", "", "write the -load report as markdown to this path")

		adaptive      = fs.Bool("adaptive", false, "run the closed-loop recovery scenario: adaptive vs frozen vs oracle re-planning under a mid-run straggler and outage")
		adaptDevices  = fs.Int("adapt-devices", 0, "candidate pool size for -adaptive (0 for the scenario default, 1000)")
		adaptM        = fs.Int("adapt-m", 0, "data-matrix rows for -adaptive (0 for the scenario default, 4096)")
		adaptQPS      = fs.Float64("adapt-qps", 0, "offered load for -adaptive (0 for the scenario default, 100)")
		adaptDuration = fs.Duration("adapt-duration", 0, "virtual run length for -adaptive (0 for the scenario default, 60s)")
		adaptInitialR = fs.Int("adapt-initial-r", 0, "force the -adaptive starting deployment to this suboptimal r (0 starts at the TA2 optimum)")
		adaptOut      = fs.String("adapt-out", "", "write the -adaptive recovery report as JSON to this path")
		adaptCheck    = fs.Bool("adapt-check", false, "enforce the -adaptive acceptance bounds (recovery within 1.5x oracle, >=2x better than frozen, zero failed queries); violations exit non-zero")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tFlag < 1 {
		return fmt.Errorf("-t %d: the collusion threshold must be at least 1", *tFlag)
	}
	if *adaptive {
		if *load || *straggler != "" || *failDev >= 0 || *replicas > 1 || *traceFile != "" {
			return fmt.Errorf("-adaptive runs its own three-arm recovery scenario; -load, -straggler, -fail, -replicas, and -trace-export configure other modes")
		}
		if *tFlag >= 2 {
			return fmt.Errorf("-adaptive re-plans with the t = 1 allocators; the t-collusion tier (-t %d) is static for now", *tFlag)
		}
		return runAdaptScenario(out, adaptConfig{
			devices: *adaptDevices, m: *adaptM, qps: *adaptQPS,
			duration: *adaptDuration, seed: *seed, initialR: *adaptInitialR,
			out: *adaptOut, check: *adaptCheck,
		})
	}
	if *load {
		if *straggler != "" || *failDev >= 0 || *replicas > 1 || *traceFile != "" || *backend != "sim" {
			return fmt.Errorf("-load sweeps a homogeneous virtual fleet under churn; -straggler, -fail, -replicas, -trace-export, and -backend configure single pipeline runs")
		}
		return runSimLoad(out, simLoadConfig{
			m: *m, l: *l, k: *k, cmax: *cmax, t: *tFlag, seed: *seed,
			devices: *loadDevices, rates: *loadRates, requests: *loadReqs,
			churn: *loadChurn, arrival: *loadArrival, slo: *loadSLO,
			out: *loadOut, md: *loadMD, metricsPath: *metrics,
		})
	}

	strag, err := parseStragglers(*straggler)
	if err != nil {
		return err
	}
	profile := func(j int) sim.DeviceProfile {
		p := sim.DefaultProfile()
		if fac, ok := strag[j]; ok {
			p.StragglerFactor = fac
		}
		if j == *failDev {
			p.FailProb = 1
		}
		return p
	}
	var tr *trace.Tracer
	var opts []scec.DeployOption[uint64]
	if *tFlag >= 2 {
		opts = append(opts, scec.WithCollusion[uint64](*tFlag))
	}
	if *traceFile != "" {
		tr = trace.New(trace.Options{Service: "scecsim"})
		opts = append(opts, scec.WithTracing[uint64](tr))
	}
	switch *backend {
	case "sim":
		opts = append(opts, scec.WithExecutor(scec.SimExecutor[uint64](scec.SimExecutorConfig{
			Profile:         profile,
			UserComputeRate: 1e9,
			Seed:            *seed,
		})))
	case "local":
		if *straggler != "" || *failDev >= 0 || *replicas > 1 {
			return fmt.Errorf("-backend local models no devices; -straggler, -fail, and -replicas need -backend sim")
		}
	default:
		return fmt.Errorf("unknown -backend %q (want sim or local)", *backend)
	}

	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(*seed, 0x51ec))
	in := workload.Instance(rng, *m, *k, workload.Uniform{Max: *cmax})

	a := scec.RandomMatrix(f, rng, *m, *l)
	dep, err := scec.Deploy(f, a, in.Costs, rng, opts...)
	if err != nil {
		return err
	}
	defer func() { _ = dep.Close() }()
	fmt.Fprintf(out, "plan: %s r=%d t=%d devices=%d cost=%.2f backend=%s\n",
		dep.Plan.Algorithm, dep.Plan.R, dep.Code.T(), dep.Plan.I, dep.Cost(), dep.Backend())
	if *failDev >= dep.Devices() {
		return fmt.Errorf("-fail %d out of range (deployment has %d devices)", *failDev, dep.Devices())
	}
	for dev := range strag {
		if dev >= dep.Devices() {
			return fmt.Errorf("straggler device %d out of range (deployment has %d devices)", dev, dep.Devices())
		}
	}

	x := scec.RandomVector(f, rng, *l)
	want := scec.MulVec(f, a, x)

	if *replicas > 1 {
		rcfg := sim.ReplicatedConfig{
			Replicas:        make([][]sim.DeviceProfile, dep.Devices()),
			UserComputeRate: 1e9,
			Seed:            *seed,
		}
		for j := range rcfg.Replicas {
			group := make([]sim.DeviceProfile, *replicas)
			for rIdx := range group {
				group[rIdx] = profile(j)
			}
			rcfg.Replicas[j] = group
		}
		got, rrep, err := sim.RunReplicated(f, dep.Encoding, x, rcfg)
		if err != nil {
			return err
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("verification failed at entry %d", i)
			}
		}
		fmt.Fprintf(out, "replication x%d: completion %.3fms, storage overhead %.1fx\n",
			*replicas, float64(rrep.CompletionTime.Microseconds())/1000, rrep.StorageOverhead)
		fmt.Fprintf(out, "decoded result verified against plaintext A·x (%d entries)\n", len(got))
		if *traceFile != "" {
			fmt.Fprintln(out, "note: -trace-export records nothing for -replicas > 1 (the replicated run bypasses the traced engine)")
		}
		return finish(out, *metrics)
	}

	got, qerr := dep.MulVec(x)
	if simExec, ok := dep.Executor().(*engine.SimExecutor[uint64]); ok {
		if rep, reported := simExec.LastReport(); reported {
			printReport(out, rep)
		}
	}
	if qerr != nil {
		return qerr
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("verification failed at entry %d", i)
		}
	}
	fmt.Fprintf(out, "decoded result verified against plaintext A·x (%d entries)\n", len(got))
	if *traceFile != "" {
		if err := tr.WriteFile(*traceFile); err != nil {
			return fmt.Errorf("trace export: %w", err)
		}
		_, _, _, retained := tr.Stats()
		fmt.Fprintf(out, "exported %d retained spans to %s\n", retained, *traceFile)
	}
	return finish(out, *metrics)
}

// simLoadConfig carries the -load* flags into runSimLoad.
type simLoadConfig struct {
	m, l, k, t  int
	cmax        float64
	seed        uint64
	devices     int
	rates       string
	requests    int
	churn       time.Duration
	arrival     string
	slo         string
	out, md     string
	metricsPath string
}

// runSimLoad is scecsim's heavy-traffic mode: plan a deployment for the
// configured instance exactly as a normal run would, then sweep the planned
// fleet (or -load-devices virtual devices holding the same coded work) with
// the open-loop virtual-clock generator under churn. The report shares the
// results/load.json schema the scecnet load harness writes, and any declared
// -load-slo violation is the returned (non-zero exit) error.
func runSimLoad(out io.Writer, cfg simLoadConfig) error {
	arrival, err := loadgen.ParseArrival(cfg.arrival)
	if err != nil {
		return err
	}
	rates, err := loadgen.ParseRates(cfg.rates)
	if err != nil {
		return err
	}
	slos, err := loadgen.ParseSLOs(cfg.slo)
	if err != nil {
		return err
	}

	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(cfg.seed, 0x51ec))
	in := workload.Instance(rng, cfg.m, cfg.k, workload.Uniform{Max: cfg.cmax})
	a := scec.RandomMatrix(f, rng, cfg.m, cfg.l)
	var opts []scec.DeployOption[uint64]
	if cfg.t >= 2 {
		if cfg.devices > 0 {
			return fmt.Errorf("-load-devices spreads rows uniformly over a virtual fleet; the -t %d layout comes from the collusion plan, so leave -load-devices unset", cfg.t)
		}
		opts = append(opts, scec.WithCollusion[uint64](cfg.t))
	}
	dep, err := scec.Deploy(f, a, in.Costs, rng, opts...)
	if err != nil {
		return err
	}
	defer func() { _ = dep.Close() }()
	devices := cfg.devices
	if devices <= 0 {
		devices = dep.Devices()
	}
	// Sweep the plan's own per-device row layout (heterogeneous under the
	// t-collusion tier); a -load-devices override instead spreads the plan's
	// coded rows (m + r in total) uniformly across the virtual fleet.
	var deviceRows []int
	rows := max((cfg.m+dep.Plan.R+devices-1)/devices, 1)
	if cfg.devices <= 0 {
		deviceRows = make([]int, len(dep.Plan.Assignments))
		for j, as := range dep.Plan.Assignments {
			deviceRows[j] = as.Rows
		}
	}
	fmt.Fprintf(out, "plan: %s r=%d t=%d devices=%d cost=%.2f; sweeping %d virtual device(s) at %s QPS (%s arrivals, churn every ~%v)\n",
		dep.Plan.Algorithm, dep.Plan.R, dep.Code.T(), dep.Plan.I, dep.Cost(), devices, cfg.rates, arrival.Name(), cfg.churn)

	col := loadgen.NewCollector()
	sc := loadgen.Scenario{
		Name:    fmt.Sprintf("scecsim-%ddev", devices),
		Backend: "sim",
		Clock:   "virtual",
		Arrival: arrival.Name(),
		Devices: devices,
	}
	col.StartScenario(sc)
	steps, stats, err := loadgen.VirtualSweep(loadgen.VirtualOptions{
		Devices:         devices,
		RowsPerDevice:   rows,
		DeviceRows:      deviceRows,
		Cols:            cfg.l,
		ChurnEvery:      cfg.churn,
		Rates:           rates,
		RequestsPerStep: cfg.requests,
		Arrival:         arrival,
		Seed:            cfg.seed,
		Collector:       col,
	})
	if err != nil {
		return err
	}
	sc.Steps = steps
	sc.KneeQPS = loadgen.DetectKnee(steps, 0, 0)
	sc.ChurnEvents, sc.Outages = stats.ChurnEvents, stats.Outages
	sloErr := sc.CheckSLOs(slos)
	col.FinishScenario(sc)
	sc.WriteText(out)

	if cfg.out != "" {
		if err := os.MkdirAll(filepath.Dir(cfg.out), 0o755); err != nil {
			return err
		}
	}
	report := col.Report()
	if err := report.WriteFiles(cfg.out, cfg.md); err != nil {
		return err
	}
	if cfg.out != "" {
		fmt.Fprintf(out, "report written to %s", cfg.out)
		if cfg.md != "" {
			fmt.Fprintf(out, " and %s", cfg.md)
		}
		fmt.Fprintln(out)
	}
	if err := finish(out, cfg.metricsPath); err != nil {
		return err
	}
	return sloErr
}

// finish prints the registry-backed stage timing table (virtual durations
// for the simulated stages, wall clock for allocate/encode/decode) and
// optionally dumps the full telemetry snapshot as JSON.
func finish(out io.Writer, metricsPath string) error {
	fmt.Fprintln(out, "stage timings (virtual clock for store/compute/gather; wall clock otherwise):")
	if err := obs.WriteStageTable(out, nil); err != nil {
		return err
	}
	switch metricsPath {
	case "":
		return nil
	case "-":
		return obs.Default().WriteJSON(out)
	default:
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		werr := obs.Default().WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		return werr
	}
}

func printReport(out io.Writer, rep sim.Report) {
	fmt.Fprintln(out, "device  rows  field-ops      sent  storage  result-at")
	for _, d := range rep.Devices {
		status := fmt.Sprintf("%9.3fms", float64(d.ResultArrives.Microseconds())/1000)
		if d.Failed {
			status = "   FAILED"
		}
		fmt.Fprintf(out, "%6d %5d %10d %9d %8d %s\n",
			d.Device, d.Rows, d.FieldOps, d.ValuesSent, d.StorageValues, status)
	}
	fmt.Fprintf(out, "totals: %d field ops, %d values sent, %d values stored\n",
		rep.TotalFieldOps, rep.TotalValuesSent, rep.TotalStorageValues)
	if rep.CompletionTime > 0 {
		fmt.Fprintf(out, "completion (incl. %d decode ops): %.3fms\n",
			rep.DecodeOps, float64(rep.CompletionTime.Microseconds())/1000)
	}
}

// parseStragglers parses "dev=factor" pairs into a map, validating syntax
// only; index-range checks happen once the deployment's device count is
// known.
func parseStragglers(spec string) (map[int]float64, error) {
	if spec == "" {
		return nil, nil
	}
	factors := make(map[int]float64)
	for _, pair := range strings.Split(spec, ",") {
		devStr, facStr, found := strings.Cut(pair, "=")
		if !found {
			return nil, fmt.Errorf("bad straggler spec %q (want dev=factor)", pair)
		}
		dev, err := strconv.Atoi(devStr)
		if err != nil {
			return nil, fmt.Errorf("bad straggler device %q: %w", devStr, err)
		}
		fac, err := strconv.ParseFloat(facStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad straggler factor %q: %w", facStr, err)
		}
		if dev < 0 {
			return nil, fmt.Errorf("straggler device %d out of range", dev)
		}
		factors[dev] = fac
	}
	return factors, nil
}

// applyStragglers parses "dev=factor" pairs and applies them to a profile
// slice.
func applyStragglers(profiles []sim.DeviceProfile, spec string) error {
	factors, err := parseStragglers(spec)
	if err != nil {
		return err
	}
	for dev, fac := range factors {
		if dev >= len(profiles) {
			return fmt.Errorf("straggler device %d out of range (deployment has %d devices)", dev, len(profiles))
		}
		profiles[dev].StragglerFactor = fac
	}
	return nil
}
