// Command scecsim runs the complete SCEC pipeline in-process on the
// event-level simulator: allocate, encode, distribute, compute on every
// simulated device, decode, and verify against the plaintext product. It
// prints the per-device timeline and the resource accounting that Eq. (1)
// prices.
//
// Example:
//
//	scecsim -m 2000 -l 128 -k 12 -seed 3 -straggler 2=25
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/sim"
	"github.com/scec/scec/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scecsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scecsim", flag.ContinueOnError)
	var (
		m         = fs.Int("m", 1000, "rows of the confidential matrix A")
		l         = fs.Int("l", 64, "columns of A (and length of x)")
		k         = fs.Int("k", 10, "edge devices in the candidate fleet")
		cmax      = fs.Float64("cmax", 5, "fleet costs sampled from U(1, c_max)")
		seed      = fs.Uint64("seed", 1, "random seed")
		straggler = fs.String("straggler", "", "per-device slowdowns, e.g. 0=10,2=3")
		failDev   = fs.Int("fail", -1, "force this device (scheme order) to fail")
		replicas  = fs.Int("replicas", 1, "copies of each coded block (replication masks stragglers/failures)")
		metrics   = fs.String("metrics-json", "", "write the run's telemetry snapshot as JSON to this path (- for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(*seed, 0x51ec))
	in := workload.Instance(rng, *m, *k, workload.Uniform{Max: *cmax})

	a := scec.RandomMatrix(f, rng, *m, *l)
	dep, err := scec.Deploy(f, a, in.Costs, rng)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "plan: r=%d devices=%d cost=%.2f\n", dep.Plan.R, dep.Plan.I, dep.Cost())

	cfg := sim.Config{UserComputeRate: 1e9, Seed: *seed}
	cfg.Profiles = make([]sim.DeviceProfile, dep.Devices())
	for j := range cfg.Profiles {
		cfg.Profiles[j] = sim.DefaultProfile()
	}
	if err := applyStragglers(cfg.Profiles, *straggler); err != nil {
		return err
	}
	if *failDev >= 0 {
		if *failDev >= len(cfg.Profiles) {
			return fmt.Errorf("-fail %d out of range (deployment has %d devices)", *failDev, len(cfg.Profiles))
		}
		cfg.Profiles[*failDev].FailProb = 1
	}

	x := scec.RandomVector(f, rng, *l)
	want := scec.MulVec(f, a, x)

	if *replicas > 1 {
		rcfg := sim.ReplicatedConfig{
			Replicas:        make([][]sim.DeviceProfile, dep.Devices()),
			UserComputeRate: cfg.UserComputeRate,
			Seed:            *seed,
		}
		for j := range rcfg.Replicas {
			group := make([]sim.DeviceProfile, *replicas)
			for rIdx := range group {
				group[rIdx] = cfg.Profiles[j]
			}
			rcfg.Replicas[j] = group
		}
		got, rrep, err := sim.RunReplicated(f, dep.Encoding, x, rcfg)
		if err != nil {
			return err
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("verification failed at entry %d", i)
			}
		}
		fmt.Fprintf(out, "replication x%d: completion %.3fms, storage overhead %.1fx\n",
			*replicas, float64(rrep.CompletionTime.Microseconds())/1000, rrep.StorageOverhead)
		fmt.Fprintf(out, "decoded result verified against plaintext A·x (%d entries)\n", len(got))
		return finish(out, *metrics)
	}

	got, rep, err := sim.Run(f, dep.Encoding, x, cfg)
	if err != nil {
		printReport(out, rep)
		return err
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("verification failed at entry %d", i)
		}
	}
	printReport(out, rep)
	fmt.Fprintf(out, "decoded result verified against plaintext A·x (%d entries)\n", len(got))
	return finish(out, *metrics)
}

// finish prints the registry-backed stage timing table (virtual durations
// for the simulated stages, wall clock for allocate/encode) and optionally
// dumps the full telemetry snapshot as JSON.
func finish(out io.Writer, metricsPath string) error {
	fmt.Fprintln(out, "stage timings (virtual clock for store/compute/gather/decode):")
	if err := obs.WriteStageTable(out, nil); err != nil {
		return err
	}
	switch metricsPath {
	case "":
		return nil
	case "-":
		return obs.Default().WriteJSON(out)
	default:
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		werr := obs.Default().WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		return werr
	}
}

func printReport(out io.Writer, rep sim.Report) {
	fmt.Fprintln(out, "device  rows  field-ops      sent  storage  result-at")
	for _, d := range rep.Devices {
		status := fmt.Sprintf("%9.3fms", float64(d.ResultArrives.Microseconds())/1000)
		if d.Failed {
			status = "   FAILED"
		}
		fmt.Fprintf(out, "%6d %5d %10d %9d %8d %s\n",
			d.Device, d.Rows, d.FieldOps, d.ValuesSent, d.StorageValues, status)
	}
	fmt.Fprintf(out, "totals: %d field ops, %d values sent, %d values stored\n",
		rep.TotalFieldOps, rep.TotalValuesSent, rep.TotalStorageValues)
	if rep.CompletionTime > 0 {
		fmt.Fprintf(out, "completion (incl. %d decode ops): %.3fms\n",
			rep.DecodeOps, float64(rep.CompletionTime.Microseconds())/1000)
	}
}

// applyStragglers parses "dev=factor" pairs and applies them.
func applyStragglers(profiles []sim.DeviceProfile, spec string) error {
	if spec == "" {
		return nil
	}
	for _, pair := range strings.Split(spec, ",") {
		devStr, facStr, found := strings.Cut(pair, "=")
		if !found {
			return fmt.Errorf("bad straggler spec %q (want dev=factor)", pair)
		}
		dev, err := strconv.Atoi(devStr)
		if err != nil {
			return fmt.Errorf("bad straggler device %q: %w", devStr, err)
		}
		fac, err := strconv.ParseFloat(facStr, 64)
		if err != nil {
			return fmt.Errorf("bad straggler factor %q: %w", facStr, err)
		}
		if dev < 0 || dev >= len(profiles) {
			return fmt.Errorf("straggler device %d out of range (deployment has %d devices)", dev, len(profiles))
		}
		profiles[dev].StragglerFactor = fac
	}
	return nil
}
