// Command scecsim runs the complete SCEC pipeline in-process on the
// event-level simulator: allocate, encode, distribute, compute on every
// simulated device, decode, and verify against the plaintext product. It
// prints the per-device timeline and the resource accounting that Eq. (1)
// prices.
//
// Example:
//
//	scecsim -m 2000 -l 128 -k 12 -seed 3 -straggler 2=25
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/engine"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
	"github.com/scec/scec/internal/sim"
	"github.com/scec/scec/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scecsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scecsim", flag.ContinueOnError)
	var (
		m         = fs.Int("m", 1000, "rows of the confidential matrix A")
		l         = fs.Int("l", 64, "columns of A (and length of x)")
		k         = fs.Int("k", 10, "edge devices in the candidate fleet")
		cmax      = fs.Float64("cmax", 5, "fleet costs sampled from U(1, c_max)")
		seed      = fs.Uint64("seed", 1, "random seed")
		straggler = fs.String("straggler", "", "per-device slowdowns, e.g. 0=10,2=3")
		failDev   = fs.Int("fail", -1, "force this device (scheme order) to fail")
		replicas  = fs.Int("replicas", 1, "copies of each coded block (replication masks stragglers/failures)")
		backend   = fs.String("backend", "sim", "execution backend: sim (virtual clock) or local (in-process kernels)")
		metrics   = fs.String("metrics-json", "", "write the run's telemetry snapshot as JSON to this path (- for stdout)")
		traceFile = fs.String("trace-export", "", "export the query's trace as JSON: the wall-clock engine spans plus the linked virtual-clock sim.run/sim.device timeline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	strag, err := parseStragglers(*straggler)
	if err != nil {
		return err
	}
	profile := func(j int) sim.DeviceProfile {
		p := sim.DefaultProfile()
		if fac, ok := strag[j]; ok {
			p.StragglerFactor = fac
		}
		if j == *failDev {
			p.FailProb = 1
		}
		return p
	}
	var tr *trace.Tracer
	var opts []scec.DeployOption[uint64]
	if *traceFile != "" {
		tr = trace.New(trace.Options{Service: "scecsim"})
		opts = append(opts, scec.WithTracing[uint64](tr))
	}
	switch *backend {
	case "sim":
		opts = append(opts, scec.WithExecutor(scec.SimExecutor[uint64](scec.SimExecutorConfig{
			Profile:         profile,
			UserComputeRate: 1e9,
			Seed:            *seed,
		})))
	case "local":
		if *straggler != "" || *failDev >= 0 || *replicas > 1 {
			return fmt.Errorf("-backend local models no devices; -straggler, -fail, and -replicas need -backend sim")
		}
	default:
		return fmt.Errorf("unknown -backend %q (want sim or local)", *backend)
	}

	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(*seed, 0x51ec))
	in := workload.Instance(rng, *m, *k, workload.Uniform{Max: *cmax})

	a := scec.RandomMatrix(f, rng, *m, *l)
	dep, err := scec.Deploy(f, a, in.Costs, rng, opts...)
	if err != nil {
		return err
	}
	defer func() { _ = dep.Close() }()
	fmt.Fprintf(out, "plan: r=%d devices=%d cost=%.2f backend=%s\n", dep.Plan.R, dep.Plan.I, dep.Cost(), dep.Backend())
	if *failDev >= dep.Devices() {
		return fmt.Errorf("-fail %d out of range (deployment has %d devices)", *failDev, dep.Devices())
	}
	for dev := range strag {
		if dev >= dep.Devices() {
			return fmt.Errorf("straggler device %d out of range (deployment has %d devices)", dev, dep.Devices())
		}
	}

	x := scec.RandomVector(f, rng, *l)
	want := scec.MulVec(f, a, x)

	if *replicas > 1 {
		rcfg := sim.ReplicatedConfig{
			Replicas:        make([][]sim.DeviceProfile, dep.Devices()),
			UserComputeRate: 1e9,
			Seed:            *seed,
		}
		for j := range rcfg.Replicas {
			group := make([]sim.DeviceProfile, *replicas)
			for rIdx := range group {
				group[rIdx] = profile(j)
			}
			rcfg.Replicas[j] = group
		}
		got, rrep, err := sim.RunReplicated(f, dep.Encoding, x, rcfg)
		if err != nil {
			return err
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("verification failed at entry %d", i)
			}
		}
		fmt.Fprintf(out, "replication x%d: completion %.3fms, storage overhead %.1fx\n",
			*replicas, float64(rrep.CompletionTime.Microseconds())/1000, rrep.StorageOverhead)
		fmt.Fprintf(out, "decoded result verified against plaintext A·x (%d entries)\n", len(got))
		if *traceFile != "" {
			fmt.Fprintln(out, "note: -trace-export records nothing for -replicas > 1 (the replicated run bypasses the traced engine)")
		}
		return finish(out, *metrics)
	}

	got, qerr := dep.MulVec(x)
	if simExec, ok := dep.Executor().(*engine.SimExecutor[uint64]); ok {
		if rep, reported := simExec.LastReport(); reported {
			printReport(out, rep)
		}
	}
	if qerr != nil {
		return qerr
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("verification failed at entry %d", i)
		}
	}
	fmt.Fprintf(out, "decoded result verified against plaintext A·x (%d entries)\n", len(got))
	if *traceFile != "" {
		if err := tr.WriteFile(*traceFile); err != nil {
			return fmt.Errorf("trace export: %w", err)
		}
		_, _, _, retained := tr.Stats()
		fmt.Fprintf(out, "exported %d retained spans to %s\n", retained, *traceFile)
	}
	return finish(out, *metrics)
}

// finish prints the registry-backed stage timing table (virtual durations
// for the simulated stages, wall clock for allocate/encode/decode) and
// optionally dumps the full telemetry snapshot as JSON.
func finish(out io.Writer, metricsPath string) error {
	fmt.Fprintln(out, "stage timings (virtual clock for store/compute/gather; wall clock otherwise):")
	if err := obs.WriteStageTable(out, nil); err != nil {
		return err
	}
	switch metricsPath {
	case "":
		return nil
	case "-":
		return obs.Default().WriteJSON(out)
	default:
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		werr := obs.Default().WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		return werr
	}
}

func printReport(out io.Writer, rep sim.Report) {
	fmt.Fprintln(out, "device  rows  field-ops      sent  storage  result-at")
	for _, d := range rep.Devices {
		status := fmt.Sprintf("%9.3fms", float64(d.ResultArrives.Microseconds())/1000)
		if d.Failed {
			status = "   FAILED"
		}
		fmt.Fprintf(out, "%6d %5d %10d %9d %8d %s\n",
			d.Device, d.Rows, d.FieldOps, d.ValuesSent, d.StorageValues, status)
	}
	fmt.Fprintf(out, "totals: %d field ops, %d values sent, %d values stored\n",
		rep.TotalFieldOps, rep.TotalValuesSent, rep.TotalStorageValues)
	if rep.CompletionTime > 0 {
		fmt.Fprintf(out, "completion (incl. %d decode ops): %.3fms\n",
			rep.DecodeOps, float64(rep.CompletionTime.Microseconds())/1000)
	}
}

// parseStragglers parses "dev=factor" pairs into a map, validating syntax
// only; index-range checks happen once the deployment's device count is
// known.
func parseStragglers(spec string) (map[int]float64, error) {
	if spec == "" {
		return nil, nil
	}
	factors := make(map[int]float64)
	for _, pair := range strings.Split(spec, ",") {
		devStr, facStr, found := strings.Cut(pair, "=")
		if !found {
			return nil, fmt.Errorf("bad straggler spec %q (want dev=factor)", pair)
		}
		dev, err := strconv.Atoi(devStr)
		if err != nil {
			return nil, fmt.Errorf("bad straggler device %q: %w", devStr, err)
		}
		fac, err := strconv.ParseFloat(facStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad straggler factor %q: %w", facStr, err)
		}
		if dev < 0 {
			return nil, fmt.Errorf("straggler device %d out of range", dev)
		}
		factors[dev] = fac
	}
	return factors, nil
}

// applyStragglers parses "dev=factor" pairs and applies them to a profile
// slice.
func applyStragglers(profiles []sim.DeviceProfile, spec string) error {
	factors, err := parseStragglers(spec)
	if err != nil {
		return err
	}
	for dev, fac := range factors {
		if dev >= len(profiles) {
			return fmt.Errorf("straggler device %d out of range (deployment has %d devices)", dev, len(profiles))
		}
		profiles[dev].StragglerFactor = fac
	}
	return nil
}
