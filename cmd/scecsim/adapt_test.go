package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/scec/scec/internal/adapt"
)

func TestRunAdaptiveScenario(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "adapt.json")
	var out strings.Builder
	err := run([]string{
		"-adaptive", "-adapt-check",
		"-adapt-devices", "200", "-adapt-m", "1024",
		"-adapt-duration", "20s", "-adapt-qps", "50",
		"-adapt-out", outPath,
	}, &out)
	if err != nil {
		t.Fatalf("adaptive scenario failed the acceptance bounds: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"recovery scenario:", "frozen", "adaptive", "oracle", "rehost block"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep adapt.RecoveryReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Adaptive.Adopts == 0 || rep.FrozenOverAdaptiveP99 < 2 {
		t.Fatalf("report does not show recovery: %+v", rep)
	}
}

func TestRunAdaptiveRejectsConflictingModes(t *testing.T) {
	for _, args := range [][]string{
		{"-adaptive", "-load"},
		{"-adaptive", "-straggler", "0=10"},
		{"-adaptive", "-fail", "0"},
		{"-adaptive", "-replicas", "2"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected a mode-conflict error", args)
		}
	}
}
