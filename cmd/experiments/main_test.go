package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "2e", "-instances", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig2e") {
		t.Fatalf("output missing fig2e table:\n%s", out.String())
	}
}

func TestRunAcceptsFigPrefix(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "fig2c", "-instances", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig2c") {
		t.Fatal("prefix form should work")
	}
}

func TestRunAllWithClaimsAndFiles(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-fig", "all", "-instances", "3", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Headline claims") {
		t.Fatal("claims table missing")
	}
	for _, name := range []string{"fig2a.csv", "fig2a.md", "fig2e.csv", "claims.md"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing output file %s: %v", name, err)
		}
	}
}

func TestRunRSweep(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-fig", "rsweep", "-instances", "3", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rsweep") {
		t.Fatal("rsweep summary missing")
	}
	if _, err := os.Stat(filepath.Join(dir, "rsweep.csv")); err != nil {
		t.Errorf("missing rsweep.csv: %v", err)
	}
}

func TestRunDelay(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-fig", "delay", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replication vs stragglers") {
		t.Fatal("delay table missing")
	}
	if _, err := os.Stat(filepath.Join(dir, "delay.md")); err != nil {
		t.Errorf("missing delay.md: %v", err)
	}
}

func TestRunComparison(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-fig", "comparison", "-instances", "5", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "related-work schemes") {
		t.Fatal("comparison table missing")
	}
	if _, err := os.Stat(filepath.Join(dir, "comparison.md")); err != nil {
		t.Errorf("missing comparison.md: %v", err)
	}
}

func TestRunDist(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-fig", "dist", "-instances", "5", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cost distributions") {
		t.Fatal("dist table missing")
	}
	if _, err := os.Stat(filepath.Join(dir, "dist.md")); err != nil {
		t.Errorf("missing dist.md: %v", err)
	}
}

func TestRunRSweepWithoutOutDir(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "rsweep", "-instances", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rsweep") {
		t.Fatal("rsweep summary missing")
	}
}

func TestRunBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run takes ~100ms of pure timing loops")
	}
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-fig", "bench", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"allocate/ta1", "encode/", "compute/", "decode/", "ns/op"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("bench summary missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "bench.json"))
	if err != nil {
		t.Fatalf("missing bench.json: %v", err)
	}
	for _, want := range []string{`"ns_per_op"`, `"go_version"`, `"results"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("bench.json missing %s", want)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "9z", "-instances", "3"}, &out); err == nil {
		t.Fatal("unknown figure should error")
	}
}

func TestRunCustomSeedChangesOutput(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-fig", "2c", "-instances", "3", "-seed", "1"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "2c", "-instances", "3", "-seed", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	// Strip the trailing timing line, which legitimately differs.
	trim := func(s string) string {
		lines := strings.Split(s, "\n")
		return strings.Join(lines[:len(lines)-2], "\n")
	}
	if trim(a.String()) == trim(b.String()) {
		t.Fatal("different seeds should change the sampled fleets")
	}
}
