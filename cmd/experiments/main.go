// Command experiments regenerates the paper's evaluation: the five panels
// of Fig. 2 and the headline-claims table. Results are printed as markdown
// and, with -out, also written as CSV + markdown files.
//
// Examples:
//
//	experiments -fig all -out results              # full reproduction
//	experiments -fig 2d -instances 100             # one quick panel
//	experiments -fig all -claims                   # figures + claims table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/scec/scec/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig       = fs.String("fig", "all", "figure to regenerate: 2a|2b|2c|2d|2e|all|rsweep|delay|comparison|dist|bench|bench-transport|collusion")
		claims    = fs.Bool("claims", true, "also evaluate the headline claims (requires -fig all)")
		outDir    = fs.String("out", "", "directory for CSV + markdown output (empty: stdout only)")
		instances = fs.Int("instances", 0, "instances per sweep point (0: paper default of 1000)")
		seed      = fs.Uint64("seed", 0, "random seed (0: fixed default)")
		check     = fs.Bool("check", false, "with -fig bench: fail on NaN or zero throughput (CI smoke guard)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.DefaultConfig()
	if *instances > 0 {
		cfg.Defaults.Instances = *instances
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	start := time.Now()
	// bench-transport merges into the existing results file rather than
	// replacing it, so the baseline must be loaded before os.Create
	// truncates it.
	var benchBase experiments.BenchReport
	if *fig == "bench-transport" && *outDir != "" {
		var err error
		if benchBase, err = experiments.LoadBenchJSON(filepath.Join(*outDir, "bench.json")); err != nil {
			return err
		}
	}
	// The special (non-Fig.-2) studies share one render-to-stdout +
	// optional-file pattern.
	specials := map[string]struct {
		file   string
		render func(io.Writer) error
	}{
		"comparison": {"comparison.md", func(w io.Writer) error {
			res, err := experiments.Comparison(cfg)
			if err != nil {
				return err
			}
			return experiments.WriteComparisonMarkdown(w, res)
		}},
		"delay": {"delay.md", func(w io.Writer) error {
			res, err := experiments.DelaySweep(cfg)
			if err != nil {
				return err
			}
			return experiments.WriteDelayMarkdown(w, res)
		}},
		"dist": {"dist.md", func(w io.Writer) error {
			res, err := experiments.DistSweep(cfg)
			if err != nil {
				return err
			}
			return experiments.WriteDistMarkdown(w, res)
		}},
		"rsweep": {"rsweep.csv", func(w io.Writer) error {
			res, err := experiments.RSweep(cfg)
			if err != nil {
				return err
			}
			if err := experiments.WriteRSweepMarkdown(out, res); err != nil {
				return err
			}
			return experiments.WriteRSweepCSV(w, res)
		}},
		"bench": {"bench.json", func(w io.Writer) error {
			rep, err := experiments.Bench(cfg)
			if err != nil {
				return err
			}
			for _, r := range rep.Results {
				fmt.Fprintf(out, "%-50s %8d iters %14.0f ns/op\n", r.Name, r.Iters, r.NsPerOp)
			}
			if *check {
				if err := experiments.CheckBench(rep); err != nil {
					return err
				}
				fmt.Fprintf(out, "bench check ok: %d cases, all finite non-zero throughput\n", len(rep.Results))
			}
			return experiments.WriteBenchJSON(w, rep)
		}},
		"collusion": {"collusion.json", func(w io.Writer) error {
			rep, err := experiments.CollusionSweep(cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-4s %-10s %6s %8s %12s %14s %14s\n", "t", "scheme", "r", "devices", "plan-cost", "encode-ns", "decode-ns")
			for _, p := range rep.Points {
				fmt.Fprintf(out, "%-4d %-10s %6d %8d %12.2f %14.0f %14.0f\n",
					p.T, p.Scheme, p.R, p.Devices, p.PlanCost, p.EncodeNs, p.DecodeNs)
			}
			if *check {
				if err := experiments.CheckCollusion(rep); err != nil {
					return err
				}
				fmt.Fprintf(out, "collusion check ok: cost monotone in t, t=1 Cauchy matches the TA1 baseline\n")
			}
			return experiments.WriteCollusionJSON(w, rep)
		}},
		"bench-transport": {"bench.json", func(w io.Writer) error {
			rep, err := experiments.BenchTransport(cfg)
			if err != nil {
				return err
			}
			for _, r := range rep.Results {
				fmt.Fprintf(out, "%-50s %8d iters %14.0f ns/op %12.0f ops/s\n", r.Name, r.Iters, r.NsPerOp, r.OpsPerS)
			}
			if *check {
				if err := experiments.CheckTransportBench(rep); err != nil {
					return err
				}
				fmt.Fprintf(out, "transport bench check ok: frame overhead, v3-vs-gob RTT and mux QPS within bounds\n")
			}
			return experiments.WriteBenchJSON(w, experiments.MergeBench(benchBase, rep))
		}},
	}
	if sp, special := specials[*fig]; special {
		if *fig != "rsweep" && *fig != "bench" && *fig != "bench-transport" && *fig != "collusion" {
			// rsweep, bench, and collusion write their own stdout summaries;
			// the others render identical content to stdout and to the file.
			if err := sp.render(out); err != nil {
				return err
			}
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*outDir, sp.file))
			if err != nil {
				return err
			}
			werr := sp.render(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return werr
			}
		} else if *fig == "rsweep" || *fig == "bench" || *fig == "bench-transport" || *fig == "collusion" {
			if err := sp.render(io.Discard); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "done in %s (%d instances, seed %d)\n",
			time.Since(start).Round(time.Millisecond), cfg.Defaults.Instances, cfg.Seed)
		return nil
	}

	var results []experiments.Result
	switch *fig {
	case "all":
		all, err := experiments.All(cfg)
		if err != nil {
			return err
		}
		results = all
	default:
		id := "fig" + strings.TrimPrefix(*fig, "fig")
		r, err := experiments.Figure(cfg, id)
		if err != nil {
			return err
		}
		results = []experiments.Result{r}
	}

	for _, r := range results {
		if err := experiments.WriteMarkdown(out, r); err != nil {
			return err
		}
		if *outDir != "" {
			if err := writeFiles(*outDir, r); err != nil {
				return err
			}
		}
	}

	if *claims && *fig == "all" {
		rep, err := experiments.Claims(results)
		if err != nil {
			return err
		}
		if err := experiments.WriteClaims(out, rep); err != nil {
			return err
		}
		if *outDir != "" {
			f, err := os.Create(filepath.Join(*outDir, "claims.md"))
			if err != nil {
				return err
			}
			werr := experiments.WriteClaims(f, rep)
			cerr := f.Close()
			if werr != nil {
				return werr
			}
			if cerr != nil {
				return cerr
			}
		}
	}
	fmt.Fprintf(out, "\ndone in %s (%d instances per point, seed %d)\n",
		time.Since(start).Round(time.Millisecond), cfg.Defaults.Instances, cfg.Seed)
	return nil
}

// writeFiles emits <id>.csv and <id>.md under dir.
func writeFiles(dir string, r experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	csvFile, err := os.Create(filepath.Join(dir, r.ID+".csv"))
	if err != nil {
		return err
	}
	werr := experiments.WriteCSV(csvFile, r)
	if cerr := csvFile.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}

	mdFile, err := os.Create(filepath.Join(dir, r.ID+".md"))
	if err != nil {
		return err
	}
	werr = experiments.WriteMarkdown(mdFile, r)
	if cerr := mdFile.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
