package scec

import (
	"github.com/scec/scec/internal/obs/trace"
)

// Tracer records causally linked spans across the whole serving stack —
// engine query layer, coalescer, fleet racing/hedging, transport round
// trips, and device-side compute — into a bounded in-process buffer with
// JSON export and /debug/traces introspection. A nil *Tracer is a valid
// no-op everywhere it is accepted. See internal/obs/trace.
type Tracer = trace.Tracer

// TracerOptions tunes a Tracer (service name, retention buffer sizes,
// clock). The zero value selects every default.
type TracerOptions = trace.Options

// NewTracer builds a tracer. Wire it into a deployment with WithTracing,
// into a fleet session via FleetConfig.Tracer, and into device servers via
// transport Options.Tracer; sharing one tracer per process is the normal
// setup.
func NewTracer(o TracerOptions) *Tracer { return trace.New(o) }

// DeviceStats is one device's straggler digest: rolling win-latency
// percentiles plus hedge-win attribution. See Session.Stragglers.
type DeviceStats = trace.DeviceStats

// WithTracing routes the deployment engine's query/coalesce/round/decode
// spans (and, through context propagation, every substrate span below them)
// to t. The fleet backend additionally needs FleetConfig.Tracer set to the
// same tracer for its race/hedge spans and straggler analytics.
func WithTracing[E comparable](t *Tracer) DeployOption[E] {
	return func(c *deployConfig[E]) { c.opts.Tracer = t }
}
