package scec

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"

	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/cost"
	"github.com/scec/scec/internal/engine"
	"github.com/scec/scec/internal/obs"
)

// CostComponents holds one edge device's unit prices: storage per element,
// one addition, one multiplication, and transmitting one value to the user.
type CostComponents = cost.Components

// UnitCost folds a device's component prices into the per-row unit cost c_j
// used by Allocate, for coded rows of length l (Eq. (1) of the paper):
// c_j = (l+1)·storage + l·mul + (l−1)·add + comm.
func UnitCost(l int, c CostComponents) float64 { return c.Unit(l) }

// UnitCosts maps a fleet of component prices to unit costs.
func UnitCosts(l int, comps []CostComponents) ([]float64, error) { return cost.Units(l, comps) }

// AmortizedUnitCosts maps component prices to the unit costs of a session
// serving `queries` input vectors from one provisioned deployment: storage
// is paid once, compute and communication per query. Feed the result to
// Allocate to plan long-lived deployments (the device ranking can differ
// from the one-shot case when storage and compute prices diverge).
func AmortizedUnitCosts(l, queries int, comps []CostComponents) ([]float64, error) {
	return cost.AmortizedUnits(l, queries, comps)
}

// Deployment is a fully provisioned secure multiplication service for one
// confidential matrix: the optimal plan, the coding design it induces, and
// every device's coded block.
type Deployment[E comparable] struct {
	// F is the arithmetic field.
	F Field[E]
	// Plan is the cost-optimal task allocation (TA1, or TACollusion under
	// WithCollusion).
	Plan Plan
	// Code is the deployed coding design — the Eq. (8) scheme by default,
	// the Cauchy t-collusion design under WithCollusion, or whatever
	// WithCode supplied. Every execution backend decodes through it.
	Code Code[E]
	// Scheme is the Eq. (8) coding design for (m, Plan.R) when the default
	// structured tier is deployed; nil under WithCollusion/WithCode. Callers
	// needing scheme-specific introspection should prefer Code.
	Scheme *Scheme
	// Encoding holds the coded blocks, in code device order; block j
	// belongs to the device with index Plan.Assignments[j].Device in the
	// caller's cost slice.
	Encoding *Encoding[E]

	q *engine.Query[E]
}

// Deploy provisions secure coded multiplication for the confidential matrix
// a over a fleet with the given per-row unit costs: it solves the MCSCEC
// allocation, builds the coding scheme, and encodes a with fresh random
// rows from rng. Costs are per device in the caller's order; the plan's
// assignments refer back to those indexes.
//
// Queries execute over the in-process kernels by default; pass WithExecutor
// to run them over the simulator or a real fleet instead, WithCoalescing to
// merge concurrent MulVec callers into batch rounds, and WithCollusion(t)
// (or WithCode) to deploy the t-collusion-secure coding tier instead of the
// single-attacker Eq. (8) scheme.
func Deploy[E comparable](f Field[E], a *Matrix[E], unitCosts []float64, rng *rand.Rand, opts ...DeployOption[E]) (*Deployment[E], error) {
	cfg := newDeployConfig(opts)
	if cfg.adaptive != nil {
		return nil, fmt.Errorf("scec: WithAdaptive applies to Serve, not Deploy: the control plane needs a live fleet to migrate")
	}
	if cfg.code != nil && cfg.collusionT > 0 {
		return nil, fmt.Errorf("scec: WithCode and WithCollusion are mutually exclusive (the code fixes its own threshold)")
	}

	plan, code, err := planAndCode(f, a, unitCosts, cfg)
	if err != nil {
		return nil, err
	}
	encode := obs.StartStage(nil, obs.StageEncode)
	enc, err := code.Encode(a, rng)
	encode.End()
	if err != nil {
		return nil, fmt.Errorf("scec: encode: %w", err)
	}
	exec, err := cfg.backend(f, enc)
	if err != nil {
		return nil, fmt.Errorf("scec: bind executor: %w", err)
	}
	q, err := engine.New(f, enc, exec, cfg.opts)
	if err != nil {
		_ = exec.Close()
		return nil, fmt.Errorf("scec: bind executor: %w", err)
	}
	d := &Deployment[E]{F: f, Plan: plan, Code: code, Encoding: enc, q: q}
	if sc, ok := code.(*coding.StructuredCode[E]); ok {
		d.Scheme = sc.Scheme()
	}
	return d, nil
}

// planAndCode solves the allocation and builds the coding design for the
// selected security tier: the Eq. (8) scheme under TA1 by default, the
// Cauchy design under the coalition-aware TACollusion sweep for
// WithCollusion(t), or a caller-built code mapped onto the cheapest devices
// for WithCode.
func planAndCode[E comparable](f Field[E], a *Matrix[E], unitCosts []float64, cfg deployConfig[E]) (Plan, Code[E], error) {
	if cfg.code != nil {
		plan, err := customCodePlan(a.Rows(), unitCosts, cfg.code)
		if err != nil {
			return Plan{}, nil, err
		}
		return plan, cfg.code, nil
	}
	allocate := obs.StartStage(nil, obs.StageAllocate)
	defer allocate.End()
	if t := cfg.collusionT; t > 0 {
		plan, err := alloc.TACollusion(Instance{M: a.Rows(), Costs: unitCosts}, t)
		if err != nil {
			return Plan{}, nil, fmt.Errorf("scec: allocate: %w", err)
		}
		rows := make([]int, plan.I)
		for j, as := range plan.Assignments {
			rows[j] = as.Rows
		}
		code, err := coding.NewCollusion(f, a.Rows(), plan.R, t, rows)
		if err != nil {
			return Plan{}, nil, fmt.Errorf("scec: coding design: %w", err)
		}
		return plan, code, nil
	}
	plan, err := alloc.TA1(Instance{M: a.Rows(), Costs: unitCosts})
	if err != nil {
		return Plan{}, nil, fmt.Errorf("scec: allocate: %w", err)
	}
	code, err := coding.NewStructured(f, a.Rows(), plan.R)
	if err != nil {
		return Plan{}, nil, fmt.Errorf("scec: coding design: %w", err)
	}
	if code.Devices() != plan.I {
		// Cannot happen: both derive i = ⌈(m+r)/r⌉ from the same (m, r).
		return Plan{}, nil, fmt.Errorf("scec: plan selects %d devices but scheme needs %d", plan.I, code.Devices())
	}
	return plan, code, nil
}

// customCodePlan reports a WithCode deployment as a Plan: coded block j goes
// to the j-th cheapest device, so the assignment order matches the code's
// device order exactly as it does for the solved tiers.
func customCodePlan[E comparable](m int, unitCosts []float64, code Code[E]) (Plan, error) {
	if code.M() != m {
		return Plan{}, fmt.Errorf("scec: code expects m = %d rows, matrix has %d", code.M(), m)
	}
	n := code.Devices()
	if n > len(unitCosts) {
		return Plan{}, fmt.Errorf("scec: code spans %d devices, only %d costs given", n, len(unitCosts))
	}
	in := Instance{M: m, Costs: unitCosts}
	if err := in.Validate(); err != nil {
		return Plan{}, fmt.Errorf("scec: allocate: %w", err)
	}
	order := make([]int, len(unitCosts))
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool { return unitCosts[order[a]] < unitCosts[order[b]] })
	assignments := make([]Assignment, n)
	cost := 0.0
	for j := 0; j < n; j++ {
		rows := code.RowsOn(j)
		assignments[j] = Assignment{Device: order[j], Rows: rows}
		cost += float64(rows) * unitCosts[order[j]]
	}
	return Plan{Algorithm: "custom", R: code.R(), I: n, Assignments: assignments, Cost: cost}, nil
}

// MulVec computes A·x through the deployment's execution engine — the
// in-process kernels by default, or whatever backend WithExecutor selected
// — and decodes. The engine validates the input, counts the dispatch, and
// (when coalescing is on) may serve this call as one column of a merged
// batch round.
func (d *Deployment[E]) MulVec(x []E) ([]E, error) {
	return d.MulVecContext(context.Background(), x)
}

// MulVecContext is MulVec bounded by ctx (the fleet backend cancels
// in-flight replica races when it ends). With WithTracing, each call opens
// — or, when ctx already carries a span, continues — one end-to-end trace.
func (d *Deployment[E]) MulVecContext(ctx context.Context, x []E) ([]E, error) {
	y, err := d.q.MulVecContext(ctx, x)
	if err != nil {
		return nil, wrapEngineErr(err)
	}
	return y, nil
}

// MulMat computes A·X for an l×n input matrix X (the paper's batch
// generalization: n input vectors served by one round). Decoding costs m·n
// subtractions.
func (d *Deployment[E]) MulMat(x *Matrix[E]) (*Matrix[E], error) {
	return d.MulMatContext(context.Background(), x)
}

// MulMatContext is MulMat bounded by ctx; see MulVecContext.
func (d *Deployment[E]) MulMatContext(ctx context.Context, x *Matrix[E]) (*Matrix[E], error) {
	y, err := d.q.MulMatContext(ctx, x)
	if err != nil {
		return nil, wrapEngineErr(err)
	}
	return y, nil
}

// LoadTarget adapts the deployment into a load-generator target: each call
// is one MulVec of x under the generator's per-request context. The input is
// captured by reference; do not mutate it while a run is in flight.
func (d *Deployment[E]) LoadTarget(x []E) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		_, err := d.MulVecContext(ctx, x)
		return err
	}
}

// Backend names the execution backend serving this deployment's queries
// ("local", "sim", or "fleet").
func (d *Deployment[E]) Backend() string { return d.q.Backend() }

// Executor exposes the underlying executor for backend-specific
// introspection (e.g. *engine.SimExecutor's LastReport).
func (d *Deployment[E]) Executor() Executor[E] { return d.q.Executor() }

// EngineDebugHandler serves the engine's live dispatch and coalescing
// snapshot as JSON — mount it as /debug/engine on the obs telemetry server.
func (d *Deployment[E]) EngineDebugHandler() http.Handler { return d.q.DebugHandler() }

// Close flushes the query engine and releases the backend (a fleet backend
// closes its session). Safe to call more than once.
func (d *Deployment[E]) Close() error { return d.q.Close() }

// wrapEngineErr rebrands engine-layer validation messages under the public
// package's prefix while leaving backend errors (which already carry their
// own context) untouched for errors.Is/As chains.
func wrapEngineErr(err error) error {
	return fmt.Errorf("scec: %w", err)
}

// Cost returns the plan's variable cost Σ_j V(B_j)·c_j.
func (d *Deployment[E]) Cost() float64 { return d.Plan.Cost }

// Devices returns the number of participating edge devices.
func (d *Deployment[E]) Devices() int { return d.Code.Devices() }

// Audit runs the attack harness against every device and returns the
// per-device leak dimensions (all zero for this construction).
func (d *Deployment[E]) Audit() []int {
	leaks := make([]int, d.Code.Devices())
	for j := range leaks {
		leaks[j] = AuditCode(d.F, d.Code, j)
	}
	return leaks
}
