package scec_test

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/fleet"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/transport"
)

// fleetHarness provisions FaultProxy-fronted loopback device fleets for the
// fleet executor's Provision hook. It is safe for the concurrent Provision
// calls a parallel chunked deploy makes; each call's proxies are recorded
// as one group so tests can fail specific chunks.
type fleetHarness struct {
	t        *testing.T
	f        scec.Field[uint64]
	replicas int

	mu     sync.Mutex
	groups [][][]*fleet.FaultProxy // groups[call][block][replica]
}

func newFleetHarness(t *testing.T, replicas int) *fleetHarness {
	return &fleetHarness{t: t, f: scec.PrimeField(), replicas: replicas}
}

// config returns a deterministic engine fleet configuration provisioning
// through the harness.
func (h *fleetHarness) config() scec.FleetExecutorConfig {
	return scec.FleetExecutorConfig{
		Session: scec.FleetConfig{
			QueryTimeout:  10 * time.Second,
			RPCTimeout:    2 * time.Second,
			HedgeAfter:    -1, // deterministic failover, no speculation
			ProbeInterval: -1, // no background probing
			Metrics:       obs.New(),
		},
		Provision: h.provision,
	}
}

func (h *fleetHarness) provision(blocks int) ([][]string, []string, error) {
	group := make([][]*fleet.FaultProxy, blocks)
	addrs := make([][]string, blocks)
	for j := 0; j < blocks; j++ {
		for k := 0; k < h.replicas; k++ {
			srv, err := transport.NewDeviceServer(h.f, "127.0.0.1:0")
			if err != nil {
				return nil, nil, err
			}
			h.t.Cleanup(func() { _ = srv.Close() })
			p, err := fleet.NewFaultProxy(srv.Addr())
			if err != nil {
				return nil, nil, err
			}
			h.t.Cleanup(func() { _ = p.Close() })
			group[j] = append(group[j], p)
			addrs[j] = append(addrs[j], p.Addr())
		}
	}
	h.mu.Lock()
	h.groups = append(h.groups, group)
	h.mu.Unlock()
	return addrs, nil, nil
}

// failFirstReplicas drops the first replica of every block in provisioning
// group g.
func (h *fleetHarness) failFirstReplicas(g int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, replicas := range h.groups[g] {
		replicas[0].SetMode(fleet.FaultDrop)
	}
}

func (h *fleetHarness) groupCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.groups)
}

// TestDeployBackendsAgree: the same deployment inputs answer identically
// over the local, sim, and fleet facade backends.
func TestDeployBackendsAgree(t *testing.T) {
	f := scec.PrimeField()
	const m, l = 30, 8
	costs := []float64{1.5, 0.7, 2.2, 1.1}
	newRng := func() *rand.Rand { return rand.New(rand.NewPCG(5, 21)) }
	a := scec.RandomMatrix(f, newRng(), m, l)
	x := scec.RandomVector(f, rand.New(rand.NewPCG(8, 2)), l)
	want := scec.MulVec(f, a, x)

	backends := map[string]scec.ExecutorBackend[uint64]{
		"local": scec.LocalExecutor[uint64](),
		"sim":   scec.SimExecutor[uint64](scec.SimExecutorConfig{Metrics: obs.New()}),
		"fleet": scec.FleetExecutor[uint64](newFleetHarness(t, 1).config()),
	}
	for name, backend := range backends {
		t.Run(name, func(t *testing.T) {
			// Same seed stream per backend: identical plan, coding, and
			// random rows, so answers must be bit-identical.
			dep, err := scec.Deploy(f, a, costs, newRng(), scec.WithExecutor(backend))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = dep.Close() })
			if got := dep.Backend(); got != name {
				t.Fatalf("Backend() = %q, want %q", got, name)
			}
			got, err := dep.MulVec(x)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("backend %s: entry %d = %d, want %d", name, i, got[i], want[i])
				}
			}
		})
	}
}

// TestChunkedOverFleetSurvivesChunkFaults is the acceptance path: a chunked
// deployment runs every chunk over its own replicated fleet, one chunk's
// primary replicas are all killed mid-session, and MulVec/MulMat stay
// exact.
func TestChunkedOverFleetSurvivesChunkFaults(t *testing.T) {
	f := scec.PrimeField()
	const m, l, chunkCols = 24, 10, 4
	costs := []float64{1.5, 0.7, 2.2}
	rng := rand.New(rand.NewPCG(31, 7))
	a := scec.RandomMatrix(f, rng, m, l)
	h := newFleetHarness(t, 2)
	cd, err := scec.DeployChunked(f, a, chunkCols, costs, rng,
		scec.WithExecutor(scec.FleetExecutor[uint64](h.config())))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cd.Close() })
	if got, want := h.groupCount(), cd.Chunks(); got != want {
		t.Fatalf("provisioned %d fleets for %d chunks", got, want)
	}
	if cd.Devices() <= 0 {
		t.Fatal("chunked deployment reports no devices")
	}
	for _, leak := range cd.Audit() {
		if leak != 0 {
			t.Fatal("chunked deployment leaks")
		}
	}

	x := scec.RandomVector(f, rng, l)
	want := scec.MulVec(f, a, x)
	check := func() {
		t.Helper()
		got, err := cd.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatal("chunked fleet query decoded the wrong result")
			}
		}
	}
	check()
	// Kill the first replica of every block of chunk 0; its fleet must fail
	// over to the surviving replicas.
	h.failFirstReplicas(0)
	check()

	// The batch path takes the same faulted route.
	xm := scec.NewMatrix[uint64](l, 3)
	for i := 0; i < l; i++ {
		for j := 0; j < 3; j++ {
			xm.Set(i, j, f.Rand(rng))
		}
	}
	gotM, err := cd.MulMat(xm)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		col := make([]uint64, l)
		for i := 0; i < l; i++ {
			col[i] = xm.At(i, j)
		}
		wantCol := scec.MulVec(f, a, col)
		for i := range wantCol {
			if gotM.At(i, j) != wantCol[i] {
				t.Fatal("chunked fleet MulMat decoded the wrong result")
			}
		}
	}
}

// TestQuantizedOverFleetSurvivesFaults: the quantized facade serves float
// queries over a replicated fleet with a dead replica per block.
func TestQuantizedOverFleetSurvivesFaults(t *testing.T) {
	const m, l = 12, 6
	rng := rand.New(rand.NewPCG(3, 77))
	a := scec.NewMatrix[float64](m, l)
	for i := 0; i < m; i++ {
		for j := 0; j < l; j++ {
			a.Set(i, j, float64(rng.IntN(256)-128)/8)
		}
	}
	costs := []float64{1.2, 0.9, 1.7}
	h := newFleetHarness(t, 2)
	qd, err := scec.DeployQuantized(a, 12, 16, costs, rng,
		scec.WithExecutor(scec.FleetExecutor[uint64](h.config())))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = qd.Close() })
	if qd.Devices() <= 0 {
		t.Fatal("quantized deployment reports no devices")
	}
	for _, leak := range qd.Audit() {
		if leak != 0 {
			t.Fatal("quantized deployment leaks")
		}
	}

	x := make([]float64, l)
	for j := range x {
		x[j] = float64(rng.IntN(256)-128) / 16
	}
	want := scec.MulVec(scec.RealField(0), a, x)
	check := func() {
		t.Helper()
		got, err := qd.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if d := got[i] - want[i]; d > 1e-3 || d < -1e-3 {
				t.Fatalf("entry %d: %g, want %g", i, got[i], want[i])
			}
		}
	}
	check()
	h.failFirstReplicas(0)
	check()

	// Batch path over the faulted fleet.
	xm := scec.NewMatrix[float64](l, 2)
	for i := 0; i < l; i++ {
		for j := 0; j < 2; j++ {
			xm.Set(i, j, float64(rng.IntN(128)-64)/16)
		}
	}
	gotM, err := qd.MulMat(xm)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		col := make([]float64, l)
		for i := 0; i < l; i++ {
			col[i] = xm.At(i, j)
		}
		wantCol := scec.MulVec(scec.RealField(0), a, col)
		for i := range wantCol {
			if d := gotM.At(i, j) - wantCol[i]; d > 1e-3 || d < -1e-3 {
				t.Fatalf("batch entry (%d,%d): %g, want %g", i, j, gotM.At(i, j), wantCol[i])
			}
		}
	}
}

// TestChunkedDeployDeterministic: the parallel per-chunk deploys draw from
// deterministic RNG streams, so the same seed reproduces identical
// deployments (same coded blocks, same query answers) run after run.
func TestChunkedDeployDeterministic(t *testing.T) {
	f := scec.PrimeField()
	const m, l, chunkCols = 18, 9, 2
	costs := []float64{1.4, 0.8, 2.1, 1.3}
	build := func() *scec.ChunkedDeployment[uint64] {
		rng := rand.New(rand.NewPCG(101, 202))
		a := scec.RandomMatrix(f, rng, m, l)
		cd, err := scec.DeployChunked(f, a, chunkCols, costs, rng)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = cd.Close() })
		return cd
	}
	cd1, cd2 := build(), build()
	x := scec.RandomVector(f, rand.New(rand.NewPCG(9, 9)), l)
	y1, err := cd1.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := cd2.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("same seed produced diverging chunked deployments")
		}
	}
}

// TestDeployCoalescing: concurrent MulVec callers through a coalescing
// deployment all get exact answers and at least one merged round happens.
func TestDeployCoalescing(t *testing.T) {
	f := scec.PrimeField()
	const m, l, callers = 20, 6, 12
	costs := []float64{1.5, 0.7, 2.2}
	rng := rand.New(rand.NewPCG(44, 11))
	a := scec.RandomMatrix(f, rng, m, l)
	reg := obs.New()
	dep, err := scec.Deploy(f, a, costs, rng,
		scec.WithCoalescing[uint64](100*time.Millisecond, 6),
		scec.WithEngineMetrics[uint64](reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dep.Close() })

	inputs := make([][]uint64, callers)
	want := make([][]uint64, callers)
	for i := range inputs {
		inputs[i] = scec.RandomVector(f, rng, l)
		want[i] = scec.MulVec(f, a, inputs[i])
	}
	got := make([][]uint64, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i], errs[i] = dep.MulVec(inputs[i])
		}()
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for p := range got[i] {
			if got[i][p] != want[i][p] {
				t.Fatalf("caller %d diverges at %d", i, p)
			}
		}
	}
	h := reg.Histogram(obs.MetricEngineCoalescedBatchSize, "x",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128}, obs.L("backend", "local"))
	if h.Sum() != callers {
		t.Fatalf("histogram served %g callers, want %d", h.Sum(), callers)
	}
	if h.Count() >= callers {
		t.Fatalf("%d rounds for %d callers: nothing coalesced", h.Count(), callers)
	}
}

// TestServeCoalescing: the fleet serving facade accepts engine options and
// rejects WithExecutor.
func TestServeCoalescing(t *testing.T) {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(23, 29))
	a := scec.RandomMatrix(f, rng, 16, 5)
	costs := []float64{1.1, 2.5, 0.9}
	dep, err := scec.Deploy(f, a, costs, rng)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dep.Close() })
	cfg := scec.FleetConfig{
		Replicas:      make([][]string, dep.Devices()),
		ProbeInterval: -1,
		Metrics:       obs.New(),
	}
	for j := range cfg.Replicas {
		srv, err := transport.NewDeviceServer(f, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		cfg.Replicas[j] = []string{srv.Addr()}
	}
	if _, err := scec.Serve(dep, cfg, scec.WithExecutor(scec.LocalExecutor[uint64]())); err == nil {
		t.Fatal("Serve accepted WithExecutor")
	}
	reg := obs.New()
	s, err := scec.Serve(dep, cfg,
		scec.WithCoalescing[uint64](50*time.Millisecond, 4),
		scec.WithEngineMetrics[uint64](reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	const callers = 8
	x := scec.RandomVector(f, rng, 5)
	want := scec.MulVec(f, a, x)
	errs := make([]error, callers)
	got := make([][]uint64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i], errs[i] = s.MulVec(x)
		}()
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for p := range got[i] {
			if got[i][p] != want[p] {
				t.Fatal("coalesced fleet query decoded the wrong result")
			}
		}
	}
	h := reg.Histogram(obs.MetricEngineCoalescedBatchSize, "x",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128}, obs.L("backend", "fleet"))
	if h.Sum() != callers {
		t.Fatalf("histogram served %g callers, want %d", h.Sum(), callers)
	}
}

// TestProvisionedParity: every deployment facade satisfies the shared
// Provisioned interface with sound audits.
func TestProvisionedParity(t *testing.T) {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(71, 3))
	costs := []float64{1.5, 0.7, 2.2}
	a := scec.RandomMatrix(f, rng, 12, 6)
	dep, err := scec.Deploy(f, a, costs, rng)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := scec.DeployChunked(f, a, 3, costs, rng)
	if err != nil {
		t.Fatal(err)
	}
	af := scec.NewMatrix[float64](8, 4)
	for i := 0; i < 8; i++ {
		for j := 0; j < 4; j++ {
			af.Set(i, j, float64(i+j))
		}
	}
	qd, err := scec.DeployQuantized(af, 10, 8, costs, rng)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]scec.Provisioned{"deploy": dep, "chunked": cd, "quantized": qd} {
		if p.Devices() <= 0 {
			t.Fatalf("%s: no devices", name)
		}
		if p.Cost() <= 0 {
			t.Fatalf("%s: non-positive cost", name)
		}
		for _, leak := range p.Audit() {
			if leak != 0 {
				t.Fatalf("%s: leaks", name)
			}
		}
		if err := p.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
}
