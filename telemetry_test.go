package scec_test

import (
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"testing"

	"github.com/scec/scec"
)

// TestTelemetryFacade drives the reference pipeline and checks the façade
// accessors expose the recorded stage spans in both exposition formats.
func TestTelemetryFacade(t *testing.T) {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(3, 5))
	a := scec.RandomMatrix(f, rng, 30, 8)
	dep, err := scec.Deploy(f, a, []float64{1, 2, 3, 4, 5, 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := scec.RandomVector(f, rng, 8)
	if _, err := dep.MulVec(x); err != nil {
		t.Fatal(err)
	}

	var prom strings.Builder
	if err := scec.WriteMetrics(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`scec_stage_duration_seconds_count{stage="allocate"}`,
		`scec_stage_duration_seconds_count{stage="encode"}`,
		`scec_stage_duration_seconds_count{stage="compute"}`,
		`scec_stage_duration_seconds_count{stage="decode"}`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}

	var jsonOut strings.Builder
	if err := scec.WriteMetricsJSON(&jsonOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonOut.String(), `"scec_stage_duration_seconds"`) {
		t.Error("JSON snapshot missing the stage histogram")
	}

	var table strings.Builder
	if err := scec.WriteStageTable(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "allocate") || !strings.Contains(table.String(), "decode") {
		t.Errorf("stage table incomplete:\n%s", table.String())
	}
}

// TestServeMetrics exercises the façade's HTTP bundle end to end.
func TestServeMetrics(t *testing.T) {
	// Run one deployment so the default registry is non-empty even when
	// this test runs alone.
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(3, 5))
	a := scec.RandomMatrix(f, rng, 10, 4)
	if _, err := scec.Deploy(f, a, []float64{1, 2, 3}, rng); err != nil {
		t.Fatal(err)
	}

	addr, closer, err := scec.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	for path, want := range map[string]string{
		"/healthz": "ok",
		"/metrics": "# TYPE",
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 || !strings.Contains(string(body), want) {
			t.Errorf("%s: code %d body %q, want %q", path, resp.StatusCode, body, want)
		}
	}
}
