package scec_test

import (
	"context"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/fleet"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
	"github.com/scec/scec/internal/transport"
)

// tracedFleet is a live 3-device replicated fleet with fault proxies in
// front of every replica and one tracer shared by the engine, the fleet
// session, and (via adoption) the device servers.
type tracedFleet struct {
	dep     *scec.Deployment[uint64]
	served  *scec.Served[uint64]
	tr      *scec.Tracer
	proxies [][]*fleet.FaultProxy
	x       []uint64
	want    []uint64
}

// newTracedFleet deploys a 40×10 matrix over three coded blocks, two real
// device servers per block (each behind a FaultProxy), with coalescing on
// so single queries still traverse the batching layer.
func newTracedFleet(t *testing.T) *tracedFleet {
	t.Helper()
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(29, 31))
	a := scec.RandomMatrix(f, rng, 40, 10)
	dep, err := scec.Deploy(f, a, []float64{1, 1, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Devices() != 3 {
		t.Fatalf("deployment has %d coded blocks, want 3", dep.Devices())
	}

	tr := scec.NewTracer(scec.TracerOptions{Service: "e2e-user"})
	devTr := trace.New(trace.Options{Service: "e2e-device"})
	cfg := scec.FleetConfig{
		Replicas:      make([][]string, dep.Devices()),
		ProbeInterval: -1, // deterministic: no background probing
		HedgeAfter:    -1, // hedging off; failover comes from injected faults
		Tracer:        tr,
	}
	proxies := make([][]*fleet.FaultProxy, dep.Devices())
	for j := range cfg.Replicas {
		for k := 0; k < 2; k++ {
			srv, err := transport.NewDeviceServerOptions[uint64](f, "127.0.0.1:0",
				transport.Options{Tracer: devTr})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = srv.Close() })
			px, err := fleet.NewFaultProxy(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = px.Close() })
			proxies[j] = append(proxies[j], px)
			cfg.Replicas[j] = append(cfg.Replicas[j], px.Addr())
		}
	}
	served, err := scec.Serve(dep, cfg, scec.WithCoalescing[uint64](time.Millisecond, 8))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = served.Close() })

	x := scec.RandomVector(f, rng, 10)
	return &tracedFleet{
		dep: dep, served: served, tr: tr, proxies: proxies,
		x: x, want: scec.MulVec(f, a, x),
	}
}

func (e *tracedFleet) checkAnswer(t *testing.T, got []uint64) {
	t.Helper()
	for i := range got {
		if got[i] != e.want[i] {
			t.Fatal("traced fleet decoded the wrong result")
		}
	}
}

// TestTraceEndToEndFleet is the acceptance scenario: a single MulVec
// against a live 3-device fleet with one injected fault must produce one
// trace whose spans cover the engine query layer, the coalescer, the
// per-block replica races with the failover, the transport round trips,
// and the device-side compute — all under one trace ID with parent/child
// nesting intact.
func TestTraceEndToEndFleet(t *testing.T) {
	e := newTracedFleet(t)
	dead, live := e.proxies[0][0], e.proxies[0][1]
	dead.SetMode(fleet.FaultDrop)

	got, err := e.served.MulVec(e.x)
	if err != nil {
		t.Fatal(err)
	}
	e.checkAnswer(t, got)

	views := e.tr.Assemble()
	if len(views) != 1 {
		ids := make([]string, 0, len(views))
		for _, v := range views {
			ids = append(ids, v.TraceID)
		}
		t.Fatalf("one MulVec produced %d traces %v, want exactly 1", len(views), ids)
	}
	v := views[0]

	// Every layer's span is present, and all of them carry the one trace ID.
	byName := map[string][]trace.SpanView{}
	for _, sp := range v.Spans {
		if sp.TraceID != v.TraceID {
			t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.TraceID, v.TraceID)
		}
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, name := range []string{
		trace.SpanQueryVec, trace.SpanCoalesceWait, trace.SpanFleetGather,
		trace.SpanFleetBlock, trace.SpanFleetAttempt,
		trace.SpanRPCClient, trace.SpanRPCServer, trace.SpanDeviceCompute,
	} {
		if len(byName[name]) == 0 {
			t.Errorf("trace is missing %s spans (have %v)", name, names(v))
		}
	}
	if n := len(byName[trace.SpanFleetBlock]); n != 3 {
		t.Errorf("trace has %d fleet.block spans, want one per coded block (3)", n)
	}

	// Parent/child nesting: exactly one root (the engine query span), every
	// other span's parent is retained in the same trace, and each child's
	// interval sits inside its parent's.
	byID := map[string]trace.SpanView{}
	var roots []trace.SpanView
	for _, sp := range v.Spans {
		byID[sp.SpanID] = sp
	}
	for _, sp := range v.Spans {
		if sp.ParentID == "" {
			roots = append(roots, sp)
			continue
		}
		p, ok := byID[sp.ParentID]
		if !ok {
			t.Errorf("span %s has unretained parent %s", sp.Name, sp.ParentID)
			continue
		}
		if sp.Start.Before(p.Start) || p.End.Before(sp.End) {
			t.Errorf("span %s [%v,%v] escapes parent %s [%v,%v]",
				sp.Name, sp.Start, sp.End, p.Name, p.Start, p.End)
		}
	}
	if len(roots) != 1 || roots[0].Name != trace.SpanQueryVec {
		t.Fatalf("trace roots = %+v, want exactly one %s", roots, trace.SpanQueryVec)
	}

	// The injected fault's story: a failed attempt attributed to the dead
	// proxy, a failover event naming the survivor, and a winning attempt on
	// the survivor — plus device-compute spans stitched in from the device
	// tracer's service.
	var sawFail, sawWin, sawFailover bool
	for _, sp := range byName[trace.SpanFleetAttempt] {
		switch sp.Attr(trace.AttrDevice) {
		case dead.Addr():
			if sp.Error != "" {
				sawFail = true
			}
		case live.Addr():
			if sp.Attr(trace.AttrWin) == "true" && sp.Error == "" {
				sawWin = true
			}
		}
		for _, ev := range sp.Events {
			if ev.Name == trace.EventFailover {
				sawFailover = true
			}
		}
	}
	if !sawFailover {
		// The failover event lands on the block span in the current layout;
		// accept either placement.
		for _, sp := range byName[trace.SpanFleetBlock] {
			for _, ev := range sp.Events {
				if ev.Name == trace.EventFailover {
					sawFailover = true
				}
			}
		}
	}
	if !sawFail {
		t.Errorf("no failed attempt span attributed to the dead replica %s", dead.Addr())
	}
	if !sawWin {
		t.Errorf("no winning attempt span attributed to the surviving replica %s", live.Addr())
	}
	if !sawFailover {
		t.Errorf("trace carries no %s event for the injected fault", trace.EventFailover)
	}
	for _, sp := range byName[trace.SpanDeviceCompute] {
		if sp.Service != "e2e-device" {
			t.Errorf("device.compute span attributed to service %q, want e2e-device", sp.Service)
		}
	}
	if v.ErrorCount == 0 {
		t.Error("trace records no errored span despite the injected fault")
	}
}

// TestTraceDebugEndpointsLiveJSON hammers /debug/traces, /debug/fleet, and
// /debug/engine over a real telemetry mux while traced queries are in
// flight: every response must be 200 with a valid JSON body. Run under
// -race this doubles as the concurrent-introspection safety check.
func TestTraceDebugEndpointsLiveJSON(t *testing.T) {
	e := newTracedFleet(t)
	e.proxies[1][0].SetMode(fleet.FaultDrop) // keep failovers happening mid-flight

	h := trace.DebugHandler(e.tr, e.served.Session().Stragglers())
	srv := httptest.NewServer(obs.New().Handler(
		obs.Route{Pattern: "/debug/traces", Handler: h},
		obs.Route{Pattern: "/debug/traces/{id}", Handler: h},
		obs.Route{Pattern: "/debug/fleet", Handler: e.served.FleetDebugHandler()},
		obs.Route{Pattern: "/debug/engine", Handler: e.served.EngineDebugHandler()},
	))
	defer srv.Close()

	const workers, queries = 4, 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				got, err := e.served.MulVecContext(context.Background(), e.x)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				e.checkAnswer(t, got)
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	paths := []string{"/debug/traces", "/debug/fleet", "/debug/engine"}
	poll := func() {
		for _, path := range paths {
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Errorf("GET %s: %v", path, err)
				continue
			}
			body, err := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if err != nil {
				t.Errorf("GET %s: read: %v", path, err)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s: status %d", path, resp.StatusCode)
			}
			if !json.Valid(body) {
				t.Errorf("GET %s: invalid JSON mid-flight: %.120s", path, body)
			}
		}
	}
	for polled := 0; ; polled++ {
		select {
		case <-done:
			if polled == 0 {
				poll() // queries finished instantly; still check once
			}
			// One full trace must be addressable by ID after the burst.
			views := e.tr.Assemble()
			if len(views) == 0 {
				t.Fatal("no traces retained after concurrent queries")
			}
			resp, err := http.Get(srv.URL + "/debug/traces/" + views[0].TraceID)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode != http.StatusOK || !json.Valid(body) {
				t.Fatalf("GET /debug/traces/{id}: status %d, body %.120s", resp.StatusCode, body)
			}
			return
		default:
			poll()
		}
	}
}

func names(v trace.TraceView) []string {
	out := make([]string, len(v.Spans))
	for i, sp := range v.Spans {
		out[i] = sp.Name
	}
	return out
}
