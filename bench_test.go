// Benchmarks regenerating the paper's evaluation artifacts.
//
// Figure benches (BenchmarkFig2a…2e) time one full sweep of the matching
// panel at a reduced instance count; `go run ./cmd/experiments` performs the
// full 1000-instance reproduction and writes the series the paper plots.
// The remaining benches measure the pipeline pieces the paper argues about:
// task-allocation throughput (TA1 vs TA2), encoding, the m-subtraction
// decoder vs general Gaussian elimination, per-device compute, and the
// plaintext-vs-Paillier gap behind the intro's case against homomorphic
// encryption.
package scec_test

import (
	cryptorand "crypto/rand"
	"math/rand/v2"
	"testing"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/experiments"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/he"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/workload"
)

// benchConfig shrinks the per-point instance count so one figure sweep fits
// a benchmark iteration; the sweep grids stay identical to the paper run.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Defaults.Instances = 25
	return cfg
}

func benchFigure(b *testing.B, run func(experiments.Config) (experiments.Result, error)) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkFig2a regenerates Fig. 2(a): total cost vs m under U(1, c_max).
func BenchmarkFig2a(b *testing.B) { benchFigure(b, experiments.Fig2a) }

// BenchmarkFig2b regenerates Fig. 2(b): total cost vs k.
func BenchmarkFig2b(b *testing.B) { benchFigure(b, experiments.Fig2b) }

// BenchmarkFig2c regenerates Fig. 2(c): total cost vs c_max.
func BenchmarkFig2c(b *testing.B) { benchFigure(b, experiments.Fig2c) }

// BenchmarkFig2d regenerates Fig. 2(d): total cost vs σ under N(μ, σ²).
func BenchmarkFig2d(b *testing.B) { benchFigure(b, experiments.Fig2d) }

// BenchmarkFig2e regenerates Fig. 2(e): total cost vs μ under N(μ, σ²).
func BenchmarkFig2e(b *testing.B) { benchFigure(b, experiments.Fig2e) }

// paperInstance samples one §V-default instance.
func paperInstance(seed uint64) alloc.Instance {
	rng := rand.New(rand.NewPCG(seed, 0xbe9c4))
	d := workload.PaperDefaults()
	return workload.Instance(rng, d.M, d.K, workload.Uniform{Max: d.CMax})
}

// BenchmarkTA1 measures the O(k) allocator at paper defaults (m=5000, k=25).
func BenchmarkTA1(b *testing.B) {
	in := paperInstance(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := alloc.TA1(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTA2 measures the O(m+k) allocator on the same instance; together
// with BenchmarkTA1 it quantifies the complexity gap §IV-C discusses.
func BenchmarkTA2(b *testing.B) {
	in := paperInstance(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := alloc.TA2(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLowerBound measures the Theorem 1 bound computation.
func BenchmarkLowerBound(b *testing.B) {
	in := paperInstance(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := alloc.LowerBound(in); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPipeline sizes one mid-scale coded multiplication.
const (
	benchM = 512
	benchL = 256
	benchR = 128
)

func benchEncoding(b *testing.B) (field.Prime, *coding.Scheme, *matrix.Dense[uint64], *coding.Encoding[uint64], []uint64) {
	b.Helper()
	f := field.Prime{}
	rng := rand.New(rand.NewPCG(3, 5))
	s, err := coding.New(benchM, benchR)
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, benchM, benchL)
	enc, err := coding.Encode[uint64](f, s, a, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := matrix.RandomVec[uint64](f, rng, benchL)
	return f, s, a, enc, x
}

// BenchmarkEncode measures the cloud-side structured encoder (O((m+r)·l)).
func BenchmarkEncode(b *testing.B) {
	f := field.Prime{}
	rng := rand.New(rand.NewPCG(3, 5))
	s, err := coding.New(benchM, benchR)
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, benchM, benchL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coding.Encode[uint64](f, s, a, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceCompute measures one device's share: B_j·T times x.
func BenchmarkDeviceCompute(b *testing.B) {
	f, _, _, enc, x := benchEncoding(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.ComputeDevice(f, 0, x)
	}
}

// BenchmarkDecodeStructured measures the paper's m-subtraction decoder.
func BenchmarkDecodeStructured(b *testing.B) {
	f, s, _, enc, x := benchEncoding(b)
	y := enc.ComputeAll(f, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coding.Decode[uint64](f, s, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeGaussian measures the general O((m+r)³) decoder the
// structured design avoids — the ablation behind §IV-B's decoding-complexity
// claim. Run next to BenchmarkDecodeStructured.
func BenchmarkDecodeGaussian(b *testing.B) {
	f, s, _, enc, x := benchEncoding(b)
	y := enc.ComputeAll(f, x)
	bm := coding.CoefficientMatrix[uint64](f, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coding.DecodeGaussian[uint64](f, bm, s.M(), y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalMatVec is the no-offload baseline: the user multiplies A·x
// itself (m·l multiplications), versus m subtractions after decoding.
func BenchmarkLocalMatVec(b *testing.B) {
	f, _, a, _, x := benchEncoding(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = matrix.MulVec[uint64](f, a, x)
	}
}

// BenchmarkDeployEndToEnd measures the full library pipeline: allocate,
// encode, compute every device, decode.
func BenchmarkDeployEndToEnd(b *testing.B) {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(7, 9))
	a := scec.RandomMatrix(f, rng, benchM, benchL)
	costs := make([]float64, 16)
	for j := range costs {
		costs[j] = 1 + 4*rng.Float64()
	}
	x := scec.RandomVector(f, rng, benchL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dep, err := scec.Deploy(f, a, costs, rng)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dep.MulVec(x); err != nil {
			b.Fatal(err)
		}
	}
}

// heDim sizes the homomorphic-encryption comparison. The paper's intro
// quotes a 628×628 HElib measurement; Paillier at that size would take
// minutes per op, so the bench uses a 16×16 block — the per-entry ratio is
// what matters.
const heDim = 16

// BenchmarkHEPlaintextMatVec is the plaintext side of the §I comparison.
func BenchmarkHEPlaintextMatVec(b *testing.B) {
	f := field.Prime{}
	rng := rand.New(rand.NewPCG(11, 13))
	a := matrix.Random[uint64](f, rng, heDim, heDim)
	x := matrix.RandomVec[uint64](f, rng, heDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = matrix.MulVec[uint64](f, a, x)
	}
}

// BenchmarkHEPaillierMatVec is the encrypted side: Enc(A)·x evaluated
// homomorphically with 512-bit primes. Compare ns/op against
// BenchmarkHEPlaintextMatVec to reproduce the ≥10³× gap.
func BenchmarkHEPaillierMatVec(b *testing.B) {
	sk, err := he.GenerateKey(cryptorand.Reader, 512)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 13))
	a := make([][]int64, heDim)
	x := make([]int64, heDim)
	for i := range a {
		a[i] = make([]int64, heDim)
		for j := range a[i] {
			a[i][j] = int64(rng.Uint64N(1 << 30))
		}
		x[i] = int64(rng.Uint64N(1 << 30))
	}
	encA, err := sk.EncryptMatrix(cryptorand.Reader, a)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.MulVecCipher(encA, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollusionDecode measures the Cauchy scheme's Gaussian decoder —
// the price of collusion resistance relative to BenchmarkDecodeStructured.
func BenchmarkCollusionDecode(b *testing.B) {
	f := field.Prime{}
	rng := rand.New(rand.NewPCG(17, 23))
	const m, t, w = 96, 2, 16
	rows, r, err := coding.UniformCollusionRows(m, t, w)
	if err != nil {
		b.Fatal(err)
	}
	cs, err := coding.NewCollusion[uint64](f, m, r, t, rows)
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, m, benchL)
	enc, err := cs.Encode(a, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := matrix.RandomVec[uint64](f, rng, benchL)
	y := enc.ComputeAll(f, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Decode(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolyMaskEncode and BenchmarkPolyMaskDevice measure the
// related-work comparison scheme: polynomial masking stores and multiplies
// the whole m×l matrix on every device, versus ≤ r rows under MCSCEC.
func BenchmarkPolyMaskEncode(b *testing.B) {
	f := field.Prime{}
	rng := rand.New(rand.NewPCG(19, 23))
	s, err := coding.NewPolyMask[uint64](f, benchM, 1, 4)
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, benchM, benchL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encode(a, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolyMaskDevice is one device's share under polynomial masking —
// compare against BenchmarkDeviceCompute (the MCSCEC device does r/m of the
// work).
func BenchmarkPolyMaskDevice(b *testing.B) {
	f := field.Prime{}
	rng := rand.New(rand.NewPCG(19, 23))
	s, err := coding.NewPolyMask[uint64](f, benchM, 1, 4)
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, benchM, benchL)
	enc, err := s.Encode(a, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := matrix.RandomVec[uint64](f, rng, benchL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.ComputeDevice(0, x)
	}
}

// BenchmarkSecurityAudit measures the verifier a deployment runs before
// shipping blocks: rank-based per-device leakage checks.
func BenchmarkSecurityAudit(b *testing.B) {
	f := field.Prime{}
	s, err := coding.New(64, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := coding.Verify[uint64](f, s); err != nil {
			b.Fatal(err)
		}
	}
}
