package scec

import (
	"testing"
)

func TestDeployChunkedMatchesMonolithic(t *testing.T) {
	f := PrimeField()
	rng := testRNG()
	a := RandomMatrix(f, rng, 25, 17) // 17 columns → chunks of 5,5,5,2
	costs := []float64{1.2, 0.7, 2.1, 1.5}

	cd, err := DeployChunked(f, a, 5, costs, rng)
	if err != nil {
		t.Fatal(err)
	}
	if cd.Chunks() != 4 {
		t.Fatalf("chunks = %d, want 4", cd.Chunks())
	}
	x := RandomVector(f, rng, 17)
	got, err := cd.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	want := MulVec(f, a, x)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %d != %d", i, got[i], want[i])
		}
	}
	for j, leak := range cd.Audit() {
		if leak != 0 {
			t.Fatalf("chunk device %d leaks %d dimensions", j, leak)
		}
	}
	if cd.Cost() <= 0 {
		t.Fatal("chunked cost must be positive")
	}
}

func TestDeployChunkedSingleChunkEqualsDeploy(t *testing.T) {
	f := PrimeField()
	rng1 := testRNG()
	rng2 := testRNG()
	a := RandomMatrix(f, rng1, 10, 6)
	a2 := RandomMatrix(f, rng2, 10, 6) // identical draw
	costs := []float64{1, 2, 3}

	cd, err := DeployChunked(f, a, 100, costs, rng1)
	if err != nil {
		t.Fatal(err)
	}
	if cd.Chunks() != 1 {
		t.Fatalf("chunks = %d, want 1", cd.Chunks())
	}
	dep, err := Deploy(f, a2, costs, rng2)
	if err != nil {
		t.Fatal(err)
	}
	if cd.Cost() != dep.Cost() {
		t.Fatalf("single-chunk cost %g != monolithic %g", cd.Cost(), dep.Cost())
	}
}

func TestDeployChunkedValidation(t *testing.T) {
	f := PrimeField()
	rng := testRNG()
	a := RandomMatrix(f, rng, 5, 4)
	if _, err := DeployChunked(f, a, 0, []float64{1, 2}, rng); err == nil {
		t.Error("chunk width 0 should be rejected")
	}
	if _, err := DeployChunked(f, NewMatrix[uint64](5, 0), 2, []float64{1, 2}, rng); err == nil {
		t.Error("zero-column matrix should be rejected")
	}
	cd, err := DeployChunked(f, a, 2, []float64{1, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cd.MulVec(make([]uint64, 3)); err == nil {
		t.Error("wrong input length should be rejected")
	}
}

func TestDeployChunkedMulMatMatchesMonolithic(t *testing.T) {
	f := PrimeField()
	rng := testRNG()
	a := RandomMatrix(f, rng, 14, 11)
	costs := []float64{1.2, 0.7, 2.1}
	cd, err := DeployChunked(f, a, 4, costs, rng)
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()
	if cd.Devices() <= 0 {
		t.Fatal("chunked deployment reports no devices")
	}
	const n = 3
	x := NewMatrix[uint64](11, n)
	for i := 0; i < 11; i++ {
		for j := 0; j < n; j++ {
			x.Set(i, j, f.Rand(rng))
		}
	}
	got, err := cd.MulMat(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		col := make([]uint64, 11)
		for i := range col {
			col[i] = x.At(i, j)
		}
		want := MulVec(f, a, col)
		for i := range want {
			if got.At(i, j) != want[i] {
				t.Fatalf("entry (%d,%d): %d != %d", i, j, got.At(i, j), want[i])
			}
		}
	}
	if _, err := cd.MulMat(NewMatrix[uint64](12, 2)); err == nil {
		t.Error("wrong input height should be rejected")
	}
}

func TestDeployChunkedRealField(t *testing.T) {
	f := RealField(1e-6)
	rng := testRNG()
	a := RandomMatrix(f, rng, 12, 9)
	cd, err := DeployChunked(f, a, 4, []float64{1, 1, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := RandomVector(f, rng, 9)
	got, err := cd.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	want := MulVec(f, a, x)
	for i := range got {
		if d := got[i] - want[i]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("entry %d: %g vs %g", i, got[i], want[i])
		}
	}
}
