// Quantized deployment — exact information-theoretic security for float
// workloads.
//
// The paper's security definition needs uniformly random field elements, so
// the strongest guarantees live in F_p — but model weights are float64. The
// quantized path bridges the two: weights and inputs are embedded as
// fixed-point residues, the entire coded pipeline runs exactly in F_p (the
// coding adds zero numerical error), and only the final result is scaled
// back. This example deploys the same matrix twice — float path vs
// quantized path — and compares accuracy and guarantees.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"github.com/scec/scec"
)

func main() {
	rng := rand.New(rand.NewPCG(2026, 7))
	fR := scec.RealField(0)

	const (
		m, l     = 400, 64
		fracBits = 20
		queries  = 50
	)
	a := scec.RandomMatrix(fR, rng, m, l)
	costs := []float64{1.2, 0.9, 2.0, 1.5, 3.1, 0.7}

	// Path 1: float64 coding (masks are Gaussian — fine for soft threat
	// models, but "uniformly random real" has no information-theoretic
	// meaning).
	floatDep, err := scec.Deploy(fR, a, costs, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Path 2: fixed-point coding in F_p — exact arithmetic, uniform masks,
	// Definition 2 holds verbatim.
	quantDep, err := scec.DeployQuantized(a, fracBits, 8, costs, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("float path:     %d devices, r=%d, cost %.2f\n", floatDep.Devices(), floatDep.Plan.R, floatDep.Cost())
	fmt.Printf("quantized path: %d devices, r=%d, cost %.2f, leakage %v\n",
		quantDep.Devices(), quantDep.Plan.R, quantDep.Cost(), quantDep.Audit())

	var worstFloat, worstQuant float64
	for q := 0; q < queries; q++ {
		x := scec.RandomVector(fR, rng, l)
		want := scec.MulVec(fR, a, x)

		yf, err := floatDep.MulVec(x)
		if err != nil {
			log.Fatal(err)
		}
		yq, err := quantDep.MulVec(x)
		if err != nil {
			log.Fatal(err)
		}
		for i := range want {
			if d := math.Abs(yf[i] - want[i]); d > worstFloat {
				worstFloat = d
			}
			if d := math.Abs(yq[i] - want[i]); d > worstQuant {
				worstQuant = d
			}
		}
	}
	fmt.Printf("worst |error| over %d queries:\n", queries)
	fmt.Printf("  float coding:     %.3g (float64 rounding through mask add/subtract)\n", worstFloat)
	fmt.Printf("  quantized coding: %.3g (pure fixed-point quantization at %d fractional bits)\n", worstQuant, fracBits)
	fmt.Println("the quantized pipeline's coding layer is exact: its only error is the fixed-point embedding")
}
