// Quickstart: securely multiply a confidential matrix by a vector on a
// fleet of untrusted edge devices, in ~30 lines against the public API.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"github.com/scec/scec"
)

func main() {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(1, 2))

	// The confidential data: a 1000×64 matrix (e.g. a model layer).
	a := scec.RandomMatrix(f, rng, 1000, 64)

	// Per-row unit costs of the candidate edge devices (storage + compute +
	// communication folded together; see scec.UnitCost).
	costs := []float64{1.3, 2.1, 0.8, 1.7, 3.0, 1.1, 2.6}

	// Deploy: optimal task allocation + secure linear coding + encoding.
	dep, err := scec.Deploy(f, a, costs, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d of %d devices, %d random rows, cost %.2f\n",
		dep.Devices(), len(costs), dep.Plan.R, dep.Cost())

	// Every device is information-theoretically blind.
	fmt.Printf("per-device leakage (dimensions of A's row space): %v\n", dep.Audit())

	// Multiply: each device computes its coded share; the user decodes with
	// 1000 subtractions.
	x := scec.RandomVector(f, rng, 64)
	y, err := dep.MulVec(x)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the plaintext product.
	want := scec.MulVec(f, a, x)
	for i := range y {
		if y[i] != want[i] {
			log.Fatalf("mismatch at entry %d", i)
		}
	}
	fmt.Printf("decoded A·x matches the plaintext product (%d entries)\n", len(y))
}
