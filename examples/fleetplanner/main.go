// Fleet planner — a capacity-planning study over a heterogeneous edge
// fleet: given a catalogue of device classes with real-ish unit prices, how
// much does confidentiality cost, which allocation strategy should run the
// job, and how does the answer change as the fleet becomes more
// heterogeneous?
//
// The example prices a 5000-row secure multiplication on mixed fleets,
// prints the planning table (optimal vs lower bound vs every baseline), and
// sweeps cost heterogeneity to find the MaxNode/MinNode crossover the paper
// discusses for Fig. 2(d).
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"text/tabwriter"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/workload"
)

// deviceClass is one hardware tier in the catalogue.
type deviceClass struct {
	name  string
	comps scec.CostComponents
	count int
}

func main() {
	const (
		m = 5000 // rows of the confidential matrix
		l = 256  // row length
	)

	catalogue := []deviceClass{
		{"sbc (Pi-class)", scec.CostComponents{Storage: 0.010, Add: 0.004, Mul: 0.008, Comm: 0.90}, 8},
		{"mini-pc", scec.CostComponents{Storage: 0.014, Add: 0.005, Mul: 0.012, Comm: 1.20}, 6},
		{"edge gateway", scec.CostComponents{Storage: 0.020, Add: 0.008, Mul: 0.018, Comm: 1.70}, 6},
		{"micro-server", scec.CostComponents{Storage: 0.030, Add: 0.012, Mul: 0.028, Comm: 2.40}, 5},
	}

	var costs []float64
	fmt.Println("fleet catalogue:")
	for _, c := range catalogue {
		unit := scec.UnitCost(l, c.comps)
		fmt.Printf("  %-16s ×%d  unit cost %.2f per coded row\n", c.name, c.count, unit)
		for i := 0; i < c.count; i++ {
			costs = append(costs, unit)
		}
	}

	in := scec.Instance{M: m, Costs: costs}
	plan, err := scec.Allocate(m, costs)
	if err != nil {
		log.Fatal(err)
	}
	lb, err := scec.LowerBound(m, costs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nplanning a %d-row secure multiplication over %d devices:\n\n", m, len(costs))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tr\tdevices\tcost\tvs optimal\tsecure")
	printRow(w, "lower bound (Thm 1)", 0, 0, lb, lb, true)
	printPlan(w, "MCSCEC (optimal)", plan, plan.Cost)
	for _, b := range []struct {
		name   string
		solve  func(scec.Instance) (scec.Plan, error)
		secure bool
	}{
		{"TAw/oS", alloc.TAWithoutSecurity, false},
		{"MaxNode", alloc.MaxNode, true},
		{"MinNode", alloc.MinNode, true},
	} {
		p, err := b.solve(in)
		if err != nil {
			log.Fatal(err)
		}
		printPlanSecure(w, b.name, p, plan.Cost, b.secure)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconfidentiality premium: %.1f%% over the insecure split\n",
		100*premium(in, plan.Cost))

	// Heterogeneity sweep: when does concentrating (MinNode) overtake
	// spreading (MaxNode)? 200 sampled fleets per sigma.
	fmt.Println("\nheterogeneity sweep (normal costs, mu=5):")
	fmt.Println("  sigma   MCSCEC   MaxNode  MinNode  winner")
	rng := rand.New(rand.NewPCG(2019, 7))
	for _, sigma := range []float64{0.01, 0.5, 1.0, 1.5, 2.0, 2.5} {
		var opt, maxN, minN float64
		const fleets = 200
		for i := 0; i < fleets; i++ {
			fi := workload.Instance(rng, m, len(costs), workload.Normal{Mu: 5, Sigma: sigma})
			po, err := alloc.TA2(fi)
			if err != nil {
				log.Fatal(err)
			}
			pMax, err := alloc.MaxNode(fi)
			if err != nil {
				log.Fatal(err)
			}
			pMin, err := alloc.MinNode(fi)
			if err != nil {
				log.Fatal(err)
			}
			opt += po.Cost / fleets
			maxN += pMax.Cost / fleets
			minN += pMin.Cost / fleets
		}
		winner := "MaxNode"
		if minN < maxN {
			winner = "MinNode"
		}
		fmt.Printf("  %5.2f  %8.0f %8.0f %8.0f  %s\n", sigma, opt, maxN, minN, winner)
	}
}

func printPlan(w *tabwriter.Writer, name string, p scec.Plan, opt float64) {
	printPlanSecure(w, name, p, opt, p.R > 0)
}

func printPlanSecure(w *tabwriter.Writer, name string, p scec.Plan, opt float64, secure bool) {
	printRow(w, name, p.R, p.I, p.Cost, opt, secure)
}

func printRow(w *tabwriter.Writer, name string, r, devices int, cost, opt float64, secure bool) {
	secStr := "yes"
	if !secure {
		secStr = "NO"
	}
	fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%+.1f%%\t%s\n", name, r, devices, cost, 100*(cost-opt)/opt, secStr)
}

func premium(in scec.Instance, optCost float64) float64 {
	woS, err := alloc.TAWithoutSecurity(in)
	if err != nil {
		log.Fatal(err)
	}
	return (optCost - woS.Cost) / woS.Cost
}
