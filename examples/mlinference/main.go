// ML inference offload — the paper's motivating workload (§I, Fig. 1): a
// pre-trained model layer y = W·x is evaluated on edge devices without
// revealing the weights W to any of them.
//
// The example builds a small two-layer network over float64, deploys each
// layer's weight matrix as a secure coded computation, and runs a batch of
// inference requests through the fleet, comparing every activation with a
// local plaintext forward pass.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"github.com/scec/scec"
)

// layer is one dense layer with a secure deployment of its weights.
type layer struct {
	dep  *scec.Deployment[float64]
	w    *scec.Matrix[float64] // plaintext copy, used only for verification
	bias []float64
}

func main() {
	f := scec.RealField(1e-6)
	rng := rand.New(rand.NewPCG(42, 7))

	const (
		inputDim  = 32
		hiddenDim = 64
		outputDim = 10
		batch     = 8
	)

	// "Pre-trained" weights (random stand-ins) and a heterogeneous fleet:
	// three cheap single-board devices, three mid-range boxes, two pricey
	// gateways — priced per coded row via the Eq. (1) folding.
	fleet := []scec.CostComponents{
		{Storage: 0.02, Add: 0.01, Mul: 0.02, Comm: 0.5},
		{Storage: 0.02, Add: 0.01, Mul: 0.02, Comm: 0.6},
		{Storage: 0.03, Add: 0.01, Mul: 0.03, Comm: 0.5},
		{Storage: 0.05, Add: 0.02, Mul: 0.05, Comm: 1.0},
		{Storage: 0.05, Add: 0.02, Mul: 0.06, Comm: 1.2},
		{Storage: 0.06, Add: 0.03, Mul: 0.06, Comm: 1.0},
		{Storage: 0.10, Add: 0.05, Mul: 0.12, Comm: 2.5},
		{Storage: 0.12, Add: 0.05, Mul: 0.14, Comm: 3.0},
	}

	l1, err := deployLayer(f, rng, hiddenDim, inputDim, fleet)
	if err != nil {
		log.Fatal(err)
	}
	l2, err := deployLayer(f, rng, outputDim, hiddenDim, fleet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layer 1: %d devices, %d random rows, cost %.2f, leakage %v\n",
		l1.dep.Devices(), l1.dep.Plan.R, l1.dep.Cost(), l1.dep.Audit())
	fmt.Printf("layer 2: %d devices, %d random rows, cost %.2f, leakage %v\n",
		l2.dep.Devices(), l2.dep.Plan.R, l2.dep.Cost(), l2.dep.Audit())

	for b := 0; b < batch; b++ {
		x := scec.RandomVector(f, rng, inputDim)

		// Secure forward pass: each layer's mat-vec runs on the fleet.
		h, err := l1.forward(x)
		if err != nil {
			log.Fatal(err)
		}
		relu(h)
		y, err := l2.forward(h)
		if err != nil {
			log.Fatal(err)
		}

		// Plaintext reference forward pass.
		hRef := scec.MulVec(f, l1.w, x)
		addBias(hRef, l1.bias)
		relu(hRef)
		yRef := scec.MulVec(f, l2.w, hRef)
		addBias(yRef, l2.bias)

		for i := range y {
			if math.Abs(y[i]-yRef[i]) > 1e-6 {
				log.Fatalf("request %d: logit %d differs: %g vs %g", b, i, y[i], yRef[i])
			}
		}
		fmt.Printf("request %d: %d logits verified (argmax %d)\n", b, len(y), argmax(y))
	}
	fmt.Println("all inference requests matched the plaintext forward pass")
}

func deployLayer(f scec.Field[float64], rng *rand.Rand, rows, cols int, fleet []scec.CostComponents) (*layer, error) {
	costs, err := scec.UnitCosts(cols, fleet)
	if err != nil {
		return nil, err
	}
	w := scec.RandomMatrix(f, rng, rows, cols)
	dep, err := scec.Deploy(f, w, costs, rng)
	if err != nil {
		return nil, err
	}
	bias := scec.RandomVector(f, rng, rows)
	return &layer{dep: dep, w: w, bias: bias}, nil
}

// forward computes W·x on the fleet, then adds the bias locally (the bias is
// small and need not be offloaded).
func (l *layer) forward(x []float64) ([]float64, error) {
	y, err := l.dep.MulVec(x)
	if err != nil {
		return nil, err
	}
	addBias(y, l.bias)
	return y, nil
}

func addBias(v, bias []float64) {
	for i := range v {
		v[i] += bias[i]
	}
}

func relu(v []float64) {
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
	}
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
