// Collusion resistance — the paper's future-work extension (§VI): the
// structured Eq. (8) design is information-theoretically secure against any
// single honest-but-curious device, but two colluding devices break it
// instantly (one holds A_p + R_q, another holds R_q). This example
//
//  1. mounts that concrete two-device attack against the structured scheme
//     and recovers a row of A, then
//  2. deploys the Cauchy-based collusion-resistant scheme, verifies that
//     every coalition of up to t devices is blind, and runs a full
//     encode → compute → decode round trip.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"github.com/scec/scec"
	"github.com/scec/scec/internal/attack"
	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/matrix"
)

func main() {
	f := scec.PrimeField()
	rng := rand.New(rand.NewPCG(9, 9))
	const (
		m = 8
		l = 5
		t = 2 // colluders to defend against
	)

	// --- Part 1: break the single-attacker design with two devices. ---
	s, err := scec.NewScheme(m, 4)
	if err != nil {
		log.Fatal(err)
	}
	a := scec.RandomMatrix(f, rng, m, l)
	enc, err := scec.Encode(f, s, a, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Each device alone is blind.
	for j := 0; j < s.Devices(); j++ {
		if leak := scec.AuditDevice(f, s, j); leak != 0 {
			log.Fatalf("device %d should be blind, leaks %d", j, leak)
		}
	}
	fmt.Println("structured scheme: every single device is information-theoretically blind")

	// Devices 0 and 1 pool their coefficient rows and coded rows.
	pooledCoeffs := matrix.VStack(
		coding.DeviceMatrix(f, s, 0),
		coding.DeviceMatrix(f, s, 1),
	)
	pooledCoded := matrix.VStack(enc.Blocks[0], enc.Blocks[1])
	alpha, combo, ok := attack.Exploit(f, pooledCoeffs, m)
	if !ok {
		log.Fatal("expected the coalition to break the structured scheme")
	}
	if err := attack.VerifyExploit(f, pooledCoded, a, alpha, combo); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coalition {device 0, device 1} recovered a combination of A's rows (weights %v)\n", combo)

	// --- Part 2: the Cauchy-based scheme survives the same coalition. ---
	rows, r, err := coding.UniformCollusionRows(m, t, 3)
	if err != nil {
		log.Fatal(err)
	}
	cs, err := scec.NewCollusionScheme(f, m, r, t, rows)
	if err != nil {
		log.Fatal(err)
	}
	if err := cs.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collusion scheme: r=%d random rows over %d devices; every coalition of ≤%d devices verified blind\n",
		r, cs.Devices(), t)

	cenc, err := cs.Encode(a, rng)
	if err != nil {
		log.Fatal(err)
	}
	x := scec.RandomVector(f, rng, l)
	y := cenc.ComputeAll(f, x)
	got, err := cs.Decode(y)
	if err != nil {
		log.Fatal(err)
	}
	want := scec.MulVec(f, a, x)
	for i := range got {
		if got[i] != want[i] {
			log.Fatalf("decode mismatch at entry %d", i)
		}
	}
	fmt.Printf("collusion scheme decoded A·x correctly (%d entries)\n", len(got))

	// The price of collusion resistance: more random rows than the optimal
	// single-attacker design would need.
	base, err := scec.Allocate(m, []float64{1, 1, 1, 1, 1, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("redundancy price: single-attacker optimum uses r=%d; %d-collusion design uses r=%d\n",
		base.R, t, r)
}
