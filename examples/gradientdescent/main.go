// Secure gradient descent — the workload §II-B uses to motivate protecting
// A but not x: "in gradient-descent based algorithms, data matrix A is
// usually the personal data and input vector x in each iteration is only a
// temporary vector for obtaining the final weight vector".
//
// This example fits a linear model to a confidential dataset A (n samples ×
// d features, held only in coded form by the edge fleet) by full-batch
// gradient descent. Each iteration needs two secure products:
//
//	predictions p = A·w          (one deployment codes A)
//	gradient    g = Aᵀ·(p − y)/n (a second deployment codes Aᵀ)
//
// The fleet never sees A or Aᵀ in the clear; the iterate w and residuals —
// the paper's "temporary vectors" — are what travels. The learned weights
// are compared against training on the plaintext data.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"github.com/scec/scec"
)

const (
	samples  = 200
	features = 8
	iters    = 300
	lr       = 0.05
)

func main() {
	f := scec.RealField(1e-6)
	rng := rand.New(rand.NewPCG(77, 5))

	// Confidential training data and synthetic labels from a ground-truth
	// weight vector (plus noise).
	a := scec.RandomMatrix(f, rng, samples, features)
	truth := scec.RandomVector(f, rng, features)
	y := scec.MulVec(f, a, truth)
	for i := range y {
		y[i] += 0.01 * rng.NormFloat64()
	}

	costs := []float64{1.1, 0.9, 1.6, 2.2, 1.3, 2.8, 1.0}

	// Two deployments: one for A (predictions), one for Aᵀ (gradients).
	depA, err := scec.Deploy(f, a, costs, rng)
	if err != nil {
		log.Fatal(err)
	}
	at := scec.NewMatrix[float64](features, samples)
	for i := 0; i < samples; i++ {
		for j := 0; j < features; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	depAT, err := scec.Deploy(f, at, costs, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed A (%d devices, r=%d) and Aᵀ (%d devices, r=%d); leakage %v %v\n",
		depA.Devices(), depA.Plan.R, depAT.Devices(), depAT.Plan.R, depA.Audit(), depAT.Audit())

	// Secure training loop.
	w := make([]float64, features)
	var secureLoss float64
	for it := 0; it < iters; it++ {
		pred, err := depA.MulVec(w)
		if err != nil {
			log.Fatal(err)
		}
		resid := make([]float64, samples)
		secureLoss = 0
		for i := range resid {
			resid[i] = pred[i] - y[i]
			secureLoss += resid[i] * resid[i] / samples
		}
		grad, err := depAT.MulVec(resid)
		if err != nil {
			log.Fatal(err)
		}
		for j := range w {
			w[j] -= lr * grad[j] / samples
		}
		if it%100 == 0 {
			fmt.Printf("iter %3d: mse %.6f\n", it, secureLoss)
		}
	}

	// Plaintext reference: identical loop on the raw data.
	wRef := make([]float64, features)
	for it := 0; it < iters; it++ {
		pred := scec.MulVec(f, a, wRef)
		resid := make([]float64, samples)
		for i := range resid {
			resid[i] = pred[i] - y[i]
		}
		grad := scec.MulVec(f, at, resid)
		for j := range wRef {
			wRef[j] -= lr * grad[j] / samples
		}
	}

	maxDiff := 0.0
	for j := range w {
		if d := math.Abs(w[j] - wRef[j]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-6 {
		log.Fatalf("secure and plaintext training diverged: max |Δw| = %g", maxDiff)
	}

	werr := 0.0
	for j := range w {
		werr += (w[j] - truth[j]) * (w[j] - truth[j])
	}
	fmt.Printf("final mse %.6f; secure vs plaintext weights agree (max |Δw| = %.2g); ‖w−truth‖² = %.6f\n",
		secureLoss, maxDiff, werr)
	fmt.Println("the fleet computed every A·w and Aᵀ·r without ever seeing A")
}
