package scec

import (
	"context"
	"fmt"
	"math/rand/v2"

	"github.com/scec/scec/internal/quant"
)

// Quantizer converts between float64 values and exact fixed-point residues
// in the prime field. See DeployQuantized for the high-level path.
type Quantizer = quant.Quantizer

// NewQuantizer builds a fixed-point quantizer with the given number of
// fractional bits (1–28).
func NewQuantizer(fracBits uint) (Quantizer, error) { return quant.NewQuantizer(fracBits) }

// QuantizedDeployment wraps a prime-field Deployment of a quantized float
// matrix: callers keep working in float64 while the fleet computes exactly
// in F_p — so the coded rows are uniform field elements and Definition 2's
// information-theoretic security holds verbatim, unlike the float path
// where "uniformly random real" is ill-defined.
type QuantizedDeployment struct {
	// Deployment is the underlying exact deployment; its Plan, Audit, and
	// Cost describe this workload.
	*Deployment[uint64]
	q    Quantizer
	l    int
	maxA float64
}

// DeployQuantized quantizes the float matrix a at fracBits fractional bits
// and deploys it over the prime field. maxX must bound the absolute value
// of every future input entry; it is checked now (against the static
// overflow bound of the 61-bit modulus) and again on every query. Options
// select the execution backend for the underlying exact deployment.
func DeployQuantized(a *Matrix[float64], fracBits uint, maxX float64, unitCosts []float64, rng *rand.Rand, opts ...DeployOption[uint64]) (*QuantizedDeployment, error) {
	q, err := quant.NewQuantizer(fracBits)
	if err != nil {
		return nil, err
	}
	maxA := quant.MaxAbs(a)
	if err := q.CheckMatVec(a.Cols(), maxA, maxX); err != nil {
		return nil, fmt.Errorf("scec: workload would overflow the field: %w", err)
	}
	aq, err := q.QuantizeMatrix(a)
	if err != nil {
		return nil, err
	}
	dep, err := Deploy(PrimeField(), aq, unitCosts, rng, opts...)
	if err != nil {
		return nil, err
	}
	return &QuantizedDeployment{Deployment: dep, q: q, l: a.Cols(), maxA: maxA}, nil
}

// MulVec computes A·x through the fleet: x is quantized, the exact coded
// pipeline runs in F_p, and the result is scaled back to float64. The only
// error relative to the float product is the fixed-point quantization of
// the operands; the coding itself is exact.
func (d *QuantizedDeployment) MulVec(x []float64) ([]float64, error) {
	return d.MulVecContext(context.Background(), x)
}

// MulVecContext is MulVec bounded by ctx; a span carried in ctx continues
// into the exact pipeline's trace.
func (d *QuantizedDeployment) MulVecContext(ctx context.Context, x []float64) ([]float64, error) {
	if len(x) != d.l {
		return nil, fmt.Errorf("scec: input vector has %d entries, want %d", len(x), d.l)
	}
	if err := d.q.CheckMatVec(d.l, d.maxA, quant.MaxAbsVec(x)); err != nil {
		return nil, fmt.Errorf("scec: input would overflow the field: %w", err)
	}
	xq, err := d.q.QuantizeVec(x)
	if err != nil {
		return nil, err
	}
	yq, err := d.Deployment.MulVecContext(ctx, xq)
	if err != nil {
		return nil, err
	}
	return d.q.DequantizeDotVec(yq), nil
}

// MulMat computes A·X for an l×n float input matrix through the exact
// pipeline: X is quantized entrywise, the coded batch round runs in F_p,
// and every decoded dot product scales back to float64.
func (d *QuantizedDeployment) MulMat(x *Matrix[float64]) (*Matrix[float64], error) {
	return d.MulMatContext(context.Background(), x)
}

// MulMatContext is MulMat bounded by ctx; see MulVecContext.
func (d *QuantizedDeployment) MulMatContext(ctx context.Context, x *Matrix[float64]) (*Matrix[float64], error) {
	if x.Rows() != d.l {
		return nil, fmt.Errorf("scec: input matrix has %d rows, want %d", x.Rows(), d.l)
	}
	if err := d.q.CheckMatVec(d.l, d.maxA, quant.MaxAbs(x)); err != nil {
		return nil, fmt.Errorf("scec: input would overflow the field: %w", err)
	}
	xq, err := d.q.QuantizeMatrix(x)
	if err != nil {
		return nil, err
	}
	yq, err := d.Deployment.MulMatContext(ctx, xq)
	if err != nil {
		return nil, err
	}
	y := NewMatrix[float64](yq.Rows(), yq.Cols())
	for i := 0; i < yq.Rows(); i++ {
		for j := 0; j < yq.Cols(); j++ {
			y.Set(i, j, d.q.DequantizeDot(yq.At(i, j)))
		}
	}
	return y, nil
}
