package engine

import (
	"sync"
	"time"

	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
)

// outcome is what a coalesced waiter receives: its decoded column of A·X,
// or the round's error.
type outcome[E comparable] struct {
	ax  []E
	err error
}

// waiter is one MulVec caller parked in a coalescing batch.
type waiter[E comparable] struct {
	x   []E
	out chan outcome[E]
}

// cbatch is one open coalescing batch: the waiters collected so far and the
// window timer that will flush it.
type cbatch[E comparable] struct {
	waiters []*waiter[E]
	timer   *time.Timer
}

// coalescer merges concurrent MulVec calls into MulMat rounds. The first
// caller to arrive while no batch is open becomes the leader: it opens a
// batch and arms the window timer. Followers append themselves. The batch
// executes when the window elapses or the batch fills, whichever comes
// first; the executing goroutine stacks the inputs column-wise, runs one
// batch round, and fans each decoded column back to its caller.
type coalescer[E comparable] struct {
	q      *Query[E]
	window time.Duration
	max    int
	hist   *obs.Histogram

	mu  sync.Mutex
	cur *cbatch[E]
}

func newCoalescer[E comparable](q *Query[E], window time.Duration, max int, hist *obs.Histogram) *coalescer[E] {
	return &coalescer[E]{q: q, window: window, max: max, hist: hist}
}

// submit parks the caller in the current batch (opening one if needed) and
// blocks until the batch executes.
func (c *coalescer[E]) submit(x []E) ([]E, error) {
	w := &waiter[E]{x: x, out: make(chan outcome[E], 1)}
	c.mu.Lock()
	if c.cur == nil {
		b := &cbatch[E]{}
		b.timer = time.AfterFunc(c.window, func() { c.flush(b) })
		c.cur = b
	}
	b := c.cur
	b.waiters = append(b.waiters, w)
	full := len(b.waiters) >= c.max
	if full {
		c.cur = nil
	}
	c.mu.Unlock()
	if full {
		b.timer.Stop()
		c.execute(b.waiters)
	}
	o := <-w.out
	return o.ax, o.err
}

// flush executes a batch whose window elapsed, unless a full-batch flush
// (or drain) already claimed it.
func (c *coalescer[E]) flush(b *cbatch[E]) {
	c.mu.Lock()
	if c.cur != b {
		c.mu.Unlock()
		return
	}
	c.cur = nil
	c.mu.Unlock()
	c.execute(b.waiters)
}

// drain flushes any open batch immediately; the Query calls it on Close so
// no caller is left waiting out a window against a closed executor.
func (c *coalescer[E]) drain() {
	c.mu.Lock()
	b := c.cur
	c.cur = nil
	c.mu.Unlock()
	if b == nil {
		return
	}
	b.timer.Stop()
	c.execute(b.waiters)
}

// execute runs one coalesced round and fans results back. A singleton batch
// takes the plain vector path; a merged batch stacks inputs as columns of
// one l×n matrix, runs a single batch dispatch, and hands column i of the
// decoded A·X to caller i.
func (c *coalescer[E]) execute(ws []*waiter[E]) {
	c.hist.Observe(float64(len(ws)))
	if len(ws) == 1 {
		ax, err := c.q.mulVecDirect(ws[0].x)
		ws[0].out <- outcome[E]{ax, err}
		return
	}
	x := matrix.New[E](c.q.cols, len(ws))
	for i, w := range ws {
		for p, v := range w.x {
			x.Set(p, i, v)
		}
	}
	ax, err := c.q.mulMatDirect(x)
	if err != nil {
		for _, w := range ws {
			w.out <- outcome[E]{nil, err}
		}
		return
	}
	for i, w := range ws {
		col := make([]E, ax.Rows())
		for p := range col {
			col[p] = ax.At(p, i)
		}
		w.out <- outcome[E]{col, nil}
	}
}
