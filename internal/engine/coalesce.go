package engine

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
)

// outcome is what a coalesced waiter receives: its decoded column of A·X,
// or the round's error.
type outcome[E comparable] struct {
	ax  []E
	err error
}

// waiter is one MulVec caller parked in a coalescing batch.
type waiter[E comparable] struct {
	ctx context.Context
	x   []E
	out chan outcome[E]
	// sp is the caller's engine.coalesce.wait span: opened at submit, closed
	// when the outcome lands, so the waterfall shows exactly how long each
	// caller spent parked against the window.
	sp *trace.Span
}

// cbatch is one open coalescing batch: the waiters collected so far and the
// window timer that will flush it.
type cbatch[E comparable] struct {
	waiters []*waiter[E]
	timer   *time.Timer
}

// coalescer merges concurrent MulVec calls into MulMat rounds. The first
// caller to arrive while no batch is open becomes the leader: it opens a
// batch and arms the window timer. Followers append themselves. The batch
// executes when the window elapses or the batch fills, whichever comes
// first; the executing goroutine stacks the inputs column-wise, runs one
// batch round, and fans each decoded column back to its caller.
type coalescer[E comparable] struct {
	q      *Query[E]
	window time.Duration
	max    int
	hist   *obs.Histogram

	// rounds/merged are lifetime occupancy counters for /debug/engine:
	// batches executed and callers they served.
	rounds atomic.Int64
	merged atomic.Int64

	mu  sync.Mutex
	cur *cbatch[E]
}

func newCoalescer[E comparable](q *Query[E], window time.Duration, max int, hist *obs.Histogram) *coalescer[E] {
	return &coalescer[E]{q: q, window: window, max: max, hist: hist}
}

// occupancy reports the currently parked caller count.
func (c *coalescer[E]) occupancy() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return 0
	}
	return len(c.cur.waiters)
}

// submit parks the caller in the current batch (opening one if needed) and
// blocks until the batch executes. ctx carries the caller's query span; the
// round executes under the leader's context.
func (c *coalescer[E]) submit(ctx context.Context, x []E) ([]E, error) {
	_, wsp := c.q.startSpan(ctx, trace.SpanCoalesceWait)
	w := &waiter[E]{ctx: ctx, x: x, out: make(chan outcome[E], 1), sp: wsp}
	c.mu.Lock()
	if c.cur == nil {
		b := &cbatch[E]{}
		b.timer = time.AfterFunc(c.window, func() { c.flush(b) })
		c.cur = b
	}
	b := c.cur
	b.waiters = append(b.waiters, w)
	full := len(b.waiters) >= c.max
	if full {
		c.cur = nil
	}
	c.mu.Unlock()
	if full {
		b.timer.Stop()
		c.execute(b.waiters)
	}
	// w.out is buffered (size 1), so abandoning the wait on cancellation
	// never blocks the executing goroutine's send.
	select {
	case o := <-w.out:
		wsp.End()
		return o.ax, o.err
	case <-ctx.Done():
		wsp.SetError(ctx.Err())
		wsp.End()
		return nil, ctx.Err()
	}
}

// flush executes a batch whose window elapsed, unless a full-batch flush
// (or drain) already claimed it.
func (c *coalescer[E]) flush(b *cbatch[E]) {
	c.mu.Lock()
	if c.cur != b {
		c.mu.Unlock()
		return
	}
	c.cur = nil
	c.mu.Unlock()
	c.execute(b.waiters)
}

// drain flushes any open batch immediately; the Query calls it on Close so
// no caller is left waiting out a window against a closed executor.
func (c *coalescer[E]) drain() {
	c.mu.Lock()
	b := c.cur
	c.cur = nil
	c.mu.Unlock()
	if b == nil {
		return
	}
	b.timer.Stop()
	c.execute(b.waiters)
}

// execute runs one coalesced round and fans results back. A singleton batch
// takes the plain vector path; a merged batch stacks inputs as columns of
// one l×n matrix, runs a single batch dispatch, and hands column i of the
// decoded A·X to caller i. The round runs under the leader's (first
// waiter's) context and span; followers from other traces see an
// "coalesced" event on their wait spans instead, since one round cannot
// belong to two traces.
func (c *coalescer[E]) execute(ws []*waiter[E]) {
	c.hist.Observe(float64(len(ws)))
	c.rounds.Add(1)
	c.merged.Add(int64(len(ws)))
	batch := strconv.Itoa(len(ws))
	for _, w := range ws {
		w.sp.AddEvent(trace.EventCoalesced, trace.A(trace.AttrBatch, batch))
	}
	if len(ws) == 1 {
		ax, err := c.q.mulVecDirect(ws[0].ctx, ws[0].x)
		ws[0].out <- outcome[E]{ax, err}
		return
	}
	rctx, rsp := c.q.startSpan(ws[0].ctx, trace.SpanEngineRound)
	rsp.SetAttr(trace.AttrBatch, batch)
	x := matrix.New[E](c.q.cols, len(ws))
	for i, w := range ws {
		for p, v := range w.x {
			x.Set(p, i, v)
		}
	}
	ax, err := c.q.mulMatDirect(rctx, x)
	rsp.SetError(err)
	rsp.End()
	if err != nil {
		for _, w := range ws {
			w.out <- outcome[E]{nil, err}
		}
		return
	}
	for i, w := range ws {
		col := make([]E, ax.Rows())
		for p := range col {
			col[p] = ax.At(p, i)
		}
		w.out <- outcome[E]{col, nil}
	}
}
