package engine

import (
	"context"
	"errors"
	"sync"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/matrix"
)

// ErrSwapInProgress reports that a drain-and-swap was requested while a
// previous one had not finished; the adaptive controller serializes swaps,
// so hitting this means two controllers share one executor.
var ErrSwapInProgress = errors.New("engine: executor swap already in progress")

// errSwappableClosed is returned to queries that arrive after Close.
var errSwappableClosed = errors.New("engine: swappable executor is closed")

// epoch is one immutable (executor, code) generation of a Swappable. A
// round joins exactly one epoch for its whole lifetime — dispatch and decode
// see the same code even if a swap lands mid-round — and the epoch's
// WaitGroup lets a swap drain the rounds still inside it.
type epoch[E comparable] struct {
	exec Executor[E]
	code coding.Code[E]
	wg   sync.WaitGroup
}

// Swappable is an Executor whose substrate can be replaced while queries are
// in flight. It is the engine-side seam of the adaptive control plane: the
// fleet adapter re-provisions a session under a new plan (possibly with a
// different r, hence a different scheme) and swaps it in without failing a
// single query.
//
// Two swap modes cover the two migration shapes:
//
//   - Swap installs the next epoch immediately and lets rounds already
//     inside the old epoch finish against the old substrate in the
//     background — correct when old and new substrates can serve
//     concurrently (same code, disjoint or superset device sets).
//   - SwapDrained parks new rounds (they wait, they never fail), drains the
//     rounds in flight, builds the replacement while the world is quiet,
//     installs it, and releases the parked rounds into the new epoch —
//     required when the code changes, since a round decoded under the old
//     code must never race a device re-provisioned under the new one.
type Swappable[E comparable] struct {
	mu     sync.Mutex
	cur    *epoch[E]
	gate   chan struct{} // non-nil while a drained swap is parked; closed to release
	closed bool

	closeOnce sync.Once
	closeErr  error
	bg        sync.WaitGroup // background drains started by Swap
}

// NewSwappable wraps exec as the first epoch. The Swappable owns exec (and
// every successor installed by a swap): closing the Swappable closes the
// current substrate, and a completed swap closes the one it replaced.
func NewSwappable[E comparable](exec Executor[E], code coding.Code[E]) (*Swappable[E], error) {
	if exec == nil || code == nil {
		return nil, errors.New("engine: swappable executor needs a substrate and a code")
	}
	return &Swappable[E]{cur: &epoch[E]{exec: exec, code: code}}, nil
}

// Name identifies the backend for metric labels. The substrate underneath
// changes over the Swappable's life, so it reports the stable composition
// rather than any one epoch's name.
func (s *Swappable[E]) Name() string { return "adaptive" }

// acquire joins the current epoch, waiting out any parked swap first. The
// returned release must be called when the round's dispatch AND decode are
// both done.
func (s *Swappable[E]) acquire(ctx context.Context) (*epoch[E], func(), error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, nil, errSwappableClosed
		}
		if s.gate == nil {
			ep := s.cur
			ep.wg.Add(1)
			s.mu.Unlock()
			return ep, ep.wg.Done, nil
		}
		ch := s.gate
		s.mu.Unlock()
		select {
		case <-ch:
			// Swap finished (or aborted): re-check against the new state.
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// Current returns the live (substrate, code) pair, for introspection.
func (s *Swappable[E]) Current() (Executor[E], coding.Code[E]) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur.exec, s.cur.code
}

// Compute runs one vector round against whichever epoch is current when the
// round starts.
func (s *Swappable[E]) Compute(ctx context.Context, x []E) ([]E, error) {
	ep, release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return ep.exec.Compute(ctx, x)
}

// ComputeBatch runs one batch round against the current epoch.
func (s *Swappable[E]) ComputeBatch(ctx context.Context, x *matrix.Dense[E]) (*matrix.Dense[E], error) {
	ep, release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return ep.exec.ComputeBatch(ctx, x)
}

// Swap installs next as the new epoch immediately. Rounds already inside the
// old epoch finish against the old substrate, which is closed in the
// background once they drain; new rounds dispatch to next without waiting.
// The code must be unchanged — a code change needs SwapDrained.
func (s *Swappable[E]) Swap(next Executor[E], code coding.Code[E]) error {
	if next == nil || code == nil {
		return errors.New("engine: swap needs a substrate and a code")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errSwappableClosed
	}
	old := s.cur
	s.cur = &epoch[E]{exec: next, code: code}
	s.bg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.bg.Done()
		old.wg.Wait()
		_ = old.exec.Close()
	}()
	return nil
}

// SwapDrained performs a full drain-and-swap: new rounds park on the gate
// (blocked, never failed), in-flight rounds drain, build constructs the
// replacement substrate while nothing is mid-round, and the parked rounds
// release into the new epoch. On any failure — drain deadline, build error —
// the old epoch stays installed and the parked rounds resume against it, so
// a failed migration degrades to a pause, never to dropped requests.
func (s *Swappable[E]) SwapDrained(ctx context.Context, build func(context.Context) (Executor[E], coding.Code[E], error)) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errSwappableClosed
	}
	if s.gate != nil {
		s.mu.Unlock()
		return ErrSwapInProgress
	}
	gate := make(chan struct{})
	s.gate = gate
	old := s.cur
	s.mu.Unlock()
	release := func() {
		s.mu.Lock()
		s.gate = nil
		s.mu.Unlock()
		close(gate)
	}

	drained := make(chan struct{})
	go func() {
		// If the drain deadline fires first this goroutine outlives the
		// call, which is harmless: it owns nothing but the wait.
		old.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		release()
		return ctx.Err()
	}

	next, code, err := build(ctx)
	if err != nil {
		release()
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		release()
		_ = next.Close()
		return errSwappableClosed
	}
	s.cur = &epoch[E]{exec: next, code: code}
	s.mu.Unlock()
	release()
	return old.exec.Close()
}

// Close closes the current substrate and waits for background drains from
// earlier Swap calls. Idempotent.
func (s *Swappable[E]) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		cur := s.cur
		s.mu.Unlock()
		s.closeErr = cur.exec.Close()
		s.bg.Wait()
	})
	return s.closeErr
}
