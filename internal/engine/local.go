package engine

import (
	"context"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
)

// LocalExecutor evaluates the compute round in-process with the
// field-specialized parallel kernels (Encoding.ComputeAll and
// ComputeAllBatch). It is the zero-infrastructure backend and the engine's
// default.
type LocalExecutor[E comparable] struct {
	f   field.Field[E]
	enc *coding.Encoding[E]
	reg *obs.Registry
}

// NewLocal builds a local executor over an encoding. A nil registry records
// stage timings into obs.Default().
func NewLocal[E comparable](f field.Field[E], enc *coding.Encoding[E], reg *obs.Registry) *LocalExecutor[E] {
	return &LocalExecutor[E]{f: f, enc: enc, reg: reg}
}

// LocalBackend returns the Backend factory for the local executor,
// recording stage timings into reg (nil means obs.Default()).
func LocalBackend[E comparable](reg *obs.Registry) Backend[E] {
	return func(f field.Field[E], enc *coding.Encoding[E]) (Executor[E], error) {
		return NewLocal(f, enc, reg), nil
	}
}

// Name implements Executor.
func (e *LocalExecutor[E]) Name() string { return "local" }

// Compute runs every device's B_j·T·x in-process under a compute-stage
// span (and a device.compute trace span when ctx carries a trace).
func (e *LocalExecutor[E]) Compute(ctx context.Context, x []E) ([]E, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, csp := traceSpan(ctx, trace.SpanDeviceCompute, trace.A(trace.AttrKind, "vec"))
	defer csp.End()
	defer obs.StartStage(e.reg, obs.StageCompute).End()
	return e.enc.ComputeAll(e.f, x), nil
}

// ComputeBatch runs every device's B_j·T·X in-process under a
// compute-stage span (and a device.compute trace span when ctx carries a
// trace).
func (e *LocalExecutor[E]) ComputeBatch(ctx context.Context, x *matrix.Dense[E]) (*matrix.Dense[E], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, csp := traceSpan(ctx, trace.SpanDeviceCompute, trace.A(trace.AttrKind, "mat"))
	defer csp.End()
	defer obs.StartStage(e.reg, obs.StageCompute).End()
	return e.enc.ComputeAllBatch(e.f, x), nil
}

// traceSpan opens a child span when ctx carries one; otherwise it no-ops.
// In-process executors use it so they only trace inside an existing trace.
func traceSpan(ctx context.Context, name string, attrs ...trace.Attr) (context.Context, *trace.Span) {
	if parent := trace.SpanFromContext(ctx); parent != nil {
		return parent.Tracer().StartSpan(ctx, name, attrs...)
	}
	return ctx, nil
}

// Close implements Executor; the local backend holds no resources.
func (e *LocalExecutor[E]) Close() error { return nil }
