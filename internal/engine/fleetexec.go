package engine

import (
	"context"
	"errors"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/fleet"
	"github.com/scec/scec/internal/matrix"
)

// FleetConfig configures the fleet-backed executor.
type FleetConfig struct {
	// Session is the fleet runtime configuration. Its Replicas (and
	// optionally Standbys) must be set unless Provision is non-nil.
	Session fleet.Config
	// Provision, when non-nil, is called at bind time with the encoding's
	// block count and must return the replica address sets (and optional
	// standbys) to provision. It lets one Backend value serve deployments
	// whose device counts aren't known up front — chunked deployments
	// provision a fleet per chunk this way.
	Provision func(blocks int) (replicas [][]string, standbys []string, err error)
}

// fleetExecutor adapts a fleet.Session to the Executor interface.
type fleetExecutor[E comparable] struct {
	s     *fleet.Session[E]
	owned bool
}

// NewFleet provisions a fleet session for the encoding and wraps it as an
// Executor that owns (and will Close) the session.
func NewFleet[E comparable](f field.Field[E], enc *coding.Encoding[E], cfg FleetConfig) (Executor[E], error) {
	if enc == nil || enc.Code == nil {
		return nil, errors.New("engine: encoding has no code attached")
	}
	if cfg.Provision != nil {
		replicas, standbys, err := cfg.Provision(len(enc.Blocks))
		if err != nil {
			return nil, err
		}
		cfg.Session.Replicas = replicas
		cfg.Session.Standbys = standbys
	}
	s, err := fleet.Serve(f, enc, cfg.Session)
	if err != nil {
		return nil, err
	}
	return &fleetExecutor[E]{s: s, owned: true}, nil
}

// FleetBackend returns the Backend factory for the fleet executor.
func FleetBackend[E comparable](cfg FleetConfig) Backend[E] {
	return func(f field.Field[E], enc *coding.Encoding[E]) (Executor[E], error) {
		return NewFleet(f, enc, cfg)
	}
}

// WrapSession adapts an existing fleet session to the Executor interface.
// When owned is true, closing the executor closes the session.
func WrapSession[E comparable](s *fleet.Session[E], owned bool) Executor[E] {
	return &fleetExecutor[E]{s: s, owned: owned}
}

// Name implements Executor.
func (e *fleetExecutor[E]) Name() string { return "fleet" }

// Compute gathers B·T·x from the replicated fleet (racing, hedging, and
// retrying per block as configured), under the caller's context and trace.
func (e *fleetExecutor[E]) Compute(ctx context.Context, x []E) ([]E, error) {
	return e.s.GatherContext(ctx, x)
}

// ComputeBatch gathers B·T·X from the replicated fleet.
func (e *fleetExecutor[E]) ComputeBatch(ctx context.Context, x *matrix.Dense[E]) (*matrix.Dense[E], error) {
	return e.s.GatherBatchContext(ctx, x)
}

// Close shuts the session down if this executor owns it.
func (e *fleetExecutor[E]) Close() error {
	if !e.owned {
		return nil
	}
	return e.s.Close()
}
