package engine

import (
	"encoding/json"
	"net/http"
	"time"

	"github.com/scec/scec/internal/obs"
)

// DebugInfo is the query layer's live snapshot, served by DebugHandler as
// /debug/engine.
type DebugInfo struct {
	// Backend is the executor's name (local|sim|fleet).
	Backend string `json:"backend"`
	// Cols is the input-vector length the engine accepts.
	Cols int `json:"cols"`
	// DispatchVec/DispatchMat are the lifetime executor invocations by kind
	// (coalesced rounds count once).
	DispatchVec int64 `json:"dispatchVec"`
	DispatchMat int64 `json:"dispatchMat"`
	// Coalescing is present when request coalescing is enabled.
	Coalescing *CoalesceDebug `json:"coalescing,omitempty"`
	// Stages holds the interpolated p50/p95/p99 latency (seconds) of every
	// pipeline stage recorded in the engine's registry; absent until a
	// query has run.
	Stages map[string]obs.Tails `json:"stages,omitempty"`
}

// CoalesceDebug is the coalescer's configuration and occupancy.
type CoalesceDebug struct {
	// Window and MaxBatch are the configured bounds.
	Window   time.Duration `json:"windowNs"`
	MaxBatch int           `json:"maxBatch"`
	// Occupancy is how many callers are parked in the open batch right now.
	Occupancy int `json:"occupancy"`
	// Rounds and Merged are lifetime totals: batches executed and the
	// callers they served (Merged/Rounds is the realized mean batch size).
	Rounds int64 `json:"rounds"`
	Merged int64 `json:"merged"`
}

// Debug snapshots the engine's dispatch counters and coalescer occupancy.
func (q *Query[E]) Debug() DebugInfo {
	info := DebugInfo{
		Backend:     q.Backend(),
		Cols:        q.cols,
		DispatchVec: q.vec.Value(),
		DispatchMat: q.mat.Value(),
		Stages:      obs.StageTails(q.reg),
	}
	if q.co != nil {
		info.Coalescing = &CoalesceDebug{
			Window:    q.co.window,
			MaxBatch:  q.co.max,
			Occupancy: q.co.occupancy(),
			Rounds:    q.co.rounds.Load(),
			Merged:    q.co.merged.Load(),
		}
	}
	return info
}

// DebugHandler serves the Debug snapshot as JSON — mount it as
// /debug/engine via the obs handler's extra-route hook.
func (q *Query[E]) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		obs.JSONHeaders(w)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(q.Debug())
	})
}
