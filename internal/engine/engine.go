// Package engine unifies the repository's execution paths behind one
// pluggable Executor interface. An Executor knows how to evaluate the coded
// compute round — B·T·x for a vector query, B·T·X for the paper's batch
// generalization — over some substrate: the in-process kernels (Local), the
// virtual-clock simulator (Sim), or the fault-tolerant TCP fleet (Fleet).
// The Query layer on top owns everything the substrates share: input
// validation, dispatch accounting, the decode stage, and adaptive request
// coalescing that merges concurrent MulVec callers into one MulMat round.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
)

// Executor evaluates the coded compute round over one execution substrate.
// Implementations return the raw (undecoded) intermediate results in scheme
// device order; the Query layer decodes. Executors must be safe for
// concurrent use. The context bounds one round — the fleet backend cancels
// in-flight replica races when it ends — and carries the query's trace span,
// which substrate-side spans parent under.
type Executor[E comparable] interface {
	// Name identifies the backend ("local", "sim", "fleet") and becomes the
	// backend label on the engine's metrics.
	Name() string
	// Compute evaluates B·T·x: m+r intermediate values in scheme order.
	Compute(ctx context.Context, x []E) ([]E, error)
	// ComputeBatch evaluates B·T·X for an l×n input: an (m+r)×n matrix.
	ComputeBatch(ctx context.Context, x *matrix.Dense[E]) (*matrix.Dense[E], error)
	// Close releases the substrate (no-op for in-process backends).
	Close() error
}

// Backend constructs an Executor for an encoding at deployment-bind time.
// It is the factory shape the facade options (scec.WithExecutor) traffic
// in: a Deployment binds its encoding to a backend once, after encode.
type Backend[E comparable] func(f field.Field[E], enc *coding.Encoding[E]) (Executor[E], error)

// DefaultCoalesceMaxBatch caps a coalesced round's width when Options
// enables coalescing without a bound of its own.
const DefaultCoalesceMaxBatch = 16

// Options configures the Query layer.
type Options struct {
	// CoalesceWindow, when positive, enables request coalescing: the first
	// MulVec caller to arrive opens a batch and waits up to this window for
	// concurrent callers before the merged round executes. Zero disables
	// coalescing (every MulVec dispatches immediately).
	CoalesceWindow time.Duration
	// CoalesceMaxBatch caps how many callers one round merges; a full batch
	// flushes immediately without waiting out the window. Zero means
	// DefaultCoalesceMaxBatch.
	CoalesceMaxBatch int
	// Metrics receives dispatch counters and the coalesced-batch-size
	// histogram. Nil means obs.Default().
	Metrics *obs.Registry
	// Tracer, when non-nil, opens one root span per user query (or continues
	// a trace carried in the caller's context) and records the engine's
	// coalesce/round/decode spans into it. Nil disables engine tracing.
	Tracer *trace.Tracer
}

// Query is the shared serving layer over an Executor: it validates inputs,
// counts dispatches per backend, coalesces concurrent vector queries, and
// decodes results. It is safe for concurrent use.
type Query[E comparable] struct {
	f    field.Field[E]
	code coding.Code[E]
	exec Executor[E]
	cols int
	reg  *obs.Registry
	trc  *trace.Tracer

	vec *obs.Counter
	mat *obs.Counter
	co  *coalescer[E]

	closeOnce sync.Once
	closeErr  error
}

// New builds a Query over an executor bound to enc's code shape. Any
// coding.Code works — the structured Eq. (8) scheme and the t-collusion
// design decode through the same seam.
func New[E comparable](f field.Field[E], enc *coding.Encoding[E], exec Executor[E], opts Options) (*Query[E], error) {
	if enc == nil || enc.Code == nil {
		return nil, errors.New("engine: encoding has no code attached")
	}
	if len(enc.Blocks) == 0 {
		return nil, errors.New("engine: encoding has no coded blocks")
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	backend := obs.L("backend", exec.Name())
	q := &Query[E]{
		f:    f,
		code: enc.Code,
		exec: exec,
		cols: enc.Blocks[0].Cols(),
		reg:  reg,
		trc:  opts.Tracer,
		vec:  reg.Counter(obs.MetricEngineDispatchTotal, dispatchHelp, backend, obs.L("kind", "vec")),
		mat:  reg.Counter(obs.MetricEngineDispatchTotal, dispatchHelp, backend, obs.L("kind", "mat")),
	}
	if opts.CoalesceWindow > 0 {
		max := opts.CoalesceMaxBatch
		if max <= 0 {
			max = DefaultCoalesceMaxBatch
		}
		hist := reg.Histogram(obs.MetricEngineCoalescedBatchSize,
			"Number of concurrent MulVec callers merged into each coalesced execution round.",
			batchSizeBuckets, backend)
		q.co = newCoalescer(q, opts.CoalesceWindow, max, hist)
	}
	return q, nil
}

const dispatchHelp = "Executor invocations made by the engine query layer, by backend and query kind."

// batchSizeBuckets are powers of two up to well past any realistic
// coalescing bound.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// Backend returns the executor's name.
func (q *Query[E]) Backend() string { return q.exec.Name() }

// Executor returns the underlying executor (for backend-specific
// introspection such as the simulator's last report).
func (q *Query[E]) Executor() Executor[E] { return q.exec }

// Cols returns the input-vector length the engine accepts.
func (q *Query[E]) Cols() int { return q.cols }

// MulVec computes A·x through the executor and decodes. When coalescing is
// enabled, concurrent callers within the window share one batch round.
func (q *Query[E]) MulVec(x []E) ([]E, error) {
	return q.MulVecContext(context.Background(), x)
}

// MulVecContext is MulVec bounded by ctx. When the engine has a tracer, the
// query runs under an engine.query.vec span — the root of the end-to-end
// trace unless ctx already carries a span to continue.
func (q *Query[E]) MulVecContext(ctx context.Context, x []E) (y []E, err error) {
	if len(x) != q.cols {
		return nil, fmt.Errorf("engine: input vector has %d entries, want %d", len(x), q.cols)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, qsp := q.startSpan(ctx, trace.SpanQueryVec)
	defer func() {
		qsp.SetError(err)
		qsp.End()
	}()
	if q.co != nil {
		return q.co.submit(ctx, x)
	}
	return q.mulVecDirect(ctx, x)
}

// MulMat computes A·X through the executor and decodes. Batch queries are
// never coalesced — they already amortize a round.
func (q *Query[E]) MulMat(x *matrix.Dense[E]) (*matrix.Dense[E], error) {
	return q.MulMatContext(context.Background(), x)
}

// MulMatContext is MulMat bounded by ctx; see MulVecContext for tracing.
func (q *Query[E]) MulMatContext(ctx context.Context, x *matrix.Dense[E]) (y *matrix.Dense[E], err error) {
	if x.Rows() != q.cols {
		return nil, fmt.Errorf("engine: input matrix has %d rows, want %d", x.Rows(), q.cols)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, qsp := q.startSpan(ctx, trace.SpanQueryMat)
	defer func() {
		qsp.SetError(err)
		qsp.End()
	}()
	return q.mulMatDirect(ctx, x)
}

// startSpan opens a query-layer span: a child continuing the trace in ctx
// when it carries one, else a fresh root on the engine's tracer (no-op when
// the engine is untraced and ctx is bare).
func (q *Query[E]) startSpan(ctx context.Context, name string) (context.Context, *trace.Span) {
	backend := trace.A(trace.AttrBackend, q.exec.Name())
	if parent := trace.SpanFromContext(ctx); parent != nil {
		return parent.Tracer().StartSpan(ctx, name, backend)
	}
	return q.trc.StartRoot(ctx, name, backend)
}

// roundExec is one round's coherent view of the execution substrate: the
// executor it dispatches to and the code its results decode under. For a
// fixed executor both come from the Query; over a Swappable they come from
// whichever epoch the round joined, so a swap landing mid-round can never
// make decode use a code the dispatch didn't.
type roundExec[E comparable] struct {
	exec    Executor[E]
	code    coding.Code[E]
	release func()
}

// beginRound snapshots the substrate for one dispatch+decode round. The
// returned release must run when the round is fully done (a swap drains on
// it).
func (q *Query[E]) beginRound(ctx context.Context) (roundExec[E], error) {
	if s, ok := q.exec.(*Swappable[E]); ok {
		ep, release, err := s.acquire(ctx)
		if err != nil {
			return roundExec[E]{}, err
		}
		return roundExec[E]{exec: ep.exec, code: ep.code, release: release}, nil
	}
	return roundExec[E]{exec: q.exec, code: q.code, release: func() {}}, nil
}

// mulVecDirect runs one uncoalesced vector round: dispatch, then decode
// under a stage span.
func (q *Query[E]) mulVecDirect(ctx context.Context, x []E) ([]E, error) {
	r, err := q.beginRound(ctx)
	if err != nil {
		return nil, err
	}
	defer r.release()
	q.vec.Inc()
	y, err := r.exec.Compute(ctx, x)
	if err != nil {
		return nil, err
	}
	_, dsp := q.startSpan(ctx, trace.SpanDecode)
	defer dsp.End()
	defer obs.StartStage(q.reg, obs.StageDecode).End()
	return r.code.Decode(y)
}

// mulMatDirect runs one batch round: dispatch, then decode under a stage
// span.
func (q *Query[E]) mulMatDirect(ctx context.Context, x *matrix.Dense[E]) (*matrix.Dense[E], error) {
	r, err := q.beginRound(ctx)
	if err != nil {
		return nil, err
	}
	defer r.release()
	q.mat.Inc()
	y, err := r.exec.ComputeBatch(ctx, x)
	if err != nil {
		return nil, err
	}
	_, dsp := q.startSpan(ctx, trace.SpanDecode)
	defer dsp.End()
	defer obs.StartStage(q.reg, obs.StageDecode).End()
	return r.code.DecodeBatch(y)
}

// Close flushes any pending coalesced batch and closes the executor. It is
// idempotent; callers that keep issuing queries after Close get whatever
// the closed executor returns.
func (q *Query[E]) Close() error {
	q.closeOnce.Do(func() {
		if q.co != nil {
			q.co.drain()
		}
		q.closeErr = q.exec.Close()
	})
	return q.closeErr
}
