package engine

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/obs"
)

// reencode re-encodes the test case's matrix at a new r, modelling what the
// adaptive control plane does on a reshape.
func reencode(t *testing.T, tc *testCase[uint64], r int) (*coding.Encoding[uint64], coding.Code[uint64]) {
	t.Helper()
	scheme, err := coding.New(tc.a.Rows(), r)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := coding.Encode(tc.f, scheme, tc.a, rand.New(rand.NewPCG(3, 14)))
	if err != nil {
		t.Fatal(err)
	}
	return enc, enc.Code
}

func newSwappableQuery(t *testing.T, tc *testCase[uint64]) (*Swappable[uint64], *Query[uint64]) {
	t.Helper()
	sw, err := NewSwappable[uint64](NewLocal(tc.f, tc.enc, obs.New()), tc.enc.Code)
	if err != nil {
		t.Fatal(err)
	}
	q, err := New(tc.f, tc.enc, sw, Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = q.Close() })
	return sw, q
}

func TestSwappableServesAcrossDrainedSwap(t *testing.T) {
	f := field.Prime{}
	tc := newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) })
	sw, q := newSwappableQuery(t, tc)

	check := func() {
		got, err := q.MulVec(tc.x)
		if err != nil {
			t.Fatalf("MulVec: %v", err)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("row %d = %d, want %d", i, got[i], tc.want[i])
			}
		}
	}
	check()

	// Swap to a different coding parameter behind the drain gate: the new
	// epoch has a different code, and queries keep decoding correctly.
	enc2, code2 := reencode(t, tc, 3)
	err := sw.SwapDrained(context.Background(), func(context.Context) (Executor[uint64], coding.Code[uint64], error) {
		return NewLocal(tc.f, enc2, obs.New()), code2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, c := sw.Current(); c != code2 {
		t.Fatal("swap did not install the new code")
	}
	check()
}

func TestSwappableZeroFailuresUnderConcurrentSwaps(t *testing.T) {
	f := field.Prime{}
	tc := newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) })
	sw, q := newSwappableQuery(t, tc)

	var queries atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 30; n++ {
				got, err := q.MulVec(tc.x)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if got[i] != tc.want[i] {
						errs <- errors.New("wrong result mid-swap")
						return
					}
				}
				queries.Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// Alternate between r=3 and r=4 epochs while the queries fly (back-to-
	// back swaps would starve the workers, so yield between them). Every
	// round must land wholly inside one epoch — dispatch and decode on the
	// same scheme — and none may fail.
	encA, codeA := reencode(t, tc, 3)
	encB, codeB := reencode(t, tc, 4)
	for i := 0; i < 12; i++ {
		enc, code := encA, codeA
		if i%2 == 1 {
			enc, code = encB, codeB
		}
		err := sw.SwapDrained(context.Background(), func(context.Context) (Executor[uint64], coding.Code[uint64], error) {
			return NewLocal(tc.f, enc, obs.New()), code, nil
		})
		if err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	close(errs)
	for err := range errs {
		t.Errorf("query failed during swap: %v", err)
	}
	if queries.Load() != 8*30 {
		t.Fatalf("completed %d queries, want %d", queries.Load(), 8*30)
	}
}

func TestSwappableImmediateSwap(t *testing.T) {
	f := field.Prime{}
	tc := newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) })
	sw, q := newSwappableQuery(t, tc)

	// Same scheme, new substrate: the non-draining swap path.
	if err := sw.Swap(NewLocal(tc.f, tc.enc, obs.New()), tc.enc.Code); err != nil {
		t.Fatal(err)
	}
	got, err := q.MulVec(tc.x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != tc.want[i] {
			t.Fatalf("row %d wrong after immediate swap", i)
		}
	}
}

func TestSwappableBuildFailureKeepsOldEpoch(t *testing.T) {
	f := field.Prime{}
	tc := newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) })
	sw, q := newSwappableQuery(t, tc)

	boom := errors.New("provisioning failed")
	err := sw.SwapDrained(context.Background(), func(context.Context) (Executor[uint64], coding.Code[uint64], error) {
		return nil, nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the build error", err)
	}
	// The failed migration degraded to a pause: the old epoch still serves.
	got, err := q.MulVec(tc.x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != tc.want[i] {
			t.Fatalf("row %d wrong after aborted swap", i)
		}
	}
}

func TestSwappableDrainDeadline(t *testing.T) {
	f := field.Prime{}
	tc := newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) })
	sw, _ := newSwappableQuery(t, tc)

	// Hold a round open so the drain cannot finish, then ask for a swap with
	// a short deadline: it must give up cleanly, not deadlock.
	ep, release, err := sw.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_ = ep
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = sw.SwapDrained(ctx, func(context.Context) (Executor[uint64], coding.Code[uint64], error) {
		t.Error("build ran despite the drain never completing")
		return nil, nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	release()

	// The gate must be fully released: a later swap succeeds.
	enc2, code2 := reencode(t, tc, 3)
	if err := sw.SwapDrained(context.Background(), func(context.Context) (Executor[uint64], coding.Code[uint64], error) {
		return NewLocal(tc.f, enc2, obs.New()), code2, nil
	}); err != nil {
		t.Fatal(err)
	}
}
