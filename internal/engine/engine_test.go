package engine

import (
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/fleet"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/sim"
	"github.com/scec/scec/internal/transport"
)

// testCase bundles one field's encoding plus plaintext references.
type testCase[E comparable] struct {
	f    field.Field[E]
	enc  *coding.Encoding[E]
	a    *matrix.Dense[E]
	x    []E
	xm   *matrix.Dense[E]
	want []E // A·x
}

// newCase encodes a random m×l matrix over the r-row scheme and draws a
// vector and an l×3 batch input.
func newCase[E comparable](t *testing.T, f field.Field[E], randE func(*rand.Rand) E) *testCase[E] {
	t.Helper()
	const m, l, r = 9, 5, 4
	rng := rand.New(rand.NewPCG(77, 5))
	scheme, err := coding.New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.New[E](m, l)
	for i := 0; i < m; i++ {
		for j := 0; j < l; j++ {
			a.Set(i, j, randE(rng))
		}
	}
	enc, err := coding.Encode(f, scheme, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCase[E]{f: f, enc: enc, a: a, x: make([]E, l), xm: matrix.New[E](l, 3)}
	for j := range tc.x {
		tc.x[j] = randE(rng)
	}
	for i := 0; i < l; i++ {
		for j := 0; j < 3; j++ {
			tc.xm.Set(i, j, randE(rng))
		}
	}
	tc.want = matrix.MulVec(f, a, tc.x)
	return tc
}

// serveFleet spins one loopback device server per coded block and returns a
// fleet executor over them.
func serveFleet[E comparable](t *testing.T, f field.Field[E], enc *coding.Encoding[E]) Executor[E] {
	t.Helper()
	cfg := FleetConfig{
		Session: fleet.Config{
			QueryTimeout:  10 * time.Second,
			RPCTimeout:    2 * time.Second,
			HedgeAfter:    -1,
			ProbeInterval: -1,
			Metrics:       obs.New(),
		},
		Provision: func(blocks int) ([][]string, []string, error) {
			replicas := make([][]string, blocks)
			for j := range replicas {
				srv, err := transport.NewDeviceServer(f, "127.0.0.1:0")
				if err != nil {
					return nil, nil, err
				}
				t.Cleanup(func() { _ = srv.Close() })
				replicas[j] = []string{srv.Addr()}
			}
			return replicas, nil, nil
		},
	}
	exec, err := NewFleet(f, enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

// backends returns a named executor of every kind over the same encoding.
func backends[E comparable](t *testing.T, tc *testCase[E]) map[string]Executor[E] {
	t.Helper()
	simExec, err := NewSim(tc.f, tc.enc, SimConfig{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Executor[E]{
		"local": NewLocal(tc.f, tc.enc, obs.New()),
		"sim":   simExec,
		"fleet": serveFleet(t, tc.f, tc.enc),
	}
}

// runDifferential asserts MulVec and MulMat agree exactly with the
// plaintext reference over every backend.
func runDifferential[E comparable](t *testing.T, tc *testCase[E]) {
	t.Helper()
	wantMat := matrix.Mul(tc.f, tc.a, tc.xm)
	for name, exec := range backends(t, tc) {
		t.Run(name, func(t *testing.T) {
			q, err := New(tc.f, tc.enc, exec, Options{Metrics: obs.New()})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = q.Close() })
			if got := q.Backend(); got != name {
				t.Fatalf("backend %q, want %q", got, name)
			}
			got, err := q.MulVec(tc.x)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if !tc.f.Equal(got[i], tc.want[i]) {
					t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], tc.want[i])
				}
			}
			gotM, err := q.MulMat(tc.xm)
			if err != nil {
				t.Fatal(err)
			}
			if gotM.Rows() != wantMat.Rows() || gotM.Cols() != wantMat.Cols() {
				t.Fatalf("MulMat shape %dx%d, want %dx%d", gotM.Rows(), gotM.Cols(), wantMat.Rows(), wantMat.Cols())
			}
			for i := 0; i < gotM.Rows(); i++ {
				for j := 0; j < gotM.Cols(); j++ {
					if !tc.f.Equal(gotM.At(i, j), wantMat.At(i, j)) {
						t.Fatalf("MulMat[%d,%d] = %v, want %v", i, j, gotM.At(i, j), wantMat.At(i, j))
					}
				}
			}
		})
	}
}

// TestDifferentialAcrossBackends: the same encoding answers bit-identically
// over Local, Sim, and Fleet executors, for all three fields, both query
// shapes. (Prime and GF256 are exact; Real decodes within the field's
// tolerance.)
func TestDifferentialAcrossBackends(t *testing.T) {
	t.Run("prime", func(t *testing.T) {
		f := field.Prime{}
		runDifferential(t, newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) }))
	})
	t.Run("gf256", func(t *testing.T) {
		runDifferential(t, newCase[byte](t, field.GF256{}, func(rng *rand.Rand) byte { return byte(rng.UintN(256)) }))
	})
	t.Run("real", func(t *testing.T) {
		runDifferential(t, newCase[float64](t, field.Real{Tol: 1e-6}, func(rng *rand.Rand) float64 {
			return float64(rng.IntN(2000)-1000) / 16
		}))
	})
}

// TestBackendsAgreeBitIdentical: over the prime field the three backends'
// outputs are equal as raw uint64s, not merely field-equal.
func TestBackendsAgreeBitIdentical(t *testing.T) {
	f := field.Prime{}
	tc := newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) })
	var ref []uint64
	for _, name := range []string{"local", "sim", "fleet"} {
		execs := backends(t, tc)
		q, err := New[uint64](f, tc.enc, execs[name], Options{Metrics: obs.New()})
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.MulVec(tc.x)
		if err != nil {
			t.Fatal(err)
		}
		_ = q.Close()
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("backend %s diverges at %d: %d vs %d", name, i, got[i], ref[i])
			}
		}
	}
}

// TestQueryValidation covers the query layer's input checks and
// construction errors.
func TestQueryValidation(t *testing.T) {
	f := field.Prime{}
	tc := newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) })
	if _, err := New[uint64](f, nil, NewLocal(f, tc.enc, nil), Options{}); err == nil {
		t.Fatal("New accepted a nil encoding")
	}
	stripped := &coding.Encoding[uint64]{Blocks: tc.enc.Blocks}
	if _, err := New[uint64](f, stripped, NewLocal(f, tc.enc, nil), Options{}); err == nil {
		t.Fatal("New accepted an encoding without a scheme")
	}
	q, err := New[uint64](f, tc.enc, NewLocal(f, tc.enc, obs.New()), Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = q.Close() })
	if _, err := q.MulVec(make([]uint64, len(tc.x)+1)); err == nil {
		t.Fatal("MulVec accepted a wrong-length vector")
	}
	if _, err := q.MulMat(matrix.New[uint64](len(tc.x)+2, 2)); err == nil {
		t.Fatal("MulMat accepted a wrong-height matrix")
	}
}

// TestSimExecutorFailurePropagates: a sim profile with FailProb=1 surfaces
// sim.ErrDeviceFailed through the engine, and the failed run's report is
// still retained.
func TestSimExecutorFailurePropagates(t *testing.T) {
	f := field.Prime{}
	tc := newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) })
	exec, err := NewSim(f, tc.enc, SimConfig{
		Profile: func(j int) sim.DeviceProfile {
			p := sim.DefaultProfile()
			if j == 0 {
				p.FailProb = 1
			}
			return p
		},
		Metrics: obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := New[uint64](f, tc.enc, exec, Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = q.Close() })
	if _, err := q.MulVec(tc.x); !errors.Is(err, sim.ErrDeviceFailed) {
		t.Fatalf("err = %v, want sim.ErrDeviceFailed", err)
	}
	rep, ok := exec.LastReport()
	if !ok {
		t.Fatal("failed run retained no report")
	}
	if !rep.Devices[0].Failed {
		t.Fatal("retained report does not mark device 0 failed")
	}
}

// TestSimExecutorReportAccounting: the retained report carries the virtual
// decode cost and batch queries scale the traffic totals by the width.
func TestSimExecutorReportAccounting(t *testing.T) {
	f := field.Prime{}
	tc := newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) })
	exec, err := NewSim(f, tc.enc, SimConfig{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	q, err := New[uint64](f, tc.enc, exec, Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = q.Close() })

	if _, ok := exec.LastReport(); ok {
		t.Fatal("report retained before any run")
	}
	if _, err := q.MulVec(tc.x); err != nil {
		t.Fatal(err)
	}
	rep, ok := exec.LastReport()
	if !ok {
		t.Fatal("no report after MulVec")
	}
	m := tc.enc.Scheme.M()
	r := tc.enc.Scheme.R()
	if rep.DecodeOps != int64(m) {
		t.Fatalf("vector DecodeOps = %d, want %d", rep.DecodeOps, m)
	}
	if rep.TotalValuesSent != m+r {
		t.Fatalf("vector TotalValuesSent = %d, want %d", rep.TotalValuesSent, m+r)
	}
	if _, err := q.MulMat(tc.xm); err != nil {
		t.Fatal(err)
	}
	rep, _ = exec.LastReport()
	n := tc.xm.Cols()
	if rep.DecodeOps != int64(m*n) {
		t.Fatalf("batch DecodeOps = %d, want %d", rep.DecodeOps, m*n)
	}
	if rep.TotalValuesSent != (m+r)*n {
		t.Fatalf("batch TotalValuesSent = %d, want %d", rep.TotalValuesSent, (m+r)*n)
	}
}

// TestDispatchCounters: the per-backend dispatch counter distinguishes
// vector from batch rounds.
func TestDispatchCounters(t *testing.T) {
	f := field.Prime{}
	tc := newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) })
	reg := obs.New()
	q, err := New[uint64](f, tc.enc, NewLocal(f, tc.enc, reg), Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = q.Close() })
	for i := 0; i < 3; i++ {
		if _, err := q.MulVec(tc.x); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.MulMat(tc.xm); err != nil {
		t.Fatal(err)
	}
	vec := reg.Counter(obs.MetricEngineDispatchTotal, dispatchHelp,
		obs.L("backend", "local"), obs.L("kind", "vec"))
	mat := reg.Counter(obs.MetricEngineDispatchTotal, dispatchHelp,
		obs.L("backend", "local"), obs.L("kind", "mat"))
	if vec.Value() != 3 {
		t.Fatalf("vec dispatches = %d, want 3", vec.Value())
	}
	if mat.Value() != 1 {
		t.Fatalf("mat dispatches = %d, want 1", mat.Value())
	}
}
