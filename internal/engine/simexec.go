package engine

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
	"github.com/scec/scec/internal/sim"
)

// SimConfig configures the simulator-backed executor.
type SimConfig struct {
	// Profile returns device j's performance profile. Nil applies
	// sim.DefaultProfile() to every device.
	Profile func(j int) sim.DeviceProfile
	// UserComputeRate is the user's field-ops/second rate for virtual decode
	// accounting in the retained report. Zero means 1e9.
	UserComputeRate float64
	// Seed drives the simulator's failure sampling.
	Seed uint64
	// Metrics receives the simulator's virtual-clock telemetry. Nil means
	// obs.Default().
	Metrics *obs.Registry
}

// SimExecutor evaluates the compute round on internal/sim's virtual clock:
// numerically it produces exactly what the local kernels produce (the same
// coding code paths run), while the retained report prices the round
// against the configured device profiles. It retains the most recent run's
// report — including failed runs — for introspection.
type SimExecutor[E comparable] struct {
	f   field.Field[E]
	enc *coding.Encoding[E]
	cfg sim.Config
	ucr float64

	mu   sync.Mutex
	last sim.Report
	ran  bool
}

// NewSim builds a simulator executor over an encoding.
func NewSim[E comparable](f field.Field[E], enc *coding.Encoding[E], cfg SimConfig) (*SimExecutor[E], error) {
	if enc == nil || enc.Code == nil {
		return nil, errors.New("engine: encoding has no code attached")
	}
	profile := cfg.Profile
	if profile == nil {
		profile = func(int) sim.DeviceProfile { return sim.DefaultProfile() }
	}
	ucr := cfg.UserComputeRate
	if ucr == 0 {
		ucr = 1e9
	}
	profiles := make([]sim.DeviceProfile, len(enc.Blocks))
	for j := range profiles {
		profiles[j] = profile(j)
	}
	return &SimExecutor[E]{
		f:   f,
		enc: enc,
		cfg: sim.Config{
			Profiles:        profiles,
			UserComputeRate: ucr,
			Seed:            cfg.Seed,
			Metrics:         cfg.Metrics,
		},
		ucr: ucr,
	}, nil
}

// SimBackend returns the Backend factory for the simulator executor.
func SimBackend[E comparable](cfg SimConfig) Backend[E] {
	return func(f field.Field[E], enc *coding.Encoding[E]) (Executor[E], error) {
		return NewSim(f, enc, cfg)
	}
}

// Name implements Executor.
func (e *SimExecutor[E]) Name() string { return "sim" }

// Compute runs one simulated vector round and retains its report.
func (e *SimExecutor[E]) Compute(ctx context.Context, x []E) ([]E, error) {
	y, rep, err := sim.GatherContext(ctx, e.f, e.enc, x, e.cfg)
	e.retain(rep, err, 1)
	e.emitTrace(ctx, rep, err)
	return y, err
}

// ComputeBatch runs one simulated width-n batch round and retains its
// report.
func (e *SimExecutor[E]) ComputeBatch(ctx context.Context, x *matrix.Dense[E]) (*matrix.Dense[E], error) {
	y, rep, err := sim.GatherBatchContext(ctx, e.f, e.enc, x, e.cfg)
	e.retain(rep, err, x.Cols())
	e.emitTrace(ctx, rep, err)
	return y, err
}

// retain stores the run's report. On success it folds the virtual decode
// cost in (the code's per-column decode work priced at the user's compute
// rate), matching sim.Run's accounting; the wall-clock decode itself
// happens in the Query layer.
func (e *SimExecutor[E]) retain(rep sim.Report, err error, n int) {
	if err == nil {
		rep.DecodeOps = sim.DecodeOps(e.enc) * int64(n)
		rep.CompletionTime += time.Duration(float64(rep.DecodeOps) / e.ucr * float64(time.Second))
	}
	e.mu.Lock()
	e.last, e.ran = rep, true
	e.mu.Unlock()
}

// emitTrace fabricates the round's virtual-clock trace when the caller is
// tracing: a sim.run root with one sim.device span per device timeline,
// stamped at offsets from the Unix epoch so the exported trace reads as the
// simulator's t=0-based schedule. Virtual durations cannot nest inside the
// wall-clock query span without lying about time, so the fabricated spans
// form their own trace, linked from the caller's span by a "sim-trace"
// event carrying the trace ID.
func (e *SimExecutor[E]) emitTrace(ctx context.Context, rep sim.Report, err error) {
	parent := trace.SpanFromContext(ctx)
	if parent == nil {
		return
	}
	t := parent.Tracer()
	base := time.Unix(0, 0).UTC()
	traceID := trace.NewTraceID()
	runID := trace.NewSpanID()
	parent.AddEvent("sim-trace", trace.A("traceId", traceID))
	for _, d := range rep.Devices {
		sd := trace.SpanData{
			TraceID:  traceID,
			SpanID:   trace.NewSpanID(),
			ParentID: runID,
			Name:     trace.SpanSimDevice,
			Service:  t.Service(),
			Start:    base.Add(d.XArrives),
			End:      base.Add(d.ResultArrives),
			Attrs:    []trace.Attr{trace.A(trace.AttrDevice, strconv.Itoa(d.Device))},
			Events:   []trace.Event{{Name: "compute-done", Time: base.Add(d.ComputeDone)}},
		}
		if d.Failed {
			sd.Error = "device failed"
		}
		t.Record(sd)
	}
	run := trace.SpanData{
		TraceID: traceID,
		SpanID:  runID,
		Name:    trace.SpanSimRun,
		Service: t.Service(),
		Start:   base,
		End:     base.Add(rep.CompletionTime),
	}
	if err != nil {
		run.Error = err.Error()
	}
	t.Record(run)
}

// LastReport returns the most recent round's virtual-clock report (also
// retained for failed rounds) and whether any round has run.
func (e *SimExecutor[E]) LastReport() (sim.Report, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last, e.ran
}

// Close implements Executor; the simulator holds no resources.
func (e *SimExecutor[E]) Close() error { return nil }
