package engine

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/obs"
)

// coalesceHist reads the engine's coalesced-batch-size histogram for a
// backend out of the registry (get-or-create returns the shared handle).
func coalesceHist(reg *obs.Registry, backend string) *obs.Histogram {
	return reg.Histogram(obs.MetricEngineCoalescedBatchSize,
		"Number of concurrent MulVec callers merged into each coalesced execution round.",
		batchSizeBuckets, obs.L("backend", backend))
}

// TestCoalescingMergesAndMatchesUncoalesced: N concurrent MulVec callers
// through a coalescing query each get exactly the answer an uncoalesced
// query returns for their vector, and the batch-size histogram proves at
// least one round merged multiple callers.
func TestCoalescingMergesAndMatchesUncoalesced(t *testing.T) {
	f := field.Prime{}
	tc := newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) })
	reg := obs.New()
	q, err := New[uint64](f, tc.enc, NewLocal(f, tc.enc, reg), Options{
		CoalesceWindow:   200 * time.Millisecond,
		CoalesceMaxBatch: 8,
		Metrics:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = q.Close() })
	plain, err := New[uint64](f, tc.enc, NewLocal(f, tc.enc, obs.New()), Options{Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = plain.Close() })

	const callers = 16
	inputs := make([][]uint64, callers)
	want := make([][]uint64, callers)
	rng := rand.New(rand.NewPCG(3, 9))
	for i := range inputs {
		inputs[i] = make([]uint64, len(tc.x))
		for j := range inputs[i] {
			inputs[i][j] = f.Rand(rng)
		}
		w, err := plain.MulVec(inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}

	got := make([][]uint64, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i], errs[i] = q.MulVec(inputs[i])
		}()
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for p := range got[i] {
			if got[i][p] != want[i][p] {
				t.Fatalf("caller %d entry %d: coalesced %d, uncoalesced %d", i, p, got[i][p], want[i][p])
			}
		}
	}

	h := coalesceHist(reg, "local")
	if h.Sum() != callers {
		t.Fatalf("histogram sum %g, want %d callers served", h.Sum(), callers)
	}
	if h.Count() >= callers {
		t.Fatalf("%d rounds for %d callers: nothing coalesced", h.Count(), callers)
	}
}

// TestCoalescingFullBatchFlushesEarly: with an effectively infinite window,
// a full batch executes immediately — callers do not wait the window out.
func TestCoalescingFullBatchFlushesEarly(t *testing.T) {
	f := field.Prime{}
	tc := newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) })
	reg := obs.New()
	const max = 4
	q, err := New[uint64](f, tc.enc, NewLocal(f, tc.enc, reg), Options{
		CoalesceWindow:   time.Hour,
		CoalesceMaxBatch: max,
		Metrics:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = q.Close() })

	done := make(chan error, max)
	for i := 0; i < max; i++ {
		x := make([]uint64, len(tc.x))
		copy(x, tc.x)
		go func() {
			got, err := q.MulVec(x)
			if err == nil {
				for p := range got {
					if got[p] != tc.want[p] {
						err = errEntryMismatch
						break
					}
				}
			}
			done <- err
		}()
	}
	timeout := time.After(30 * time.Second)
	for i := 0; i < max; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-timeout:
			t.Fatal("full batch did not flush before the window")
		}
	}
	h := coalesceHist(reg, "local")
	if h.Count() != 1 || h.Sum() != max {
		t.Fatalf("rounds=%d callers=%g, want one round of %d", h.Count(), h.Sum(), max)
	}
}

// TestCoalescingDrainOnClose: Close flushes a partially filled batch so no
// caller is stranded waiting out a long window.
func TestCoalescingDrainOnClose(t *testing.T) {
	f := field.Prime{}
	tc := newCase[uint64](t, f, func(rng *rand.Rand) uint64 { return f.Rand(rng) })
	reg := obs.New()
	q, err := New[uint64](f, tc.enc, NewLocal(f, tc.enc, reg), Options{
		CoalesceWindow: time.Hour,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		got, err := q.MulVec(tc.x)
		if err == nil {
			for p := range got {
				if got[p] != tc.want[p] {
					err = errEntryMismatch
					break
				}
			}
		}
		done <- err
	}()
	// Wait until the caller has parked in the batch before closing.
	deadline := time.Now().Add(10 * time.Second)
	for {
		q.co.mu.Lock()
		parked := q.co.cur != nil && len(q.co.cur.waiters) == 1
		q.co.mu.Unlock()
		if parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("caller never parked in the batch")
		}
		time.Sleep(time.Millisecond)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close left the parked caller waiting")
	}
}

var errEntryMismatch = errMismatch{}

type errMismatch struct{}

func (errMismatch) Error() string { return "coalesced result diverges from reference" }
