package cost

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestUnitFormula(t *testing.T) {
	c := Components{Storage: 2, Add: 3, Mul: 5, Comm: 7}
	l := 10
	// (l+1)c^s + l·c^m + (l−1)·c^a + c^d = 11*2 + 10*5 + 9*3 + 7 = 106
	if got := c.Unit(l); got != 106 {
		t.Fatalf("Unit = %g, want 106", got)
	}
}

func TestUnitL1(t *testing.T) {
	c := Components{Storage: 1, Add: 1, Mul: 1, Comm: 1}
	// l=1: 2*1 + 1*1 + 0*1 + 1 = 4
	if got := c.Unit(1); got != 4 {
		t.Fatalf("Unit(1) = %g, want 4", got)
	}
}

func TestUnitPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for l < 1")
		}
	}()
	Components{}.Unit(0)
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		c    Components
		ok   bool
	}{
		{"valid", Components{Storage: 1, Add: 1, Mul: 2, Comm: 1}, true},
		{"add equals mul", Components{Add: 3, Mul: 3}, true},
		{"add exceeds mul", Components{Add: 3, Mul: 2}, false},
		{"negative storage", Components{Storage: -1, Mul: 1}, false},
		{"negative comm", Components{Comm: -0.5, Mul: 1}, false},
		{"all zero", Components{}, true},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestUnitsAndErrors(t *testing.T) {
	comps := []Components{
		{Storage: 1, Add: 1, Mul: 1, Comm: 1},
		{Storage: 0, Add: 0, Mul: 2, Comm: 0},
	}
	units, err := Units(2, comps)
	if err != nil {
		t.Fatal(err)
	}
	// device 0: 3*1 + 2*1 + 1*1 + 1 = 7; device 1: 0 + 4 + 0 + 0 = 4
	if units[0] != 7 || units[1] != 4 {
		t.Fatalf("Units = %v, want [7 4]", units)
	}

	if _, err := Units(2, nil); !errors.Is(err, ErrNoDevices) {
		t.Fatalf("Units(nil) error = %v, want ErrNoDevices", err)
	}
	if _, err := Units(2, []Components{{Add: 2, Mul: 1}}); err == nil {
		t.Fatal("Units should propagate component validation errors")
	}
}

func TestTotalMatchesEquationOne(t *testing.T) {
	comps := []Components{
		{Storage: 1, Add: 1, Mul: 2, Comm: 1},
		{Storage: 2, Add: 0, Mul: 1, Comm: 3},
		{Storage: 1, Add: 1, Mul: 1, Comm: 1},
	}
	l := 4
	rows := []int{3, 2, 0}
	got, err := Total(l, comps, rows)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for j, c := range comps {
		want += c.Unit(l)*float64(rows[j]) + float64(l)*c.Storage
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Total = %g, want %g", got, want)
	}
	// The idle device still pays its fixed l·c^s term.
	if got <= comps[0].Unit(l)*3+comps[1].Unit(l)*2 {
		t.Fatal("Total must include fixed storage terms")
	}
}

func TestTotalErrors(t *testing.T) {
	comps := []Components{{Mul: 1}, {Mul: 1}}
	if _, err := Total(1, comps, []int{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Total(1, comps, []int{1, -2}); err == nil {
		t.Fatal("negative rows should error")
	}
}

func TestVariableTotal(t *testing.T) {
	got, err := VariableTotal([]float64{2, 3}, []int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 23 {
		t.Fatalf("VariableTotal = %g, want 23", got)
	}
	if _, err := VariableTotal([]float64{1}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := VariableTotal([]float64{1}, []int{-1}); err == nil {
		t.Fatal("negative rows should error")
	}
}

func TestAmortizedUnitSingleQueryEqualsUnit(t *testing.T) {
	c := Components{Storage: 2, Add: 3, Mul: 5, Comm: 7}
	for _, l := range []int{1, 4, 100} {
		if got, want := c.AmortizedUnit(l, 1), c.Unit(l); got != want {
			t.Fatalf("l=%d: AmortizedUnit(l,1) = %g, want Unit(l) = %g", l, got, want)
		}
	}
}

func TestAmortizedUnitScalesWithQueries(t *testing.T) {
	c := Components{Storage: 2, Add: 1, Mul: 3, Comm: 4}
	l := 10
	perQuery := float64(l)*c.Mul + float64(l-1)*c.Add + c.Comm
	storage := float64(l+1) * c.Storage
	for _, q := range []int{1, 5, 100} {
		want := storage + float64(q)*perQuery
		if got := c.AmortizedUnit(l, q); got != want {
			t.Fatalf("q=%d: AmortizedUnit = %g, want %g", q, got, want)
		}
	}
}

// TestAmortizedRankingShift shows why amortization changes allocation: a
// device with cheap storage but expensive compute wins one-shot sessions
// and loses long ones.
func TestAmortizedRankingShift(t *testing.T) {
	cheapStorage := Components{Storage: 0.1, Add: 1, Mul: 5, Comm: 1}
	cheapCompute := Components{Storage: 5, Add: 0.1, Mul: 0.5, Comm: 1}
	l := 8
	if cheapStorage.AmortizedUnit(l, 1) >= cheapCompute.AmortizedUnit(l, 1) {
		t.Fatal("cheap-storage device should win the one-shot session")
	}
	if cheapStorage.AmortizedUnit(l, 1000) <= cheapCompute.AmortizedUnit(l, 1000) {
		t.Fatal("cheap-compute device should win the long session")
	}
}

func TestAmortizedUnitsErrors(t *testing.T) {
	if _, err := AmortizedUnits(4, 2, nil); err == nil {
		t.Error("no devices should error")
	}
	if _, err := AmortizedUnits(4, 2, []Components{{Add: 2, Mul: 1}}); err == nil {
		t.Error("invalid components should error")
	}
	units, err := AmortizedUnits(4, 3, []Components{{Mul: 1}})
	if err != nil || len(units) != 1 {
		t.Fatalf("units = %v, err = %v", units, err)
	}
	for _, fn := range []func(){
		func() { Components{}.AmortizedUnit(0, 1) },
		func() { Components{}.AmortizedUnit(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestTotalDecomposition checks the paper's reduction: Eq. (1) equals the
// variable objective plus the fixed storage sum, for arbitrary component
// prices.
func TestTotalDecomposition(t *testing.T) {
	check := func(s1, a1, m1, d1, s2, a2, m2, d2 uint8, r1, r2 uint8) bool {
		comps := []Components{
			{Storage: float64(s1), Add: float64(a1), Mul: float64(a1) + float64(m1), Comm: float64(d1)},
			{Storage: float64(s2), Add: float64(a2), Mul: float64(a2) + float64(m2), Comm: float64(d2)},
		}
		l := 3
		rows := []int{int(r1 % 16), int(r2 % 16)}
		total, err := Total(l, comps, rows)
		if err != nil {
			return false
		}
		units, err := Units(l, comps)
		if err != nil {
			return false
		}
		variable, err := VariableTotal(units, rows)
		if err != nil {
			return false
		}
		fixed := comps[0].FixedPerDevice(l) + comps[1].FixedPerDevice(l)
		return math.Abs(total-(variable+fixed)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
