// Package cost implements the resource cost model of the MCSCEC paper
// (§II-A, Eq. (1)).
//
// Each edge device s_j advertises four unit prices: storage per element
// (c^s), one addition (c^a), one multiplication (c^m), and sending one value
// back to the user (c^d). Handling a single coded row of length l then costs
//
//	c_j = (l+1)·c^s + l·c^m + (l−1)·c^a + c^d
//
// and the total system cost of an allocation {V(B_j)} is Eq. (1):
//
//	Σ_j [ c_j·V(B_j) + l·c^s_j ]
//
// The l·c^s_j term (storing the input vector x) does not depend on the
// allocation, so the optimization in package alloc minimizes Σ_j V(B_j)·c_j.
package cost

import (
	"errors"
	"fmt"
)

// Components holds the four unit prices of one edge device.
type Components struct {
	// Storage is c^s, the cost of storing one element.
	Storage float64
	// Add is c^a, the cost of one field addition.
	Add float64
	// Mul is c^m, the cost of one field multiplication. The paper assumes
	// c^a ≤ c^m.
	Mul float64
	// Comm is c^d, the cost of transmitting one value to the user device.
	Comm float64
}

// Validate checks that the components describe a device the model admits:
// non-negative prices with c^a ≤ c^m.
func (c Components) Validate() error {
	if c.Storage < 0 || c.Add < 0 || c.Mul < 0 || c.Comm < 0 {
		return fmt.Errorf("cost: negative component in %+v", c)
	}
	if c.Add > c.Mul {
		return fmt.Errorf("cost: addition price %g exceeds multiplication price %g", c.Add, c.Mul)
	}
	return nil
}

// Unit returns the per-row unit cost c_j for rows of length l.
func (c Components) Unit(l int) float64 {
	if l < 1 {
		panic(fmt.Sprintf("cost: row length %d < 1", l))
	}
	return float64(l+1)*c.Storage + float64(l)*c.Mul + float64(l-1)*c.Add + c.Comm
}

// FixedPerDevice returns the allocation-independent part of Eq. (1) for one
// device: l·c^s, the cost of storing the input vector x.
func (c Components) FixedPerDevice(l int) float64 {
	return float64(l) * c.Storage
}

// AmortizedUnit returns the per-row cost of serving `queries` input vectors
// from one provisioned deployment: the coded row is stored once, while
// computation, result storage, and communication recur per query:
//
//	(l+1)·c^s + q·(l·c^m + (l−1)·c^a + c^d)
//
// AmortizedUnit(l, 1) equals Unit(l). The paper's one-shot objective
// generalizes directly: running task allocation on amortized unit costs
// yields the plan that is optimal for a q-query session — as q grows,
// storage prices stop mattering and compute/communication prices dominate
// the device ranking.
func (c Components) AmortizedUnit(l, queries int) float64 {
	if l < 1 {
		panic(fmt.Sprintf("cost: row length %d < 1", l))
	}
	if queries < 1 {
		panic(fmt.Sprintf("cost: query count %d < 1", queries))
	}
	perQuery := float64(l)*c.Mul + float64(l-1)*c.Add + c.Comm
	return float64(l+1)*c.Storage + float64(queries)*perQuery
}

// AmortizedUnits maps a fleet to amortized unit costs for a q-query session.
func AmortizedUnits(l, queries int, comps []Components) ([]float64, error) {
	if len(comps) == 0 {
		return nil, ErrNoDevices
	}
	units := make([]float64, len(comps))
	for j, c := range comps {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("device %d: %w", j, err)
		}
		units[j] = c.AmortizedUnit(l, queries)
	}
	return units, nil
}

// ErrNoDevices is returned when a cost computation receives no devices.
var ErrNoDevices = errors.New("cost: no devices")

// Units maps a fleet of component price lists to unit costs c_j for rows of
// length l. It returns an error if any device fails Validate.
func Units(l int, comps []Components) ([]float64, error) {
	if len(comps) == 0 {
		return nil, ErrNoDevices
	}
	units := make([]float64, len(comps))
	for j, c := range comps {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("device %d: %w", j, err)
		}
		units[j] = c.Unit(l)
	}
	return units, nil
}

// Total evaluates the full Eq. (1) cost: per-row unit costs times the number
// of coded rows on each device, plus the fixed l·c^s term for every device.
// rows[j] is V(B_j); devices with rows[j] == 0 still pay the fixed term,
// matching the paper's summation over all k devices.
func Total(l int, comps []Components, rows []int) (float64, error) {
	if len(comps) != len(rows) {
		return 0, fmt.Errorf("cost: %d devices but %d row counts", len(comps), len(rows))
	}
	units, err := Units(l, comps)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for j, c := range comps {
		if rows[j] < 0 {
			return 0, fmt.Errorf("cost: negative row count %d on device %d", rows[j], j)
		}
		total += units[j]*float64(rows[j]) + c.FixedPerDevice(l)
	}
	return total, nil
}

// VariableTotal evaluates only the allocation-dependent part Σ_j V(B_j)·c_j
// given precomputed unit costs. This is the objective the task-allocation
// algorithms minimize.
func VariableTotal(units []float64, rows []int) (float64, error) {
	if len(units) != len(rows) {
		return 0, fmt.Errorf("cost: %d unit costs but %d row counts", len(units), len(rows))
	}
	total := 0.0
	for j, u := range units {
		if rows[j] < 0 {
			return 0, fmt.Errorf("cost: negative row count %d on device %d", rows[j], j)
		}
		total += u * float64(rows[j])
	}
	return total, nil
}
