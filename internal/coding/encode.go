package coding

import (
	"fmt"
	"math/rand/v2"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// Encoding is the cloud-side output of the pre-processing phase: the per-
// device coded blocks B_j·T ready for distribution, plus the random rows R
// (retained only by the cloud; they never leave it).
type Encoding[E comparable] struct {
	// Code is the coding design the blocks follow — the scheme-agnostic
	// handle every execution layer decodes through. Always set by the
	// package encoders.
	Code Code[E]
	// Scheme is the structured Eq. (8) design when the encoding was produced
	// by one; nil for other code kinds (e.g. CollusionScheme). It exists for
	// the structure-exploiting fast paths; generic callers use Code.
	Scheme *Scheme
	// Blocks[j] holds device j's coded rows B_j·T, a V(B_j)×l matrix.
	Blocks []*matrix.Dense[E]
	// Random holds the r random rows. Exposed for tests and for the general
	// Gaussian decoding path; a deployment keeps it inside the cloud.
	Random *matrix.Dense[E]
}

// Encode runs the Coded Data Distribution step of the MCSCEC framework
// (§II-D): it draws r random rows over f and produces every device's coded
// block. The structure of Eq. (8) lets it avoid forming B or T:
//
//   - device 0 (the paper's s_1) receives the random rows themselves, and
//   - global data row p becomes the coded row A_p + R_{p mod r}.
//
// so encoding costs O((m+r)·l) field additions instead of a dense
// (m+r)×(m+r) by (m+r)×l product.
func Encode[E comparable](f field.Field[E], s *Scheme, a *matrix.Dense[E], rng *rand.Rand) (*Encoding[E], error) {
	if a.Rows() != s.m {
		return nil, fmt.Errorf("coding: data matrix has %d rows, scheme expects m = %d", a.Rows(), s.m)
	}
	if a.Cols() < 1 {
		return nil, fmt.Errorf("coding: data matrix has %d columns, need at least 1", a.Cols())
	}
	random := matrix.Random(f, rng, s.r, a.Cols())
	enc, err := EncodeWithRandom(f, s, a, random)
	if err != nil {
		return nil, err
	}
	return enc, nil
}

// EncodeWithRandom is Encode with caller-supplied random rows; the test
// suite uses it for reproducibility, and a broken caller passing low-entropy
// rows is exactly the failure mode the attack harness demonstrates.
func EncodeWithRandom[E comparable](f field.Field[E], s *Scheme, a, random *matrix.Dense[E]) (*Encoding[E], error) {
	if a.Rows() != s.m {
		return nil, fmt.Errorf("coding: data matrix has %d rows, scheme expects m = %d", a.Rows(), s.m)
	}
	if random.Rows() != s.r || random.Cols() != a.Cols() {
		return nil, fmt.Errorf("coding: random block is %dx%d, want %dx%d",
			random.Rows(), random.Cols(), s.r, a.Cols())
	}
	l := a.Cols()
	// All blocks share one backing slab: one allocation per encoding instead
	// of one per device, and consecutive devices stay adjacent in memory.
	blocks := make([]*matrix.Dense[E], s.i)
	slab := make([]E, (s.m+s.r)*l)
	off := 0
	for j := 0; j < s.i; j++ {
		from, to := s.RowRange(j)
		n := (to - from) * l
		blocks[j] = matrix.FromSlice(to-from, l, slab[off:off+n:off+n])
		off += n
	}
	// Devices are independent: shard the fleet across the kernel worker
	// pool (total work is one vector add per coded row). Within a device,
	// consecutive global rows map to consecutive data rows and — until
	// p mod r wraps — consecutive random rows, so each run of rows is one
	// contiguous vector-add (or copy, for the raw random rows) instead of
	// a call per row.
	matrix.ParallelFor(s.i, (s.m+s.r)*l, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			from, to := s.RowRange(j)
			block := blocks[j]
			g := from
			// Global rows below r are the random rows themselves.
			if cut := min(to, s.r); g < cut {
				copy(block.RowsView(0, cut-from), random.RowsView(g, cut))
				g = cut
			}
			// Row g ≥ r carries A_p + R_{p mod r} with p = g - r; chunks
			// break where p mod r wraps back to 0.
			for g < to {
				p := g - s.r
				q := p % s.r
				n := min(to-g, s.r-q)
				matrix.VecAddInto(f,
					block.RowsView(g-from, g-from+n),
					a.RowsView(p, p+n),
					random.RowsView(q, q+n))
				g += n
			}
		}
	})
	return &Encoding[E]{Code: BindScheme(f, s), Scheme: s, Blocks: blocks, Random: random}, nil
}

// ComputeDevice performs device j's work in the Coded Edge Computing step:
// multiply its coded block by the input vector x, yielding the V(B_j)
// intermediate values it returns to the user.
func (e *Encoding[E]) ComputeDevice(f field.Field[E], j int, x []E) []E {
	return matrix.MulVec(f, e.Blocks[j], x)
}

// ComputeAll runs every device and concatenates the intermediate results in
// device order, i.e. it returns B·T·x. The in-process simulator and tests
// use it; the transport package does the same over TCP. Devices run in
// parallel across the shared kernel pool, each multiplying directly into
// its slot of the result.
func (e *Encoding[E]) ComputeAll(f field.Field[E], x []E) []E {
	offsets := make([]int, len(e.Blocks)+1)
	for j, b := range e.Blocks {
		offsets[j+1] = offsets[j] + b.Rows()
	}
	out := make([]E, offsets[len(e.Blocks)])
	matrix.ParallelFor(len(e.Blocks), offsets[len(e.Blocks)]*len(x), func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			matrix.MulVecInto(f, e.Blocks[j], x, out[offsets[j]:offsets[j+1]])
		}
	})
	return out
}
