package coding

import (
	"math/rand/v2"
	"testing"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// Both engine-selectable designs must satisfy the scheme-agnostic contract.
var (
	_ Code[uint64]  = (*StructuredCode[uint64])(nil)
	_ Code[byte]    = (*CollusionScheme[byte])(nil)
	_ Code[float64] = (*StructuredCode[float64])(nil)
)

// TestStructuredCodeBitIdenticalToPackageFunctions pins the tentpole's
// no-regression guarantee: the Code wrapper must produce byte-identical
// encodings and decodes to the pre-interface package-level Eq. (8) paths.
func TestStructuredCodeBitIdenticalToPackageFunctions(t *testing.T) {
	f := field.Prime{}
	const m, r, l = 12, 5, 7
	s, err := New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	code, err := NewStructured[uint64](f, m, r)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rand.New(rand.NewPCG(3, 9)), m, l)

	// Same rng stream on both sides: the blocks must match exactly.
	encOld, err := Encode[uint64](f, s, a, rand.New(rand.NewPCG(5, 11)))
	if err != nil {
		t.Fatal(err)
	}
	encNew, err := code.Encode(a, rand.New(rand.NewPCG(5, 11)))
	if err != nil {
		t.Fatal(err)
	}
	if len(encOld.Blocks) != len(encNew.Blocks) {
		t.Fatalf("block counts differ: %d vs %d", len(encOld.Blocks), len(encNew.Blocks))
	}
	for j := range encOld.Blocks {
		if !matrix.Equal[uint64](f, encOld.Blocks[j], encNew.Blocks[j]) {
			t.Fatalf("block %d differs between package Encode and StructuredCode.Encode", j)
		}
	}
	if encNew.Code == nil || encNew.Scheme == nil {
		t.Fatal("structured encoding must carry both the Code handle and the Scheme fast path")
	}

	x := matrix.RandomVec[uint64](f, rand.New(rand.NewPCG(7, 13)), l)
	y := encOld.ComputeAll(f, x)
	gotOld, err := Decode[uint64](f, s, y)
	if err != nil {
		t.Fatal(err)
	}
	gotNew, err := code.Decode(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gotOld {
		if gotOld[i] != gotNew[i] {
			t.Fatalf("decode mismatch at %d: %d vs %d", i, gotOld[i], gotNew[i])
		}
	}

	xb := matrix.Random[uint64](f, rand.New(rand.NewPCG(9, 17)), l, 3)
	yb := encOld.ComputeAllBatch(f, xb)
	gotBatchOld, err := DecodeBatch[uint64](f, s, yb)
	if err != nil {
		t.Fatal(err)
	}
	gotBatchNew, err := code.DecodeBatch(yb)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal[uint64](f, gotBatchOld, gotBatchNew) {
		t.Fatal("DecodeBatch mismatch between package function and StructuredCode")
	}
}

// TestCodeMetadata checks the shape accessors of both designs against the
// construction parameters.
func TestCodeMetadata(t *testing.T) {
	f := field.Prime{}
	sc, err := NewStructured[uint64](f, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != "eq8" || sc.M() != 10 || sc.R() != 4 || sc.T() != 1 {
		t.Fatalf("structured metadata wrong: name=%q m=%d r=%d t=%d", sc.Name(), sc.M(), sc.R(), sc.T())
	}
	if sc.K() != sc.Devices() {
		t.Fatalf("structured K = %d, want Devices = %d", sc.K(), sc.Devices())
	}
	if err := sc.Verify(); err != nil {
		t.Fatal(err)
	}

	rows, r, err := UniformCollusionRows(10, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewCollusion[uint64](f, 10, r, 2, rows)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Name() != "collusion" || cc.M() != 10 || cc.R() != r || cc.T() != 2 {
		t.Fatalf("collusion metadata wrong: name=%q m=%d r=%d t=%d", cc.Name(), cc.M(), cc.R(), cc.T())
	}
	if cc.K() != cc.Devices() || cc.Devices() != len(rows) {
		t.Fatalf("collusion K=%d devices=%d rows=%d", cc.K(), cc.Devices(), len(rows))
	}
	total := 0
	for j := 0; j < cc.Devices(); j++ {
		from, to := cc.RowRange(j)
		if to-from != cc.RowsOn(j) {
			t.Fatalf("device %d: RowRange width %d != RowsOn %d", j, to-from, cc.RowsOn(j))
		}
		if b := cc.DeviceCoefficients(j); b.Rows() != cc.RowsOn(j) || b.Cols() != cc.M()+cc.R() {
			t.Fatalf("device %d coefficient block is %dx%d", j, b.Rows(), b.Cols())
		}
		total += cc.RowsOn(j)
	}
	if total != cc.M()+cc.R() {
		t.Fatalf("rows sum to %d, want m+r = %d", total, cc.M()+cc.R())
	}
}

// TestBindSchemeSharesScheme checks that BindScheme wraps the given scheme
// without copying, so CLI reports and the engine see the same design.
func TestBindSchemeSharesScheme(t *testing.T) {
	s, err := New(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := BindScheme[uint64](field.Prime{}, s)
	if c.Scheme() != s {
		t.Fatal("BindScheme must expose the identical *Scheme")
	}
	if c.M() != 8 || c.R() != 3 {
		t.Fatalf("bound code reports m=%d r=%d", c.M(), c.R())
	}
}

// TestBalancedCollusionRows checks the reshape layout helper: an even split
// that satisfies the coalition capacity condition, and a hard error when no
// t-secure layout exists at the requested shape.
func TestBalancedCollusionRows(t *testing.T) {
	rows, err := BalancedCollusionRows(10, 6, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, v := range rows {
		sum += v
		if v < 2 || v > 3 {
			t.Fatalf("unbalanced layout %v", rows)
		}
	}
	if sum != 16 {
		t.Fatalf("layout %v sums to %d, want 16", rows, sum)
	}
	// Two devices out of two hold all 12 rows > r = 2: infeasible.
	if _, err := BalancedCollusionRows(10, 2, 2, 2); err == nil {
		t.Fatal("expected capacity violation for t=2 over 2 devices")
	}
	if _, err := BalancedCollusionRows(0, 1, 1, 1); err == nil {
		t.Fatal("expected parameter validation error")
	}
	if _, err := BalancedCollusionRows(2, 1, 1, 9); err == nil {
		t.Fatal("expected error: more devices than coded rows")
	}
}

// TestReshapedPreservesKind checks the adaptive control plane's reshape
// primitive: a structured prototype reshapes to a structured code, a
// collusion prototype keeps its threshold t, and unknown kinds are rejected.
func TestReshapedPreservesKind(t *testing.T) {
	f := field.Prime{}
	sc, err := NewStructured[uint64](f, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Reshaped[uint64](f, sc, 12, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re.(*StructuredCode[uint64]); !ok {
		t.Fatalf("structured reshape produced %T", re)
	}
	if re.R() != 6 || re.Devices() != 3 {
		t.Fatalf("reshaped to r=%d devices=%d", re.R(), re.Devices())
	}
	// Device count must match the (m, r)-implied i = ceil((m+r)/r).
	if _, err := Reshaped[uint64](f, sc, 12, 6, 5); err == nil {
		t.Fatal("expected device-count mismatch error")
	}

	rows, r, err := UniformCollusionRows(12, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewCollusion[uint64](f, 12, r, 2, rows)
	if err != nil {
		t.Fatal(err)
	}
	re2, err := Reshaped[uint64](f, cc, 12, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := re2.(*CollusionScheme[uint64])
	if !ok {
		t.Fatalf("collusion reshape produced %T", re2)
	}
	if got.T() != 2 {
		t.Fatalf("reshape dropped the threshold: t = %d", got.T())
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
	// An infeasible t-secure layout must fail, not silently weaken security.
	if _, err := Reshaped[uint64](f, cc, 12, 2, 7); err == nil {
		t.Fatal("expected infeasible reshape to error")
	}
}
