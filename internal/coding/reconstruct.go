package coding

import (
	"errors"
	"fmt"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// Reconstruct inverts Encode: it recovers the data matrix A from an
// encoding's coded blocks and retained random rows, using the Eq. (8)
// structure — data row p is coded as A_p + R_{p mod r}, so one subtraction
// per row undoes it (global row p+r lives on device ⌊(p+r)/r⌋).
//
// The adaptive control plane depends on this when it re-tunes r online: the
// cloud does not keep A after deployment, but the encoding it does keep
// determines A exactly, so a live reshape can re-encode under a new scheme
// without the original matrix. Security is unchanged — Reconstruct runs on
// the cloud, which already holds every block and the random rows; no device
// learns anything new.
func Reconstruct[E comparable](f field.Field[E], enc *Encoding[E]) (*matrix.Dense[E], error) {
	if enc == nil || enc.Scheme == nil {
		return nil, errors.New("coding: encoding has no structured scheme attached")
	}
	s := enc.Scheme
	if len(enc.Blocks) != s.i {
		return nil, fmt.Errorf("coding: encoding has %d blocks, scheme has %d devices", len(enc.Blocks), s.i)
	}
	if enc.Random == nil || enc.Random.Rows() != s.r {
		return nil, errors.New("coding: encoding is missing its random rows; cannot reconstruct")
	}
	l := enc.Random.Cols()
	a := matrix.New[E](s.m, l)
	for j := 0; j < s.i; j++ {
		from, to := s.RowRange(j)
		block := enc.Blocks[j]
		if block.Rows() != to-from || block.Cols() != l {
			return nil, fmt.Errorf("coding: block %d is %dx%d, want %dx%d", j, block.Rows(), block.Cols(), to-from, l)
		}
		// Rows below r are the random rows themselves; data starts at r.
		g := max(from, s.r)
		// Mirror Encode's chunking: runs of consecutive rows share one
		// contiguous subtraction until p mod r wraps.
		for g < to {
			p := g - s.r
			q := p % s.r
			n := min(to-g, s.r-q)
			matrix.VecSubInto(f,
				a.RowsView(p, p+n),
				block.RowsView(g-from, g-from+n),
				enc.Random.RowsView(q, q+n))
			g += n
		}
	}
	return a, nil
}
