package coding

import (
	"errors"
	"fmt"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// Reconstruct inverts Encode: it recovers the data matrix A from an
// encoding's coded blocks. For the structured Eq. (8) scheme it uses the
// retained random rows directly — data row p is coded as A_p + R_{p mod r},
// so one subtraction per row undoes it. For any other code it stacks the
// blocks into Y = B·T and runs the code's own batch decoder (taking X = I:
// the first m rows of T are A), so adaptive reshapes work under every
// scheme.
//
// The adaptive control plane depends on this when it re-tunes r online: the
// cloud does not keep A after deployment, but the encoding it does keep
// determines A exactly, so a live reshape can re-encode under a new scheme
// without the original matrix. Security is unchanged — Reconstruct runs on
// the cloud, which already holds every block and the random rows; no device
// learns anything new.
func Reconstruct[E comparable](f field.Field[E], enc *Encoding[E]) (*matrix.Dense[E], error) {
	if enc == nil || (enc.Scheme == nil && enc.Code == nil) {
		return nil, errors.New("coding: encoding has no code attached")
	}
	if enc.Scheme == nil {
		return reconstructGeneric(enc)
	}
	s := enc.Scheme
	if len(enc.Blocks) != s.i {
		return nil, fmt.Errorf("coding: encoding has %d blocks, scheme has %d devices", len(enc.Blocks), s.i)
	}
	if enc.Random == nil || enc.Random.Rows() != s.r {
		return nil, errors.New("coding: encoding is missing its random rows; cannot reconstruct")
	}
	l := enc.Random.Cols()
	a := matrix.New[E](s.m, l)
	for j := 0; j < s.i; j++ {
		from, to := s.RowRange(j)
		block := enc.Blocks[j]
		if block.Rows() != to-from || block.Cols() != l {
			return nil, fmt.Errorf("coding: block %d is %dx%d, want %dx%d", j, block.Rows(), block.Cols(), to-from, l)
		}
		// Rows below r are the random rows themselves; data starts at r.
		g := max(from, s.r)
		// Mirror Encode's chunking: runs of consecutive rows share one
		// contiguous subtraction until p mod r wraps.
		for g < to {
			p := g - s.r
			q := p % s.r
			n := min(to-g, s.r-q)
			matrix.VecSubInto(f,
				a.RowsView(p, p+n),
				block.RowsView(g-from, g-from+n),
				enc.Random.RowsView(q, q+n))
			g += n
		}
	}
	return a, nil
}

// reconstructGeneric recovers A through the code's own batch decoder: the
// stacked blocks are exactly Y = B·T (the intermediate result for X = I),
// and DecodeBatch(Y) returns the first m rows of T, i.e. A.
func reconstructGeneric[E comparable](enc *Encoding[E]) (*matrix.Dense[E], error) {
	code := enc.Code
	if len(enc.Blocks) != code.Devices() {
		return nil, fmt.Errorf("coding: encoding has %d blocks, code has %d devices", len(enc.Blocks), code.Devices())
	}
	for j, block := range enc.Blocks {
		if block.Rows() != code.RowsOn(j) {
			return nil, fmt.Errorf("coding: block %d holds %d rows, code expects %d", j, block.Rows(), code.RowsOn(j))
		}
	}
	return code.DecodeBatch(matrix.VStack(enc.Blocks...))
}
