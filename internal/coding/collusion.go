package coding

import (
	"fmt"
	"math/rand/v2"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// CollusionScheme generalizes the Eq. (8) design to the paper's future-work
// threat model (§VI): up to t edge devices may pool their coded rows. The
// single-attacker structure no longer suffices (two colluding devices holding
// A_p + R_q and R_q recover A_p by one subtraction), so the random part of
// every coded row comes from a Cauchy matrix instead:
//
//	B = ⎡ O_{r,m}  G_{0..r}   ⎤      G is an (m+r)×r Cauchy matrix
//	    ⎣ E_m      G_{r..m+r} ⎦
//
// Every square submatrix of a Cauchy matrix is invertible, so any s ≤ r rows
// of G are linearly independent. A coalition holding s rows can form a
// vector in the data subspace λ̄ only by cancelling the random columns, which
// needs a non-trivial dependency among s rows of G — impossible while s ≤ r.
// Security against t colluders therefore reduces to the capacity condition:
// the t largest per-device row counts must sum to at most r.
type CollusionScheme[E comparable] struct {
	f       field.Field[E]
	m, r, t int
	rows    []int
	b       *matrix.Dense[E]
	lu      *matrix.LU[E] // factored once so every Decode is O((m+r)²)
}

// NewCollusion builds a t-collusion-resistant scheme over f for m data rows,
// r random rows, and the given per-device row counts (which must sum to
// m+r). It fails when the capacity condition is violated or the field cannot
// supply m+2r distinct Cauchy nodes (relevant for GF(256)).
func NewCollusion[E comparable](f field.Field[E], m, r, t int, rows []int) (*CollusionScheme[E], error) {
	if m < 1 {
		return nil, fmt.Errorf("coding: m = %d, need m >= 1", m)
	}
	if r < 1 {
		return nil, fmt.Errorf("coding: r = %d, need r >= 1", r)
	}
	if t < 1 {
		return nil, fmt.Errorf("coding: t = %d, need t >= 1", t)
	}
	sum := 0
	for j, v := range rows {
		if v < 1 {
			return nil, fmt.Errorf("coding: device %d assigned %d rows, need >= 1", j, v)
		}
		sum += v
	}
	if sum != m+r {
		return nil, fmt.Errorf("coding: device rows sum to %d, want m+r = %d", sum, m+r)
	}
	if cap := sumOfLargest(rows, t); cap > r {
		return nil, fmt.Errorf("coding: %d colluding devices could hold %d rows > r = %d; increase r or shrink per-device loads", t, cap, r)
	}
	g, err := cauchy(f, m+r, r)
	if err != nil {
		return nil, err
	}
	n := m + r
	b := matrix.New[E](n, n)
	one := f.One()
	for gRow := 0; gRow < n; gRow++ {
		if gRow >= r {
			b.Set(gRow, gRow-r, one)
		}
		for c := 0; c < r; c++ {
			b.Set(gRow, m+c, g.At(gRow, c))
		}
	}
	// Factoring B up front both proves the availability condition (a
	// singular B fails here) and makes every subsequent decode O((m+r)²).
	lu, err := matrix.Factor(f, b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotAvailable, err)
	}
	return &CollusionScheme[E]{f: f, m: m, r: r, t: t, rows: append([]int(nil), rows...), b: b, lu: lu}, nil
}

// UniformCollusionRows returns a feasible per-device allocation for the
// collusion scheme: w rows per device (the last device takes the remainder)
// with r = t·w random rows, so any t devices hold at most r rows. It returns
// the row counts and r.
func UniformCollusionRows(m, t, w int) (rows []int, r int, err error) {
	if m < 1 || t < 1 || w < 1 {
		return nil, 0, fmt.Errorf("coding: invalid collusion parameters m=%d t=%d w=%d", m, t, w)
	}
	r = t * w
	total := m + r
	for total > 0 {
		take := w
		if take > total {
			take = total
		}
		rows = append(rows, take)
		total -= take
	}
	return rows, r, nil
}

// M returns the number of data rows.
func (s *CollusionScheme[E]) M() int { return s.m }

// R returns the number of random rows.
func (s *CollusionScheme[E]) R() int { return s.r }

// T returns the collusion threshold the scheme defends against.
func (s *CollusionScheme[E]) T() int { return s.t }

// Devices returns the number of participating devices.
func (s *CollusionScheme[E]) Devices() int { return len(s.rows) }

// K implements Code: B is square, so every device's rows are needed.
func (s *CollusionScheme[E]) K() int { return len(s.rows) }

// Name implements Code.
func (s *CollusionScheme[E]) Name() string { return "collusion" }

// RowsOn returns V(B_j), the number of coded rows device j holds.
func (s *CollusionScheme[E]) RowsOn(j int) int {
	if j < 0 || j >= len(s.rows) {
		panic(fmt.Sprintf("coding: device %d out of range [0, %d)", j, len(s.rows)))
	}
	return s.rows[j]
}

// DeviceCoefficients implements Code: device j's rows of B.
func (s *CollusionScheme[E]) DeviceCoefficients(j int) *matrix.Dense[E] {
	from, to := s.RowRange(j)
	return matrix.RowSlice(s.b, from, to).Clone()
}

// CoefficientMatrix returns (a copy of) the full coefficient matrix B.
func (s *CollusionScheme[E]) CoefficientMatrix() *matrix.Dense[E] { return s.b.Clone() }

// RowRange returns the half-open global row range of device j.
func (s *CollusionScheme[E]) RowRange(j int) (from, to int) {
	if j < 0 || j >= len(s.rows) {
		panic(fmt.Sprintf("coding: device %d out of range [0, %d)", j, len(s.rows)))
	}
	for p := 0; p < j; p++ {
		from += s.rows[p]
	}
	return from, from + s.rows[j]
}

// Encode produces each device's coded block B_j·T with fresh random rows.
func (s *CollusionScheme[E]) Encode(a *matrix.Dense[E], rng *rand.Rand) (*Encoding[E], error) {
	if a.Rows() != s.m {
		return nil, fmt.Errorf("coding: data matrix has %d rows, scheme expects m = %d", a.Rows(), s.m)
	}
	random := matrix.Random(s.f, rng, s.r, a.Cols())
	t := matrix.VStack(a, random)
	blocks := make([]*matrix.Dense[E], len(s.rows))
	for j := range s.rows {
		from, to := s.RowRange(j)
		blocks[j] = matrix.Mul(s.f, matrix.RowSlice(s.b, from, to), t)
	}
	// Encoding.Scheme stays nil — there is no m-subtraction shortcut — but
	// the Code handle makes the encoding first-class across every execution
	// layer: engine, fleet, sim, and transport decode through it.
	return &Encoding[E]{Code: s, Blocks: blocks, Random: random}, nil
}

// Decode recovers Ax from the concatenated intermediate results by solving
// B·(Tx) = y against the LU factorization computed at construction (the
// Cauchy design has no m-subtraction shortcut, but factor-once/solve-many
// keeps repeated queries at O((m+r)²)).
func (s *CollusionScheme[E]) Decode(y []E) ([]E, error) {
	if len(y) != s.m+s.r {
		return nil, fmt.Errorf("coding: got %d intermediate values, want m+r = %d", len(y), s.m+s.r)
	}
	tx, err := s.lu.Solve(y)
	if err != nil {
		return nil, err
	}
	return tx[:s.m], nil
}

// DecodeBatch recovers A·X from the stacked intermediate block Y = B·T·X by
// solving each column against the construction-time LU factorization —
// O((m+r)²) per column, the batch counterpart of Decode.
func (s *CollusionScheme[E]) DecodeBatch(y *matrix.Dense[E]) (*matrix.Dense[E], error) {
	n := s.m + s.r
	if y.Rows() != n {
		return nil, fmt.Errorf("coding: got %d intermediate rows, want m+r = %d", y.Rows(), n)
	}
	cols := y.Cols()
	ax := matrix.New[E](s.m, cols)
	col := make([]E, n)
	for c := 0; c < cols; c++ {
		for p := 0; p < n; p++ {
			col[p] = y.At(p, c)
		}
		tx, err := s.lu.Solve(col)
		if err != nil {
			return nil, err
		}
		for p := 0; p < s.m; p++ {
			ax.Set(p, c, tx[p])
		}
	}
	return ax, nil
}

// Verify checks availability and t-collusion security exhaustively through
// the shared coalition walk (CheckSecurityT): every coalition of up to t
// devices must span a subspace that intersects λ̄ trivially. It enumerates
// coalitions, so it is intended for the small fleets where collusion codes
// are configured; the Cauchy argument above is the general guarantee.
func (s *CollusionScheme[E]) Verify() error {
	if err := CheckAvailability(s.f, s.b); err != nil {
		return err
	}
	return CheckSecurityT(s.f, s.b, s.m, s.rows, s.t)
}

// cauchy builds an n×c Cauchy matrix over f with nodes x_i = i and
// y_j = n + j: G[i][j] = 1 / (x_i − y_j). It errors when the field cannot
// represent n+c distinct nodes (every square Cauchy submatrix is invertible
// exactly when all nodes are distinct).
func cauchy[E comparable](f field.Field[E], n, c int) (*matrix.Dense[E], error) {
	nodes := make([]E, n+c)
	seen := make(map[E]bool, n+c)
	for v := range nodes {
		nodes[v] = f.FromInt64(int64(v))
		if seen[nodes[v]] {
			return nil, fmt.Errorf("coding: field %s cannot supply %d distinct Cauchy nodes", f.Name(), n+c)
		}
		seen[nodes[v]] = true
	}
	g := matrix.New[E](n, c)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			d := f.Sub(nodes[i], nodes[n+j])
			inv, err := f.Inv(d)
			if err != nil {
				return nil, fmt.Errorf("coding: degenerate Cauchy node pair (%d, %d): %w", i, j, err)
			}
			g.Set(i, j, inv)
		}
	}
	return g, nil
}

// sumOfLargest returns the sum of the t largest values in rows (all values
// if t exceeds the count).
func sumOfLargest(rows []int, t int) int {
	sorted := append([]int(nil), rows...)
	for i := 1; i < len(sorted); i++ { // insertion sort: rows lists are short
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if t > len(sorted) {
		t = len(sorted)
	}
	sum := 0
	for _, v := range sorted[:t] {
		sum += v
	}
	return sum
}
