package coding

import (
	"fmt"
	"math/rand/v2"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// PolyMaskScheme is the polynomial-masking (Shamir-style) secure computation
// design of the paper's related work ([8], [9] staircase codes, [10]
// polynomial codes): the cloud forms the matrix polynomial
//
//	F(z) = A + z·R_1 + z²·R_2 + … + z^t·R_t
//
// with uniform random m×l masks R_i, and device j stores the full evaluation
// F(α_j). Any coalition of ≤ t devices sees Shamir shares and learns nothing
// about A; the user recovers A·x = F(0)·x by Lagrange interpolation from any
// t+1 device responses, so up to n−t−1 stragglers can be ignored.
//
// The repository implements it as the comparison point for the MCSCEC cost
// argument (§I: prior secure schemes "utilized the random information and
// the redundant computation resource … without considering the
// communication, computation, and storage cost"): every participating device
// stores and multiplies a full m×l share, so the total resource usage is
// n·m rows against MCSCEC's m+r — the gap the paper's optimization closes.
// In exchange, polynomial masking natively tolerates stragglers and
// t-collusion.
type PolyMaskScheme[E comparable] struct {
	f       field.Field[E]
	m, t, n int
	alphas  []E
}

// NewPolyMask builds a polynomial-masking scheme for m data rows over n
// devices with security threshold t (any t devices may collude; any t+1
// responses decode). It needs n ≥ t+1 and n distinct non-zero evaluation
// points, which bounds n by the field size for GF(256).
func NewPolyMask[E comparable](f field.Field[E], m, t, n int) (*PolyMaskScheme[E], error) {
	if m < 1 {
		return nil, fmt.Errorf("coding: m = %d, need m >= 1", m)
	}
	if t < 1 {
		return nil, fmt.Errorf("coding: t = %d, need t >= 1", t)
	}
	if n < t+1 {
		return nil, fmt.Errorf("coding: n = %d devices cannot decode a degree-%d masking (need n >= t+1)", n, t)
	}
	alphas := make([]E, n)
	seen := make(map[E]bool, n+1)
	seen[f.Zero()] = true // α = 0 would hand a device A itself
	for j := range alphas {
		alphas[j] = f.FromInt64(int64(j + 1))
		if seen[alphas[j]] {
			return nil, fmt.Errorf("coding: field %s cannot supply %d distinct non-zero evaluation points", f.Name(), n)
		}
		seen[alphas[j]] = true
	}
	return &PolyMaskScheme[E]{f: f, m: m, t: t, n: n, alphas: alphas}, nil
}

// M returns the number of data rows.
func (s *PolyMaskScheme[E]) M() int { return s.m }

// T returns the collusion/straggler threshold.
func (s *PolyMaskScheme[E]) T() int { return s.t }

// Devices returns n, the number of provisioned devices.
func (s *PolyMaskScheme[E]) Devices() int { return s.n }

// RowsPerDevice returns the coded rows each device stores: always m — the
// whole (masked) matrix. This is the resource-usage contrast with the
// MCSCEC design, where devices hold at most r rows.
func (s *PolyMaskScheme[E]) RowsPerDevice() int { return s.m }

// TotalRows returns the fleet-wide row count n·m (vs MCSCEC's m+r).
func (s *PolyMaskScheme[E]) TotalRows() int { return s.n * s.m }

// PolyMaskEncoding holds every device's share F(α_j).
type PolyMaskEncoding[E comparable] struct {
	// Scheme is the generating scheme.
	Scheme *PolyMaskScheme[E]
	// Shares[j] is device j's m×l evaluation F(α_j).
	Shares []*matrix.Dense[E]
}

// Encode draws the t random masks and evaluates F at every device's point.
func (s *PolyMaskScheme[E]) Encode(a *matrix.Dense[E], rng *rand.Rand) (*PolyMaskEncoding[E], error) {
	if a.Rows() != s.m {
		return nil, fmt.Errorf("coding: data matrix has %d rows, scheme expects m = %d", a.Rows(), s.m)
	}
	if a.Cols() < 1 {
		return nil, fmt.Errorf("coding: data matrix has no columns")
	}
	f := s.f
	masks := make([]*matrix.Dense[E], s.t)
	for i := range masks {
		masks[i] = matrix.Random(f, rng, s.m, a.Cols())
	}
	shares := make([]*matrix.Dense[E], s.n)
	for j := 0; j < s.n; j++ {
		// Horner evaluation: F(α) = A + α(R_1 + α(R_2 + …)).
		share := masks[s.t-1].Clone()
		for i := s.t - 2; i >= 0; i-- {
			share = matrix.Add(f, matrix.Scale(f, s.alphas[j], share), masks[i])
		}
		share = matrix.Add(f, matrix.Scale(f, s.alphas[j], share), a)
		shares[j] = share
	}
	return &PolyMaskEncoding[E]{Scheme: s, Shares: shares}, nil
}

// ComputeDevice performs device j's work: F(α_j)·x, m values.
func (e *PolyMaskEncoding[E]) ComputeDevice(j int, x []E) []E {
	return matrix.MulVec(e.Scheme.f, e.Shares[j], x)
}

// Decode recovers A·x from the responses of the device subset devices
// (indexes into the fleet) by Lagrange interpolation at z = 0. At least t+1
// distinct devices are required; extras are ignored beyond the first t+1.
func (s *PolyMaskScheme[E]) Decode(devices []int, results [][]E) ([]E, error) {
	if len(devices) != len(results) {
		return nil, fmt.Errorf("coding: %d device indexes for %d result vectors", len(devices), len(results))
	}
	if len(devices) < s.t+1 {
		return nil, fmt.Errorf("coding: %d responses cannot decode a degree-%d masking (need %d)", len(devices), s.t, s.t+1)
	}
	devices = devices[:s.t+1]
	results = results[:s.t+1]
	seen := make(map[int]bool, len(devices))
	for i, j := range devices {
		if j < 0 || j >= s.n {
			return nil, fmt.Errorf("coding: device index %d out of range [0, %d)", j, s.n)
		}
		if seen[j] {
			return nil, fmt.Errorf("coding: duplicate device index %d", j)
		}
		seen[j] = true
		if len(results[i]) != s.m {
			return nil, fmt.Errorf("coding: device %d returned %d values, want m = %d", j, len(results[i]), s.m)
		}
	}

	f := s.f
	// Lagrange coefficients at zero: λ_i = Π_{q≠i} α_q / (α_q − α_i).
	lambda := make([]E, len(devices))
	for i, ji := range devices {
		num, den := f.One(), f.One()
		for q, jq := range devices {
			if q == i {
				continue
			}
			num = f.Mul(num, s.alphas[jq])
			den = f.Mul(den, f.Sub(s.alphas[jq], s.alphas[ji]))
		}
		coeff, err := f.Div(num, den)
		if err != nil {
			return nil, fmt.Errorf("coding: degenerate evaluation points: %w", err)
		}
		lambda[i] = coeff
	}

	ax := make([]E, s.m)
	for p := 0; p < s.m; p++ {
		acc := f.Zero()
		for i := range devices {
			acc = f.Add(acc, f.Mul(lambda[i], results[i][p]))
		}
		ax[p] = acc
	}
	return ax, nil
}

// Verify checks t-collusion security in the coefficient-space formulation:
// each device's rows live in the (t+1)·m-dimensional space spanned by the
// rows of A, R_1, …, R_t, with device j's row p being
// [e_p | α_j·e_p | … | α_j^t·e_p]. Every coalition of up to t devices must
// intersect the data subspace [E_m | 0 … 0] trivially. The check enumerates
// coalitions and is meant for small fleets; the Vandermonde structure is the
// general argument.
func (s *PolyMaskScheme[E]) Verify() error {
	f := s.f
	dim := (s.t + 1) * s.m
	lambda := matrix.New[E](s.m, dim)
	one := f.One()
	for p := 0; p < s.m; p++ {
		lambda.Set(p, p, one)
	}
	// The shared coalition walk (also behind CollusionScheme.Verify and
	// CheckSecurityT) does the enumeration; this scheme only supplies its
	// per-device coefficient representation.
	return checkCoalitions(f, s.n, s.t, lambda, func(j int) *matrix.Dense[E] {
		b := matrix.New[E](s.m, dim)
		power := one
		for i := 0; i <= s.t; i++ {
			for p := 0; p < s.m; p++ {
				b.Set(p, i*s.m+p, power)
			}
			power = f.Mul(power, s.alphas[j])
		}
		return b
	})
}
