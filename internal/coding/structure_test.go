package coding

import (
	"testing"

	"github.com/scec/scec/internal/field"
)

// TestCoefficientMatrixStructure pins the row-level shape of Eq. (8) that
// the O(m) decoder and the O((m+r)l) encoder rely on:
//
//   - the first r rows have exactly one non-zero, in the random columns
//     (device 1 stores pure random rows);
//   - every other row has exactly two non-zeros: one data column (its own
//     A_p) and one random column (R_{p mod r}); and
//   - every non-zero is 1, so encoding needs additions only — no
//     multiplications — matching the cost model's assumption that coded
//     rows cost the devices l multiplications each only at compute time.
func TestCoefficientMatrixStructure(t *testing.T) {
	f := field.Prime{}
	for _, dims := range [][2]int{{1, 1}, {5, 2}, {8, 3}, {9, 9}, {12, 5}} {
		m, r := dims[0], dims[1]
		s, err := New(m, r)
		if err != nil {
			t.Fatal(err)
		}
		b := CoefficientMatrix(f, s)
		for row := 0; row < m+r; row++ {
			dataNZ, randNZ := 0, 0
			for col := 0; col < m+r; col++ {
				v := b.At(row, col)
				if v == 0 {
					continue
				}
				if v != 1 {
					t.Fatalf("m=%d r=%d: B[%d][%d] = %d, want 0 or 1", m, r, row, col, v)
				}
				if col < m {
					dataNZ++
				} else {
					randNZ++
				}
			}
			if row < r {
				if dataNZ != 0 || randNZ != 1 {
					t.Fatalf("m=%d r=%d: random row %d has %d data + %d random non-zeros, want 0+1", m, r, row, dataNZ, randNZ)
				}
				continue
			}
			if dataNZ != 1 || randNZ != 1 {
				t.Fatalf("m=%d r=%d: data row %d has %d data + %d random non-zeros, want 1+1", m, r, row, dataNZ, randNZ)
			}
			// The data column is the row's own index; the random column is
			// the paper's p mod r pairing.
			p := row - r
			if b.At(row, p) != 1 {
				t.Fatalf("m=%d r=%d: row %d does not carry A_%d", m, r, row, p)
			}
			if b.At(row, m+p%r) != 1 {
				t.Fatalf("m=%d r=%d: row %d does not carry R_%d", m, r, row, p%r)
			}
		}
	}
}

// TestEveryRandomRowIsReused confirms the pairing that makes decoding work:
// each random row R_q is stored verbatim by device 1 and reused by ⌈m/r⌉ or
// ⌊m/r⌋ data rows, never zero (that would waste a random row).
func TestEveryRandomRowIsReused(t *testing.T) {
	for m := 1; m <= 20; m++ {
		for r := 1; r <= m; r++ {
			uses := make([]int, r)
			for p := 0; p < m; p++ {
				uses[p%r]++
			}
			lo, hi := m/r, (m+r-1)/r
			for q, u := range uses {
				if u < lo || u > hi || u == 0 {
					t.Fatalf("m=%d r=%d: R_%d used by %d rows, want within [%d, %d] and > 0", m, r, q, u, lo, hi)
				}
			}
		}
	}
}
