// Package coding implements the secure linear coding design of the MCSCEC
// paper (§IV-B): the structured encoding coefficient matrix B of Eq. (8),
// the cloud-side encoder that produces each device's coded rows B_j·T, the
// user-side decoder that recovers Ax with m subtractions, and verifiers for
// the availability (Definition 1) and information-theoretic security
// (Definition 2) conditions.
//
// It also contains the paper's future-work extension (§VI): a Cauchy-based
// coding design that remains secure when up to t devices collude.
package coding

import (
	"errors"
	"fmt"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// Errors reported by scheme construction and verification.
var (
	// ErrNotAvailable indicates the encoding coefficient matrix is not full
	// rank, so the user could not decode (Definition 1 fails).
	ErrNotAvailable = errors.New("coding: availability condition violated (B not full rank)")
	// ErrNotSecure indicates some device's coded rows span a non-trivial
	// intersection with the data subspace (Definition 2 fails).
	ErrNotSecure = errors.New("coding: security condition violated")
)

// Scheme is the structured (m+r)-dimensional LCEC of Eq. (8). It fixes the
// row layout
//
//	B = ⎡ O_{r,m}  E_r     ⎤   ← device 1: pure random combinations
//	    ⎣ E_m      E_{m,r} ⎦   ← devices 2…i: one data row + one random row each
//
// where E_{m,r} stacks copies of E_r, i.e. (E_{m,r})_{p,q} = 1 iff
// q ≡ p (mod r). Device j (0-based) holds the global rows
// [j·r, min((j+1)·r, m+r)), which reproduces the Lemma 2 shape: the first
// i−1 devices hold r rows, the last holds m−(i−2)·r.
type Scheme struct {
	m, r, i int
}

// New constructs the Eq. (8) scheme for m data rows and r random rows. The
// number of participating devices is i = ⌈(m+r)/r⌉. It requires m ≥ 1 and
// 1 ≤ r ≤ m (Theorem 2's admissible range at k unlimited; callers that
// already ran task allocation pass the plan's r).
func New(m, r int) (*Scheme, error) {
	if m < 1 {
		return nil, fmt.Errorf("coding: m = %d, need m >= 1", m)
	}
	if r < 1 || r > m {
		return nil, fmt.Errorf("coding: r = %d outside [1, m] = [1, %d]", r, m)
	}
	return &Scheme{m: m, r: r, i: (m + 2*r - 1) / r}, nil
}

// M returns the number of data rows.
func (s *Scheme) M() int { return s.m }

// R returns the number of random rows.
func (s *Scheme) R() int { return s.r }

// Devices returns i, the number of participating devices.
func (s *Scheme) Devices() int { return s.i }

// RowRange returns the half-open global row range [from, to) of B held by
// 0-based device j. Device 0 corresponds to the paper's s_1.
func (s *Scheme) RowRange(j int) (from, to int) {
	if j < 0 || j >= s.i {
		panic(fmt.Sprintf("coding: device %d out of range [0, %d)", j, s.i))
	}
	from = j * s.r
	to = from + s.r
	if to > s.m+s.r {
		to = s.m + s.r
	}
	return from, to
}

// RowsOn returns V(B_j), the number of coded rows device j holds.
func (s *Scheme) RowsOn(j int) int {
	from, to := s.RowRange(j)
	return to - from
}

// CoefficientMatrix materializes the full (m+r)×(m+r) matrix B over f.
// The computing path never needs it (encoding and decoding exploit the
// structure); it exists for the verifiers, the attack harness, and tests.
func CoefficientMatrix[E comparable](f field.Field[E], s *Scheme) *matrix.Dense[E] {
	n := s.m + s.r
	b := matrix.New[E](n, n)
	one := f.One()
	// Top block [O_{r,m} | E_r].
	for p := 0; p < s.r; p++ {
		b.Set(p, s.m+p, one)
	}
	// Bottom block [E_m | E_{m,r}].
	for p := 0; p < s.m; p++ {
		b.Set(s.r+p, p, one)
		b.Set(s.r+p, s.m+p%s.r, one)
	}
	return b
}

// DeviceMatrix materializes B_j, the coded-row coefficient block of 0-based
// device j.
func DeviceMatrix[E comparable](f field.Field[E], s *Scheme, j int) *matrix.Dense[E] {
	from, to := s.RowRange(j)
	n := s.m + s.r
	b := matrix.New[E](to-from, n)
	one := f.One()
	for g := from; g < to; g++ {
		row := g - from
		if g < s.r {
			b.Set(row, s.m+g, one)
			continue
		}
		p := g - s.r
		b.Set(row, p, one)
		b.Set(row, s.m+p%s.r, one)
	}
	return b
}
