package coding

import (
	"fmt"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// Batch (matrix–matrix) computation: the paper's system model (§II-A) notes
// that the scheme "can also be applied to more general cases that require
// multiplication of two matrices and/or multiplication of a data matrix
// with different input vectors". Both reduce to the same mechanics: the
// input becomes an l×n matrix X whose columns are the n input vectors, each
// device returns B_j·T·X (a V(B_j)×n block), and the user decodes every
// column with the same m subtractions. Nothing about the security argument
// changes — the devices' coefficient rows are identical.

// ComputeDeviceBatch performs device j's share of A·X: its coded block times
// the l×n input matrix.
func (e *Encoding[E]) ComputeDeviceBatch(f field.Field[E], j int, x *matrix.Dense[E]) *matrix.Dense[E] {
	return matrix.Mul(f, e.Blocks[j], x)
}

// ComputeAllBatch stacks every device's batch result in device order,
// yielding B·T·X ((m+r)×n).
func (e *Encoding[E]) ComputeAllBatch(f field.Field[E], x *matrix.Dense[E]) *matrix.Dense[E] {
	blocks := make([]*matrix.Dense[E], len(e.Blocks))
	for j := range e.Blocks {
		blocks[j] = e.ComputeDeviceBatch(f, j, x)
	}
	return matrix.VStack(blocks...)
}

// DecodeBatch recovers A·X from the stacked intermediate block Y = B·T·X:
// m·n subtractions, the column-wise generalization of Decode.
func DecodeBatch[E comparable](f field.Field[E], s *Scheme, y *matrix.Dense[E]) (*matrix.Dense[E], error) {
	if y.Rows() != s.m+s.r {
		return nil, fmt.Errorf("coding: got %d intermediate rows, want m+r = %d", y.Rows(), s.m+s.r)
	}
	n := y.Cols()
	ax := matrix.New[E](s.m, n)
	for p := 0; p < s.m; p++ {
		for c := 0; c < n; c++ {
			ax.Set(p, c, f.Sub(y.At(s.r+p, c), y.At(p%s.r, c)))
		}
	}
	return ax, nil
}
