package coding

import (
	"fmt"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// Batch (matrix–matrix) computation: the paper's system model (§II-A) notes
// that the scheme "can also be applied to more general cases that require
// multiplication of two matrices and/or multiplication of a data matrix
// with different input vectors". Both reduce to the same mechanics: the
// input becomes an l×n matrix X whose columns are the n input vectors, each
// device returns B_j·T·X (a V(B_j)×n block), and the user decodes every
// column with the same m subtractions. Nothing about the security argument
// changes — the devices' coefficient rows are identical.

// ComputeDeviceBatch performs device j's share of A·X: its coded block times
// the l×n input matrix.
func (e *Encoding[E]) ComputeDeviceBatch(f field.Field[E], j int, x *matrix.Dense[E]) *matrix.Dense[E] {
	return matrix.Mul(f, e.Blocks[j], x)
}

// ComputeAllBatch stacks every device's batch result in device order,
// yielding B·T·X ((m+r)×n). Devices run in parallel across the shared
// kernel pool; each per-device product dispatches to the field-specialized
// matrix kernels.
func (e *Encoding[E]) ComputeAllBatch(f field.Field[E], x *matrix.Dense[E]) *matrix.Dense[E] {
	blocks := make([]*matrix.Dense[E], len(e.Blocks))
	rows := 0
	for _, b := range e.Blocks {
		rows += b.Rows()
	}
	matrix.ParallelFor(len(e.Blocks), rows*x.Rows()*x.Cols(), func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			blocks[j] = e.ComputeDeviceBatch(f, j, x)
		}
	})
	return matrix.VStack(blocks...)
}

// DecodeBatch recovers A·X from the stacked intermediate block Y = B·T·X:
// m·n subtractions, the column-wise generalization of Decode. Each output
// row is one vector subtraction over row views (no per-element index
// arithmetic or bounds-checked At calls), with the random-row index carried
// as a counter instead of a per-row modulo.
func DecodeBatch[E comparable](f field.Field[E], s *Scheme, y *matrix.Dense[E]) (*matrix.Dense[E], error) {
	if y.Rows() != s.m+s.r {
		return nil, fmt.Errorf("coding: got %d intermediate rows, want m+r = %d", y.Rows(), s.m+s.r)
	}
	n := y.Cols()
	ax := matrix.New[E](s.m, n)
	q := 0 // p mod s.r, maintained incrementally
	for p := 0; p < s.m; p++ {
		matrix.VecSubInto(f, ax.RowView(p), y.RowView(s.r+p), y.RowView(q))
		q++
		if q == s.r {
			q = 0
		}
	}
	return ax, nil
}
