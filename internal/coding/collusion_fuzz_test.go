package coding

import (
	"testing"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// FuzzCollusionDecode throws arbitrary shapes and intermediate vectors at the
// Cauchy decoder: construction either fails cleanly or yields a scheme whose
// Decode/DecodeBatch never panic — wrong lengths must error, right lengths
// must produce m values (garbage in, garbage out — but never a crash).
// Runs over GF(256) so the fuzzer also exercises Cauchy node exhaustion
// (m + 2r > 256 must be a clean error).
func FuzzCollusionDecode(fz *testing.F) {
	fz.Add(uint8(4), uint8(2), uint8(2), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	fz.Add(uint8(1), uint8(1), uint8(1), []byte{})
	fz.Add(uint8(16), uint8(3), uint8(4), []byte{0xff, 0x00, 0x7f})
	fz.Add(uint8(200), uint8(3), uint8(40), []byte{9})
	fz.Fuzz(func(t *testing.T, mRaw, tRaw, wRaw uint8, yBytes []byte) {
		f := field.GF256{}
		m := 1 + int(mRaw)
		tc := 1 + int(tRaw)%4
		w := 1 + int(wRaw)%8
		rows, r, err := UniformCollusionRows(m, tc, w)
		if err != nil {
			t.Fatalf("UniformCollusionRows(%d, %d, %d): %v", m, tc, w, err)
		}
		s, err := NewCollusion[byte](f, m, r, tc, rows)
		if err != nil {
			// Legitimate: GF(256) runs out of distinct Cauchy nodes when
			// m + 2r > 256. Construction must fail, not mis-build.
			if m+2*r <= 256 {
				t.Fatalf("NewCollusion(%d, %d, %d, %v): %v", m, r, tc, rows, err)
			}
			return
		}

		// Arbitrary-length input: wrong lengths error, never panic.
		if got, err := s.Decode(yBytes); err == nil {
			if len(yBytes) != m+r {
				t.Fatalf("decoded a %d-value vector, scheme wants %d", len(yBytes), m+r)
			}
			if len(got) != m {
				t.Fatalf("decode returned %d values, want m = %d", len(got), m)
			}
		} else if len(yBytes) == m+r {
			t.Fatalf("well-shaped decode errored: %v", err)
		}

		// Right-length input built from the fuzz bytes must always decode.
		y := make([]byte, m+r)
		for i := range y {
			if len(yBytes) > 0 {
				y[i] = yBytes[i%len(yBytes)]
			}
		}
		if _, err := s.Decode(y); err != nil {
			t.Fatalf("decode of full-length vector errored: %v", err)
		}

		// Batch path: a wrong row count errors, the right one decodes.
		if _, err := s.DecodeBatch(matrix.New[byte](m+r+1, 1)); err == nil {
			t.Fatal("DecodeBatch accepted a wrong-shaped block")
		}
		yb := matrix.New[byte](m+r, 2)
		for i := 0; i < m+r; i++ {
			yb.Set(i, 0, y[i])
			yb.Set(i, 1, y[(i+1)%(m+r)])
		}
		if _, err := s.DecodeBatch(yb); err != nil {
			t.Fatalf("DecodeBatch of well-shaped block errored: %v", err)
		}
	})
}
