package coding

import (
	"math/rand/v2"
	"testing"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// TestCollusionPropertyRandomShapes draws random (m, t, per-device width)
// triples, builds the uniform layout, and checks the whole contract: the
// scheme-aware Verify passes, and decoding the concatenated device results
// matches the uncoded product exactly — for vectors and batches.
func TestCollusionPropertyRandomShapes(t *testing.T) {
	f := field.Prime{}
	rng := rand.New(rand.NewPCG(0xc0de, 0x5eed))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.IntN(24)
		tc := 1 + rng.IntN(3)
		w := 1 + rng.IntN(4)
		l := 1 + rng.IntN(6)
		rows, r, err := UniformCollusionRows(m, tc, w)
		if err != nil {
			t.Fatalf("trial %d: UniformCollusionRows(%d, %d, %d): %v", trial, m, tc, w, err)
		}
		s, err := NewCollusion[uint64](f, m, r, tc, rows)
		if err != nil {
			t.Fatalf("trial %d: NewCollusion(%d, %d, %d, %v): %v", trial, m, r, tc, rows, err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("trial %d: Verify failed for m=%d r=%d t=%d rows=%v: %v", trial, m, r, tc, rows, err)
		}

		a := matrix.Random[uint64](f, rng, m, l)
		enc, err := s.Encode(a, rng)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		x := matrix.RandomVec[uint64](f, rng, l)
		got, err := s.Decode(enc.ComputeAll(f, x))
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		want := matrix.MulVec[uint64](f, a, x)
		if !matrix.VecEqual[uint64](f, got, want) {
			t.Fatalf("trial %d: decoded product differs from plaintext at m=%d r=%d t=%d", trial, m, r, tc)
		}

		xb := matrix.Random[uint64](f, rng, l, 1+rng.IntN(3))
		gotB, err := s.DecodeBatch(enc.ComputeAllBatch(f, xb))
		if err != nil {
			t.Fatalf("trial %d: batch decode: %v", trial, err)
		}
		if !matrix.Equal[uint64](f, gotB, matrix.Mul[uint64](f, a, xb)) {
			t.Fatalf("trial %d: batch product differs from plaintext", trial)
		}
	}
}

// coalitions calls visit with every subset of {0..n-1} of size 1..t.
func coalitions(n, t int, visit func(devs []int)) {
	var walk func(start int, cur []int)
	walk = func(start int, cur []int) {
		if len(cur) > 0 {
			visit(cur)
		}
		if len(cur) == t {
			return
		}
		for d := start; d < n; d++ {
			walk(d+1, append(cur, d))
		}
	}
	walk(0, nil)
}

// TestCollusionSecrecyRank is the information-theoretic secrecy argument,
// checked concretely: for every coalition of up to t devices, the coalition's
// stacked coefficient rows restricted to the random columns [m, m+r) must
// have full row rank. The coalition's view is then C_A·A + C_R·T with C_R a
// surjection of the uniform randomness T, so the view is uniform for every
// fixed A — zero mutual information, not just "no full row recovered".
func TestCollusionSecrecyRank(t *testing.T) {
	f := field.Prime{}
	rng := rand.New(rand.NewPCG(0x5ec, 0xec7))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.IntN(12)
		tc := 1 + rng.IntN(3)
		w := 1 + rng.IntN(3)
		rows, r, err := UniformCollusionRows(m, tc, w)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewCollusion[uint64](f, m, r, tc, rows)
		if err != nil {
			t.Fatal(err)
		}
		coalitions(s.Devices(), tc, func(devs []int) {
			blocks := make([]*matrix.Dense[uint64], len(devs))
			total := 0
			for i, d := range devs {
				blocks[i] = s.DeviceCoefficients(d)
				total += blocks[i].Rows()
			}
			stacked := matrix.VStack(blocks...)
			// Restrict to the random columns: the randomness-mixing part C_R.
			cr := matrix.New[uint64](total, r)
			for i := 0; i < total; i++ {
				for c := 0; c < r; c++ {
					cr.Set(i, c, stacked.At(i, m+c))
				}
			}
			if rank := matrix.Rank[uint64](f, cr); rank != total {
				t.Fatalf("coalition %v holds %d rows but its randomness mixer has rank %d: view is not uniform (m=%d r=%d t=%d)",
					devs, total, rank, m, r, tc)
			}
		})
	}
}

// TestCollusionSecrecyEmpirical samples the smallest interesting coalition
// view over GF(256) for two different confidential matrices and checks both
// empirical view distributions cover the whole field: with a full-row-rank
// randomness mixer the view is one-time-pad uniform, so no value of A can be
// ruled out by observing a device's block.
func TestCollusionSecrecyEmpirical(t *testing.T) {
	f := field.GF256{}
	const m, tc, w = 2, 2, 1
	rows, r, err := UniformCollusionRows(m, tc, w)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCollusion[byte](f, m, r, tc, rows)
	if err != nil {
		t.Fatal(err)
	}
	a0 := matrix.FromRows([][]byte{{0}, {0}})
	a1 := matrix.FromRows([][]byte{{0xab}, {0x40}})
	const samples = 4096
	for name, a := range map[string]*matrix.Dense[byte]{"zero": a0, "nonzero": a1} {
		rng := rand.New(rand.NewPCG(0xa5a5, 0x1111))
		var seen [256]int
		for i := 0; i < samples; i++ {
			enc, err := s.Encode(a, rng)
			if err != nil {
				t.Fatal(err)
			}
			// Device 0 holds one coded value (w=1 row, l=1 column).
			seen[enc.Blocks[0].At(0, 0)]++
		}
		for v, n := range seen {
			if n == 0 {
				t.Fatalf("matrix %s: view value %#x never occurred in %d samples; view is not uniform", name, v, samples)
			}
		}
	}
}
