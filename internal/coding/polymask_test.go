package coding

import (
	"testing"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

func TestNewPolyMaskValidation(t *testing.T) {
	f := field.Prime{}
	if _, err := NewPolyMask[uint64](f, 0, 1, 3); err == nil {
		t.Error("m = 0 should be rejected")
	}
	if _, err := NewPolyMask[uint64](f, 5, 0, 3); err == nil {
		t.Error("t = 0 should be rejected")
	}
	if _, err := NewPolyMask[uint64](f, 5, 3, 3); err == nil {
		t.Error("n < t+1 should be rejected")
	}
	if _, err := NewPolyMask[uint64](f, 5, 2, 3); err != nil {
		t.Errorf("valid construction rejected: %v", err)
	}
	// GF(256) cannot supply 300 distinct non-zero points.
	if _, err := NewPolyMask[byte](field.GF256{}, 5, 2, 300); err == nil {
		t.Error("point exhaustion over GF(256) should be rejected")
	}
}

func TestPolyMaskRoundTrip(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	const m, l, tDeg, n = 8, 5, 2, 6
	s, err := NewPolyMask[uint64](f, m, tDeg, n)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, m, l)
	enc, err := s.Encode(a, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.RandomVec[uint64](f, rng, l)
	want := matrix.MulVec[uint64](f, a, x)

	// Any t+1 subset decodes; try several.
	subsets := [][]int{
		{0, 1, 2},
		{3, 4, 5},
		{0, 2, 4},
		{5, 1, 3}, // order must not matter
	}
	for _, devices := range subsets {
		results := make([][]uint64, len(devices))
		for i, j := range devices {
			results[i] = enc.ComputeDevice(j, x)
		}
		got, err := s.Decode(devices, results)
		if err != nil {
			t.Fatalf("subset %v: %v", devices, err)
		}
		if !matrix.VecEqual[uint64](f, got, want) {
			t.Fatalf("subset %v decoded the wrong result", devices)
		}
	}

	// Extra responses beyond t+1 are tolerated (stragglers that showed up).
	all := []int{0, 1, 2, 3, 4, 5}
	results := make([][]uint64, n)
	for j := range results {
		results[j] = enc.ComputeDevice(j, x)
	}
	got, err := s.Decode(all, results)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.VecEqual[uint64](f, got, want) {
		t.Fatal("full-fleet decode failed")
	}
}

func TestPolyMaskGF256(t *testing.T) {
	f := field.GF256{}
	rng := testRNG()
	s, err := NewPolyMask[byte](f, 5, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[byte](f, rng, 5, 4)
	enc, err := s.Encode(a, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.RandomVec[byte](f, rng, 4)
	devices := []int{1, 3, 4}
	results := make([][]byte, len(devices))
	for i, j := range devices {
		results[i] = enc.ComputeDevice(j, x)
	}
	got, err := s.Decode(devices, results)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.VecEqual[byte](f, got, matrix.MulVec[byte](f, a, x)) {
		t.Fatal("GF(256) decode failed")
	}
}

func TestPolyMaskDecodeValidation(t *testing.T) {
	f := field.Prime{}
	s, err := NewPolyMask[uint64](f, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	good := make([][]uint64, 3)
	for i := range good {
		good[i] = make([]uint64, 4)
	}
	if _, err := s.Decode([]int{0, 1}, good[:2]); err == nil {
		t.Error("too few responses should be rejected")
	}
	if _, err := s.Decode([]int{0, 1, 1}, good); err == nil {
		t.Error("duplicate devices should be rejected")
	}
	if _, err := s.Decode([]int{0, 1, 9}, good); err == nil {
		t.Error("out-of-range device should be rejected")
	}
	if _, err := s.Decode([]int{0, 1}, good); err == nil {
		t.Error("index/result length mismatch should be rejected")
	}
	bad := [][]uint64{make([]uint64, 4), make([]uint64, 4), make([]uint64, 3)}
	if _, err := s.Decode([]int{0, 1, 2}, bad); err == nil {
		t.Error("short result vector should be rejected")
	}
}

func TestPolyMaskEncodeValidation(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	s, err := NewPolyMask[uint64](f, 4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Encode(matrix.New[uint64](3, 2), rng); err == nil {
		t.Error("wrong row count should be rejected")
	}
	if _, err := s.Encode(matrix.New[uint64](4, 0), rng); err == nil {
		t.Error("zero columns should be rejected")
	}
}

func TestPolyMaskSecurity(t *testing.T) {
	f := field.Prime{}
	for _, cfg := range []struct{ m, t, n int }{{3, 1, 4}, {4, 2, 5}, {2, 3, 6}} {
		s, err := NewPolyMask[uint64](f, cfg.m, cfg.t, cfg.n)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("m=%d t=%d n=%d: %v", cfg.m, cfg.t, cfg.n, err)
		}
	}
}

// TestPolyMaskCoalitionAboveThresholdLeaks shows the threshold is tight:
// t+1 pooled devices span the data subspace (they can decode outright).
func TestPolyMaskCoalitionAboveThresholdLeaks(t *testing.T) {
	f := field.Prime{}
	s, err := NewPolyMask[uint64](f, 3, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Build the coefficient-space blocks for devices 0 and 1 (t+1 = 2).
	dim := (s.t + 1) * s.m
	block := func(j int) *matrix.Dense[uint64] {
		b := matrix.New[uint64](s.m, dim)
		power := f.One()
		for i := 0; i <= s.t; i++ {
			for p := 0; p < s.m; p++ {
				b.Set(p, i*s.m+p, power)
			}
			power = f.Mul(power, s.alphas[j])
		}
		return b
	}
	lambda := matrix.New[uint64](s.m, dim)
	for p := 0; p < s.m; p++ {
		lambda.Set(p, p, 1)
	}
	pooled := matrix.VStack(block(0), block(1))
	if d := matrix.SpanIntersectionDim[uint64](f, pooled, lambda); d != s.m {
		t.Fatalf("t+1 coalition should span the whole data subspace, got dim %d", d)
	}
}

// TestPolyMaskResourceContrast pins the cost story: polynomial masking
// provisions n·m rows where the MCSCEC design provisions m+r.
func TestPolyMaskResourceContrast(t *testing.T) {
	f := field.Prime{}
	const m, tDeg, n = 100, 1, 5
	pm, err := NewPolyMask[uint64](f, m, tDeg, n)
	if err != nil {
		t.Fatal(err)
	}
	if pm.RowsPerDevice() != m || pm.TotalRows() != n*m {
		t.Fatalf("rows/device = %d total = %d", pm.RowsPerDevice(), pm.TotalRows())
	}
	sc, err := New(m, 25) // r = 25 → 5 devices of 25 rows
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for j := 0; j < sc.Devices(); j++ {
		total += sc.RowsOn(j)
	}
	if total >= pm.TotalRows() {
		t.Fatalf("MCSCEC total rows %d should undercut polynomial masking's %d", total, pm.TotalRows())
	}
}
