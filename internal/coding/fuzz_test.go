package coding

import (
	"math/rand/v2"
	"testing"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// FuzzEncodeDecodeGF256 builds arbitrary small schemes over GF(256),
// verifies Theorem 3 end to end, and round-trips a multiplication.
func FuzzEncodeDecodeGF256(fz *testing.F) {
	fz.Add(uint8(4), uint8(2), uint8(3), uint64(1))
	fz.Add(uint8(1), uint8(1), uint8(1), uint64(7))
	fz.Add(uint8(16), uint8(16), uint8(8), uint64(42))
	fz.Fuzz(func(t *testing.T, mRaw, rRaw, lRaw uint8, seed uint64) {
		f := field.GF256{}
		m := 1 + int(mRaw)%16
		r := 1 + int(rRaw)%m
		l := 1 + int(lRaw)%8
		s, err := New(m, r)
		if err != nil {
			t.Fatalf("New(%d, %d): %v", m, r, err)
		}
		if err := Verify[byte](f, s); err != nil {
			t.Fatalf("Theorem 3 violated at m=%d r=%d: %v", m, r, err)
		}
		rng := rand.New(rand.NewPCG(seed, 0xf022))
		a := matrix.Random[byte](f, rng, m, l)
		x := matrix.RandomVec[byte](f, rng, l)
		enc, err := Encode[byte](f, s, a, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode[byte](f, s, enc.ComputeAll(f, x))
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.MulVec[byte](f, a, x)
		if !matrix.VecEqual[byte](f, got, want) {
			t.Fatalf("round trip failed at m=%d r=%d l=%d", m, r, l)
		}
	})
}

// FuzzDecodeNeverPanics throws arbitrary intermediate vectors at the
// decoder: wrong lengths must error, right lengths must decode to
// *something* without panicking (garbage in, garbage out — but never a
// crash).
func FuzzDecodeNeverPanics(fz *testing.F) {
	fz.Add(uint8(4), uint8(2), []byte{1, 2, 3, 4, 5, 6})
	fz.Add(uint8(3), uint8(1), []byte{})
	fz.Fuzz(func(t *testing.T, mRaw, rRaw uint8, yBytes []byte) {
		f := field.GF256{}
		m := 1 + int(mRaw)%16
		r := 1 + int(rRaw)%m
		s, err := New(m, r)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decode[byte](f, s, yBytes)
		if len(yBytes) != m+r {
			if err == nil {
				t.Fatalf("Decode accepted %d values for m+r=%d", len(yBytes), m+r)
			}
			return
		}
		if err != nil {
			t.Fatalf("Decode rejected a correctly sized vector: %v", err)
		}
		if len(out) != m {
			t.Fatalf("Decode returned %d values, want m=%d", len(out), m)
		}
	})
}
