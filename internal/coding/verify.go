package coding

import (
	"fmt"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// DataSubspace returns λ̄ = [E_m | O_{m,r}], the basis of the subspace of
// coefficient vectors that reveal linear combinations of rows of A. The
// security condition of Definition 2 (in its span form, per the theory of
// secure network coding) is that every device's coefficient block intersects
// this subspace trivially.
func DataSubspace[E comparable](f field.Field[E], m, r int) *matrix.Dense[E] {
	lambda := matrix.New[E](m, m+r)
	one := f.One()
	for p := 0; p < m; p++ {
		lambda.Set(p, p, one)
	}
	return lambda
}

// CheckAvailability verifies Definition 1 for an arbitrary coefficient
// matrix: B must be square and full rank. It returns ErrNotAvailable
// (wrapped with the rank found) on failure.
func CheckAvailability[E comparable](f field.Field[E], b *matrix.Dense[E]) error {
	if b.Rows() != b.Cols() {
		return fmt.Errorf("%w: B is %dx%d, not square", ErrNotAvailable, b.Rows(), b.Cols())
	}
	if rank := matrix.Rank(f, b); rank != b.Rows() {
		return fmt.Errorf("%w: rank %d of %d", ErrNotAvailable, rank, b.Rows())
	}
	return nil
}

// CheckSecurity verifies Definition 2 for an arbitrary coefficient matrix
// split into per-device row counts: for each device j,
// dim(L(B_j) ∩ L(λ̄)) must be 0. rows[j] gives V(B_j); the counts must sum
// to B's row count, and m = B.Cols() − r data rows are assumed to occupy the
// first m columns. It returns ErrNotSecure naming the first offending
// device.
func CheckSecurity[E comparable](f field.Field[E], b *matrix.Dense[E], m int, rows []int) error {
	n := b.Rows()
	r := b.Cols() - m
	if r < 0 {
		return fmt.Errorf("coding: m = %d exceeds B's %d columns", m, b.Cols())
	}
	sum := 0
	for _, v := range rows {
		if v < 0 {
			return fmt.Errorf("coding: negative device row count %d", v)
		}
		sum += v
	}
	if sum != n {
		return fmt.Errorf("coding: device row counts sum to %d, want %d", sum, n)
	}
	lambda := DataSubspace(f, m, r)
	at := 0
	for j, v := range rows {
		if v == 0 {
			continue
		}
		bj := matrix.RowSlice(b, at, at+v)
		at += v
		if dim := matrix.SpanIntersectionDim(f, bj, lambda); dim != 0 {
			return fmt.Errorf("%w: device %d leaks a %d-dimensional data subspace", ErrNotSecure, j, dim)
		}
	}
	return nil
}

// CheckSecurityT generalizes CheckSecurity to coalitions: every coalition of
// up to t devices, pooling their coefficient rows, must span a subspace that
// intersects λ̄ trivially. t = 1 is exactly Definition 2. The check
// enumerates coalitions, so it is meant for the small fleets where collusion
// codes are configured; the Cauchy rank argument is the general guarantee.
func CheckSecurityT[E comparable](f field.Field[E], b *matrix.Dense[E], m int, rows []int, t int) error {
	n := b.Rows()
	r := b.Cols() - m
	if r < 0 {
		return fmt.Errorf("coding: m = %d exceeds B's %d columns", m, b.Cols())
	}
	if t < 1 {
		return fmt.Errorf("coding: t = %d, need t >= 1", t)
	}
	sum := 0
	for _, v := range rows {
		if v < 0 {
			return fmt.Errorf("coding: negative device row count %d", v)
		}
		sum += v
	}
	if sum != n {
		return fmt.Errorf("coding: device row counts sum to %d, want %d", sum, n)
	}
	starts := make([]int, len(rows)+1)
	for j, v := range rows {
		starts[j+1] = starts[j] + v
	}
	return checkCoalitions(f, len(rows), t, DataSubspace(f, m, r), func(j int) *matrix.Dense[E] {
		return matrix.RowSlice(b, starts[j], starts[j+1])
	})
}

// checkCoalitions enumerates every coalition of 1..t of the n devices and
// checks that the pooled coefficient block blockOf(j₁)‖…‖blockOf(jₛ)
// intersects lambda trivially. It is the shared security walk behind the
// collusion and polynomial-masking verifiers (and CheckSecurityT); each
// scheme supplies only its per-device coefficient representation.
func checkCoalitions[E comparable](f field.Field[E], n, t int, lambda *matrix.Dense[E], blockOf func(j int) *matrix.Dense[E]) error {
	coalition := make([]int, 0, t)
	var walk func(start int) error
	walk = func(start int) error {
		if len(coalition) > 0 {
			blocks := make([]*matrix.Dense[E], 0, len(coalition))
			for _, j := range coalition {
				blocks = append(blocks, blockOf(j))
			}
			pooled := matrix.VStack(blocks...)
			if dim := matrix.SpanIntersectionDim(f, pooled, lambda); dim != 0 {
				return fmt.Errorf("%w: coalition %v leaks a %d-dimensional data subspace", ErrNotSecure, append([]int(nil), coalition...), dim)
			}
		}
		if len(coalition) == t {
			return nil
		}
		for j := start; j < n; j++ {
			coalition = append(coalition, j)
			if err := walk(j + 1); err != nil {
				return err
			}
			coalition = coalition[:len(coalition)-1]
		}
		return nil
	}
	return walk(0)
}

// Verify runs both Theorem 3 checks on the structured scheme: it
// materializes B from Eq. (8) over f and confirms availability and
// per-device security. The construction guarantees both (Theorem 3); this
// function exists so deployments and tests can re-establish the guarantee
// for any concrete (m, r).
func Verify[E comparable](f field.Field[E], s *Scheme) error {
	b := CoefficientMatrix(f, s)
	if err := CheckAvailability(f, b); err != nil {
		return err
	}
	rows := make([]int, s.i)
	for j := range rows {
		rows[j] = s.RowsOn(j)
	}
	return CheckSecurity(f, b, s.m, rows)
}
