package coding

import (
	"errors"
	"math/rand/v2"
	"testing"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(21, 34)) }

func TestNewValidation(t *testing.T) {
	cases := []struct {
		m, r int
		ok   bool
	}{
		{1, 1, true},
		{10, 1, true},
		{10, 10, true},
		{10, 11, false},
		{10, 0, false},
		{0, 1, false},
		{-3, 1, false},
	}
	for _, tc := range cases {
		_, err := New(tc.m, tc.r)
		if (err == nil) != tc.ok {
			t.Errorf("New(%d, %d) err = %v, want ok=%v", tc.m, tc.r, err, tc.ok)
		}
	}
}

func TestRowRangesMatchLemma2Shape(t *testing.T) {
	for m := 1; m <= 25; m++ {
		for r := 1; r <= m; r++ {
			s, err := New(m, r)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for j := 0; j < s.Devices(); j++ {
				rows := s.RowsOn(j)
				if rows < 1 || rows > r {
					t.Fatalf("m=%d r=%d: device %d holds %d rows, want [1, %d]", m, r, j, rows, r)
				}
				if j < s.Devices()-1 && rows != r {
					t.Fatalf("m=%d r=%d: non-final device %d holds %d rows, want r", m, r, j, rows)
				}
				total += rows
			}
			if total != m+r {
				t.Fatalf("m=%d r=%d: devices hold %d rows, want m+r=%d", m, r, total, m+r)
			}
			if want := (m + 2*r - 1) / r; s.Devices() != want {
				t.Fatalf("m=%d r=%d: i=%d, want ceil((m+r)/r)=%d", m, r, s.Devices(), want)
			}
		}
	}
}

func TestRowRangePanics(t *testing.T) {
	s, _ := New(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range device")
		}
	}()
	s.RowRange(s.Devices())
}

func TestCoefficientMatrixKnownExample(t *testing.T) {
	// m=4, r=2 → i=3. Eq. (8):
	// B = [ 0 0 0 0 | 1 0 ]   device 1 (rows 0-1)
	//     [ 0 0 0 0 | 0 1 ]
	//     [ 1 0 0 0 | 1 0 ]   device 2 (rows 2-3)
	//     [ 0 1 0 0 | 0 1 ]
	//     [ 0 0 1 0 | 1 0 ]   device 3 (rows 4-5)
	//     [ 0 0 0 1 | 0 1 ]
	f := field.Prime{}
	s, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.FromRows([][]uint64{
		{0, 0, 0, 0, 1, 0},
		{0, 0, 0, 0, 0, 1},
		{1, 0, 0, 0, 1, 0},
		{0, 1, 0, 0, 0, 1},
		{0, 0, 1, 0, 1, 0},
		{0, 0, 0, 1, 0, 1},
	})
	got := CoefficientMatrix(f, s)
	if !matrix.Equal[uint64](f, got, want) {
		t.Fatalf("B =\n%v\nwant\n%v", got, want)
	}
}

func TestDeviceMatrixSlicesCoefficientMatrix(t *testing.T) {
	f := field.Prime{}
	for _, dims := range [][2]int{{4, 2}, {7, 3}, {5, 5}, {1, 1}, {9, 4}} {
		s, err := New(dims[0], dims[1])
		if err != nil {
			t.Fatal(err)
		}
		b := CoefficientMatrix(f, s)
		for j := 0; j < s.Devices(); j++ {
			from, to := s.RowRange(j)
			want := matrix.RowSlice(b, from, to)
			if got := DeviceMatrix(f, s, j); !matrix.Equal[uint64](f, got, want) {
				t.Fatalf("m=%d r=%d device %d: DeviceMatrix != B slice", dims[0], dims[1], j)
			}
		}
	}
}

// TestTheorem3 verifies availability + security of the Eq. (8) construction
// for every (m, r) with m ≤ 18, over all three fields.
func TestTheorem3(t *testing.T) {
	for m := 1; m <= 18; m++ {
		for r := 1; r <= m; r++ {
			s, err := New(m, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify[uint64](field.Prime{}, s); err != nil {
				t.Fatalf("prime m=%d r=%d: %v", m, r, err)
			}
			if err := Verify[byte](field.GF256{}, s); err != nil {
				t.Fatalf("gf256 m=%d r=%d: %v", m, r, err)
			}
			if err := Verify[float64](field.Real{}, s); err != nil {
				t.Fatalf("real m=%d r=%d: %v", m, r, err)
			}
		}
	}
}

func roundTrip[E comparable](t *testing.T, f field.Field[E], m, l, r int) {
	t.Helper()
	rng := testRNG()
	s, err := New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(f, rng, m, l)
	x := matrix.RandomVec(f, rng, l)
	enc, err := Encode(f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	y := enc.ComputeAll(f, x)
	got, err := Decode(f, s, y)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.MulVec(f, a, x)
	if !matrix.VecEqual(f, got, want) {
		t.Fatalf("decode(encode) != Ax for %s m=%d l=%d r=%d", f.Name(), m, l, r)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	dims := []struct{ m, l, r int }{
		{1, 1, 1}, {4, 3, 2}, {10, 8, 3}, {10, 8, 10}, {17, 5, 4}, {32, 16, 7},
	}
	for _, d := range dims {
		roundTrip[uint64](t, field.Prime{}, d.m, d.l, d.r)
		roundTrip[byte](t, field.GF256{}, d.m, d.l, d.r)
		roundTrip[float64](t, field.Real{Tol: 1e-6}, d.m, d.l, d.r)
	}
}

// TestStructuredEncodeMatchesMatrixProduct confirms the O((m+r)l) structured
// encoder produces exactly B_j·T for every device.
func TestStructuredEncodeMatchesMatrixProduct(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	for _, d := range []struct{ m, l, r int }{{4, 3, 2}, {9, 5, 4}, {6, 2, 6}} {
		s, err := New(d.m, d.r)
		if err != nil {
			t.Fatal(err)
		}
		a := matrix.Random(f, rng, d.m, d.l)
		random := matrix.Random(f, rng, d.r, d.l)
		enc, err := EncodeWithRandom(f, s, a, random)
		if err != nil {
			t.Fatal(err)
		}
		tm := matrix.VStack(a, random)
		for j := 0; j < s.Devices(); j++ {
			want := matrix.Mul(f, DeviceMatrix(f, s, j), tm)
			if !matrix.Equal[uint64](f, enc.Blocks[j], want) {
				t.Fatalf("m=%d r=%d device %d: structured encode != B_j·T", d.m, d.r, j)
			}
		}
	}
}

// TestDecodeMatchesGaussian cross-checks the m-subtraction decoder against
// full Gaussian elimination on B.
func TestDecodeMatchesGaussian(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	s, err := New(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(f, rng, 9, 6)
	x := matrix.RandomVec(f, rng, 6)
	enc, err := Encode(f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	y := enc.ComputeAll(f, x)

	fast, err := Decode(f, s, y)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := DecodeGaussian(f, CoefficientMatrix(f, s), s.M(), y)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.VecEqual(f, fast, slow) {
		t.Fatal("structured decode != Gaussian decode")
	}
}

func TestEncodeValidation(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	s, _ := New(4, 2)
	wrongRows := matrix.New[uint64](3, 5)
	if _, err := Encode(f, s, wrongRows, rng); err == nil {
		t.Error("Encode should reject a data matrix with the wrong row count")
	}
	if _, err := Encode(f, s, matrix.New[uint64](4, 0), rng); err == nil {
		t.Error("Encode should reject a data matrix with no columns")
	}
	a := matrix.Random(f, rng, 4, 5)
	badRandom := matrix.Random(f, rng, 1, 5)
	if _, err := EncodeWithRandom(f, s, a, badRandom); err == nil {
		t.Error("EncodeWithRandom should reject a random block with the wrong shape")
	}
}

func TestDecodeValidation(t *testing.T) {
	f := field.Prime{}
	s, _ := New(4, 2)
	if _, err := Decode(f, s, make([]uint64, 5)); err == nil {
		t.Error("Decode should reject a short intermediate vector")
	}
	b := CoefficientMatrix(f, s)
	if _, err := DecodeGaussian(f, b, 0, make([]uint64, 6)); err == nil {
		t.Error("DecodeGaussian should reject m = 0")
	}
	if _, err := DecodeGaussian(f, b, 4, make([]uint64, 3)); err == nil {
		t.Error("DecodeGaussian should reject a short intermediate vector")
	}
	if _, err := DecodeGaussian(f, matrix.New[uint64](2, 3), 1, make([]uint64, 2)); err == nil {
		t.Error("DecodeGaussian should reject a non-square B")
	}
}

func TestCheckAvailabilityRejectsSingular(t *testing.T) {
	f := field.Prime{}
	singular := matrix.FromRows([][]uint64{{1, 2}, {2, 4}})
	if err := CheckAvailability[uint64](f, singular); !errors.Is(err, ErrNotAvailable) {
		t.Fatalf("err = %v, want ErrNotAvailable", err)
	}
	if err := CheckAvailability[uint64](f, matrix.New[uint64](2, 3)); !errors.Is(err, ErrNotAvailable) {
		t.Fatalf("non-square err = %v, want ErrNotAvailable", err)
	}
	if err := CheckAvailability[uint64](f, matrix.Identity[uint64](f, 3)); err != nil {
		t.Fatalf("identity should be available: %v", err)
	}
}

// TestCheckSecurityFlagsInsecureDesigns feeds deliberately broken coefficient
// matrices to the verifier.
func TestCheckSecurityFlagsInsecureDesigns(t *testing.T) {
	f := field.Prime{}

	// Plain replication without random rows: B = E_m padded with a random
	// column block of zeros. Every device trivially leaks its rows of A.
	m, r := 4, 2
	naked := matrix.New[uint64](m+r, m+r)
	for p := 0; p < m+r; p++ {
		naked.Set(p, p%m, 1)
	}
	if err := CheckSecurity[uint64](f, naked, m, []int{2, 2, 2}); !errors.Is(err, ErrNotSecure) {
		t.Fatalf("replication err = %v, want ErrNotSecure", err)
	}

	// A device holding both A_p + R_q and R_q: their difference is A_p.
	s, _ := New(4, 2)
	b := CoefficientMatrix(f, s)
	// Rows 0..1 are the pure-random rows; row 2 is A_1 + R_1. Give one
	// device rows {0, 2} by regrouping counts: device 0 takes 3 rows.
	if err := CheckSecurity[uint64](f, b, 4, []int{3, 2, 1}); !errors.Is(err, ErrNotSecure) {
		t.Fatalf("regrouped err = %v, want ErrNotSecure", err)
	}

	// Row counts that do not cover B.
	if err := CheckSecurity[uint64](f, b, 4, []int{2, 2}); err == nil {
		t.Error("CheckSecurity should reject row counts that do not sum to B's rows")
	}
	if err := CheckSecurity[uint64](f, b, 4, []int{-1, 7}); err == nil {
		t.Error("CheckSecurity should reject negative row counts")
	}
	if err := CheckSecurity[uint64](f, b, 7, []int{3, 3}); err == nil {
		t.Error("CheckSecurity should reject m exceeding B's columns")
	}

	// Devices with zero rows are skipped, matching unselected edge devices.
	if err := CheckSecurity[uint64](f, b, 4, []int{2, 0, 2, 2, 0}); err != nil {
		t.Errorf("zero-row devices should be ignored: %v", err)
	}
}

// TestSecurityIsDecodeDual sanity-checks the whole point of the design: the
// user (holding all m+r values) decodes exactly, while every single device
// (holding at most r values) has zero information — formalized as the span
// condition checked by Theorem 3's verifier, and demonstrated here by the
// attack: no linear combination of one device's coded rows equals any
// standard basis vector of the data subspace.
func TestSecurityIsDecodeDual(t *testing.T) {
	f := field.GF256{}
	s, err := New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	lambda := DataSubspace(f, 6, 3)
	for j := 0; j < s.Devices(); j++ {
		bj := DeviceMatrix(f, s, j)
		for p := 0; p < 6; p++ {
			target := matrix.RowSlice(lambda, p, p+1)
			if matrix.SpanIntersectionDim(f, bj, target) != 0 {
				t.Fatalf("device %d can synthesize data row %d", j, p)
			}
		}
	}
}
