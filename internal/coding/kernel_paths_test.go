package coding

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// pipelineDiff runs the full encode → compute → decode pipeline (vector and
// batch) under every kernel dispatch configuration and checks each stage's
// output is bit-identical to the generic serial path. Shapes include m not
// divisible by r (a short last device) and single-row data.
func pipelineDiff[E comparable](t *testing.T, f field.Field[E]) {
	t.Helper()
	prevSpec := matrix.SetSpecializedKernels(true)
	prevPar := matrix.SetParallelKernels(true)
	prevThr := matrix.SetParallelThreshold(matrix.DefaultParallelThreshold)
	t.Cleanup(func() {
		matrix.SetSpecializedKernels(prevSpec)
		matrix.SetParallelKernels(prevPar)
		matrix.SetParallelThreshold(prevThr)
	})

	rng := rand.New(rand.NewPCG(101, 103))
	shapes := []struct{ m, r, l, n int }{
		{1, 1, 1, 1},
		{5, 2, 3, 2},
		{12, 5, 8, 4},
		{40, 7, 16, 3},
	}
	for _, sh := range shapes {
		s, err := New(sh.m, sh.r)
		if err != nil {
			t.Fatal(err)
		}
		a := matrix.Random(f, rng, sh.m, sh.l)
		random := matrix.Random(f, rng, sh.r, sh.l)
		x := matrix.RandomVec(f, rng, sh.l)
		xm := matrix.Random(f, rng, sh.l, sh.n)

		matrix.SetSpecializedKernels(false)
		matrix.SetParallelKernels(false)
		wantEnc, err := EncodeWithRandom(f, s, a, random)
		if err != nil {
			t.Fatal(err)
		}
		wantY := wantEnc.ComputeAll(f, x)
		wantAx, err := Decode(f, s, wantY)
		if err != nil {
			t.Fatal(err)
		}
		wantYB := wantEnc.ComputeAllBatch(f, xm)
		wantAxB, err := DecodeBatch(f, s, wantYB)
		if err != nil {
			t.Fatal(err)
		}

		modes := []struct {
			name      string
			spec, par bool
		}{
			{"specialized-serial", true, false},
			{"generic-parallel", false, true},
			{"specialized-parallel", true, true},
		}
		for _, mode := range modes {
			matrix.SetSpecializedKernels(mode.spec)
			matrix.SetParallelKernels(mode.par)
			matrix.SetParallelThreshold(1)
			label := fmt.Sprintf("%s m=%d r=%d l=%d", mode.name, sh.m, sh.r, sh.l)

			enc, err := EncodeWithRandom(f, s, a, random)
			if err != nil {
				t.Fatal(err)
			}
			for j := range enc.Blocks {
				for r := 0; r < enc.Blocks[j].Rows(); r++ {
					sameSlice(t, label+" encode block row", wantEnc.Blocks[j].Row(r), enc.Blocks[j].Row(r))
				}
			}
			y := enc.ComputeAll(f, x)
			sameSlice(t, label+" compute", wantY, y)
			ax, err := Decode(f, s, y)
			if err != nil {
				t.Fatal(err)
			}
			sameSlice(t, label+" decode", wantAx, ax)

			yb := enc.ComputeAllBatch(f, xm)
			for r := 0; r < yb.Rows(); r++ {
				sameSlice(t, label+" compute-batch", wantYB.Row(r), yb.Row(r))
			}
			axb, err := DecodeBatch(f, s, yb)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < axb.Rows(); r++ {
				sameSlice(t, label+" decode-batch", wantAxB.Row(r), axb.Row(r))
			}
		}
	}
}

func sameSlice[E comparable](t *testing.T, label string, want, got []E) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %v, want %v (bitwise)", label, i, got[i], want[i])
		}
	}
}

func TestPipelineKernelPathsPrime(t *testing.T) { pipelineDiff[uint64](t, field.Prime{}) }

func TestPipelineKernelPathsGF256(t *testing.T) { pipelineDiff[byte](t, field.GF256{}) }

func TestPipelineKernelPathsReal(t *testing.T) { pipelineDiff[float64](t, field.Real{}) }
