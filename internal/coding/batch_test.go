package coding

import (
	"testing"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

func TestBatchRoundTrip(t *testing.T) {
	run := func(t *testing.T, m, l, r, n int) {
		t.Helper()
		f := field.Prime{}
		rng := testRNG()
		s, err := New(m, r)
		if err != nil {
			t.Fatal(err)
		}
		a := matrix.Random[uint64](f, rng, m, l)
		x := matrix.Random[uint64](f, rng, l, n)
		enc, err := Encode[uint64](f, s, a, rng)
		if err != nil {
			t.Fatal(err)
		}
		y := enc.ComputeAllBatch(f, x)
		got, err := DecodeBatch[uint64](f, s, y)
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.Mul[uint64](f, a, x)
		if !matrix.Equal[uint64](f, got, want) {
			t.Fatalf("m=%d l=%d r=%d n=%d: DecodeBatch != A·X", m, l, r, n)
		}
	}
	for _, d := range []struct{ m, l, r, n int }{
		{4, 3, 2, 1},
		{6, 5, 3, 4},
		{9, 4, 9, 7},
		{12, 8, 5, 2},
	} {
		run(t, d.m, d.l, d.r, d.n)
	}
}

// TestBatchAgreesWithColumnwiseDecode: feeding single columns through the
// vector path must match the batch path column by column.
func TestBatchAgreesWithColumnwiseDecode(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	s, err := New(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, 7, 5)
	x := matrix.Random[uint64](f, rng, 5, 3)
	enc, err := Encode[uint64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := DecodeBatch[uint64](f, s, enc.ComputeAllBatch(f, x))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < x.Cols(); c++ {
		col := make([]uint64, x.Rows())
		for i := range col {
			col[i] = x.At(i, c)
		}
		y := enc.ComputeAll(f, col)
		single, err := Decode[uint64](f, s, y)
		if err != nil {
			t.Fatal(err)
		}
		for p := range single {
			if single[p] != batch.At(p, c) {
				t.Fatalf("column %d row %d: vector path %d != batch path %d", c, p, single[p], batch.At(p, c))
			}
		}
	}
}

func TestDecodeBatchValidation(t *testing.T) {
	f := field.Prime{}
	s, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBatch[uint64](f, s, matrix.New[uint64](5, 3)); err == nil {
		t.Fatal("wrong intermediate row count should be rejected")
	}
}

func TestComputeDeviceBatchShape(t *testing.T) {
	f := field.GF256{}
	rng := testRNG()
	s, err := New(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[byte](f, rng, 6, 4)
	x := matrix.Random[byte](f, rng, 4, 5)
	enc, err := Encode[byte](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < s.Devices(); j++ {
		out := enc.ComputeDeviceBatch(f, j, x)
		if out.Rows() != s.RowsOn(j) || out.Cols() != 5 {
			t.Fatalf("device %d batch result is %dx%d, want %dx5", j, out.Rows(), out.Cols(), s.RowsOn(j))
		}
	}
}
