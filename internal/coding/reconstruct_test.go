package coding

import (
	"testing"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

func TestReconstructRoundTrip(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	for _, shape := range []struct{ m, l, r int }{
		{4, 3, 2}, {8, 5, 4}, {9, 2, 3}, {16, 7, 5}, {5, 4, 5},
	} {
		scheme, err := New(shape.m, shape.r)
		if err != nil {
			t.Fatal(err)
		}
		a := matrix.New[uint64](shape.m, shape.l)
		for i := 0; i < shape.m; i++ {
			for j := 0; j < shape.l; j++ {
				a.Set(i, j, f.Rand(rng))
			}
		}
		enc, err := Encode[uint64](f, scheme, a, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Reconstruct[uint64](f, enc)
		if err != nil {
			t.Fatalf("m=%d r=%d: %v", shape.m, shape.r, err)
		}
		if got.Rows() != shape.m || got.Cols() != shape.l {
			t.Fatalf("m=%d r=%d: reconstructed %dx%d", shape.m, shape.r, got.Rows(), got.Cols())
		}
		for i := 0; i < shape.m; i++ {
			for j := 0; j < shape.l; j++ {
				if got.At(i, j) != a.At(i, j) {
					t.Fatalf("m=%d r=%d: A[%d][%d] = %d, want %d", shape.m, shape.r, i, j, got.At(i, j), a.At(i, j))
				}
			}
		}
	}
}

func TestReconstructRejectsIncompleteEncodings(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	scheme, _ := New(8, 4)
	a := matrix.New[uint64](8, 3)
	for i := 0; i < 8; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, f.Rand(rng))
		}
	}
	enc, err := Encode[uint64](f, scheme, a, rng)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Reconstruct[uint64](f, nil); err == nil {
		t.Error("nil encoding accepted")
	}
	noRandom := *enc
	noRandom.Random = nil
	if _, err := Reconstruct[uint64](f, &noRandom); err == nil {
		t.Error("encoding without its random rows accepted")
	}
	short := *enc
	short.Blocks = short.Blocks[:len(short.Blocks)-1]
	if _, err := Reconstruct[uint64](f, &short); err == nil {
		t.Error("encoding missing a block accepted")
	}
}
