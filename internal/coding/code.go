package coding

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// Code is the scheme-agnostic contract every engine-selectable coding design
// satisfies. The execution layers (engine, fleet, sim, transport, the scec
// facades) traffic only in this interface, so the structured Eq. (8) design
// and the t-collusion Cauchy design — and any future scheme — plug into the
// same query, provisioning, repair, and reshape paths.
//
// A Code fixes the shape of one deployment: m confidential rows are encoded
// into m+r coded rows laid out across Devices() devices (device j holds the
// global row range RowRange(j)), every device multiplies its block by the
// input, and Decode recovers the exact product from the concatenated
// intermediate results. T() is the security level: any coalition of up to
// T() honest-but-curious devices learns nothing about A (Definition 2
// generalized to coalitions). K() is the recoverability threshold: the
// minimum number of devices whose responses suffice to decode. Both designs
// here use a square coefficient matrix, so every device is needed
// (K() == Devices()); a future rateless/staircase design would return less.
type Code[E comparable] interface {
	// Name identifies the design ("eq8", "collusion") for metrics and logs.
	Name() string
	// M is the number of confidential data rows.
	M() int
	// R is the number of uniformly random rows encoded alongside them.
	R() int
	// T is the collusion threshold: coalitions of up to T devices learn
	// nothing about A.
	T() int
	// K is the recoverability threshold: how many device responses suffice
	// to decode. Equal to Devices() for square-coefficient designs.
	K() int
	// Devices is the number of participating devices (coded blocks).
	Devices() int
	// RowRange returns the half-open global row range [from, to) of B held
	// by 0-based device j.
	RowRange(j int) (from, to int)
	// RowsOn returns V(B_j), the number of coded rows device j holds.
	RowsOn(j int) int
	// DeviceCoefficients materializes device j's coefficient block B_j
	// (RowsOn(j) × (M+R)), for the attack harness and the verifiers.
	DeviceCoefficients(j int) *matrix.Dense[E]
	// Encode produces every device's coded block with fresh randomness from
	// rng. The returned Encoding carries this Code in its Code field.
	Encode(a *matrix.Dense[E], rng *rand.Rand) (*Encoding[E], error)
	// Decode recovers A·x from the concatenated intermediate results
	// y = B·T·x (device order, m+r values).
	Decode(y []E) ([]E, error)
	// DecodeBatch recovers A·X from the stacked intermediate block
	// Y = B·T·X ((m+r)×n), the batch generalization of Decode.
	DecodeBatch(y *matrix.Dense[E]) (*matrix.Dense[E], error)
	// Verify re-establishes the availability (Definition 1) and security
	// (Definition 2, generalized to T-coalitions) conditions for this
	// concrete code.
	Verify() error
}

// StructuredCode binds the field-independent Eq. (8) Scheme to a concrete
// field, satisfying Code. It delegates every operation to the structured
// package functions, so its numerics are bit-identical to the pre-interface
// paths: encode is O((m+r)·l) additions, decode is m subtractions.
type StructuredCode[E comparable] struct {
	f field.Field[E]
	s *Scheme
}

// NewStructured builds the Eq. (8) code over f for m data rows and r random
// rows; see New for the admissible range.
func NewStructured[E comparable](f field.Field[E], m, r int) (*StructuredCode[E], error) {
	s, err := New(m, r)
	if err != nil {
		return nil, err
	}
	return &StructuredCode[E]{f: f, s: s}, nil
}

// BindScheme wraps an existing structured Scheme as a Code over f.
func BindScheme[E comparable](f field.Field[E], s *Scheme) *StructuredCode[E] {
	return &StructuredCode[E]{f: f, s: s}
}

// Name implements Code.
func (c *StructuredCode[E]) Name() string { return "eq8" }

// M implements Code.
func (c *StructuredCode[E]) M() int { return c.s.M() }

// R implements Code.
func (c *StructuredCode[E]) R() int { return c.s.R() }

// T implements Code: the Eq. (8) structure defends against single devices.
func (c *StructuredCode[E]) T() int { return 1 }

// K implements Code: B is square, every device's rows are needed.
func (c *StructuredCode[E]) K() int { return c.s.Devices() }

// Devices implements Code.
func (c *StructuredCode[E]) Devices() int { return c.s.Devices() }

// RowRange implements Code.
func (c *StructuredCode[E]) RowRange(j int) (from, to int) { return c.s.RowRange(j) }

// RowsOn implements Code.
func (c *StructuredCode[E]) RowsOn(j int) int { return c.s.RowsOn(j) }

// Scheme exposes the underlying structured scheme for callers that need the
// Eq. (8)-specific fast paths (Reconstruct's subtraction shortcut, the CLI
// reports).
func (c *StructuredCode[E]) Scheme() *Scheme { return c.s }

// DeviceCoefficients implements Code.
func (c *StructuredCode[E]) DeviceCoefficients(j int) *matrix.Dense[E] {
	return DeviceMatrix(c.f, c.s, j)
}

// Encode implements Code via the structured encoder.
func (c *StructuredCode[E]) Encode(a *matrix.Dense[E], rng *rand.Rand) (*Encoding[E], error) {
	return Encode(c.f, c.s, a, rng)
}

// Decode implements Code via the m-subtraction decoder.
func (c *StructuredCode[E]) Decode(y []E) ([]E, error) {
	return Decode(c.f, c.s, y)
}

// DecodeBatch implements Code via the column-wise m-subtraction decoder.
func (c *StructuredCode[E]) DecodeBatch(y *matrix.Dense[E]) (*matrix.Dense[E], error) {
	return DecodeBatch(c.f, c.s, y)
}

// Verify implements Code via the Theorem 3 checks.
func (c *StructuredCode[E]) Verify() error { return Verify(c.f, c.s) }

// BalancedCollusionRows spreads m+r coded rows over n devices as evenly as
// possible and checks the t-collusion capacity condition (the t largest
// per-device counts must sum to at most r). It is the row layout a reshape
// uses when the adaptive control plane re-deploys a collusion code at a new
// r over a fixed device count.
func BalancedCollusionRows(m, r, t, n int) ([]int, error) {
	if m < 1 || r < 1 || t < 1 || n < 1 {
		return nil, fmt.Errorf("coding: invalid collusion layout m=%d r=%d t=%d n=%d", m, r, t, n)
	}
	total := m + r
	if n > total {
		return nil, fmt.Errorf("coding: %d devices for %d coded rows (every device needs a row)", n, total)
	}
	rows := make([]int, n)
	base, extra := total/n, total%n
	for j := range rows {
		rows[j] = base
		if j < extra {
			rows[j]++
		}
	}
	if cap := sumOfLargest(rows, t); cap > r {
		return nil, fmt.Errorf("coding: balanced layout infeasible: %d colluding devices hold %d rows > r = %d", t, cap, r)
	}
	return rows, nil
}

// Reshaped builds a code of the same kind as proto for a new (m, r, device
// count) — the adaptive control plane's reshape primitive. The structured
// code's device count is implied by (m, r) and must match devices; the
// collusion code keeps proto's threshold t and re-balances the row layout,
// failing (so the swap degrades to a pause) when no t-secure layout exists
// at the requested shape.
func Reshaped[E comparable](f field.Field[E], proto Code[E], m, r, devices int) (Code[E], error) {
	switch c := proto.(type) {
	case *StructuredCode[E]:
		code, err := NewStructured[E](f, m, r)
		if err != nil {
			return nil, err
		}
		if code.Devices() != devices {
			return nil, fmt.Errorf("coding: structured reshape at r=%d needs %d devices, have %d", r, code.Devices(), devices)
		}
		return code, nil
	case *CollusionScheme[E]:
		rows, err := BalancedCollusionRows(m, r, c.T(), devices)
		if err != nil {
			return nil, err
		}
		return NewCollusion(f, m, r, c.T(), rows)
	default:
		return nil, errors.New("coding: cannot reshape an unknown code kind")
	}
}
