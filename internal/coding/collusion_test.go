package coding

import (
	"errors"
	"testing"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

func TestUniformCollusionRows(t *testing.T) {
	rows, r, err := UniformCollusionRows(10, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r != 6 {
		t.Fatalf("r = %d, want t·w = 6", r)
	}
	sum := 0
	for _, v := range rows {
		if v > 3 {
			t.Fatalf("device row count %d exceeds w = 3", v)
		}
		sum += v
	}
	if sum != 16 {
		t.Fatalf("rows sum to %d, want m+r = 16", sum)
	}

	if _, _, err := UniformCollusionRows(0, 1, 1); err == nil {
		t.Error("m = 0 should be rejected")
	}
	// Because r = t·w, the allocation always spans at least two devices: the
	// total m + t·w strictly exceeds the per-device cap w.
	rows, _, err = UniformCollusionRows(1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("expected at least two devices, got %v", rows)
	}
}

func TestNewCollusionValidation(t *testing.T) {
	f := field.Prime{}
	// Valid: m=6, r=4, t=2, rows 2+2+2+2+2 = 10 = m+r; any 2 devices hold 4 ≤ r.
	if _, err := NewCollusion[uint64](f, 6, 4, 2, []int{2, 2, 2, 2, 2}); err != nil {
		t.Fatalf("valid construction rejected: %v", err)
	}
	// Capacity violation: two devices can pool 3+3 = 6 > r = 4.
	if _, err := NewCollusion[uint64](f, 6, 4, 2, []int{3, 3, 2, 2}); err == nil {
		t.Error("capacity violation should be rejected")
	}
	if _, err := NewCollusion[uint64](f, 0, 4, 2, []int{2, 2}); err == nil {
		t.Error("m = 0 should be rejected")
	}
	if _, err := NewCollusion[uint64](f, 6, 0, 1, []int{3, 3}); err == nil {
		t.Error("r = 0 should be rejected")
	}
	if _, err := NewCollusion[uint64](f, 6, 4, 0, []int{2, 2, 2, 2, 2}); err == nil {
		t.Error("t = 0 should be rejected")
	}
	if _, err := NewCollusion[uint64](f, 6, 4, 2, []int{2, 2, 2, 2}); err == nil {
		t.Error("row-count sum mismatch should be rejected")
	}
	if _, err := NewCollusion[uint64](f, 6, 4, 2, []int{0, 2, 2, 2, 2, 2}); err == nil {
		t.Error("zero-row device should be rejected")
	}
}

func TestNewCollusionSmallFieldNodeExhaustion(t *testing.T) {
	// GF(256) runs out of distinct Cauchy nodes when m + 2r > 256.
	f := field.GF256{}
	rows, r, err := UniformCollusionRows(250, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCollusion[byte](f, 250, r, 2, rows); err == nil {
		t.Fatal("expected node-exhaustion error over GF(256)")
	}
	// A small instance fits comfortably.
	rows, r, err = UniformCollusionRows(20, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCollusion[byte](f, 20, r, 2, rows); err != nil {
		t.Fatalf("small GF(256) instance rejected: %v", err)
	}
}

func TestCollusionVerifyAndRoundTrip(t *testing.T) {
	run := func(t *testing.T, name string, verify func() error, encodeDecode func() error) {
		t.Helper()
		if err := verify(); err != nil {
			t.Fatalf("%s: verify: %v", name, err)
		}
		if err := encodeDecode(); err != nil {
			t.Fatalf("%s: round trip: %v", name, err)
		}
	}

	t.Run("prime", func(t *testing.T) {
		f := field.Prime{}
		rng := testRNG()
		rows, r, err := UniformCollusionRows(12, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewCollusion[uint64](f, 12, r, 2, rows)
		if err != nil {
			t.Fatal(err)
		}
		run(t, "prime", s.Verify, func() error {
			a := matrix.Random(f, rng, 12, 5)
			x := matrix.RandomVec(f, rng, 5)
			enc, err := s.Encode(a, rng)
			if err != nil {
				return err
			}
			got, err := s.Decode(enc.ComputeAll(f, x))
			if err != nil {
				return err
			}
			if !matrix.VecEqual(f, got, matrix.MulVec(f, a, x)) {
				return errors.New("decode mismatch")
			}
			return nil
		})
	})

	t.Run("gf256", func(t *testing.T) {
		f := field.GF256{}
		rng := testRNG()
		rows, r, err := UniformCollusionRows(9, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewCollusion[byte](f, 9, r, 3, rows)
		if err != nil {
			t.Fatal(err)
		}
		run(t, "gf256", s.Verify, func() error {
			a := matrix.Random(f, rng, 9, 4)
			x := matrix.RandomVec(f, rng, 4)
			enc, err := s.Encode(a, rng)
			if err != nil {
				return err
			}
			got, err := s.Decode(enc.ComputeAll(f, x))
			if err != nil {
				return err
			}
			if !matrix.VecEqual(f, got, matrix.MulVec(f, a, x)) {
				return errors.New("decode mismatch")
			}
			return nil
		})
	})
}

// TestStructuredSchemeFailsUnderCollusion demonstrates why the extension
// exists: pooling device 1 (pure random rows) with device 2 (data + random)
// of the Eq. (8) design immediately leaks rows of A, whereas the Cauchy
// design survives the same pooling.
func TestStructuredSchemeFailsUnderCollusion(t *testing.T) {
	f := field.Prime{}
	s, err := New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := CoefficientMatrix(f, s)
	lambda := DataSubspace(f, 6, 3)

	from0, to0 := s.RowRange(0)
	from1, to1 := s.RowRange(1)
	pooled := matrix.VStack(matrix.RowSlice(b, from0, to0), matrix.RowSlice(b, from1, to1))
	if dim := matrix.SpanIntersectionDim(f, pooled, lambda); dim == 0 {
		t.Fatal("expected the Eq. (8) design to leak under 2-collusion")
	}

	rows, r, err := UniformCollusionRows(6, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCollusion[uint64](f, 6, r, 2, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Verify(); err != nil {
		t.Fatalf("Cauchy design should survive 2-collusion: %v", err)
	}
}

func TestCollusionRowRangePanics(t *testing.T) {
	f := field.Prime{}
	rows, r, err := UniformCollusionRows(6, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCollusion[uint64](f, 6, r, 2, rows)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.RowRange(s.Devices())
}

func TestCollusionEncodeValidation(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	rows, r, err := UniformCollusionRows(6, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCollusion[uint64](f, 6, r, 2, rows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Encode(matrix.New[uint64](5, 3), rng); err == nil {
		t.Fatal("Encode should reject wrong-shaped data")
	}
}

func TestSumOfLargest(t *testing.T) {
	cases := []struct {
		rows []int
		t    int
		want int
	}{
		{[]int{1, 5, 3}, 1, 5},
		{[]int{1, 5, 3}, 2, 8},
		{[]int{1, 5, 3}, 7, 9},
		{[]int{4}, 1, 4},
	}
	for _, tc := range cases {
		if got := sumOfLargest(tc.rows, tc.t); got != tc.want {
			t.Errorf("sumOfLargest(%v, %d) = %d, want %d", tc.rows, tc.t, got, tc.want)
		}
	}
}
