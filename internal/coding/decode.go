package coding

import (
	"fmt"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// Decode is the Original Result Recovery step (§IV-B): given the
// concatenated intermediate results y = B·T·x (device order, so the first r
// values are the random projections R·x), it recovers Ax with exactly m
// subtractions:
//
//	(Ax)_p = y_{r+p} − y_{p mod r}        (0-based p)
//
// matching the paper's 1-based identity
// A_p·x = (BTx)_{r+p} − (BTx)_{p−(⌈p/r⌉−1)r}. This is the low-complexity
// decoder the structured B was designed for; no elimination is needed.
func Decode[E comparable](f field.Field[E], s *Scheme, y []E) ([]E, error) {
	if len(y) != s.m+s.r {
		return nil, fmt.Errorf("coding: got %d intermediate values, want m+r = %d", len(y), s.m+s.r)
	}
	// For p in [b, b+r) with b a multiple of r, p mod r = p − b, so the m
	// subtractions decompose into ⌈m/r⌉ vector subtractions of y's random
	// prefix from r-sized chunks of its data suffix — no per-element modulo,
	// and each chunk runs the field-specialized subtract kernel. Decode is
	// pure subtraction; this keeps it memory-bound.
	ax := make([]E, s.m)
	data := y[s.r:]
	for b := 0; b < s.m; b += s.r {
		n := min(s.r, s.m-b)
		matrix.VecSubInto(f, ax[b:b+n], data[b:b+n], y[:n])
	}
	return ax, nil
}

// DecodeGaussian is the general decoder of the system model (§II-A): for any
// full-rank coefficient matrix b (not only Eq. (8)), it solves B·(Tx) = y
// by Gaussian elimination and returns the first m entries of Tx, i.e. Ax.
// It returns matrix.ErrSingular when b violates the availability condition.
//
// It costs O((m+r)³); the structured Decode above is the production path and
// the two are cross-checked in the test suite.
func DecodeGaussian[E comparable](f field.Field[E], b *matrix.Dense[E], m int, y []E) ([]E, error) {
	n := b.Rows()
	if b.Cols() != n {
		return nil, fmt.Errorf("coding: coefficient matrix is %dx%d, want square", b.Rows(), b.Cols())
	}
	if m < 1 || m > n {
		return nil, fmt.Errorf("coding: m = %d outside [1, %d]", m, n)
	}
	if len(y) != n {
		return nil, fmt.Errorf("coding: got %d intermediate values, want %d", len(y), n)
	}
	tx, err := matrix.Solve(f, b, y)
	if err != nil {
		return nil, err
	}
	return tx[:m], nil
}
