// Package attack implements the passive-adversary harness for secure coded
// edge computing. The paper's threat model (§II-B) is a non-colluding,
// honest-but-curious edge device that keeps its coded rows B_j·T and tries
// to learn a linear combination of the rows of the confidential matrix A.
//
// The harness has three levels of rigor:
//
//   - Leakage: the algebraic test — the dimension of L(B_j) ∩ L(λ̄), which is
//     exactly Definition 2's condition (0 means information-theoretically
//     secure against that device).
//   - Exploit: a constructive attack — when leakage exists it produces the
//     actual coefficient vector the adversary applies to its coded rows and
//     the combination of A's rows it thereby recovers.
//   - ExhaustiveITS: a from-first-principles entropy check over GF(256) for
//     tiny instances: enumerate every (A, R) pair, bucket the device's
//     observation, and confirm the posterior over A given the observation is
//     exactly uniform (H(A | B_j·T) = H(A) by counting).
package attack

import (
	"fmt"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// Leakage returns dim(L(bj) ∩ L(λ̄)): the number of independent linear
// combinations of A's rows the device holding coefficient rows bj can
// compute. bj has m+r columns of which the first m weight data rows. Zero
// means the device satisfies Definition 2.
func Leakage[E comparable](f field.Field[E], bj *matrix.Dense[E], m int) int {
	r := bj.Cols() - m
	if r < 0 {
		panic(fmt.Sprintf("attack: m = %d exceeds %d coefficient columns", m, bj.Cols()))
	}
	return matrix.SpanIntersectionDim(f, bj, coding.DataSubspace(f, m, r))
}

// Exploit mounts the constructive attack against a device holding
// coefficient rows bj (with m data columns first). If the device leaks, it
// returns ok=true together with:
//
//   - rowCoeffs: the coefficients α the adversary applies to its own coded
//     rows, and
//   - dataCombo: the resulting combination of A's rows, i.e. α·B_j restricted
//     to the data columns, which is non-zero.
//
// so that α·(B_j·T) = dataCombo·A — a concrete confidentiality breach. If
// the device is secure, ok is false.
//
// The construction: a combination lies in the data subspace exactly when it
// cancels the random columns, so α ranges over the left null space of the
// random block; any α whose data-column image is non-zero is a break.
func Exploit[E comparable](f field.Field[E], bj *matrix.Dense[E], m int) (rowCoeffs, dataCombo []E, ok bool) {
	r := bj.Cols() - m
	if r < 0 {
		panic(fmt.Sprintf("attack: m = %d exceeds %d coefficient columns", m, bj.Cols()))
	}
	if bj.Rows() == 0 {
		return nil, nil, false
	}
	randomBlock := matrix.RowSliceCols(bj, m, m+r)
	dataBlock := matrix.RowSliceCols(bj, 0, m)
	// Left null vectors of the random block = right null of its transpose.
	basis := matrix.NullSpace(f, matrix.Transpose(randomBlock))
	for b := 0; b < basis.Rows(); b++ {
		alpha := basis.Row(b)
		combo := matrix.MulVec(f, matrix.Transpose(dataBlock), alpha)
		for _, v := range combo {
			if !f.IsZero(v) {
				return alpha, combo, true
			}
		}
	}
	return nil, nil, false
}

// VerifyExploit replays an exploit against concrete data: it checks that
// applying rowCoeffs to the device's coded block equals dataCombo applied to
// A, confirming the attack actually recovers information about A. Tests use
// it to keep Exploit honest.
func VerifyExploit[E comparable](f field.Field[E], codedBlock, a *matrix.Dense[E], rowCoeffs, dataCombo []E) error {
	if len(rowCoeffs) != codedBlock.Rows() {
		return fmt.Errorf("attack: %d coefficients for %d coded rows", len(rowCoeffs), codedBlock.Rows())
	}
	if len(dataCombo) != a.Rows() {
		return fmt.Errorf("attack: %d data weights for %d data rows", len(dataCombo), a.Rows())
	}
	got := matrix.MulVec(f, matrix.Transpose(codedBlock), rowCoeffs)
	want := matrix.MulVec(f, matrix.Transpose(a), dataCombo)
	if !matrix.VecEqual(f, got, want) {
		return fmt.Errorf("attack: exploit replay mismatch")
	}
	return nil
}

// AuditScheme runs Leakage against every device of the structured Eq. (8)
// scheme and returns the per-device leak dimensions (all zeros for a sound
// construction). It is the attack-side mirror of coding.Verify.
func AuditScheme[E comparable](f field.Field[E], s *coding.Scheme) []int {
	leaks := make([]int, s.Devices())
	for j := range leaks {
		leaks[j] = Leakage(f, coding.DeviceMatrix(f, s, j), s.M())
	}
	return leaks
}
