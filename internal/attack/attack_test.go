package attack

import (
	"math/rand/v2"
	"testing"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(5, 8)) }

func TestAuditSchemeFindsNoLeaks(t *testing.T) {
	f := field.Prime{}
	for m := 1; m <= 15; m++ {
		for r := 1; r <= m; r++ {
			s, err := coding.New(m, r)
			if err != nil {
				t.Fatal(err)
			}
			for j, leak := range AuditScheme[uint64](f, s) {
				if leak != 0 {
					t.Fatalf("m=%d r=%d: device %d leaks %d dimensions", m, r, j, leak)
				}
			}
		}
	}
}

func TestLeakageOnNakedReplication(t *testing.T) {
	// A device storing a raw data row has coefficient rows inside λ̄ itself.
	f := field.Prime{}
	m, r := 3, 2
	bj := matrix.New[uint64](1, m+r)
	bj.Set(0, 1, 1) // the device holds A_2 verbatim
	if got := Leakage(f, bj, m); got != 1 {
		t.Fatalf("Leakage = %d, want 1", got)
	}
}

func TestExploitAgainstBrokenScheme(t *testing.T) {
	// Device holds both A_0 + R_0 and R_0: subtracting recovers A_0.
	f := field.Prime{}
	m, r := 2, 1
	bj := matrix.FromRows([][]uint64{
		{1, 0, 1}, // A_0 + R_0
		{0, 0, 1}, // R_0
	})
	alpha, combo, ok := Exploit(f, bj, m)
	if !ok {
		t.Fatal("Exploit should succeed against the broken grouping")
	}

	// Replay the exploit on real data to confirm the breach.
	rng := testRNG()
	a := matrix.Random(f, rng, m, 4)
	random := matrix.Random(f, rng, r, 4)
	tm := matrix.VStack(a, random)
	codedBlock := matrix.Mul(f, bj, tm)
	if err := VerifyExploit(f, codedBlock, a, alpha, combo); err != nil {
		t.Fatalf("exploit replay: %v", err)
	}

	// The recovered combination must involve A non-trivially.
	nonzero := false
	for _, v := range combo {
		if !f.IsZero(v) {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("exploit returned the zero combination")
	}
}

func TestExploitFailsAgainstSoundScheme(t *testing.T) {
	f := field.Prime{}
	s, err := coding.New(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < s.Devices(); j++ {
		if _, _, ok := Exploit(f, coding.DeviceMatrix(f, s, j), s.M()); ok {
			t.Fatalf("device %d exploited despite Theorem 3", j)
		}
	}
}

func TestExploitEmptyDevice(t *testing.T) {
	f := field.Prime{}
	if _, _, ok := Exploit(f, matrix.New[uint64](0, 5), 3); ok {
		t.Fatal("an unselected device cannot leak")
	}
}

func TestVerifyExploitRejectsBogusClaims(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	a := matrix.Random(f, rng, 2, 3)
	coded := matrix.Random(f, rng, 2, 3)
	if err := VerifyExploit(f, coded, a, []uint64{1}, []uint64{1, 0}); err == nil {
		t.Error("length mismatch should be rejected")
	}
	if err := VerifyExploit(f, coded, a, []uint64{1, 0}, []uint64{1}); err == nil {
		t.Error("data weight length mismatch should be rejected")
	}
	if err := VerifyExploit(f, coded, a, []uint64{1, 0}, []uint64{1, 0}); err == nil {
		t.Error("a random 'exploit' should not verify")
	}
}

func TestExhaustiveITSSoundScheme(t *testing.T) {
	f := field.GF256{}
	s, err := coding.New(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := coding.CoefficientMatrix(f, s)
	rows := []int{1, 1}
	if err := ExhaustiveITS(b, 1, rows); err != nil {
		t.Fatalf("m=1 r=1: %v", err)
	}
}

func TestExhaustiveITSSoundSchemeWide(t *testing.T) {
	if testing.Short() {
		t.Skip("16.7M-case enumeration")
	}
	f := field.GF256{}
	s, err := coding.New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := coding.CoefficientMatrix(f, s)
	if err := ExhaustiveITS(b, 2, []int{1, 1, 1}); err != nil {
		t.Fatalf("m=2 r=1: %v", err)
	}
}

func TestExhaustiveITSDetectsLeak(t *testing.T) {
	// Device 0 stores A_0 in the clear; its observation is A-dependent.
	b := matrix.FromRows([][]byte{
		{1, 0}, // A_0 verbatim
		{0, 1}, // R_0
	})
	if err := ExhaustiveITS(b, 1, []int{1, 1}); err == nil {
		t.Fatal("expected the exhaustive check to flag the plaintext row")
	}
}

func TestExhaustiveITSGuards(t *testing.T) {
	b := matrix.New[byte](4, 4)
	if err := ExhaustiveITS(b, 5, []int{2, 2}); err == nil {
		t.Error("m exceeding columns should be rejected")
	}
	if err := ExhaustiveITS(b, 2, []int{2, 1}); err == nil {
		t.Error("row-count mismatch should be rejected")
	}
	if err := ExhaustiveITS(b, 2, []int{4, 0}); err == nil {
		t.Error("more than 3 rows per device should be rejected")
	}
	big := matrix.New[byte](8, 8)
	if err := ExhaustiveITS(big, 4, []int{2, 2, 2, 2}); err == nil {
		t.Error("over-budget enumeration should be rejected")
	}
}

func TestLeakagePanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Leakage(field.Prime{}, matrix.New[uint64](1, 2), 5)
}
