package attack

import (
	"fmt"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// maxEnumeration bounds the (A, R) joint enumeration size of ExhaustiveITS.
const maxEnumeration = 1 << 25

// ExhaustiveITS verifies Definition 2 from first principles, by counting,
// over GF(256) with column dimension l = 1: for the coefficient matrix b
// (m data columns first, per-device row counts in rows) it enumerates every
// data vector A ∈ GF(256)^m and every random vector R ∈ GF(256)^r, buckets
// each device's observation B_j·T, and demands that the observation
// histogram is identical for every value of A. That is exactly
// H(A | B_j·T) = H(A): the device's view is statistically independent of
// the secret.
//
// It returns nil when every device's view is independent of A, and an error
// naming the first device whose posterior is skewed. Instances must satisfy
// 256^(m+r) ≤ 2^25 and at most 3 coded rows per device; the algebraic
// Leakage check covers everything larger.
func ExhaustiveITS(b *matrix.Dense[byte], m int, rows []int) error {
	f := field.GF256{}
	n := b.Rows()
	r := b.Cols() - m
	if r < 0 {
		return fmt.Errorf("attack: m = %d exceeds %d coefficient columns", m, b.Cols())
	}
	sum := 0
	for j, v := range rows {
		if v < 0 || v > 3 {
			return fmt.Errorf("attack: device %d holds %d rows; exhaustive check supports 0..3", j, v)
		}
		sum += v
	}
	if sum != n {
		return fmt.Errorf("attack: device rows sum to %d, want %d", sum, n)
	}
	// Compare in exponent space: 256^(m+r) ≤ maxEnumeration ⟺ 8(m+r) ≤ 25.
	// Computing pow256 first would overflow int64 for m+r ≥ 8.
	if 8*(m+r) > 25 {
		return fmt.Errorf("attack: 256^(m+r) = 256^%d exceeds the enumeration budget", m+r)
	}

	// Precompute each device's row range.
	starts := make([]int, len(rows)+1)
	for j, v := range rows {
		starts[j+1] = starts[j] + v
	}

	t := make([]byte, n) // T's single column: data then random entries
	nA, nR := pow256(m), pow256(r)
	reference := make([]map[uint32]int, len(rows))
	hist := make([]map[uint32]int, len(rows))

	for aIdx := 0; aIdx < nA; aIdx++ {
		fillDigits(t[:m], aIdx)
		for j := range hist {
			hist[j] = make(map[uint32]int)
		}
		for rIdx := 0; rIdx < nR; rIdx++ {
			fillDigits(t[m:], rIdx)
			for j, v := range rows {
				if v == 0 {
					continue
				}
				var obs uint32
				for g := starts[j]; g < starts[j+1]; g++ {
					var acc byte
					for c := 0; c < n; c++ {
						acc = f.Add(acc, f.Mul(b.At(g, c), t[c]))
					}
					obs = obs<<8 | uint32(acc)
				}
				hist[j][obs]++
			}
		}
		if aIdx == 0 {
			for j := range hist {
				reference[j] = hist[j]
			}
			continue
		}
		for j := range hist {
			if rows[j] == 0 {
				continue
			}
			if err := sameHistogram(reference[j], hist[j]); err != nil {
				return fmt.Errorf("attack: device %d view depends on A (a=%d): %w", j, aIdx, err)
			}
		}
	}
	return nil
}

// pow256 returns 256^e for small e.
func pow256(e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= 256
	}
	return p
}

// fillDigits writes idx base-256 into dst, least-significant digit first.
func fillDigits(dst []byte, idx int) {
	for i := range dst {
		dst[i] = byte(idx)
		idx >>= 8
	}
}

func sameHistogram(a, b map[uint32]int) error {
	if len(a) != len(b) {
		return fmt.Errorf("observation supports differ: %d vs %d", len(a), len(b))
	}
	for k, va := range a {
		if vb, okB := b[k]; !okB || vb != va {
			return fmt.Errorf("observation %#x occurs %d vs %d times", k, va, vb)
		}
	}
	return nil
}
