package quant

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(31, 37)) }

func mustQuantizer(t *testing.T, bits uint) Quantizer {
	t.Helper()
	q, err := NewQuantizer(bits)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewQuantizerValidation(t *testing.T) {
	if _, err := NewQuantizer(0); err == nil {
		t.Error("0 fractional bits should be rejected")
	}
	if _, err := NewQuantizer(29); err == nil {
		t.Error("29 fractional bits should be rejected")
	}
	if _, err := NewQuantizer(16); err != nil {
		t.Errorf("16 bits rejected: %v", err)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	q := mustQuantizer(t, 16)
	for _, v := range []float64{0, 1, -1, 0.5, -0.5, 3.14159, -2.71828, 1000.25, -999.75} {
		r, err := q.Quantize(v)
		if err != nil {
			t.Fatalf("Quantize(%g): %v", v, err)
		}
		got := q.Dequantize(r, q.FracBits)
		if math.Abs(got-v) > 1.0/q.Scale() {
			t.Fatalf("round trip %g -> %g (err %g)", v, got, got-v)
		}
	}
}

func TestQuantizeExactDyadics(t *testing.T) {
	// Values representable at the scale round-trip exactly.
	q := mustQuantizer(t, 8)
	for _, v := range []float64{0.25, -0.25, 1.5, -12.0078125} {
		r, err := q.Quantize(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := q.Dequantize(r, q.FracBits); got != v {
			t.Fatalf("dyadic %g -> %g", v, got)
		}
	}
}

func TestQuantizeRejectsBadValues(t *testing.T) {
	q := mustQuantizer(t, 16)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e18} {
		if _, err := q.Quantize(v); !errors.Is(err, ErrOverflow) {
			t.Errorf("Quantize(%g) err = %v, want ErrOverflow", v, err)
		}
	}
}

// TestQuickSignedEmbedding: quantization is a homomorphism for addition of
// in-range values — (a+b) quantized equals quantized a + quantized b in F_p.
func TestQuickSignedEmbedding(t *testing.T) {
	q := mustQuantizer(t, 12)
	f := field.Prime{}
	check := func(aRaw, bRaw int16) bool {
		a := float64(aRaw) / 64
		b := float64(bRaw) / 64
		ra, err := q.Quantize(a)
		if err != nil {
			return false
		}
		rb, err := q.Quantize(b)
		if err != nil {
			return false
		}
		sum, err := q.Quantize(a + b)
		if err != nil {
			return false
		}
		return f.Add(ra, rb) == sum
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDequantizeDotMatchesFloatProduct(t *testing.T) {
	q := mustQuantizer(t, 16)
	f := field.Prime{}
	rng := testRNG()
	const l = 32
	a := make([]float64, l)
	x := make([]float64, l)
	for i := range a {
		a[i] = rng.Float64()*4 - 2
		x[i] = rng.Float64()*4 - 2
	}
	if err := q.CheckMatVec(l, 2, 2); err != nil {
		t.Fatal(err)
	}
	qa, err := q.QuantizeVec(a)
	if err != nil {
		t.Fatal(err)
	}
	qx, err := q.QuantizeVec(x)
	if err != nil {
		t.Fatal(err)
	}
	acc := f.Zero()
	want := 0.0
	for i := range qa {
		acc = f.Add(acc, f.Mul(qa[i], qx[i]))
		want += a[i] * x[i]
	}
	got := q.DequantizeDot(acc)
	// Quantization error: each operand off by ≤ 2^-17, products accumulate.
	if math.Abs(got-want) > float64(l)*4.0/q.Scale() {
		t.Fatalf("dot = %g, want %g", got, want)
	}
}

func TestCheckMatVec(t *testing.T) {
	q := mustQuantizer(t, 16)
	if err := q.CheckMatVec(1000, 1, 1); err != nil {
		t.Fatalf("modest workload rejected: %v", err)
	}
	if err := q.CheckMatVec(1<<30, 1e4, 1e4); !errors.Is(err, ErrOverflow) {
		t.Fatalf("huge workload err = %v, want ErrOverflow", err)
	}
	if err := q.CheckMatVec(0, 1, 1); err == nil {
		t.Error("l = 0 should be rejected")
	}
}

// TestQuantizedSecurePipeline is the point of the package: a float matrix
// pushed through the exact F_p coded pipeline decodes to the fixed-point
// product, within quantization error of the float product.
func TestQuantizedSecurePipeline(t *testing.T) {
	fR := field.Real{}
	fP := field.Prime{}
	rng := testRNG()
	const m, l, r = 20, 16, 5

	q := mustQuantizer(t, 16)
	aF := matrix.Random[float64](fR, rng, m, l) // standard normals
	xF := matrix.RandomVec[float64](fR, rng, l)
	if err := q.CheckMatVec(l, MaxAbs(aF), MaxAbsVec(xF)); err != nil {
		t.Fatal(err)
	}

	aQ, err := q.QuantizeMatrix(aF)
	if err != nil {
		t.Fatal(err)
	}
	xQ, err := q.QuantizeVec(xF)
	if err != nil {
		t.Fatal(err)
	}

	s, err := coding.New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := coding.Encode[uint64](fP, s, aQ, rng)
	if err != nil {
		t.Fatal(err)
	}
	yQ, err := coding.Decode[uint64](fP, s, enc.ComputeAll(fP, xQ))
	if err != nil {
		t.Fatal(err)
	}
	got := q.DequantizeDotVec(yQ)
	want := matrix.MulVec[float64](fR, aF, xF)
	for i := range got {
		if math.Abs(got[i]-want[i]) > float64(l)*8.0/q.Scale() {
			t.Fatalf("entry %d: %g vs %g", i, got[i], want[i])
		}
	}

	// And the coded pipeline added no error beyond quantization: decode must
	// equal the plain fixed-point product bit for bit.
	exact := matrix.MulVec[uint64](fP, aQ, xQ)
	if !matrix.VecEqual[uint64](fP, yQ, exact) {
		t.Fatal("coded pipeline disagreed with the exact fixed-point product")
	}
}

func TestQuantizeMatrixPropagatesErrors(t *testing.T) {
	q := mustQuantizer(t, 16)
	bad := matrix.New[float64](1, 1)
	bad.Set(0, 0, math.Inf(1))
	if _, err := q.QuantizeMatrix(bad); !errors.Is(err, ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
	if _, err := q.QuantizeVec([]float64{math.NaN()}); !errors.Is(err, ErrOverflow) {
		t.Fatalf("vec err = %v, want ErrOverflow", err)
	}
}

func TestMaxAbsHelpers(t *testing.T) {
	m := matrix.FromRows([][]float64{{1, -3}, {2, 0.5}})
	if MaxAbs(m) != 3 {
		t.Fatalf("MaxAbs = %g, want 3", MaxAbs(m))
	}
	if MaxAbsVec([]float64{-7, 2}) != 7 {
		t.Fatalf("MaxAbsVec wrong")
	}
	if MaxAbsVec(nil) != 0 {
		t.Fatal("empty MaxAbsVec should be 0")
	}
}
