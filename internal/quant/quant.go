// Package quant bridges real-valued workloads into the prime field.
//
// Information-theoretic security needs uniformly random field elements, so
// the security-critical coding runs over F_p — but the paper's motivating
// workloads (model weights, §I) are real-valued. The standard bridge in
// coded computing is fixed-point quantization: embed x ↦ round(x·2^frac) as
// a centered residue, run the whole encode/compute/decode pipeline exactly
// in F_p, and scale back at the user. The result equals the fixed-point
// product exactly — no coding noise is added on top of quantization error —
// and every coded row is a uniform field element, so Definition 2 holds
// verbatim.
//
// Correctness requires that no intermediate dot product overflows the
// centered range (−p/2, p/2). The Quantizer exposes the static bound and
// checks it against the actual workload shape.
package quant

import (
	"errors"
	"fmt"
	"math"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

// ErrOverflow is returned when a value cannot be represented, or a workload
// could overflow the field's centered range.
var ErrOverflow = errors.New("quant: fixed-point overflow")

// Quantizer converts between float64 and centered fixed-point residues in
// F_p with FracBits fractional bits.
type Quantizer struct {
	// FracBits is the number of fractional bits; the scale is 2^FracBits.
	FracBits uint
}

// NewQuantizer validates the precision. FracBits must leave headroom in the
// 61-bit modulus: values are bounded by MaxAbs and products accumulate.
func NewQuantizer(fracBits uint) (Quantizer, error) {
	if fracBits == 0 || fracBits > 28 {
		return Quantizer{}, fmt.Errorf("quant: fracBits = %d outside [1, 28]", fracBits)
	}
	return Quantizer{FracBits: fracBits}, nil
}

// Scale returns 2^FracBits.
func (q Quantizer) Scale() float64 { return math.Ldexp(1, int(q.FracBits)) }

// half is the centered-range boundary ⌊p/2⌋.
const half = field.Modulus / 2

// Quantize embeds v: round(v·2^frac) as a centered residue (negatives map
// to p − |·|). It errors when |v|·2^frac exceeds the centered range.
func (q Quantizer) Quantize(v float64) (uint64, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("%w: value %g", ErrOverflow, v)
	}
	scaled := math.Round(v * q.Scale())
	if scaled > float64(half) || scaled < -float64(half) {
		return 0, fmt.Errorf("%w: value %g at %d fractional bits", ErrOverflow, v, q.FracBits)
	}
	if scaled >= 0 {
		return uint64(scaled), nil
	}
	return field.Modulus - uint64(-scaled), nil
}

// Dequantize decodes a centered residue back to float64 with the given
// number of accumulated fractional bits (FracBits for values, 2·FracBits
// for single products and dot products).
func (q Quantizer) Dequantize(r uint64, fracBits uint) float64 {
	var signed float64
	if r > half {
		signed = -float64(field.Modulus - r)
	} else {
		signed = float64(r)
	}
	return math.Ldexp(signed, -int(fracBits))
}

// QuantizeVec embeds a float vector.
func (q Quantizer) QuantizeVec(v []float64) ([]uint64, error) {
	out := make([]uint64, len(v))
	for i, x := range v {
		r, err := q.Quantize(x)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// QuantizeMatrix embeds a float matrix.
func (q Quantizer) QuantizeMatrix(a *matrix.Dense[float64]) (*matrix.Dense[uint64], error) {
	out := matrix.New[uint64](a.Rows(), a.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			r, err := q.Quantize(a.At(i, j))
			if err != nil {
				return nil, fmt.Errorf("entry (%d,%d): %w", i, j, err)
			}
			out.Set(i, j, r)
		}
	}
	return out, nil
}

// DequantizeDot decodes the result of a dot product of two quantized
// vectors: the fixed-point values carry 2·FracBits fractional bits.
func (q Quantizer) DequantizeDot(r uint64) float64 {
	return q.Dequantize(r, 2*q.FracBits)
}

// DequantizeDotVec decodes a vector of dot-product results (e.g. a decoded
// A·x).
func (q Quantizer) DequantizeDotVec(rs []uint64) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = q.DequantizeDot(r)
	}
	return out
}

// CheckMatVec verifies statically that computing A·x cannot overflow the
// centered range: l·maxA·maxX·2^(2·frac) must stay below p/2, where maxA and
// maxX bound the absolute values of A's and x's entries. Call it before
// Deploying a quantized workload.
func (q Quantizer) CheckMatVec(l int, maxA, maxX float64) error {
	if l < 1 || maxA < 0 || maxX < 0 {
		return fmt.Errorf("quant: invalid bound arguments l=%d maxA=%g maxX=%g", l, maxA, maxX)
	}
	bound := float64(l) * math.Ceil(maxA*q.Scale()) * math.Ceil(maxX*q.Scale())
	if bound >= float64(half) {
		return fmt.Errorf("%w: worst-case |A·x| entry %.3g exceeds p/2 ≈ %.3g (reduce fracBits or split columns)",
			ErrOverflow, bound, float64(half))
	}
	return nil
}

// MaxAbs returns the largest absolute entry of a float matrix; a convenience
// for CheckMatVec.
func MaxAbs(a *matrix.Dense[float64]) float64 {
	maxVal := 0.0
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if v := math.Abs(a.At(i, j)); v > maxVal {
				maxVal = v
			}
		}
	}
	return maxVal
}

// MaxAbsVec returns the largest absolute entry of a float vector.
func MaxAbsVec(v []float64) float64 {
	maxVal := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxVal {
			maxVal = a
		}
	}
	return maxVal
}
