package he

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
)

// testBits keeps key generation fast in tests; benchmarks use larger keys.
const testBits = 128

func testKey(t *testing.T) *PrivateKey {
	t.Helper()
	sk, err := GenerateKey(rand.Reader, testBits)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := testKey(t)
	for _, m := range []int64{0, 1, 2, 255, 1 << 30, 987654321} {
		c, err := sk.Encrypt(rand.Reader, big.NewInt(m))
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got.Int64() != m {
			t.Fatalf("round trip %d -> %d", m, got.Int64())
		}
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	sk := testKey(t)
	m := big.NewInt(42)
	c1, err := sk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Cmp(c2) == 0 {
		t.Fatal("two encryptions of the same plaintext must differ")
	}
}

func TestAdditiveHomomorphism(t *testing.T) {
	sk := testKey(t)
	a, b := big.NewInt(1234), big.NewInt(5678)
	ca, err := sk.Encrypt(rand.Reader, a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := sk.Encrypt(rand.Reader, b)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sk.Decrypt(sk.AddCipher(ca, cb))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Int64() != 6912 {
		t.Fatalf("Enc(a)·Enc(b) decrypted to %d, want 6912", sum.Int64())
	}
	prod, err := sk.Decrypt(sk.ScalarMulCipher(ca, big.NewInt(7)))
	if err != nil {
		t.Fatal(err)
	}
	if prod.Int64() != 8638 {
		t.Fatalf("Enc(a)^7 decrypted to %d, want 8638", prod.Int64())
	}
}

func TestMessageRangeErrors(t *testing.T) {
	sk := testKey(t)
	if _, err := sk.Encrypt(rand.Reader, big.NewInt(-1)); !errors.Is(err, ErrMessageRange) {
		t.Fatalf("negative message err = %v, want ErrMessageRange", err)
	}
	if _, err := sk.Encrypt(rand.Reader, new(big.Int).Set(sk.N)); !errors.Is(err, ErrMessageRange) {
		t.Fatalf("m = N err = %v, want ErrMessageRange", err)
	}
	if _, err := sk.Decrypt(big.NewInt(0)); err == nil {
		t.Fatal("zero ciphertext should be rejected")
	}
	if _, err := sk.Decrypt(new(big.Int).Set(sk.N2)); err == nil {
		t.Fatal("ciphertext >= N² should be rejected")
	}
}

func TestGenerateKeyValidation(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 8); err == nil {
		t.Fatal("tiny primes should be rejected")
	}
}

func TestEncryptedMatVecMatchesPlaintext(t *testing.T) {
	sk := testKey(t)
	a := [][]int64{
		{1, 2, 3},
		{4, 5, 6},
	}
	x := []int64{7, 8, 9}
	encA, err := sk.EncryptMatrix(rand.Reader, a)
	if err != nil {
		t.Fatal(err)
	}
	encY, err := sk.MulVecCipher(encA, x)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1*7 + 2*8 + 3*9, 4*7 + 5*8 + 6*9}
	for i, c := range encY {
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != want[i] {
			t.Fatalf("row %d: decrypted %d, want %d", i, got.Int64(), want[i])
		}
	}
}

func TestEncryptMatrixRejectsNegatives(t *testing.T) {
	sk := testKey(t)
	if _, err := sk.EncryptMatrix(rand.Reader, [][]int64{{-1}}); err == nil {
		t.Fatal("negative entries should be rejected")
	}
}

func TestMulVecCipherShapeMismatch(t *testing.T) {
	sk := testKey(t)
	encA, err := sk.EncryptMatrix(rand.Reader, [][]int64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.MulVecCipher(encA, []int64{1}); err == nil {
		t.Fatal("shape mismatch should be rejected")
	}
}
