// Package he contains a minimal Paillier cryptosystem used solely as the
// baseline for the paper's motivating comparison (§I): homomorphic
// encryption can also hide A from edge devices, but computing on ciphertexts
// is orders of magnitude slower than the linear-coding approach. The
// benchmark harness multiplies a matrix by a vector once in plaintext and
// once under Paillier and reports the ratio (the paper quotes >2×10³ using
// HElib; our implementation reproduces the qualitative gap, not HElib's
// exact constant).
//
// Paillier is additively homomorphic — Enc(a)·Enc(b) = Enc(a+b) and
// Enc(a)^k = Enc(k·a) — which is exactly what an untrusted device needs to
// evaluate its share of A·x on encrypted coefficients.
//
// This implementation is for benchmarking only: it uses textbook parameter
// sizes and must not be used to protect real data.
package he

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// PublicKey holds the Paillier public parameters.
type PublicKey struct {
	// N is the modulus p·q.
	N *big.Int
	// N2 caches N².
	N2 *big.Int
}

// PrivateKey holds the decryption parameters.
type PrivateKey struct {
	PublicKey
	// Lambda is lcm(p−1, q−1).
	Lambda *big.Int
	// Mu is (L(g^Lambda mod N²))⁻¹ mod N.
	Mu *big.Int
}

// ErrMessageRange is returned when a plaintext does not lie in [0, N).
var ErrMessageRange = errors.New("he: message outside [0, N)")

// GenerateKey creates a Paillier key pair with primes of the given bit size
// (so N has about 2·bits bits). The standard g = N+1 variant is used.
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 16 {
		return nil, fmt.Errorf("he: prime size %d too small", bits)
	}
	p, err := rand.Prime(random, bits)
	if err != nil {
		return nil, fmt.Errorf("he: generate p: %w", err)
	}
	var q *big.Int
	for {
		q, err = rand.Prime(random, bits)
		if err != nil {
			return nil, fmt.Errorf("he: generate q: %w", err)
		}
		if q.Cmp(p) != 0 {
			break
		}
	}
	n := new(big.Int).Mul(p, q)
	n2 := new(big.Int).Mul(n, n)

	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	qm1 := new(big.Int).Sub(q, big.NewInt(1))
	gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
	lambda := new(big.Int).Mul(pm1, qm1)
	lambda.Div(lambda, gcd)

	// With g = n+1: L(g^λ mod n²) = λ mod n, so μ = λ⁻¹ mod n.
	mu := new(big.Int).ModInverse(new(big.Int).Mod(lambda, n), n)
	if mu == nil {
		return nil, errors.New("he: lambda not invertible mod n (degenerate primes)")
	}
	return &PrivateKey{
		PublicKey: PublicKey{N: n, N2: n2},
		Lambda:    lambda,
		Mu:        mu,
	}, nil
}

// Encrypt returns Enc(m) = (1 + m·N)·r^N mod N² for random r in Z*_N. The
// plaintext must lie in [0, N).
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, ErrMessageRange
	}
	var r *big.Int
	for {
		var err error
		r, err = rand.Int(random, pk.N)
		if err != nil {
			return nil, fmt.Errorf("he: sample r: %w", err)
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, pk.N).Cmp(big.NewInt(1)) == 0 {
			break
		}
	}
	// g^m mod n² with g = n+1 is 1 + m·n (binomial theorem mod n²).
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	return c.Mod(c, pk.N2), nil
}

// Decrypt recovers the plaintext: m = L(c^λ mod N²)·μ mod N.
func (sk *PrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if c.Sign() <= 0 || c.Cmp(sk.N2) >= 0 {
		return nil, fmt.Errorf("he: ciphertext outside (0, N²)")
	}
	u := new(big.Int).Exp(c, sk.Lambda, sk.N2)
	u.Sub(u, big.NewInt(1))
	u.Div(u, sk.N)
	u.Mul(u, sk.Mu)
	return u.Mod(u, sk.N), nil
}

// AddCipher returns Enc(a+b) from Enc(a) and Enc(b): the ciphertext product.
func (pk *PublicKey) AddCipher(ca, cb *big.Int) *big.Int {
	out := new(big.Int).Mul(ca, cb)
	return out.Mod(out, pk.N2)
}

// ScalarMulCipher returns Enc(k·a) from Enc(a): the ciphertext power.
func (pk *PublicKey) ScalarMulCipher(c *big.Int, k *big.Int) *big.Int {
	kk := new(big.Int).Mod(k, pk.N)
	return new(big.Int).Exp(c, kk, pk.N2)
}

// EncryptMatrix encrypts every entry of a non-negative int64 matrix.
func (pk *PublicKey) EncryptMatrix(random io.Reader, a [][]int64) ([][]*big.Int, error) {
	out := make([][]*big.Int, len(a))
	for i, row := range a {
		out[i] = make([]*big.Int, len(row))
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("he: negative entry %d at (%d,%d)", v, i, j)
			}
			c, err := pk.Encrypt(random, big.NewInt(v))
			if err != nil {
				return nil, err
			}
			out[i][j] = c
		}
	}
	return out, nil
}

// MulVecCipher computes Enc(A·x) from an encrypted matrix and a plaintext
// vector: each output entry is Π_j Enc(A_ij)^{x_j} — the work an untrusted
// edge device performs in the HE alternative to coded computing.
func (pk *PublicKey) MulVecCipher(encA [][]*big.Int, x []int64) ([]*big.Int, error) {
	out := make([]*big.Int, len(encA))
	for i, row := range encA {
		if len(row) != len(x) {
			return nil, fmt.Errorf("he: row %d has %d entries, x has %d", i, len(row), len(x))
		}
		acc := big.NewInt(1)
		for j, c := range row {
			term := pk.ScalarMulCipher(c, big.NewInt(x[j]))
			acc = pk.AddCipher(acc, term)
		}
		out[i] = acc
	}
	return out, nil
}
