package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the runtime-introspection handler bundle:
//
//	/metrics        Prometheus text exposition (?format=json for a snapshot)
//	/metrics.json   JSON snapshot
//	/healthz        liveness probe ("ok")
//	/debug/vars     expvar (Go runtime memstats and cmdline)
//	/debug/pprof/*  CPU/heap/goroutine/trace profiling
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok uptime=%s\n", r.Uptime().Round(time.Millisecond))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry endpoint started by StartServer.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer serves the registry's Handler on addr (use "127.0.0.1:0" for
// an ephemeral port; Addr reports the bound address) in a background
// goroutine. A nil registry serves Default().
func StartServer(r *Registry, addr string) (*Server, error) {
	if r == nil {
		r = Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: r.Handler()}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
