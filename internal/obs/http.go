package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// buildInfo is the binary identity reported on /healthz and as the
// scec_build_info gauge, resolved once from the embedded module metadata.
type buildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module"`
	Version   string `json:"version"`
}

var (
	buildOnce sync.Once
	buildID   buildInfo
)

// readBuildInfo resolves the binary's identity. Binaries built outside
// module mode (rare: tests of vendored copies) fall back to "unknown".
func readBuildInfo() buildInfo {
	buildOnce.Do(func() {
		buildID = buildInfo{GoVersion: runtime.Version(), Module: "unknown", Version: "unknown"}
		if bi, ok := debug.ReadBuildInfo(); ok {
			if bi.Main.Path != "" {
				buildID.Module = bi.Main.Path
			}
			if bi.Main.Version != "" {
				buildID.Version = bi.Main.Version
			}
		}
	})
	return buildID
}

// healthBody is the /healthz JSON response.
type healthBody struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	buildInfo
}

// Route mounts one extra debug handler on the telemetry mux — the hook the
// tracing and runtime-introspection endpoints (/debug/traces, /debug/fleet,
// /debug/engine) use to join /metrics and /debug/pprof under one server.
type Route struct {
	// Pattern is a net/http ServeMux pattern ("/debug/traces",
	// "/debug/traces/{id}", ...).
	Pattern string
	// Handler serves it.
	Handler http.Handler
	// Desc is the one-line description the /debug index lists for the route.
	Desc string
}

// JSONHeaders stamps the response headers every JSON debug/metrics endpoint
// in the repo uses: the JSON content type plus no-store caching, so a proxy
// or browser never serves a stale introspection snapshot.
func JSONHeaders(w http.ResponseWriter) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Cache-Control", "no-store")
}

// builtinRoutes describe the endpoints Handler always registers, for the
// /debug index. Extra routes are audited against these patterns (and each
// other) so a typo'd pattern cannot silently shadow /debug/pprof/ or
// double-register.
var builtinRoutes = []Route{
	{Pattern: "/debug", Desc: "this index: every mounted debug/metrics route"},
	{Pattern: "/metrics", Desc: "Prometheus text exposition (?format=json for a snapshot)"},
	{Pattern: "/metrics.json", Desc: "JSON metrics snapshot with quantiles and exemplars"},
	{Pattern: "/healthz", Desc: "liveness probe: status, uptime, build identity"},
	{Pattern: "/debug/vars", Desc: "expvar: Go runtime memstats and cmdline"},
	{Pattern: "/debug/pprof/", Desc: "pprof profile index"},
	{Pattern: "/debug/pprof/cmdline", Desc: "pprof: process command line"},
	{Pattern: "/debug/pprof/profile", Desc: "pprof: CPU profile (?seconds=N)"},
	{Pattern: "/debug/pprof/symbol", Desc: "pprof: symbol lookup"},
	{Pattern: "/debug/pprof/trace", Desc: "pprof: execution trace (?seconds=N)"},
}

// RouteInfo is one /debug index entry.
type RouteInfo struct {
	Pattern string `json:"pattern"`
	Desc    string `json:"desc,omitempty"`
}

// debugIndex serves the route catalogue as JSON, sorted by pattern.
func debugIndex(routes []RouteInfo) http.Handler {
	sorted := make([]RouteInfo, len(routes))
	copy(sorted, routes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Pattern < sorted[j].Pattern })
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		JSONHeaders(w)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Routes []RouteInfo `json:"routes"`
		}{Routes: sorted})
	})
}

// Handler returns the runtime-introspection handler bundle:
//
//	/metrics        Prometheus text exposition (?format=json for a snapshot)
//	/metrics.json   JSON snapshot
//	/healthz        liveness probe: JSON status, uptime, and build identity
//	/debug          JSON index of every mounted debug/metrics route
//	/debug/vars     expvar (Go runtime memstats and cmdline)
//	/debug/pprof/*  CPU/heap/goroutine/trace profiling
//
// Handler also registers the scec_build_info constant gauge (value 1,
// labels go_version/module/version) so scrapes carry the binary's identity.
//
// Extra routes are mounted on the same mux. A route that collides with a
// built-in pattern (or repeats another extra) panics with the offending
// pattern — collisions are programmer errors and must not silently shadow
// the profiler.
func (r *Registry) Handler(extra ...Route) http.Handler {
	bi := readBuildInfo()
	r.Gauge(MetricBuildInfo,
		"Constant 1; the binary's identity is carried in the go_version, module, and version labels.",
		L("go_version", bi.GoVersion), L("module", bi.Module), L("version", bi.Version)).Set(1)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			JSONHeaders(w)
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		JSONHeaders(w)
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		JSONHeaders(w)
		_ = json.NewEncoder(w).Encode(healthBody{
			Status:        "ok",
			UptimeSeconds: r.Uptime().Seconds(),
			buildInfo:     bi,
		})
	})
	mux.Handle("/debug/vars", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		// expvar.Handler sets the content type but not the cache policy;
		// every JSON debug route serves with the same headers.
		w.Header().Set("Cache-Control", "no-store")
		expvar.Handler().ServeHTTP(w, req)
	}))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	index := make([]RouteInfo, 0, len(builtinRoutes)+len(extra))
	seen := make(map[string]bool, len(builtinRoutes)+len(extra))
	for _, rt := range builtinRoutes {
		seen[rt.Pattern] = true
		index = append(index, RouteInfo{Pattern: rt.Pattern, Desc: rt.Desc})
	}
	for _, rt := range extra {
		if rt.Handler == nil || rt.Pattern == "" {
			panic(fmt.Sprintf("obs: debug route %q has no pattern or handler", rt.Pattern))
		}
		if seen[rt.Pattern] {
			panic(fmt.Sprintf("obs: debug route %q collides with an already registered pattern", rt.Pattern))
		}
		seen[rt.Pattern] = true
		index = append(index, RouteInfo{Pattern: rt.Pattern, Desc: rt.Desc})
		mux.Handle(rt.Pattern, rt.Handler)
	}
	mux.Handle("/debug", debugIndex(index))
	return mux
}

// Server is a running telemetry endpoint started by StartServer.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer serves the registry's Handler (plus any extra debug routes)
// on addr (use "127.0.0.1:0" for an ephemeral port; Addr reports the bound
// address) in a background goroutine. A nil registry serves Default().
func StartServer(r *Registry, addr string, extra ...Route) (*Server, error) {
	if r == nil {
		r = Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: r.Handler(extra...)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// shutdownGrace bounds how long a context-driven shutdown waits for
// in-flight scrapes before hard-closing.
const shutdownGrace = 2 * time.Second

// StartServerContext is StartServer bound to a context: when ctx is
// cancelled the server shuts down gracefully (in-flight requests get
// shutdownGrace to finish, then the listener hard-closes). Close remains
// safe to call as well.
func StartServerContext(ctx context.Context, r *Registry, addr string, extra ...Route) (*Server, error) {
	s, err := StartServer(r, addr, extra...)
	if err != nil {
		return nil, err
	}
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		_ = s.Shutdown(sctx)
	}()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops the server gracefully, waiting for in-flight requests
// until ctx expires (then closing hard).
func (s *Server) Shutdown(ctx context.Context) error {
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
