package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := New()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Registration and update race from every goroutine on purpose:
			// the registry must hand back the same series.
			c := r.Counter("test_total", "help", L("worker", "shared"))
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test_total", "help", L("worker", "shared")).Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5 (negative add must be ignored)", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := New()
	g := r.Gauge("test_gauge", "help")
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(goroutines*perG)*0.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("gauge = %g, want %g", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := New()
	h := r.Histogram("test_seconds", "help", []float64{0.01, 0.1, 1})
	const goroutines, perG = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g%4) * 0.05) // 0, 0.05, 0.1, 0.15
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	want := float64(goroutines/4*perG) * (0 + 0.05 + 0.1 + 0.15)
	if got := h.Sum(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", got, want)
	}
	// Cumulative buckets: le=0.01 sees the 0-valued quarter, le=0.1 also
	// the 0.05 and 0.1 quarters, le=1 and +Inf see everything.
	counts := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		counts[i] = cum
	}
	quarter := int64(goroutines / 4 * perG)
	wantCum := []int64{quarter, 3 * quarter, 4 * quarter, 4 * quarter}
	for i, w := range wantCum {
		if counts[i] != w {
			t.Fatalf("cumulative bucket %d = %d, want %d", i, counts[i], w)
		}
	}
}

func TestHistogramBucketBoundaryInclusive(t *testing.T) {
	r := New()
	h := r.Histogram("test_edge_seconds", "help", []float64{1, 2})
	h.Observe(1) // exactly on the bound: must land in le="1"
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("observation at bound landed in bucket 0 count=%d, want 1", got)
	}
}

// TestPrometheusGolden pins the text exposition format end to end.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("scec_demo_requests_total", "Requests served.", L("kind", "compute")).Add(3)
	r.Gauge("scec_demo_temperature", "Current temperature.").Set(36.5)
	h := r.Histogram("scec_demo_latency_seconds", "Round-trip latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP scec_demo_requests_total Requests served.
# TYPE scec_demo_requests_total counter
scec_demo_requests_total{kind="compute"} 3
# HELP scec_demo_temperature Current temperature.
# TYPE scec_demo_temperature gauge
scec_demo_temperature 36.5
# HELP scec_demo_latency_seconds Round-trip latency.
# TYPE scec_demo_latency_seconds histogram
scec_demo_latency_seconds_bucket{le="0.1"} 1
scec_demo_latency_seconds_bucket{le="1"} 2
scec_demo_latency_seconds_bucket{le="+Inf"} 3
scec_demo_latency_seconds_sum 5.55
scec_demo_latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := New()
	r.Counter("a_total", "A.").Inc()
	r.Histogram("b_seconds", "B.", []float64{1}).Observe(0.5)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Metrics) != 2 {
		t.Fatalf("snapshot has %d metrics, want 2", len(snap.Metrics))
	}
	if snap.Metrics[0].Name != "a_total" || snap.Metrics[0].Series[0].Value != 1 {
		t.Fatalf("unexpected counter snapshot %+v", snap.Metrics[0])
	}
	hist := snap.Metrics[1]
	if hist.Type != "histogram" || hist.Series[0].Count != 1 || hist.Series[0].Sum != 0.5 {
		t.Fatalf("unexpected histogram snapshot %+v", hist)
	}
	if got := len(hist.Series[0].Buckets); got != 2 {
		t.Fatalf("histogram snapshot has %d buckets, want 2 (1 bound + Inf)", got)
	}
}

func TestLabelsAreSortedAndIndependent(t *testing.T) {
	r := New()
	c1 := r.Counter("lbl_total", "h", L("b", "2"), L("a", "1"))
	c2 := r.Counter("lbl_total", "h", L("a", "1"), L("b", "2"))
	if c1 != c2 {
		t.Fatal("label order must not create distinct series")
	}
	c3 := r.Counter("lbl_total", "h", L("a", "other"))
	if c1 == c3 {
		t.Fatal("different label values must create distinct series")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("mismatch_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering the same name with a different type must panic")
		}
	}()
	r.Gauge("mismatch_total", "h")
}

func TestStageSpan(t *testing.T) {
	r := New()
	sp := StartStage(r, StageEncode)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("span duration %v, want > 0", d)
	}
	s := r.find(MetricStageSeconds, []Label{L("stage", StageEncode)})
	if s == nil || s.hist.Count() != 1 {
		t.Fatal("span did not record into the stage histogram")
	}
	if got := s.hist.Sum(); got <= 0 {
		t.Fatalf("stage histogram sum %g, want > 0", got)
	}
	var b strings.Builder
	if err := WriteStageTable(&b, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), StageEncode) {
		t.Fatalf("stage table missing %q:\n%s", StageEncode, b.String())
	}
	// The table must not list (or mint series for) stages that never ran.
	if strings.Contains(b.String(), StageDecode) {
		t.Fatalf("stage table lists a stage that never ran:\n%s", b.String())
	}
	if r.find(MetricStageSeconds, []Label{L("stage", StageDecode)}) != nil {
		t.Fatal("reading the stage table minted an empty series")
	}
}

func TestObserveStageConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ObserveStage(r, StageCompute, time.Millisecond)
			}
		}()
	}
	wg.Wait()
	s := r.find(MetricStageSeconds, []Label{L("stage", StageCompute)})
	if s == nil || s.hist.Count() != 8*200 {
		t.Fatalf("stage histogram count mismatch, got %+v", s)
	}
}
