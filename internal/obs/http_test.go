package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestHandlerBundle(t *testing.T) {
	r := New()
	r.Counter("bundle_total", "h").Inc()

	h := r.Handler()
	if code, body := get(t, h, "/metrics"); code != 200 || !strings.Contains(body, "bundle_total 1") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	if code, body := get(t, h, "/metrics?format=json"); code != 200 || !strings.Contains(body, `"bundle_total"`) {
		t.Fatalf("/metrics?format=json: code %d body %q", code, body)
	}
	if code, body := get(t, h, "/metrics.json"); code != 200 || !strings.Contains(body, `"uptime_seconds"`) {
		t.Fatalf("/metrics.json: code %d body %q", code, body)
	}
	if code, body := get(t, h, "/healthz"); code != 200 ||
		!strings.Contains(body, `"status":"ok"`) ||
		!strings.Contains(body, `"uptime_seconds"`) ||
		!strings.Contains(body, `"go_version"`) {
		t.Fatalf("/healthz: code %d body %q", code, body)
	}
	if code, body := get(t, h, "/metrics"); code != 200 || !strings.Contains(body, "scec_build_info{") {
		t.Fatalf("/metrics missing build info: code %d body %q", code, body)
	}
	if code, body := get(t, h, "/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: code %d body %q", code, body)
	}
	if code, body := get(t, h, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code %d body %q", code, body)
	}
}

func TestStartServer(t *testing.T) {
	r := New()
	r.Gauge("live_gauge", "h").Set(7)
	srv, err := StartServer(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "live_gauge 7") {
		t.Fatalf("served metrics missing gauge:\n%s", body)
	}
}
