package obs

import (
	"fmt"
	"io"
	"time"
)

// Metric names wired through the stack. Real transport runs and simulated
// runs use the same names so their exports are directly comparable; the
// README's Observability section documents each one.
const (
	// MetricStageSeconds is the per-stage latency histogram, labelled
	// stage=allocate|encode|store|compute|gather|decode. Real runs observe
	// wall-clock durations; internal/sim observes virtual-clock durations.
	MetricStageSeconds = "scec_stage_duration_seconds"
	// MetricStageLastSeconds is a gauge holding the most recent duration of
	// each stage, for cheap "what just happened" introspection.
	MetricStageLastSeconds = "scec_stage_last_seconds"

	// Client-side (user/cloud role) RPC metrics, labelled by request kind
	// (store|compute|compute-batch|ping).
	MetricRPCClientRequests = "scec_rpc_client_requests_total"
	MetricRPCClientErrors   = "scec_rpc_client_errors_total"
	MetricRPCClientSeconds  = "scec_rpc_client_latency_seconds"
	MetricRPCClientSent     = "scec_rpc_client_sent_bytes_total"
	MetricRPCClientReceived = "scec_rpc_client_received_bytes_total"

	// Device-server-side RPC metrics, labelled by request kind; malformed
	// requests that never decode are counted under kind="malformed".
	MetricRPCServerRequests = "scec_rpc_server_requests_total"
	MetricRPCServerErrors   = "scec_rpc_server_errors_total"
	MetricRPCServerSeconds  = "scec_rpc_server_latency_seconds"
	MetricRPCServerRead     = "scec_rpc_server_read_bytes_total"
	MetricRPCServerWritten  = "scec_rpc_server_written_bytes_total"

	// MetricKernelDispatchTotal counts dense-kernel executions in
	// internal/matrix, labelled op=mul|mulvec|add|sub,
	// impl=specialized|generic, and mode=serial|parallel — at most 16
	// series, so the dispatch decisions the kernel layer makes (fast
	// monomorphized code vs. the generic Field fallback, sharded vs.
	// single-core) are directly observable on /metrics.
	MetricKernelDispatchTotal = "scec_kernel_dispatch_total"
	// MetricKernelPoolSize is a gauge holding the worker count of the
	// shared dense-kernel pool (GOMAXPROCS at pool start; 0 until the
	// first parallel dispatch spins it up).
	MetricKernelPoolSize = "scec_kernel_pool_size"

	// Fleet-runtime (internal/fleet) metrics. Label sets are bounded by
	// construction, following the scec_kernel_dispatch_total convention:
	// device labels range over the fixed provisioned fleet, block labels
	// over the scheme's device count, kind over {vec, mat}, and outcome
	// over {ok, failed}.

	// MetricFleetQueriesTotal counts queries served by a fleet session,
	// labelled kind=vec|mat.
	MetricFleetQueriesTotal = "scec_fleet_queries_total"
	// MetricFleetQueryErrorsTotal counts queries that failed after
	// exhausting every replica, retry, and hedge, labelled kind=vec|mat.
	MetricFleetQueryErrorsTotal = "scec_fleet_query_errors_total"
	// MetricFleetHedgesTotal counts speculative (hedged) replica requests
	// launched because the leading attempt outlived the hedge delay.
	MetricFleetHedgesTotal = "scec_fleet_hedges_total"
	// MetricFleetRetriesTotal counts replica attempts launched because a
	// prior attempt failed — both in-race failovers and fresh backoff
	// rounds.
	MetricFleetRetriesTotal = "scec_fleet_retries_total"
	// MetricFleetRepairsTotal counts self-repair pushes of a coded block to
	// a warm standby, labelled outcome=ok|failed.
	MetricFleetRepairsTotal = "scec_fleet_repairs_total"
	// MetricFleetBreakerState is a per-device gauge (label device=<addr>) of
	// the circuit-breaker state: 0 closed, 1 half-open, 2 open.
	MetricFleetBreakerState = "scec_fleet_breaker_state"
	// MetricFleetBlockWinnerSeconds is a per-block histogram (label
	// block="j", scheme order) of the latency of the winning replica
	// attempt for each served block fetch.
	MetricFleetBlockWinnerSeconds = "scec_fleet_block_winner_seconds"
	// MetricFleetRehostsTotal counts live block migrations (adaptive rehost
	// pushes of a block to a new device), labelled outcome=ok|failed.
	MetricFleetRehostsTotal = "scec_fleet_rehosts_total"

	// Adaptive-control-plane (internal/adapt) metrics. Label sets are
	// bounded: outcome/reason/kind over small fixed enumerations, device
	// over the provisioned fleet (the MetricFleetBreakerState convention).

	// MetricAdaptReplansTotal counts re-planning decisions, labelled
	// outcome=adopted|held (held = hysteresis, cooldown, or no improvement
	// kept the incumbent).
	MetricAdaptReplansTotal = "scec_adapt_replans_total"
	// MetricAdaptMigrationsTotal counts executed plan migrations, labelled
	// kind=rehost|reshape and outcome=ok|failed.
	MetricAdaptMigrationsTotal = "scec_adapt_migrations_total"
	// MetricAdaptBlocksMovedTotal counts individual coded blocks pushed to a
	// new device by adaptive migrations.
	MetricAdaptBlocksMovedTotal = "scec_adapt_blocks_moved_total"
	// MetricAdaptPlanCost is a gauge of the incumbent plan's expected cost
	// at the current learned unit costs.
	MetricAdaptPlanCost = "scec_adapt_plan_cost"
	// MetricAdaptPlanR is a gauge of the incumbent plan's number of random
	// rows r.
	MetricAdaptPlanR = "scec_adapt_plan_r"
	// MetricAdaptDeviceFactor is a per-device gauge (label device=<addr>) of
	// the learned slowdown factor relative to the fleet baseline (1 =
	// nominal).
	MetricAdaptDeviceFactor = "scec_adapt_device_factor"

	// Execution-engine (internal/engine) metrics. Label sets are bounded:
	// backend ranges over the three executor implementations and kind over
	// the two query shapes.

	// MetricEngineDispatchTotal counts executor invocations made by the
	// engine's query layer, labelled backend=local|sim|fleet and
	// kind=vec|mat. A coalesced round that merged several MulVec callers
	// counts as one kind="mat" dispatch.
	MetricEngineDispatchTotal = "scec_engine_dispatch_total"
	// MetricEngineCoalescedBatchSize is a histogram (label
	// backend=local|sim|fleet) of how many concurrent MulVec callers each
	// coalesced execution round merged; size-1 rounds are observed too, so
	// the count is the number of rounds and the sum is the number of
	// callers served through the coalescer.
	MetricEngineCoalescedBatchSize = "scec_engine_coalesced_batch_size"

	// MetricSimDeviceResultSeconds is a per-device gauge (label device="j",
	// scheme order) of the virtual time at which device j's intermediate
	// results reached the user in the most recent simulated run.
	MetricSimDeviceResultSeconds = "scec_sim_device_result_seconds"
	// MetricSimRuns counts completed simulator runs.
	MetricSimRuns = "scec_sim_runs_total"

	// Load-generator (internal/loadgen) metrics. The harness keeps its exact
	// quantiles in its own log-bucketed recorder; these series surface the
	// generator's activity on /metrics while a sweep runs.

	// MetricLoadRequestsTotal counts generator-issued requests, labelled
	// outcome=ok|error|shed (shed = the MaxInFlight backstop refused launch).
	MetricLoadRequestsTotal = "scec_load_requests_total"
	// MetricLoadInFlight is a gauge of requests currently outstanding at the
	// generator.
	MetricLoadInFlight = "scec_load_inflight"
	// MetricLoadOfferedQPS is a gauge of the current open-loop run's offered
	// load in requests/second.
	MetricLoadOfferedQPS = "scec_load_offered_qps"

	// MetricBuildInfo is a constant-1 gauge carrying the binary's identity as
	// labels (go_version, module, version), the Prometheus build-info idiom;
	// registered by the telemetry Handler.
	MetricBuildInfo = "scec_build_info"

	// Wire-protocol (internal/transport v3) metrics. Device labels range over
	// the fixed fleet (the MetricFleetBreakerState convention), role over
	// {client, server}, proto over {v3, gob}, and outcome over small fixed
	// sets, so cardinality stays bounded.

	// MetricTransportConnsOpen is a gauge of currently open transport
	// connections, labelled role=client|server, proto=v3|gob, and (on the
	// client role) device=<addr>.
	MetricTransportConnsOpen = "scec_transport_conns_open"
	// MetricTransportStreamsInflight is a gauge of v3 streams currently
	// awaiting a response, labelled role=client|server and device=<addr>.
	MetricTransportStreamsInflight = "scec_transport_streams_inflight"
	// MetricTransportFlushFrames is a histogram of how many frames each
	// write-batcher flush pushed to the socket in one syscall, labelled
	// role=client|server. Size-1 flushes are the idle case; larger batches
	// are the group-commit effect under concurrent streams.
	MetricTransportFlushFrames = "scec_transport_flush_frames"
	// MetricTransportNegotiations counts v3 protocol negotiations, labelled
	// outcome=v3|legacy|error (legacy = the peer only speaks the gob
	// protocol and the client fell back transparently).
	MetricTransportNegotiations = "scec_transport_negotiations_total"
	// MetricTransportHeartbeats counts piggybacked heartbeat pings sent on
	// idle multiplexed connections, labelled outcome=ok|failed.
	MetricTransportHeartbeats = "scec_transport_heartbeats_total"
	// MetricTransportHeartbeatRTT is a per-device gauge (label device=<addr>)
	// of the most recent heartbeat round-trip time in seconds, as measured by
	// the fleet prober via transport.Client.LastRTT — the same signal the
	// adaptive control plane blends into its learned cost factors.
	MetricTransportHeartbeatRTT = "scec_transport_heartbeat_rtt_seconds"

	// Flight-recorder (internal/obs/flight) metrics. The kind label ranges
	// over the fixed event-kind enumeration, so cardinality is bounded.

	// MetricFlightEventsTotal counts events published to the flight-recorder
	// journal, labelled kind=<event kind wire name>.
	MetricFlightEventsTotal = "scec_flight_events_total"
	// MetricFlightIncidentsTotal counts incident bundles captured by the
	// flight-recorder watchdog.
	MetricFlightIncidentsTotal = "scec_flight_incidents_total"
)

// Pipeline stage names, the values of the stage label on
// MetricStageSeconds/MetricStageLastSeconds.
const (
	StageAllocate = "allocate" // TA1 task allocation
	StageEncode   = "encode"   // cloud-side package coding B_j·T
	StageStore    = "store"    // pushing coded blocks to the fleet
	StageCompute  = "compute"  // device-side B_j·T·x (per device)
	StageGather   = "gather"   // broadcast x + collect intermediate results
	StageDecode   = "decode"   // user-side m subtractions
)

// Stages lists every pipeline stage in execution order.
var Stages = []string{StageAllocate, StageEncode, StageStore, StageCompute, StageGather, StageDecode}

// stageHelp documents the stage histogram family.
const stageHelp = "Pipeline stage duration in seconds (wall clock for real runs, virtual clock for simulated runs)."

// ObserveStage records one stage duration (histogram + last-value gauge).
// A nil registry records into Default().
func ObserveStage(r *Registry, stage string, d time.Duration) {
	if r == nil {
		r = Default()
	}
	l := L("stage", stage)
	r.Histogram(MetricStageSeconds, stageHelp, DefLatencyBuckets, l).ObserveDuration(d)
	r.Gauge(MetricStageLastSeconds, "Most recent duration of each pipeline stage in seconds.", l).Set(d.Seconds())
}

// Span is an in-flight stage timing started by StartStage.
type Span struct {
	reg   *Registry
	stage string
	start time.Time
}

// StartStage starts timing a pipeline stage against the wall clock. A nil
// registry records into Default().
func StartStage(r *Registry, stage string) Span {
	return Span{reg: r, stage: stage, start: time.Now()}
}

// End records the elapsed time and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	ObserveStage(s.reg, s.stage, d)
	return d
}

// StageTails returns the interpolated p50/p95/p99 latency summary (in
// seconds) of every pipeline stage that has recorded at least one
// observation, keyed by stage name. A nil registry reads Default().
func StageTails(r *Registry) map[string]Tails {
	if r == nil {
		r = Default()
	}
	out := make(map[string]Tails)
	for _, stage := range Stages {
		s := r.find(MetricStageSeconds, []Label{L("stage", stage)})
		if s == nil || s.hist == nil {
			continue
		}
		if tails, ok := s.hist.Tails(); ok {
			out[stage] = tails
		}
	}
	return out
}

// WriteStageTable renders a human-readable per-stage timing table from the
// registry's stage histogram, in pipeline order: observation count, last,
// mean, and total duration. Stages never observed are omitted; nothing is
// printed when no stage ran. A nil registry reads Default().
func WriteStageTable(w io.Writer, r *Registry) error {
	if r == nil {
		r = Default()
	}
	type row struct {
		stage             string
		count             int64
		last, mean, total float64
	}
	var rows []row
	for _, stage := range Stages {
		labels := []Label{L("stage", stage)}
		s := r.find(MetricStageSeconds, labels)
		if s == nil || s.hist == nil || s.hist.Count() == 0 {
			continue
		}
		h := s.hist
		n := h.Count()
		var last float64
		if ls := r.find(MetricStageLastSeconds, labels); ls != nil && ls.gauge != nil {
			last = ls.gauge.Value()
		}
		rows = append(rows, row{stage, n, last * 1e3, h.Sum() / float64(n) * 1e3, h.Sum() * 1e3})
	}
	if len(rows) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "stage     count    last-ms    mean-ms   total-ms\n"); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintf(w, "%-8s %6d %10.3f %10.3f %10.3f\n",
			row.stage, row.count, row.last, row.mean, row.total); err != nil {
			return err
		}
	}
	return nil
}
