package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers per family, one line per
// series, and the _bucket/_sum/_count triple for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	var lastFamily string
	r.visit(func(f *family, s *series) {
		if f.name != lastFamily {
			if f.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
			lastFamily = f.name
		}
		switch f.typ {
		case typeCounter:
			fmt.Fprintf(&b, "%s%s %d\n", f.name, promLabels(s.labels, "", 0), s.counter.Value())
		case typeGauge:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, promLabels(s.labels, "", 0), formatFloat(s.gauge.Value()))
		case typeHistogram:
			h := s.hist
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, promLabels(s.labels, "le", bound), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, promLabels(s.labels, "le", math.Inf(1)), h.Count())
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, promLabels(s.labels, "", 0), formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, promLabels(s.labels, "", 0), h.Count())
		}
	})
	_, err := io.WriteString(w, b.String())
	return err
}

// promLabels renders a label set, optionally with a trailing le bound for
// histogram bucket lines (leKey == "le").
func promLabels(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabel(l.Value))
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", leKey, formatFloat(le))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	// %q already escapes backslash, quote, and newline per the format spec.
	return v
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound in the metric's unit
	// (math.Inf(1) renders as the JSON string "+Inf" via LE).
	LE string `json:"le"`
	// Count is the cumulative observation count up to LE.
	Count int64 `json:"count"`
}

// SeriesSnapshot is one labelled series at snapshot time.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value holds the counter or gauge value; unused for histograms.
	Value float64 `json:"value"`
	// Count/Sum/Buckets describe a histogram; empty otherwise.
	Count   int64         `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
	// Quantiles holds the interpolated p50/p95/p99 tail summary of a
	// non-empty histogram series (see Histogram.Quantile); nil otherwise.
	Quantiles *Tails `json:"quantiles,omitempty"`
	// Exemplars holds the per-bucket trace/device exemplars a histogram
	// series has retained (see Histogram.ObserveExemplar); nil otherwise.
	// Exemplars appear only in the JSON snapshot — the Prometheus text
	// exposition stays plain 0.0.4 format, which has no exemplar syntax.
	Exemplars []BucketExemplar `json:"exemplars,omitempty"`
}

// FamilySnapshot is one named metric with all its series.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a point-in-time JSON-serializable view of a registry.
type Snapshot struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Metrics       []FamilySnapshot `json:"metrics"`
}

// Snapshot captures every family and series in registration order.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{UptimeSeconds: r.Uptime().Seconds()}
	byName := make(map[string]int)
	r.visit(func(f *family, s *series) {
		i, ok := byName[f.name]
		if !ok {
			i = len(snap.Metrics)
			byName[f.name] = i
			snap.Metrics = append(snap.Metrics, FamilySnapshot{Name: f.name, Type: string(f.typ), Help: f.help})
		}
		ss := SeriesSnapshot{}
		if len(s.labels) > 0 {
			ss.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				ss.Labels[l.Key] = l.Value
			}
		}
		switch f.typ {
		case typeCounter:
			ss.Value = float64(s.counter.Value())
		case typeGauge:
			ss.Value = s.gauge.Value()
		case typeHistogram:
			h := s.hist
			ss.Count = h.Count()
			ss.Sum = h.Sum()
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				ss.Buckets = append(ss.Buckets, BucketCount{LE: formatFloat(bound), Count: cum})
			}
			ss.Buckets = append(ss.Buckets, BucketCount{LE: "+Inf", Count: h.Count()})
			if tails, ok := h.Tails(); ok {
				ss.Quantiles = &tails
			}
			ss.Exemplars = h.Exemplars()
		}
		snap.Metrics[i].Series = append(snap.Metrics[i].Series, ss)
	})
	return snap
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// SeriesExemplars is one histogram series' retained exemplars, keyed by its
// label set — the shape ExemplarsOf returns for tail-to-trace links in
// /debug/slo.
type SeriesExemplars struct {
	Labels    map[string]string `json:"labels,omitempty"`
	Exemplars []BucketExemplar  `json:"exemplars"`
}

// ExemplarsOf collects the retained exemplars of every series in the named
// histogram family, in registration order; series without exemplars are
// omitted. Returns nil for unknown or non-histogram families.
func (r *Registry) ExemplarsOf(name string) []SeriesExemplars {
	var out []SeriesExemplars
	r.visit(func(f *family, s *series) {
		if f.name != name || s.hist == nil {
			return
		}
		ex := s.hist.Exemplars()
		if len(ex) == 0 {
			return
		}
		se := SeriesExemplars{Exemplars: ex}
		if len(s.labels) > 0 {
			se.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				se.Labels[l.Key] = l.Value
			}
		}
		out = append(out, se)
	})
	return out
}
