package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"
)

// IncidentMeta is the metadata record written as meta.json in each bundle
// and served by /debug/incidents.
type IncidentMeta struct {
	// ID is the bundle directory name (a UTC timestamp, unique per capture).
	ID string `json:"id"`
	// At is the wall-clock capture time.
	At time.Time `json:"at"`
	// Rule is the trigger rule's Name().
	Rule string `json:"rule"`
	// Detail is the rule's violation description at fire time.
	Detail string `json:"detail"`
	// JournalSeq is the journal's sequence number at capture.
	JournalSeq uint64 `json:"journal_seq"`
	// Files lists the bundle's artifact files.
	Files []string `json:"files"`
}

// journalDump is the journal.json artifact shape.
type journalDump struct {
	Seq      uint64  `json:"seq"`
	Capacity int     `json:"capacity"`
	Events   []Event `json:"events"`
}

// Capture writes one incident bundle under cfg.Dir and enforces retention.
// It is exported so CLIs can force a capture (rule = "manual") without a
// rule firing.
//
// Bundle layout (all under Dir/<id>/):
//
//	meta.json        IncidentMeta (written last, so a listed bundle is complete)
//	goroutines.txt   full goroutine dump (pprof debug=2)
//	heap.pprof       heap profile (binary pprof proto)
//	metrics.json     registry JSON snapshot
//	journal.json     journal ring contents at capture
//	traces-<svc>.json  per-tracer retained span export
//	<extra>          each Config.Extra producer's output
func (w *Watchdog) Capture(rule, detail string) (*IncidentMeta, error) {
	id := time.Now().UTC().Format("20060102T150405.000000000Z")
	dir := filepath.Join(w.cfg.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: incident dir: %w", err)
	}
	meta := IncidentMeta{
		ID:         id,
		At:         time.Now().UTC(),
		Rule:       rule,
		Detail:     detail,
		JournalSeq: w.cfg.Journal.Seq(),
	}

	write := func(name string, render func() ([]byte, error)) {
		b, err := render()
		if err != nil {
			b = []byte(fmt.Sprintf("capture failed: %v\n", err))
			name += ".err"
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			return
		}
		meta.Files = append(meta.Files, name)
	}

	write("goroutines.txt", func() ([]byte, error) {
		var b bytes.Buffer
		if err := pprof.Lookup("goroutine").WriteTo(&b, 2); err != nil {
			return nil, err
		}
		return b.Bytes(), nil
	})
	write("heap.pprof", func() ([]byte, error) {
		var b bytes.Buffer
		if err := pprof.Lookup("heap").WriteTo(&b, 0); err != nil {
			return nil, err
		}
		return b.Bytes(), nil
	})
	write("metrics.json", func() ([]byte, error) {
		var b bytes.Buffer
		if err := w.cfg.Metrics.WriteJSON(&b); err != nil {
			return nil, err
		}
		return b.Bytes(), nil
	})
	write("journal.json", func() ([]byte, error) {
		j := w.cfg.Journal
		return json.MarshalIndent(journalDump{Seq: j.Seq(), Capacity: j.Capacity(), Events: j.Snapshot()}, "", "  ")
	})
	for i, t := range w.cfg.Tracers {
		if t == nil {
			continue
		}
		name := fmt.Sprintf("traces-%s.json", sanitizeName(t.Service(), fmt.Sprintf("tracer%d", i)))
		write(name, func() ([]byte, error) {
			var b bytes.Buffer
			if err := t.WriteJSON(&b); err != nil {
				return nil, err
			}
			return b.Bytes(), nil
		})
	}
	extraNames := make([]string, 0, len(w.cfg.Extra))
	for name := range w.cfg.Extra {
		extraNames = append(extraNames, name)
	}
	sort.Strings(extraNames)
	for _, name := range extraNames {
		write(sanitizeName(name, "extra"), w.cfg.Extra[name])
	}

	write("meta.json", func() ([]byte, error) { return json.MarshalIndent(meta, "", "  ") })

	w.mu.Lock()
	w.incidents = append(w.incidents, meta)
	w.mu.Unlock()
	w.captures.Inc()
	w.cfg.Journal.PublishDetail(KindIncident, rule, id, int64(len(meta.Files)), 0)
	w.prune()
	return &meta, nil
}

// prune deletes the oldest bundle directories beyond MaxIncidents.
func (w *Watchdog) prune() {
	ids, err := bundleIDs(w.cfg.Dir)
	if err != nil || len(ids) <= w.cfg.MaxIncidents {
		return
	}
	for _, id := range ids[:len(ids)-w.cfg.MaxIncidents] {
		_ = os.RemoveAll(filepath.Join(w.cfg.Dir, id))
	}
}

// bundleIDs lists bundle directory names under root, oldest first (IDs are
// UTC timestamps, so lexical order is chronological).
func bundleIDs(root string) ([]string, error) {
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// ListIncidents reads every complete bundle's meta.json under root, oldest
// first. Bundles without a readable meta.json (in-progress or damaged
// captures) are skipped.
func ListIncidents(root string) []IncidentMeta {
	ids, err := bundleIDs(root)
	if err != nil {
		return nil
	}
	var out []IncidentMeta
	for _, id := range ids {
		b, err := os.ReadFile(filepath.Join(root, id, "meta.json"))
		if err != nil {
			continue
		}
		var m IncidentMeta
		if json.Unmarshal(b, &m) == nil {
			out = append(out, m)
		}
	}
	return out
}

// sanitizeName reduces a caller-supplied artifact name to a safe flat file
// name (no separators, no dot-prefixed names); fallback is used when
// nothing survives.
func sanitizeName(name, fallback string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	s := strings.Trim(b.String(), ".-")
	if s == "" {
		return fallback
	}
	return s
}
