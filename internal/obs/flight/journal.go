// Package flight is the repository's flight recorder: an always-on,
// lock-light ring-buffered event journal that the engine, fleet, transport,
// and adaptive control plane publish structural events into (breaker
// transitions, hedge wins, retries, replan decisions, rehost/reshape
// epochs, protocol negotiations, shed and timeout events), plus a watchdog
// that evaluates declarative trigger rules against the journal and the
// metrics registry and captures self-contained incident bundles when one
// fires.
//
// The journal follows the internal/obs design rules: standard library only,
// publishing is wait-free with respect to readers and other writers except
// for one uncontended per-slot mutex (writers claim distinct slots via an
// atomic cursor, so two writers only share a slot lock after a full
// wraparound race), and everything is nil-safe so instrumentation sites
// never branch on "is the recorder enabled".
package flight

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
)

// Kind enumerates the structural event types the stack publishes. The set is
// fixed and small so per-kind counters stay bounded and trigger rules can
// name kinds in their grammar (see ParseRule).
type Kind uint8

const (
	// KindBreakerOpen: a device circuit breaker tripped open after
	// consecutive probe/attempt failures. Actor is the device address; A is
	// the failure streak.
	KindBreakerOpen Kind = iota
	// KindBreakerHalfOpen: an open breaker's cooldown elapsed and one trial
	// request is being admitted. Actor is the device address.
	KindBreakerHalfOpen
	// KindBreakerClose: a breaker reset to closed after a success. Actor is
	// the device address.
	KindBreakerClose
	// KindHedgeWin: a speculative (hedged) replica attempt beat the primary.
	// Actor is the winning device address; A is the block index.
	KindHedgeWin
	// KindRetry: a fresh backoff round was launched for a block after every
	// replica of the previous round failed. Actor is empty; A is the block
	// index, B the round number.
	KindRetry
	// KindFailover: an in-race attempt failed and the race moved on to the
	// next replica. Actor is the failed device address; A is the block index.
	KindFailover
	// KindRepairOK / KindRepairFailed: a self-repair push of a block to a
	// warm standby completed / failed. Actor is the standby address; A is the
	// block index.
	KindRepairOK
	KindRepairFailed
	// KindRehostOK / KindRehostFailed: a live single-block migration
	// (fleet.Session.Rehost) completed / failed. Actor is the destination
	// address; A is the block index.
	KindRehostOK
	KindRehostFailed
	// KindReshapeOK / KindReshapeFailed: a full drain-and-swap re-encode at a
	// new r completed / failed. A is the new plan's r.
	KindReshapeOK
	KindReshapeFailed
	// KindReplanAdopt / KindReplanHold: the adaptive controller adopted a new
	// plan / held the incumbent. Detail carries the planner's reason.
	KindReplanAdopt
	KindReplanHold
	// KindNegotiateV3 / KindNegotiateLegacy / KindNegotiateError: a transport
	// protocol negotiation resolved to v3, fell back to the legacy gob
	// protocol, or failed. Actor is the peer address.
	KindNegotiateV3
	KindNegotiateLegacy
	KindNegotiateError
	// KindShed: the load generator's MaxInFlight backstop refused a launch.
	// A is the in-flight count at refusal.
	KindShed
	// KindTimeout: a per-attempt deadline expired. Actor is the device
	// address; A is the block index.
	KindTimeout
	// KindQueryError: a query failed after exhausting every replica, retry,
	// and hedge. Detail carries the error.
	KindQueryError
	// KindSLOBreach: a loadgen scenario step violated a declared SLO. Detail
	// carries the violation text.
	KindSLOBreach
	// KindIncident: the watchdog captured an incident bundle. Actor is the
	// rule name, Detail the bundle directory.
	KindIncident

	numKinds int = iota
)

var kindNames = [numKinds]string{
	KindBreakerOpen:     "breaker-open",
	KindBreakerHalfOpen: "breaker-halfopen",
	KindBreakerClose:    "breaker-close",
	KindHedgeWin:        "hedge-win",
	KindRetry:           "retry",
	KindFailover:        "failover",
	KindRepairOK:        "repair-ok",
	KindRepairFailed:    "repair-failed",
	KindRehostOK:        "rehost-ok",
	KindRehostFailed:    "rehost-failed",
	KindReshapeOK:       "reshape-ok",
	KindReshapeFailed:   "reshape-failed",
	KindReplanAdopt:     "replan-adopt",
	KindReplanHold:      "replan-hold",
	KindNegotiateV3:     "negotiate-v3",
	KindNegotiateLegacy: "negotiate-legacy",
	KindNegotiateError:  "negotiate-error",
	KindShed:            "shed",
	KindTimeout:         "timeout",
	KindQueryError:      "query-error",
	KindSLOBreach:       "slo-breach",
	KindIncident:        "incident",
}

// String returns the kind's stable wire name (the form trigger rules and
// the JSON export use).
func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// ParseKind resolves a wire name back to its Kind.
func ParseKind(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Kinds lists every event kind in declaration order (for docs and tests).
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// MarshalJSON renders the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses the wire name written by MarshalJSON.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, ok := ParseKind(s)
	if !ok {
		return fmt.Errorf("flight: unknown event kind %q", s)
	}
	*k = v
	return nil
}

// Event is one journal entry. The struct is fixed-size apart from the two
// strings, which at every publish site are either addresses interned for
// the life of the fleet or small constants — publishing allocates nothing.
type Event struct {
	// Seq is the 1-based global sequence number; gaps never occur, so
	// Seq - capacity tells a reader exactly how much history wrapped away.
	Seq uint64 `json:"seq"`
	// At is the event timestamp in nanoseconds on the journal's clock
	// (Unix nanos on the wall clock; offset-from-zero nanos on a virtual
	// clock whose base is the epoch).
	At int64 `json:"at_ns"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Actor is the subject device/peer address, if any.
	Actor string `json:"actor,omitempty"`
	// Detail is free-form context (an error, a planner reason).
	Detail string `json:"detail,omitempty"`
	// A and B are kind-specific small integers (block index, streak, round).
	A int64 `json:"a,omitempty"`
	B int64 `json:"b,omitempty"`
}

// slot is one ring cell. The mutex is per-slot, so it is uncontended unless
// two writers race a full wraparound apart or a reader copies the cell at
// the instant it is being overwritten.
type slot struct {
	mu sync.Mutex
	ev Event
}

// DefaultCapacity is the ring size of the process-wide journal: large
// enough to hold minutes of structural events (these are state changes,
// not per-request records) in ~1 MiB.
const DefaultCapacity = 8192

// Options configures a Journal.
type Options struct {
	// Capacity is the ring size; DefaultCapacity when zero or negative.
	Capacity int
	// Clock stamps events; trace.WallClock() when nil. Simulations pass the
	// same *trace.VirtualClock that stamps their spans, so journal and trace
	// timelines align.
	Clock trace.Clock
	// Metrics receives the per-kind scec_flight_events_total counters; nil
	// disables them (the Default journal uses obs.Default()).
	Metrics *obs.Registry
}

// Journal is the ring-buffered event recorder. A nil *Journal is safe: all
// methods no-op, so instrumentation sites publish unconditionally.
type Journal struct {
	clock  trace.Clock
	slots  []slot
	cursor atomic.Uint64 // next Seq - 1
	reg    *obs.Registry
	counts [numKinds]atomic.Pointer[obs.Counter] // lazily registered
}

// New returns a journal with the given options.
func New(o Options) *Journal {
	if o.Capacity <= 0 {
		o.Capacity = DefaultCapacity
	}
	if o.Clock == nil {
		o.Clock = trace.WallClock()
	}
	return &Journal{clock: o.Clock, slots: make([]slot, o.Capacity), reg: o.Metrics}
}

var std = New(Options{Metrics: obs.Default()})

// Default returns the process-wide journal. Layers without explicit journal
// plumbing (transport negotiation, loadgen shed accounting) publish here,
// mirroring obs.Default(); the fleet and adapt configs default to it too,
// so one /debug/journal sees the whole stack.
func Default() *Journal { return std }

// Publish records one event. Safe on a nil journal, safe for concurrent
// writers, and never blocks on readers beyond one per-slot mutex handoff.
func (j *Journal) Publish(kind Kind, actor string, a, b int64) {
	j.publish(kind, actor, "", a, b)
}

// PublishDetail is Publish with a free-form detail string.
func (j *Journal) PublishDetail(kind Kind, actor, detail string, a, b int64) {
	j.publish(kind, actor, detail, a, b)
}

func (j *Journal) publish(kind Kind, actor, detail string, a, b int64) {
	if j == nil {
		return
	}
	seq := j.cursor.Add(1)
	at := j.clock.Now().UnixNano()
	s := &j.slots[(seq-1)%uint64(len(j.slots))]
	s.mu.Lock()
	s.ev = Event{Seq: seq, At: at, Kind: kind, Actor: actor, Detail: detail, A: a, B: b}
	s.mu.Unlock()
	if c := j.counter(kind); c != nil {
		c.Inc()
	}
}

// counter lazily registers the per-kind published-events counter so an idle
// journal adds no series to the registry.
func (j *Journal) counter(kind Kind) *obs.Counter {
	if j.reg == nil || int(kind) >= numKinds {
		return nil
	}
	if c := j.counts[kind].Load(); c != nil {
		return c
	}
	c := j.reg.Counter(obs.MetricFlightEventsTotal,
		"Flight-recorder events published to the journal, by event kind.",
		obs.L("kind", kind.String()))
	j.counts[kind].Store(c)
	return c
}

// Seq returns the sequence number of the most recently claimed slot (the
// total number of events ever published).
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	return j.cursor.Load()
}

// Capacity returns the ring size.
func (j *Journal) Capacity() int {
	if j == nil {
		return 0
	}
	return len(j.slots)
}

// Snapshot copies the retained events in sequence order (oldest first).
// Writers racing the snapshot may overwrite the oldest cells mid-copy; such
// torn positions are detected by their sequence numbers and dropped, so the
// result is always a gap-tolerant, strictly increasing sequence.
func (j *Journal) Snapshot() []Event {
	if j == nil {
		return nil
	}
	head := j.cursor.Load()
	n := uint64(len(j.slots))
	lo := uint64(1)
	if head > n {
		lo = head - n + 1
	}
	out := make([]Event, 0, head-lo+1)
	for seq := lo; seq <= head; seq++ {
		s := &j.slots[(seq-1)%n]
		s.mu.Lock()
		ev := s.ev
		s.mu.Unlock()
		// A slot claimed but not yet written shows a stale or zero event;
		// keep only cells whose stamped Seq matches the position we expect
		// or a newer wrap of it (a concurrent writer lapped the snapshot).
		if ev.Seq == 0 {
			continue
		}
		if ev.Seq != seq && (ev.Seq-seq)%n != 0 {
			continue
		}
		if len(out) > 0 && ev.Seq <= out[len(out)-1].Seq {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// Tail returns the most recent n retained events in sequence order.
func (j *Journal) Tail(n int) []Event {
	all := j.Snapshot()
	if n <= 0 || n >= len(all) {
		return all
	}
	return all[len(all)-n:]
}

// CountSince counts retained events of the given kind stamped at or after
// the cutoff (nanoseconds on the journal's clock) — the primitive the
// watchdog's journal rules evaluate.
func (j *Journal) CountSince(kind Kind, cutoffNs int64) int {
	n := 0
	for _, ev := range j.Snapshot() {
		if ev.Kind == kind && ev.At >= cutoffNs {
			n++
		}
	}
	return n
}

// Now returns the current time on the journal's clock (used by the watchdog
// so rule windows stay meaningful under a virtual clock).
func (j *Journal) Now() int64 {
	if j == nil {
		return 0
	}
	return j.clock.Now().UnixNano()
}
