package flight

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
)

// Rule is one declarative incident trigger evaluated by the watchdog each
// tick. Fired returns whether the rule is in violation right now, plus a
// short human-readable detail for the incident metadata.
type Rule interface {
	// Name is the rule's stable identity (the grammar form it parses from),
	// used for rate-limit bookkeeping and incident labelling.
	Name() string
	// Fired evaluates the rule against the watchdog's journal and registry.
	Fired(w *Watchdog) (bool, string)
}

// JournalRule fires when at least Count events of the given Kind were
// published within the trailing Within window (on the journal's clock).
// Grammar form: "journal:<kind>>=<count>/<window>".
type JournalRule struct {
	Kind   Kind
	Count  int
	Within time.Duration
}

// Name renders the rule in grammar form.
func (r JournalRule) Name() string {
	return fmt.Sprintf("journal:%s>=%d/%s", r.Kind, r.Count, r.Within)
}

// Fired reports whether the journal holds enough matching recent events.
func (r JournalRule) Fired(w *Watchdog) (bool, string) {
	j := w.cfg.Journal
	cutoff := j.Now() - r.Within.Nanoseconds()
	n := j.CountSince(r.Kind, cutoff)
	if n < r.Count {
		return false, ""
	}
	return true, fmt.Sprintf("%d %s events in %s (threshold %d)", n, r.Kind, r.Within, r.Count)
}

// CounterRule fires when a counter family's summed value rises by at least
// Delta within the trailing Within window. The rule keeps its own sample
// history, so it must not be shared between watchdogs.
// Grammar form: "counter:<metric>>=<delta>/<window>".
type CounterRule struct {
	Metric string
	Delta  float64
	Within time.Duration

	mu      sync.Mutex
	samples []counterSample
}

type counterSample struct {
	at    time.Time
	total float64
}

// Name renders the rule in grammar form.
func (r *CounterRule) Name() string {
	return fmt.Sprintf("counter:%s>=%s/%s", r.Metric, strconv.FormatFloat(r.Delta, 'g', -1, 64), r.Within)
}

// Fired samples the family total and compares it against the oldest sample
// still inside the window.
func (r *CounterRule) Fired(w *Watchdog) (bool, string) {
	now := time.Now()
	total := familyTotal(w.cfg.Metrics, r.Metric)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, counterSample{at: now, total: total})
	// Drop samples older than the window, but keep one sample at or beyond
	// its far edge as the comparison baseline.
	for len(r.samples) > 1 && now.Sub(r.samples[1].at) >= r.Within {
		r.samples = r.samples[1:]
	}
	base := r.samples[0]
	if now.Sub(base.at) < r.Within/4 {
		// Not enough history to judge a window yet.
		return false, ""
	}
	if rise := total - base.total; rise >= r.Delta {
		return true, fmt.Sprintf("%s rose by %g in %s (threshold %g)", r.Metric, rise, now.Sub(base.at).Round(time.Millisecond), r.Delta)
	}
	return false, ""
}

// familyTotal sums every series of the named family in the registry
// snapshot (counters and gauges contribute Value; histograms their Count).
func familyTotal(r *obs.Registry, name string) float64 {
	for _, fam := range r.Snapshot().Metrics {
		if fam.Name != name {
			continue
		}
		var total float64
		for _, s := range fam.Series {
			if s.Count > 0 {
				total += float64(s.Count)
			} else {
				total += s.Value
			}
		}
		return total
	}
	return 0
}

// ParseRule parses one trigger rule in the declarative grammar:
//
//	journal:<kind>>=<count>/<window>     e.g. journal:breaker-open>=3/10s
//	counter:<metric>>=<delta>/<window>   e.g. counter:scec_fleet_query_errors_total>=5/30s
//
// <window> is a Go duration. Kinds are the Kind wire names.
func ParseRule(s string) (Rule, error) {
	scheme, rest, ok := strings.Cut(strings.TrimSpace(s), ":")
	if !ok {
		return nil, fmt.Errorf("flight: rule %q: want <scheme>:<expr>", s)
	}
	subject, bound, ok := strings.Cut(rest, ">=")
	if !ok {
		return nil, fmt.Errorf("flight: rule %q: want <subject>>=<threshold>/<window>", s)
	}
	thresh, window, ok := strings.Cut(bound, "/")
	if !ok {
		return nil, fmt.Errorf("flight: rule %q: want <threshold>/<window>", s)
	}
	within, err := time.ParseDuration(window)
	if err != nil || within <= 0 {
		return nil, fmt.Errorf("flight: rule %q: bad window %q", s, window)
	}
	switch scheme {
	case "journal":
		kind, ok := ParseKind(subject)
		if !ok {
			return nil, fmt.Errorf("flight: rule %q: unknown event kind %q", s, subject)
		}
		count, err := strconv.Atoi(thresh)
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("flight: rule %q: bad count %q", s, thresh)
		}
		return JournalRule{Kind: kind, Count: count, Within: within}, nil
	case "counter":
		delta, err := strconv.ParseFloat(thresh, 64)
		if err != nil || delta <= 0 {
			return nil, fmt.Errorf("flight: rule %q: bad delta %q", s, thresh)
		}
		return &CounterRule{Metric: subject, Delta: delta, Within: within}, nil
	default:
		return nil, fmt.Errorf("flight: rule %q: unknown scheme %q (want journal or counter)", s, scheme)
	}
}

// ParseRules parses a comma-separated rule list (blank entries skipped).
func ParseRules(csv string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(csv, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		r, err := ParseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// Config configures a Watchdog.
type Config struct {
	// Dir is the incident root; bundles land in Dir/<timestamp>/. Required.
	Dir string
	// Rules are the triggers; at least one is required.
	Rules []Rule
	// Journal feeds journal rules and the bundle's journal tail; Default()
	// when nil.
	Journal *Journal
	// Metrics feeds counter rules and the bundle's metrics snapshot;
	// obs.Default() when nil.
	Metrics *obs.Registry
	// Tracers contribute their retained span buffers to the bundle, one
	// traces-<service>.json each.
	Tracers []*trace.Tracer
	// Extra adds bundle files: name → content producer (e.g. "adapt.json" →
	// the controller's decision history). Producers run at capture time.
	Extra map[string]func() ([]byte, error)
	// Interval is the rule evaluation cadence; 250ms when zero.
	Interval time.Duration
	// CaptureDelay is how long after a rule fires the capture waits, so the
	// bundle includes the immediate aftermath (the recovery replan after a
	// breaker storm, not just the storm). Zero captures immediately.
	CaptureDelay time.Duration
	// MinGap rate-limits captures; once one bundle is written the watchdog
	// stays quiet for this long. 30s when zero.
	MinGap time.Duration
	// MaxIncidents bounds retention under Dir; the oldest bundles beyond it
	// are deleted after each capture. 8 when zero.
	MaxIncidents int
}

func (c Config) withDefaults() Config {
	if c.Journal == nil {
		c.Journal = Default()
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.MinGap <= 0 {
		c.MinGap = 30 * time.Second
	}
	if c.MaxIncidents <= 0 {
		c.MaxIncidents = 8
	}
	return c
}

// Watchdog evaluates trigger rules on a cadence and captures incident
// bundles when one fires. Create with NewWatchdog, start with Start, stop
// with Stop; CheckNow evaluates one tick synchronously (tests and CLIs use
// it for deterministic capture).
type Watchdog struct {
	cfg Config

	captures *obs.Counter

	mu          sync.Mutex
	lastCapture time.Time
	incidents   []IncidentMeta // this process's captures, oldest first

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewWatchdog validates cfg and returns a stopped watchdog.
func NewWatchdog(cfg Config) (*Watchdog, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("flight: watchdog needs an incident directory")
	}
	if len(cfg.Rules) == 0 {
		return nil, fmt.Errorf("flight: watchdog needs at least one rule")
	}
	cfg = cfg.withDefaults()
	w := &Watchdog{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
		captures: cfg.Metrics.Counter(obs.MetricFlightIncidentsTotal,
			"Incident bundles captured by the flight-recorder watchdog."),
	}
	return w, nil
}

// Start launches the background evaluation loop.
func (w *Watchdog) Start() {
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				_, _ = w.CheckNow()
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit. Safe to call twice and
// without Start (the loop channel close is idempotent; done only closes
// once the goroutine exits, so Stop after Start blocks until then).
func (w *Watchdog) Stop() {
	w.once.Do(func() { close(w.stop) })
	select {
	case <-w.done:
	case <-time.After(2 * time.Second):
	}
}

// CheckNow evaluates every rule once. The first rule in violation (outside
// the rate-limit gap) triggers a capture; the new bundle's metadata is
// returned, or nil if nothing fired.
func (w *Watchdog) CheckNow() (*IncidentMeta, error) {
	for _, r := range w.cfg.Rules {
		fired, detail := r.Fired(w)
		if !fired {
			continue
		}
		w.mu.Lock()
		limited := !w.lastCapture.IsZero() && time.Since(w.lastCapture) < w.cfg.MinGap
		if !limited {
			w.lastCapture = time.Now()
		}
		w.mu.Unlock()
		if limited {
			return nil, nil
		}
		if d := w.cfg.CaptureDelay; d > 0 {
			select {
			case <-w.stop:
			case <-time.After(d):
			}
		}
		meta, err := w.Capture(r.Name(), detail)
		if err != nil {
			return nil, err
		}
		return meta, nil
	}
	return nil, nil
}

// Incidents returns the bundles this watchdog captured, oldest first.
func (w *Watchdog) Incidents() []IncidentMeta {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]IncidentMeta, len(w.incidents))
	copy(out, w.incidents)
	return out
}
