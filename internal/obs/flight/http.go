package flight

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/scec/scec/internal/obs"
)

// journalResponse is the /debug/journal body.
type journalResponse struct {
	Seq      uint64  `json:"seq"`
	Capacity int     `json:"capacity"`
	Events   []Event `json:"events"`
}

// JournalHandler serves the journal ring as JSON:
//
//	GET /debug/journal              retained events, oldest first
//	    ?limit=N                    only the most recent N
//	    ?kind=<name>                only events of one kind
func JournalHandler(j *Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		events := j.Snapshot()
		if v := req.URL.Query().Get("kind"); v != "" {
			kind, ok := ParseKind(v)
			if !ok {
				http.Error(w, "unknown event kind: "+v, http.StatusBadRequest)
				return
			}
			kept := events[:0]
			for _, ev := range events {
				if ev.Kind == kind {
					kept = append(kept, ev)
				}
			}
			events = kept
		}
		if v := req.URL.Query().Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		writeJSON(w, journalResponse{Seq: j.Seq(), Capacity: j.Capacity(), Events: events})
	})
}

// incidentsResponse is the /debug/incidents body.
type incidentsResponse struct {
	Dir       string         `json:"dir"`
	Incidents []IncidentMeta `json:"incidents"`
}

// IncidentsHandler serves the incident bundles under dir:
//
//	GET /debug/incidents                 bundle metadata list, oldest first
//	GET /debug/incidents/{id}            one bundle's metadata
//	GET /debug/incidents/{id}/{file}     one artifact file from a bundle
//
// IDs and file names are validated against the actual directory listing, so
// the handler cannot be walked outside dir.
func IncidentsHandler(dir string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/incidents", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, incidentsResponse{Dir: dir, Incidents: ListIncidents(dir)})
	})
	mux.HandleFunc("/debug/incidents/{id}", func(w http.ResponseWriter, req *http.Request) {
		meta, ok := findIncident(dir, req.PathValue("id"))
		if !ok {
			http.Error(w, "no such incident", http.StatusNotFound)
			return
		}
		writeJSON(w, meta)
	})
	mux.HandleFunc("/debug/incidents/{id}/{file}", func(w http.ResponseWriter, req *http.Request) {
		meta, ok := findIncident(dir, req.PathValue("id"))
		if !ok {
			http.Error(w, "no such incident", http.StatusNotFound)
			return
		}
		name := req.PathValue("file")
		if !fileListed(meta, name) {
			http.Error(w, "no such bundle file", http.StatusNotFound)
			return
		}
		b, err := os.ReadFile(filepath.Join(dir, meta.ID, name))
		if err != nil {
			http.Error(w, "bundle file unreadable", http.StatusNotFound)
			return
		}
		switch {
		case strings.HasSuffix(name, ".json"):
			obs.JSONHeaders(w)
		case strings.HasSuffix(name, ".txt"):
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Header().Set("Cache-Control", "no-store")
		default:
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Cache-Control", "no-store")
		}
		_, _ = w.Write(b)
	})
	return mux
}

// findIncident resolves an ID against the directory listing (never against
// the raw request path, so traversal sequences cannot reach the fs).
func findIncident(dir, id string) (IncidentMeta, bool) {
	for _, m := range ListIncidents(dir) {
		if m.ID == id {
			return m, true
		}
	}
	return IncidentMeta{}, false
}

// fileListed reports whether name is one of the bundle's recorded artifacts.
func fileListed(m IncidentMeta, name string) bool {
	for _, f := range m.Files {
		if f == name {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, v any) {
	obs.JSONHeaders(w)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Routes returns the journal and incident debug routes in the shape
// obs.Handler mounts. dir may be empty, in which case only the journal
// route is returned.
func Routes(j *Journal, dir string) []obs.Route {
	routes := []obs.Route{
		{Pattern: "/debug/journal", Handler: JournalHandler(j),
			Desc: "flight-recorder event journal (?limit=N, ?kind=<name>)"},
	}
	if dir != "" {
		h := IncidentsHandler(dir)
		routes = append(routes,
			obs.Route{Pattern: "/debug/incidents", Handler: h,
				Desc: "captured incident bundles (metadata list)"},
			obs.Route{Pattern: "/debug/incidents/{id}", Handler: h,
				Desc: "one incident bundle's metadata"},
			obs.Route{Pattern: "/debug/incidents/{id}/{file}", Handler: h,
				Desc: "one incident bundle artifact file"},
		)
	}
	return routes
}
