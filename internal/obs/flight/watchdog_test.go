package flight

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
)

func TestParseRule(t *testing.T) {
	good := []struct {
		in   string
		name string
	}{
		{"journal:breaker-open>=3/10s", "journal:breaker-open>=3/10s"},
		{"journal:replan-adopt>=1/60s", "journal:replan-adopt>=1/1m0s"},
		{"counter:scec_flight_events_total>=5/30s", "counter:scec_flight_events_total>=5/30s"},
		{" journal:shed>=2/1s ", "journal:shed>=2/1s"},
	}
	for _, tc := range good {
		r, err := ParseRule(tc.in)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", tc.in, err)
			continue
		}
		if r.Name() != tc.name {
			t.Errorf("ParseRule(%q).Name() = %q, want %q", tc.in, r.Name(), tc.name)
		}
	}
	bad := []string{
		"",
		"journal",
		"journal:breaker-open",
		"journal:breaker-open>=3",
		"journal:no-such-kind>=3/10s",
		"journal:breaker-open>=zero/10s",
		"journal:breaker-open>=0/10s",
		"journal:breaker-open>=3/never",
		"journal:breaker-open>=3/-5s",
		"counter:x>=-1/10s",
		"gauge:x>=1/10s",
	}
	for _, in := range bad {
		if _, err := ParseRule(in); err == nil {
			t.Errorf("ParseRule(%q) accepted, want error", in)
		}
	}
	rules, err := ParseRules("journal:shed>=1/1s, ,counter:m>=2/5s,")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("ParseRules kept %d rules, want 2", len(rules))
	}
}

// newTestWatchdog builds a watchdog over its own journal, registry, and
// incident directory, armed with one journal rule.
func newTestWatchdog(t *testing.T, rule string, opts func(*Config)) (*Watchdog, *Journal) {
	t.Helper()
	rules, err := ParseRules(rule)
	if err != nil {
		t.Fatal(err)
	}
	j := New(Options{Capacity: 64, Metrics: obs.New()})
	cfg := Config{
		Dir:     t.TempDir(),
		Rules:   rules,
		Journal: j,
		Metrics: obs.New(),
	}
	if opts != nil {
		opts(&cfg)
	}
	w, err := NewWatchdog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, j
}

func TestJournalRuleCapturesBundle(t *testing.T) {
	tracer := trace.New(trace.Options{Service: "flight-test"})
	_, sp := tracer.StartRoot(t.Context(), "unit.query")
	sp.End()
	var w *Watchdog
	w, j := newTestWatchdog(t, "journal:breaker-open>=2/10s", func(c *Config) {
		c.Tracers = []*trace.Tracer{tracer}
		c.Extra = map[string]func() ([]byte, error){
			"extra.json": func() ([]byte, error) { return []byte(`{"hello":1}`), nil },
		}
	})

	// Below threshold: no capture.
	j.Publish(KindBreakerOpen, "dev-a", 1, 0)
	if meta, err := w.CheckNow(); err != nil || meta != nil {
		t.Fatalf("premature capture: meta=%v err=%v", meta, err)
	}
	j.Publish(KindBreakerOpen, "dev-b", 2, 0)
	meta, err := w.CheckNow()
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil {
		t.Fatal("rule at threshold did not capture")
	}
	if meta.Rule != "journal:breaker-open>=2/10s" {
		t.Fatalf("incident rule = %q", meta.Rule)
	}
	bundle := filepath.Join(w.cfg.Dir, meta.ID)
	for _, want := range []string{"goroutines.txt", "heap.pprof", "metrics.json", "journal.json", "traces-flight-test.json", "extra.json", "meta.json"} {
		if _, err := os.Stat(filepath.Join(bundle, want)); err != nil {
			t.Errorf("bundle missing %s: %v", want, err)
		}
	}
	gs, err := os.ReadFile(filepath.Join(bundle, "goroutines.txt"))
	if err != nil || !strings.Contains(string(gs), "goroutine ") {
		t.Errorf("goroutines.txt is not a stack dump (err=%v)", err)
	}
	var dump journalDump
	jb, err := os.ReadFile(filepath.Join(bundle, "journal.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(jb, &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != 2 || dump.Events[0].Kind != KindBreakerOpen {
		t.Fatalf("journal.json events = %+v", dump.Events)
	}
	tb, err := os.ReadFile(filepath.Join(bundle, "traces-flight-test.json"))
	if err != nil || !strings.Contains(string(tb), "unit.query") {
		t.Errorf("trace ring not in bundle (err=%v)", err)
	}

	// The capture itself journals an incident event.
	if j.CountSince(KindIncident, 0) != 1 {
		t.Error("capture did not publish a flight incident event")
	}

	// Rate limit: the rule still fires but MinGap suppresses a second bundle.
	if meta2, err := w.CheckNow(); err != nil || meta2 != nil {
		t.Fatalf("MinGap did not rate-limit: meta=%v err=%v", meta2, err)
	}
	if got := len(w.Incidents()); got != 1 {
		t.Fatalf("Incidents() = %d, want 1", got)
	}

	// ListIncidents only reports complete bundles (meta.json present).
	listed := ListIncidents(w.cfg.Dir)
	if len(listed) != 1 || listed[0].ID != meta.ID {
		t.Fatalf("ListIncidents = %+v", listed)
	}
	if err := os.Remove(filepath.Join(bundle, "meta.json")); err != nil {
		t.Fatal(err)
	}
	if got := ListIncidents(w.cfg.Dir); len(got) != 0 {
		t.Fatalf("bundle without meta.json still listed: %+v", got)
	}
}

func TestRetentionPrunesOldest(t *testing.T) {
	w, _ := newTestWatchdog(t, "journal:shed>=1/1s", func(c *Config) {
		c.MaxIncidents = 2
	})
	for i := 0; i < 4; i++ {
		if _, err := w.Capture("manual", "retention test"); err != nil {
			t.Fatal(err)
		}
		// Bundle IDs are nanosecond timestamps; consecutive captures in a
		// tight loop still need distinct IDs.
		time.Sleep(2 * time.Millisecond)
	}
	listed := ListIncidents(w.cfg.Dir)
	if len(listed) != 2 {
		t.Fatalf("retention kept %d bundles, want 2", len(listed))
	}
	all := w.Incidents()
	if want := all[len(all)-1].ID; listed[len(listed)-1].ID != want {
		t.Fatalf("newest bundle %q not retained (have %q)", want, listed[len(listed)-1].ID)
	}
}

func TestCounterRuleFires(t *testing.T) {
	reg := obs.New()
	rule := &CounterRule{Metric: "unit_total", Delta: 5, Within: 40 * time.Millisecond}
	w, _ := newTestWatchdog(t, "journal:shed>=1/1s", func(c *Config) {
		c.Metrics = reg
		c.Rules = []Rule{rule}
	})
	c := reg.Counter("unit_total", "test counter")
	if fired, _ := rule.Fired(w); fired {
		t.Fatal("fired with no history")
	}
	c.Add(10)
	time.Sleep(15 * time.Millisecond) // past Within/4, inside the window
	fired, detail := rule.Fired(w)
	if !fired {
		t.Fatal("a +10 step within the window did not fire the >=5 rule")
	}
	if !strings.Contains(detail, "unit_total") {
		t.Fatalf("detail %q does not name the metric", detail)
	}
}

func TestIncidentsHandlerServesAndRefusesTraversal(t *testing.T) {
	w, j := newTestWatchdog(t, "journal:shed>=1/1s", nil)
	j.Publish(KindShed, "", 1, 0)
	meta, err := w.CheckNow()
	if err != nil || meta == nil {
		t.Fatalf("capture failed: meta=%v err=%v", meta, err)
	}
	// A secret outside the incident dir must be unreachable via the handler.
	secret := filepath.Join(filepath.Dir(w.cfg.Dir), "secret.txt")
	if err := os.WriteFile(secret, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(IncidentsHandler(w.cfg.Dir))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String(), resp.Header.Get("Content-Type")
	}

	if code, body, ctype := get("/debug/incidents"); code != 200 || !strings.Contains(body, meta.ID) || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("listing: code=%d ctype=%q body=%q", code, ctype, body)
	}
	if code, body, _ := get("/debug/incidents/" + meta.ID); code != 200 || !strings.Contains(body, meta.Detail) {
		t.Fatalf("metadata: code=%d body=%q", code, body)
	}
	if code, body, ctype := get("/debug/incidents/" + meta.ID + "/journal.json"); code != 200 || !strings.Contains(body, "shed") || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("artifact: code=%d ctype=%q", code, ctype)
	}
	if code, _, ctype := get("/debug/incidents/" + meta.ID + "/goroutines.txt"); code != 200 || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("text artifact: code=%d ctype=%q", code, ctype)
	}
	for _, path := range []string{
		"/debug/incidents/no-such-id",
		"/debug/incidents/" + meta.ID + "/no-such-file",
		"/debug/incidents/" + meta.ID + "/..%2Fsecret.txt",
		"/debug/incidents/..%2F..%2Fsecret.txt",
	} {
		if code, body, _ := get(path); code == 200 || strings.Contains(body, "nope") {
			t.Errorf("%s: code=%d body=%q (must not leak)", path, code, body)
		}
	}
}

func TestJournalHandlerFilters(t *testing.T) {
	j := New(Options{Capacity: 16, Metrics: obs.New()})
	j.Publish(KindShed, "", 1, 0)
	j.Publish(KindRetry, "", 2, 0)
	j.Publish(KindShed, "", 3, 0)
	srv := httptest.NewServer(JournalHandler(j))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?kind=shed&limit=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body journalResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Cache-Control") != "no-store" {
		t.Errorf("journal response cacheable: %q", resp.Header.Get("Cache-Control"))
	}
	if len(body.Events) != 1 || body.Events[0].Kind != KindShed || body.Events[0].A != 3 {
		t.Fatalf("?kind=shed&limit=1 returned %+v", body.Events)
	}
	if body.Seq != 3 || body.Capacity != 16 {
		t.Fatalf("header seq=%d cap=%d", body.Seq, body.Capacity)
	}

	bad, err := srv.Client().Get(srv.URL + "?kind=bogus")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != 400 {
		t.Fatalf("unknown kind: code=%d, want 400", bad.StatusCode)
	}
}
