package flight

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has no wire name", k)
		}
		got, ok := ParseKind(name)
		if !ok {
			t.Fatalf("ParseKind(%q) did not resolve", name)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", name, got, k)
		}
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("JSON round trip of %v came back %v", k, back)
		}
	}
	if _, ok := ParseKind("no-such-kind"); ok {
		t.Fatal("ParseKind accepted an unknown name")
	}
}

func TestPublishSnapshotTail(t *testing.T) {
	j := New(Options{Capacity: 16, Metrics: obs.New()})
	j.Publish(KindBreakerOpen, "dev-a", 3, 0)
	j.PublishDetail(KindRehostOK, "dev-b", "dev-a", 7, 0)
	evs := j.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("Snapshot returned %d events, want 2", len(evs))
	}
	if evs[0].Kind != KindBreakerOpen || evs[0].Actor != "dev-a" || evs[0].A != 3 {
		t.Fatalf("first event mangled: %+v", evs[0])
	}
	if evs[1].Kind != KindRehostOK || evs[1].Detail != "dev-a" || evs[1].A != 7 {
		t.Fatalf("second event mangled: %+v", evs[1])
	}
	tail := j.Tail(1)
	if len(tail) != 1 || tail[0].Kind != KindRehostOK {
		t.Fatalf("Tail(1) = %+v, want the rehost event", tail)
	}
	if j.Seq() != 2 {
		t.Fatalf("Seq = %d, want 2", j.Seq())
	}
}

// TestWraparound drives the ring far past its capacity and checks the
// invariants a wrapped snapshot must hold: at most capacity events, strictly
// increasing sequence numbers, and a suffix of what was published.
func TestWraparound(t *testing.T) {
	const cap = 8
	j := New(Options{Capacity: cap, Metrics: obs.New()})
	const total = 1000
	for i := 0; i < total; i++ {
		j.Publish(KindRetry, "dev", int64(i), 0)
	}
	evs := j.Snapshot()
	if len(evs) == 0 || len(evs) > cap {
		t.Fatalf("wrapped snapshot has %d events, want 1..%d", len(evs), cap)
	}
	for i, ev := range evs {
		if i > 0 && ev.Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not strictly increasing at %d: %d then %d", i, evs[i-1].Seq, ev.Seq)
		}
		// The ring retains the most recent events: A tracks the publish index.
		if want := int64(ev.Seq - 1); ev.A != want {
			t.Fatalf("event seq %d carries A=%d, want %d", ev.Seq, ev.A, want)
		}
	}
	if last := evs[len(evs)-1]; last.Seq != total {
		t.Fatalf("newest retained seq = %d, want %d", last.Seq, total)
	}
}

// TestConcurrentHammer publishes from many goroutines while snapshotting
// concurrently; under -race this is the journal's lock-discipline proof.
func TestConcurrentHammer(t *testing.T) {
	j := New(Options{Capacity: 64, Metrics: obs.New()})
	const (
		writers    = 8
		perWriter  = 2000
		snapshots  = 200
		totalAfter = writers * perWriter
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Publish(Kind(i%int(numKinds)), "writer", int64(w), int64(i))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < snapshots; i++ {
			evs := j.Snapshot()
			for k := 1; k < len(evs); k++ {
				if evs[k].Seq <= evs[k-1].Seq {
					t.Errorf("concurrent snapshot not strictly increasing: %d then %d", evs[k-1].Seq, evs[k].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	if j.Seq() != totalAfter {
		t.Fatalf("Seq = %d after hammer, want %d (no publish may be lost or doubled)", j.Seq(), totalAfter)
	}
}

// TestVirtualClockOrdering runs the journal on a simulator clock and checks
// event timestamps reflect virtual time, so journal events align with
// virtual-clock traces.
func TestVirtualClockOrdering(t *testing.T) {
	base := time.Unix(1000, 0)
	vc := trace.NewVirtualClock(base)
	j := New(Options{Capacity: 8, Clock: vc, Metrics: obs.New()})
	j.Publish(KindShed, "", 1, 0)
	vc.Set(250 * time.Millisecond)
	j.Publish(KindShed, "", 2, 0)
	vc.Set(time.Second)
	j.Publish(KindSLOBreach, "sim", 3, 0)
	evs := j.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	wantAt := []int64{
		base.UnixNano(),
		base.Add(250 * time.Millisecond).UnixNano(),
		base.Add(time.Second).UnixNano(),
	}
	for i, ev := range evs {
		if ev.At != wantAt[i] {
			t.Fatalf("event %d at %d, want virtual %d", i, ev.At, wantAt[i])
		}
	}
	if evs[0].At >= evs[1].At || evs[1].At >= evs[2].At {
		t.Fatal("virtual timestamps not ordered")
	}
	cnt := j.CountSince(KindShed, base.Add(100*time.Millisecond).UnixNano())
	if cnt != 1 {
		t.Fatalf("CountSince(shed, +100ms) = %d, want 1", cnt)
	}
}

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	j.Publish(KindRetry, "x", 1, 2) // must not panic
	j.PublishDetail(KindShed, "x", "d", 1, 2)
	if got := j.Snapshot(); got != nil {
		t.Fatalf("nil journal Snapshot = %v, want nil", got)
	}
	if j.Seq() != 0 || j.CountSince(KindRetry, 0) != 0 {
		t.Fatal("nil journal must report empty")
	}
}

func TestEventCounters(t *testing.T) {
	reg := obs.New()
	j := New(Options{Capacity: 8, Metrics: reg})
	j.Publish(KindBreakerOpen, "d", 0, 0)
	j.Publish(KindBreakerOpen, "d", 0, 0)
	j.Publish(KindHedgeWin, "d", 0, 0)
	var open, hedge float64
	for _, fam := range reg.Snapshot().Metrics {
		if fam.Name != obs.MetricFlightEventsTotal {
			continue
		}
		for _, s := range fam.Series {
			switch s.Labels["kind"] {
			case KindBreakerOpen.String():
				open = s.Value
			case KindHedgeWin.String():
				hedge = s.Value
			}
		}
	}
	if open != 2 || hedge != 1 {
		t.Fatalf("event counters open=%v hedge=%v, want 2 and 1", open, hedge)
	}
}

func BenchmarkPublish(b *testing.B) {
	j := New(Options{Capacity: DefaultCapacity, Metrics: obs.New()})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			j.Publish(KindRetry, "bench", 1, 2)
		}
	})
}
