package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestObserveExemplarBucketPlacement(t *testing.T) {
	r := New()
	h := r.Histogram("unit_seconds", "test", []float64{0.1, 1, 10})
	h.ObserveExemplar(0.05, "trace-a", "dev-1") // bucket le=0.1
	h.ObserveExemplar(5, "trace-b", "dev-2")    // bucket le=10
	h.ObserveExemplar(100, "trace-c", "dev-3")  // +Inf overflow bucket
	h.ObserveExemplar(0.09, "trace-d", "dev-4") // evicts trace-a in le=0.1

	ex := h.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("got %d bucket exemplars, want 3: %+v", len(ex), ex)
	}
	byLE := map[string]BucketExemplar{}
	for _, e := range ex {
		byLE[e.LE] = e
	}
	if e := byLE["0.1"]; e.TraceID != "trace-d" || e.Device != "dev-4" || e.Value != 0.09 {
		t.Fatalf("le=0.1 exemplar = %+v, want the newest observation trace-d", e)
	}
	if e := byLE["10"]; e.TraceID != "trace-b" {
		t.Fatalf("le=10 exemplar = %+v", e)
	}
	if e := byLE["+Inf"]; e.TraceID != "trace-c" {
		t.Fatalf("+Inf exemplar = %+v", e)
	}
	// Exemplar observations still count toward the histogram proper.
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
}

func TestObserveExemplarUntracedDoesNotEvict(t *testing.T) {
	r := New()
	h := r.Histogram("unit_seconds", "test", []float64{1})
	h.ObserveExemplar(0.5, "trace-a", "dev-1")
	// An observation with no trace and no device must not evict the
	// attributable exemplar, but must still be recorded.
	h.ObserveExemplar(0.6, "", "")
	h.ObserveDurationExemplar(700*time.Millisecond, "", "")
	ex := h.Exemplars()
	if len(ex) != 1 || ex[0].TraceID != "trace-a" {
		t.Fatalf("untraced traffic evicted the exemplar: %+v", ex)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
}

func TestSnapshotAndExemplarsOfCarryExemplars(t *testing.T) {
	r := New()
	h := r.Histogram("unit_seconds", "test", []float64{1}, L("block", "0"))
	h.ObserveExemplar(0.5, "deadbeef", "dev-9")
	r.Histogram("unit_seconds", "test", []float64{1}, L("block", "1")).Observe(0.5)

	var found bool
	for _, fam := range r.Snapshot().Metrics {
		if fam.Name != "unit_seconds" {
			continue
		}
		for _, s := range fam.Series {
			if s.Labels["block"] == "0" {
				if len(s.Exemplars) != 1 || s.Exemplars[0].TraceID != "deadbeef" {
					t.Fatalf("snapshot exemplars = %+v", s.Exemplars)
				}
				found = true
			} else if len(s.Exemplars) != 0 {
				t.Fatalf("exemplar leaked to the wrong series: %+v", s.Exemplars)
			}
		}
	}
	if !found {
		t.Fatal("snapshot did not include the instrumented series")
	}

	se := r.ExemplarsOf("unit_seconds")
	if len(se) != 1 || se[0].Labels["block"] != "0" || se[0].Exemplars[0].Device != "dev-9" {
		t.Fatalf("ExemplarsOf = %+v", se)
	}

	// The JSON snapshot carries them; the Prometheus text format stays plain.
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"trace_id":"deadbeef"`) {
		t.Fatalf("JSON snapshot lacks the exemplar: %s", b)
	}
	var text strings.Builder
	if err := r.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text.String(), "deadbeef") {
		t.Fatal("Prometheus text format must not carry exemplars (plain 0.0.4)")
	}
}
