package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes a Tracer; the zero value selects every default.
type Options struct {
	// Service names the process role stamped on every span this tracer
	// emits ("user", "device", "sim", ...). Empty means "proc".
	Service string
	// Capacity is the recent-span ring size; zero means DefaultCapacity.
	Capacity int
	// HeadKeep is how many of the first spans since start are pinned
	// regardless of ring churn; zero means DefaultHeadKeep, negative
	// disables head retention.
	HeadKeep int
	// ErrorKeep is the error-biased reserve ring size; zero means
	// DefaultErrorKeep, negative disables it.
	ErrorKeep int
	// Clock stamps span start/end times; nil means the wall clock.
	Clock Clock
}

// Default buffer sizes. The three retention classes together bound tracer
// memory at a few thousand spans regardless of traffic.
const (
	DefaultCapacity  = 4096
	DefaultHeadKeep  = 256
	DefaultErrorKeep = 512
)

// Tracer creates spans and retains the finished ones. All methods are safe
// for concurrent use, and all methods on a nil *Tracer are no-ops, so
// instrumented code never guards call sites.
type Tracer struct {
	service string
	clock   Clock
	buf     *buffer

	mu   sync.Mutex
	subs []func(SpanData)

	started atomic.Int64
	ended   atomic.Int64
	adopted atomic.Int64
}

// New builds a tracer.
func New(o Options) *Tracer {
	if o.Service == "" {
		o.Service = "proc"
	}
	if o.Capacity == 0 {
		o.Capacity = DefaultCapacity
	}
	if o.HeadKeep == 0 {
		o.HeadKeep = DefaultHeadKeep
	}
	if o.ErrorKeep == 0 {
		o.ErrorKeep = DefaultErrorKeep
	}
	if o.Clock == nil {
		o.Clock = WallClock()
	}
	return &Tracer{
		service: o.Service,
		clock:   o.Clock,
		buf:     newBuffer(o.Capacity, o.HeadKeep, o.ErrorKeep),
	}
}

// Service returns the tracer's role name ("" for a nil tracer).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// Enabled reports whether spans will actually be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Subscribe registers fn to run on every finished or adopted span (the
// straggler analytics feed from here). fn must be fast and must not call
// back into the tracer.
func (t *Tracer) Subscribe(fn func(SpanData)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.subs = append(t.subs, fn)
	t.mu.Unlock()
}

// StartRoot opens a new trace and returns its root span along with a
// context carrying it.
func (t *Tracer) StartRoot(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return t.start(ctx, SpanContext{TraceID: newTraceID()}, name, attrs)
}

// StartSpan opens a span. If ctx carries an active span, the new span is
// its child in the same trace; otherwise a new trace begins. The returned
// context carries the new span.
func (t *Tracer) StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if p := SpanFromContext(ctx); p != nil {
		return t.start(ctx, p.Context(), name, attrs)
	}
	return t.start(ctx, SpanContext{TraceID: newTraceID()}, name, attrs)
}

// StartRemote opens a span parented under a propagated remote context —
// the device-server side of the transport uses it with the frame's
// traceparent.
func (t *Tracer) StartRemote(ctx context.Context, parent SpanContext, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil || !parent.Valid() {
		return ctx, nil
	}
	return t.start(ctx, parent, name, attrs)
}

func (t *Tracer) start(ctx context.Context, parent SpanContext, name string, attrs []Attr) (context.Context, *Span) {
	s := &Span{
		tracer: t,
		ctx: SpanContext{
			TraceID: parent.TraceID,
			SpanID:  newSpanID(),
		},
		parent: parent.SpanID,
		name:   name,
		start:  t.clock.Now(),
		attrs:  attrs,
	}
	t.started.Add(1)
	return ContextWithSpan(ctx, s), s
}

// Record adopts a fully formed finished span into the tracer's buffer —
// spans re-emitted by a device server over the transport, or fabricated on
// a virtual clock by the simulator.
func (t *Tracer) Record(sd SpanData) {
	if t == nil {
		return
	}
	if sd.TraceID == "" || sd.SpanID == "" {
		return
	}
	t.adopted.Add(1)
	t.keep(sd)
}

func (t *Tracer) keep(sd SpanData) {
	t.buf.put(sd)
	t.mu.Lock()
	subs := t.subs
	t.mu.Unlock()
	for _, fn := range subs {
		fn(sd)
	}
}

// Snapshot returns the retained spans — pinned head, error reserve, and
// recent ring — deduplicated by span ID, in no particular order.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	return t.buf.snapshot()
}

// Stats reports the tracer's lifetime span accounting: locally started,
// locally ended, and adopted (remote or fabricated) spans, plus how many
// are currently retained.
func (t *Tracer) Stats() (started, ended, adopted, retained int64) {
	if t == nil {
		return 0, 0, 0, 0
	}
	return t.started.Load(), t.ended.Load(), t.adopted.Load(), int64(len(t.buf.snapshot()))
}

// Span is one in-flight operation. All methods are safe on a nil receiver
// and after End (later calls no-op), so instrumentation never branches.
type Span struct {
	tracer *Tracer
	ctx    SpanContext
	parent SpanID
	name   string
	start  time.Time

	mu     sync.Mutex
	attrs  []Attr
	events []Event
	errMsg string
	done   bool
	data   SpanData // filled at End for Data()
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// Tracer returns the tracer that created the span (nil for nil spans).
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// Traceparent renders the span's propagation header ("" for nil spans).
func (s *Span) Traceparent() string { return s.Context().Traceparent() }

// SetAttr attaches an attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// AddEvent records a point-in-time event stamped from the tracer's clock.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	now := s.tracer.clock.Now()
	s.mu.Lock()
	if !s.done {
		s.events = append(s.events, Event{Name: name, Time: now, Attrs: attrs})
	}
	s.mu.Unlock()
}

// SetError marks the span failed. A nil error is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.errMsg = err.Error()
	}
	s.mu.Unlock()
}

// End finishes the span and hands it to the tracer's buffer. Only the
// first call records; later calls no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.tracer.clock.Now()
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	sd := SpanData{
		TraceID: s.ctx.TraceID.String(),
		SpanID:  s.ctx.SpanID.String(),
		Name:    s.name,
		Service: s.tracer.service,
		Start:   s.start,
		End:     end,
		Attrs:   s.attrs,
		Events:  s.events,
		Error:   s.errMsg,
	}
	if !s.parent.IsZero() {
		sd.ParentID = s.parent.String()
	}
	s.data = sd
	s.mu.Unlock()
	s.tracer.ended.Add(1)
	s.tracer.keep(sd)
}

// Data returns the finished span's immutable record; ok is false before
// End (and always for nil spans).
func (s *Span) Data() (SpanData, bool) {
	if s == nil {
		return SpanData{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data, s.done
}
