package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// tracesResponse is the /debug/traces body: summaries by default, full
// waterfall spans with ?spans=1.
type tracesResponse struct {
	Service string `json:"service"`
	// Started/Ended/Adopted/Retained are the tracer's lifetime counters.
	Started  int64 `json:"started"`
	Ended    int64 `json:"ended"`
	Adopted  int64 `json:"adopted"`
	Retained int64 `json:"retained"`
	// Stragglers is present when analytics are attached to the handler.
	Stragglers []DeviceStats `json:"stragglers,omitempty"`
	Traces     []TraceView   `json:"traces"`
}

// DebugHandler serves the tracer's retained traces as waterfall-ready
// JSON:
//
//	GET /debug/traces            most recent traces (?limit=N, ?spans=1)
//	GET /debug/traces/{id}       one full trace by 32-hex-digit ID
//
// Mount both patterns on the obs handler via its extra-route hook. A nil
// *Stragglers omits the analytics section.
func DebugHandler(t *Tracer, an *Stragglers) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		limit := 20
		if v := req.URL.Query().Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				limit = n
			}
		}
		wantSpans := req.URL.Query().Get("spans") == "1"
		resp := tracesResponse{Service: t.Service()}
		resp.Started, resp.Ended, resp.Adopted, resp.Retained = t.Stats()
		resp.Stragglers = an.Snapshot()
		views := t.Assemble()
		if len(views) > limit {
			views = views[:limit]
		}
		if !wantSpans {
			for i := range views {
				views[i].Spans = nil
			}
		}
		resp.Traces = views
		writeJSON(w, resp)
	})
	mux.HandleFunc("/debug/traces/{id}", func(w http.ResponseWriter, req *http.Request) {
		id := req.PathValue("id")
		view, ok := t.AssembleTrace(id)
		if !ok {
			http.Error(w, "trace not retained: "+id, http.StatusNotFound)
			return
		}
		writeJSON(w, view)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	// Mirrors obs.JSONHeaders (not imported here to keep trace free of an
	// obs dependency): JSON content type + no-store, the repo-wide debug
	// endpoint contract.
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
