package trace

// Span names and attribute keys wired through the stack. Instrumentation
// sites and the analytics/tests agree on these the same way metric names
// are shared through internal/obs/names.go.
const (
	// SpanQueryVec / SpanQueryMat are the engine query layer's root spans,
	// one per user MulVec / MulMat.
	SpanQueryVec = "engine.query.vec"
	SpanQueryMat = "engine.query.mat"
	// SpanCoalesceWait is a caller's wait inside a coalescing batch; its
	// EventCoalesced records the merged round it was served by.
	SpanCoalesceWait = "engine.coalesce.wait"
	// SpanEngineRound is one coalesced execution round (child of the round
	// leader's query span).
	SpanEngineRound = "engine.round"
	// SpanDecode is the user-side decode stage.
	SpanDecode = "engine.decode"

	// SpanFleetGather is one fleet-wide gather (all blocks).
	SpanFleetGather = "fleet.gather"
	// SpanFleetBlock is one logical block's fetch: the replica race with
	// its hedges, failovers, and retry rounds as events.
	SpanFleetBlock = "fleet.block"
	// SpanFleetAttempt is a single replica attempt inside a race. Its
	// AttrDevice/AttrHedged/AttrWin attributes feed the straggler
	// analytics.
	SpanFleetAttempt = "fleet.attempt"

	// SpanRPCClient wraps one transport round trip on the client side.
	SpanRPCClient = "rpc.client"
	// SpanRPCServer is the device server's handling of one request;
	// SpanDeviceCompute is the B_j·T·x kernel execution inside it. Both are
	// re-emitted to the client through the response frame.
	SpanRPCServer     = "rpc.server"
	SpanDeviceCompute = "device.compute"

	// SpanSimRun / SpanSimDevice are the simulator's virtual-clock trace:
	// one run root and one span per simulated device timeline.
	SpanSimRun    = "sim.run"
	SpanSimDevice = "sim.device"

	// SpanAdaptReplan is one adaptive control cycle: estimator snapshot →
	// TA2 on learned costs → hysteresis verdict. Its EventAdopt/EventHold
	// records the decision; an adopted cycle parents a SpanAdaptMigrate.
	SpanAdaptReplan = "adapt.replan"
	// SpanAdaptMigrate is one executed migration: the rehost pushes or the
	// drain-and-swap reshape that installs an adopted plan.
	SpanAdaptMigrate = "adapt.migrate"
)

// Shared attribute keys.
const (
	// AttrDevice is a device address (real runs) or index (simulated).
	AttrDevice = "device"
	// AttrBlock is a logical coded-block index in scheme order.
	AttrBlock = "block"
	// AttrKind is a transport request kind (store|compute|compute-batch|ping)
	// or a query kind (vec|mat).
	AttrKind = "kind"
	// AttrHedged marks a replica attempt launched speculatively ("true").
	AttrHedged = "hedged"
	// AttrWin marks the attempt that won its block race ("true").
	AttrWin = "win"
	// AttrBatch is a coalesced round's caller count.
	AttrBatch = "batch"
	// AttrBackend is the engine backend (local|sim|fleet).
	AttrBackend = "backend"
	// AttrRound is a retry round index within a block fetch.
	AttrRound = "round"
)

// Event names.
const (
	// EventHedge fires on the block span when a speculative attempt
	// launches.
	EventHedge = "hedge"
	// EventFailover fires when a failed attempt hands over to the next
	// replica within a round.
	EventFailover = "failover"
	// EventRetry fires when a whole round failed and the fetch backs off
	// before re-racing.
	EventRetry = "retry"
	// EventBreakerSkip fires when a replica was excluded because its
	// circuit breaker is open.
	EventBreakerSkip = "breaker-skip"
	// EventCoalesced fires on a wait span when its round executes.
	EventCoalesced = "coalesced"
	// EventAdopt / EventHold fire on an adapt.replan span when the candidate
	// plan is adopted for migration or held back (hysteresis, cooldown, or
	// insufficient improvement).
	EventAdopt = "adopt"
	EventHold  = "hold"
)
