package trace

import (
	"sort"
	"sync"
	"time"
)

// Stragglers derives per-device latency behavior from finished traces: a
// rolling digest of replica-attempt latencies per device (p50/p95/p99) and
// hedge-win attribution — how often a device won a block race outright vs.
// as the speculative second request, and how often it lost a race it
// started (the straggler signature).
//
// Subscribe it to a Tracer; it consumes SpanFleetAttempt spans and ignores
// everything else. All methods are safe for concurrent use.
type Stragglers struct {
	mu      sync.Mutex
	devices map[string]*deviceDigest
}

// digestWindow is the rolling sample count per device.
const digestWindow = 256

// deviceDigest is one device's rolling latency window plus attribution
// counters.
type deviceDigest struct {
	buf  [digestWindow]time.Duration
	n    int
	next int

	attempts  int64
	wins      int64
	hedgedWon int64 // wins by attempts that were launched as hedges
	losses    int64 // finished attempts that did not win (cancelled or beaten)
	errors    int64
}

// NewStragglers returns an empty analytics sink.
func NewStragglers() *Stragglers {
	return &Stragglers{devices: make(map[string]*deviceDigest)}
}

// Observe consumes one finished span. Wire it with Tracer.Subscribe.
func (a *Stragglers) Observe(sd SpanData) {
	if sd.Name != SpanFleetAttempt {
		return
	}
	dev := sd.Attr(AttrDevice)
	if dev == "" {
		return
	}
	a.mu.Lock()
	d := a.devices[dev]
	if d == nil {
		d = &deviceDigest{}
		a.devices[dev] = d
	}
	d.attempts++
	switch {
	case sd.Attr(AttrWin) == "true":
		d.wins++
		if sd.Attr(AttrHedged) == "true" {
			d.hedgedWon++
		}
		// Only winning attempts contribute latency samples: a loser's
		// duration measures when it was cancelled, not how fast the device
		// is.
		d.buf[d.next] = sd.Duration()
		d.next = (d.next + 1) % digestWindow
		if d.n < digestWindow {
			d.n++
		}
	case sd.Error != "":
		d.errors++
		d.losses++
	default:
		d.losses++
	}
	a.mu.Unlock()
}

// DeviceStats is one device's digest snapshot. Percentiles are zero until
// the device has won at least one race.
type DeviceStats struct {
	Device   string `json:"device"`
	Attempts int64  `json:"attempts"`
	Wins     int64  `json:"wins"`
	// HedgeWins counts wins by attempts launched speculatively — races this
	// device rescued after the leader straggled.
	HedgeWins int64         `json:"hedgeWins"`
	Losses    int64         `json:"losses"`
	Errors    int64         `json:"errors"`
	Samples   int           `json:"samples"`
	P50       time.Duration `json:"p50Ns"`
	P95       time.Duration `json:"p95Ns"`
	P99       time.Duration `json:"p99Ns"`
}

// Snapshot returns the per-device digests sorted by device name.
func (a *Stragglers) Snapshot() []DeviceStats {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := make([]DeviceStats, 0, len(a.devices))
	for dev, d := range a.devices {
		st := DeviceStats{
			Device:    dev,
			Attempts:  d.attempts,
			Wins:      d.wins,
			HedgeWins: d.hedgedWon,
			Losses:    d.losses,
			Errors:    d.errors,
			Samples:   d.n,
		}
		if d.n > 0 {
			tmp := make([]time.Duration, d.n)
			copy(tmp, d.buf[:d.n])
			sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
			st.P50 = quantile(tmp, 0.50)
			st.P95 = quantile(tmp, 0.95)
			st.P99 = quantile(tmp, 0.99)
		}
		out = append(out, st)
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// quantile reads the p-quantile from an ascending sample slice (nearest
// rank, matching the fleet's adaptive-hedge percentile).
func quantile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
