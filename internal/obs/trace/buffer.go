package trace

import (
	"sync"
	"sync/atomic"
)

// ring is a lock-free fixed-size span ring: writers claim a slot with one
// atomic increment and publish with one atomic pointer store, so the
// query hot path never takes a lock to retain a span. Readers snapshot
// best-effort — a concurrent writer may replace a slot mid-snapshot, which
// costs at worst one stale or missing span, never a torn one.
type ring struct {
	slots  []atomic.Pointer[SpanData]
	cursor atomic.Uint64
}

func newRing(capacity int) *ring {
	if capacity < 1 {
		capacity = 1
	}
	return &ring{slots: make([]atomic.Pointer[SpanData], capacity)}
}

// put stores a copy of sd, overwriting the oldest retained span once the
// ring has wrapped.
func (r *ring) put(sd SpanData) {
	i := (r.cursor.Add(1) - 1) % uint64(len(r.slots))
	r.slots[i].Store(&sd)
}

// snapshot appends every retained span to dst, oldest first (best effort
// under concurrent writes).
func (r *ring) snapshot(dst []SpanData) []SpanData {
	n := r.cursor.Load()
	cap64 := uint64(len(r.slots))
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	for i := start; i < n; i++ {
		if p := r.slots[i%cap64].Load(); p != nil {
			dst = append(dst, *p)
		}
	}
	return dst
}

// buffer is the tracer's retention policy: three classes of spans survive
// unbounded traffic in bounded memory.
//
//   - head: the first spans since process start, pinned forever — the
//     provisioning story (stores, first queries) stays inspectable after
//     days of churn;
//   - tail: a ring of the most recent spans — "what just happened";
//   - errors: a separate ring fed only by failed spans, so a burst of
//     healthy traffic cannot evict the evidence of a fault.
type buffer struct {
	tail *ring
	errs *ring // nil when error retention is disabled

	headKeep int
	headN    atomic.Int64
	headMu   sync.Mutex
	head     []SpanData
}

func newBuffer(capacity, headKeep, errorKeep int) *buffer {
	b := &buffer{tail: newRing(capacity)}
	if headKeep > 0 {
		b.headKeep = headKeep
		b.head = make([]SpanData, 0, headKeep)
	}
	if errorKeep > 0 {
		b.errs = newRing(errorKeep)
	}
	return b
}

// put retains one finished span under every class that wants it.
func (b *buffer) put(sd SpanData) {
	// Head: an atomic pre-check keeps the steady state lock-free; only the
	// first headKeep spans ever take the mutex.
	if b.headKeep > 0 && b.headN.Load() < int64(b.headKeep) {
		b.headMu.Lock()
		if len(b.head) < b.headKeep {
			b.head = append(b.head, sd)
			b.headN.Store(int64(len(b.head)))
		}
		b.headMu.Unlock()
	}
	if sd.Error != "" && b.errs != nil {
		b.errs.put(sd)
	}
	b.tail.put(sd)
}

// snapshot returns every retained span deduplicated by span ID (a span can
// sit in several classes at once), oldest classes first.
func (b *buffer) snapshot() []SpanData {
	var all []SpanData
	if b.headKeep > 0 {
		b.headMu.Lock()
		all = append(all, b.head...)
		b.headMu.Unlock()
	}
	if b.errs != nil {
		all = b.errs.snapshot(all)
	}
	all = b.tail.snapshot(all)
	seen := make(map[string]bool, len(all))
	out := all[:0]
	for _, sd := range all {
		key := sd.TraceID + "/" + sd.SpanID
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, sd)
	}
	return out
}
