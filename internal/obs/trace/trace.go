// Package trace is the repository's zero-dependency distributed-tracing
// substrate: causally linked spans with W3C-style trace/span identifiers,
// carried across the transport's RPC frames so one user query yields a
// single trace spanning engine → coalescer → fleet racing/hedging →
// transport → device-side compute.
//
// The design follows the rest of internal/obs: standard library only, hot
// paths touch atomics and fixed-size buffers, and everything degrades to a
// no-op when tracing is off — a nil *Tracer (and the nil *Span it hands
// out) is safe to call, so instrumentation sites never branch on "is
// tracing enabled".
//
// Finished spans land in a lock-cheap in-process buffer with sampled
// retention (the first spans since start, the most recent spans, and an
// error-biased reserve — see buffer.go), from which the exporter renders
// OTLP-shaped JSON (export.go) and the straggler analytics derive
// per-device latency digests and hedge-win attribution (straggler.go).
package trace

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceID is a 16-byte W3C trace identifier, rendered as 32 hex digits.
type TraceID [16]byte

// SpanID is an 8-byte W3C span identifier, rendered as 16 hex digits.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// idSource draws random identifiers. math/rand/v2's top-level generator is
// goroutine-safe and seeded per process; trace IDs need uniqueness, not
// unpredictability.
func newTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(a >> (8 * i))
			t[8+i] = byte(b >> (8 * i))
		}
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		a := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(a >> (8 * i))
		}
	}
	return s
}

// NewTraceID mints a random trace ID in wire form, for callers fabricating
// SpanData directly (the simulator's virtual-clock trace mode).
func NewTraceID() string { return newTraceID().String() }

// NewSpanID mints a random span ID in wire form; see NewTraceID.
func NewSpanID() string { return newSpanID().String() }

// SpanContext is the propagated slice of a span: enough to parent remote
// children and to stitch re-emitted spans into the same trace.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both identifiers are set.
func (c SpanContext) Valid() bool { return !c.TraceID.IsZero() && !c.SpanID.IsZero() }

// Traceparent renders the context in the W3C trace-context header shape,
// "00-<32 hex trace id>-<16 hex span id>-01" — the wire form the transport
// carries in its request frames.
func (c SpanContext) Traceparent() string {
	if !c.Valid() {
		return ""
	}
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, c.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, c.SpanID[:])
	b = append(b, "-01"...)
	return string(b)
}

// ParseTraceparent parses the W3C-style header rendered by Traceparent.
// Unknown versions are accepted as long as the field widths match, per the
// spec's forward-compatibility rule; ok is false for anything malformed.
func ParseTraceparent(s string) (SpanContext, bool) {
	var c SpanContext
	// version(2) - traceid(32) - spanid(16) - flags(2)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return c, false
	}
	if _, err := hex.Decode(c.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(c.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	if !c.Valid() {
		return SpanContext{}, false
	}
	return c, true
}

// Attr is one key/value annotation on a span or event. Values are strings;
// callers format numbers themselves (the hot paths attach few attributes
// and the export is textual anyway).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A is shorthand for constructing an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Event is a point-in-time annotation inside a span — a retry, a hedge
// launch, a breaker rejection.
type Event struct {
	Name  string    `json:"name"`
	Time  time.Time `json:"time"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// SpanData is an immutable finished span. It is the unit of retention,
// export, and cross-process re-emission (the transport gob-encodes it into
// response frames), so every field is exported and encoding-friendly.
type SpanData struct {
	TraceID  string `json:"traceId"`
	SpanID   string `json:"spanId"`
	ParentID string `json:"parentSpanId,omitempty"`
	Name     string `json:"name"`
	// Service names the process role that emitted the span (for example
	// "user" or "device"), so a stitched cross-process trace still shows
	// which side each span ran on.
	Service string    `json:"service,omitempty"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Attrs   []Attr    `json:"attrs,omitempty"`
	Events  []Event   `json:"events,omitempty"`
	// Error is the span's failure message; empty for successful spans.
	Error string `json:"error,omitempty"`
}

// Duration is the span's wall (or virtual) extent.
func (s SpanData) Duration() time.Duration { return s.End.Sub(s.Start) }

// Attr returns the value of the named attribute, or "".
func (s SpanData) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Clock abstracts time for span stamps: the wall clock in real runs, a
// settable virtual clock when the simulator emits traces on its
// event-driven timeline.
type Clock interface {
	Now() time.Time
}

// wallClock is the default Clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// WallClock returns the real-time clock.
func WallClock() Clock { return wallClock{} }

// VirtualClock is a manually advanced clock for simulator traces: spans
// stamped from it carry the simulation's virtual timeline instead of wall
// time. The zero base is the Unix epoch, so exported virtual traces read as
// offsets from t=0.
type VirtualClock struct {
	mu   sync.Mutex
	base time.Time
	off  time.Duration
}

// NewVirtualClock returns a virtual clock starting at base (use
// time.Unix(0,0) for offset-from-zero traces).
func NewVirtualClock(base time.Time) *VirtualClock { return &VirtualClock{base: base} }

// Now returns the current virtual instant.
func (v *VirtualClock) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.base.Add(v.off)
}

// Set moves the clock to the given offset from base; rewinding is allowed
// (the simulator walks device timelines out of order).
func (v *VirtualClock) Set(off time.Duration) {
	v.mu.Lock()
	v.off = off
	v.mu.Unlock()
}

// At returns the instant at the given offset from base without moving the
// clock — the simulator stamps most spans analytically.
func (v *VirtualClock) At(off time.Duration) time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.base.Add(off)
}

// ctxKey keys the active span in a context.Context.
type ctxKey struct{}

// ContextWithSpan returns ctx with s as the active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the active span, or nil. A nil result is safe to
// use: every *Span method no-ops on nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
