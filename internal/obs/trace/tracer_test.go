package trace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Options{Service: "t"})
	_, sp := tr.StartRoot(context.Background(), "root")
	tp := sp.Traceparent()
	if len(tp) != 55 {
		t.Fatalf("traceparent %q: len %d, want 55", tp, len(tp))
	}
	got, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) not ok", tp)
	}
	if got != sp.Context() {
		t.Fatalf("round trip changed context: %+v != %+v", got, sp.Context())
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("valid header rejected")
	}
	bad := []string{
		"",
		"00",
		valid[:54],                          // too short
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-" + strings.Repeat("0", 32) + "-0123456789abcdef-01",                 // zero trace id
		"00-0123456789abcdef0123456789abcdef-" + strings.Repeat("0", 16) + "-01", // zero span id
		"00-0123456789abcdefXXXXXX6789abcdef-0123456789abcdef-01",                // non-hex
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
	// Unknown version with correct field widths is accepted (forward
	// compatibility).
	if _, ok := ParseTraceparent("cc" + valid[2:]); !ok {
		t.Errorf("unknown version with valid widths rejected")
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRoot(context.Background(), "x", A("k", "v"))
	if sp != nil {
		t.Fatalf("nil tracer returned a span")
	}
	if _, sp2 := tr.StartSpan(ctx, "y"); sp2 != nil {
		t.Fatalf("nil tracer StartSpan returned a span")
	}
	// Every span method must be callable on nil.
	sp.SetAttr("a", "b")
	sp.AddEvent("e")
	sp.SetError(errors.New("boom"))
	sp.End()
	if _, ok := sp.Data(); ok {
		t.Fatalf("nil span reported data")
	}
	if sp.Traceparent() != "" {
		t.Fatalf("nil span has a traceparent")
	}
	tr.Record(SpanData{})
	if tr.Snapshot() != nil {
		t.Fatalf("nil tracer has spans")
	}
	if tr.Enabled() {
		t.Fatalf("nil tracer reports enabled")
	}
}

func TestBufferRetainsHeadTailAndErrors(t *testing.T) {
	tr := New(Options{Service: "t", Capacity: 8, HeadKeep: 2, ErrorKeep: 4})
	mk := func(i int, fail bool) {
		_, sp := tr.StartRoot(context.Background(), fmt.Sprintf("s%d", i))
		if fail {
			sp.SetError(errors.New("x"))
		}
		sp.End()
	}
	mk(0, false)
	mk(1, false)
	mk(2, true) // error span, early enough to be evicted from the tail
	for i := 3; i < 40; i++ {
		mk(i, false)
	}
	byName := map[string]bool{}
	for _, sd := range tr.Snapshot() {
		byName[sd.Name] = true
	}
	for _, want := range []string{"s0", "s1", "s2", "s39"} {
		if !byName[want] {
			t.Errorf("span %s evicted, want retained (head/error/tail)", want)
		}
	}
	if byName["s10"] {
		t.Errorf("mid-stream span s10 survived a full tail wrap")
	}
}

// TestSpanRingUnderConcurrentExport hammers the span ring from GOMAXPROCS
// goroutines while exporters and the debug endpoint drain it concurrently.
// Run with -race; correctness here is "no data race, no torn span".
func TestSpanRingUnderConcurrentExport(t *testing.T) {
	tr := New(Options{Service: "hammer", Capacity: 64, HeadKeep: 8, ErrorKeep: 8})
	an := NewStragglers()
	tr.Subscribe(an.Observe)
	h := DebugHandler(tr, an)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	writers := runtime.GOMAXPROCS(0)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, root := tr.StartRoot(context.Background(), SpanFleetGather)
				_, child := tr.StartSpan(ctx, SpanFleetAttempt,
					A(AttrDevice, fmt.Sprintf("dev-%d", w)), A(AttrWin, "true"))
				child.AddEvent(EventHedge)
				if i%7 == 0 {
					child.SetError(errors.New("injected"))
				}
				child.End()
				root.End()
				tr.Record(SpanData{TraceID: NewTraceID(), SpanID: NewSpanID(), Name: "adopted"})
			}
		}(w)
	}
	deadline := time.After(200 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			if err := tr.WriteJSON(io.Discard); err != nil {
				t.Errorf("WriteJSON: %v", err)
			}
			tr.Assemble()
			an.Snapshot()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?spans=1", nil))
			if !json.Valid(rec.Body.Bytes()) {
				t.Errorf("/debug/traces returned invalid JSON under load")
			}
		}
	}
	close(stop)
	wg.Wait()
	for _, sd := range tr.Snapshot() {
		if sd.SpanID == "" || sd.TraceID == "" {
			t.Fatalf("torn span retained: %+v", sd)
		}
	}
}

// TestSpanNestingProperty is the property test: for randomly generated span
// trees, every child's [start, end] nests inside its parent's on both the
// wall clock and a virtual clock.
func TestSpanNestingProperty(t *testing.T) {
	t.Run("wall", func(t *testing.T) {
		tr := New(Options{Service: "p"})
		rng := rand.New(rand.NewPCG(1, 2))
		for trial := 0; trial < 30; trial++ {
			growSpanTree(tr, rng, nil)
		}
		checkNesting(t, tr.Snapshot())
	})
	t.Run("virtual", func(t *testing.T) {
		vc := NewVirtualClock(time.Unix(0, 0).UTC())
		tr := New(Options{Service: "p", Clock: vc})
		rng := rand.New(rand.NewPCG(3, 4))
		for trial := 0; trial < 30; trial++ {
			growSpanTree(tr, rng, vc)
		}
		checkNesting(t, tr.Snapshot())
	})
}

// growSpanTree opens a random, properly bracketed span tree: children
// always start after their parent and end before it. A non-nil virtual
// clock is advanced monotonically between operations.
func growSpanTree(tr *Tracer, rng *rand.Rand, vc *VirtualClock) {
	var off time.Duration
	tick := func() {
		if vc != nil {
			off += time.Duration(1+rng.IntN(1000)) * time.Microsecond
			vc.Set(off)
		}
	}
	var grow func(ctx context.Context, depth int)
	grow = func(ctx context.Context, depth int) {
		tick()
		ctx, sp := tr.StartSpan(ctx, fmt.Sprintf("d%d", depth))
		if depth < 4 {
			for i := 0; i < rng.IntN(3); i++ {
				grow(ctx, depth+1)
			}
		}
		tick()
		sp.End()
	}
	tick()
	ctx, root := tr.StartRoot(context.Background(), "root")
	for i := 0; i < 1+rng.IntN(3); i++ {
		grow(ctx, 1)
	}
	tick()
	root.End()
}

// checkNesting asserts every retained span with a retained parent starts no
// earlier and ends no later than that parent.
func checkNesting(t *testing.T, spans []SpanData) {
	t.Helper()
	byID := make(map[string]SpanData, len(spans))
	for _, sd := range spans {
		byID[sd.TraceID+"/"+sd.SpanID] = sd
	}
	checked := 0
	for _, sd := range spans {
		if sd.ParentID == "" {
			continue
		}
		parent, ok := byID[sd.TraceID+"/"+sd.ParentID]
		if !ok {
			continue
		}
		if sd.Start.Before(parent.Start) || sd.End.After(parent.End) {
			t.Fatalf("span %s [%v,%v] escapes parent %s [%v,%v]",
				sd.Name, sd.Start, sd.End, parent.Name, parent.Start, parent.End)
		}
		checked++
	}
	if checked == 0 {
		t.Fatalf("property checked no parent/child pairs")
	}
}

func TestStragglerAttribution(t *testing.T) {
	an := NewStragglers()
	base := time.Unix(0, 0)
	obs := func(dev string, d time.Duration, hedged, win bool, errMsg string) {
		sd := SpanData{
			Name:  SpanFleetAttempt,
			Start: base, End: base.Add(d),
			Attrs: []Attr{A(AttrDevice, dev), A(AttrHedged, fmt.Sprint(hedged))},
			Error: errMsg,
		}
		if win {
			sd.Attrs = append(sd.Attrs, A(AttrWin, "true"))
		}
		an.Observe(sd)
	}
	for i := 1; i <= 100; i++ {
		obs("a", time.Duration(i)*time.Millisecond, false, true, "")
	}
	obs("b", 5*time.Millisecond, true, true, "")
	obs("b", 0, false, false, "dead")
	an.Observe(SpanData{Name: SpanRPCClient, Attrs: []Attr{A(AttrDevice, "c")}}) // ignored

	stats := an.Snapshot()
	if len(stats) != 2 {
		t.Fatalf("got %d devices, want 2 (non-attempt spans must be ignored)", len(stats))
	}
	a, b := stats[0], stats[1]
	if a.Device != "a" || b.Device != "b" {
		t.Fatalf("unexpected order: %s, %s", a.Device, b.Device)
	}
	if a.Wins != 100 || a.Samples != 100 {
		t.Fatalf("device a: wins=%d samples=%d", a.Wins, a.Samples)
	}
	if a.P50 < 40*time.Millisecond || a.P50 > 60*time.Millisecond {
		t.Errorf("device a p50 = %v, want ≈50ms", a.P50)
	}
	if a.P95 < 90*time.Millisecond || a.P99 < a.P95 {
		t.Errorf("device a p95=%v p99=%v", a.P95, a.P99)
	}
	if b.HedgeWins != 1 || b.Errors != 1 || b.Losses != 1 {
		t.Errorf("device b attribution: %+v", b)
	}
}

func TestAssembleWaterfall(t *testing.T) {
	vc := NewVirtualClock(time.Unix(0, 0).UTC())
	tr := New(Options{Service: "w", Clock: vc})
	ctx, root := tr.StartRoot(context.Background(), "root")
	vc.Set(10 * time.Millisecond)
	_, child := tr.StartSpan(ctx, "child")
	vc.Set(30 * time.Millisecond)
	child.End()
	vc.Set(40 * time.Millisecond)
	root.End()

	views := tr.Assemble()
	if len(views) != 1 {
		t.Fatalf("got %d traces, want 1", len(views))
	}
	v := views[0]
	if v.Root != "root" || v.SpanCount != 2 || v.Duration != 40*time.Millisecond {
		t.Fatalf("trace view: %+v", v)
	}
	if full, ok := tr.AssembleTrace(v.TraceID); !ok || full.SpanCount != 2 {
		t.Fatalf("AssembleTrace(%s) = %+v, %v", v.TraceID, full, ok)
	}
	for _, s := range v.Spans {
		switch s.Name {
		case "root":
			if s.Depth != 0 || s.OffsetNs != 0 {
				t.Errorf("root waterfall: %+v", s)
			}
		case "child":
			if s.Depth != 1 || s.OffsetNs != (10*time.Millisecond).Nanoseconds() ||
				s.DurationNs != (20*time.Millisecond).Nanoseconds() {
				t.Errorf("child waterfall: %+v", s)
			}
		}
	}
	if _, ok := tr.AssembleTrace("deadbeef"); ok {
		t.Fatalf("AssembleTrace on unknown id succeeded")
	}
}
