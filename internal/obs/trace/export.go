package trace

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"time"
)

// TraceView is one assembled trace: every retained span sharing a trace
// ID, sorted by start time with per-span offsets from the trace's own
// start — directly renderable as a waterfall.
type TraceView struct {
	TraceID string `json:"traceId"`
	// Root names the trace's root span (the span with no retained parent
	// that starts earliest), "" when the root was evicted.
	Root string `json:"root,omitempty"`
	// Start is the earliest span start; Duration spans to the latest end.
	Start      time.Time     `json:"start"`
	Duration   time.Duration `json:"durationNs"`
	SpanCount  int           `json:"spanCount"`
	ErrorCount int           `json:"errorCount"`
	Spans      []SpanView    `json:"spans"`
}

// SpanView is one span inside a TraceView, annotated with waterfall
// offsets.
type SpanView struct {
	SpanData
	// OffsetNs is the span's start relative to the trace start; with
	// DurationNs it positions the waterfall bar.
	OffsetNs   int64 `json:"offsetNs"`
	DurationNs int64 `json:"durationNs"`
	// Depth is the span's ancestry depth within the retained trace
	// (root = 0; orphans count from their earliest retained ancestor).
	Depth int `json:"depth"`
}

// Assemble groups the tracer's retained spans into traces, most recent
// first. Partially retained traces assemble from whatever survived the
// buffer.
func (t *Tracer) Assemble() []TraceView {
	return assemble(t.Snapshot())
}

// AssembleTrace returns one assembled trace by hex ID; ok is false when no
// retained span carries it.
func (t *Tracer) AssembleTrace(id string) (TraceView, bool) {
	var spans []SpanData
	for _, sd := range t.Snapshot() {
		if sd.TraceID == id {
			spans = append(spans, sd)
		}
	}
	if len(spans) == 0 {
		return TraceView{}, false
	}
	return assemble(spans)[0], true
}

func assemble(spans []SpanData) []TraceView {
	byTrace := make(map[string][]SpanData)
	for _, sd := range spans {
		byTrace[sd.TraceID] = append(byTrace[sd.TraceID], sd)
	}
	views := make([]TraceView, 0, len(byTrace))
	for id, group := range byTrace {
		sort.Slice(group, func(i, j int) bool {
			if !group[i].Start.Equal(group[j].Start) {
				return group[i].Start.Before(group[j].Start)
			}
			return group[i].SpanID < group[j].SpanID
		})
		v := TraceView{TraceID: id, Start: group[0].Start, SpanCount: len(group)}
		present := make(map[string]SpanData, len(group))
		for _, sd := range group {
			present[sd.SpanID] = sd
		}
		depth := func(sd SpanData) int {
			d := 0
			// Walk retained ancestry; the bound guards cycles from corrupt
			// adopted spans.
			for p, ok := present[sd.ParentID]; ok && d < len(group); p, ok = present[p.ParentID] {
				d++
			}
			return d
		}
		end := group[0].End
		for _, sd := range group {
			if sd.End.After(end) {
				end = sd.End
			}
			if sd.Error != "" {
				v.ErrorCount++
			}
			if _, hasParent := present[sd.ParentID]; !hasParent && v.Root == "" {
				v.Root = sd.Name
			}
			v.Spans = append(v.Spans, SpanView{
				SpanData:   sd,
				OffsetNs:   sd.Start.Sub(v.Start).Nanoseconds(),
				DurationNs: sd.Duration().Nanoseconds(),
				Depth:      depth(sd),
			})
		}
		v.Duration = end.Sub(v.Start)
		views = append(views, v)
	}
	sort.Slice(views, func(i, j int) bool { return views[i].Start.After(views[j].Start) })
	return views
}

// Export is the file/stream shape the exporter writes: an OTLP-flavoured
// envelope (service identity + flat span records grouped by trace) that
// waterfall tooling and the EXPERIMENTS recipes consume as plain JSON.
type Export struct {
	Service    string      `json:"service"`
	ExportedAt time.Time   `json:"exportedAt"`
	Traces     []TraceView `json:"traces"`
}

// WriteJSON renders every retained trace as one indented JSON document.
func (t *Tracer) WriteJSON(w io.Writer) error {
	exp := Export{Service: t.Service(), Traces: t.Assemble()}
	if t != nil {
		exp.ExportedAt = t.clock.Now()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(exp)
}

// WriteFile exports every retained trace to path (overwriting).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := t.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
