// Package obs is the repository's zero-dependency telemetry layer: atomic
// counters, float gauges, fixed-bucket histograms, and lightweight stage
// span timers, collected in a Registry that renders both Prometheus text
// exposition and JSON snapshots and serves an optional net/http handler
// bundle (/metrics, /healthz, /debug/pprof/*, /debug/vars).
//
// The repo is deliberately dependency-free, so everything here is standard
// library only. All metric updates are lock-free atomics; registration
// (get-or-create of a named series) takes a mutex but callers cache the
// returned handle, so hot paths never contend.
//
// Real runs (internal/transport) and simulated runs (internal/sim) record
// the same metric names — see names.go — so a Prometheus scrape of a live
// fleet and the JSON snapshot of a virtual-clock simulation are directly
// comparable.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// each bucket counts observations ≤ its upper bound, plus an implicit +Inf
// bucket). Buckets are fixed at registration; observations are atomic.
type Histogram struct {
	bounds  []float64      // ascending upper bounds, +Inf implicit
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	ex      []atomic.Pointer[Exemplar]
	total   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
		ex:     make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Exemplar links one histogram bucket to the concrete request that last
// landed in it: the trace ID to pull from /debug/traces/{id} and the device
// that served it. Each bucket retains only its most recent exemplar, so a
// p99 spike always points at a live, representative trace.
type Exemplar struct {
	// Value is the observed value in the histogram's unit.
	Value float64 `json:"value"`
	// TraceID is the W3C trace identifier of the observation, if traced.
	TraceID string `json:"trace_id,omitempty"`
	// Device is the serving device address, if attributable.
	Device string `json:"device,omitempty"`
	// AtUnixNano is the wall-clock capture time.
	AtUnixNano int64 `json:"at_ns"`
}

// BucketExemplar is one bucket's retained exemplar in an export, tagged
// with the bucket's upper bound (same LE rendering as BucketCount).
type BucketExemplar struct {
	LE string `json:"le"`
	Exemplar
}

// ObserveExemplar is Observe plus exemplar retention: the observation's
// bucket keeps this trace ID + device as its most recent exemplar.
// Observations with neither a trace ID nor a device degrade to plain
// Observe so untraced traffic never evicts an attributable exemplar.
func (h *Histogram) ObserveExemplar(v float64, traceID, device string) {
	h.Observe(v)
	if traceID == "" && device == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.ex[i].Store(&Exemplar{Value: v, TraceID: traceID, Device: device, AtUnixNano: time.Now().UnixNano()})
}

// ObserveDurationExemplar records a duration in seconds with an exemplar.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID, device string) {
	h.ObserveExemplar(d.Seconds(), traceID, device)
}

// Exemplars returns the buckets that have retained an exemplar, in bound
// order (the +Inf overflow bucket renders as "+Inf").
func (h *Histogram) Exemplars() []BucketExemplar {
	var out []BucketExemplar
	for i := range h.ex {
		e := h.ex[i].Load()
		if e == nil {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		out = append(out, BucketExemplar{LE: le, Exemplar: *e})
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the unit every *_seconds
// histogram in this repo uses).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns the interpolated q-quantile (q in [0, 1]) of the
// observations, Prometheus histogram_quantile-style: the target rank q·count
// is located in the cumulative buckets and the value is interpolated
// linearly within the containing bucket (observations are assumed
// non-negative, so the first bucket interpolates from zero). When the rank
// lands in the +Inf overflow bucket the highest finite bound is returned.
// Returns NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.total.Load()
	if n == 0 || len(h.bounds) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum int64
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum+c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if c == 0 {
				return bound
			}
			return lower + (bound-lower)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Tails is the interpolated tail summary of one histogram series, in the
// histogram's unit (seconds for every *_seconds family in this repo).
type Tails struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Tails returns the p50/p95/p99 summary and whether the histogram has any
// observations to summarize.
func (h *Histogram) Tails() (Tails, bool) {
	if h.Count() == 0 {
		return Tails{}, false
	}
	return Tails{P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99)}, true
}

// DefLatencyBuckets spans 100µs to 10s, the range of interest for both RPC
// round trips on loopback/LAN fleets and virtual-clock stage durations.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one labelled instance of a metric family; exactly one of the
// three value fields is non-nil, matching the family type.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

func (f *family) get(labels []Label) *series {
	key := canonical(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	s := &series{labels: ls}
	switch f.typ {
	case typeCounter:
		s.counter = &Counter{}
	case typeGauge:
		s.gauge = &Gauge{}
	case typeHistogram:
		s.hist = newHistogram(f.buckets)
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// canonical renders labels as a stable sorted key.
func canonical(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Registry holds named metric families. The zero value is not usable; call
// New (or use Default for the process-wide registry).
type Registry struct {
	start time.Time

	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{start: time.Now(), families: make(map[string]*family)}
}

var std = New()

// Default returns the process-wide registry. The façade (package scec), the
// transport, and the simulator all record here unless explicitly given
// another registry, so one /metrics endpoint sees the whole stack.
func Default() *Registry { return std }

func (r *Registry) family(name, help string, t metricType, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != t {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, t))
		}
		return f
	}
	f := &family{name: name, help: help, typ: t, buckets: buckets, series: make(map[string]*series)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter returns the counter series for name+labels, creating it on first
// use. help is recorded on first registration of the family.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.family(name, help, typeCounter, nil).get(labels).counter
}

// Gauge returns the gauge series for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.family(name, help, typeGauge, nil).get(labels).gauge
}

// Histogram returns the histogram series for name+labels, creating it on
// first use. buckets applies on first registration of the family; later
// calls reuse the registered layout.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.family(name, help, typeHistogram, buckets).get(labels).hist
}

// find returns the series for name+labels if it exists, without creating
// it (reads must not mint empty series into the export).
func (r *Registry) find(name string, labels []Label) *series {
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil {
		return nil
	}
	key := canonical(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.series[key]
}

// Uptime reports how long the registry has existed.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }

// visit walks families and series in registration order under the locks.
func (r *Registry) visit(fn func(f *family, s *series)) {
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, len(f.order))
		copy(keys, f.order)
		ss := make([]*series, len(keys))
		for i, k := range keys {
			ss[i] = f.series[k]
		}
		f.mu.Unlock()
		for _, s := range ss {
			fn(f, s)
		}
	}
}
