// Package fleet is a fault-tolerant, long-lived client-side runtime for the
// SCEC protocol over the real transport: the production counterpart of the
// virtual-clock study in internal/sim/replicated.go.
//
// The paper's §VI and Remark 1 leave stragglers and faults to future work;
// the mechanism productionized here is block replication, which leaves the
// Def. 2 security argument untouched: every replica of logical block j
// stores exactly B_j·T, so each device's view — replica or not — is the
// per-device view already proven to leak nothing (Theorem 3). Only replicas
// of *different* blocks colluding would change the threat model, and that
// is the §VI collusion extension, not replication.
//
// A Session owns one deployment across a replicated device fleet and serves
// many queries against it:
//
//   - provisioning pushes each coded block to its whole replica set
//     concurrently, and keeps warm standbys unprovisioned until needed;
//   - each query races a block's replicas: first winner is consumed, a
//     hedged second request launches if the leader outlives the hedge delay
//     (fixed, or adaptive from a winner-latency percentile), failures fail
//     over to the next replica, and whole rounds retry with exponential
//     backoff plus jitter — all under one query deadline, with losers
//     cancelled through the transport's context plumbing;
//   - a ping prober feeds a per-device circuit breaker
//     (closed → open → half-open) so queries stop routing to dead replicas
//     and notice recoveries;
//   - when a block's healthy replica count degrades below its provisioned
//     target, the runtime re-pushes the block to a standby in the
//     background. No re-encode is needed: replicas of the same block are
//     security-equivalent by construction.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/flight"
	"github.com/scec/scec/internal/obs/trace"
	"github.com/scec/scec/internal/transport"
)

// Defaults for the zero Config values.
const (
	DefaultQueryTimeout     = 30 * time.Second
	DefaultRPCTimeout       = transport.DefaultTimeout
	DefaultHedgeAfter       = 50 * time.Millisecond // pre-warmup adaptive fallback
	DefaultMaxRetries       = 2
	DefaultRetryBackoff     = 25 * time.Millisecond
	DefaultProbeInterval    = time.Second
	DefaultProbeTimeout     = time.Second
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 5 * time.Second
)

// ErrBlockUnavailable reports that a query exhausted every replica, hedge,
// and retry for some logical block. Test for it with errors.Is; the full
// error is a *BlockUnavailableError carrying the block index.
var ErrBlockUnavailable = errors.New("fleet: block unavailable")

// BlockUnavailableError is the typed per-block failure a query returns when
// no replica of one logical coded block could serve it within the query
// deadline.
type BlockUnavailableError struct {
	// Block is the logical coded-block index (scheme device order).
	Block int
	// Attempts counts the replica-selection rounds that were tried.
	Attempts int
	// Err is the last underlying failure (dial error, remote error, or the
	// query deadline).
	Err error
}

func (e *BlockUnavailableError) Error() string {
	return fmt.Sprintf("fleet: block %d unavailable after %d rounds: %v", e.Block, e.Attempts, e.Err)
}

func (e *BlockUnavailableError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrBlockUnavailable) match.
func (e *BlockUnavailableError) Is(target error) bool { return target == ErrBlockUnavailable }

// Config tunes a fleet session. Replicas is mandatory; every other zero
// value selects the package default.
type Config struct {
	// Replicas[j] lists the device addresses hosting copies of coded block
	// j, in scheme device order. Every block needs at least one address and
	// no address may appear twice (a device stores exactly one block).
	Replicas [][]string
	// Standbys lists warm standby devices: running, reachable, holding no
	// block until self-repair promotes them into a degraded replica set.
	Standbys []string
	// QueryTimeout bounds one MulVec/MulMat end to end.
	QueryTimeout time.Duration
	// RPCTimeout bounds each replica round trip (and each repair push).
	RPCTimeout time.Duration
	// HedgeAfter is how long the leading replica attempt may run before a
	// speculative second attempt launches. Zero selects an adaptive delay:
	// the p95 of recent winner latencies (DefaultHedgeAfter until enough
	// samples accumulate). Negative disables hedging.
	HedgeAfter time.Duration
	// MaxRetries is how many extra replica-selection rounds a block fetch
	// may run after the first, each separated by exponential backoff with
	// jitter. Negative means no retries.
	MaxRetries int
	// RetryBackoff is the base backoff; round n sleeps up to 2^n times this
	// (full jitter), capped at one second.
	RetryBackoff time.Duration
	// ProbeInterval is the health-probe period. Negative disables probing
	// (and with it breaker recovery and self-repair).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health ping.
	ProbeTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// device's circuit breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker blocks a device before
	// one half-open trial is admitted.
	BreakerCooldown time.Duration
	// DisableRepair turns off background standby promotion.
	DisableRepair bool
	// Proto selects the wire protocol for every device round trip:
	// transport.ProtoAuto (the default) negotiates the multiplexed v3
	// protocol with transparent gob fallback, ProtoGob forces legacy
	// frames, ProtoV3 refuses to fall back.
	Proto transport.Proto
	// Metrics receives the session's telemetry; nil means obs.Default().
	Metrics *obs.Registry
	// Tracer, when non-nil, records a span tree per query (gather → block
	// races → replica attempts, with hedges/failovers/retries as events),
	// adopts device-side spans re-emitted over the transport, and feeds the
	// per-device straggler analytics. Nil disables fleet tracing.
	Tracer *trace.Tracer
	// OnWin, when non-nil, is called for every winning replica attempt with
	// the device address, logical block index, and attempt latency. The
	// adaptive control plane's cost estimator feeds from it without needing
	// a tracer. The callback runs on the query path and must be fast.
	OnWin func(device string, block int, latency time.Duration)
	// Journal receives the session's flight-recorder events (breaker
	// transitions, hedge wins, retries, repairs, rehosts); nil means
	// flight.Default().
	Journal *flight.Journal
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.QueryTimeout == 0 {
		c.QueryTimeout = DefaultQueryTimeout
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = DefaultRPCTimeout
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	return c
}

// blockState is one logical coded block's runtime state.
type blockState[E comparable] struct {
	index int
	rows  *matrix.Dense[E] // retained for standby repair pushes
	want  int              // expected intermediate-result length
	// target is the provisioned replica count; self-repair keeps the
	// healthy count at or above it while standbys last.
	target int

	mu        sync.Mutex
	replicas  []*device
	repairing bool
}

// Session is a live fleet runtime serving queries for one deployment.
type Session[E comparable] struct {
	f     field.Field[E]
	code  coding.Code[E]
	cfg   Config
	reg   *obs.Registry
	trc   *trace.Tracer
	strag *trace.Stragglers
	cols  int

	client transport.Client[E]
	probe  transport.Client[E]
	cloud  transport.Cloud[E]

	blocks []*blockState[E]

	// devMu guards the devices map: Serve fills it, but the adaptive
	// control plane's Rehost registers fresh devices at runtime while the
	// prober iterates, so every access takes the lock.
	devMu   sync.Mutex
	devices map[string]*device

	standbyMu sync.Mutex
	standbys  []*device

	lat *latencyRing
	met sessionMetrics
	jr  *flight.Journal

	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// Serve provisions the replica fleet with enc's blocks and starts the
// runtime: blocks are pushed to every replica concurrently (recorded as the
// pipeline's store stage), the health prober starts, and the returned
// Session is ready to serve queries. Provisioning is strict — any failed
// push aborts Serve — because at provisioning time every configured device
// is expected alive; tolerance of faults begins with the first query.
func Serve[E comparable](f field.Field[E], enc *coding.Encoding[E], cfg Config) (*Session[E], error) {
	if enc == nil || enc.Code == nil {
		return nil, errors.New("fleet: encoding has no code attached")
	}
	code := enc.Code
	if len(enc.Blocks) != code.Devices() {
		return nil, fmt.Errorf("fleet: encoding has %d blocks, code has %d devices", len(enc.Blocks), code.Devices())
	}
	if len(cfg.Replicas) != len(enc.Blocks) {
		return nil, fmt.Errorf("fleet: %d replica sets for %d coded blocks", len(cfg.Replicas), len(enc.Blocks))
	}
	seen := make(map[string]bool)
	for j, group := range cfg.Replicas {
		if len(group) == 0 {
			return nil, fmt.Errorf("fleet: block %d has no replicas", j)
		}
		for _, addr := range group {
			if seen[addr] {
				return nil, fmt.Errorf("fleet: address %s assigned twice (a device stores exactly one block)", addr)
			}
			seen[addr] = true
		}
	}
	for _, addr := range cfg.Standbys {
		if seen[addr] {
			return nil, fmt.Errorf("fleet: standby %s already hosts a block", addr)
		}
		seen[addr] = true
	}
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	jr := cfg.Journal
	if jr == nil {
		jr = flight.Default()
	}

	s := &Session[E]{
		f:       f,
		code:    code,
		cfg:     cfg,
		reg:     reg,
		cols:    enc.Blocks[0].Cols(),
		client:  transport.Client[E]{F: f, Code: code, Timeout: cfg.RPCTimeout, Metrics: reg, Proto: cfg.Proto},
		probe:   transport.Client[E]{F: f, Timeout: cfg.ProbeTimeout, Metrics: reg, Proto: cfg.Proto},
		cloud:   transport.Cloud[E]{Timeout: cfg.RPCTimeout, Metrics: reg, Proto: cfg.Proto},
		devices: make(map[string]*device),
		lat:     newLatencyRing(),
		trc:     cfg.Tracer,
		jr:      jr,
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.met.init(reg)
	if s.trc != nil {
		// The straggler analytics consume every finished fleet.attempt span
		// (including device spans adopted from response frames, which the
		// filter ignores).
		s.strag = trace.NewStragglers()
		s.trc.Subscribe(s.strag.Observe)
	}

	s.blocks = make([]*blockState[E], len(enc.Blocks))
	for j, group := range cfg.Replicas {
		b := &blockState[E]{
			index:  j,
			rows:   enc.Blocks[j],
			want:   code.RowsOn(j),
			target: len(group),
		}
		for _, addr := range group {
			d := s.newDevice(addr)
			b.replicas = append(b.replicas, d)
		}
		s.blocks[j] = b
	}
	for _, addr := range cfg.Standbys {
		s.standbys = append(s.standbys, s.newDevice(addr))
	}

	if err := s.provision(enc); err != nil {
		s.cancel()
		return nil, err
	}
	if cfg.ProbeInterval > 0 {
		s.wg.Add(1)
		go s.probeLoop()
	}
	return s, nil
}

// newDevice registers a device and its breaker-state gauge, reusing the
// existing registration (breaker history included) when the address is
// already known.
func (s *Session[E]) newDevice(addr string) *device {
	s.devMu.Lock()
	defer s.devMu.Unlock()
	if d := s.devices[addr]; d != nil {
		return d
	}
	d := &device{
		addr:  addr,
		gauge: s.reg.Gauge(obs.MetricFleetBreakerState, breakerHelp, obs.L("device", addr)),
		rtt: s.reg.Gauge(obs.MetricTransportHeartbeatRTT,
			"Most recent heartbeat round-trip time per device in seconds (transport.Client.LastRTT).",
			obs.L("device", addr)),
		jr: s.jr,
	}
	d.gauge.Set(float64(BreakerClosed))
	s.devices[addr] = d
	return d
}

// provision pushes every block to its full replica set concurrently.
func (s *Session[E]) provision(enc *coding.Encoding[E]) error {
	defer obs.StartStage(s.reg, obs.StageStore).End()
	type push struct {
		block int
		addr  string
	}
	var pushes []push
	for j, group := range s.cfg.Replicas {
		for _, addr := range group {
			pushes = append(pushes, push{j, addr})
		}
	}
	errs := make([]error, len(pushes))
	var wg sync.WaitGroup
	for i, p := range pushes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(s.ctx, s.cfg.RPCTimeout)
			defer cancel()
			if err := s.cloud.Store(ctx, p.addr, enc.Blocks[p.block]); err != nil {
				errs[i] = fmt.Errorf("fleet: provision block %d on %s: %w", p.block, p.addr, err)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Devices returns the number of logical coded blocks (the code's device
// count); the physical fleet is larger by replication and standbys.
func (s *Session[E]) Devices() int { return s.code.Devices() }

// Close stops the prober and any in-flight repairs, cancels outstanding
// queries, and waits for the runtime's goroutines. It is idempotent and
// does not shut down the device servers, which the caller owns.
func (s *Session[E]) Close() error {
	s.closeOnce.Do(func() {
		s.cancel()
		s.wg.Wait()
	})
	return nil
}
