package fleet

import (
	"context"
	"fmt"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/flight"
)

// The fleet side of live block migration. The adaptive control plane
// (internal/adapt) decides *when* a block should move; Rehost is the fleet
// mechanism that moves it without interrupting service:
//
//  1. the block's retained coded rows are pushed to the destination device
//     (exactly the self-repair push — replicas of the same block are
//     security-equivalent by Def. 2, so no re-encode is needed);
//  2. under the block's lock, the destination joins the replica set and the
//     vacated source leaves it, atomically from any query's point of view
//     (candidates snapshot the set under the same lock);
//  3. the source returns to the standby pool behind a quarantine: attempts
//     that snapshotted the old replica set may still be reading the old
//     block from it for up to one RPC timeout, so a Store of a *different*
//     block must not overwrite it until they cannot exist.
//
// Changing r is not a rehost — that reshapes every block and swaps the whole
// session through engine.Swappable; see internal/adapt.

// Code exposes the session's coding code (the adaptive planner needs the
// per-block row counts it implies).
func (s *Session[E]) Code() coding.Code[E] { return s.code }

// BlockHosts snapshots the current replica addresses of every logical
// block, in code device order.
func (s *Session[E]) BlockHosts() [][]string {
	hosts := make([][]string, len(s.blocks))
	for j, b := range s.blocks {
		b.mu.Lock()
		group := make([]string, len(b.replicas))
		for i, d := range b.replicas {
			group[i] = d.addr
		}
		b.mu.Unlock()
		hosts[j] = group
	}
	return hosts
}

// StandbyAddrs lists the standby devices currently eligible to receive a
// block: healthy breakers, outside the post-vacate quarantine.
func (s *Session[E]) StandbyAddrs() []string {
	s.standbyMu.Lock()
	defer s.standbyMu.Unlock()
	now := time.Now()
	var addrs []string
	for _, d := range s.standbys {
		if d.healthy() && !d.vacatedWithin(now, s.cfg.RPCTimeout) {
			addrs = append(addrs, d.addr)
		}
	}
	return addrs
}

// DeviceHealthy reports whether addr's circuit breaker is fully closed.
// Unknown devices report false.
func (s *Session[E]) DeviceHealthy(addr string) bool {
	s.devMu.Lock()
	d := s.devices[addr]
	s.devMu.Unlock()
	return d != nil && d.healthy()
}

// DeviceRTT reports the last measured transport round trip toward addr
// (negotiation handshake or timed idle heartbeat), the estimator's network
// signal.
func (s *Session[E]) DeviceRTT(addr string) (time.Duration, bool) {
	return s.client.LastRTT(addr)
}

const rehostHelp = "Live block migrations (adaptive rehost pushes), by outcome."

// Rehost moves logical block `block` from replica `from` to device `to`
// without interrupting queries: push first, then an atomic replica swap.
// `to` is normally a warm standby; an address the session has never seen is
// registered on the fly (the caller vouches a device server runs there).
// The vacated `from` joins the standby pool after its quarantine, so a
// sequence of rehosts recycles devices instead of consuming them.
func (s *Session[E]) Rehost(ctx context.Context, block int, from, to string) error {
	if block < 0 || block >= len(s.blocks) {
		return fmt.Errorf("fleet: rehost block %d of %d", block, len(s.blocks))
	}
	if from == to {
		return fmt.Errorf("fleet: rehost block %d onto its own host %s", block, to)
	}
	b := s.blocks[block]
	// One device stores exactly one block (the Serve invariant Def. 2's
	// per-device view relies on): refuse a destination that already hosts
	// any block.
	for _, other := range s.blocks {
		other.mu.Lock()
		for _, d := range other.replicas {
			if d.addr == to {
				other.mu.Unlock()
				return fmt.Errorf("fleet: rehost destination %s already hosts block %d", to, other.index)
			}
		}
		other.mu.Unlock()
	}
	dest, err := s.claimStandby(to)
	if err != nil {
		return err
	}

	ctx, cancel := mergeSessionCtx(ctx, s.ctx, s.cfg.RPCTimeout)
	defer cancel()
	sp := obs.StartStage(s.reg, obs.StageStore) // a rehost re-runs the store stage
	err = s.cloud.Store(ctx, to, b.rows)
	sp.End()
	if err != nil {
		s.reg.Counter(obs.MetricFleetRehostsTotal, rehostHelp, obs.L("outcome", outcomeFailed)).Inc()
		s.jr.PublishDetail(flight.KindRehostFailed, to, err.Error(), int64(block), 0)
		if s.ctx.Err() == nil {
			dest.recordFailure(s.cfg.BreakerThreshold)
		}
		s.returnStandby(dest)
		return fmt.Errorf("fleet: rehost block %d to %s: %w", block, to, err)
	}
	dest.recordSuccess()

	var vacated *device
	b.mu.Lock()
	b.replicas = append(b.replicas, dest)
	for i, d := range b.replicas {
		if d.addr == from {
			vacated = d
			b.replicas = append(b.replicas[:i], b.replicas[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
	if vacated != nil {
		vacated.markVacated(time.Now())
		s.returnStandby(vacated)
	}
	s.reg.Counter(obs.MetricFleetRehostsTotal, rehostHelp, obs.L("outcome", outcomeOK)).Inc()
	s.jr.PublishDetail(flight.KindRehostOK, to, from, int64(block), 0)
	return nil
}

// claimStandby removes the named device from the standby pool, or registers
// a brand-new device when the address is unknown. Quarantined standbys are
// refused: a Store could overwrite a block that straggling in-flight
// attempts are still reading.
func (s *Session[E]) claimStandby(addr string) (*device, error) {
	s.standbyMu.Lock()
	for i, d := range s.standbys {
		if d.addr != addr {
			continue
		}
		if d.vacatedWithin(time.Now(), s.cfg.RPCTimeout) {
			s.standbyMu.Unlock()
			return nil, fmt.Errorf("fleet: standby %s is quarantined after vacating its block; retry shortly", addr)
		}
		s.standbys = append(s.standbys[:i], s.standbys[i+1:]...)
		s.standbyMu.Unlock()
		return d, nil
	}
	s.standbyMu.Unlock()
	return s.newDevice(addr), nil
}

// mergeSessionCtx bounds an operation by the caller's context, the session
// lifetime, and the RPC timeout.
func mergeSessionCtx(ctx context.Context, session context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	merged, cancel := context.WithTimeout(session, timeout)
	if ctx == nil {
		return merged, cancel
	}
	stop := context.AfterFunc(ctx, cancel)
	return merged, func() { stop(); cancel() }
}
