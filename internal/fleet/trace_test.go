package fleet

import (
	"errors"
	"testing"
	"time"

	"github.com/scec/scec/internal/obs/trace"
)

// gatherTrace returns the assembled trace containing the fleet.gather span
// (the query trace; a bare fleet MulVec also roots a separate decode trace).
func gatherTrace(t *testing.T, tr *trace.Tracer) trace.TraceView {
	t.Helper()
	for _, v := range tr.Assemble() {
		for _, sp := range v.Spans {
			if sp.Name == trace.SpanFleetGather {
				return v
			}
		}
	}
	t.Fatal("no trace contains a fleet.gather span")
	return trace.TraceView{}
}

// spansNamed filters a trace's spans by name.
func spansNamed(v trace.TraceView, name string) []trace.SpanView {
	var out []trace.SpanView
	for _, sp := range v.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// eventsNamed collects all events with the given name across a trace.
func eventsNamed(v trace.TraceView, name string) []trace.Event {
	var out []trace.Event
	for _, sp := range v.Spans {
		for _, ev := range sp.Events {
			if ev.Name == name {
				out = append(out, ev)
			}
		}
	}
	return out
}

func attrOf(evs []trace.Event, key string) []string {
	var out []string
	for _, ev := range evs {
		for _, a := range ev.Attrs {
			if a.Key == key {
				out = append(out, a.Value)
			}
		}
	}
	return out
}

// TestTraceFaultInjectionFailover kills the first replica of every block and
// asserts the query's trace records the whole story: a failed attempt on the
// dead proxy, a failover event naming the replica that took over, and a
// winning attempt attributed to it — all in one trace under fleet.gather.
func TestTraceFaultInjectionFailover(t *testing.T) {
	env := newTestEnv(t, 2, 0)
	tr := trace.New(trace.Options{Service: "fleet-test"})
	env.cfg.Tracer = tr
	s := env.serve(t)

	for j := range env.proxies {
		env.proxies[j][0].SetMode(FaultDrop)
	}
	got, err := s.MulVec(env.x)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, env.want, got)

	v := gatherTrace(t, tr)
	if v.ErrorCount == 0 {
		t.Errorf("trace records no failed spans despite %d dead replicas", len(env.proxies))
	}
	blocks := spansNamed(v, trace.SpanFleetBlock)
	if len(blocks) != env.scheme.Devices() {
		t.Fatalf("trace has %d fleet.block spans, want %d", len(blocks), env.scheme.Devices())
	}
	for j := range env.proxies {
		dead, live := env.proxies[j][0].Addr(), env.proxies[j][1].Addr()
		var sawFail, sawWin bool
		for _, sp := range spansNamed(v, trace.SpanFleetAttempt) {
			switch sp.Attr(trace.AttrDevice) {
			case dead:
				if sp.Error != "" {
					sawFail = true
				}
			case live:
				if sp.Attr(trace.AttrWin) == "true" && sp.Error == "" {
					sawWin = true
				}
			}
		}
		if !sawFail {
			t.Errorf("block %d: no failed attempt span attributed to dead replica %s", j, dead)
		}
		if !sawWin {
			t.Errorf("block %d: no winning attempt span attributed to replica %s", j, live)
		}
	}
	failovers := eventsNamed(v, trace.EventFailover)
	if len(failovers) != env.scheme.Devices() {
		t.Errorf("trace has %d failover events, want %d", len(failovers), env.scheme.Devices())
	}
	targets := map[string]bool{}
	for _, addr := range attrOf(failovers, trace.AttrDevice) {
		targets[addr] = true
	}
	for j := range env.proxies {
		if !targets[env.proxies[j][1].Addr()] {
			t.Errorf("block %d: failover event does not name the surviving replica", j)
		}
	}
	// Gather parents every block span; attempts parent under their block.
	byID := map[string]trace.SpanView{}
	for _, sp := range v.Spans {
		byID[sp.SpanID] = sp
	}
	gather := spansNamed(v, trace.SpanFleetGather)[0]
	for _, b := range blocks {
		if b.ParentID != gather.SpanID {
			t.Errorf("block span %s not parented under fleet.gather", b.Attr(trace.AttrBlock))
		}
	}
	for _, a := range spansNamed(v, trace.SpanFleetAttempt) {
		if p, ok := byID[a.ParentID]; !ok || p.Name != trace.SpanFleetBlock {
			t.Errorf("attempt on %s not parented under a fleet.block span", a.Attr(trace.AttrDevice))
		}
	}
}

// TestTraceHedgeWinAttribution delays block 0's leader so the hedged second
// replica wins: the trace must carry the hedge event naming the speculative
// replica, the winner must be marked hedged, and the straggler analytics
// must attribute the hedge win to that device.
func TestTraceHedgeWinAttribution(t *testing.T) {
	env := newTestEnv(t, 2, 0)
	tr := trace.New(trace.Options{Service: "fleet-test"})
	env.cfg.Tracer = tr
	env.cfg.HedgeAfter = 20 * time.Millisecond
	s := env.serve(t)

	env.proxies[0][0].SetDelay(400 * time.Millisecond)
	env.proxies[0][0].SetMode(FaultDelay)
	got, err := s.MulVec(env.x)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, env.want, got)

	v := gatherTrace(t, tr)
	hedges := eventsNamed(v, trace.EventHedge)
	if len(hedges) == 0 {
		t.Fatal("trace has no hedge event")
	}
	hedgeTarget := env.proxies[0][1].Addr()
	if addrs := attrOf(hedges, trace.AttrDevice); len(addrs) == 0 || addrs[0] != hedgeTarget {
		t.Errorf("hedge event names %v, want %s", addrs, hedgeTarget)
	}
	var hedgedWin bool
	for _, sp := range spansNamed(v, trace.SpanFleetAttempt) {
		if sp.Attr(trace.AttrDevice) == hedgeTarget &&
			sp.Attr(trace.AttrHedged) == "true" && sp.Attr(trace.AttrWin) == "true" {
			hedgedWin = true
		}
	}
	if !hedgedWin {
		t.Errorf("no winning hedged attempt attributed to %s", hedgeTarget)
	}

	var stats []trace.DeviceStats
	// The analytics subscriber runs synchronously on span End, so the
	// snapshot is already consistent here.
	for _, ds := range s.Stragglers().Snapshot() {
		if ds.Device == hedgeTarget {
			stats = append(stats, ds)
		}
	}
	if len(stats) != 1 || stats[0].HedgeWins < 1 {
		t.Errorf("straggler analytics do not credit %s with a hedge win: %+v", hedgeTarget, stats)
	}
}

// TestTraceRetryEvents drops every replica of block 0 so the fetch burns its
// retry rounds: the failed query's trace must carry retry events with round
// indexes and an errored block span, while other blocks still win cleanly.
func TestTraceRetryEvents(t *testing.T) {
	env := newTestEnv(t, 2, 0)
	tr := trace.New(trace.Options{Service: "fleet-test"})
	env.cfg.Tracer = tr
	env.cfg.MaxRetries = 1
	env.cfg.RetryBackoff = 2 * time.Millisecond
	s := env.serve(t)

	for k := range env.proxies[0] {
		env.proxies[0][k].SetMode(FaultDrop)
	}
	_, err := s.MulVec(env.x)
	if !errors.Is(err, ErrBlockUnavailable) {
		t.Fatalf("err = %v, want ErrBlockUnavailable", err)
	}

	v := gatherTrace(t, tr)
	retries := eventsNamed(v, trace.EventRetry)
	if len(retries) == 0 {
		t.Fatal("failed query's trace has no retry event")
	}
	if rounds := attrOf(retries, trace.AttrRound); len(rounds) == 0 || rounds[0] != "1" {
		t.Errorf("retry rounds = %v, want first round \"1\"", rounds)
	}
	var block0 *trace.SpanView
	for _, sp := range spansNamed(v, trace.SpanFleetBlock) {
		if sp.Attr(trace.AttrBlock) == "0" {
			block0 = &sp
			break
		}
	}
	if block0 == nil {
		t.Fatal("no fleet.block span for block 0")
	}
	if block0.Error == "" {
		t.Errorf("block 0 span carries no error after exhausting replicas")
	}
	if gather := spansNamed(v, trace.SpanFleetGather); gather[0].Error == "" {
		t.Errorf("gather span carries no error for a failed query")
	}
}

// TestDebugSnapshotLive asserts Session.Debug reflects breaker state and
// straggler analytics after a faulted query (the /debug/fleet payload).
func TestDebugSnapshotLive(t *testing.T) {
	env := newTestEnv(t, 2, 1)
	tr := trace.New(trace.Options{Service: "fleet-test"})
	env.cfg.Tracer = tr
	env.cfg.BreakerThreshold = 1
	s := env.serve(t)

	for j := range env.proxies {
		env.proxies[j][0].SetMode(FaultDrop)
	}
	if _, err := s.MulVec(env.x); err != nil {
		t.Fatal(err)
	}
	d := s.Debug()
	if len(d.Blocks) != env.scheme.Devices() {
		t.Fatalf("debug has %d blocks, want %d", len(d.Blocks), env.scheme.Devices())
	}
	if len(d.Standbys) != 1 {
		t.Errorf("debug standbys = %d, want 1", len(d.Standbys))
	}
	if d.Queries < 1 {
		t.Errorf("debug queries = %d, want >= 1", d.Queries)
	}
	var sawOpen bool
	for _, b := range d.Blocks {
		for _, r := range b.Replicas {
			if r.Breaker == "open" {
				sawOpen = true
			}
		}
	}
	if !sawOpen {
		t.Errorf("no open breaker in debug snapshot after killing replicas: %+v", d.Blocks)
	}
	if len(d.Stragglers) == 0 {
		t.Errorf("debug snapshot has no straggler analytics despite traced queries")
	}
}
