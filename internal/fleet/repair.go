package fleet

import (
	"context"
	"time"

	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/flight"
)

// checkRepairs scans every block after a probe round and starts a background
// repair for each one whose healthy replica count fell below its provisioned
// target, while a healthy standby is available. At most one repair per block
// runs at a time.
func (s *Session[E]) checkRepairs() {
	for _, b := range s.blocks {
		b.mu.Lock()
		healthy := 0
		for _, d := range b.replicas {
			if d.healthy() {
				healthy++
			}
		}
		start := healthy < b.target && !b.repairing
		if start {
			b.repairing = true
		}
		b.mu.Unlock()
		if !start {
			continue
		}
		sb := s.takeStandby()
		if sb == nil {
			b.mu.Lock()
			b.repairing = false
			b.mu.Unlock()
			continue
		}
		s.wg.Add(1)
		go s.repair(b, sb)
	}
}

// repair pushes the block's retained coded rows to the standby and promotes
// it into the replica set. Replicas of the same block are security-
// equivalent (the standby's view is exactly L(B_j), Def. 2), so no
// re-encode of the deployment is needed. A failed push counts against the
// standby's breaker and returns it to the pool for a later attempt.
func (s *Session[E]) repair(b *blockState[E], sb *device) {
	defer s.wg.Done()
	ctx, cancel := context.WithTimeout(s.ctx, s.cfg.RPCTimeout)
	defer cancel()
	sp := obs.StartStage(s.reg, obs.StageStore) // a repair re-runs the pipeline's store stage
	err := s.cloud.Store(ctx, sb.addr, b.rows)
	sp.End()
	b.mu.Lock()
	b.repairing = false
	if err == nil {
		b.replicas = append(b.replicas, sb)
	}
	b.mu.Unlock()
	if err != nil {
		s.met.repairs(outcomeFailed).Inc()
		s.jr.PublishDetail(flight.KindRepairFailed, sb.addr, err.Error(), int64(b.index), 0)
		if s.ctx.Err() == nil {
			sb.recordFailure(s.cfg.BreakerThreshold)
		}
		s.returnStandby(sb)
		return
	}
	sb.recordSuccess()
	s.met.repairs(outcomeOK).Inc()
	s.jr.Publish(flight.KindRepairOK, sb.addr, int64(b.index), 0)
}

// takeStandby pops the first healthy standby outside the post-vacate
// quarantine, or nil.
func (s *Session[E]) takeStandby() *device {
	s.standbyMu.Lock()
	defer s.standbyMu.Unlock()
	now := time.Now()
	for i, d := range s.standbys {
		if d.healthy() && !d.vacatedWithin(now, s.cfg.RPCTimeout) {
			s.standbys = append(s.standbys[:i], s.standbys[i+1:]...)
			return d
		}
	}
	return nil
}

// returnStandby puts a standby back into the pool after a failed repair.
func (s *Session[E]) returnStandby(d *device) {
	s.standbyMu.Lock()
	s.standbys = append(s.standbys, d)
	s.standbyMu.Unlock()
}

// Standbys reports how many unpromoted standbys remain.
func (s *Session[E]) Standbys() int {
	s.standbyMu.Lock()
	defer s.standbyMu.Unlock()
	return len(s.standbys)
}

// ReplicaCount reports block j's current replica-set size (provisioned
// replicas plus promoted standbys), for operators and tests.
func (s *Session[E]) ReplicaCount(j int) int {
	b := s.blocks[j]
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.replicas)
}
