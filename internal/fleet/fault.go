package fleet

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FaultMode selects how a FaultProxy treats new connections. The harness
// exists for the fault-injection test suite and for scecnet's demo mode; it
// stands between a client and a real device server and misbehaves on
// command, so every failure path (refused, dead-air, truncated, delayed)
// can be exercised against the genuine protocol.
type FaultMode int32

const (
	// FaultNone forwards traffic untouched.
	FaultNone FaultMode = iota
	// FaultDrop accepts and immediately closes connections — the client
	// sees a dropped connection (send or receive error).
	FaultDrop
	// FaultBlackhole accepts connections, swallows whatever arrives, and
	// never answers — the client's deadline has to fire.
	FaultBlackhole
	// FaultDelay forwards traffic after holding each new connection for the
	// configured delay — a straggler, not a failure.
	FaultDelay
	// FaultTruncate forwards the request upstream but cuts the response off
	// after TruncateAfter bytes — the client sees a mid-message error.
	FaultTruncate
)

// FaultProxy is a TCP proxy in front of one device server whose failure
// mode can be switched at runtime.
type FaultProxy struct {
	target string
	ln     net.Listener

	mode     atomic.Int32
	delay    atomic.Int64 // nanoseconds, for FaultDelay
	truncate atomic.Int64 // bytes, for FaultTruncate

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
}

// NewFaultProxy starts a pass-through proxy on an ephemeral loopback port in
// front of target.
func NewFaultProxy(target string) (*FaultProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &FaultProxy{
		target: target,
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	p.delay.Store(int64(50 * time.Millisecond))
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address — what the fleet config should
// list instead of the device's real address.
func (p *FaultProxy) Addr() string { return p.ln.Addr().String() }

// SetMode switches the failure mode. Live proxied connections are severed
// so the new mode takes effect immediately: clients pool persistent
// multiplexed connections, and a fault that only applied to future dials
// would be invisible until the pool happened to reconnect.
func (p *FaultProxy) SetMode(m FaultMode) {
	p.mode.Store(int32(m))
	p.mu.Lock()
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
}

// SetDelay sets the per-connection hold time used by FaultDelay.
func (p *FaultProxy) SetDelay(d time.Duration) { p.delay.Store(int64(d)) }

// SetTruncate sets how many response bytes FaultTruncate lets through.
func (p *FaultProxy) SetTruncate(n int64) { p.truncate.Store(n) }

// Close stops the proxy and severs every live connection.
func (p *FaultProxy) Close() error {
	var err error
	p.closeOnce.Do(func() {
		close(p.done)
		err = p.ln.Close()
		p.mu.Lock()
		for c := range p.conns {
			_ = c.Close()
		}
		p.mu.Unlock()
		p.wg.Wait()
	})
	return err
}

func (p *FaultProxy) serve() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
				continue
			}
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

// track registers a connection for teardown on Close; it reports false when
// the proxy is already closing.
func (p *FaultProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.done:
		_ = c.Close()
		return false
	default:
		p.conns[c] = struct{}{}
		return true
	}
}

func (p *FaultProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *FaultProxy) handle(conn net.Conn) {
	defer conn.Close()
	if !p.track(conn) {
		return
	}
	defer p.untrack(conn)
	switch FaultMode(p.mode.Load()) {
	case FaultDrop:
		return
	case FaultBlackhole:
		_, _ = io.Copy(io.Discard, conn) // until the peer gives up or Close severs us
		return
	case FaultDelay:
		t := time.NewTimer(time.Duration(p.delay.Load()))
		defer t.Stop()
		select {
		case <-t.C:
		case <-p.done:
			return
		}
		p.pipe(conn, -1)
	case FaultTruncate:
		p.pipe(conn, p.truncate.Load())
	default:
		p.pipe(conn, -1)
	}
}

// pipe forwards bidirectionally to the target; respLimit >= 0 truncates the
// response stream after that many bytes.
func (p *FaultProxy) pipe(conn net.Conn, respLimit int64) {
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer up.Close()
	if !p.track(up) {
		return
	}
	defer p.untrack(up)
	done := make(chan struct{}, 2)
	go func() {
		_, _ = io.Copy(up, conn) // request path
		done <- struct{}{}
	}()
	go func() {
		if respLimit >= 0 {
			_, _ = io.CopyN(conn, up, respLimit)
		} else {
			_, _ = io.Copy(conn, up)
		}
		// Sever both sides so the copier in the other direction unblocks.
		_ = conn.Close()
		_ = up.Close()
		done <- struct{}{}
	}()
	<-done
	<-done
}
