package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"

	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/flight"
	"github.com/scec/scec/internal/obs/trace"
)

// traceIDOf renders a span's trace ID for exemplar attribution ("" when
// untraced, which keeps the exemplar device-only).
func traceIDOf(sp *trace.Span) string {
	if c := sp.Context(); !c.TraceID.IsZero() {
		return c.TraceID.String()
	}
	return ""
}

// MulVec computes A·x through the replicated fleet: every logical block is
// fetched from its replica set concurrently (racing, hedging, and retrying
// as needed), the intermediate results are concatenated in code device
// order, and the result decodes through the session's code — bit-identical
// to the unreplicated pipeline, since every replica of block j returns the
// same B_j·T·x.
func (s *Session[E]) MulVec(x []E) ([]E, error) {
	return s.MulVecContext(context.Background(), x)
}

// MulVecContext is MulVec bounded by the caller's context in addition to the
// session's query timeout; a span carried in ctx parents the fleet's trace.
func (s *Session[E]) MulVecContext(ctx context.Context, x []E) ([]E, error) {
	y, err := s.GatherContext(ctx, x)
	if err != nil {
		return nil, err
	}
	_, dsp := s.startSpan(ctx, trace.SpanDecode, trace.A(trace.AttrKind, kindVec))
	defer dsp.End()
	defer obs.StartStage(s.reg, obs.StageDecode).End()
	return s.code.Decode(y)
}

// MulMat computes A·X for an l×n input matrix through the fleet — the batch
// generalization, with the same per-block fault tolerance as MulVec.
func (s *Session[E]) MulMat(x *matrix.Dense[E]) (*matrix.Dense[E], error) {
	return s.MulMatContext(context.Background(), x)
}

// MulMatContext is MulMat bounded by the caller's context in addition to the
// session's query timeout; a span carried in ctx parents the fleet's trace.
func (s *Session[E]) MulMatContext(ctx context.Context, x *matrix.Dense[E]) (*matrix.Dense[E], error) {
	y, err := s.GatherBatchContext(ctx, x)
	if err != nil {
		return nil, err
	}
	_, dsp := s.startSpan(ctx, trace.SpanDecode, trace.A(trace.AttrKind, kindMat))
	defer dsp.End()
	defer obs.StartStage(s.reg, obs.StageDecode).End()
	return s.code.DecodeBatch(y)
}

// Gather fetches the full intermediate result B·T·x from the fleet without
// decoding it: every logical block races its replica set and the parts
// concatenate in scheme device order, m+r values total. Decoding is owned by
// the caller (MulVec, or the execution engine's query layer).
func (s *Session[E]) Gather(x []E) ([]E, error) {
	return s.GatherContext(context.Background(), x)
}

// GatherContext is Gather bounded by the caller's context in addition to the
// session's query timeout: cancelling ctx cancels the in-flight block races.
// A span carried in ctx parents the fleet.gather span (else the session's
// tracer, if any, starts a fresh trace).
func (s *Session[E]) GatherContext(ctx context.Context, x []E) ([]E, error) {
	if len(x) != s.cols {
		return nil, fmt.Errorf("fleet: input vector has %d entries, want %d", len(x), s.cols)
	}
	s.met.queries(kindVec).Inc()
	qctx, cancel := s.queryContext(ctx)
	defer cancel()
	qctx, gsp := s.startSpan(qctx, trace.SpanFleetGather,
		trace.A(trace.AttrKind, kindVec), trace.A("blocks", strconv.Itoa(len(s.blocks))))
	defer gsp.End()

	gather := obs.StartStage(s.reg, obs.StageGather)
	parts := make([][]E, len(s.blocks))
	errs := make([]error, len(s.blocks))
	var wg sync.WaitGroup
	for j, b := range s.blocks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parts[j], errs[j] = fetchBlock(s, qctx, b, func(ctx context.Context, addr string) ([]E, error) {
				y, err := s.client.Compute(ctx, addr, x)
				if err == nil && len(y) != b.want {
					err = fmt.Errorf("fleet: replica %s returned %d values for block %d, want %d", addr, len(y), b.index, b.want)
				}
				return y, err
			})
		}()
	}
	wg.Wait()
	gather.End()
	for _, err := range errs {
		if err != nil {
			s.met.queryErrors(kindVec).Inc()
			s.jr.PublishDetail(flight.KindQueryError, "", err.Error(), 0, 0)
			gsp.SetError(err)
			return nil, err
		}
	}
	y := make([]E, 0, s.code.M()+s.code.R())
	for _, p := range parts {
		y = append(y, p...)
	}
	return y, nil
}

// GatherBatch is Gather for an l×n input matrix: it returns the stacked
// (m+r)×n intermediate result B·T·X, undecoded, with the same per-block
// fault tolerance.
func (s *Session[E]) GatherBatch(x *matrix.Dense[E]) (*matrix.Dense[E], error) {
	return s.GatherBatchContext(context.Background(), x)
}

// GatherBatchContext is GatherBatch bounded by the caller's context in
// addition to the session's query timeout; a span carried in ctx parents the
// fleet.gather span.
func (s *Session[E]) GatherBatchContext(ctx context.Context, x *matrix.Dense[E]) (*matrix.Dense[E], error) {
	if x.Rows() != s.cols {
		return nil, fmt.Errorf("fleet: input matrix has %d rows, want %d", x.Rows(), s.cols)
	}
	s.met.queries(kindMat).Inc()
	qctx, cancel := s.queryContext(ctx)
	defer cancel()
	qctx, gsp := s.startSpan(qctx, trace.SpanFleetGather,
		trace.A(trace.AttrKind, kindMat), trace.A("blocks", strconv.Itoa(len(s.blocks))))
	defer gsp.End()

	xRows := make([][]E, x.Rows())
	for i := range xRows {
		xRows[i] = x.Row(i)
	}
	gather := obs.StartStage(s.reg, obs.StageGather)
	parts := make([]*matrix.Dense[E], len(s.blocks))
	errs := make([]error, len(s.blocks))
	var wg sync.WaitGroup
	for j, b := range s.blocks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, err := fetchBlock(s, qctx, b, func(ctx context.Context, addr string) ([][]E, error) {
				rows, err := s.client.ComputeBatch(ctx, addr, xRows)
				if err == nil && len(rows) != b.want {
					err = fmt.Errorf("fleet: replica %s returned %d rows for block %d, want %d", addr, len(rows), b.index, b.want)
				}
				return rows, err
			})
			if err != nil {
				errs[j] = err
				return
			}
			parts[j] = matrix.FromRows(rows)
		}()
	}
	wg.Wait()
	gather.End()
	for _, err := range errs {
		if err != nil {
			s.met.queryErrors(kindMat).Inc()
			s.jr.PublishDetail(flight.KindQueryError, "", err.Error(), 0, 0)
			gsp.SetError(err)
			return nil, err
		}
	}
	return matrix.VStack(parts...), nil
}

// queryContext derives one query's context: bounded by the session lifetime
// and QueryTimeout, cancelled early when the caller's ctx ends, and carrying
// the caller's span (if any) so the fleet's spans parent under it. The
// session context is the base — a query must not outlive Close — so the
// caller's values do not propagate; only its span and its cancellation do.
func (s *Session[E]) queryContext(ctx context.Context) (context.Context, context.CancelFunc) {
	qctx, cancel := context.WithTimeout(s.ctx, s.cfg.QueryTimeout)
	if ctx == nil {
		return qctx, cancel
	}
	if parent := trace.SpanFromContext(ctx); parent != nil {
		qctx = trace.ContextWithSpan(qctx, parent)
	}
	stop := context.AfterFunc(ctx, cancel)
	return qctx, func() { stop(); cancel() }
}

// startSpan opens a fleet-side span: a child when ctx carries a span (on
// that span's tracer, so engine-owned traces continue seamlessly), else a
// fresh root on the session's tracer, else a nil no-op span.
func (s *Session[E]) startSpan(ctx context.Context, name string, attrs ...trace.Attr) (context.Context, *trace.Span) {
	if parent := trace.SpanFromContext(ctx); parent != nil {
		return parent.Tracer().StartSpan(ctx, name, attrs...)
	}
	return s.trc.StartRoot(ctx, name, attrs...)
}

// fetchBlock obtains one logical block's intermediate result from its
// replica set: it races the admissible replicas (with hedging and in-race
// failover), and re-runs the race up to MaxRetries extra rounds with
// exponential backoff plus full jitter. Every failure path returns a
// *BlockUnavailableError.
func fetchBlock[E comparable, T any](s *Session[E], ctx context.Context, b *blockState[E], call func(context.Context, string) (T, error)) (v T, err error) {
	var zero T
	ctx, bsp := s.startSpan(ctx, trace.SpanFleetBlock, trace.A(trace.AttrBlock, strconv.Itoa(b.index)))
	defer func() {
		bsp.SetError(err)
		bsp.End()
	}()
	backoff := s.cfg.RetryBackoff
	var lastErr error
	for round := 0; ; round++ {
		cands := b.candidates(time.Now(), s.cfg.BreakerCooldown)
		if skipped := b.replicaCount() - len(cands); skipped > 0 {
			bsp.AddEvent(trace.EventBreakerSkip, trace.A("skipped", strconv.Itoa(skipped)))
		}
		if len(cands) > 0 {
			v, err := raceReplicas(s, ctx, b, cands, call)
			if err == nil {
				return v, nil
			}
			lastErr = err
		} else if lastErr == nil {
			lastErr = errors.New("no admissible replicas (every breaker open)")
		}
		if ctx.Err() != nil || round >= s.cfg.MaxRetries {
			return zero, &BlockUnavailableError{Block: b.index, Attempts: round + 1, Err: lastErr}
		}
		s.met.retries.Inc()
		s.jr.Publish(flight.KindRetry, "", int64(b.index), int64(round+1))
		bsp.AddEvent(trace.EventRetry, trace.A(trace.AttrRound, strconv.Itoa(round+1)))
		if !sleepCtx(ctx, jitter(backoff)) {
			return zero, &BlockUnavailableError{Block: b.index, Attempts: round + 1, Err: ctx.Err()}
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// replicaCount snapshots the block's current replica-set size.
func (b *blockState[E]) replicaCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.replicas)
}

// attempt is one replica request's outcome inside a race.
type attempt[T any] struct {
	v   T
	err error
	// sp is the attempt's span, still open on success so the race loop can
	// stamp the winner; failed attempts arrive with sp already ended.
	sp *trace.Span
	// d is the replica the attempt ran against.
	d *device
	// hedged marks a speculative attempt (launched by the hedge timer, not
	// as the leader or a failover), so a winning hedge can be journaled.
	hedged bool
}

// raceReplicas runs one first-winner round over the candidate replicas:
// the leader launches immediately, a hedged attempt launches whenever the
// hedge delay elapses with no verdict, and a failed attempt immediately
// fails over to the next candidate. The first success wins and cancels the
// losers (the transport aborts their in-flight I/O); per-candidate at most
// one attempt launches per round.
func raceReplicas[E comparable, T any](s *Session[E], ctx context.Context, b *blockState[E], cands []*device, call func(context.Context, string) (T, error)) (T, error) {
	var zero T
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attempt[T], len(cands))
	start := time.Now()
	launch := func(d *device, hedged bool) {
		// The attempt span is created here (not in the goroutine) so its
		// start time precedes the dial; each goroutine owns its span until it
		// lands on the results channel.
		actx, asp := s.startSpan(rctx, trace.SpanFleetAttempt,
			trace.A(trace.AttrDevice, d.addr), trace.A(trace.AttrHedged, strconv.FormatBool(hedged)))
		go func() {
			v, err := call(actx, d.addr)
			switch {
			case err == nil:
				d.recordSuccess()
			case errors.Is(err, context.Canceled) && rctx.Err() != nil:
				// Cancelled loser, not a device verdict. The span ends clean
				// (no error) so the straggler analytics count it as a loss,
				// not a fault.
			default:
				d.recordFailure(s.cfg.BreakerThreshold)
				asp.SetError(err)
				if errors.Is(err, context.DeadlineExceeded) {
					s.jr.Publish(flight.KindTimeout, d.addr, int64(b.index), 0)
				}
			}
			if err != nil {
				asp.End()
			}
			results <- attempt[T]{v, err, asp, d, hedged}
		}()
	}
	next := 0
	launch(cands[next], false)
	next++
	pending := 1
	hedge := time.NewTimer(s.hedgeDelay())
	defer hedge.Stop()
	bsp := trace.SpanFromContext(ctx)
	var lastErr error
	for {
		select {
		case r := <-results:
			pending--
			if r.err == nil {
				d := time.Since(start)
				s.lat.observe(d)
				// The winner histogram keeps the trace ID + device as its
				// bucket exemplar, so a tail bucket on /metrics.json links
				// straight to /debug/traces/{id}.
				s.met.winner(b.index).ObserveDurationExemplar(d, traceIDOf(bsp), r.d.addr)
				if s.cfg.OnWin != nil {
					s.cfg.OnWin(r.d.addr, b.index, d)
				}
				if r.hedged {
					s.jr.Publish(flight.KindHedgeWin, r.d.addr, int64(b.index), 0)
				}
				r.sp.SetAttr(trace.AttrWin, "true")
				r.sp.End()
				return r.v, nil
			}
			lastErr = r.err
			if next < len(cands) {
				s.met.retries.Inc()
				s.jr.Publish(flight.KindFailover, r.d.addr, int64(b.index), 0)
				bsp.AddEvent(trace.EventFailover, trace.A(trace.AttrDevice, cands[next].addr))
				launch(cands[next], false)
				next++
				pending++
			} else if pending == 0 {
				return zero, lastErr
			}
		case <-hedge.C:
			if next < len(cands) {
				s.met.hedges.Inc()
				bsp.AddEvent(trace.EventHedge, trace.A(trace.AttrDevice, cands[next].addr))
				launch(cands[next], true)
				next++
				pending++
				hedge.Reset(s.hedgeDelay())
			}
		case <-rctx.Done():
			if lastErr == nil {
				lastErr = rctx.Err()
			}
			return zero, lastErr
		}
	}
}

// hedgeDelay resolves the speculative-request delay: the configured fixed
// value, or — when adaptive — the p95 of recent winner latencies, clamped
// to [1ms, RPCTimeout]. A negative HedgeAfter disables hedging by pushing
// the delay past the per-attempt timeout.
func (s *Session[E]) hedgeDelay() time.Duration {
	if s.cfg.HedgeAfter > 0 {
		return s.cfg.HedgeAfter
	}
	if s.cfg.HedgeAfter < 0 {
		return s.cfg.RPCTimeout + s.cfg.QueryTimeout
	}
	d, ok := s.lat.percentile(0.95)
	if !ok {
		return DefaultHedgeAfter
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > s.cfg.RPCTimeout {
		d = s.cfg.RPCTimeout
	}
	return d
}

// jitter draws a full-jitter delay: uniform in [d/2, d].
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + rand.N(d/2)
}

// sleepCtx sleeps for d unless ctx ends first; it reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
