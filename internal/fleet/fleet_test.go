package fleet

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/transport"
)

// testEnv is a replicated loopback fleet with a FaultProxy in front of every
// device, so tests can fail any replica on command while the device servers
// themselves stay honest.
type testEnv struct {
	f      field.Prime
	scheme *coding.Scheme
	enc    *coding.Encoding[uint64]
	a      *matrix.Dense[uint64]
	x      []uint64
	want   []uint64
	reg    *obs.Registry

	// proxies[j][k] fronts replica k of block j; standbys[k] fronts standby k.
	proxies  [][]*FaultProxy
	standbys []*FaultProxy

	cfg Config
}

// newTestEnv deploys an 8×5 matrix over the r=4 scheme (3 coded blocks) with
// the given replication factor and standby count. Probing is off by default;
// tests that exercise health or repair turn it on via env.cfg.
func newTestEnv(t *testing.T, replicas, standbys int) *testEnv {
	t.Helper()
	env := &testEnv{reg: obs.New()}
	rng := rand.New(rand.NewPCG(42, 99))
	const m, l, r = 8, 5, 4
	scheme, err := coding.New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	env.scheme = scheme
	env.a = matrix.New[uint64](m, l)
	for i := 0; i < m; i++ {
		for j := 0; j < l; j++ {
			env.a.Set(i, j, env.f.Rand(rng))
		}
	}
	env.enc, err = coding.Encode[uint64](env.f, scheme, env.a, rng)
	if err != nil {
		t.Fatal(err)
	}
	env.x = make([]uint64, l)
	for j := range env.x {
		env.x[j] = env.f.Rand(rng)
	}
	env.want = env.mulVec(env.x)

	newProxied := func() *FaultProxy {
		srv, err := transport.NewDeviceServer[uint64](env.f, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		p, err := NewFaultProxy(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.Close() })
		return p
	}
	env.cfg = Config{
		Replicas:      make([][]string, scheme.Devices()),
		QueryTimeout:  10 * time.Second,
		RPCTimeout:    2 * time.Second,
		HedgeAfter:    -1, // deterministic by default; hedge tests override
		ProbeInterval: -1, // probing off by default; health tests override
		Metrics:       env.reg,
	}
	env.proxies = make([][]*FaultProxy, scheme.Devices())
	for j := range env.proxies {
		for k := 0; k < replicas; k++ {
			p := newProxied()
			env.proxies[j] = append(env.proxies[j], p)
			env.cfg.Replicas[j] = append(env.cfg.Replicas[j], p.Addr())
		}
	}
	for k := 0; k < standbys; k++ {
		p := newProxied()
		env.standbys = append(env.standbys, p)
		env.cfg.Standbys = append(env.cfg.Standbys, p.Addr())
	}
	return env
}

func (e *testEnv) mulVec(x []uint64) []uint64 {
	out := make([]uint64, e.a.Rows())
	for i := range out {
		s := e.f.Zero()
		for j := 0; j < e.a.Cols(); j++ {
			s = e.f.Add(s, e.f.Mul(e.a.At(i, j), x[j]))
		}
		out[i] = s
	}
	return out
}

func (e *testEnv) serve(t *testing.T) *Session[uint64] {
	t.Helper()
	s, err := Serve[uint64](e.f, e.enc, e.cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// counterValue reads one counter series from the registry snapshot.
func counterValue(t *testing.T, reg *obs.Registry, name string, labels map[string]string) float64 {
	t.Helper()
	for _, fam := range reg.Snapshot().Metrics {
		if fam.Name != name {
			continue
		}
	series:
		for _, s := range fam.Series {
			for k, v := range labels {
				if s.Labels[k] != v {
					continue series
				}
			}
			return s.Value
		}
	}
	t.Fatalf("metric %s%v not found in registry", name, labels)
	return 0
}

func checkResult(t *testing.T, want, got []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d values, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("decoded result differs from A·x at row %d", i)
		}
	}
}

// TestFaultOneReplicaOfEachBlockDown is the headline availability scenario:
// two replicas per block, the first replica of every block failed. Every
// query must still return exactly A·x, by failing over inside the race, and
// the failovers must show up on the retries counter.
func TestFaultOneReplicaOfEachBlockDown(t *testing.T) {
	env := newTestEnv(t, 2, 0)
	s := env.serve(t)
	for j := range env.proxies {
		env.proxies[j][0].SetMode(FaultDrop)
	}
	got, err := s.MulVec(env.x)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, env.want, got)
	if v := counterValue(t, env.reg, obs.MetricFleetRetriesTotal, nil); v < float64(len(env.proxies)) {
		t.Fatalf("retries counter = %g after %d in-race failovers, want >= %d", v, len(env.proxies), len(env.proxies))
	}
	if v := counterValue(t, env.reg, obs.MetricFleetQueriesTotal, map[string]string{"kind": "vec"}); v != 1 {
		t.Fatalf("vec queries counter = %g, want 1", v)
	}

	// The batch path must survive the same fault pattern.
	const n = 3
	xm := matrix.New[uint64](env.a.Cols(), n)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < xm.Rows(); i++ {
		for j := 0; j < n; j++ {
			xm.Set(i, j, env.f.Rand(rng))
		}
	}
	ym, err := s.MulMat(xm)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < n; c++ {
		col := make([]uint64, xm.Rows())
		for i := range col {
			col[i] = xm.At(i, c)
		}
		want := env.mulVec(col)
		for i := range want {
			if ym.At(i, c) != want[i] {
				t.Fatalf("batch column %d differs from A·x at row %d", c, i)
			}
		}
	}
}

// TestFaultTruncatedResponseFailsOver: a replica that cuts the response off
// mid-message is a failure like any other — the race moves on.
func TestFaultTruncatedResponseFailsOver(t *testing.T) {
	env := newTestEnv(t, 2, 0)
	s := env.serve(t)
	env.proxies[0][0].SetTruncate(10)
	env.proxies[0][0].SetMode(FaultTruncate)
	got, err := s.MulVec(env.x)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, env.want, got)
}

// TestFaultAllReplicasDownTypedError: when every replica of one block is
// gone the query must fail with the typed sentinel, identify the block, and
// return well before the query deadline rather than hang.
func TestFaultAllReplicasDownTypedError(t *testing.T) {
	env := newTestEnv(t, 2, 0)
	env.cfg.QueryTimeout = 5 * time.Second
	env.cfg.MaxRetries = 1
	env.cfg.RetryBackoff = 5 * time.Millisecond
	s := env.serve(t)
	for _, p := range env.proxies[1] {
		p.SetMode(FaultDrop)
	}
	start := time.Now()
	_, err := s.MulVec(env.x)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrBlockUnavailable) {
		t.Fatalf("err = %v, want errors.Is ErrBlockUnavailable", err)
	}
	var be *BlockUnavailableError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *BlockUnavailableError", err)
	}
	if be.Block != 1 {
		t.Fatalf("failed block = %d, want 1", be.Block)
	}
	if be.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (initial round + 1 retry)", be.Attempts)
	}
	if elapsed >= env.cfg.QueryTimeout {
		t.Fatalf("query took %v, must fail before the %v deadline", elapsed, env.cfg.QueryTimeout)
	}
	if v := counterValue(t, env.reg, obs.MetricFleetQueryErrorsTotal, map[string]string{"kind": "vec"}); v != 1 {
		t.Fatalf("vec query-errors counter = %g, want 1", v)
	}
}

// TestFaultBlackholeHedgedRequestWins: a replica that accepts and never
// answers must not stall the query for its full RPC timeout — the hedge
// fires and the second replica's answer is used.
func TestFaultBlackholeHedgedRequestWins(t *testing.T) {
	env := newTestEnv(t, 2, 0)
	env.cfg.HedgeAfter = 10 * time.Millisecond
	env.cfg.RPCTimeout = 5 * time.Second
	s := env.serve(t)
	env.proxies[0][0].SetMode(FaultBlackhole)
	start := time.Now()
	got, err := s.MulVec(env.x)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, env.want, got)
	if elapsed >= env.cfg.RPCTimeout {
		t.Fatalf("query took %v, the hedge should beat the %v RPC timeout", elapsed, env.cfg.RPCTimeout)
	}
	if v := counterValue(t, env.reg, obs.MetricFleetHedgesTotal, nil); v < 1 {
		t.Fatalf("hedges counter = %g, want >= 1", v)
	}
}

// TestFaultDelayedLeaderHedgeStillCorrect: a straggling (not failed) leader
// races its hedge; whoever wins, the decoded result is exact.
func TestFaultDelayedLeaderHedgeStillCorrect(t *testing.T) {
	env := newTestEnv(t, 2, 0)
	env.cfg.HedgeAfter = 5 * time.Millisecond
	s := env.serve(t)
	env.proxies[0][0].SetDelay(60 * time.Millisecond)
	env.proxies[0][0].SetMode(FaultDelay)
	for i := 0; i < 3; i++ {
		got, err := s.MulVec(env.x)
		if err != nil {
			t.Fatal(err)
		}
		checkResult(t, env.want, got)
	}
}

// TestFaultProbeOpensBreakerAndStandbyRepairs is the self-repair path end to
// end: the prober notices a dead replica, its breaker opens, the block's
// coded rows are re-pushed to a warm standby, and queries keep decoding A·x
// against the promoted standby — no re-encode of the deployment.
func TestFaultProbeOpensBreakerAndStandbyRepairs(t *testing.T) {
	env := newTestEnv(t, 1, 1)
	env.cfg.ProbeInterval = 20 * time.Millisecond
	env.cfg.ProbeTimeout = 500 * time.Millisecond
	env.cfg.BreakerThreshold = 1
	env.cfg.BreakerCooldown = time.Minute // dead replica stays quarantined
	s := env.serve(t)
	env.proxies[0][0].SetMode(FaultDrop)

	deadline := time.Now().Add(10 * time.Second)
	for s.ReplicaCount(0) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("standby was not promoted into block 0's replica set")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := s.Standbys(); n != 0 {
		t.Fatalf("standby pool has %d devices after promotion, want 0", n)
	}
	got, err := s.MulVec(env.x)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, env.want, got)
	if v := counterValue(t, env.reg, obs.MetricFleetRepairsTotal, map[string]string{"outcome": "ok"}); v < 1 {
		t.Fatalf("repairs counter = %g, want >= 1", v)
	}
	if st := s.devices[env.cfg.Replicas[0][0]].State(); st != BreakerOpen {
		t.Fatalf("dead replica breaker = %v, want open", st)
	}
}

// TestFaultConcurrentQueriesSurviveKillAndRepair is the -race integration
// scenario: many goroutines stream queries through one Session while a
// replica is killed mid-stream and a standby is promoted in the background.
// Every single result must still equal A·x exactly.
func TestFaultConcurrentQueriesSurviveKillAndRepair(t *testing.T) {
	env := newTestEnv(t, 2, 1)
	env.cfg.ProbeInterval = 25 * time.Millisecond
	env.cfg.ProbeTimeout = 500 * time.Millisecond
	env.cfg.HedgeAfter = 0 // adaptive
	env.cfg.BreakerThreshold = 2
	env.cfg.BreakerCooldown = time.Minute
	s := env.serve(t)

	const workers, queries = 6, 12
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				got, err := s.MulVec(env.x)
				if err != nil {
					errs[w] = err
					return
				}
				for i := range got {
					if got[i] != env.want[i] {
						errs[w] = errors.New("decoded result differs from A·x")
						return
					}
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the stream start, then kill a replica
	env.proxies[0][0].SetMode(FaultDrop)
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	// The killed replica must have been noticed; with a standby available the
	// runtime should also have repaired block 0 back to strength.
	deadline := time.Now().Add(10 * time.Second)
	for s.ReplicaCount(0) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("block 0 was not repaired after the kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeValidation: malformed fleet topologies are rejected up front.
func TestServeValidation(t *testing.T) {
	env := newTestEnv(t, 1, 0)
	base := env.cfg

	cfg := base
	cfg.Replicas = cfg.Replicas[:len(cfg.Replicas)-1]
	if _, err := Serve[uint64](env.f, env.enc, cfg); err == nil {
		t.Fatal("Serve accepted fewer replica sets than coded blocks")
	}

	cfg = base
	cfg.Replicas = append([][]string{}, base.Replicas...)
	cfg.Replicas[1] = nil
	if _, err := Serve[uint64](env.f, env.enc, cfg); err == nil {
		t.Fatal("Serve accepted an empty replica set")
	}

	cfg = base
	cfg.Replicas = append([][]string{}, base.Replicas...)
	cfg.Replicas[1] = []string{base.Replicas[0][0]}
	if _, err := Serve[uint64](env.f, env.enc, cfg); err == nil {
		t.Fatal("Serve accepted one address hosting two blocks")
	}

	cfg = base
	cfg.Standbys = []string{base.Replicas[0][0]}
	if _, err := Serve[uint64](env.f, env.enc, cfg); err == nil {
		t.Fatal("Serve accepted a standby that already hosts a block")
	}

	cfg = base
	cfg.Replicas = append([][]string{}, base.Replicas...)
	cfg.Replicas[2] = []string{"127.0.0.1:1"} // nothing listens there
	if _, err := Serve[uint64](env.f, env.enc, cfg); err == nil {
		t.Fatal("Serve accepted a fleet it could not provision")
	}

	s := env.serve(t)
	if _, err := s.MulVec(make([]uint64, 99)); err == nil {
		t.Fatal("MulVec accepted a wrong-length input")
	}
}

// TestBreakerLifecycle walks one device breaker through
// closed → open → half-open → closed and the half-open failure re-open.
func TestBreakerLifecycle(t *testing.T) {
	reg := obs.New()
	d := &device{addr: "test", gauge: reg.Gauge(obs.MetricFleetBreakerState, breakerHelp, obs.L("device", "test"))}
	const threshold = 3
	d.recordFailure(threshold)
	d.recordFailure(threshold)
	if got := d.State(); got != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", got)
	}
	d.recordFailure(threshold)
	if got := d.State(); got != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", threshold, got)
	}
	now := time.Now()
	if d.admissible(now, time.Minute) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if !d.admissible(now.Add(2*time.Minute), time.Minute) {
		t.Fatal("open breaker refused a trial after the cooldown")
	}
	if got := d.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown trial = %v, want half-open", got)
	}
	d.recordFailure(threshold)
	if got := d.State(); got != BreakerOpen {
		t.Fatalf("state after failed half-open trial = %v, want open (single strike)", got)
	}
	d.admissible(now.Add(10*time.Minute), time.Minute)
	d.recordSuccess()
	if got := d.State(); got != BreakerClosed {
		t.Fatalf("state after successful trial = %v, want closed", got)
	}
	if v := counterValue(t, reg, obs.MetricFleetBreakerState, map[string]string{"device": "test"}); v != float64(BreakerClosed) {
		t.Fatalf("breaker gauge = %g, want %d", v, BreakerClosed)
	}
}

// TestHedgeDelayPolicy covers the three HedgeAfter regimes: fixed, disabled,
// and adaptive (fallback before warmup, clamped percentile after).
func TestHedgeDelayPolicy(t *testing.T) {
	s := &Session[uint64]{lat: newLatencyRing()}
	s.cfg = Config{HedgeAfter: 7 * time.Millisecond, RPCTimeout: time.Second, QueryTimeout: time.Minute}
	if got := s.hedgeDelay(); got != 7*time.Millisecond {
		t.Fatalf("fixed hedge delay = %v, want 7ms", got)
	}
	s.cfg.HedgeAfter = -1
	if got := s.hedgeDelay(); got < s.cfg.RPCTimeout {
		t.Fatalf("disabled hedge delay = %v, must exceed the RPC timeout", got)
	}
	s.cfg.HedgeAfter = 0
	if got := s.hedgeDelay(); got != DefaultHedgeAfter {
		t.Fatalf("pre-warmup adaptive delay = %v, want %v", got, DefaultHedgeAfter)
	}
	for i := 0; i < minAdaptiveSamples; i++ {
		s.lat.observe(20 * time.Millisecond)
	}
	if got := s.hedgeDelay(); got != 20*time.Millisecond {
		t.Fatalf("adaptive delay = %v, want the 20ms p95", got)
	}
	for i := 0; i < 64; i++ {
		s.lat.observe(time.Hour) // absurd latencies clamp to the RPC timeout
	}
	if got := s.hedgeDelay(); got != s.cfg.RPCTimeout {
		t.Fatalf("clamped adaptive delay = %v, want %v", got, s.cfg.RPCTimeout)
	}
}
