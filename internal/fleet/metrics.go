package fleet

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/scec/scec/internal/obs"
)

// Bounded label values (see internal/obs/names.go for the conventions).
const (
	kindVec       = "vec"
	kindMat       = "mat"
	outcomeOK     = "ok"
	outcomeFailed = "failed"
)

// sessionMetrics caches the session's metric handles. Everything is
// registered eagerly at Serve time so a scrape of a freshly provisioned
// fleet already shows every fleet series at zero — an operator can alert on
// the counters existing, not just on them moving.
type sessionMetrics struct {
	reg         *obs.Registry
	hedges      *obs.Counter
	retries     *obs.Counter
	queriesVec  *obs.Counter
	queriesMat  *obs.Counter
	qErrorsVec  *obs.Counter
	qErrorsMat  *obs.Counter
	repairsOK   *obs.Counter
	repairsFail *obs.Counter
}

func (m *sessionMetrics) init(reg *obs.Registry) {
	m.reg = reg
	m.hedges = reg.Counter(obs.MetricFleetHedgesTotal,
		"Speculative (hedged) replica requests launched after the hedge delay elapsed with no verdict.")
	m.retries = reg.Counter(obs.MetricFleetRetriesTotal,
		"Replica attempts launched because a prior attempt failed (in-race failovers and backoff rounds).")
	m.queriesVec = reg.Counter(obs.MetricFleetQueriesTotal,
		"Queries served by the fleet session, by query kind.", obs.L("kind", kindVec))
	m.queriesMat = reg.Counter(obs.MetricFleetQueriesTotal,
		"Queries served by the fleet session, by query kind.", obs.L("kind", kindMat))
	m.qErrorsVec = reg.Counter(obs.MetricFleetQueryErrorsTotal,
		"Queries that failed after exhausting every replica, hedge, and retry, by query kind.", obs.L("kind", kindVec))
	m.qErrorsMat = reg.Counter(obs.MetricFleetQueryErrorsTotal,
		"Queries that failed after exhausting every replica, hedge, and retry, by query kind.", obs.L("kind", kindMat))
	m.repairsOK = reg.Counter(obs.MetricFleetRepairsTotal,
		"Self-repair pushes of a coded block to a warm standby, by outcome.", obs.L("outcome", outcomeOK))
	m.repairsFail = reg.Counter(obs.MetricFleetRepairsTotal,
		"Self-repair pushes of a coded block to a warm standby, by outcome.", obs.L("outcome", outcomeFailed))
}

func (m *sessionMetrics) queries(kind string) *obs.Counter {
	if kind == kindMat {
		return m.queriesMat
	}
	return m.queriesVec
}

func (m *sessionMetrics) queryErrors(kind string) *obs.Counter {
	if kind == kindMat {
		return m.qErrorsMat
	}
	return m.qErrorsVec
}

func (m *sessionMetrics) repairs(outcome string) *obs.Counter {
	if outcome == outcomeFailed {
		return m.repairsFail
	}
	return m.repairsOK
}

// winner returns the per-block winner-latency histogram. The label set is
// bounded by the scheme's device count.
func (m *sessionMetrics) winner(block int) *obs.Histogram {
	return m.reg.Histogram(obs.MetricFleetBlockWinnerSeconds,
		"Latency of the winning replica attempt per served block fetch, by block index.",
		obs.DefLatencyBuckets, obs.L("block", strconv.Itoa(block)))
}

// latencyRing keeps the last winner latencies for the adaptive hedge delay.
type latencyRing struct {
	mu   sync.Mutex
	buf  [64]time.Duration
	n    int // filled entries
	next int // write cursor
}

// minAdaptiveSamples gates the adaptive hedge delay: below this, hedging
// falls back to DefaultHedgeAfter instead of trusting a tiny sample.
const minAdaptiveSamples = 8

func newLatencyRing() *latencyRing { return &latencyRing{} }

func (r *latencyRing) observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// percentile returns the p-quantile of the retained latencies; ok is false
// until minAdaptiveSamples observations accumulated.
func (r *latencyRing) percentile(p float64) (time.Duration, bool) {
	r.mu.Lock()
	n := r.n
	tmp := make([]time.Duration, n)
	copy(tmp, r.buf[:n])
	r.mu.Unlock()
	if n < minAdaptiveSamples {
		return 0, false
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := int(p * float64(n-1))
	return tmp[i], true
}
