package fleet

import (
	"context"
	"sync"
	"time"

	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/flight"
)

// BreakerState is a device circuit breaker's position. The gauge
// MetricFleetBreakerState exports the numeric value per device.
type BreakerState int

const (
	// BreakerClosed admits requests normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits trial requests after a cooldown; one success
	// closes the breaker, one failure re-opens it.
	BreakerHalfOpen
	// BreakerOpen rejects requests until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "invalid"
}

const breakerHelp = "Per-device circuit breaker state: 0 closed, 1 half-open, 2 open."

// device is one physical edge device: an address plus its breaker.
type device struct {
	addr  string
	gauge *obs.Gauge
	// rtt is the per-device heartbeat round-trip gauge the prober refreshes.
	rtt *obs.Gauge
	// jr receives breaker-transition events (nil-safe).
	jr *flight.Journal

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures
	openedAt time.Time // when the breaker last opened
	// vacatedAt is when a rehost removed this device from its replica set.
	// Until one RPC timeout has passed, in-flight attempts that snapshotted
	// the old replica set may still be reading the old block, so the device
	// must not receive a different block yet.
	vacatedAt time.Time
}

// markVacated starts the post-rehost quarantine window.
func (d *device) markVacated(now time.Time) {
	d.mu.Lock()
	d.vacatedAt = now
	d.mu.Unlock()
}

// vacatedWithin reports whether the device vacated a block less than window
// ago (and so must not be handed a new one yet).
func (d *device) vacatedWithin(now time.Time, window time.Duration) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.vacatedAt.IsZero() && now.Sub(d.vacatedAt) < window
}

// recordSuccess closes the breaker.
func (d *device) recordSuccess() {
	d.mu.Lock()
	reopened := d.state != BreakerClosed
	d.state = BreakerClosed
	d.fails = 0
	d.gauge.Set(float64(BreakerClosed))
	d.mu.Unlock()
	if reopened {
		d.jr.Publish(flight.KindBreakerClose, d.addr, 0, 0)
	}
}

// recordFailure counts a consecutive failure and opens the breaker at the
// threshold (immediately, for a failed half-open trial).
func (d *device) recordFailure(threshold int) {
	d.mu.Lock()
	d.fails++
	opened := false
	if d.state == BreakerHalfOpen || (d.state == BreakerClosed && d.fails >= threshold) {
		d.state = BreakerOpen
		d.openedAt = time.Now()
		d.gauge.Set(float64(BreakerOpen))
		opened = true
	}
	fails := d.fails
	d.mu.Unlock()
	if opened {
		d.jr.Publish(flight.KindBreakerOpen, d.addr, int64(fails), 0)
	}
}

// admissible reports whether a request may route to the device now. An open
// breaker past its cooldown transitions to half-open and admits a trial.
func (d *device) admissible(now time.Time, cooldown time.Duration) bool {
	d.mu.Lock()
	halfOpened := false
	admit := true
	switch d.state {
	case BreakerClosed, BreakerHalfOpen:
	default: // BreakerOpen
		if now.Sub(d.openedAt) < cooldown {
			admit = false
			break
		}
		d.state = BreakerHalfOpen
		d.gauge.Set(float64(BreakerHalfOpen))
		halfOpened = true
	}
	d.mu.Unlock()
	if halfOpened {
		d.jr.Publish(flight.KindBreakerHalfOpen, d.addr, 0, 0)
	}
	return admit
}

// healthy reports whether the breaker is fully closed. Half-open devices are
// suspects: they may serve trials, but they do not count toward a block's
// healthy replica target.
func (d *device) healthy() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state == BreakerClosed
}

// State returns the breaker's current position (exported for tests and the
// CLI's fleet summary).
func (d *device) State() BreakerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// candidates snapshots the block's replica set in routing order: closed
// breakers first (provisioning order preserved — replica 0 is the default
// leader), then half-open and cooled-down-open devices as trial fallbacks.
// Devices inside an open breaker's cooldown are excluded entirely.
func (b *blockState[E]) candidates(now time.Time, cooldown time.Duration) []*device {
	b.mu.Lock()
	replicas := make([]*device, len(b.replicas))
	copy(replicas, b.replicas)
	b.mu.Unlock()
	var closed, trial []*device
	for _, d := range replicas {
		if d.healthy() {
			closed = append(closed, d)
		} else if d.admissible(now, cooldown) {
			trial = append(trial, d)
		}
	}
	return append(closed, trial...)
}

// probeLoop pings the whole physical fleet (replicas and standbys) every
// ProbeInterval, feeding the breakers — so dead devices stop receiving
// queries even between queries, and recovered devices are noticed — and
// triggering self-repair of degraded blocks.
func (s *Session[E]) probeLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.probeOnce()
		}
	}
}

// probeOnce pings every device concurrently and then runs the repair check.
func (s *Session[E]) probeOnce() {
	s.devMu.Lock()
	devices := make([]*device, 0, len(s.devices))
	for _, d := range s.devices {
		devices = append(devices, d)
	}
	s.devMu.Unlock()
	var wg sync.WaitGroup
	for _, d := range devices {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Piggyback on the persistent connection's traffic: a device
			// heard from within the probe period (a response or heartbeat
			// frame on its pooled v3 connection) is demonstrably alive, so
			// skip the explicit ping RPC.
			// Export the multiplexed connection's latest heartbeat RTT so
			// /metrics carries the same per-device signal the adaptive
			// estimator consumes.
			if rtt, ok := s.client.LastRTT(d.addr); ok {
				d.rtt.Set(rtt.Seconds())
			}
			if t, ok := s.client.LastContact(d.addr); ok && time.Since(t) < s.cfg.ProbeInterval {
				d.recordSuccess()
				return
			}
			ctx, cancel := context.WithTimeout(s.ctx, s.cfg.ProbeTimeout)
			defer cancel()
			err := s.probe.Ping(ctx, d.addr)
			switch {
			case err == nil:
				d.recordSuccess()
			case s.ctx.Err() != nil:
				// Session shutdown, not a device verdict.
			default:
				d.recordFailure(s.cfg.BreakerThreshold)
			}
		}()
	}
	wg.Wait()
	if !s.cfg.DisableRepair {
		s.checkRepairs()
	}
}
