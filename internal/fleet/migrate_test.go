package fleet

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func checkAnswer(t *testing.T, env *testEnv, s *Session[uint64]) {
	t.Helper()
	got, err := s.MulVec(env.x)
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	for i := range got {
		if got[i] != env.want[i] {
			t.Fatalf("row %d = %d, want %d", i, got[i], env.want[i])
		}
	}
}

func TestRehostMovesBlockWithoutInterruption(t *testing.T) {
	env := newTestEnv(t, 1, 2)
	s := env.serve(t)
	checkAnswer(t, env, s)

	from := env.cfg.Replicas[0][0]
	to := env.cfg.Standbys[0]
	if err := s.Rehost(context.Background(), 0, from, to); err != nil {
		t.Fatalf("Rehost: %v", err)
	}
	hosts := s.BlockHosts()
	if len(hosts[0]) != 1 || hosts[0][0] != to {
		t.Fatalf("block 0 hosts = %v, want [%s]", hosts[0], to)
	}
	checkAnswer(t, env, s)

	// The vacated device eventually recycles into the standby pool, but only
	// after its quarantine: straggling attempts that snapshotted the old
	// replica set may still be reading the old block from it.
	for _, addr := range s.StandbyAddrs() {
		if addr == from {
			t.Fatalf("vacated %s is already an eligible standby; quarantine missing", from)
		}
	}
	if err := s.Rehost(context.Background(), 1, env.cfg.Replicas[1][0], from); err == nil {
		t.Fatal("claiming the quarantined vacated device should fail")
	} else if !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("unexpected error claiming quarantined standby: %v", err)
	}
}

func TestRehostRefusesOccupiedDestination(t *testing.T) {
	env := newTestEnv(t, 1, 1)
	s := env.serve(t)

	// One device stores exactly one block (Def. 2's per-device view): the
	// host of block 1 must not also receive block 0.
	err := s.Rehost(context.Background(), 0, env.cfg.Replicas[0][0], env.cfg.Replicas[1][0])
	if err == nil || !strings.Contains(err.Error(), "already hosts") {
		t.Fatalf("rehost onto an occupied device: err = %v", err)
	}
	checkAnswer(t, env, s)
}

func TestRehostValidation(t *testing.T) {
	env := newTestEnv(t, 1, 1)
	s := env.serve(t)
	if err := s.Rehost(context.Background(), -1, "a", "b"); err == nil {
		t.Error("negative block accepted")
	}
	if err := s.Rehost(context.Background(), 99, "a", "b"); err == nil {
		t.Error("out-of-range block accepted")
	}
	addr := env.cfg.Replicas[0][0]
	if err := s.Rehost(context.Background(), 0, addr, addr); err == nil {
		t.Error("self-rehost accepted")
	}
}

func TestRehostFailedPushLeavesPlacementIntact(t *testing.T) {
	env := newTestEnv(t, 1, 1)
	s := env.serve(t)

	env.standbys[0].SetMode(FaultDrop) // the push to the standby will fail
	from := env.cfg.Replicas[0][0]
	if err := s.Rehost(context.Background(), 0, from, env.cfg.Standbys[0]); err == nil {
		t.Fatal("rehost should surface the failed push")
	}
	hosts := s.BlockHosts()
	if len(hosts[0]) != 1 || hosts[0][0] != from {
		t.Fatalf("failed rehost mutated placement: %v", hosts[0])
	}
	checkAnswer(t, env, s)
}

func TestRehostUnderConcurrentQueries(t *testing.T) {
	env := newTestEnv(t, 1, 3)
	s := env.serve(t)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				got, err := s.MulVec(env.x)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if got[i] != env.want[i] {
						errs <- errors.New("wrong result during rehost")
						return
					}
				}
			}
		}()
	}

	// Walk block 0 across every standby while the queries fly: the replica
	// swap is atomic from any query's point of view, so none may fail.
	from := env.cfg.Replicas[0][0]
	for _, to := range env.cfg.Standbys {
		if err := s.Rehost(context.Background(), 0, from, to); err != nil {
			t.Fatalf("rehost %s → %s: %v", from, to, err)
		}
		from = to
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("query failed during rehost: %v", err)
	}
	hosts := s.BlockHosts()
	if hosts[0][0] != env.cfg.Standbys[len(env.cfg.Standbys)-1] {
		t.Fatalf("block 0 ended on %v", hosts[0])
	}
}
