package fleet

import (
	"encoding/json"
	"net/http"
	"time"

	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
	"github.com/scec/scec/internal/transport"
)

// DebugInfo is the session's live runtime snapshot, served by DebugHandler
// as /debug/fleet.
type DebugInfo struct {
	// Blocks holds one entry per logical coded block, in scheme order.
	Blocks []BlockDebug `json:"blocks"`
	// Standbys lists the warm standby pool (devices holding no block).
	Standbys []DeviceDebug `json:"standbys"`
	// HedgeDelay is the speculative-request delay a race started now would
	// use (fixed, or the current adaptive p95).
	HedgeDelay time.Duration `json:"hedgeDelayNs"`
	// Hedges/Retries/Queries/QueryErrors are the session's lifetime counters.
	Hedges      int64 `json:"hedges"`
	Retries     int64 `json:"retries"`
	Queries     int64 `json:"queries"`
	QueryErrors int64 `json:"queryErrors"`
	// Stragglers is the per-device latency/hedge-win digest; present only
	// when the session has a tracer.
	Stragglers []trace.DeviceStats `json:"stragglers,omitempty"`
}

// BlockDebug is one logical block's replica-set state.
type BlockDebug struct {
	Block int `json:"block"`
	// Target is the provisioned replica count self-repair defends.
	Target int `json:"target"`
	// Healthy counts replicas with fully closed breakers.
	Healthy int `json:"healthy"`
	// Repairing reports an in-flight standby promotion.
	Repairing bool          `json:"repairing"`
	Replicas  []DeviceDebug `json:"replicas"`
}

// DeviceDebug is one physical device's breaker position and pooled
// transport connection state.
type DeviceDebug struct {
	Addr    string `json:"addr"`
	Breaker string `json:"breaker"`
	// Conn is the transport pool's view of this device: negotiated
	// protocol, in-flight streams, idle pooled connections, and when the
	// device was last heard from over the persistent connection.
	Conn transport.ConnDebug `json:"conn,omitzero"`
}

// Debug snapshots the session's runtime state: per-block replica health,
// breaker positions, the standby pool, the live hedge delay, and the
// lifetime hedge/retry/query counters.
func (s *Session[E]) Debug() DebugInfo {
	info := DebugInfo{
		HedgeDelay:  s.hedgeDelay(),
		Hedges:      s.met.hedges.Value(),
		Retries:     s.met.retries.Value(),
		Queries:     s.met.queriesVec.Value() + s.met.queriesMat.Value(),
		QueryErrors: s.met.qErrorsVec.Value() + s.met.qErrorsMat.Value(),
		Stragglers:  s.strag.Snapshot(),
	}
	for _, b := range s.blocks {
		b.mu.Lock()
		bd := BlockDebug{
			Block:     b.index,
			Target:    b.target,
			Repairing: b.repairing,
			Replicas:  make([]DeviceDebug, 0, len(b.replicas)),
		}
		replicas := make([]*device, len(b.replicas))
		copy(replicas, b.replicas)
		b.mu.Unlock()
		for _, d := range replicas {
			st := d.State()
			if st == BreakerClosed {
				bd.Healthy++
			}
			bd.Replicas = append(bd.Replicas, DeviceDebug{Addr: d.addr, Breaker: st.String(), Conn: s.client.ConnDebug(d.addr)})
		}
		info.Blocks = append(info.Blocks, bd)
	}
	s.standbyMu.Lock()
	standbys := make([]*device, len(s.standbys))
	copy(standbys, s.standbys)
	s.standbyMu.Unlock()
	for _, d := range standbys {
		info.Standbys = append(info.Standbys, DeviceDebug{Addr: d.addr, Breaker: d.State().String(), Conn: s.client.ConnDebug(d.addr)})
	}
	return info
}

// Stragglers returns the session's per-device latency/hedge-win analytics
// (nil when the session is untraced).
func (s *Session[E]) Stragglers() *trace.Stragglers { return s.strag }

// DebugHandler serves the Debug snapshot as JSON — mount it as /debug/fleet
// via the obs handler's extra-route hook.
func (s *Session[E]) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		obs.JSONHeaders(w)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Debug())
	})
}
