package fleet

import (
	"math/rand/v2"
	"strconv"
	"strings"
	"testing"

	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
)

// TestFleetMetricsEagerlyRegistered: a scrape of a freshly provisioned
// session already shows every fleet counter at zero and one breaker gauge
// per physical device — before any query runs.
func TestFleetMetricsEagerlyRegistered(t *testing.T) {
	env := newTestEnv(t, 2, 1)
	env.serve(t)
	var b strings.Builder
	if err := env.reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP " + obs.MetricFleetQueriesTotal,
		"# TYPE " + obs.MetricFleetQueriesTotal + " counter",
		obs.MetricFleetQueriesTotal + `{kind="vec"} 0`,
		obs.MetricFleetQueriesTotal + `{kind="mat"} 0`,
		obs.MetricFleetQueryErrorsTotal + `{kind="vec"} 0`,
		obs.MetricFleetHedgesTotal + " 0",
		obs.MetricFleetRetriesTotal + " 0",
		obs.MetricFleetRepairsTotal + `{outcome="ok"} 0`,
		obs.MetricFleetRepairsTotal + `{outcome="failed"} 0`,
		"# TYPE " + obs.MetricFleetBreakerState + " gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
	devices := 2*env.scheme.Devices() + 1
	if got := strings.Count(out, obs.MetricFleetBreakerState+"{device="); got != devices {
		t.Fatalf("breaker gauge has %d device series, want %d", got, devices)
	}
}

// TestFleetMetricsBoundedCardinality drives vec and mat queries (including a
// failover) and checks every fleet metric stays inside its fixed label sets:
// kind ∈ {vec, mat}, outcome ∈ {ok, failed}, device ∈ the configured fleet,
// block ∈ [0, devices) — no matter how many queries run.
func TestFleetMetricsBoundedCardinality(t *testing.T) {
	env := newTestEnv(t, 2, 0)
	s := env.serve(t)
	env.proxies[2][0].SetMode(FaultDrop) // exercise the failover counter too

	rng := rand.New(rand.NewPCG(8, 9))
	xm := matrix.New[uint64](env.a.Cols(), 2)
	for i := 0; i < xm.Rows(); i++ {
		for j := 0; j < 2; j++ {
			xm.Set(i, j, env.f.Rand(rng))
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := s.MulVec(env.x); err != nil {
			t.Fatal(err)
		}
		if _, err := s.MulMat(xm); err != nil {
			t.Fatal(err)
		}
	}

	addrs := make(map[string]bool)
	for _, group := range env.cfg.Replicas {
		for _, a := range group {
			addrs[a] = true
		}
	}
	snap := env.reg.Snapshot()
	seen := make(map[string]bool)
	for _, fam := range snap.Metrics {
		switch fam.Name {
		case obs.MetricFleetQueriesTotal, obs.MetricFleetQueryErrorsTotal:
			seen[fam.Name] = true
			if len(fam.Series) > 2 {
				t.Fatalf("%s has %d series, want <= 2 (vec, mat)", fam.Name, len(fam.Series))
			}
			for _, sr := range fam.Series {
				if k := sr.Labels["kind"]; k != kindVec && k != kindMat {
					t.Fatalf("%s label kind=%q outside the bounded set", fam.Name, k)
				}
			}
		case obs.MetricFleetRepairsTotal:
			seen[fam.Name] = true
			for _, sr := range fam.Series {
				if o := sr.Labels["outcome"]; o != outcomeOK && o != outcomeFailed {
					t.Fatalf("repairs label outcome=%q outside the bounded set", o)
				}
			}
		case obs.MetricFleetBreakerState:
			seen[fam.Name] = true
			if len(fam.Series) > len(addrs) {
				t.Fatalf("breaker gauge has %d series for %d devices", len(fam.Series), len(addrs))
			}
			for _, sr := range fam.Series {
				if !addrs[sr.Labels["device"]] {
					t.Fatalf("breaker gauge for unknown device %q", sr.Labels["device"])
				}
			}
		case obs.MetricFleetBlockWinnerSeconds:
			seen[fam.Name] = true
			if len(fam.Series) > env.scheme.Devices() {
				t.Fatalf("winner histogram has %d series for %d blocks", len(fam.Series), env.scheme.Devices())
			}
			for _, sr := range fam.Series {
				j, err := strconv.Atoi(sr.Labels["block"])
				if err != nil || j < 0 || j >= env.scheme.Devices() {
					t.Fatalf("winner histogram label block=%q outside [0, %d)", sr.Labels["block"], env.scheme.Devices())
				}
			}
		case obs.MetricFleetRetriesTotal:
			seen[fam.Name] = true
			// Failovers run until the dead replica's breaker opens at the
			// threshold; after that, queries route straight to the healthy one.
			if fam.Series[0].Value < float64(DefaultBreakerThreshold) {
				t.Fatalf("retries total = %g, want >= %d", fam.Series[0].Value, DefaultBreakerThreshold)
			}
		case obs.MetricFleetHedgesTotal:
			seen[fam.Name] = true
		}
	}
	for _, name := range []string{
		obs.MetricFleetQueriesTotal, obs.MetricFleetQueryErrorsTotal,
		obs.MetricFleetHedgesTotal, obs.MetricFleetRetriesTotal,
		obs.MetricFleetRepairsTotal, obs.MetricFleetBreakerState,
		obs.MetricFleetBlockWinnerSeconds,
	} {
		if !seen[name] {
			t.Fatalf("fleet metric %s missing from registry", name)
		}
	}
	// The per-query vec counter must track exactly.
	if v := counterValue(t, env.reg, obs.MetricFleetQueriesTotal, map[string]string{"kind": kindVec}); v != 4 {
		t.Fatalf("vec queries = %g, want 4", v)
	}
}
