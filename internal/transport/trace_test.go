package transport

import (
	"context"
	"encoding/gob"
	"net"
	"testing"
	"time"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/obs/trace"
)

// legacyRequest/legacyResponse mirror the FrameV1 wire layout: the envelope
// before the version byte and trace fields existed. gob matches fields by
// name, so exchanging these against current peers reproduces a mixed-version
// fleet exactly.
type legacyRequest[E comparable] struct {
	Kind  string
	Block [][]E
	X     []E
	XMat  [][]E
}

type legacyResponse[E comparable] struct {
	Err  string
	Y    []E
	YMat [][]E
}

// storeBlock installs a 1×len(x) coded block so compute requests succeed.
func storeBlock(t *testing.T, addr string, row []uint64) {
	t.Helper()
	resp, err := roundTrip(context.Background(), addr, time.Second, nil,
		request[uint64]{Kind: kindStore, Block: [][]uint64{row}})
	if err != nil || resp.Err != "" {
		t.Fatalf("store: %v %q", err, resp.Err)
	}
}

// TestLegacyClientAgainstTracedServer sends a FrameV1 request (no version
// byte, no traceparent) to a tracer-enabled server: the device must answer
// correctly, emit no server span, and attach no spans to the response.
func TestLegacyClientAgainstTracedServer(t *testing.T) {
	f := field.Prime{}
	tr := trace.New(trace.Options{Service: "device"})
	srv, err := NewDeviceServerOptions[uint64](f, "127.0.0.1:0", Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	storeBlock(t, srv.Addr(), []uint64{2, 3})

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if err := gob.NewEncoder(conn).Encode(legacyRequest[uint64]{Kind: kindCompute, X: []uint64{5, 7}}); err != nil {
		t.Fatal(err)
	}
	var resp legacyResponse[uint64]
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("remote error: %s", resp.Err)
	}
	if want := uint64(2*5 + 3*7); len(resp.Y) != 1 || resp.Y[0] != want {
		t.Fatalf("got %v, want [%d]", resp.Y, want)
	}
	if spans := tr.Snapshot(); len(spans) != 0 {
		t.Fatalf("untraced V1 request produced %d server spans", len(spans))
	}
}

// TestTracedClientAgainstLegacyServer runs the current traced client against
// a server speaking the FrameV1 layout: the query must succeed and the
// client's trace must contain its rpc.client span but no adopted device
// spans.
func TestTracedClientAgainstLegacyServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				// A legacy decoder ignores the stream's V and Traceparent
				// fields — gob drops fields the receiver's struct lacks.
				var req legacyRequest[uint64]
				if err := gob.NewDecoder(conn).Decode(&req); err != nil {
					return
				}
				resp := legacyResponse[uint64]{}
				if req.Kind == kindCompute {
					resp.Y = []uint64{41}
				}
				_ = gob.NewEncoder(conn).Encode(resp)
			}()
		}
	}()

	tr := trace.New(trace.Options{Service: "user"})
	ctx, root := tr.StartRoot(context.Background(), "query")
	y, err := (Client[uint64]{F: field.Prime{}, Timeout: 2 * time.Second}).Compute(ctx, ln.Addr().String(), []uint64{1})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 1 || y[0] != 41 {
		t.Fatalf("got %v, want [41]", y)
	}
	names := map[string]int{}
	for _, sd := range tr.Snapshot() {
		names[sd.Name]++
	}
	if names[trace.SpanRPCClient] != 1 {
		t.Fatalf("rpc.client spans = %d, want 1 (spans: %v)", names[trace.SpanRPCClient], names)
	}
	if names[trace.SpanRPCServer] != 0 || names[trace.SpanDeviceCompute] != 0 {
		t.Fatalf("legacy server leaked device spans: %v", names)
	}
}

// TestTracedRoundTripStitchesDeviceSpans is the both-sides-current case: the
// device's rpc.server and device.compute spans come back in the response
// frame and land in the client tracer under the same trace ID with correct
// parentage.
func TestTracedRoundTripStitchesDeviceSpans(t *testing.T) {
	f := field.Prime{}
	devTr := trace.New(trace.Options{Service: "device"})
	srv, err := NewDeviceServerOptions[uint64](f, "127.0.0.1:0", Options{Tracer: devTr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	storeBlock(t, srv.Addr(), []uint64{1, 1})

	tr := trace.New(trace.Options{Service: "user"})
	ctx, root := tr.StartRoot(context.Background(), "query")
	if _, err := (Client[uint64]{F: f, Timeout: 2 * time.Second}).Compute(ctx, srv.Addr(), []uint64{4, 9}); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := tr.Snapshot()
	byName := map[string]trace.SpanData{}
	for _, sd := range spans {
		byName[sd.Name] = sd
	}
	rootSD, client := byName["query"], byName[trace.SpanRPCClient]
	server, compute := byName[trace.SpanRPCServer], byName[trace.SpanDeviceCompute]
	for name, sd := range map[string]trace.SpanData{
		"query": rootSD, trace.SpanRPCClient: client,
		trace.SpanRPCServer: server, trace.SpanDeviceCompute: compute,
	} {
		if sd.SpanID == "" {
			t.Fatalf("span %s missing from client tracer (have %d spans)", name, len(spans))
		}
		if sd.TraceID != rootSD.TraceID {
			t.Fatalf("span %s has trace %s, want %s", name, sd.TraceID, rootSD.TraceID)
		}
	}
	if client.ParentID != rootSD.SpanID {
		t.Errorf("rpc.client parent = %s, want root %s", client.ParentID, rootSD.SpanID)
	}
	if server.ParentID != client.SpanID {
		t.Errorf("rpc.server parent = %s, want rpc.client %s", server.ParentID, client.SpanID)
	}
	if compute.ParentID != server.SpanID {
		t.Errorf("device.compute parent = %s, want rpc.server %s", compute.ParentID, server.SpanID)
	}
	if server.Service != "device" || client.Service != "user" {
		t.Errorf("service attribution: client=%q server=%q", client.Service, server.Service)
	}
	if got := server.Attr(trace.AttrDevice); got != srv.Addr() {
		t.Errorf("rpc.server device attr = %q, want %q", got, srv.Addr())
	}
}

// TestUntracedClientCurrentServer pins the no-tracer fast path: neither side
// records anything and the exchange still works (V2 frames, empty trace
// fields).
func TestUntracedClientCurrentServer(t *testing.T) {
	f := field.Prime{}
	srv, err := NewDeviceServer[uint64](f, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	storeBlock(t, srv.Addr(), []uint64{3})
	y, err := (Client[uint64]{F: f, Timeout: 2 * time.Second}).Compute(context.Background(), srv.Addr(), []uint64{9})
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 1 || y[0] != 27 {
		t.Fatalf("got %v, want [27]", y)
	}
}

// TestTracedRemoteErrorKeepsDeviceSpans: a remote failure must still adopt
// the device's server span (carrying the error) into the client trace.
func TestTracedRemoteErrorKeepsDeviceSpans(t *testing.T) {
	f := field.Prime{}
	devTr := trace.New(trace.Options{Service: "device"})
	srv, err := NewDeviceServerOptions[uint64](f, "127.0.0.1:0", Options{Tracer: devTr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// No block stored: compute fails remotely.
	tr := trace.New(trace.Options{Service: "user"})
	ctx, root := tr.StartRoot(context.Background(), "query")
	_, err = (Client[uint64]{F: f, Timeout: 2 * time.Second}).Compute(ctx, srv.Addr(), []uint64{1})
	root.End()
	if err == nil {
		t.Fatal("expected remote error")
	}
	var server trace.SpanData
	for _, sd := range tr.Snapshot() {
		if sd.Name == trace.SpanRPCServer {
			server = sd
		}
	}
	if server.SpanID == "" {
		t.Fatal("failed request did not adopt the device's rpc.server span")
	}
	if server.Error == "" {
		t.Errorf("adopted server span carries no error")
	}
}
