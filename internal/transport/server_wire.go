package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs/trace"
)

// Metric help strings shared by both roles.
const (
	flushHelp   = "Frames pushed to the socket per write-batcher flush syscall, by role."
	connsHelp   = "Open transport connections, by role, wire protocol, and device."
	streamsHelp = "v3 streams currently awaiting a response, by role and device."
)

// serveV3 answers binary-protocol frames on one persistent connection:
// it completes the hello handshake, then reads request frames and
// dispatches each to its own goroutine, so slow computes do not block the
// stream — responses multiplex back through the shared write batcher in
// completion order, matched by stream ID.
func (s *DeviceServer[E]) serveV3(conn net.Conn, cc *countingConn, br *bufio.Reader) {
	code, err := readClientHello(br)
	if err != nil {
		recordServer(s.metrics, "malformed", 0, cc.read, cc.written, true)
		return
	}
	cod, ok := codecFor[E]()
	_ = conn.SetWriteDeadline(time.Now().Add(s.timeout))
	if !ok || code != cod.code {
		h := serverHello(cod.code, helloRejectElem)
		_, _ = conn.Write(h[:])
		recordServer(s.metrics, "malformed", 0, cc.read, cc.written, true)
		return
	}
	h := serverHello(cod.code, helloOK)
	if _, err := conn.Write(h[:]); err != nil {
		return
	}
	s.connsV3.Add(1)
	defer s.connsV3.Add(-1)
	w := newWireWriter(conn, s.timeout, s.flushHist)
	defer w.close()
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.timeout)); err != nil {
			return
		}
		select {
		case <-s.done:
			return
		default:
		}
		req, err := readRequestFrame[E](br, cod, s.maxElements)
		if err != nil {
			var ne net.Error
			if !errors.Is(err, io.EOF) && !(errors.As(err, &ne) && ne.Timeout()) && !peerClosed(err) {
				// Broken framing mid-stream: count it, drop the connection.
				recordServer(s.metrics, "malformed", 0, cc.read, cc.written, true)
			}
			return
		}
		handlers.Add(1)
		s.streamsOpen.Add(1)
		go func() {
			defer handlers.Done()
			defer s.streamsOpen.Add(-1)
			s.handleWire(w, cod, req)
		}()
	}
}

// handleWire serves one decoded v3 request frame end to end.
func (s *DeviceServer[E]) handleWire(w *wireWriter, cod elemCodec, req *wireRequest[E]) {
	start := time.Now()
	kind := opToKind(req.op)
	ctx, bag, sp := s.startServerSpan(kind, req.tp)
	var (
		errMsg string
		y      []E
		yMat   *matrix.Dense[E]
	)
	switch {
	case req.capErr != "":
		errMsg = req.capErr
	case req.op == opPing:
	case req.op == opStore:
		if req.block.Rows() == 0 {
			errMsg = "store: empty coded block"
		} else {
			s.installBlock(req.block)
		}
	case req.op == opCompute:
		y, errMsg = s.mulVec(ctx, bag, req.x)
	case req.op == opComputeBatch:
		yMat, errMsg = s.mulMat(ctx, bag, req.xmat)
	}
	errored := errMsg != ""
	var spans []byte
	if sp != nil {
		if errored {
			sp.SetError(errors.New(errMsg))
		}
		sp.End()
		bag.add(sp)
		spans = encodeSpans(bag.spans)
	}
	written, _ := writeResponseFrame(w, cod, req.stream, req.op, errMsg, y, yMat, spans)
	recordServer(s.metrics, kind, time.Since(start), req.size, written, errored)
}

// writeResponseFrame appends one response frame:
//
//	u32 length | u32 streamID | u8 op|0x80 | u8 status |
//	  (status!=0: u32 msgLen | msg)
//	  (status==0, compute: u32 n | elems)
//	  (status==0, compute-batch: u32 rows | u32 cols | elems)
//	| u32 spansLen | gob([]trace.SpanData)
//
// and returns the frame's full wire size.
func writeResponseFrame[E comparable](w *wireWriter, cod elemCodec, stream uint32, op byte, errMsg string, y []E, yMat *matrix.Dense[E], spans []byte) (int64, error) {
	payload := 1 + 4 + len(spans) // status byte + spans trailer
	switch {
	case errMsg != "":
		payload += 4 + len(errMsg)
	case op == opCompute:
		payload += 4 + len(y)*cod.size
	case op == opComputeBatch:
		payload += 8 + yMat.Rows()*yMat.Cols()*cod.size
	}
	size := int64(frameOverhead + payload)
	err := w.writeFrame(func(bw *bufio.Writer) error {
		var hdr [frameOverhead + 1]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(5+payload))
		binary.LittleEndian.PutUint32(hdr[4:8], stream)
		hdr[8] = op | opResponseBit
		if errMsg != "" {
			hdr[9] = 1
		}
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		var u [8]byte
		switch {
		case errMsg != "":
			binary.LittleEndian.PutUint32(u[:4], uint32(len(errMsg)))
			if _, err := bw.Write(u[:4]); err != nil {
				return err
			}
			if _, err := bw.WriteString(errMsg); err != nil {
				return err
			}
		case op == opCompute:
			binary.LittleEndian.PutUint32(u[:4], uint32(len(y)))
			if _, err := bw.Write(u[:4]); err != nil {
				return err
			}
			if _, err := bw.Write(elemWireBytes(y, cod.size)); err != nil {
				return err
			}
		case op == opComputeBatch:
			binary.LittleEndian.PutUint32(u[:4], uint32(yMat.Rows()))
			binary.LittleEndian.PutUint32(u[4:8], uint32(yMat.Cols()))
			if _, err := bw.Write(u[:8]); err != nil {
				return err
			}
			slab := yMat.RowsView(0, yMat.Rows())
			if _, err := bw.Write(elemWireBytes(slab, cod.size)); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint32(u[:4], uint32(len(spans)))
		if _, err := bw.Write(u[:4]); err != nil {
			return err
		}
		_, err := bw.Write(spans)
		return err
	})
	if err != nil {
		return 0, err
	}
	return size, nil
}

// encodeSpans gob-encodes a span batch for the response trailer; spans are
// cold-path metadata, so gob's flexibility beats a hand-rolled layout here.
func encodeSpans(spans []trace.SpanData) []byte {
	if len(spans) == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(spans); err != nil {
		return nil
	}
	return buf.Bytes()
}

func decodeSpans(b []byte) []trace.SpanData {
	if len(b) == 0 {
		return nil
	}
	var spans []trace.SpanData
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&spans); err != nil {
		return nil
	}
	return spans
}

// writeRequestFrame appends one request frame (layout in wire.go: the
// traceparent prefix, then the op-specific dimensions and the raw
// little-endian element slab) and returns its full wire size.
func writeRequestFrame[E comparable](w *wireWriter, cod elemCodec, stream uint32, req *request[E]) (int64, error) {
	if _, ok := kindToOp(req.Kind); !ok {
		// Reject before writeFrame: a sticky writer error would poison the
		// shared connection for an error that wrote no bytes.
		return 0, fmt.Errorf("transport: kind %q has no v3 encoding", req.Kind)
	}
	var size int64
	err := w.writeFrame(func(bw *bufio.Writer) error {
		var ferr error
		size, ferr = encodeRequestFrame(bw, cod, stream, req)
		return ferr
	})
	if err != nil {
		return 0, err
	}
	return size, nil
}

// encodeRequestFrame writes exactly one request frame to bw and returns its
// on-wire size. Split from writeRequestFrame so the bench harness can
// measure pure encode cost against an in-memory buffer.
func encodeRequestFrame[E comparable](bw *bufio.Writer, cod elemCodec, stream uint32, req *request[E]) (int64, error) {
	op, ok := kindToOp(req.Kind)
	if !ok {
		return 0, fmt.Errorf("transport: kind %q has no v3 encoding", req.Kind)
	}
	tp := req.Traceparent
	if len(tp) > 255 {
		tp = "" // cannot happen with W3C traceparents; degrade to untraced
	}
	var vec, slab []E
	var rows, cols int
	switch op {
	case opCompute:
		vec = req.X
	case opStore:
		m := req.blockM
		if m == nil {
			m = matrix.FromRows(req.Block)
		}
		rows, cols = m.Rows(), m.Cols()
		slab = m.RowsView(0, rows)
	case opComputeBatch:
		m := req.xmatM
		if m == nil {
			m = matrix.FromRows(req.XMat)
		}
		rows, cols = m.Rows(), m.Cols()
		slab = m.RowsView(0, rows)
	}
	payload := 1 + len(tp)
	switch op {
	case opCompute:
		payload += 4 + len(vec)*cod.size
	case opStore, opComputeBatch:
		payload += 8 + len(slab)*cod.size
	}
	size := int64(frameOverhead + payload)
	var hdr [frameOverhead + 1]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(5+payload))
	binary.LittleEndian.PutUint32(hdr[4:8], stream)
	hdr[8] = op
	hdr[9] = byte(len(tp))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	if len(tp) > 0 {
		if _, err := bw.WriteString(tp); err != nil {
			return 0, err
		}
	}
	var u [8]byte
	switch op {
	case opCompute:
		binary.LittleEndian.PutUint32(u[:4], uint32(len(vec)))
		if _, err := bw.Write(u[:4]); err != nil {
			return 0, err
		}
		if _, err := bw.Write(elemWireBytes(vec, cod.size)); err != nil {
			return 0, err
		}
	case opStore, opComputeBatch:
		binary.LittleEndian.PutUint32(u[:4], uint32(rows))
		binary.LittleEndian.PutUint32(u[4:8], uint32(cols))
		if _, err := bw.Write(u[:8]); err != nil {
			return 0, err
		}
		if _, err := bw.Write(elemWireBytes(slab, cod.size)); err != nil {
			return 0, err
		}
	}
	return size, nil
}

// wireResponse is one decoded v3 response frame on the client side.
type wireResponse[E comparable] struct {
	op     byte
	errMsg string
	y      []E
	yMat   *matrix.Dense[E]
	spans  []trace.SpanData
	size   int64
}

// readResponseFrame decodes one response frame, returning its stream ID
// for mux dispatch.
func readResponseFrame[E comparable](br *bufio.Reader, cod elemCodec) (uint32, *wireResponse[E], error) {
	var hdr [frameOverhead]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length < 6 || length > maxFrameLen {
		return 0, nil, fmt.Errorf("transport: bad response frame length %d", length)
	}
	stream := binary.LittleEndian.Uint32(hdr[4:8])
	wr := &wireResponse[E]{op: hdr[8], size: int64(4 + length)}
	if wr.op&opResponseBit == 0 {
		return 0, nil, fmt.Errorf("transport: request op %#x in response frame", wr.op)
	}
	body := int(length) - 5
	var u [8]byte
	if _, err := io.ReadFull(br, u[:1]); err != nil {
		return 0, nil, err
	}
	status := u[0]
	body--
	readU32 := func() (int, error) {
		if body < 4 {
			return 0, errors.New("transport: truncated response payload")
		}
		if _, err := io.ReadFull(br, u[:4]); err != nil {
			return 0, err
		}
		body -= 4
		return int(binary.LittleEndian.Uint32(u[:4])), nil
	}
	if status != 0 {
		n, err := readU32()
		if err != nil {
			return 0, nil, err
		}
		if n > body {
			return 0, nil, errors.New("transport: error message overruns frame")
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(br, msg); err != nil {
			return 0, nil, err
		}
		body -= n
		wr.errMsg = string(msg)
		if wr.errMsg == "" {
			wr.errMsg = "unspecified remote error"
		}
	} else {
		switch wr.op &^ opResponseBit {
		case opPing, opStore:
		case opCompute:
			n, err := readU32()
			if err != nil {
				return 0, nil, err
			}
			// The spans trailer still follows (≥ 4 bytes), bounding the
			// element count — and with it the allocation — by the frame.
			if body < 4 || n*cod.size > body-4 {
				return 0, nil, fmt.Errorf("transport: %d response elements do not fit frame", n)
			}
			if wr.y, err = readElemsChunked[E](br, n, cod.size); err != nil {
				return 0, nil, err
			}
			body -= n * cod.size
		case opComputeBatch:
			rows, err := readU32()
			if err != nil {
				return 0, nil, err
			}
			cols, err := readU32()
			if err != nil {
				return 0, nil, err
			}
			// Division, not multiplication: rows·cols·size can overflow
			// uint64 on forged dimensions and sneak past a product check.
			total := uint64(rows) * uint64(cols)
			if body < 4 || rows < 0 || cols < 0 || total > uint64(body-4)/uint64(cod.size) {
				return 0, nil, fmt.Errorf("transport: %dx%d response does not fit frame", rows, cols)
			}
			data, err := readElemsChunked[E](br, int(total), cod.size)
			if err != nil {
				return 0, nil, err
			}
			body -= int(total) * cod.size
			wr.yMat = matrix.FromSlice(rows, cols, data)
		default:
			return 0, nil, fmt.Errorf("transport: unknown response op %#x", wr.op)
		}
	}
	n, err := readU32()
	if err != nil {
		return 0, nil, err
	}
	if n != body {
		return 0, nil, fmt.Errorf("transport: spans trailer of %d bytes in %d remaining", n, body)
	}
	if n > 0 {
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return 0, nil, err
		}
		wr.spans = decodeSpans(b)
	}
	return stream, wr, nil
}
