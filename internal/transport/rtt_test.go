package transport

import (
	"testing"
	"time"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/obs"
)

// TestLastRTTMeasured pins the estimator's network signal: the handshake
// seeds an RTT for the pooled connection, idle heartbeats keep refreshing
// it, and ConnDebug surfaces the same number.
func TestLastRTTMeasured(t *testing.T) {
	f := field.Prime{}
	srv, err := NewDeviceServer[uint64](f, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool := NewPool[uint64]()
	pool.heartbeat = 30 * time.Millisecond
	client := Client[uint64]{F: f, Timeout: 2 * time.Second, Metrics: obs.New(), Pool: pool}

	if _, ok := client.LastRTT(srv.Addr()); ok {
		t.Fatal("RTT reported before any connection exists")
	}
	if err := client.Ping(t.Context(), srv.Addr()); err != nil {
		t.Fatal(err)
	}
	rtt, ok := client.LastRTT(srv.Addr())
	if !ok {
		t.Fatal("no RTT after the negotiation handshake")
	}
	if rtt <= 0 || rtt > time.Second {
		t.Fatalf("loopback handshake RTT = %v, implausible", rtt)
	}

	// Idle heartbeats refresh the measurement without any caller RPCs.
	time.Sleep(150 * time.Millisecond)
	rtt2, ok := client.LastRTT(srv.Addr())
	if !ok || rtt2 <= 0 {
		t.Fatalf("RTT lost after idle heartbeats: %v %v", rtt2, ok)
	}

	dbg := pool.Debug(srv.Addr())
	if dbg.RTT != rtt2 {
		t.Fatalf("ConnDebug.RTT = %v, LastRTT = %v; must agree", dbg.RTT, rtt2)
	}
	if dbg.Proto != "v3" {
		t.Fatalf("proto = %q, want v3", dbg.Proto)
	}
}
