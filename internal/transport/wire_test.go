package transport

import (
	"context"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
)

// rawV3Conn dials a device server and completes the v3 handshake with raw
// bytes, so the tests below pin the exact wire layout rather than trusting
// the encoder and decoder to agree with each other.
func rawV3Conn(t *testing.T, addr string, elemCode byte) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	hello := []byte{0x00, 'S', 'C', 'E', 'C', 'v', '3', '\n', 3, elemCode, 0, 0}
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 12)
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read server hello: %v", err)
	}
	want := []byte{0x00, 'S', 'C', 'E', 'C', 'v', '3', '\n', 3, elemCode, 0, 0}
	if string(got) != string(want) {
		t.Fatalf("server hello = % x, want % x", got, want)
	}
	return conn
}

// readRawFrame reads one whole frame (length prefix included).
func readRawFrame(t *testing.T, conn net.Conn) []byte {
	t.Helper()
	var lenb [4]byte
	if _, err := io.ReadFull(conn, lenb[:]); err != nil {
		t.Fatalf("read frame length: %v", err)
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	rest := make([]byte, n)
	if _, err := io.ReadFull(conn, rest); err != nil {
		t.Fatalf("read frame body: %v", err)
	}
	return append(lenb[:], rest...)
}

// TestWireV3PingFrameBytes pins the hello handshake and the ping exchange
// byte for byte: a wire-format change that breaks deployed peers must fail
// here, not in production.
func TestWireV3PingFrameBytes(t *testing.T) {
	srv, err := NewDeviceServer[uint64](field.Prime{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn := rawV3Conn(t, srv.Addr(), 1)

	// Ping on stream 7: length=6 | stream=7 | opPing | tpLen=0.
	ping := []byte{6, 0, 0, 0, 7, 0, 0, 0, 1, 0}
	if _, err := conn.Write(ping); err != nil {
		t.Fatal(err)
	}
	// Response: length=10 | stream=7 | 0x81 | status=0 | spansLen=0.
	want := []byte{10, 0, 0, 0, 7, 0, 0, 0, 0x81, 0, 0, 0, 0, 0}
	if got := readRawFrame(t, conn); string(got) != string(want) {
		t.Fatalf("ping response = % x, want % x", got, want)
	}
}

// TestWireV3ComputeFrameBytes pins the store and compute frame layouts,
// including the raw little-endian element slabs, against a real server.
func TestWireV3ComputeFrameBytes(t *testing.T) {
	srv, err := NewDeviceServer[uint64](field.Prime{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn := rawV3Conn(t, srv.Addr(), 1)

	le64 := func(vals ...uint64) []byte {
		b := make([]byte, 0, 8*len(vals))
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, v)
		}
		return b
	}
	// Store [[2 3]] on stream 1: tpLen=0 | rows=1 | cols=2 | slab.
	store := []byte{30, 0, 0, 0, 1, 0, 0, 0, 2, 0, 1, 0, 0, 0, 2, 0, 0, 0}
	store = append(store, le64(2, 3)...)
	if _, err := conn.Write(store); err != nil {
		t.Fatal(err)
	}
	wantStore := []byte{10, 0, 0, 0, 1, 0, 0, 0, 0x82, 0, 0, 0, 0, 0}
	if got := readRawFrame(t, conn); string(got) != string(wantStore) {
		t.Fatalf("store response = % x, want % x", got, wantStore)
	}

	// Compute x=[5 7] on stream 2: tpLen=0 | n=2 | slab. y = 2·5+3·7 = 31.
	comp := []byte{26, 0, 0, 0, 2, 0, 0, 0, 3, 0, 2, 0, 0, 0}
	comp = append(comp, le64(5, 7)...)
	if _, err := conn.Write(comp); err != nil {
		t.Fatal(err)
	}
	wantComp := []byte{22, 0, 0, 0, 2, 0, 0, 0, 0x83, 0, 1, 0, 0, 0}
	wantComp = append(wantComp, le64(31)...)
	wantComp = append(wantComp, 0, 0, 0, 0)
	if got := readRawFrame(t, conn); string(got) != string(wantComp) {
		t.Fatalf("compute response = % x, want % x", got, wantComp)
	}

	if got := srv.Stats(); got.Stores != 1 || got.Computes != 1 {
		t.Fatalf("server stats = %+v after raw exchanges", got)
	}
}

// TestWireV3RejectsWrongElemCode: a hello with a mismatched element code
// must be answered with an explicit rejection status, not silence.
func TestWireV3RejectsWrongElemCode(t *testing.T) {
	srv, err := NewDeviceServer[uint64](field.Prime{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	hello := []byte{0x00, 'S', 'C', 'E', 'C', 'v', '3', '\n', 3, 2 /* byte, not uint64 */, 0, 0}
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 12)
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read rejection hello: %v", err)
	}
	if got[10] != helloRejectElem {
		t.Fatalf("rejection status = %d, want %d (hello % x)", got[10], helloRejectElem, got)
	}
}

// TestV3ClientFallsBackToGobOnlyServer runs a default (auto) client against
// a server emulating a legacy gob-only device: the first request must
// negotiate, detect the legacy peer, transparently retry over gob, and the
// pool must remember the verdict so later requests skip the probe.
func TestV3ClientFallsBackToGobOnlyServer(t *testing.T) {
	f := field.Prime{}
	srv, err := NewDeviceServerOptions[uint64](f, "127.0.0.1:0", Options{Proto: ProtoGob})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	storeBlock(t, srv.Addr(), []uint64{2, 3})

	reg := obs.New()
	client := Client[uint64]{F: f, Timeout: 2 * time.Second, Metrics: reg, Pool: NewPool[uint64]()}
	for i := 0; i < 3; i++ {
		y, err := client.Compute(t.Context(), srv.Addr(), []uint64{5, 7})
		if err != nil {
			t.Fatalf("compute %d: %v", i, err)
		}
		if len(y) != 1 || y[0] != 31 {
			t.Fatalf("compute %d: got %v, want [31]", i, y)
		}
	}
	if d := client.ConnDebug(srv.Addr()); d.Proto != "gob" {
		t.Fatalf("pool debug proto = %q, want gob (%+v)", d.Proto, d)
	}
	legacy := reg.Counter(obs.MetricTransportNegotiations, "", obs.L("outcome", "legacy")).Value()
	if legacy != 1 {
		t.Fatalf("legacy negotiations = %d, want exactly 1 (verdict must be cached)", legacy)
	}
}

// TestForcedGobClientAgainstAutoServer forces the legacy protocol against a
// dual-protocol server — the downgrade direction of mixed-version interop.
func TestForcedGobClientAgainstAutoServer(t *testing.T) {
	f := field.Prime{}
	srv, err := NewDeviceServer[uint64](f, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	storeBlock(t, srv.Addr(), []uint64{2, 3})

	client := Client[uint64]{F: f, Timeout: 2 * time.Second, Proto: ProtoGob, Pool: NewPool[uint64]()}
	y, err := client.Compute(t.Context(), srv.Addr(), []uint64{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 1 || y[0] != 31 {
		t.Fatalf("got %v, want [31]", y)
	}
	if d := client.ConnDebug(srv.Addr()); d.Proto != "gob" || d.IdleConns != 1 {
		t.Fatalf("pool debug = %+v, want one idle gob conn", d)
	}
}

// TestProtoV3RefusesGobOnlyServer: with fallback disabled the client must
// surface the negotiation failure instead of silently downgrading.
func TestProtoV3RefusesGobOnlyServer(t *testing.T) {
	f := field.Prime{}
	srv, err := NewDeviceServerOptions[uint64](f, "127.0.0.1:0", Options{Proto: ProtoGob})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := Client[uint64]{F: f, Timeout: 2 * time.Second, Proto: ProtoV3, Pool: NewPool[uint64]()}
	if err := client.Ping(t.Context(), srv.Addr()); err == nil {
		t.Fatal("ProtoV3 client succeeded against a gob-only server")
	}
}

// diffProtocols runs the full pipeline (distribute, MulVec, MulMat) over
// both wire protocols against the same fleet and requires bit-identical
// results: the zero-copy binary codec must not change a single element for
// any field.
func diffProtocols[E comparable](t *testing.T, f field.Field[E]) {
	rng := testRNG()
	const m, l, r = 8, 5, 4
	s, err := coding.New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[E](f, rng, m, l)
	enc, err := coding.Encode[E](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startFleet[E](t, f, s.Devices())

	protos := []Proto{ProtoGob, ProtoV3}
	vecs := make([][]E, len(protos))
	mats := make([]*matrix.Dense[E], len(protos))
	x := matrix.RandomVec[E](f, rng, l)
	xm := matrix.Random[E](f, rng, l, 3)
	for i, proto := range protos {
		pool := NewPool[E]()
		cloud := Cloud[E]{Timeout: 2 * time.Second, Proto: proto, Pool: pool}
		if err := cloud.Distribute(t.Context(), addrs, enc); err != nil {
			t.Fatalf("%v distribute: %v", proto, err)
		}
		client := Client[E]{F: f, Code: coding.BindScheme(f, s), Timeout: 2 * time.Second, Proto: proto, Pool: pool}
		if vecs[i], err = client.MulVec(t.Context(), addrs, x); err != nil {
			t.Fatalf("%v MulVec: %v", proto, err)
		}
		if mats[i], err = client.MulMat(t.Context(), addrs, xm); err != nil {
			t.Fatalf("%v MulMat: %v", proto, err)
		}
	}
	for i := range vecs[0] {
		if vecs[0][i] != vecs[1][i] {
			t.Fatalf("MulVec[%d]: gob %v != v3 %v", i, vecs[0][i], vecs[1][i])
		}
	}
	if mats[0].Rows() != mats[1].Rows() || mats[0].Cols() != mats[1].Cols() {
		t.Fatalf("MulMat shape: gob %dx%d != v3 %dx%d", mats[0].Rows(), mats[0].Cols(), mats[1].Rows(), mats[1].Cols())
	}
	for i := 0; i < mats[0].Rows(); i++ {
		for j := 0; j < mats[0].Cols(); j++ {
			if mats[0].At(i, j) != mats[1].At(i, j) {
				t.Fatalf("MulMat[%d,%d]: gob %v != v3 %v", i, j, mats[0].At(i, j), mats[1].At(i, j))
			}
		}
	}
}

// TestProtocolsBitIdentical covers all three concrete element types; the
// comparisons are exact (==), not tolerance-based, pinning that the two
// protocols move identical bits end to end.
func TestProtocolsBitIdentical(t *testing.T) {
	t.Run("prime", func(t *testing.T) { diffProtocols[uint64](t, field.Prime{}) })
	t.Run("gf256", func(t *testing.T) { diffProtocols[byte](t, field.GF256{}) })
	t.Run("real", func(t *testing.T) { diffProtocols[float64](t, field.Real{Tol: 1e-9}) })
}

// TestV3RemoteErrorStrings pins that validation failures arrive with the
// same error text over v3 as over gob (shared validation cores).
func TestV3RemoteErrorStrings(t *testing.T) {
	f := field.Prime{}
	srv, err := NewDeviceServer[uint64](f, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	gobC := Client[uint64]{F: f, Timeout: 2 * time.Second, Proto: ProtoGob, Pool: NewPool[uint64]()}
	v3C := Client[uint64]{F: f, Timeout: 2 * time.Second, Proto: ProtoV3, Pool: NewPool[uint64]()}
	_, gobErr := gobC.Compute(t.Context(), srv.Addr(), []uint64{1})
	_, v3Err := v3C.Compute(t.Context(), srv.Addr(), []uint64{1})
	if gobErr == nil || v3Err == nil {
		t.Fatalf("compute before store: gob=%v v3=%v, want remote errors", gobErr, v3Err)
	}
	if gobErr.Error() != v3Err.Error() {
		t.Fatalf("error text diverges:\n  gob: %s\n  v3:  %s", gobErr, v3Err)
	}
}

// TestV3ElementCap: an over-cap store over v3 must fail with the same
// message as gob and leave the connection healthy for the next request.
func TestV3ElementCap(t *testing.T) {
	f := field.Prime{}
	srv, err := NewDeviceServerLimited[uint64](f, "127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pool := NewPool[uint64]()
	cloud := Cloud[uint64]{Timeout: 2 * time.Second, Proto: ProtoV3, Pool: pool}
	big := matrix.FromSlice(3, 2, make([]uint64, 6))
	err = cloud.Store(t.Context(), srv.Addr(), big)
	if err == nil {
		t.Fatal("over-cap store succeeded")
	}
	want := "store: block of 6 elements exceeds the device cap of 4"
	if got := err.Error(); !strings.Contains(got, want) {
		t.Fatalf("err %q does not contain %q", got, want)
	}
	// The connection survived the drained over-cap payload.
	small := matrix.FromSlice(2, 2, []uint64{1, 2, 3, 4})
	if err := cloud.Store(t.Context(), srv.Addr(), small); err != nil {
		t.Fatalf("in-cap store after over-cap failure: %v", err)
	}
	if got := srv.StoredRows(); got != 2 {
		t.Fatalf("stored rows = %d, want 2", got)
	}
}

// TestV3TracedExchange: spans must ride the v3 response trailer exactly as
// they ride the gob envelope.
func TestV3TracedExchange(t *testing.T) {
	f := field.Prime{}
	devTr := trace.New(trace.Options{Service: "device"})
	srv, err := NewDeviceServerOptions[uint64](f, "127.0.0.1:0", Options{Tracer: devTr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pool := NewPool[uint64]()
	cloud := Cloud[uint64]{Timeout: 2 * time.Second, Proto: ProtoV3, Pool: pool}
	if err := cloud.Store(t.Context(), srv.Addr(), matrix.FromSlice(1, 2, []uint64{1, 1})); err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{Service: "user"})
	ctx, root := tr.StartRoot(context.Background(), "query")
	client := Client[uint64]{F: f, Timeout: 2 * time.Second, Proto: ProtoV3, Pool: pool}
	if _, err := client.Compute(ctx, srv.Addr(), []uint64{4, 9}); err != nil {
		t.Fatal(err)
	}
	root.End()
	names := map[string]int{}
	for _, sd := range tr.Snapshot() {
		names[sd.Name]++
	}
	if names[trace.SpanRPCServer] != 1 || names[trace.SpanDeviceCompute] != 1 {
		t.Fatalf("v3 exchange did not adopt device spans: %v", names)
	}
}
