package transport

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"github.com/scec/scec/internal/obs"
)

// wireWriterBuf sizes the outbound frame buffer; writes larger than the
// buffer pass straight through to the socket, so large slabs are not
// double-buffered.
const wireWriterBuf = 64 << 10

// flushBuckets are the MetricTransportFlushFrames histogram buckets:
// powers of two covering one frame (idle) through deep group commits.
var flushBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// wireWriter serializes v3 frames onto one connection with group-commit
// flushing: each writer appends its frame to a shared buffer under the
// lock and kicks the flusher goroutine, which pushes everything pending in
// one syscall. A lone writer gets its frame flushed immediately; under
// concurrent streams, frames that arrive while a flush syscall is in
// progress batch into the next one — gofast-style batched transmission
// without a latency-adding timer.
type wireWriter struct {
	conn    net.Conn
	timeout time.Duration
	hist    *obs.Histogram // flush batch sizes; may be nil

	kick chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	bw      *bufio.Writer
	pending int
	err     error
	closed  bool
}

func newWireWriter(conn net.Conn, timeout time.Duration, hist *obs.Histogram) *wireWriter {
	w := &wireWriter{
		conn:    conn,
		timeout: timeout,
		hist:    hist,
		kick:    make(chan struct{}, 1),
		bw:      bufio.NewWriterSize(conn, wireWriterBuf),
	}
	w.wg.Add(1)
	go w.flushLoop()
	return w
}

// writeFrame appends one frame via fn (which must write exactly one whole
// frame to the buffered writer) and schedules a flush. Any write error is
// sticky: the connection is unusable once framing may be torn.
func (w *wireWriter) writeFrame(fn func(*bufio.Writer) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errConnBroken
	}
	if err := fn(w.bw); err != nil {
		w.err = err
		return err
	}
	w.pending++
	select {
	case w.kick <- struct{}{}:
	default:
	}
	return nil
}

func (w *wireWriter) flushLoop() {
	defer w.wg.Done()
	for range w.kick {
		w.mu.Lock()
		n := w.pending
		if n == 0 || w.err != nil {
			w.mu.Unlock()
			continue
		}
		w.pending = 0
		_ = w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
		if err := w.bw.Flush(); err != nil {
			w.err = err
		}
		w.mu.Unlock()
		if w.hist != nil {
			w.hist.Observe(float64(n))
		}
	}
}

// close stops the flusher. It does not close the connection (the caller
// owns it) but marks the writer unusable.
func (w *wireWriter) close() {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		close(w.kick)
	}
	w.mu.Unlock()
	w.wg.Wait()
}

// tuneConn applies the socket options both roles want on every
// connection: TCP_NODELAY so small frames are not Nagle-delayed (the
// write batcher already coalesces), and keep-alive so half-dead peers are
// eventually detected at the TCP layer too.
func tuneConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
		_ = tc.SetKeepAlive(true)
		_ = tc.SetKeepAlivePeriod(30 * time.Second)
	}
}

// peerClosed reports whether err is the signature of the far side closing
// or resetting the connection — how a gob-only server reacts to a v3
// hello (its decoder fails on the 0x00 magic byte and the handler closes).
// Timeouts and dial failures are deliberately excluded: a dead or
// black-holed device should surface its real error, not a misleading
// gob fallback attempt doubling the latency.
func peerClosed(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}
