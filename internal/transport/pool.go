package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/flight"
	"github.com/scec/scec/internal/obs/trace"
)

// Pool defaults.
const (
	// DefaultLegacyTTL is how long a device that failed v3 negotiation is
	// remembered as gob-only before auto-protocol clients re-probe it.
	DefaultLegacyTTL = 10 * time.Second
	// DefaultHeartbeatEvery is the idle interval after which a pooled v3
	// connection sends a piggybacked heartbeat ping. It is well under the
	// device's default request timeout, so idle pooled connections stay
	// alive, and under the fleet's probe interval, so the prober can trust
	// LastContact instead of dialing its own pings.
	DefaultHeartbeatEvery = time.Second
	// maxIdleGobConns caps the per-device freelist of legacy connections.
	maxIdleGobConns = 4
)

// Pool owns the persistent client-side connections to a set of devices:
// one multiplexed v3 connection per address (shared by every in-flight
// request), or a small freelist of legacy gob connections for peers that
// only speak the old protocol. Clients share the per-element-type package
// pool by default; tests that need connection isolation set Client.Pool.
type Pool[E comparable] struct {
	legacyTTL time.Duration
	heartbeat time.Duration

	mu      sync.Mutex
	entries map[string]*poolEntry[E]
}

// NewPool returns an empty pool with default tuning.
func NewPool[E comparable]() *Pool[E] {
	return &Pool[E]{
		legacyTTL: DefaultLegacyTTL,
		heartbeat: DefaultHeartbeatEvery,
		entries:   make(map[string]*poolEntry[E]),
	}
}

var (
	sharedPoolMu sync.Mutex
	sharedPools  = map[any]any{} // zero E → *Pool[E]
)

// SharedPool returns the process-wide pool for element type E. All
// default-configured clients and clouds share it, so one device gets one
// v3 connection no matter how many Client values talk to it.
func SharedPool[E comparable]() *Pool[E] {
	var z E
	sharedPoolMu.Lock()
	defer sharedPoolMu.Unlock()
	if p, ok := sharedPools[any(z)].(*Pool[E]); ok {
		return p
	}
	p := NewPool[E]()
	sharedPools[any(z)] = p
	return p
}

type poolEntry[E comparable] struct {
	mu          sync.Mutex
	connecting  chan struct{} // non-nil while one caller negotiates
	mux         *muxConn[E]
	legacyUntil time.Time
	free        []*gobConn
}

func (p *Pool[E]) entry(addr string) *poolEntry[E] {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[addr]
	if e == nil {
		e = &poolEntry[E]{}
		p.entries[addr] = e
	}
	return e
}

// LastContact reports when addr was last heard from on a live multiplexed
// connection (a response or heartbeat frame). The fleet prober treats a
// recent LastContact as a successful health check and skips its ping.
func (p *Pool[E]) LastContact(addr string) (time.Time, bool) {
	e := p.entry(addr)
	e.mu.Lock()
	m := e.mux
	e.mu.Unlock()
	if m == nil {
		return time.Time{}, false
	}
	t := m.lastIn.Load()
	if t == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, t), true
}

// LastRTT reports the most recent round-trip time measured on addr's live
// multiplexed connection: the negotiation handshake at dial, refreshed by
// every timed idle heartbeat. It is the estimator's cheap per-device
// network-health signal — no extra RPCs are spent on it.
func (p *Pool[E]) LastRTT(addr string) (time.Duration, bool) {
	e := p.entry(addr)
	e.mu.Lock()
	m := e.mux
	e.mu.Unlock()
	if m == nil {
		return 0, false
	}
	rtt := m.rtt.Load()
	if rtt == 0 {
		return 0, false
	}
	return time.Duration(rtt), true
}

// ConnDebug is a point-in-time snapshot of the pool's state toward one
// device, surfaced through /debug/fleet.
type ConnDebug struct {
	// Proto is the wire protocol of the live connection(s): "v3", "gob",
	// or "" when nothing is pooled.
	Proto string `json:"proto,omitempty"`
	// InFlight counts v3 streams currently awaiting a response.
	InFlight int `json:"in_flight,omitempty"`
	// IdleConns counts pooled idle legacy connections.
	IdleConns int `json:"idle_conns,omitempty"`
	// LastContact is when the device was last heard from over v3.
	LastContact time.Time `json:"last_contact,omitzero"`
	// RTT is the last measured round trip on the v3 connection (handshake
	// or timed heartbeat); zero when nothing has been measured.
	RTT time.Duration `json:"rtt_ns,omitempty"`
}

// Debug snapshots the pool state for addr.
func (p *Pool[E]) Debug(addr string) ConnDebug {
	e := p.entry(addr)
	e.mu.Lock()
	defer e.mu.Unlock()
	d := ConnDebug{IdleConns: len(e.free)}
	if e.mux != nil {
		d.Proto = "v3"
		e.mux.mu.Lock()
		d.InFlight = len(e.mux.streams)
		e.mux.mu.Unlock()
		if t := e.mux.lastIn.Load(); t != 0 {
			d.LastContact = time.Unix(0, t)
		}
		d.RTT = time.Duration(e.mux.rtt.Load())
	} else if len(e.free) > 0 || time.Now().Before(e.legacyUntil) {
		d.Proto = "gob"
	}
	return d
}

// roundTrip is the pooled counterpart of the package-level roundTrip: it
// routes one request over the negotiated protocol, multiplexing v3
// requests onto the device's persistent connection and reusing pooled
// gob connections otherwise, with the same tracing, metrics, deadline,
// and cancellation semantics.
func (p *Pool[E]) roundTrip(ctx context.Context, addr string, timeout time.Duration, reg *obs.Registry, proto Proto, req request[E]) (resp response[E], err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	reg = metricsOrDefault(reg)
	req.V = FrameV2
	var finish func(response[E], error)
	ctx, finish = startClientSpan(ctx, addr, &req)
	defer func() { finish(resp, err) }()
	start := time.Now()
	var sent, recv int64
	defer func() {
		recordClient(reg, req.Kind, time.Since(start), sent, recv, err)
	}()

	cod, codOK := codecFor[E]()
	_ = cod
	useV3 := codOK && proto != ProtoGob
	if !codOK && proto == ProtoV3 {
		return resp, fmt.Errorf("transport: element type %T has no v3 wire codec", *new(E))
	}
	if useV3 && proto == ProtoAuto && p.legacyFresh(addr) {
		useV3 = false
	}
	if useV3 {
		for attempt := 0; ; attempt++ {
			m, fresh, gerr := p.getMux(ctx, addr, timeout, reg)
			if gerr != nil {
				if errors.Is(gerr, errLegacyPeer) && proto == ProtoAuto {
					useV3 = false
					break // transparent gob fallback
				}
				return resp, gerr
			}
			r, s, rc, derr := m.do(ctx, timeout, &req)
			sent, recv = sent+s, recv+rc
			if derr != nil && errors.Is(derr, errConnBroken) && !fresh && attempt == 0 && ctx.Err() == nil {
				// The reused connection died under this request (device
				// restart, idle cut): all protocol requests are
				// idempotent, so retry once on a fresh connection.
				continue
			}
			return r, derr
		}
	}
	r, s, rc, gerr := p.gobExchange(ctx, addr, timeout, &req)
	sent, recv = sent+s, recv+rc
	return r, gerr
}

func (p *Pool[E]) legacyFresh(addr string) bool {
	e := p.entry(addr)
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Now().Before(e.legacyUntil)
}

// getMux returns the live multiplexed connection for addr, negotiating a
// new one (single-flight across concurrent callers) when none exists.
// fresh reports that this call dialed the connection itself.
func (p *Pool[E]) getMux(ctx context.Context, addr string, timeout time.Duration, reg *obs.Registry) (m *muxConn[E], fresh bool, err error) {
	e := p.entry(addr)
	for {
		e.mu.Lock()
		if m := e.mux; m != nil {
			if m.alive() {
				e.mu.Unlock()
				return m, false, nil
			}
			// A corpse whose teardown has not yet detached it: never hand
			// it out (a request would burn its retry on a known-dead
			// connection); dial fresh instead.
			e.mux = nil
		}
		if time.Now().Before(e.legacyUntil) {
			e.mu.Unlock()
			return nil, false, fmt.Errorf("%w (recently negotiated)", errLegacyPeer)
		}
		if e.connecting == nil {
			ch := make(chan struct{})
			e.connecting = ch
			e.mu.Unlock()
			m, err := p.dialMux(ctx, addr, timeout, reg)
			e.mu.Lock()
			e.connecting = nil
			if err == nil {
				e.mux = m
			} else if errors.Is(err, errLegacyPeer) {
				e.legacyUntil = time.Now().Add(p.legacyTTL)
			}
			close(ch)
			e.mu.Unlock()
			return m, true, err
		}
		ch := e.connecting
		e.mu.Unlock()
		select {
		case <-ch:
			// Re-check: the negotiator installed a connection, marked the
			// peer legacy, or failed (in which case we dial ourselves).
		case <-ctx.Done():
			return nil, false, ctxErr(ctx, fmt.Errorf("transport: dial %s: %w", addr, ctx.Err()))
		}
	}
}

// dialMux dials addr and performs the v3 handshake. Negotiation failures
// where the peer closed on our hello classify as errLegacyPeer; timeouts
// and refusals surface as themselves so dead devices are not retried over
// gob (doubling the failure latency).
func (p *Pool[E]) dialMux(ctx context.Context, addr string, timeout time.Duration, reg *obs.Registry) (*muxConn[E], error) {
	cod, _ := codecFor[E]()
	dialer := net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, ctxErr(ctx, fmt.Errorf("transport: dial %s: %w", addr, err))
	}
	tuneConn(conn)
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(time.Now())
		case <-watchDone:
		}
	}()
	outcome := "error"
	defer func() {
		reg.Counter(obs.MetricTransportNegotiations, "v3 protocol negotiations, by outcome (legacy = gob-only peer, fallback engaged).", obs.L("outcome", outcome)).Inc()
		kind := flight.KindNegotiateError
		switch outcome {
		case "v3":
			kind = flight.KindNegotiateV3
		case "legacy":
			kind = flight.KindNegotiateLegacy
		}
		flight.Default().Publish(kind, addr, 0, 0)
	}()
	h := clientHello(cod.code)
	helloStart := time.Now()
	if _, err := conn.Write(h[:]); err != nil {
		_ = conn.Close()
		if peerClosed(err) {
			outcome = "legacy"
			return nil, fmt.Errorf("%w (%v)", errLegacyPeer, err)
		}
		return nil, ctxErr(ctx, fmt.Errorf("transport: send to %s: %w", addr, err))
	}
	br := bufio.NewReaderSize(conn, wireWriterBuf)
	if err := readServerHello(br, cod.code); err != nil {
		_ = conn.Close()
		if errors.Is(err, errLegacyPeer) {
			outcome = "legacy"
			return nil, err
		}
		return nil, ctxErr(ctx, fmt.Errorf("transport: negotiate with %s: %w", addr, err))
	}
	_ = conn.SetDeadline(time.Time{})
	outcome = "v3"
	m := &muxConn[E]{
		pool:    p,
		addr:    addr,
		cod:     cod,
		conn:    conn,
		timeout: timeout,
		streams: make(map[uint32]chan *wireResponse[E]),
		done:    make(chan struct{}),
	}
	role := obs.L("role", "client")
	dev := obs.L("device", addr)
	m.conns = reg.Gauge(obs.MetricTransportConnsOpen, connsHelp, role, obs.L("proto", "v3"), dev)
	m.inflight = reg.Gauge(obs.MetricTransportStreamsInflight, streamsHelp, role, dev)
	m.hbCounterOK = reg.Counter(obs.MetricTransportHeartbeats, heartbeatHelp, obs.L("outcome", "ok"))
	m.hbCounterFail = reg.Counter(obs.MetricTransportHeartbeats, heartbeatHelp, obs.L("outcome", "failed"))
	m.w = newWireWriter(conn, timeout, reg.Histogram(obs.MetricTransportFlushFrames, flushHelp, flushBuckets, role))
	m.lastIn.Store(time.Now().UnixNano()) // the hello counts as contact
	m.rtt.Store(int64(time.Since(helloStart)))
	m.conns.Add(1)
	m.wg.Add(2)
	go m.readLoop(br)
	go m.heartbeatLoop(p.heartbeat)
	return m, nil
}

const heartbeatHelp = "Piggybacked heartbeat pings on idle multiplexed connections, by outcome."

// muxConn is one live multiplexed v3 connection: many in-flight requests
// share it, matched to responses by stream ID.
type muxConn[E comparable] struct {
	pool    *Pool[E]
	addr    string
	cod     elemCodec
	conn    net.Conn
	w       *wireWriter
	timeout time.Duration

	conns         *obs.Gauge
	inflight      *obs.Gauge
	hbCounterOK   *obs.Counter
	hbCounterFail *obs.Counter

	mu      sync.Mutex
	streams map[uint32]chan *wireResponse[E]
	nextID  uint32
	closed  bool

	lastIn  atomic.Int64 // unixnano of the last inbound frame
	lastOut atomic.Int64 // unixnano of the last outbound frame
	rtt     atomic.Int64 // last measured round-trip time, nanoseconds
	done    chan struct{}
	wg      sync.WaitGroup
}

func (m *muxConn[E]) alive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.closed
}

func (m *muxConn[E]) readLoop(br *bufio.Reader) {
	defer m.wg.Done()
	for {
		stream, wr, err := readResponseFrame[E](br, m.cod)
		if err != nil {
			m.teardown()
			return
		}
		m.lastIn.Store(time.Now().UnixNano())
		m.mu.Lock()
		ch := m.streams[stream]
		delete(m.streams, stream)
		m.mu.Unlock()
		if ch != nil {
			ch <- wr // buffered; never blocks
		}
	}
}

// teardown closes the connection and detaches it from the pool; waiters
// observe done and fail with errConnBroken. Idempotent.
func (m *muxConn[E]) teardown() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.done)
	_ = m.conn.Close()
	m.w.close()
	m.conns.Add(-1)
	e := m.pool.entry(m.addr)
	e.mu.Lock()
	if e.mux == m {
		e.mux = nil
	}
	e.mu.Unlock()
}

// do issues one request on its own stream and waits for the matching
// response, bounded by ctx and timeout.
func (m *muxConn[E]) do(ctx context.Context, timeout time.Duration, req *request[E]) (resp response[E], sent, recv int64, err error) {
	ch := make(chan *wireResponse[E], 1)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return resp, 0, 0, fmt.Errorf("%w: send to %s", errConnBroken, m.addr)
	}
	m.nextID++
	if m.nextID == 0 {
		m.nextID = 1
	}
	id := m.nextID
	m.streams[id] = ch
	m.mu.Unlock()
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	unregister := func() {
		m.mu.Lock()
		delete(m.streams, id)
		m.mu.Unlock()
	}
	sent, werr := writeRequestFrame(m.w, m.cod, id, req)
	if werr != nil {
		unregister()
		m.teardown()
		return resp, 0, 0, fmt.Errorf("%w: send to %s: %v", errConnBroken, m.addr, werr)
	}
	m.lastOut.Store(time.Now().UnixNano())
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case wr := <-ch:
		resp, err = m.finish(wr)
		return resp, sent, wr.size, err
	case <-m.done:
		// Prefer a response that raced the teardown.
		select {
		case wr := <-ch:
			resp, err = m.finish(wr)
			return resp, sent, wr.size, err
		default:
		}
		return resp, sent, 0, fmt.Errorf("%w: receive from %s", errConnBroken, m.addr)
	case <-ctx.Done():
		unregister()
		return resp, sent, 0, ctxErr(ctx, fmt.Errorf("transport: receive from %s: %w", m.addr, ctx.Err()))
	case <-timer.C:
		unregister()
		return resp, sent, 0, fmt.Errorf("transport: receive from %s: %w", m.addr, os.ErrDeadlineExceeded)
	}
}

// finish converts a decoded wire response into the internal envelope,
// preserving the device's re-emitted spans on both outcomes (so failed
// requests still stitch their server side into the trace).
func (m *muxConn[E]) finish(wr *wireResponse[E]) (response[E], error) {
	if wr.errMsg != "" {
		return response[E]{Spans: wr.spans}, fmt.Errorf("%w: %s: %s", ErrRemote, m.addr, wr.errMsg)
	}
	resp := response[E]{V: FrameV2, Spans: wr.spans, Y: wr.y, yMat: wr.yMat}
	if wr.yMat != nil {
		rows := make([][]E, wr.yMat.Rows())
		for i := range rows {
			rows[i] = wr.yMat.RowView(i)
		}
		resp.YMat = rows
	}
	return resp, nil
}

// heartbeatLoop pings the device whenever the connection has been idle
// for a full interval, keeping the server's idle deadline from cutting
// the pooled connection and feeding LastContact for the fleet's breaker
// prober. Each heartbeat is timed end to end and refreshes the
// connection's round-trip estimate (LastRTT), giving cost estimators a
// free per-device network signal. A failed heartbeat tears the connection
// down: the next request redials rather than discovering the corpse
// itself.
func (m *muxConn[E]) heartbeatLoop(every time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-t.C:
			last := m.lastIn.Load()
			if out := m.lastOut.Load(); out > last {
				last = out
			}
			if time.Since(time.Unix(0, last)) < every {
				continue
			}
			req := request[E]{V: FrameV2, Kind: kindPing}
			sentAt := time.Now()
			_, _, _, err := m.do(context.Background(), m.timeout, &req)
			if err != nil {
				m.hbCounterFail.Inc()
				m.teardown()
				return
			}
			m.rtt.Store(int64(time.Since(sentAt)))
			m.hbCounterOK.Inc()
		}
	}
}

// startClientSpan opens the rpc.client span when the caller is tracing,
// injecting its traceparent into the request. The returned finish must be
// called exactly once with the outcome; it adopts the device's re-emitted
// spans into this trace.
func startClientSpan[E comparable](ctx context.Context, addr string, req *request[E]) (context.Context, func(response[E], error)) {
	parent := trace.SpanFromContext(ctx)
	if parent == nil {
		return ctx, func(response[E], error) {}
	}
	tracer := parent.Tracer()
	ctx, rsp := tracer.StartSpan(ctx, trace.SpanRPCClient,
		trace.A(trace.AttrKind, req.Kind), trace.A(trace.AttrDevice, addr))
	req.Traceparent = rsp.Traceparent()
	return ctx, func(resp response[E], err error) {
		if err != nil {
			rsp.SetError(err)
		}
		rsp.End()
		for _, sd := range resp.Spans {
			tracer.Record(sd)
		}
	}
}

// gobConn is one pooled legacy connection with its persistent gob codec
// state (the stream's type descriptors transmit once per connection, not
// once per request).
type gobConn struct {
	conn net.Conn
	cc   *countingConn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func (g *gobConn) close() { _ = g.conn.Close() }

// getGob returns an idle pooled legacy connection or dials a new one.
func (p *Pool[E]) getGob(ctx context.Context, addr string, timeout time.Duration) (g *gobConn, fromPool bool, err error) {
	e := p.entry(addr)
	e.mu.Lock()
	if n := len(e.free); n > 0 {
		g = e.free[n-1]
		e.free = e.free[:n-1]
		e.mu.Unlock()
		return g, true, nil
	}
	e.mu.Unlock()
	dialer := net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, false, ctxErr(ctx, fmt.Errorf("transport: dial %s: %w", addr, err))
	}
	tuneConn(conn)
	cc := &countingConn{Conn: conn}
	return &gobConn{conn: conn, cc: cc, enc: gob.NewEncoder(cc), dec: gob.NewDecoder(cc)}, false, nil
}

// putGob returns a healthy connection to the freelist.
func (p *Pool[E]) putGob(addr string, g *gobConn) {
	e := p.entry(addr)
	e.mu.Lock()
	if len(e.free) < maxIdleGobConns {
		e.free = append(e.free, g)
		g = nil
	}
	e.mu.Unlock()
	if g != nil {
		g.close()
	}
}

// gobExchange performs one legacy round trip over a pooled connection. A
// transport failure on a reused connection (the server may have cut it
// while idle) retries once on a freshly dialed one.
func (p *Pool[E]) gobExchange(ctx context.Context, addr string, timeout time.Duration, req *request[E]) (resp response[E], sent, recv int64, err error) {
	for attempt := 0; attempt < 2; attempt++ {
		g, fromPool, derr := p.getGob(ctx, addr, timeout)
		if derr != nil {
			return resp, sent, recv, derr
		}
		var r response[E]
		s, rc, xerr := gobDo(ctx, g, addr, timeout, req, &r)
		sent, recv = sent+s, recv+rc
		if xerr == nil {
			p.putGob(addr, g)
			if r.Err != "" {
				return response[E]{Spans: r.Spans}, sent, recv, fmt.Errorf("%w: %s: %s", ErrRemote, addr, r.Err)
			}
			return r, sent, recv, nil
		}
		g.close()
		if fromPool && attempt == 0 && ctx.Err() == nil {
			continue // stale pooled connection: retry on a fresh dial
		}
		return resp, sent, recv, xerr
	}
	return resp, sent, recv, err // unreachable
}

// gobDo runs one request/response exchange on g with the deadline and
// cancellation semantics of the one-shot roundTrip.
func gobDo[E comparable](ctx context.Context, g *gobConn, addr string, timeout time.Duration, req *request[E], resp *response[E]) (sent, recv int64, err error) {
	r0, w0 := g.cc.read, g.cc.written
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := g.conn.SetDeadline(deadline); err != nil {
		return 0, 0, fmt.Errorf("transport: deadline %s: %w", addr, err)
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			_ = g.conn.SetDeadline(time.Now())
		case <-watchDone:
		}
	}()
	if err := g.enc.Encode(req); err != nil {
		return g.cc.written - w0, g.cc.read - r0, ctxErr(ctx, fmt.Errorf("transport: send to %s: %w", addr, err))
	}
	if err := g.dec.Decode(resp); err != nil {
		return g.cc.written - w0, g.cc.read - r0, ctxErr(ctx, fmt.Errorf("transport: receive from %s: %w", addr, err))
	}
	return g.cc.written - w0, g.cc.read - r0, nil
}
