package transport

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
)

// snapshotValue sums a family's series values (counter/gauge) or counts
// (histogram) in a snapshot; -1 means the family is absent.
func snapshotValue(snap obs.Snapshot, name string) float64 {
	for _, fam := range snap.Metrics {
		var total float64
		for _, s := range fam.Series {
			if fam.Type == "histogram" {
				total += float64(s.Count)
			} else {
				total += s.Value
			}
		}
		if fam.Name == name {
			return total
		}
	}
	return -1
}

// TestMetricsWired provisions a two-sided exchange on an isolated registry
// and asserts every wired client/server metric moved.
func TestMetricsWired(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	reg := obs.New()
	const m, l, r = 10, 6, 5

	s, err := coding.New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, m, l)
	enc, err := coding.Encode[uint64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}

	addrs := make([]string, s.Devices())
	for j := range addrs {
		srv, err := NewDeviceServerOptions(f, "127.0.0.1:0", Options{Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		addrs[j] = srv.Addr()
	}
	if err := (Cloud[uint64]{Metrics: reg}).Distribute(t.Context(), addrs, enc); err != nil {
		t.Fatal(err)
	}
	client := Client[uint64]{F: f, Code: coding.BindScheme(f, s), Metrics: reg}
	x := matrix.RandomVec[uint64](f, rng, l)
	if _, err := client.MulVec(t.Context(), addrs, x); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	devices := float64(s.Devices())
	for name, min := range map[string]float64{
		obs.MetricRPCClientRequests: 2 * devices, // store + compute per device
		obs.MetricRPCClientSeconds:  2 * devices,
		obs.MetricRPCClientSent:     1,
		obs.MetricRPCClientReceived: 1,
		obs.MetricRPCServerRequests: 2 * devices,
		obs.MetricRPCServerSeconds:  2 * devices,
		obs.MetricRPCServerRead:     1,
		obs.MetricRPCServerWritten:  1,
	} {
		if got := snapshotValue(snap, name); got < min {
			t.Errorf("%s = %g, want >= %g", name, got, min)
		}
	}
	if got := snapshotValue(snap, obs.MetricRPCClientErrors); got > 0 {
		t.Errorf("%s = %g on a clean run, want 0", obs.MetricRPCClientErrors, got)
	}
	// Stage spans: store (cloud), compute (per device), gather + decode
	// (client) must all have fired on this registry.
	stageCounts := map[string]int64{}
	for _, fam := range snap.Metrics {
		if fam.Name != obs.MetricStageSeconds {
			continue
		}
		for _, s := range fam.Series {
			stageCounts[s.Labels["stage"]] += s.Count
		}
	}
	for _, stage := range []string{obs.StageStore, obs.StageCompute, obs.StageGather, obs.StageDecode} {
		if stageCounts[stage] == 0 {
			t.Errorf("stage %q never observed; got %v", stage, stageCounts)
		}
	}
}

// TestRemoteErrorPropagation drives the full client path against a device
// that has no stored block: the remote failure must surface as ErrRemote
// and increment both error counters.
func TestRemoteErrorPropagation(t *testing.T) {
	f := field.Prime{}
	reg := obs.New()
	srv, err := NewDeviceServerOptions(f, "127.0.0.1:0", Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	s, err := coding.New(4, 4) // 2 devices
	if err != nil {
		t.Fatal(err)
	}
	client := Client[uint64]{F: f, Code: coding.BindScheme(f, s), Metrics: reg}
	_, err = client.MulVec(t.Context(), []string{srv.Addr(), srv.Addr()}, []uint64{1, 2, 3})
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("MulVec against an unprovisioned device: err = %v, want ErrRemote", err)
	}
	snap := reg.Snapshot()
	if got := snapshotValue(snap, obs.MetricRPCClientErrors); got < 1 {
		t.Errorf("%s = %g, want >= 1", obs.MetricRPCClientErrors, got)
	}
	if got := snapshotValue(snap, obs.MetricRPCServerErrors); got < 1 {
		t.Errorf("%s = %g, want >= 1", obs.MetricRPCServerErrors, got)
	}
}

// TestClientTimeoutOnHangingDevice points the client at a listener that
// accepts connections and then never answers: the configured timeout must
// bound the round trip and be reported as an error.
func TestClientTimeoutOnHangingDevice(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Hold the connection open without reading or writing; the
			// client's deadline has to fire.
			defer conn.Close()
		}
	}()

	reg := obs.New()
	const timeout = 150 * time.Millisecond
	start := time.Now()
	_, err = roundTrip(t.Context(), ln.Addr().String(), timeout, reg, request[uint64]{Kind: kindPing})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("round trip against a hanging device succeeded, want timeout error")
	}
	if elapsed < timeout/2 || elapsed > 20*timeout {
		t.Fatalf("timeout fired after %v, want ≈%v", elapsed, timeout)
	}
	if got := snapshotValue(reg.Snapshot(), obs.MetricRPCClientErrors); got != 1 {
		t.Errorf("%s = %g, want 1", obs.MetricRPCClientErrors, got)
	}
}

// TestDeviceServerTimeoutOption verifies the server-side Timeout option: a
// client that connects and sends nothing is cut off at the deadline.
func TestDeviceServerTimeoutOption(t *testing.T) {
	f := field.Prime{}
	const timeout = 100 * time.Millisecond
	srv, err := NewDeviceServerOptions(f, "127.0.0.1:0", Options{Timeout: timeout, Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	_ = conn.SetReadDeadline(time.Now().Add(20 * timeout))
	// The server's deadline fires and it closes the connection, so the read
	// ends with EOF (or a reset) rather than our generous local deadline.
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read from an idle device connection succeeded, want server-side cutoff")
	} else if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatal("local read deadline fired first: server never cut the idle connection")
	}
	if elapsed := time.Since(start); elapsed < timeout/2 || elapsed > 15*timeout {
		t.Fatalf("server cut the idle connection after %v, want ≈%v", elapsed, timeout)
	}
}

// TestDeviceServerOptionsValidation pins the option defaults and errors.
func TestDeviceServerOptionsValidation(t *testing.T) {
	f := field.Prime{}
	if _, err := NewDeviceServerOptions(f, "127.0.0.1:0", Options{Timeout: -time.Second}); err == nil {
		t.Fatal("negative timeout accepted")
	}
	if _, err := NewDeviceServerOptions(f, "127.0.0.1:0", Options{MaxElements: -1}); err == nil {
		t.Fatal("negative element cap accepted")
	}
	srv, err := NewDeviceServerOptions(f, "127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if srv.timeout != DefaultTimeout || srv.maxElements != DefaultMaxElements {
		t.Fatalf("zero options resolved to timeout=%v cap=%d, want defaults", srv.timeout, srv.maxElements)
	}
}
