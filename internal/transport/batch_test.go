package transport

import (
	"errors"
	"testing"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

func TestMulMatEndToEnd(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	const m, l, r, n = 10, 6, 4, 3

	s, err := coding.New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, m, l)
	enc, err := coding.Encode[uint64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startFleet[uint64](t, f, s.Devices())
	if err := (Cloud[uint64]{}).Distribute(t.Context(), addrs, enc); err != nil {
		t.Fatal(err)
	}

	client := Client[uint64]{F: f, Code: coding.BindScheme(f, s)}
	x := matrix.Random[uint64](f, rng, l, n)
	got, err := client.MulMat(t.Context(), addrs, x)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul[uint64](f, a, x)
	if !matrix.Equal[uint64](f, got, want) {
		t.Fatal("TCP batch pipeline decoded the wrong result")
	}
}

func TestMulMatRemoteValidation(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	s, err := coding.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, 4, 5)
	enc, err := coding.Encode[uint64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startFleet[uint64](t, f, s.Devices())
	if err := (Cloud[uint64]{}).Distribute(t.Context(), addrs, enc); err != nil {
		t.Fatal(err)
	}
	client := Client[uint64]{F: f, Code: coding.BindScheme(f, s)}
	// Wrong X row count (needs l = 5 rows).
	if _, err := client.MulMat(t.Context(), addrs, matrix.New[uint64](3, 2)); !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	// Zero-column X.
	if _, err := client.MulMat(t.Context(), addrs, matrix.New[uint64](5, 0)); !errors.Is(err, ErrRemote) {
		t.Fatalf("zero-column err = %v, want ErrRemote", err)
	}
}

func TestMulMatBeforeStore(t *testing.T) {
	f := field.Prime{}
	s, err := coding.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startFleet[uint64](t, f, s.Devices())
	client := Client[uint64]{F: f, Code: coding.BindScheme(f, s)}
	if _, err := client.MulMat(t.Context(), addrs, matrix.New[uint64](5, 2)); !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
}

// TestGatherRawForCollusionScheme runs the collusion (Cauchy) scheme over
// TCP: the client gathers raw intermediate values with Gather and decodes
// with the scheme's own Gaussian decoder.
func TestGatherRawForCollusionScheme(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	const m, l, tColl, w = 9, 4, 2, 3

	rows, r, err := coding.UniformCollusionRows(m, tColl, w)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := coding.NewCollusion[uint64](f, m, r, tColl, rows)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, m, l)
	enc, err := cs.Encode(a, rng)
	if err != nil {
		t.Fatal(err)
	}

	addrs, _ := startFleet[uint64](t, f, cs.Devices())
	if err := (Cloud[uint64]{}).Distribute(t.Context(), addrs, enc); err != nil {
		t.Fatal(err)
	}

	client := Client[uint64]{F: f, Timeout: 2 * time.Second}
	x := matrix.RandomVec[uint64](f, rng, l)
	y, err := client.Gather(t.Context(), addrs, rows, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cs.Decode(y)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.MulVec[uint64](f, a, x)
	if !matrix.VecEqual[uint64](f, got, want) {
		t.Fatal("collusion scheme over TCP decoded the wrong result")
	}
}

func TestDeviceStats(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	s, err := coding.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, 4, 3)
	enc, err := coding.Encode[uint64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	addrs, servers := startFleet[uint64](t, f, s.Devices())
	if err := (Cloud[uint64]{}).Distribute(t.Context(), addrs, enc); err != nil {
		t.Fatal(err)
	}
	client := Client[uint64]{F: f, Code: coding.BindScheme(f, s)}
	x := matrix.RandomVec[uint64](f, rng, 3)
	if _, err := client.MulVec(t.Context(), addrs, x); err != nil {
		t.Fatal(err)
	}
	if _, err := client.MulMat(t.Context(), addrs, matrix.Random[uint64](f, rng, 3, 2)); err != nil {
		t.Fatal(err)
	}
	for j, srv := range servers {
		st := srv.Stats()
		if st.Stores != 1 || st.Computes != 1 || st.BatchComputes != 1 {
			t.Fatalf("device %d stats = %+v", j, st)
		}
		wantValues := s.RowsOn(j) + s.RowsOn(j)*2
		if st.ValuesReturned != wantValues {
			t.Fatalf("device %d returned %d values, want %d", j, st.ValuesReturned, wantValues)
		}
	}
}

func TestDeviceElementCap(t *testing.T) {
	f := field.Prime{}
	srv, err := NewDeviceServerLimited(f, "127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A 3×3 block (9 elements) exceeds the cap of 8.
	big := make([][]uint64, 3)
	for i := range big {
		big[i] = make([]uint64, 3)
	}
	if _, err := roundTrip[uint64](t.Context(), srv.Addr(), time.Second, nil, request[uint64]{Kind: kindStore, Block: big}); !errors.Is(err, ErrRemote) {
		t.Fatalf("oversized store err = %v, want ErrRemote", err)
	}
	// A 2×3 block (6 elements) fits.
	small := big[:2]
	if _, err := roundTrip[uint64](t.Context(), srv.Addr(), time.Second, nil, request[uint64]{Kind: kindStore, Block: small}); err != nil {
		t.Fatalf("in-cap store rejected: %v", err)
	}
	// An oversized batch request is rejected too.
	xm := make([][]uint64, 3)
	for i := range xm {
		xm[i] = make([]uint64, 4)
	}
	if _, err := roundTrip[uint64](t.Context(), srv.Addr(), time.Second, nil, request[uint64]{Kind: kindComputeBatch, XMat: xm}); !errors.Is(err, ErrRemote) {
		t.Fatalf("oversized batch err = %v, want ErrRemote", err)
	}

	if _, err := NewDeviceServerLimited(f, "127.0.0.1:0", 0); err == nil {
		t.Fatal("zero cap should be rejected")
	}
}

func TestGatherValidation(t *testing.T) {
	c := Client[uint64]{F: field.Prime{}}
	if _, err := c.Gather(t.Context(), []string{"127.0.0.1:1"}, []int{1, 2}, nil); err == nil {
		t.Fatal("addrs/rows length mismatch should error")
	}
}
