package transport

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
)

// FrameBench returns a closure measuring the pure v3 protocol overhead for
// a compute request carrying n uint64 elements: encode one frame into a
// reused in-memory buffer and decode it back, with no sockets, goroutines,
// or reflection involved. The bench harness runs it to pin the
// serialization floor under the loopback RTT numbers.
func FrameBench(n int) (func() error, error) {
	cod, ok := codecFor[uint64]()
	if !ok {
		return nil, fmt.Errorf("transport: no codec for uint64")
	}
	x := make([]uint64, n)
	for i := range x {
		x[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	req := request[uint64]{Kind: kindCompute, X: x}
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&buf, wireWriterBuf)
	br := bufio.NewReaderSize(&buf, wireWriterBuf)
	return func() error {
		buf.Reset()
		bw.Reset(&buf)
		if _, err := encodeRequestFrame(bw, cod, 1, &req); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		br.Reset(&buf)
		dec, err := readRequestFrame[uint64](br, cod, n)
		if err != nil {
			return err
		}
		if len(dec.x) != n {
			return fmt.Errorf("transport: frame bench decoded %d elements, want %d", len(dec.x), n)
		}
		return nil
	}, nil
}

// GobFrameBench is FrameBench's baseline twin: the same compute request
// through the legacy gob codec, with the encoder/decoder pair reused across
// calls exactly as the pooled legacy path reuses them.
func GobFrameBench(n int) (func() error, error) {
	x := make([]uint64, n)
	for i := range x {
		x[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	req := request[uint64]{V: FrameV2, Kind: kindCompute, X: x}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	return func() error {
		if err := enc.Encode(&req); err != nil {
			return err
		}
		var got request[uint64]
		got.X = nil
		if err := dec.Decode(&got); err != nil {
			return err
		}
		if len(got.X) != n {
			return fmt.Errorf("transport: gob bench decoded %d elements, want %d", len(got.X), n)
		}
		return nil
	}, nil
}
