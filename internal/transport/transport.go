// Package transport runs the SCEC protocol over real TCP connections using
// encoding/gob framing. It implements the three roles of the paper's system
// model (§II-A):
//
//   - the cloud pre-processes A (package coding) and pushes each device's
//     coded block B_j·T to it (Store),
//   - each edge device is a DeviceServer that stores its block and answers
//     compute requests with B_j·T·x,
//   - the user is a Client that broadcasts x to the selected devices,
//     gathers the intermediate results in device order, and decodes Ax with
//     m subtractions.
//
// The package speaks two wire protocols and is generic over the field
// element type:
//
//   - v3 (default): one persistent connection per device multiplexes many
//     in-flight requests as length-prefixed binary frames with stream IDs;
//     field-element slabs travel as raw little-endian bytes (zero copy on
//     little-endian hosts), small writes batch through a group-commit
//     flusher, and idle connections carry piggybacked heartbeats that the
//     fleet runtime reads instead of dialing separate pings.
//   - gob (legacy): one request per exchange in an encoding/gob envelope
//     (FrameV1/FrameV2), kept for mixed fleets and debuggability.
//
// Clients negotiate on connect (see wire.go) and fall back to gob
// transparently, and servers accept both, so mixed-version fleets keep
// working in both directions.
package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/trace"
)

// Message kinds.
const (
	kindStore        = "store"
	kindCompute      = "compute"
	kindComputeBatch = "compute-batch"
	kindPing         = "ping"
)

// Frame versions. The version rides inside the gob envelope, so mixed
// fleets interoperate in both directions: gob ignores stream fields the
// receiver's struct lacks (an old server skips V/Traceparent) and
// zero-fills struct fields the stream lacks (a new server reads V==0 from
// an old client and treats it as FrameV1).
const (
	// FrameV1 is the pre-tracing frame layout (requests carry no version
	// field at all; it decodes as 0 and is normalized to 1).
	FrameV1 byte = 1
	// FrameV2 adds trace propagation: requests may carry a W3C-style
	// traceparent, and responses to traced V2 requests carry the device's
	// server-side spans so the client can stitch one end-to-end trace.
	FrameV2 byte = 2
)

// DefaultTimeout bounds every network round trip.
const DefaultTimeout = 10 * time.Second

// ErrRemote wraps an error string reported by the peer.
var ErrRemote = errors.New("transport: remote error")

// request is the single envelope both roles send to a device.
type request[E comparable] struct {
	// V is the frame version (FrameV2 for current clients; absent — hence
	// zero — on frames from pre-versioning clients).
	V byte
	// Kind selects the operation: kindStore, kindCompute, or kindPing.
	Kind string
	// Traceparent carries the caller's span context in the W3C header
	// shape when the request is part of a trace (FrameV2+); empty
	// otherwise.
	Traceparent string
	// Block carries the coded rows for a store request.
	Block [][]E
	// X carries the input vector for a compute request.
	X []E
	// XMat carries the input matrix (rows) for a batch compute request.
	XMat [][]E

	// blockM/xmatM are the contiguous zero-copy forms of Block/XMat for
	// the v3 binary protocol. Unexported, so gob never sees them; when
	// set, the v3 encoder writes the backing slab directly instead of
	// walking row slices.
	blockM *matrix.Dense[E]
	xmatM  *matrix.Dense[E]
}

// response is the device's answer.
type response[E comparable] struct {
	// V is the frame version the device answered with.
	V byte
	// Err is non-empty when the request failed remotely.
	Err string
	// Spans carries the device's finished server-side spans for a traced
	// request (FrameV2+), re-emitted into the caller's trace so one user
	// query assembles into a single cross-process waterfall.
	Spans []trace.SpanData
	// Y carries the intermediate results of a compute request.
	Y []E
	// YMat carries the intermediate result rows of a batch compute request.
	YMat [][]E

	// yMat is the contiguous form of YMat filled in by the v3 decoder;
	// when set, YMat holds row views into it.
	yMat *matrix.Dense[E]
}

// DefaultMaxElements bounds the number of field elements a device accepts
// in a single store or batch-compute request (64 Mi elements ≈ 512 MB of
// uint64), so a misbehaving peer cannot exhaust device memory.
const DefaultMaxElements = 1 << 26

// DeviceServer is one edge device: it stores a coded block pushed by the
// cloud and multiplies it by input vectors on request.
type DeviceServer[E comparable] struct {
	f           field.Field[E]
	timeout     time.Duration
	maxElements int
	proto       Proto
	metrics     *obs.Registry
	tracer      *trace.Tracer

	ln        net.Listener
	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once

	// Telemetry for the persistent-connection machinery.
	flushHist   *obs.Histogram
	connsV3     *obs.Gauge
	connsGob    *obs.Gauge
	streamsOpen *obs.Gauge

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	mu    sync.Mutex
	block *matrix.Dense[E]
	stats Stats
}

// Stats counts the requests a device served; the fleet operator reads them
// for capacity accounting (the live counterpart of the Eq. (1) cost terms).
type Stats struct {
	// Stores counts coded-block installations.
	Stores int
	// Computes counts vector compute requests served.
	Computes int
	// BatchComputes counts batch (matrix) compute requests served.
	BatchComputes int
	// ValuesReturned totals the intermediate values sent back to users.
	ValuesReturned int
}

// Options tunes a DeviceServer; the zero value selects every default.
type Options struct {
	// Timeout bounds each request exchange; zero means DefaultTimeout.
	Timeout time.Duration
	// MaxElements caps the field elements accepted per store or
	// batch-compute request; zero means DefaultMaxElements.
	MaxElements int
	// Metrics receives the server's RPC and compute-stage telemetry; nil
	// means obs.Default().
	Metrics *obs.Registry
	// Tracer, when non-nil, records a server-side span per traced request
	// (plus a child compute span) and re-emits them to the client through
	// the response frame. Nil disables device-side tracing; traced clients
	// still work, they just see no device spans from this server.
	Tracer *trace.Tracer
	// Proto restricts the wire protocols the server accepts: ProtoAuto
	// (the default) serves both, ProtoGob emulates a legacy gob-only
	// device (v3 hellos fail like any undecodable gob stream), and
	// ProtoV3 rejects gob connections.
	Proto Proto
}

// NewDeviceServer starts an edge device listening on addr (use "127.0.0.1:0"
// for an ephemeral port; Addr reports the bound address) with
// DefaultMaxElements as its request-size cap.
func NewDeviceServer[E comparable](f field.Field[E], addr string) (*DeviceServer[E], error) {
	return NewDeviceServerOptions(f, addr, Options{})
}

// NewDeviceServerLimited is NewDeviceServer with an explicit cap on the
// number of field elements accepted per store or batch-compute request.
func NewDeviceServerLimited[E comparable](f field.Field[E], addr string, maxElements int) (*DeviceServer[E], error) {
	if maxElements < 1 {
		return nil, fmt.Errorf("transport: max elements %d, need >= 1", maxElements)
	}
	return NewDeviceServerOptions(f, addr, Options{MaxElements: maxElements})
}

// NewDeviceServerOptions is NewDeviceServer with explicit Options.
func NewDeviceServerOptions[E comparable](f field.Field[E], addr string, opts Options) (*DeviceServer[E], error) {
	if opts.Timeout == 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.Timeout < 0 {
		return nil, fmt.Errorf("transport: negative timeout %v", opts.Timeout)
	}
	if opts.MaxElements == 0 {
		opts.MaxElements = DefaultMaxElements
	}
	if opts.MaxElements < 1 {
		return nil, fmt.Errorf("transport: max elements %d, need >= 1", opts.MaxElements)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &DeviceServer[E]{
		f:           f,
		timeout:     opts.Timeout,
		maxElements: opts.MaxElements,
		proto:       opts.Proto,
		metrics:     metricsOrDefault(opts.Metrics),
		tracer:      opts.Tracer,
		ln:          ln,
		done:        make(chan struct{}),
		conns:       make(map[net.Conn]struct{}),
	}
	role := obs.L("role", "server")
	dev := obs.L("device", s.Addr())
	s.flushHist = s.metrics.Histogram(obs.MetricTransportFlushFrames, flushHelp, flushBuckets, role)
	s.connsV3 = s.metrics.Gauge(obs.MetricTransportConnsOpen, connsHelp, role, obs.L("proto", "v3"), dev)
	s.connsGob = s.metrics.Gauge(obs.MetricTransportConnsOpen, connsHelp, role, obs.L("proto", "gob"), dev)
	s.streamsOpen = s.metrics.Gauge(obs.MetricTransportStreamsInflight, streamsHelp, role, dev)
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the device's bound address.
func (s *DeviceServer[E]) Addr() string { return s.ln.Addr().String() }

// StoredRows reports how many coded rows the device currently holds.
func (s *DeviceServer[E]) StoredRows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.block == nil {
		return 0
	}
	return s.block.Rows()
}

// Stats returns a snapshot of the request counters.
func (s *DeviceServer[E]) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops accepting connections, unblocks the readers of every
// persistent connection (in-flight requests still get their responses
// flushed), and waits for the server's goroutines. It is idempotent;
// repeated calls return nil.
func (s *DeviceServer[E]) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.ln.Close()
		s.connMu.Lock()
		for c := range s.conns {
			// Expire reads rather than closing: the per-connection reader
			// observes the pop, sees done closed, and exits its loop after
			// its in-flight handlers finish writing.
			_ = c.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
		s.wg.Wait()
	})
	return err
}

func (s *DeviceServer[E]) serve() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Transient accept error: keep serving.
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// trackConn registers a live connection for teardown on Close.
func (s *DeviceServer[E]) trackConn(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	select {
	case <-s.done:
		return false
	default:
		s.conns[conn] = struct{}{}
		return true
	}
}

func (s *DeviceServer[E]) untrackConn(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// handleConn routes one accepted connection to the protocol it speaks: a
// leading 0x00 byte is the v3 hello magic (no gob stream starts with
// 0x00), anything else is a legacy gob client.
func (s *DeviceServer[E]) handleConn(conn net.Conn) {
	defer conn.Close()
	tuneConn(conn)
	if !s.trackConn(conn) {
		return
	}
	defer s.untrackConn(conn)
	start := time.Now()
	cc := &countingConn{Conn: conn}
	br := bufio.NewReaderSize(cc, wireWriterBuf)
	if err := conn.SetReadDeadline(time.Now().Add(s.timeout)); err != nil {
		return
	}
	first, err := br.Peek(1)
	if err != nil {
		// Nothing decodable arrived (idle peer cut by the deadline, or an
		// immediate close): the legacy behavior counted this malformed.
		recordServer(s.metrics, "malformed", time.Since(start), cc.read, cc.written, true)
		return
	}
	if first[0] == v3Magic[0] && s.proto != ProtoGob {
		s.serveV3(conn, cc, br)
		return
	}
	if s.proto == ProtoV3 {
		recordServer(s.metrics, "malformed", time.Since(start), cc.read, cc.written, true)
		return
	}
	s.serveGob(conn, cc, br)
}

// serveGob answers gob-envelope requests sequentially on one connection
// until the peer closes or goes idle past the timeout. The decoder and
// encoder persist across requests (gob streams amortize their type
// descriptors), so a pooled legacy client pays the reflection walk but
// not a fresh type handshake per call.
func (s *DeviceServer[E]) serveGob(conn net.Conn, cc *countingConn, br *bufio.Reader) {
	s.connsGob.Add(1)
	defer s.connsGob.Add(-1)
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(cc)
	served := 0
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.timeout)); err != nil {
			return
		}
		select {
		case <-s.done:
			return
		default:
		}
		start := time.Now()
		readStart, writtenStart := cc.read, cc.written
		var req request[E]
		if err := dec.Decode(&req); err != nil {
			if served == 0 || !errors.Is(err, io.EOF) {
				// First-exchange failures and mid-stream garbage count as
				// malformed; EOF on an idle reused connection is normal
				// teardown.
				recordServer(s.metrics, "malformed", time.Since(start), cc.read-readStart, cc.written-writtenStart, true)
			}
			return
		}
		kind := knownKind(req.Kind)
		ctx, bag, sp := s.startServerSpan(knownKind(req.Kind), req.Traceparent)
		resp := s.dispatch(ctx, bag, req)
		resp.V = FrameV2
		errored := resp.Err != ""
		if sp != nil {
			if errored {
				sp.SetError(errors.New(resp.Err))
			}
			sp.End()
			bag.add(sp)
			resp.Spans = bag.spans
		}
		_ = conn.SetWriteDeadline(time.Now().Add(s.timeout))
		err := enc.Encode(resp)
		recordServer(s.metrics, kind, time.Since(start), cc.read-readStart, cc.written-writtenStart, errored)
		if err != nil {
			// The client observes the broken connection; nothing more to do.
			return
		}
		served++
	}
}

// spanBag collects the finished server-side spans of one request for
// re-emission through the response frame. A request is handled by one
// goroutine, so no locking is needed; a nil bag (untraced request) absorbs
// adds silently.
type spanBag struct {
	spans []trace.SpanData
}

func (b *spanBag) add(sp *trace.Span) {
	if b == nil {
		return
	}
	if sd, ok := sp.Data(); ok {
		b.spans = append(b.spans, sd)
	}
}

// startServerSpan opens the device-side span for a traced request: the
// frame's traceparent parents it, so the client's and device's spans share
// one trace ID across the process boundary. Untraced requests (no tracer
// configured, no traceparent, or a malformed one) get a nil span and bag.
// kind must already be collapsed through knownKind.
func (s *DeviceServer[E]) startServerSpan(kind, traceparent string) (context.Context, *spanBag, *trace.Span) {
	if s.tracer == nil || traceparent == "" {
		return context.Background(), nil, nil
	}
	parent, ok := trace.ParseTraceparent(traceparent)
	if !ok {
		return context.Background(), nil, nil
	}
	ctx, sp := s.tracer.StartRemote(context.Background(), parent,
		trace.SpanRPCServer, trace.A(trace.AttrKind, kind), trace.A(trace.AttrDevice, s.Addr()))
	return ctx, &spanBag{}, sp
}

// startComputeSpan opens the kernel-execution child span for a traced
// request; untraced requests (nil bag) record nothing.
func (s *DeviceServer[E]) startComputeSpan(ctx context.Context, bag *spanBag, kind string) *trace.Span {
	if bag == nil {
		return nil
	}
	_, csp := s.tracer.StartSpan(ctx, trace.SpanDeviceCompute, trace.A(trace.AttrKind, kind))
	return csp
}

func (s *DeviceServer[E]) dispatch(ctx context.Context, bag *spanBag, req request[E]) response[E] {
	switch req.Kind {
	case kindPing:
		return response[E]{}
	case kindStore:
		if len(req.Block) == 0 {
			return response[E]{Err: "store: empty coded block"}
		}
		for i, row := range req.Block {
			if len(row) != len(req.Block[0]) {
				return response[E]{Err: fmt.Sprintf("store: ragged block (row %d)", i)}
			}
		}
		if total := len(req.Block) * len(req.Block[0]); total > s.maxElements {
			return response[E]{Err: fmt.Sprintf("store: block of %d elements exceeds the device cap of %d", total, s.maxElements)}
		}
		s.installBlock(matrix.FromRows(req.Block))
		return response[E]{}
	case kindCompute:
		y, msg := s.mulVec(ctx, bag, req.X)
		if msg != "" {
			return response[E]{Err: msg}
		}
		return response[E]{Y: y}
	case kindComputeBatch:
		for i, row := range req.XMat {
			if len(row) != len(req.XMat[0]) {
				return response[E]{Err: fmt.Sprintf("compute-batch: ragged X (row %d)", i)}
			}
		}
		var xm *matrix.Dense[E]
		if len(req.XMat) > 0 && len(req.XMat[0]) > 0 {
			if total := len(req.XMat) * len(req.XMat[0]); total > s.maxElements {
				return response[E]{Err: fmt.Sprintf("compute-batch: X of %d elements exceeds the device cap of %d", total, s.maxElements)}
			}
			xm = matrix.FromRows(req.XMat)
		} else {
			xm = matrix.FromSlice[E](len(req.XMat), 0, nil)
		}
		y, msg := s.mulMat(ctx, bag, xm)
		if msg != "" {
			return response[E]{Err: msg}
		}
		rows := make([][]E, y.Rows())
		for i := range rows {
			rows[i] = y.RowView(i)
		}
		return response[E]{YMat: rows}
	default:
		return response[E]{Err: fmt.Sprintf("unknown request kind %q", req.Kind)}
	}
}

// installBlock stores a validated coded block.
func (s *DeviceServer[E]) installBlock(block *matrix.Dense[E]) {
	s.mu.Lock()
	s.block = block
	s.stats.Stores++
	s.mu.Unlock()
}

// mulVec validates and executes one vector compute against the stored
// block, returning the result or the remote-error string. Both wire
// protocols dispatch through here, so validation messages, the compute
// stage span, and the stats counters stay identical across them.
func (s *DeviceServer[E]) mulVec(ctx context.Context, bag *spanBag, x []E) ([]E, string) {
	s.mu.Lock()
	block := s.block
	s.mu.Unlock()
	if block == nil {
		return nil, "compute: no coded block stored"
	}
	if len(x) != block.Cols() {
		return nil, fmt.Sprintf("compute: x has %d entries, coded rows have %d columns", len(x), block.Cols())
	}
	csp := s.startComputeSpan(ctx, bag, "vec")
	sp := obs.StartStage(s.metrics, obs.StageCompute)
	y := matrix.MulVec(s.f, block, x)
	sp.End()
	csp.End()
	bag.add(csp)
	s.mu.Lock()
	s.stats.Computes++
	s.stats.ValuesReturned += len(y)
	s.mu.Unlock()
	return y, ""
}

// mulMat is mulVec's batch counterpart; x carries the input rows.
func (s *DeviceServer[E]) mulMat(ctx context.Context, bag *spanBag, x *matrix.Dense[E]) (*matrix.Dense[E], string) {
	s.mu.Lock()
	block := s.block
	s.mu.Unlock()
	if block == nil {
		return nil, "compute-batch: no coded block stored"
	}
	if x.Rows() != block.Cols() {
		return nil, fmt.Sprintf("compute-batch: X has %d rows, coded rows have %d columns", x.Rows(), block.Cols())
	}
	if x.Cols() == 0 {
		return nil, "compute-batch: X has no columns"
	}
	csp := s.startComputeSpan(ctx, bag, "mat")
	sp := obs.StartStage(s.metrics, obs.StageCompute)
	y := matrix.Mul(s.f, block, x)
	sp.End()
	csp.End()
	bag.add(csp)
	s.mu.Lock()
	s.stats.BatchComputes++
	s.stats.ValuesReturned += y.Rows() * y.Cols()
	s.mu.Unlock()
	return y, ""
}

// roundTrip dials addr, sends req, and decodes the response, recording the
// round trip (count, latency, bytes, outcome) into reg. The exchange is
// bounded by both timeout and ctx: cancelling ctx aborts an in-flight dial,
// send, or receive promptly (the fleet runtime relies on this to cancel the
// losers of a hedged race instead of leaking them until the deadline), and
// the returned error then wraps ctx.Err().
func roundTrip[E comparable](ctx context.Context, addr string, timeout time.Duration, reg *obs.Registry, req request[E]) (resp response[E], err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req.V = FrameV2
	// A client span is opened only inside an existing trace: the caller's
	// span rides in ctx, and its traceparent is injected into the frame so
	// the device parents its server span under this one.
	if parent := trace.SpanFromContext(ctx); parent != nil {
		var rsp *trace.Span
		ctx, rsp = parent.Tracer().StartSpan(ctx, trace.SpanRPCClient,
			trace.A(trace.AttrKind, req.Kind), trace.A(trace.AttrDevice, addr))
		req.Traceparent = rsp.Traceparent()
		tracer := parent.Tracer()
		defer func() {
			if err != nil {
				rsp.SetError(err)
			}
			rsp.End()
			for _, sd := range resp.Spans {
				tracer.Record(sd)
			}
		}()
	}
	start := time.Now()
	var cc *countingConn
	defer func() {
		var sent, received int64
		if cc != nil {
			sent, received = cc.written, cc.read
		}
		recordClient(reg, req.Kind, time.Since(start), sent, received, err)
	}()
	dialer := net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return response[E]{}, ctxErr(ctx, fmt.Errorf("transport: dial %s: %w", addr, err))
	}
	defer conn.Close()
	cc = &countingConn{Conn: conn}
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return response[E]{}, fmt.Errorf("transport: deadline %s: %w", addr, err)
	}
	// Unblock in-flight reads/writes the moment ctx is cancelled; expiring
	// the deadline (rather than closing) keeps the teardown race-free with
	// the deferred Close.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(time.Now())
		case <-watchDone:
		}
	}()
	if err := gob.NewEncoder(cc).Encode(req); err != nil {
		return response[E]{}, ctxErr(ctx, fmt.Errorf("transport: send to %s: %w", addr, err))
	}
	if err := gob.NewDecoder(cc).Decode(&resp); err != nil {
		return response[E]{}, ctxErr(ctx, fmt.Errorf("transport: receive from %s: %w", addr, err))
	}
	if resp.Err != "" {
		// Keep the device's re-emitted spans so the deferred trace adoption
		// above still stitches the failed server side into the trace.
		return response[E]{Spans: resp.Spans}, fmt.Errorf("%w: %s: %s", ErrRemote, addr, resp.Err)
	}
	return resp, nil
}

// ctxErr attributes an I/O error provoked by context cancellation back to
// the context, so callers can distinguish a cancelled attempt (errors.Is
// context.Canceled/DeadlineExceeded) from a genuine device failure.
func ctxErr(ctx context.Context, err error) error {
	if ce := ctx.Err(); ce != nil {
		return fmt.Errorf("%w (%v)", ce, err)
	}
	return err
}

// Cloud is the pre-processing role: it distributes an encoding to a fleet.
type Cloud[E comparable] struct {
	// Timeout bounds each push; zero means DefaultTimeout.
	Timeout time.Duration
	// Metrics receives RPC and store-stage telemetry; nil means
	// obs.Default().
	Metrics *obs.Registry
	// Proto selects the wire protocol: ProtoAuto (default) negotiates v3
	// and falls back to gob, ProtoGob forces legacy frames, ProtoV3
	// refuses to fall back.
	Proto Proto
	// Pool holds the persistent device connections; nil means the shared
	// per-element-type pool.
	Pool *Pool[E]
}

func (c Cloud[E]) pool() *Pool[E] {
	if c.Pool != nil {
		return c.Pool
	}
	return SharedPool[E]()
}

// Distribute pushes coded block j of enc to addrs[j] for every device,
// concurrently. It requires exactly one address per block and records the
// push as the pipeline's store stage. Failed pushes are collected and
// reported together, each tagged with its device index.
func (c Cloud[E]) Distribute(ctx context.Context, addrs []string, enc *coding.Encoding[E]) error {
	if len(addrs) != len(enc.Blocks) {
		return fmt.Errorf("transport: %d addresses for %d coded blocks", len(addrs), len(enc.Blocks))
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	reg := metricsOrDefault(c.Metrics)
	defer obs.StartStage(reg, obs.StageStore).End()
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for j, addr := range addrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.store(ctx, addr, enc.Blocks[j], timeout, reg); err != nil {
				errs[j] = fmt.Errorf("transport: distribute to device %d: %w", j, err)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Store pushes one coded block to a single device. The fleet runtime uses it
// for replicated provisioning and for re-pushing a block to a warm standby;
// unlike Distribute it records no pipeline stage, leaving that to the caller.
func (c Cloud[E]) Store(ctx context.Context, addr string, block *matrix.Dense[E]) error {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	return c.store(ctx, addr, block, timeout, metricsOrDefault(c.Metrics))
}

func (c Cloud[E]) store(ctx context.Context, addr string, block *matrix.Dense[E], timeout time.Duration, reg *obs.Registry) error {
	// Block (row views, read-only) feeds the gob fallback; blockM lets the
	// v3 encoder write the backing slab without touching the rows at all.
	rows := make([][]E, block.Rows())
	for i := range rows {
		rows[i] = block.RowView(i)
	}
	_, err := c.pool().roundTrip(ctx, addr, timeout, reg, c.Proto, request[E]{Kind: kindStore, Block: rows, blockM: block})
	return err
}

// Client is the user role: it queries the fleet and decodes the result.
type Client[E comparable] struct {
	// F is the arithmetic field shared with the fleet.
	F field.Field[E]
	// Code is the coding design the fleet was provisioned with — the
	// structured Eq. (8) scheme or any other coding.Code (t-collusion).
	Code coding.Code[E]
	// Timeout bounds each device round trip; zero means DefaultTimeout.
	Timeout time.Duration
	// Metrics receives RPC and gather/decode-stage telemetry; nil means
	// obs.Default().
	Metrics *obs.Registry
	// Proto selects the wire protocol: ProtoAuto (default) negotiates v3
	// and falls back to gob, ProtoGob forces legacy frames, ProtoV3
	// refuses to fall back.
	Proto Proto
	// Pool holds the persistent device connections; nil means the shared
	// per-element-type pool.
	Pool *Pool[E]
}

func (c Client[E]) pool() *Pool[E] {
	if c.Pool != nil {
		return c.Pool
	}
	return SharedPool[E]()
}

// LastContact reports when addr was last heard from on this client's
// pooled multiplexed connection; see Pool.LastContact.
func (c Client[E]) LastContact(addr string) (time.Time, bool) {
	return c.pool().LastContact(addr)
}

// LastRTT reports the most recent round-trip time measured on this
// client's pooled multiplexed connection to addr (negotiation handshake,
// refreshed by timed idle heartbeats); see Pool.LastRTT.
func (c Client[E]) LastRTT(addr string) (time.Duration, bool) {
	return c.pool().LastRTT(addr)
}

// ConnDebug snapshots the pooled connection state toward addr.
func (c Client[E]) ConnDebug(addr string) ConnDebug {
	return c.pool().Debug(addr)
}

// Gather sends x to every device concurrently and concatenates the
// intermediate results in device order, returning the raw vector B·T·x
// without decoding. rowsOn[j] gives the expected result length of device j.
// Callers with a structured scheme use MulVec instead; Gather exists for
// custom decoders (e.g. the collusion scheme's Gaussian decoding).
func (c Client[E]) Gather(ctx context.Context, addrs []string, rowsOn []int, x []E) ([]E, error) {
	if len(addrs) != len(rowsOn) {
		return nil, fmt.Errorf("transport: %d addresses for %d row counts", len(addrs), len(rowsOn))
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	reg := metricsOrDefault(c.Metrics)
	defer obs.StartStage(reg, obs.StageGather).End()
	parts := make([][]E, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for j, addr := range addrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.pool().roundTrip(ctx, addr, timeout, reg, c.Proto, request[E]{Kind: kindCompute, X: x})
			if err != nil {
				errs[j] = err
				return
			}
			if len(resp.Y) != rowsOn[j] {
				errs[j] = fmt.Errorf("transport: device %d returned %d values, want %d", j, len(resp.Y), rowsOn[j])
				return
			}
			parts[j] = resp.Y
		}()
	}
	wg.Wait()
	total := 0
	for j, err := range errs {
		if err != nil {
			return nil, err
		}
		total += rowsOn[j]
	}
	y := make([]E, 0, total)
	for _, p := range parts {
		y = append(y, p...)
	}
	return y, nil
}

// MulVec computes Ax through the fleet: it sends x to every device
// concurrently, concatenates the intermediate results in device order, and
// decodes through the client's code. addrs must list the fleet in code
// device order.
func (c Client[E]) MulVec(ctx context.Context, addrs []string, x []E) ([]E, error) {
	rowsOn, err := c.codeRows(addrs)
	if err != nil {
		return nil, err
	}
	y, err := c.Gather(ctx, addrs, rowsOn, x)
	if err != nil {
		return nil, err
	}
	defer obs.StartStage(c.Metrics, obs.StageDecode).End()
	return c.Code.Decode(y)
}

// Compute sends x to one device and returns its intermediate result B_j·T·x
// without validation against a scheme. It is the single-replica primitive
// the fleet runtime races across a replica set; scheme-order callers use
// Gather or MulVec instead.
func (c Client[E]) Compute(ctx context.Context, addr string, x []E) ([]E, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	resp, err := c.pool().roundTrip(ctx, addr, timeout, metricsOrDefault(c.Metrics), c.Proto, request[E]{Kind: kindCompute, X: x})
	if err != nil {
		return nil, err
	}
	return resp.Y, nil
}

// ComputeBatch sends the input rows X to one device and returns its
// intermediate result rows B_j·T·X — the batch counterpart of Compute.
func (c Client[E]) ComputeBatch(ctx context.Context, addr string, xRows [][]E) ([][]E, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	resp, err := c.pool().roundTrip(ctx, addr, timeout, metricsOrDefault(c.Metrics), c.Proto, request[E]{Kind: kindComputeBatch, XMat: xRows})
	if err != nil {
		return nil, err
	}
	return resp.YMat, nil
}

// Ping checks a device is reachable using the client's timeout and metrics
// registry (the package-level Ping uses the default registry).
func (c Client[E]) Ping(ctx context.Context, addr string) error {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	_, err := c.pool().roundTrip(ctx, addr, timeout, metricsOrDefault(c.Metrics), c.Proto, request[E]{Kind: kindPing})
	return err
}

// MulMat computes A·X through the fleet for an l×n input matrix — the batch
// generalization (§II-A): each device returns its V(B_j)×n block and the
// user decodes with m·n subtractions.
func (c Client[E]) MulMat(ctx context.Context, addrs []string, x *matrix.Dense[E]) (*matrix.Dense[E], error) {
	rowsOn, err := c.codeRows(addrs)
	if err != nil {
		return nil, err
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	reg := metricsOrDefault(c.Metrics)
	gather := obs.StartStage(reg, obs.StageGather)
	// Row views feed the gob fallback; xmatM lets the v3 encoder write the
	// backing slab directly.
	xRows := make([][]E, x.Rows())
	for i := range xRows {
		xRows[i] = x.RowView(i)
	}
	parts := make([]*matrix.Dense[E], len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for j, addr := range addrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.pool().roundTrip(ctx, addr, timeout, reg, c.Proto, request[E]{Kind: kindComputeBatch, XMat: xRows, xmatM: x})
			if err != nil {
				errs[j] = err
				return
			}
			if len(resp.YMat) != rowsOn[j] {
				errs[j] = fmt.Errorf("transport: device %d returned %d rows, want %d", j, len(resp.YMat), rowsOn[j])
				return
			}
			if resp.yMat != nil {
				parts[j] = resp.yMat // v3: already a contiguous matrix
			} else {
				parts[j] = matrix.FromRows(resp.YMat)
			}
		}()
	}
	wg.Wait()
	gather.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	y := matrix.VStack(parts...)
	defer obs.StartStage(reg, obs.StageDecode).End()
	return c.Code.DecodeBatch(y)
}

// codeRows validates the client configuration and returns per-device
// expected row counts.
func (c Client[E]) codeRows(addrs []string) ([]int, error) {
	if c.Code == nil {
		return nil, errors.New("transport: client has no coding code")
	}
	if len(addrs) != c.Code.Devices() {
		return nil, fmt.Errorf("transport: %d addresses for %d devices", len(addrs), c.Code.Devices())
	}
	rowsOn := make([]int, len(addrs))
	for j := range rowsOn {
		rowsOn[j] = c.Code.RowsOn(j)
	}
	return rowsOn, nil
}

// Ping checks a device is reachable.
func Ping[E comparable](ctx context.Context, addr string, timeout time.Duration) error {
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	_, err := SharedPool[E]().roundTrip(ctx, addr, timeout, nil, ProtoAuto, request[E]{Kind: kindPing})
	return err
}
