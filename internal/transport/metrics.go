package transport

import (
	"net"
	"time"

	"github.com/scec/scec/internal/obs"
)

// countingConn wraps a net.Conn and counts bytes in each direction. Each
// side of the protocol drives a connection from a single goroutine, so the
// counters are plain ints read only after the exchange finishes.
type countingConn struct {
	net.Conn
	read, written int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read += int64(n)
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	return n, err
}

func metricsOrDefault(r *obs.Registry) *obs.Registry {
	if r == nil {
		return obs.Default()
	}
	return r
}

// knownKind collapses attacker-controlled request kinds to a bounded label
// set so a misbehaving peer cannot explode metric cardinality.
func knownKind(kind string) string {
	switch kind {
	case kindStore, kindCompute, kindComputeBatch, kindPing:
		return kind
	default:
		return "unknown"
	}
}

// recordClient accounts one user/cloud-side round trip.
func recordClient(reg *obs.Registry, kind string, d time.Duration, sent, received int64, err error) {
	reg = metricsOrDefault(reg)
	l := obs.L("kind", knownKind(kind))
	reg.Counter(obs.MetricRPCClientRequests, "RPC round trips issued by the user/cloud role, by request kind.", l).Inc()
	if err != nil {
		reg.Counter(obs.MetricRPCClientErrors, "Failed RPC round trips (dial, deadline, transport, or remote errors), by request kind.", l).Inc()
	}
	reg.Histogram(obs.MetricRPCClientSeconds, "RPC round-trip latency in seconds as seen by the user/cloud role, by request kind.", obs.DefLatencyBuckets, l).ObserveDuration(d)
	reg.Counter(obs.MetricRPCClientSent, "Bytes written to the wire by the user/cloud role, by request kind.", l).Add(sent)
	reg.Counter(obs.MetricRPCClientReceived, "Bytes read from the wire by the user/cloud role, by request kind.", l).Add(received)
}

// recordServer accounts one device-server-side request. Requests that never
// decode are labelled kind="malformed".
func recordServer(reg *obs.Registry, kind string, d time.Duration, read, written int64, errored bool) {
	reg = metricsOrDefault(reg)
	l := obs.L("kind", kind)
	reg.Counter(obs.MetricRPCServerRequests, "Requests handled by the device server, by request kind (malformed = undecodable).", l).Inc()
	if errored {
		reg.Counter(obs.MetricRPCServerErrors, "Requests the device server rejected or failed to parse, by request kind.", l).Inc()
	}
	reg.Histogram(obs.MetricRPCServerSeconds, "Request handling latency in seconds on the device server, by request kind.", obs.DefLatencyBuckets, l).ObserveDuration(d)
	reg.Counter(obs.MetricRPCServerRead, "Bytes read from the wire by the device server, by request kind.", l).Add(read)
	reg.Counter(obs.MetricRPCServerWritten, "Bytes written to the wire by the device server, by request kind.", l).Add(written)
}
