package transport

import (
	"context"
	"errors"
	"math/rand/v2"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(41, 43)) }

// startFleet launches n device servers on loopback and returns their
// addresses plus a shutdown function.
func startFleet[E comparable](t *testing.T, f field.Field[E], n int) ([]string, []*DeviceServer[E]) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*DeviceServer[E], n)
	for j := 0; j < n; j++ {
		s, err := NewDeviceServer(f, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		addrs[j] = s.Addr()
		servers[j] = s
	}
	return addrs, servers
}

func TestEndToEndPrime(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	const m, l, r = 10, 6, 4

	s, err := coding.New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, m, l)
	enc, err := coding.Encode[uint64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}

	addrs, servers := startFleet[uint64](t, f, s.Devices())
	if err := (Cloud[uint64]{}).Distribute(t.Context(), addrs, enc); err != nil {
		t.Fatal(err)
	}
	for j, srv := range servers {
		if got, want := srv.StoredRows(), s.RowsOn(j); got != want {
			t.Fatalf("device %d stored %d rows, want %d", j, got, want)
		}
	}

	client := Client[uint64]{F: f, Code: coding.BindScheme(f, s)}
	x := matrix.RandomVec[uint64](f, rng, l)
	got, err := client.MulVec(t.Context(), addrs, x)
	if err != nil {
		t.Fatal(err)
	}
	if want := matrix.MulVec[uint64](f, a, x); !matrix.VecEqual[uint64](f, got, want) {
		t.Fatal("TCP pipeline decoded the wrong result")
	}
}

func TestEndToEndReal(t *testing.T) {
	f := field.Real{Tol: 1e-6}
	rng := testRNG()
	const m, l, r = 6, 3, 3

	s, err := coding.New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[float64](f, rng, m, l)
	enc, err := coding.Encode[float64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startFleet[float64](t, f, s.Devices())
	if err := (Cloud[float64]{}).Distribute(t.Context(), addrs, enc); err != nil {
		t.Fatal(err)
	}
	client := Client[float64]{F: f, Code: coding.BindScheme(f, s)}
	x := matrix.RandomVec[float64](f, rng, l)
	got, err := client.MulVec(t.Context(), addrs, x)
	if err != nil {
		t.Fatal(err)
	}
	if want := matrix.MulVec[float64](f, a, x); !matrix.VecEqual[float64](f, got, want) {
		t.Fatal("TCP pipeline (real field) decoded the wrong result")
	}
}

func TestComputeBeforeStoreFails(t *testing.T) {
	f := field.Prime{}
	s, err := coding.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startFleet[uint64](t, f, s.Devices())
	client := Client[uint64]{F: f, Code: coding.BindScheme(f, s)}
	if _, err := client.MulVec(t.Context(), addrs, make([]uint64, 3)); !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote (no block stored)", err)
	}
}

func TestWrongInputLengthRejectedRemotely(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	s, err := coding.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, 4, 5)
	enc, err := coding.Encode[uint64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startFleet[uint64](t, f, s.Devices())
	if err := (Cloud[uint64]{}).Distribute(t.Context(), addrs, enc); err != nil {
		t.Fatal(err)
	}
	client := Client[uint64]{F: f, Code: coding.BindScheme(f, s)}
	if _, err := client.MulVec(t.Context(), addrs, make([]uint64, 2)); !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote (bad x length)", err)
	}
}

func TestUnreachableDevice(t *testing.T) {
	f := field.Prime{}
	s, err := coding.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	client := Client[uint64]{F: f, Code: coding.BindScheme(f, s), Timeout: 500 * time.Millisecond}
	// Reserve ports that nothing is listening on by binding and closing.
	addrs, servers := startFleet[uint64](t, f, s.Devices())
	for _, srv := range servers {
		_ = srv.Close()
	}
	if _, err := client.MulVec(t.Context(), addrs, make([]uint64, 3)); err == nil {
		t.Fatal("expected a dial error against a closed fleet")
	}
}

func TestDistributeValidation(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	s, err := coding.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, 4, 5)
	enc, err := coding.Encode[uint64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := (Cloud[uint64]{}).Distribute(t.Context(), []string{"127.0.0.1:1"}, enc); err == nil {
		t.Fatal("address/block count mismatch should error")
	}
}

func TestClientValidation(t *testing.T) {
	f := field.Prime{}
	s, err := coding.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := Client[uint64]{F: f, Code: coding.BindScheme(f, s)}
	if _, err := c.MulVec(t.Context(), []string{"127.0.0.1:1"}, make([]uint64, 3)); err == nil {
		t.Fatal("address count mismatch should error")
	}
	c.Code = nil
	if _, err := c.MulVec(t.Context(), nil, nil); err == nil {
		t.Fatal("missing code should error")
	}
}

func TestPingAndUnknownKind(t *testing.T) {
	f := field.Prime{}
	srv, err := NewDeviceServer(f, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := Ping[uint64](t.Context(), srv.Addr(), time.Second); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, err := roundTrip[uint64](t.Context(), srv.Addr(), time.Second, nil, request[uint64]{Kind: "bogus"}); !errors.Is(err, ErrRemote) {
		t.Fatalf("unknown kind err = %v, want ErrRemote", err)
	}
	if _, err := roundTrip[uint64](t.Context(), srv.Addr(), time.Second, nil, request[uint64]{Kind: kindStore}); !errors.Is(err, ErrRemote) {
		t.Fatalf("empty store err = %v, want ErrRemote", err)
	}
}

func TestServerCloseIsIdempotentForRequests(t *testing.T) {
	f := field.Prime{}
	srv, err := NewDeviceServer(f, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Ping[uint64](t.Context(), addr, 300*time.Millisecond); err == nil {
		t.Fatal("closed server should not answer")
	}
}

func TestConcurrentClients(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	const m, l, r = 8, 4, 4
	s, err := coding.New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, m, l)
	enc, err := coding.Encode[uint64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := startFleet[uint64](t, f, s.Devices())
	if err := (Cloud[uint64]{}).Distribute(t.Context(), addrs, enc); err != nil {
		t.Fatal(err)
	}
	client := Client[uint64]{F: f, Code: coding.BindScheme(f, s)}

	const parallel = 8
	xs := make([][]uint64, parallel)
	for i := range xs {
		xs[i] = matrix.RandomVec[uint64](f, rng, l)
	}
	results := make([][]uint64, parallel)
	errs := make([]error, parallel)
	done := make(chan int, parallel)
	for i := 0; i < parallel; i++ {
		go func() {
			results[i], errs[i] = client.MulVec(t.Context(), addrs, xs[i])
			done <- i
		}()
	}
	for i := 0; i < parallel; i++ {
		<-done
	}
	for i := 0; i < parallel; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		want := matrix.MulVec[uint64](f, a, xs[i])
		if !matrix.VecEqual[uint64](f, results[i], want) {
			t.Fatalf("client %d decoded the wrong result", i)
		}
	}
}

// TestContextCancelAbortsRoundTrip points a round trip at a listener that
// accepts and never answers, then cancels the context mid-flight: the call
// must return promptly (well before the 10s timeout) with an error that
// wraps context.Canceled.
func TestContextCancelAbortsRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never answer
		}
	}()

	ctx, cancel := context.WithCancel(t.Context())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := roundTrip[uint64](ctx, ln.Addr().String(), 10*time.Second, obs.New(), request[uint64]{Kind: kindPing})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("cancellation took %v, want prompt abort", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("round trip ignored context cancellation")
	}
}

// TestDistributeParallelCollectsIndexedErrors kills two of the fleet's
// devices and checks the concurrent Distribute reports every failed push,
// tagged with its device index, while still attempting the healthy ones.
func TestDistributeParallelCollectsIndexedErrors(t *testing.T) {
	f := field.Prime{}
	rng := testRNG()
	s, err := coding.New(6, 2) // 4 devices
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, 6, 3)
	enc, err := coding.Encode[uint64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	addrs, servers := startFleet[uint64](t, f, s.Devices())
	_ = servers[1].Close()
	_ = servers[3].Close()

	err = (Cloud[uint64]{Timeout: time.Second}).Distribute(t.Context(), addrs, enc)
	if err == nil {
		t.Fatal("distribute to a half-dead fleet succeeded")
	}
	for _, want := range []string{"distribute to device 1", "distribute to device 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if strings.Contains(err.Error(), "device 0") || strings.Contains(err.Error(), "device 2") {
		t.Errorf("error %q blames a healthy device", err)
	}
	// The healthy devices must still have been provisioned.
	for _, j := range []int{0, 2} {
		if got, want := servers[j].StoredRows(), s.RowsOn(j); got != want {
			t.Errorf("device %d stored %d rows, want %d", j, got, want)
		}
	}
}
