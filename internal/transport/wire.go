package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"unsafe"

	"github.com/scec/scec/internal/matrix"
)

// Proto selects the wire protocol a client speaks to a device. The v3
// protocol multiplexes many in-flight requests over one persistent
// connection using length-prefixed binary frames with zero-copy
// field-element payloads; the gob protocol is the original
// one-request-per-exchange encoding/gob framing (FrameV1/FrameV2).
type Proto int

const (
	// ProtoAuto negotiates v3 on first contact and falls back to gob
	// transparently when the peer closes on the v3 hello (a gob-only
	// device). This is the default.
	ProtoAuto Proto = iota
	// ProtoV3 requires the binary protocol; peers that do not speak it
	// produce an error instead of a fallback.
	ProtoV3
	// ProtoGob forces the legacy gob protocol.
	ProtoGob
)

func (p Proto) String() string {
	switch p {
	case ProtoAuto:
		return "auto"
	case ProtoV3:
		return "v3"
	case ProtoGob:
		return "gob"
	}
	return fmt.Sprintf("proto(%d)", int(p))
}

// ParseProto parses a -proto CLI value.
func ParseProto(s string) (Proto, error) {
	switch s {
	case "", "auto":
		return ProtoAuto, nil
	case "v3":
		return ProtoV3, nil
	case "gob":
		return ProtoGob, nil
	}
	return ProtoAuto, fmt.Errorf("transport: unknown protocol %q (want auto, v3, or gob)", s)
}

// The v3 wire format.
//
// Connections open with a 12-byte hello in each direction:
//
//	client: magic[8] | version | elemCode | reserved[2]
//	server: magic[8] | version | elemCode | status | reserved[1]
//
// where magic is {0x00, 'S', 'C', 'E', 'C', 'v', '3', '\n'}. The leading
// 0x00 byte is deliberate: no gob stream begins with 0x00 (gob messages
// start with a non-zero length byte), so a v3 hello makes a gob-only
// server fail its decode and close the connection — which the client
// detects and treats as "peer speaks gob" — while a v3 server can peek
// one byte to route each accepted connection to the right protocol.
//
// After the handshake both directions carry frames:
//
//	u32 length | u32 streamID | u8 op | payload
//
// (all integers little-endian; length counts streamID+op+payload, i.e.
// 5+len(payload)). Responses echo the request's streamID with op|0x80,
// so many requests can be in flight on one connection at once.
var v3Magic = [8]byte{0x00, 'S', 'C', 'E', 'C', 'v', '3', '\n'}

const (
	wireVersion = 3
	helloLen    = 12

	helloOK         = 0 // server hello status: accepted
	helloRejectElem = 1 // server hello status: element-type mismatch
)

// Frame ops. A response frame carries the request op with opResponseBit set.
const (
	opPing         byte = 1
	opStore        byte = 2
	opCompute      byte = 3
	opComputeBatch byte = 4
	opResponseBit  byte = 0x80
)

// frameOverhead is the per-frame byte count besides the payload: the u32
// length prefix plus the u32 streamID and u8 op it counts.
const frameOverhead = 4 + 5

// maxFrameLen bounds the declared frame length so a garbage length prefix
// cannot drive pathological reads; real payload allocation is separately
// gated on the receiver's element cap.
const maxFrameLen = 1<<31 - 1

// errLegacyPeer classifies a failed v3 negotiation where the peer closed
// or answered garbage — the signature of a gob-only device.
var errLegacyPeer = errors.New("transport: peer does not speak v3")

// errConnBroken reports that a multiplexed connection died with the
// request in flight; the pool retries such requests once on a fresh
// connection when they were issued on a reused one.
var errConnBroken = errors.New("transport: connection broken")

func kindToOp(kind string) (byte, bool) {
	switch kind {
	case kindPing:
		return opPing, true
	case kindStore:
		return opStore, true
	case kindCompute:
		return opCompute, true
	case kindComputeBatch:
		return opComputeBatch, true
	}
	return 0, false
}

func opToKind(op byte) string {
	switch op &^ opResponseBit {
	case opPing:
		return kindPing
	case opStore:
		return kindStore
	case opCompute:
		return kindCompute
	case opComputeBatch:
		return kindComputeBatch
	}
	return "unknown"
}

// elemCodec describes how one field-element type goes on the wire.
type elemCodec struct {
	code byte // hello elemCode
	size int  // bytes per element
}

// codecFor resolves the wire codec for E. The three concrete element
// types of the repo's fields (Prime → uint64, GF256 → byte, Real →
// float64) are supported; anything else reports false and the transport
// stays on the gob protocol for that type.
func codecFor[E comparable]() (elemCodec, bool) {
	var z E
	switch any(z).(type) {
	case uint64:
		return elemCodec{code: 1, size: 8}, true
	case byte:
		return elemCodec{code: 2, size: 1}, true
	case float64:
		return elemCodec{code: 3, size: 8}, true
	}
	return elemCodec{}, false
}

// hostLittleEndian reports whether the running machine stores integers
// little-endian, in which case element slabs alias directly to their wire
// bytes (zero copy). Big-endian hosts take a per-element conversion path.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// elemWireBytes returns the little-endian wire image of s: an aliasing
// view on little-endian hosts, a converted copy on big-endian ones.
// The caller must not let the returned slice outlive its use of s.
func elemWireBytes[E comparable](s []E, size int) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*size)
	}
	buf := make([]byte, len(s)*size)
	switch v := any(s).(type) {
	case []uint64:
		for i, e := range v {
			binary.LittleEndian.PutUint64(buf[i*8:], e)
		}
	case []byte:
		copy(buf, v)
	case []float64:
		for i, e := range v {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(e))
		}
	}
	return buf
}

// readElems fills dst with len(dst) elements read from r as little-endian
// wire bytes, reading directly into the destination slab on little-endian
// hosts.
func readElems[E comparable](r io.Reader, dst []E, size int) error {
	if len(dst) == 0 {
		return nil
	}
	if hostLittleEndian {
		_, err := io.ReadFull(r, unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), len(dst)*size))
		return err
	}
	buf := make([]byte, len(dst)*size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	switch v := any(dst).(type) {
	case []uint64:
		for i := range v {
			v[i] = binary.LittleEndian.Uint64(buf[i*8:])
		}
	case []byte:
		copy(v, buf)
	case []float64:
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	}
	return nil
}

// readElemsChunked reads total elements, growing the destination in
// bounded chunks so a forged frame header cannot provoke a huge upfront
// allocation: memory grows only as fast as bytes actually arrive.
func readElemsChunked[E comparable](r io.Reader, total int, size int) ([]E, error) {
	const chunk = 1 << 16
	dst := make([]E, 0, min(total, chunk))
	buf := make([]E, min(total, chunk))
	for len(dst) < total {
		n := min(total-len(dst), chunk)
		if err := readElems(r, buf[:n], size); err != nil {
			return nil, err
		}
		dst = append(dst, buf[:n]...)
	}
	return dst, nil
}

// Hello encoding.

func clientHello(code byte) [helloLen]byte {
	var h [helloLen]byte
	copy(h[:], v3Magic[:])
	h[8] = wireVersion
	h[9] = code
	return h
}

func serverHello(code, status byte) [helloLen]byte {
	var h [helloLen]byte
	copy(h[:], v3Magic[:])
	h[8] = wireVersion
	h[9] = code
	h[10] = status
	return h
}

// readClientHello consumes and validates a client hello (the peeked 0x00
// magic byte included). A malformed hello is a protocol error; the caller
// closes the connection.
func readClientHello(r io.Reader) (code byte, err error) {
	var h [helloLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, fmt.Errorf("transport: read v3 hello: %w", err)
	}
	if [8]byte(h[:8]) != v3Magic {
		return 0, errors.New("transport: bad v3 hello magic")
	}
	if h[8] != wireVersion {
		return 0, fmt.Errorf("transport: unsupported wire version %d", h[8])
	}
	return h[9], nil
}

// readServerHello consumes and validates the server's hello. Short reads
// and bad magic classify as errLegacyPeer (the far side never spoke v3);
// an explicit rejection status surfaces as a hard error.
func readServerHello(r io.Reader, wantCode byte) error {
	var h [helloLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if peerClosed(err) {
			return fmt.Errorf("%w (%v)", errLegacyPeer, err)
		}
		return fmt.Errorf("transport: read v3 server hello: %w", err)
	}
	if [8]byte(h[:8]) != v3Magic || h[8] != wireVersion {
		return errLegacyPeer
	}
	if h[10] != helloOK {
		return fmt.Errorf("transport: device rejected v3 handshake (status %d, element code %d, ours %d)", h[10], h[9], wantCode)
	}
	if h[9] != wantCode {
		return fmt.Errorf("transport: device speaks element code %d, client speaks %d", h[9], wantCode)
	}
	return nil
}

// wireRequest is one decoded v3 request frame on the server side.
type wireRequest[E comparable] struct {
	stream uint32
	op     byte
	tp     string // traceparent, "" when untraced
	x      []E    // compute input vector
	block  *matrix.Dense[E]
	xmat   *matrix.Dense[E]
	// capErr carries a request-level validation failure detected during
	// decode (an element count over the device cap): the payload was
	// drained, the connection stays healthy, and the server answers this
	// error string instead of dispatching.
	capErr string
	// size is the full on-wire frame size in bytes, for byte accounting.
	size int64
}

// readRequestFrame decodes one request frame from br. It validates every
// declared dimension against the frame length before allocating, so a
// forged frame can never allocate more than maxElements field elements;
// dimension counts over maxElements drain the (bounded) payload and
// report a request-level capErr rather than poisoning the connection.
// A nil request with a nil error never happens; io.EOF before the first
// header byte surfaces unchanged so callers can distinguish clean
// connection teardown.
func readRequestFrame[E comparable](br *bufio.Reader, cod elemCodec, maxElements int) (*wireRequest[E], error) {
	var hdr [frameOverhead]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		return nil, err // io.EOF here = clean close between frames
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		return nil, fmt.Errorf("transport: short frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length < 5 || length > maxFrameLen {
		return nil, fmt.Errorf("transport: bad frame length %d", length)
	}
	req := &wireRequest[E]{
		stream: binary.LittleEndian.Uint32(hdr[4:8]),
		op:     hdr[8],
		size:   int64(4 + length),
	}
	body := int(length) - 5 // payload bytes still on the wire
	if req.op&opResponseBit != 0 {
		return nil, fmt.Errorf("transport: response op %#x in request frame", req.op)
	}

	// Traceparent prefix: u8 len | bytes.
	var tl [1]byte
	if body < 1 {
		return nil, errors.New("transport: truncated request payload")
	}
	if _, err := io.ReadFull(br, tl[:]); err != nil {
		return nil, fmt.Errorf("transport: read traceparent length: %w", err)
	}
	body--
	if int(tl[0]) > body {
		return nil, errors.New("transport: traceparent overruns frame")
	}
	if tl[0] > 0 {
		tp := make([]byte, tl[0])
		if _, err := io.ReadFull(br, tp); err != nil {
			return nil, fmt.Errorf("transport: read traceparent: %w", err)
		}
		body -= len(tp)
		req.tp = string(tp)
	}

	readDims := func(n int) ([]uint32, error) {
		var b [8]byte
		if body < 4*n {
			return nil, errors.New("transport: truncated request dimensions")
		}
		if _, err := io.ReadFull(br, b[:4*n]); err != nil {
			return nil, fmt.Errorf("transport: read dimensions: %w", err)
		}
		body -= 4 * n
		dims := make([]uint32, n)
		for i := range dims {
			dims[i] = binary.LittleEndian.Uint32(b[4*i:])
		}
		return dims, nil
	}
	// drain discards the remaining payload (bounded by the declared frame
	// length, which the peer must actually transmit) so an over-cap
	// request keeps the connection framed.
	drain := func() error {
		_, err := io.CopyN(io.Discard, br, int64(body))
		body = 0
		return err
	}
	// slab validates total elements against the remaining payload and the
	// device cap, then reads them zero-copy into a fresh slab.
	slab := func(total uint64, capMsg string) ([]E, error) {
		if total != uint64(body)/uint64(cod.size) || total*uint64(cod.size) != uint64(body) {
			return nil, fmt.Errorf("transport: %d elements do not match %d payload bytes", total, body)
		}
		if total > uint64(maxElements) {
			req.capErr = capMsg
			return nil, drain()
		}
		dst := make([]E, total)
		if err := readElems(br, dst, cod.size); err != nil {
			return nil, fmt.Errorf("transport: read elements: %w", err)
		}
		body = 0
		return dst, nil
	}

	switch req.op {
	case opPing:
		if body != 0 {
			return nil, fmt.Errorf("transport: ping frame carries %d payload bytes", body)
		}
	case opCompute:
		dims, err := readDims(1)
		if err != nil {
			return nil, err
		}
		n := uint64(dims[0])
		x, err := slab(n, fmt.Sprintf("compute: x of %d elements exceeds the device cap of %d", n, maxElements))
		if err != nil {
			return nil, err
		}
		req.x = x
	case opStore, opComputeBatch:
		dims, err := readDims(2)
		if err != nil {
			return nil, err
		}
		rows, cols := uint64(dims[0]), uint64(dims[1])
		noun, capNoun := "store", "block"
		if req.op == opComputeBatch {
			noun, capNoun = "compute-batch", "X"
		}
		data, err := slab(rows*cols, fmt.Sprintf("%s: %s of %d elements exceeds the device cap of %d", noun, capNoun, rows*cols, maxElements))
		if err != nil {
			return nil, err
		}
		if req.capErr == "" {
			m := matrix.FromSlice(int(rows), int(cols), data)
			if req.op == opStore {
				req.block = m
			} else {
				req.xmat = m
			}
		}
	default:
		return nil, fmt.Errorf("transport: unknown request op %#x", req.op)
	}
	if body != 0 {
		return nil, fmt.Errorf("transport: %d trailing payload bytes", body)
	}
	return req, nil
}
