package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzMaxElements keeps fuzz-driven allocations small: the decoder promises
// to validate dimensions against the frame length and this cap BEFORE
// allocating, so no input may allocate more than this many elements.
const fuzzMaxElements = 1 << 12

// FuzzWireFrame throws arbitrary bytes at both v3 frame decoders. The
// invariants: they never panic, never allocate beyond the declared caps,
// and on malformed input they return an error (a nil frame with a nil
// error must be impossible).
func FuzzWireFrame(f *testing.F) {
	// A valid ping, compute, store, and compute-batch frame, plus broken
	// variants: truncated payload, oversized length prefix, response bit in
	// a request, dimension/length mismatch, and over-cap dimensions.
	le64 := func(vals ...uint64) []byte {
		var b []byte
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, v)
		}
		return b
	}
	ping := []byte{6, 0, 0, 0, 7, 0, 0, 0, 1, 0}
	compute := append([]byte{26, 0, 0, 0, 2, 0, 0, 0, 3, 0, 2, 0, 0, 0}, le64(5, 7)...)
	store := append([]byte{30, 0, 0, 0, 1, 0, 0, 0, 2, 0, 1, 0, 0, 0, 2, 0, 0, 0}, le64(2, 3)...)
	batch := append([]byte{30, 0, 0, 0, 1, 0, 0, 0, 4, 0, 2, 0, 0, 0, 1, 0, 0, 0}, le64(8, 9)...)
	pingResp := []byte{10, 0, 0, 0, 7, 0, 0, 0, 0x81, 0, 0, 0, 0, 0}
	computeResp := append(append([]byte{22, 0, 0, 0, 2, 0, 0, 0, 0x83, 0, 1, 0, 0, 0}, le64(31)...), 0, 0, 0, 0)
	seeds := [][]byte{
		ping, compute, store, batch, pingResp, computeResp,
		compute[:10],                         // truncated mid-payload
		{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4}, // absurd length prefix
		{6, 0, 0, 0, 7, 0, 0, 0, 0x81, 0},    // response op in request position
		append([]byte{14, 0, 0, 0, 1, 0, 0, 0, 3, 0, 0xff, 0xff, 0xff, 0xff}, le64(1)...), // n vs length mismatch
		{18, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0xff, 0xff, 0, 0, 0xff, 0xff, 0, 0},               // over-cap dims
		append(ping, compute...), // two frames back to back
		{},
		{0},
		// Batch response whose rows*cols*size overflows uint64: the length
		// check must use division so the product cannot wrap past it.
		{22, 0, 0, 0, 1, 0, 0, 0, 0x84, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 2, 3},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cod, _ := codecFor[uint64]()
	f.Fuzz(func(t *testing.T, data []byte) {
		// Request decoder: consume frames until the stream errors or dries up.
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 16; i++ {
			req, err := readRequestFrame[uint64](br, cod, fuzzMaxElements)
			if err != nil {
				break
			}
			if req == nil {
				t.Fatal("nil request with nil error")
			}
			if len(req.x) > fuzzMaxElements {
				t.Fatalf("decoder allocated %d elements over the %d cap", len(req.x), fuzzMaxElements)
			}
			if req.block != nil && req.block.Rows()*req.block.Cols() > fuzzMaxElements {
				t.Fatal("block over the element cap")
			}
			if req.xmat != nil && req.xmat.Rows()*req.xmat.Cols() > fuzzMaxElements {
				t.Fatal("xmat over the element cap")
			}
		}
		// Response decoder over the same bytes.
		br = bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 16; i++ {
			_, wr, err := readResponseFrame[uint64](br, cod)
			if err != nil {
				break
			}
			if wr == nil {
				t.Fatal("nil response with nil error")
			}
		}
	})
}
