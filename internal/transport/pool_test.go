package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/obs"
)

// TestMuxManyStreamsOneConnection fires 64 concurrent computes through one
// pool and asserts they all multiplex onto a single server-side connection
// — the tentpole property of the v3 transport.
func TestMuxManyStreamsOneConnection(t *testing.T) {
	f := field.Prime{}
	reg := obs.New()
	srv, err := NewDeviceServerOptions[uint64](f, "127.0.0.1:0", Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	storeBlock(t, srv.Addr(), []uint64{2, 3})

	client := Client[uint64]{F: f, Timeout: 5 * time.Second, Pool: NewPool[uint64]()}
	const parallel = 64
	var wg sync.WaitGroup
	errs := make([]error, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			y, err := client.Compute(t.Context(), srv.Addr(), []uint64{5, 7})
			if err == nil && (len(y) != 1 || y[0] != 31) {
				err = errors.New("wrong result")
			}
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
	}
	if got := srv.connsV3.Value(); got != 1 {
		t.Fatalf("server v3 connections = %v, want 1 (all streams share one)", got)
	}
	if d := client.ConnDebug(srv.Addr()); d.Proto != "v3" {
		t.Fatalf("pool debug = %+v, want live v3 connection", d)
	}
	if got := srv.Stats().Computes; got != parallel {
		t.Fatalf("server computes = %d, want %d", got, parallel)
	}
}

// TestHeartbeatKeepsConnectionAlive: with a server idle timeout shorter
// than the test's idle window, only the pool's piggybacked heartbeats can
// keep the negotiated connection open — no re-negotiation may occur.
func TestHeartbeatKeepsConnectionAlive(t *testing.T) {
	f := field.Prime{}
	srv, err := NewDeviceServerOptions[uint64](f, "127.0.0.1:0", Options{Timeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool := NewPool[uint64]()
	pool.heartbeat = 50 * time.Millisecond
	reg := obs.New()
	client := Client[uint64]{F: f, Timeout: 2 * time.Second, Metrics: reg, Pool: pool}
	if err := client.Ping(t.Context(), srv.Addr()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(700 * time.Millisecond) // several server idle timeouts
	last, ok := client.LastContact(srv.Addr())
	if !ok {
		t.Fatal("no LastContact despite heartbeats")
	}
	if age := time.Since(last); age > 300*time.Millisecond {
		t.Fatalf("LastContact is %v old, heartbeats are not flowing", age)
	}
	if err := client.Ping(t.Context(), srv.Addr()); err != nil {
		t.Fatalf("ping after idle window: %v", err)
	}
	if n := reg.Counter(obs.MetricTransportNegotiations, "", obs.L("outcome", "v3")).Value(); n != 1 {
		t.Fatalf("v3 negotiations = %d, want 1 (connection must have survived idle)", n)
	}
	if hb := reg.Counter(obs.MetricTransportHeartbeats, "", obs.L("outcome", "ok")).Value(); hb < 3 {
		t.Fatalf("ok heartbeats = %d, want several over the idle window", hb)
	}
}

// TestPoolReconnectsAfterServerRestart kills the device mid-lifetime and
// restarts it on the same address: the pooled connection dies, and the
// next request must transparently redial instead of failing.
func TestPoolReconnectsAfterServerRestart(t *testing.T) {
	f := field.Prime{}
	srv, err := NewDeviceServer[uint64](f, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client := Client[uint64]{F: f, Timeout: 2 * time.Second, Pool: NewPool[uint64]()}
	if err := client.Ping(t.Context(), addr); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewDeviceServer[uint64](f, addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	// The pooled connection is now a corpse; the request must retry on a
	// fresh dial without surfacing the broken-connection error.
	if err := client.Ping(t.Context(), addr); err != nil {
		t.Fatalf("ping after restart: %v", err)
	}
}

// TestPooledContextCancelPrompt cancels a request whose server completed
// the handshake but never answers frames: the multiplexed wait must abort
// promptly with context.Canceled, well before the RPC timeout.
func TestPooledContextCancelPrompt(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				// Speak just enough v3 to pass negotiation, then go silent.
				buf := make([]byte, helloLen)
				if _, err := io.ReadFull(conn, buf); err != nil {
					return
				}
				h := serverHello(1, helloOK)
				_, _ = conn.Write(h[:])
				select {} // never answer; the test process exits anyway
			}()
		}
	}()

	client := Client[uint64]{F: field.Prime{}, Timeout: 30 * time.Second, Pool: NewPool[uint64]()}
	ctx, cancel := context.WithCancel(t.Context())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		done <- client.Ping(ctx, ln.Addr().String())
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("cancellation took %v, want prompt abort", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pooled request ignored context cancellation")
	}
}

// TestSharedPoolIsPerElementType: the default pools are singletons per
// element type, so every Client[uint64] shares device connections.
func TestSharedPoolIsPerElementType(t *testing.T) {
	if SharedPool[uint64]() != SharedPool[uint64]() {
		t.Fatal("SharedPool[uint64] is not a singleton")
	}
	if any(SharedPool[uint64]()) == any(SharedPool[float64]()) {
		t.Fatal("pools for distinct element types must be distinct")
	}
}
