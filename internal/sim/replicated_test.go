package sim

import (
	"errors"
	"testing"
	"time"

	"github.com/scec/scec/internal/matrix"
)

func replicatedConfig(blocks, replicas int) ReplicatedConfig {
	groups := make([][]DeviceProfile, blocks)
	for j := range groups {
		groups[j] = make([]DeviceProfile, replicas)
		for r := range groups[j] {
			groups[j][r] = DefaultProfile()
		}
	}
	return ReplicatedConfig{Replicas: groups, UserComputeRate: 1e9, Seed: 1}
}

func TestRunReplicatedDecodes(t *testing.T) {
	f, enc, a, x := setup(t)
	cfg := replicatedConfig(len(enc.Blocks), 2)
	got, rep, err := RunReplicated(f, enc, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.MulVec[uint64](f, a, x)
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("replicated pipeline decoded the wrong result")
		}
	}
	if rep.StorageOverhead != 2 {
		t.Fatalf("storage overhead = %g, want 2 (two replicas)", rep.StorageOverhead)
	}
	usedPerBlock := map[int]int{}
	for _, r := range rep.Replicas {
		if r.Used {
			usedPerBlock[r.Block]++
		}
	}
	for j := 0; j < len(enc.Blocks); j++ {
		if usedPerBlock[j] != 1 {
			t.Fatalf("block %d consumed %d replicas, want exactly 1", j, usedPerBlock[j])
		}
	}
}

func TestRunReplicatedMasksStraggler(t *testing.T) {
	f, enc, _, x := setup(t)

	// Unreplicated baseline with a severe straggler on device 0.
	slow := uniformConfig(len(enc.Blocks))
	slow.Profiles[0].StragglerFactor = 1000
	_, slowRep, err := Run(f, enc, x, slow)
	if err != nil {
		t.Fatal(err)
	}

	// Replicated: the same straggler, but each block has a nominal backup.
	cfg := replicatedConfig(len(enc.Blocks), 2)
	cfg.Replicas[0][0].StragglerFactor = 1000
	_, fastRep, err := RunReplicated(f, enc, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fastRep.CompletionTime >= slowRep.CompletionTime {
		t.Fatalf("replication should mask the straggler: %v vs %v", fastRep.CompletionTime, slowRep.CompletionTime)
	}
	// The straggling replica must not be the one consumed.
	for _, r := range fastRep.Replicas {
		if r.Block == 0 && r.Replica == 0 && r.Used {
			t.Fatal("the straggling replica was consumed despite a faster backup")
		}
	}
}

func TestRunReplicatedSurvivesFailures(t *testing.T) {
	f, enc, a, x := setup(t)
	cfg := replicatedConfig(len(enc.Blocks), 2)
	// Fail the first replica of every block; the backups carry the run.
	for j := range cfg.Replicas {
		cfg.Replicas[j][0].FailProb = 1
	}
	got, rep, err := RunReplicated(f, enc, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.MulVec[uint64](f, a, x)
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("wrong result after failover")
		}
	}
	for _, r := range rep.Replicas {
		if r.Replica == 0 && !r.Failed {
			t.Fatal("primary replicas should all be failed")
		}
		if r.Replica == 0 && r.Used {
			t.Fatal("failed replica marked used")
		}
	}
}

func TestRunReplicatedAllReplicasFail(t *testing.T) {
	f, enc, _, x := setup(t)
	cfg := replicatedConfig(len(enc.Blocks), 2)
	for r := range cfg.Replicas[1] {
		cfg.Replicas[1][r].FailProb = 1
	}
	if _, _, err := RunReplicated(f, enc, x, cfg); !errors.Is(err, ErrAllReplicasFailed) {
		t.Fatalf("err = %v, want ErrAllReplicasFailed", err)
	}
}

func TestRunReplicatedValidation(t *testing.T) {
	f, enc, _, x := setup(t)

	cfg := replicatedConfig(len(enc.Blocks)-1, 1)
	if _, _, err := RunReplicated(f, enc, x, cfg); err == nil {
		t.Error("replica-group count mismatch should error")
	}

	cfg = replicatedConfig(len(enc.Blocks), 1)
	cfg.Replicas[0] = nil
	if _, _, err := RunReplicated(f, enc, x, cfg); err == nil {
		t.Error("empty replica group should error")
	}

	cfg = replicatedConfig(len(enc.Blocks), 1)
	cfg.UserComputeRate = 0
	if _, _, err := RunReplicated(f, enc, x, cfg); err == nil {
		t.Error("zero user compute rate should error")
	}

	cfg = replicatedConfig(len(enc.Blocks), 1)
	cfg.Replicas[0][0].Latency = -time.Second
	if _, _, err := RunReplicated(f, enc, x, cfg); err == nil {
		t.Error("invalid profile should error")
	}

	cfg = replicatedConfig(len(enc.Blocks), 1)
	if _, _, err := RunReplicated(f, enc, x[:1], cfg); err == nil {
		t.Error("input length mismatch should error")
	}
}

func TestSingleReplicaMatchesBaseRunResult(t *testing.T) {
	f, enc, _, x := setup(t)
	base := uniformConfig(len(enc.Blocks))
	wantVec, _, err := Run(f, enc, x, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := replicatedConfig(len(enc.Blocks), 1)
	got, rep, err := RunReplicated(f, enc, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != wantVec[i] {
			t.Fatal("single-replica result differs from base run")
		}
	}
	if rep.StorageOverhead != 1 {
		t.Fatalf("single replica overhead = %g, want 1", rep.StorageOverhead)
	}

}
