package sim

import (
	"math/rand/v2"
	"testing"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
)

// TestRunRecordsStageMetrics checks a simulated run reports the pipeline
// stages under the same metric names a real transport run uses, on the
// virtual clock, plus per-device result gauges.
func TestRunRecordsStageMetrics(t *testing.T) {
	f := field.Prime{}
	rng := rand.New(rand.NewPCG(7, 9))
	const m, l, r = 12, 8, 6

	s, err := coding.New(m, r)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, m, l)
	enc, err := coding.Encode[uint64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.New()
	cfg := Config{UserComputeRate: 1e9, Seed: 1, Metrics: reg}
	cfg.Profiles = make([]DeviceProfile, s.Devices())
	for j := range cfg.Profiles {
		cfg.Profiles[j] = DefaultProfile()
	}
	x := matrix.RandomVec[uint64](f, rng, l)
	_, rep, err := Run(f, enc, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StoreTime <= 0 {
		t.Fatalf("StoreTime = %v, want > 0", rep.StoreTime)
	}

	snap := reg.Snapshot()
	stages := map[string]int64{}
	devices := 0
	var simRuns float64
	for _, fam := range snap.Metrics {
		switch fam.Name {
		case obs.MetricStageSeconds:
			for _, sr := range fam.Series {
				stages[sr.Labels["stage"]] += sr.Count
			}
		case obs.MetricSimDeviceResultSeconds:
			for _, sr := range fam.Series {
				if sr.Value <= 0 {
					t.Errorf("device %s result gauge = %g, want > 0", sr.Labels["device"], sr.Value)
				}
				devices++
			}
		case obs.MetricSimRuns:
			simRuns = fam.Series[0].Value
		}
	}
	// The simulator must export the stages it models: store, one compute
	// per device, gather, and decode (allocate/encode happen before Run and
	// are recorded by scec.Deploy against the same names).
	if stages[obs.StageStore] != 1 || stages[obs.StageGather] != 1 || stages[obs.StageDecode] != 1 {
		t.Errorf("store/gather/decode counts = %v, want 1 each", stages)
	}
	if got := stages[obs.StageCompute]; got != int64(s.Devices()) {
		t.Errorf("compute stage observed %d times, want one per device (%d)", got, s.Devices())
	}
	if devices != s.Devices() {
		t.Errorf("result gauges for %d devices, want %d", devices, s.Devices())
	}
	if simRuns != 1 {
		t.Errorf("%s = %g, want 1", obs.MetricSimRuns, simRuns)
	}
}

// TestFailedRunSkipsAggregateStages: a failed device aborts before the
// store/gather/decode observations and the runs counter.
func TestFailedRunSkipsAggregateStages(t *testing.T) {
	f := field.Prime{}
	rng := rand.New(rand.NewPCG(7, 9))
	s, err := coding.New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, 6, 4)
	enc, err := coding.Encode[uint64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	cfg := Config{UserComputeRate: 1e9, Seed: 1, Metrics: reg}
	cfg.Profiles = make([]DeviceProfile, s.Devices())
	for j := range cfg.Profiles {
		cfg.Profiles[j] = DefaultProfile()
	}
	cfg.Profiles[0].FailProb = 1
	if _, _, err := Run(f, enc, matrix.RandomVec[uint64](f, rng, 4), cfg); err == nil {
		t.Fatal("run with a guaranteed failure succeeded")
	}
	for _, fam := range reg.Snapshot().Metrics {
		if fam.Name == obs.MetricSimRuns {
			t.Fatalf("failed run incremented %s", obs.MetricSimRuns)
		}
		if fam.Name == obs.MetricStageSeconds {
			for _, sr := range fam.Series {
				if st := sr.Labels["stage"]; st == obs.StageGather || st == obs.StageDecode {
					t.Fatalf("failed run observed stage %q", st)
				}
			}
		}
	}
}
