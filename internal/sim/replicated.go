package sim

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
)

// Remark 1 of the paper observes that redundancy can also buy a processing-
// delay guarantee, and §VI leaves fault handling to future work. This file
// implements the simplest sound mechanism on top of the unchanged coding
// design: block replication. Each logical coded block B_j·T is provisioned
// on one or more devices; the user consumes the first replica that responds
// and ignores stragglers and failures. Security is unaffected — every
// replica of block j holds exactly the rows of B_j·T, so the per-device
// view is the same as in the base scheme (replicas of the *same* block
// learn nothing more together; replicas of *different* blocks colluding is
// the §VI threat model handled by coding.CollusionScheme).
//
// This file studies the mechanism under the virtual clock; internal/fleet is
// its production counterpart over the real TCP transport, adding hedging,
// retries, circuit breakers, and background standby self-repair.

// ErrAllReplicasFailed is returned when every replica of some logical block
// failed, making decoding impossible.
var ErrAllReplicasFailed = errors.New("sim: all replicas of a block failed")

// ReplicatedConfig configures a replicated run.
type ReplicatedConfig struct {
	// Replicas[j] lists the device profiles hosting copies of coded block
	// j. Every block needs at least one replica.
	Replicas [][]DeviceProfile
	// UserComputeRate is the user's field-ops-per-second rate for decoding.
	UserComputeRate float64
	// Seed drives failure sampling.
	Seed uint64
}

// ReplicaReport is one replica's outcome.
type ReplicaReport struct {
	// Block is the logical coded-block index, Replica the copy index.
	Block, Replica int
	// ResultArrives is when this replica's result reaches the user.
	ResultArrives time.Duration
	// Failed reports whether the replica never responded.
	Failed bool
	// Used reports whether the user consumed this replica's result.
	Used bool
}

// ReplicatedReport summarizes a replicated run.
type ReplicatedReport struct {
	// Replicas holds every replica's outcome, grouped by block.
	Replicas []ReplicaReport
	// CompletionTime is when the user finished decoding: the slowest block's
	// fastest surviving replica, plus decode time.
	CompletionTime time.Duration
	// StorageOverhead is the ratio of provisioned coded rows (across all
	// replicas) to the m+r rows the base scheme stores.
	StorageOverhead float64
}

// RunReplicated simulates the replicated protocol: every replica of every
// block computes independently; per block the earliest non-failed result is
// consumed; decoding proceeds once every block has a survivor.
func RunReplicated[E comparable](f field.Field[E], enc *coding.Encoding[E], x []E, cfg ReplicatedConfig) ([]E, ReplicatedReport, error) {
	if enc.Scheme == nil {
		return nil, ReplicatedReport{}, errors.New("sim: encoding has no structured scheme attached")
	}
	s := enc.Scheme
	if len(cfg.Replicas) != len(enc.Blocks) {
		return nil, ReplicatedReport{}, fmt.Errorf("sim: %d replica groups for %d blocks", len(cfg.Replicas), len(enc.Blocks))
	}
	if cfg.UserComputeRate <= 0 {
		return nil, ReplicatedReport{}, fmt.Errorf("sim: user compute rate %g must be positive", cfg.UserComputeRate)
	}
	l := len(x)
	if l != enc.Blocks[0].Cols() {
		return nil, ReplicatedReport{}, fmt.Errorf("sim: input vector length %d, coded rows have %d columns", l, enc.Blocks[0].Cols())
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x3e911ca))
	rep := ReplicatedReport{}
	y := make([]E, 0, s.M()+s.R())
	var latest time.Duration
	provisionedRows := 0

	for j, group := range cfg.Replicas {
		if len(group) == 0 {
			return nil, ReplicatedReport{}, fmt.Errorf("sim: block %d has no replicas", j)
		}
		rows := enc.Blocks[j].Rows()
		best := -1
		var bestArrive time.Duration
		groupStart := len(rep.Replicas)
		for rIdx, p := range group {
			if err := p.Validate(); err != nil {
				return nil, ReplicatedReport{}, fmt.Errorf("sim: block %d replica %d: %w", j, rIdx, err)
			}
			provisionedRows += rows
			fieldOps := int64(rows) * int64(2*l-1)
			arrive := p.Latency + seconds(float64(l)/p.UplinkRate) +
				seconds(float64(fieldOps)/p.ComputeRate*p.StragglerFactor) +
				p.Latency + seconds(float64(rows)/p.DownlinkRate)
			failed := rng.Float64() < p.FailProb
			rep.Replicas = append(rep.Replicas, ReplicaReport{
				Block: j, Replica: rIdx, ResultArrives: arrive, Failed: failed,
			})
			if failed {
				continue
			}
			if best < 0 || arrive < bestArrive {
				best, bestArrive = rIdx, arrive
			}
		}
		if best < 0 {
			return nil, rep, fmt.Errorf("%w: block %d (%d replicas)", ErrAllReplicasFailed, j, len(group))
		}
		rep.Replicas[groupStart+best].Used = true
		y = append(y, enc.ComputeDevice(f, j, x)...)
		if bestArrive > latest {
			latest = bestArrive
		}
	}

	ax, err := coding.Decode(f, s, y)
	if err != nil {
		return nil, rep, fmt.Errorf("sim: decode: %w", err)
	}
	rep.CompletionTime = latest + seconds(float64(s.M())/cfg.UserComputeRate)
	rep.StorageOverhead = float64(provisionedRows) / float64(s.M()+s.R())
	return ax, rep, nil
}
