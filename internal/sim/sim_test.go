package sim

import (
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(13, 29)) }

// setup builds an encoding for m=6, l=4, r=2 over the prime field.
func setup(t *testing.T) (field.Prime, *coding.Encoding[uint64], *matrix.Dense[uint64], []uint64) {
	t.Helper()
	f := field.Prime{}
	rng := testRNG()
	s, err := coding.New(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random[uint64](f, rng, 6, 4)
	enc, err := coding.Encode[uint64](f, s, a, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.RandomVec[uint64](f, rng, 4)
	return f, enc, a, x
}

func uniformConfig(devices int) Config {
	profiles := make([]DeviceProfile, devices)
	for j := range profiles {
		profiles[j] = DefaultProfile()
	}
	return Config{Profiles: profiles, UserComputeRate: 1e9, Seed: 1}
}

func TestRunDecodesCorrectly(t *testing.T) {
	f, enc, a, x := setup(t)
	cfg := uniformConfig(len(enc.Blocks))
	got, rep, err := Run(f, enc, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.MulVec[uint64](f, a, x)
	if !matrix.VecEqual[uint64](f, got, want) {
		t.Fatal("simulated pipeline decoded the wrong result")
	}
	if rep.CompletionTime <= 0 {
		t.Fatal("completion time must be positive")
	}
	if rep.DecodeOps != 6 {
		t.Fatalf("decode ops = %d, want m = 6", rep.DecodeOps)
	}
}

func TestResourceAccountingMatchesCostModel(t *testing.T) {
	// The simulator's per-device counters must match the Eq. (1) terms: a
	// device with v rows of length l stores v·l + l + v values, multiplies
	// v·l times and adds v·(l−1) times, and sends v values.
	f, enc, _, x := setup(t)
	cfg := uniformConfig(len(enc.Blocks))
	_, rep, err := Run(f, enc, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := 4
	for _, d := range rep.Devices {
		v := d.Rows
		if d.StorageValues != v*l+l+v {
			t.Fatalf("device %d storage = %d, want %d", d.Device, d.StorageValues, v*l+l+v)
		}
		if d.FieldOps != int64(v*l+v*(l-1)) {
			t.Fatalf("device %d ops = %d, want %d", d.Device, d.FieldOps, v*l+v*(l-1))
		}
		if d.ValuesSent != v {
			t.Fatalf("device %d sent %d values, want %d", d.Device, d.ValuesSent, v)
		}
	}
	// Totals: m+r rows across all devices.
	if rep.TotalValuesSent != 8 {
		t.Fatalf("total values sent = %d, want m+r = 8", rep.TotalValuesSent)
	}
}

func TestCompletionTimeIsMaxOverDevices(t *testing.T) {
	f, enc, _, x := setup(t)
	cfg := uniformConfig(len(enc.Blocks))
	_, rep, err := Run(f, enc, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var latest time.Duration
	for _, d := range rep.Devices {
		if d.ResultArrives > latest {
			latest = d.ResultArrives
		}
	}
	if rep.CompletionTime <= latest {
		t.Fatal("completion must include decode time after the last arrival")
	}
}

func TestStragglerDelaysCompletion(t *testing.T) {
	f, enc, _, x := setup(t)
	cfg := uniformConfig(len(enc.Blocks))
	_, base, err := Run(f, enc, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow := uniformConfig(len(enc.Blocks))
	slow.Profiles[0].StragglerFactor = 50
	_, delayed, err := Run(f, enc, x, slow)
	if err != nil {
		t.Fatal(err)
	}
	if delayed.CompletionTime <= base.CompletionTime {
		t.Fatalf("straggler should delay completion: %v vs %v", delayed.CompletionTime, base.CompletionTime)
	}
	if delayed.Devices[0].ComputeDone <= base.Devices[0].ComputeDone {
		t.Fatal("straggler's own compute time should grow")
	}
}

func TestDeviceFailureAborts(t *testing.T) {
	f, enc, _, x := setup(t)
	cfg := uniformConfig(len(enc.Blocks))
	cfg.Profiles[1].FailProb = 1
	_, rep, err := Run(f, enc, x, cfg)
	if !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("err = %v, want ErrDeviceFailed", err)
	}
	if !rep.Devices[1].Failed {
		t.Fatal("failed device not flagged in report")
	}
}

func TestFailureSamplingIsSeeded(t *testing.T) {
	f, enc, _, x := setup(t)
	cfg := uniformConfig(len(enc.Blocks))
	for j := range cfg.Profiles {
		cfg.Profiles[j].FailProb = 0.5
	}
	_, rep1, err1 := Run(f, enc, x, cfg)
	_, rep2, err2 := Run(f, enc, x, cfg)
	if (err1 == nil) != (err2 == nil) {
		t.Fatal("same seed must reproduce the same failure outcome")
	}
	for j := range rep1.Devices {
		if rep1.Devices[j].Failed != rep2.Devices[j].Failed {
			t.Fatal("same seed must reproduce identical per-device failures")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	f, enc, _, x := setup(t)

	cfg := uniformConfig(len(enc.Blocks) - 1)
	if _, _, err := Run(f, enc, x, cfg); err == nil {
		t.Error("profile count mismatch should error")
	}

	cfg = uniformConfig(len(enc.Blocks))
	cfg.UserComputeRate = 0
	if _, _, err := Run(f, enc, x, cfg); err == nil {
		t.Error("zero user compute rate should error")
	}

	cfg = uniformConfig(len(enc.Blocks))
	cfg.Profiles[0].ComputeRate = 0
	if _, _, err := Run(f, enc, x, cfg); err == nil {
		t.Error("invalid device profile should error")
	}

	cfg = uniformConfig(len(enc.Blocks))
	if _, _, err := Run(f, enc, x[:2], cfg); err == nil {
		t.Error("input length mismatch should error")
	}

	bare := &coding.Encoding[uint64]{Blocks: enc.Blocks}
	if _, _, err := Run(f, bare, x, cfg); err == nil {
		t.Error("encoding without a scheme should error")
	}
}

func TestProfileValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*DeviceProfile)
		ok   bool
	}{
		{"default", func(*DeviceProfile) {}, true},
		{"zero compute", func(p *DeviceProfile) { p.ComputeRate = 0 }, false},
		{"zero uplink", func(p *DeviceProfile) { p.UplinkRate = 0 }, false},
		{"zero downlink", func(p *DeviceProfile) { p.DownlinkRate = 0 }, false},
		{"negative latency", func(p *DeviceProfile) { p.Latency = -time.Second }, false},
		{"sub-one straggler", func(p *DeviceProfile) { p.StragglerFactor = 0.5 }, false},
		{"fail prob above one", func(p *DeviceProfile) { p.FailProb = 1.5 }, false},
		{"fail prob one", func(p *DeviceProfile) { p.FailProb = 1 }, true},
	}
	for _, tc := range cases {
		p := DefaultProfile()
		tc.mut(&p)
		if err := p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}
