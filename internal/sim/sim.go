// Package sim is an event-level simulator of the SCEC protocol on an edge
// network. It executes the real encoding/compute/decode code paths from
// package coding, while modelling — on a virtual clock, deterministically —
// the performance dimensions the cost model abstracts away: compute rates,
// up/downlink rates, network latency, stragglers, and device failures.
//
// The paper assumes every selected device responds correctly and in time
// (§II-A) and remarks (Remark 1) that because Lemma 1 caps per-device work
// at r rows, completion time is bounded. The simulator makes both points
// measurable: completion time is the maximum over device timelines, and a
// failed device aborts the run with ErrDeviceFailed, demonstrating why the
// availability assumption (or straggler-tolerant redundancy) matters.
package sim

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/obs"
)

// ErrDeviceFailed is returned when a device configured to fail never
// delivers its intermediate results, so the user cannot decode.
var ErrDeviceFailed = errors.New("sim: device failed; decoding impossible")

// DeviceProfile models one edge device's performance characteristics.
type DeviceProfile struct {
	// ComputeRate is sustained field operations per second. Must be > 0.
	ComputeRate float64
	// UplinkRate is values/second from the user to the device (delivery of
	// the input vector x). Must be > 0.
	UplinkRate float64
	// DownlinkRate is values/second from the device back to the user
	// (intermediate results). Must be > 0.
	DownlinkRate float64
	// Latency is the one-way network latency between user and device.
	Latency time.Duration
	// StragglerFactor multiplies compute time; 1 is nominal, 3 models a
	// device that is transiently three times slower. Must be >= 1.
	StragglerFactor float64
	// FailProb is the probability the device never responds. Sampled once
	// per run from the run's seeded RNG.
	FailProb float64
}

// Validate reports whether the profile is usable.
func (p DeviceProfile) Validate() error {
	if p.ComputeRate <= 0 || p.UplinkRate <= 0 || p.DownlinkRate <= 0 {
		return fmt.Errorf("sim: rates must be positive, got %+v", p)
	}
	if p.Latency < 0 {
		return fmt.Errorf("sim: negative latency %v", p.Latency)
	}
	if p.StragglerFactor < 1 {
		return fmt.Errorf("sim: straggler factor %g < 1", p.StragglerFactor)
	}
	if p.FailProb < 0 || p.FailProb > 1 {
		return fmt.Errorf("sim: failure probability %g outside [0, 1]", p.FailProb)
	}
	return nil
}

// DefaultProfile is a nominal edge device: 100 MF/s compute, 1M values/s
// links, 5 ms latency, no straggling, no failures.
func DefaultProfile() DeviceProfile {
	return DeviceProfile{
		ComputeRate:     100e6,
		UplinkRate:      1e6,
		DownlinkRate:    1e6,
		Latency:         5 * time.Millisecond,
		StragglerFactor: 1,
	}
}

// Config configures one simulated run.
type Config struct {
	// Profiles holds one profile per participating device, in scheme device
	// order. len(Profiles) must equal the number of coded blocks.
	Profiles []DeviceProfile
	// UserComputeRate is the user device's field-operations-per-second rate,
	// used for the decode step. Must be > 0.
	UserComputeRate float64
	// Seed drives failure sampling.
	Seed uint64
	// Metrics receives the run's telemetry on the virtual clock, under the
	// same metric names a real transport run records (see internal/obs), so
	// simulated and live exports are directly comparable. Nil means
	// obs.Default().
	Metrics *obs.Registry
}

// DeviceReport is the per-device outcome.
type DeviceReport struct {
	// Device is the scheme-order device index.
	Device int
	// Rows is V(B_j), the coded rows the device held and multiplied.
	Rows int
	// FieldOps counts the multiply and add operations the device performed.
	FieldOps int64
	// ValuesSent is the number of intermediate values returned.
	ValuesSent int
	// StorageValues is the number of field values resident on the device:
	// the coded block, the input vector, and the intermediate results
	// (matching the storage term of Eq. (1)).
	StorageValues int
	// XArrives, ComputeDone, and ResultArrives are virtual-clock timestamps
	// (zero is the moment the user starts broadcasting x).
	XArrives, ComputeDone, ResultArrives time.Duration
	// Failed reports whether the device was sampled to fail.
	Failed bool
}

// Report summarizes a run.
type Report struct {
	// Devices holds one report per device.
	Devices []DeviceReport
	// CompletionTime is the virtual time at which the user finished
	// decoding: last result arrival plus decode time.
	CompletionTime time.Duration
	// StoreTime is the virtual duration of the provisioning push: the
	// slowest device's coded block delivered over its uplink. Like the real
	// pipeline's store stage it happens once, before the compute round, and
	// is not part of CompletionTime.
	StoreTime time.Duration
	// DecodeOps is the user-side operation count (m subtractions for the
	// structured scheme).
	DecodeOps int64
	// TotalFieldOps, TotalValuesSent, and TotalStorageValues aggregate the
	// device columns.
	TotalFieldOps      int64
	TotalValuesSent    int
	TotalStorageValues int
}

// Run simulates the full protocol for an encoding produced by
// coding.Encode: broadcast x, compute every device's block, return
// intermediate results, decode. It returns the decoded Ax together with the
// report. A failed device yields ErrDeviceFailed (with the partial report's
// Failed flags set).
func Run[E comparable](f field.Field[E], enc *coding.Encoding[E], x []E, cfg Config) ([]E, Report, error) {
	if enc.Scheme == nil {
		return nil, Report{}, errors.New("sim: encoding has no structured scheme attached")
	}
	s := enc.Scheme
	if len(cfg.Profiles) != len(enc.Blocks) {
		return nil, Report{}, fmt.Errorf("sim: %d profiles for %d devices", len(cfg.Profiles), len(enc.Blocks))
	}
	if cfg.UserComputeRate <= 0 {
		return nil, Report{}, fmt.Errorf("sim: user compute rate %g must be positive", cfg.UserComputeRate)
	}
	for j, p := range cfg.Profiles {
		if err := p.Validate(); err != nil {
			return nil, Report{}, fmt.Errorf("sim: device %d: %w", j, err)
		}
	}
	l := len(x)
	if l != enc.Blocks[0].Cols() {
		return nil, Report{}, fmt.Errorf("sim: input vector length %d, coded rows have %d columns", l, enc.Blocks[0].Cols())
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5cec^uint64(s.M())))
	rep := Report{Devices: make([]DeviceReport, len(enc.Blocks))}
	y := make([]E, 0, s.M()+s.R())
	failed := false

	for j, block := range enc.Blocks {
		p := cfg.Profiles[j]
		rows := block.Rows()
		d := DeviceReport{Device: j, Rows: rows}

		// Device work: rows×l multiplications and rows×(l−1) additions.
		d.FieldOps = int64(rows) * int64(2*l-1)
		d.ValuesSent = rows
		d.StorageValues = rows*l + l + rows

		// Provisioning: the coded block travels cloud→device over the same
		// uplink direction x does; the slowest push bounds the store stage.
		if push := p.Latency + seconds(float64(rows*l)/p.UplinkRate); push > rep.StoreTime {
			rep.StoreTime = push
		}

		d.XArrives = p.Latency + seconds(float64(l)/p.UplinkRate)
		compute := seconds(float64(d.FieldOps) / p.ComputeRate * p.StragglerFactor)
		d.ComputeDone = d.XArrives + compute
		d.ResultArrives = d.ComputeDone + p.Latency + seconds(float64(rows)/p.DownlinkRate)
		d.Failed = rng.Float64() < p.FailProb

		rep.Devices[j] = d
		rep.TotalFieldOps += d.FieldOps
		rep.TotalValuesSent += d.ValuesSent
		rep.TotalStorageValues += d.StorageValues
		if d.Failed {
			failed = true
			continue
		}
		obs.ObserveStage(reg, obs.StageCompute, compute)
		reg.Gauge(obs.MetricSimDeviceResultSeconds,
			"Virtual time at which each simulated device's results reached the user, in seconds.",
			obs.L("device", strconv.Itoa(j))).Set(d.ResultArrives.Seconds())
		y = append(y, enc.ComputeDevice(f, j, x)...)
		if d.ResultArrives > rep.CompletionTime {
			rep.CompletionTime = d.ResultArrives
		}
	}
	if failed {
		return nil, rep, ErrDeviceFailed
	}
	obs.ObserveStage(reg, obs.StageStore, rep.StoreTime)
	// The gather stage mirrors the transport client's: broadcast of x up to
	// the last intermediate result's arrival.
	obs.ObserveStage(reg, obs.StageGather, rep.CompletionTime)

	ax, err := coding.Decode(f, s, y)
	if err != nil {
		return nil, rep, fmt.Errorf("sim: decode: %w", err)
	}
	rep.DecodeOps = int64(s.M())
	decode := seconds(float64(rep.DecodeOps) / cfg.UserComputeRate)
	rep.CompletionTime += decode
	obs.ObserveStage(reg, obs.StageDecode, decode)
	reg.Counter(obs.MetricSimRuns, "Completed simulator runs.").Inc()
	return ax, rep, nil
}

// seconds converts a float64 second count to a Duration.
func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
