// Package sim is an event-level simulator of the SCEC protocol on an edge
// network. It executes the real encoding/compute/decode code paths from
// package coding, while modelling — on a virtual clock, deterministically —
// the performance dimensions the cost model abstracts away: compute rates,
// up/downlink rates, network latency, stragglers, and device failures.
//
// The paper assumes every selected device responds correctly and in time
// (§II-A) and remarks (Remark 1) that because Lemma 1 caps per-device work
// at r rows, completion time is bounded. The simulator makes both points
// measurable: completion time is the maximum over device timelines, and a
// failed device aborts the run with ErrDeviceFailed, demonstrating why the
// availability assumption (or straggler-tolerant redundancy) matters.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"time"

	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/field"
	"github.com/scec/scec/internal/matrix"
	"github.com/scec/scec/internal/obs"
)

// ErrDeviceFailed is returned when a device configured to fail never
// delivers its intermediate results, so the user cannot decode.
var ErrDeviceFailed = errors.New("sim: device failed; decoding impossible")

// DeviceProfile models one edge device's performance characteristics.
type DeviceProfile struct {
	// ComputeRate is sustained field operations per second. Must be > 0.
	ComputeRate float64
	// UplinkRate is values/second from the user to the device (delivery of
	// the input vector x). Must be > 0.
	UplinkRate float64
	// DownlinkRate is values/second from the device back to the user
	// (intermediate results). Must be > 0.
	DownlinkRate float64
	// Latency is the one-way network latency between user and device.
	Latency time.Duration
	// StragglerFactor multiplies compute time; 1 is nominal, 3 models a
	// device that is transiently three times slower. Must be >= 1.
	StragglerFactor float64
	// FailProb is the probability the device never responds. Sampled once
	// per run from the run's seeded RNG.
	FailProb float64
}

// Validate reports whether the profile is usable.
func (p DeviceProfile) Validate() error {
	if p.ComputeRate <= 0 || p.UplinkRate <= 0 || p.DownlinkRate <= 0 {
		return fmt.Errorf("sim: rates must be positive, got %+v", p)
	}
	if p.Latency < 0 {
		return fmt.Errorf("sim: negative latency %v", p.Latency)
	}
	if p.StragglerFactor < 1 {
		return fmt.Errorf("sim: straggler factor %g < 1", p.StragglerFactor)
	}
	if p.FailProb < 0 || p.FailProb > 1 {
		return fmt.Errorf("sim: failure probability %g outside [0, 1]", p.FailProb)
	}
	return nil
}

// DefaultProfile is a nominal edge device: 100 MF/s compute, 1M values/s
// links, 5 ms latency, no straggling, no failures.
func DefaultProfile() DeviceProfile {
	return DeviceProfile{
		ComputeRate:     100e6,
		UplinkRate:      1e6,
		DownlinkRate:    1e6,
		Latency:         5 * time.Millisecond,
		StragglerFactor: 1,
	}
}

// Config configures one simulated run.
type Config struct {
	// Profiles holds one profile per participating device, in scheme device
	// order. len(Profiles) must equal the number of coded blocks.
	Profiles []DeviceProfile
	// UserComputeRate is the user device's field-operations-per-second rate,
	// used for the decode step. Must be > 0.
	UserComputeRate float64
	// Seed drives failure sampling.
	Seed uint64
	// Metrics receives the run's telemetry on the virtual clock, under the
	// same metric names a real transport run records (see internal/obs), so
	// simulated and live exports are directly comparable. Nil means
	// obs.Default().
	Metrics *obs.Registry
}

// DeviceReport is the per-device outcome.
type DeviceReport struct {
	// Device is the scheme-order device index.
	Device int
	// Rows is V(B_j), the coded rows the device held and multiplied.
	Rows int
	// FieldOps counts the multiply and add operations the device performed.
	FieldOps int64
	// ValuesSent is the number of intermediate values returned.
	ValuesSent int
	// StorageValues is the number of field values resident on the device:
	// the coded block, the input vector, and the intermediate results
	// (matching the storage term of Eq. (1)).
	StorageValues int
	// XArrives, ComputeDone, and ResultArrives are virtual-clock timestamps
	// (zero is the moment the user starts broadcasting x).
	XArrives, ComputeDone, ResultArrives time.Duration
	// Failed reports whether the device was sampled to fail.
	Failed bool
}

// Report summarizes a run.
type Report struct {
	// Devices holds one report per device.
	Devices []DeviceReport
	// CompletionTime is the virtual time at which the user finished
	// decoding: last result arrival plus decode time.
	CompletionTime time.Duration
	// StoreTime is the virtual duration of the provisioning push: the
	// slowest device's coded block delivered over its uplink. Like the real
	// pipeline's store stage it happens once, before the compute round, and
	// is not part of CompletionTime.
	StoreTime time.Duration
	// DecodeOps is the user-side operation count (m subtractions for the
	// structured scheme).
	DecodeOps int64
	// TotalFieldOps, TotalValuesSent, and TotalStorageValues aggregate the
	// device columns.
	TotalFieldOps      int64
	TotalValuesSent    int
	TotalStorageValues int
}

// Run simulates the full protocol for an encoding produced by
// coding.Encode: broadcast x, compute every device's block, return
// intermediate results, decode. It returns the decoded Ax together with the
// report. A failed device yields ErrDeviceFailed (with the partial report's
// Failed flags set).
func Run[E comparable](f field.Field[E], enc *coding.Encoding[E], x []E, cfg Config) ([]E, Report, error) {
	y, rep, err := Gather(f, enc, x, cfg)
	if err != nil {
		return nil, rep, err
	}
	reg := cfg.registry()
	ax, err := enc.Code.Decode(y)
	if err != nil {
		return nil, rep, fmt.Errorf("sim: decode: %w", err)
	}
	rep.DecodeOps = DecodeOps(enc)
	decode := seconds(float64(rep.DecodeOps) / cfg.UserComputeRate)
	rep.CompletionTime += decode
	obs.ObserveStage(reg, obs.StageDecode, decode)
	return ax, rep, nil
}

// Gather simulates the protocol up to (and including) the user holding
// every intermediate result: broadcast x, per-device compute on the virtual
// clock, collect B_j·T·x in scheme device order. It performs no decoding —
// the execution engine (or Run) owns that — so the returned report's
// CompletionTime covers only the last result arrival and DecodeOps is zero.
func Gather[E comparable](f field.Field[E], enc *coding.Encoding[E], x []E, cfg Config) ([]E, Report, error) {
	return GatherContext(context.Background(), f, enc, x, cfg)
}

// GatherContext is Gather with cancellation: the per-device loop checks ctx
// between devices, so a caller abandoning a large simulated round (thousands
// of devices, wide batches) gets control back promptly with ctx.Err().
func GatherContext[E comparable](ctx context.Context, f field.Field[E], enc *coding.Encoding[E], x []E, cfg Config) ([]E, Report, error) {
	l := len(x)
	if err := checkRun(enc, l, cfg); err != nil {
		return nil, Report{}, err
	}
	y := make([]E, 0, enc.Code.M()+enc.Code.R())
	rep, err := gatherCore(ctx, enc, l, 1, cfg, func(j int) {
		y = append(y, enc.ComputeDevice(f, j, x)...)
	})
	if err != nil {
		return nil, rep, err
	}
	return y, rep, nil
}

// GatherBatch is Gather for the paper's batch generalization: the input is
// an l×n matrix X and the result is the stacked B·T·X ((m+r)×n). Device
// timelines scale with n: every device receives l·n input values, performs
// n times the field operations, and returns V(B_j)·n intermediate values.
func GatherBatch[E comparable](f field.Field[E], enc *coding.Encoding[E], x *matrix.Dense[E], cfg Config) (*matrix.Dense[E], Report, error) {
	return GatherBatchContext(context.Background(), f, enc, x, cfg)
}

// GatherBatchContext is GatherBatch with cancellation, checking ctx between
// device computations like GatherContext.
func GatherBatchContext[E comparable](ctx context.Context, f field.Field[E], enc *coding.Encoding[E], x *matrix.Dense[E], cfg Config) (*matrix.Dense[E], Report, error) {
	if err := checkRun(enc, x.Rows(), cfg); err != nil {
		return nil, Report{}, err
	}
	blocks := make([]*matrix.Dense[E], len(enc.Blocks))
	rep, err := gatherCore(ctx, enc, x.Rows(), x.Cols(), cfg, func(j int) {
		blocks[j] = enc.ComputeDeviceBatch(f, j, x)
	})
	if err != nil {
		return nil, rep, err
	}
	return matrix.VStack(blocks...), rep, nil
}

// checkRun validates the configuration against the encoding and the input
// width (the vector length, or the batch matrix's row count).
func checkRun[E comparable](enc *coding.Encoding[E], l int, cfg Config) error {
	if enc.Code == nil {
		return errors.New("sim: encoding has no code attached")
	}
	if len(cfg.Profiles) != len(enc.Blocks) {
		return fmt.Errorf("sim: %d profiles for %d devices", len(cfg.Profiles), len(enc.Blocks))
	}
	if cfg.UserComputeRate <= 0 {
		return fmt.Errorf("sim: user compute rate %g must be positive", cfg.UserComputeRate)
	}
	for j, p := range cfg.Profiles {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("sim: device %d: %w", j, err)
		}
	}
	if l != enc.Blocks[0].Cols() {
		return fmt.Errorf("sim: input has %d rows, coded rows have %d columns", l, enc.Blocks[0].Cols())
	}
	return nil
}

// registry resolves the run's metrics destination.
func (cfg Config) registry() *obs.Registry {
	if cfg.Metrics != nil {
		return cfg.Metrics
	}
	return obs.Default()
}

// DecodeOps prices the user-side decode of one result column under the
// encoding's code: m subtractions for the structured Eq. (8) scheme,
// (m+r)² operations for codes that solve against a factored coefficient
// matrix (e.g. the t-collusion Cauchy design).
func DecodeOps[E comparable](enc *coding.Encoding[E]) int64 {
	if enc.Scheme != nil {
		return int64(enc.Scheme.M())
	}
	n := int64(enc.Code.M() + enc.Code.R())
	return n * n
}

// DeviceRoundTime prices one device's full round trip for a width-n query
// (n = 1 is the vector query) on the virtual clock: x delivery, compute,
// and result return. It is the per-device ResultArrives timestamp from a
// run's report, exposed so schedulers and load models (internal/loadgen)
// can price rounds without materializing an encoding.
func DeviceRoundTime(rows, l, n int, p DeviceProfile) time.Duration {
	d, _ := deviceTimeline(0, rows, l, n, p)
	return d.ResultArrives
}

// deviceTimeline prices one device's share of a width-n round on the
// virtual clock: rows·l·n multiplications plus rows·(l−1)·n additions,
// l·n values up, rows·n values down (n = 1 is the vector query).
func deviceTimeline(j, rows, l, n int, p DeviceProfile) (DeviceReport, time.Duration) {
	d := DeviceReport{Device: j, Rows: rows}
	d.FieldOps = int64(rows) * int64(2*l-1) * int64(n)
	d.ValuesSent = rows * n
	d.StorageValues = rows*l + l*n + rows*n
	d.XArrives = p.Latency + seconds(float64(l*n)/p.UplinkRate)
	compute := seconds(float64(d.FieldOps) / p.ComputeRate * p.StragglerFactor)
	d.ComputeDone = d.XArrives + compute
	d.ResultArrives = d.ComputeDone + p.Latency + seconds(float64(rows*n)/p.DownlinkRate)
	return d, compute
}

// gatherCore runs the shared virtual-clock loop: it fills the report, calls
// emit(j) for every surviving device in scheme order, and records the
// store/compute/gather stage metrics. A sampled failure yields
// ErrDeviceFailed with the partial report's Failed flags set.
func gatherCore[E comparable](ctx context.Context, enc *coding.Encoding[E], l, n int, cfg Config, emit func(j int)) (Report, error) {
	reg := cfg.registry()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5cec^uint64(enc.Code.M())))
	rep := Report{Devices: make([]DeviceReport, len(enc.Blocks))}
	failed := false

	for j, block := range enc.Blocks {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		p := cfg.Profiles[j]
		rows := block.Rows()
		d, compute := deviceTimeline(j, rows, l, n, p)

		// Provisioning: the coded block travels cloud→device over the same
		// uplink direction x does; the slowest push bounds the store stage.
		if push := p.Latency + seconds(float64(rows*l)/p.UplinkRate); push > rep.StoreTime {
			rep.StoreTime = push
		}
		d.Failed = rng.Float64() < p.FailProb

		rep.Devices[j] = d
		rep.TotalFieldOps += d.FieldOps
		rep.TotalValuesSent += d.ValuesSent
		rep.TotalStorageValues += d.StorageValues
		if d.Failed {
			failed = true
			continue
		}
		obs.ObserveStage(reg, obs.StageCompute, compute)
		reg.Gauge(obs.MetricSimDeviceResultSeconds,
			"Virtual time at which each simulated device's results reached the user, in seconds.",
			obs.L("device", strconv.Itoa(j))).Set(d.ResultArrives.Seconds())
		emit(j)
		if d.ResultArrives > rep.CompletionTime {
			rep.CompletionTime = d.ResultArrives
		}
	}
	if failed {
		return rep, ErrDeviceFailed
	}
	obs.ObserveStage(reg, obs.StageStore, rep.StoreTime)
	// The gather stage mirrors the transport client's: broadcast of x up to
	// the last intermediate result's arrival.
	obs.ObserveStage(reg, obs.StageGather, rep.CompletionTime)
	reg.Counter(obs.MetricSimRuns, "Completed simulator runs.").Inc()
	return rep, nil
}

// seconds converts a float64 second count to a Duration.
func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
