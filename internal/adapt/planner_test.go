package adapt

import (
	"strings"
	"testing"
	"time"
)

// uniformPool builds k hosts of base cost 1. With uniform costs every plan of
// the Lemma 2 shape costs m+r, so TA2's optimum is fully predictable: the
// minimum feasible r over the cheapest devices.
func uniformPool(k int) []Host {
	hosts := make([]Host, k)
	for j := range hosts {
		hosts[j] = Host{Addr: "h" + string(rune('a'+j)), Base: 1}
	}
	return hosts
}

func TestNewPlannerValidation(t *testing.T) {
	ok := uniformPool(3)
	cases := []struct {
		name  string
		m     int
		hosts []Host
	}{
		{"m too small", 0, ok},
		{"one host", 10, ok[:1]},
		{"empty addr", 10, []Host{{Addr: "a", Base: 1}, {Addr: "", Base: 1}}},
		{"dup addr", 10, []Host{{Addr: "a", Base: 1}, {Addr: "a", Base: 1}}},
		{"bad base", 10, []Host{{Addr: "a", Base: 1}, {Addr: "b", Base: -1}}},
	}
	for _, c := range cases {
		if _, err := NewPlanner(c.m, c.hosts, 0.05, time.Second); err == nil {
			t.Errorf("%s: NewPlanner accepted invalid input", c.name)
		}
	}
	if _, err := NewPlanner(10, ok, 0.05, time.Second); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
}

func TestPlannerInitialPlan(t *testing.T) {
	p, err := NewPlanner(100, uniformPool(12), 0.05, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Decide(0, nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Adopt || d.Reason != "initial plan" {
		t.Fatalf("initial decide = %+v, want adoption", d)
	}
	// Uniform costs: cost = m+r, minimized at r = ⌈m/(k−1)⌉ = ⌈100/11⌉ = 10,
	// which forces i = 11 (last block m−(i−2)r ∈ (0, r]).
	if d.R != 10 || d.I != 11 {
		t.Fatalf("initial plan r=%d i=%d, want r=10 i=11", d.R, d.I)
	}
	if len(d.Target) != d.I {
		t.Fatalf("target has %d hosts, want %d", len(d.Target), d.I)
	}
	seen := map[string]bool{}
	for _, addr := range d.Target {
		if addr == "" || seen[addr] {
			t.Fatalf("target reuses or omits a host: %v (Def. 2 needs one block per device)", d.Target)
		}
		seen[addr] = true
	}
}

// currentFrom converts an adopted target into the live placement it realizes.
func currentFrom(t *testing.T, p *Planner, d Decision) []BlockHost {
	t.Helper()
	if len(d.Target) == 0 {
		t.Fatal("decision has no target")
	}
	// Lemma 2 shape: blocks 0..i−2 hold r rows, the last holds the remainder.
	cur := make([]BlockHost, len(d.Target))
	for b, addr := range d.Target {
		rows := d.R
		if b == len(d.Target)-1 {
			rows = p.m - (len(d.Target)-2)*d.R
		}
		cur[b] = BlockHost{Block: b, Addr: addr, Rows: rows}
	}
	return cur
}

func TestPlannerSteadyStateHolds(t *testing.T) {
	p, _ := NewPlanner(100, uniformPool(12), 0.05, 5*time.Second)
	d0, _ := p.Decide(0, nil, nil, false)
	cur := currentFrom(t, p, d0)
	d1, err := p.Decide(time.Second, nil, cur, false)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Adopt {
		t.Fatalf("replan on an optimal placement adopted: %+v", d1)
	}
	if !strings.Contains(d1.Reason, "threshold") {
		t.Fatalf("hold reason = %q, want improvement-threshold hold", d1.Reason)
	}
}

func TestPlannerStragglerSingleMove(t *testing.T) {
	p, _ := NewPlanner(100, uniformPool(12), 0.05, 5*time.Second)
	d0, _ := p.Decide(0, nil, nil, false)
	cur := currentFrom(t, p, d0)
	slow := cur[0].Addr
	// Decide after the initial adoption's cooldown has expired.
	d1, err := p.Decide(10*time.Second, map[string]float64{slow: 10}, cur, false)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Adopt {
		t.Fatalf("10× straggler not evicted: %+v", d1)
	}
	if d1.Reshape {
		t.Fatalf("straggler eviction reshaped instead of rehosting: %+v", d1)
	}
	// Move-minimizing matching: evicting one device of an interchangeable
	// row class is exactly one move; every other block stays put.
	if len(d1.Moves) != 1 {
		t.Fatalf("moves = %v, want exactly 1", d1.Moves)
	}
	if d1.Moves[0].From != slow {
		t.Fatalf("moved %s, want the straggler %s", d1.Moves[0].From, slow)
	}
	for _, addr := range d1.Target {
		if addr == slow {
			t.Fatalf("straggler still in target %v", d1.Target)
		}
	}
}

func TestPlannerHysteresisBelowThreshold(t *testing.T) {
	p, _ := NewPlanner(100, uniformPool(12), 0.05, 5*time.Second)
	d0, _ := p.Decide(0, nil, nil, false)
	cur := currentFrom(t, p, d0)
	// A 4% slowdown on one 10-row block moves the objective well under the
	// 5% adoption margin: 110.4 vs the 110 optimum.
	d1, err := p.Decide(time.Second, map[string]float64{cur[0].Addr: 1.04}, cur, false)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Adopt {
		t.Fatalf("sub-threshold improvement adopted: %+v", d1)
	}
}

func TestPlannerCooldownAndUrgentBypass(t *testing.T) {
	p, _ := NewPlanner(100, uniformPool(12), 0.05, 10*time.Second)
	d0, _ := p.Decide(0, nil, nil, false)
	cur := currentFrom(t, p, d0)

	d1, _ := p.Decide(20*time.Second, map[string]float64{cur[0].Addr: 10}, cur, false)
	if !d1.Adopt {
		t.Fatalf("first eviction held: %+v", d1)
	}
	cur[0].Addr = d1.Target[0] // apply the move

	// A second fault inside the cooldown window: improvement passes, the
	// cooldown holds it...
	factors := map[string]float64{cur[1].Addr: 10}
	d2, _ := p.Decide(22*time.Second, factors, cur, false)
	if d2.Adopt || !strings.Contains(d2.Reason, "cooldown") {
		t.Fatalf("cooldown did not hold: %+v", d2)
	}
	// ...unless the incumbent host is unhealthy (urgent bypasses cooldown,
	// never the margin).
	d3, _ := p.Decide(23*time.Second, factors, cur, true)
	if !d3.Adopt || !strings.Contains(d3.Reason, "urgent") {
		t.Fatalf("urgent replan held: %+v", d3)
	}
}

func TestPlannerUnknownHostErrors(t *testing.T) {
	p, _ := NewPlanner(100, uniformPool(12), 0.05, time.Second)
	_, err := p.Decide(0, nil, []BlockHost{{Block: 0, Addr: "stranger", Rows: 10}}, false)
	if err == nil {
		t.Fatal("placement outside the pool accepted")
	}
}
