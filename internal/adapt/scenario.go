package adapt

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"time"

	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/coding"
	"github.com/scec/scec/internal/loadgen"
	"github.com/scec/scec/internal/sim"
)

// ScenarioConfig describes the virtual-clock recovery study: a large fleet
// deployed by TA2 on base costs, hit mid-run by a chronic straggler and a
// transient outage, served under three regimes — the adaptive control plane,
// a frozen baseline that never re-plans, and an oracle that re-plans
// instantly on the true factors. Everything runs on the virtual clock with
// one seeded RNG, so a given config yields a bit-identical report.
type ScenarioConfig struct {
	// Devices is the candidate pool size (default 1000); M×Cols the data
	// matrix shape (default 4096×256).
	Devices, M, Cols int
	// Concurrency is how many rounds the user keeps in flight (default 16);
	// QPS the open-loop offered load (default 100); Duration the virtual run
	// length (default 60s).
	Concurrency int
	QPS         float64
	Duration    time.Duration
	// Seed drives the Poisson arrivals (default 1).
	Seed uint64
	// Profile is the nominal device (zero: 1 MF/s compute, 10M values/s
	// links, 2 ms latency — compute-dominated, so straggling is visible).
	Profile sim.DeviceProfile
	// CostSpread shapes base costs: device j costs 1 + CostSpread·j/(k−1)
	// (default 1), so TA2 uses a cheap prefix and leaves the expensive tail
	// as migration headroom.
	CostSpread float64

	// StragglerAt injects a chronic StragglerFactor× slowdown (default 5×)
	// into the device hosting block 0, at 10s by default; negative disables.
	StragglerAt     time.Duration
	StragglerFactor float64
	// OutageAt takes the device hosting block 1 down for OutageDuration
	// (defaults 20s and 8s); negative disables.
	OutageAt       time.Duration
	OutageDuration time.Duration
	// Replay, when non-nil, replaces the built-in chronic straggler with a
	// recorded per-device factor timeline (loadgen.ReplayFromStragglers);
	// Devices[j] follows pool device j.
	Replay *loadgen.Replay

	// InitialR forces the starting deployment to the (suboptimal) plan
	// PlanForR(base, InitialR) instead of the TA2 optimum — a way to watch
	// the control plane discover a better r and reshape. Zero starts
	// optimal.
	InitialR int

	// Control-loop knobs; zero values select the adapt defaults, except
	// ReplanEvery (default 500ms), MinImprovement (default 0.03), and
	// Cooldown (default 2s), which run tighter than the wall-clock defaults
	// to match the virtual timescale.
	ReplanEvery    time.Duration
	MinImprovement float64
	Cooldown       time.Duration
	Alpha          float64
	MinSamples     int
	OutageFactor   float64
	MaxFactor      float64

	// MeasureFrom is where the steady-state window starts (default
	// 0.6×Duration — after both faults and the recovery transient).
	MeasureFrom time.Duration
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Devices <= 0 {
		c.Devices = 1000
	}
	if c.M <= 0 {
		c.M = 4096
	}
	if c.Cols <= 0 {
		c.Cols = 256
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.QPS <= 0 {
		c.QPS = 100
	}
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Profile == (sim.DeviceProfile{}) {
		c.Profile = sim.DeviceProfile{
			ComputeRate:     1e6,
			UplinkRate:      10e6,
			DownlinkRate:    10e6,
			Latency:         2 * time.Millisecond,
			StragglerFactor: 1,
		}
	}
	if c.CostSpread <= 0 {
		c.CostSpread = 1
	}
	if c.StragglerAt == 0 {
		c.StragglerAt = 10 * time.Second
	}
	if c.StragglerFactor <= 1 {
		c.StragglerFactor = 5
	}
	if c.OutageAt == 0 {
		c.OutageAt = 20 * time.Second
	}
	if c.OutageDuration <= 0 {
		c.OutageDuration = 8 * time.Second
	}
	if c.ReplanEvery <= 0 {
		c.ReplanEvery = 500 * time.Millisecond
	}
	if c.MinImprovement <= 0 {
		c.MinImprovement = 0.03
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.35
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.OutageFactor <= 1 {
		c.OutageFactor = DefaultOutageFactor
	}
	if c.MaxFactor <= 1 {
		c.MaxFactor = DefaultMaxFactor
	}
	if c.MeasureFrom <= 0 {
		c.MeasureFrom = time.Duration(0.6 * float64(c.Duration))
	}
	return c
}

// ArmResult summarizes one serving regime.
type ArmResult struct {
	Name     string `json:"name"`
	Requests int    `json:"requests"`
	// FailedQueries is always 0 by construction — migrations never drop a
	// request — and reported so the invariant is pinned in results files.
	FailedQueries int `json:"failedQueries"`
	// Steady* are quantiles over requests arriving after MeasureFrom;
	// OverallP99 covers the whole run (fault transients included).
	SteadyP50Ms  float64 `json:"steadyP50Ms"`
	SteadyP95Ms  float64 `json:"steadyP95Ms"`
	SteadyP99Ms  float64 `json:"steadyP99Ms"`
	OverallP99Ms float64 `json:"overallP99Ms"`
	// Replans/Adopts/BlocksMoved count control activity (adaptive arm only).
	Replans     int `json:"replans,omitempty"`
	Adopts      int `json:"adopts,omitempty"`
	BlocksMoved int `json:"blocksMoved,omitempty"`
	// FinalR and FinalBaseCost describe the placement at the end of the run
	// (cost at the provisioning-time base prices, the paper's objective).
	FinalR        int     `json:"finalR"`
	FinalBaseCost float64 `json:"finalBaseCost"`
}

// RecoveryReport is the scenario's deterministic output.
type RecoveryReport struct {
	Devices, M, Cols int     `json:"-"`
	QPS              float64 `json:"qps"`
	Seed             uint64  `json:"seed"`
	DurationMs       int64   `json:"durationMs"`
	MeasureFromMs    int64   `json:"measureFromMs"`
	StragglerDevice  int     `json:"stragglerDevice"`
	OutageDevice     int     `json:"outageDevice"`

	Adaptive ArmResult `json:"adaptive"`
	Frozen   ArmResult `json:"frozen"`
	Oracle   ArmResult `json:"oracle"`

	// AdaptiveOverOracleP99 is adaptive steady p99 / oracle steady p99 (the
	// acceptance bound is ≤ 1.5); FrozenOverAdaptiveP99 is frozen steady
	// p99 / adaptive steady p99 (the bound is ≥ 2).
	AdaptiveOverOracleP99 float64 `json:"adaptiveOverOracleP99"`
	FrozenOverAdaptiveP99 float64 `json:"frozenOverAdaptiveP99"`

	// Events is the adaptive arm's decision/migration log.
	Events []string `json:"events"`
}

// RunScenario runs the three arms and compares them.
func RunScenario(cfg ScenarioConfig) (*RecoveryReport, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Replay.Validate(); err != nil {
		return nil, err
	}
	base := make([]float64, cfg.Devices)
	hosts := make([]Host, cfg.Devices)
	for j := range base {
		base[j] = 1 + cfg.CostSpread*float64(j)/float64(cfg.Devices-1)
		hosts[j] = Host{Addr: "dev-" + strconv.Itoa(j), Base: base[j]}
	}
	var plan0 alloc.Plan
	var err error
	if cfg.InitialR > 0 {
		plan0, err = alloc.PlanForR(alloc.Instance{M: cfg.M, Costs: base}, cfg.InitialR)
	} else {
		plan0, err = alloc.TA2(alloc.Instance{M: cfg.M, Costs: base})
	}
	if err != nil {
		return nil, fmt.Errorf("adapt: scenario: initial plan: %w", err)
	}
	if plan0.I < 2 {
		return nil, fmt.Errorf("adapt: scenario: degenerate initial plan (i=%d)", plan0.I)
	}
	sDev, oDev := plan0.Assignments[0].Device, plan0.Assignments[1].Device

	// One arrival schedule shared by every arm: Poisson at QPS until
	// Duration.
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xadab7))
	var arrivals []time.Duration
	for at := time.Duration(0); at < cfg.Duration; {
		arrivals = append(arrivals, at)
		at += time.Duration(rng.ExpFloat64() / cfg.QPS * float64(time.Second))
	}

	rep := &RecoveryReport{
		Devices: cfg.Devices, M: cfg.M, Cols: cfg.Cols,
		QPS: cfg.QPS, Seed: cfg.Seed,
		DurationMs:      cfg.Duration.Milliseconds(),
		MeasureFromMs:   cfg.MeasureFrom.Milliseconds(),
		StragglerDevice: sDev,
		OutageDevice:    oDev,
	}
	frozen := newArm(cfg, "frozen", hosts, base, plan0, sDev, oDev)
	oracle := newArm(cfg, "oracle", hosts, base, plan0, sDev, oDev)
	adaptive := newArm(cfg, "adaptive", hosts, base, plan0, sDev, oDev)
	rep.Frozen = frozen.run(arrivals)
	rep.Oracle = oracle.run(arrivals)
	rep.Adaptive = adaptive.run(arrivals)
	rep.Events = adaptive.events
	if rep.Oracle.SteadyP99Ms > 0 {
		rep.AdaptiveOverOracleP99 = rep.Adaptive.SteadyP99Ms / rep.Oracle.SteadyP99Ms
	}
	if rep.Adaptive.SteadyP99Ms > 0 {
		rep.FrozenOverAdaptiveP99 = rep.Frozen.SteadyP99Ms / rep.Adaptive.SteadyP99Ms
	}
	return rep, nil
}

// arm is one serving regime's simulation state.
type arm struct {
	cfg        ScenarioConfig
	name       string
	hosts      []Host
	base       []float64
	sDev, oDev int

	placement []BlockHost // live assignment, scheme block order
	devOf     map[string]int

	// adaptive state
	est       *Estimator
	planner   *Planner
	nextTick  time.Duration
	pending   []BlockHost // migration in flight, applied at pendingAt
	pendingAt time.Duration
	havePend  bool
	replans   int
	adopts    int
	moved     int
	events    []string

	// oracle state
	oracleAt []time.Duration
	oracleIx int
}

func newArm(cfg ScenarioConfig, name string, hosts []Host, base []float64, plan0 alloc.Plan, sDev, oDev int) *arm {
	a := &arm{cfg: cfg, name: name, hosts: hosts, base: base, sDev: sDev, oDev: oDev}
	a.devOf = make(map[string]int, len(hosts))
	for j, h := range hosts {
		a.devOf[h.Addr] = j
	}
	a.placement = placementOf(plan0, hosts)
	switch name {
	case "adaptive":
		a.est = NewEstimator(cfg.Alpha, cfg.MinSamples, cfg.MaxFactor)
		a.planner, _ = NewPlanner(cfg.M, hosts, cfg.MinImprovement, cfg.Cooldown)
		a.nextTick = cfg.ReplanEvery
	case "oracle":
		times := []time.Duration{}
		if cfg.StragglerAt >= 0 && cfg.Replay == nil {
			times = append(times, cfg.StragglerAt)
		}
		if cfg.OutageAt >= 0 {
			times = append(times, cfg.OutageAt, cfg.OutageAt+cfg.OutageDuration)
		}
		if cfg.Replay != nil {
			for _, steps := range cfg.Replay.Devices {
				for _, s := range steps {
					times = append(times, s.At)
				}
			}
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		a.oracleAt = times
	}
	return a
}

// placementOf maps a plan onto host addresses in scheme block order.
func placementOf(p alloc.Plan, hosts []Host) []BlockHost {
	out := make([]BlockHost, len(p.Assignments))
	for b, as := range p.Assignments {
		out[b] = BlockHost{Block: b, Addr: hosts[as.Device].Addr, Rows: as.Rows}
	}
	return out
}

// trueFactor is the device's real slowdown at virtual time t.
func (a *arm) trueFactor(dev int, t time.Duration) float64 {
	if a.cfg.Replay != nil {
		f := 1.0
		if dev < len(a.cfg.Replay.Devices) {
			for _, s := range a.cfg.Replay.Devices[dev] {
				if s.At > t {
					break
				}
				f = s.Factor
			}
		}
		if f < 1 {
			f = 1
		}
		return f
	}
	if dev == a.sDev && a.cfg.StragglerAt >= 0 && t >= a.cfg.StragglerAt {
		return a.cfg.StragglerFactor
	}
	return 1
}

// downUntil returns when the device recovers, or 0 if it is up at t.
func (a *arm) downUntil(dev int, t time.Duration) time.Duration {
	if a.cfg.OutageAt < 0 || dev != a.oDev {
		return 0
	}
	end := a.cfg.OutageAt + a.cfg.OutageDuration
	if t >= a.cfg.OutageAt && t < end {
		return end
	}
	return 0
}

// contribution prices one device's share of a round starting at t.
func (a *arm) contribution(dev, rows int, t time.Duration) time.Duration {
	p := a.cfg.Profile
	p.StragglerFactor *= a.trueFactor(dev, t)
	d := sim.DeviceRoundTime(rows, a.cfg.Cols, 1, p)
	if end := a.downUntil(dev, t); end > t {
		d += end - t
	}
	return d
}

// service prices one round at t: the slowest participating device.
func (a *arm) service(t time.Duration) time.Duration {
	var worst time.Duration
	for _, b := range a.placement {
		if d := a.contribution(a.devOf[b.Addr], b.Rows, t); d > worst {
			worst = d
		}
	}
	return worst
}

// advance runs the arm's control machinery up to virtual time t.
func (a *arm) advance(t time.Duration) {
	switch a.name {
	case "oracle":
		for a.oracleIx < len(a.oracleAt) && a.oracleAt[a.oracleIx] <= t {
			a.oracleReplan(a.oracleAt[a.oracleIx])
			a.oracleIx++
		}
	case "adaptive":
		for {
			// Interleave control ticks and migration completions in time
			// order.
			if a.havePend && a.pendingAt <= t && a.pendingAt <= a.nextTick {
				a.placement = a.pending
				a.havePend = false
				continue
			}
			if a.nextTick <= t {
				a.tick(a.nextTick)
				a.nextTick += a.cfg.ReplanEvery
				continue
			}
			return
		}
	}
}

// oracleReplan re-runs TA2 on the true factors, applied instantly and free.
func (a *arm) oracleReplan(t time.Duration) {
	costs := make([]float64, len(a.base))
	for j := range costs {
		f := a.trueFactor(j, t)
		if a.downUntil(j, t) > t {
			f = math.Max(f, a.cfg.OutageFactor)
		}
		costs[j] = a.base[j] * f
	}
	plan, err := alloc.TA2(alloc.Instance{M: a.cfg.M, Costs: costs})
	if err != nil {
		return
	}
	a.placement = placementOf(plan, a.hosts)
}

// tick is one adaptive control cycle at virtual time t.
func (a *arm) tick(t time.Duration) {
	// Feed the estimator what the straggler digest would have seen: each
	// participating device's winning-attempt latency at its true speed.
	for _, b := range a.placement {
		dev := a.devOf[b.Addr]
		if a.downUntil(dev, t) > t {
			continue // a down device wins no attempts
		}
		a.est.ObserveLatency(b.Addr, t, a.contribution(dev, b.Rows, t), b.Rows)
	}
	if a.havePend {
		return // one migration at a time
	}
	factors := a.est.Factors()
	urgent := false
	for _, b := range a.placement {
		if a.downUntil(a.devOf[b.Addr], t) > t {
			urgent = true
		}
	}
	if a.cfg.OutageAt >= 0 {
		oAddr := a.hosts[a.oDev].Addr
		if a.downUntil(a.oDev, t) > t && factors[oAddr] < a.cfg.OutageFactor {
			factors[oAddr] = a.cfg.OutageFactor
		}
	}
	d, err := a.planner.Decide(t, factors, a.placement, urgent)
	a.replans++
	if err != nil || !d.Adopt {
		return
	}
	a.adopts++
	a.events = append(a.events, fmt.Sprintf("t=%.2fs %s", t.Seconds(), d.Reason))

	prof := a.cfg.Profile
	if d.Reshape {
		scheme, err := coding.New(a.cfg.M, d.R)
		if err != nil || scheme.Devices() != len(d.Target) {
			return
		}
		next := make([]BlockHost, len(d.Target))
		var push time.Duration
		for b, addr := range d.Target {
			rows := scheme.RowsOn(b)
			next[b] = BlockHost{Block: b, Addr: addr, Rows: rows}
			if p := prof.Latency + time.Duration(float64(rows*a.cfg.Cols)/prof.UplinkRate*float64(time.Second)); p > push {
				push = p
			}
		}
		a.pending, a.pendingAt, a.havePend = next, t+push, true
		a.moved += len(next)
		a.events = append(a.events, fmt.Sprintf("t=%.2fs reshape to r=%d over %d devices (ready %.2fs)", t.Seconds(), d.R, len(next), (t+push).Seconds()))
		return
	}
	next := append([]BlockHost(nil), a.placement...)
	var push time.Duration
	for _, mv := range d.Moves {
		next[mv.Block].Addr = mv.To
		rows := next[mv.Block].Rows
		// Rehost pushes run one after another in the controller.
		push += prof.Latency + time.Duration(float64(rows*a.cfg.Cols)/prof.UplinkRate*float64(time.Second))
		a.events = append(a.events, fmt.Sprintf("t=%.2fs rehost block %d %s → %s", t.Seconds(), mv.Block, mv.From, mv.To))
	}
	a.pending, a.pendingAt, a.havePend = next, t+push, true
	a.moved += len(d.Moves)
}

// run drives the arrival schedule through the arm and summarizes it.
func (a *arm) run(arrivals []time.Duration) ArmResult {
	servers := make(durHeap, a.cfg.Concurrency)
	heap.Init(&servers)
	var overall, steady []time.Duration
	for _, arrive := range arrivals {
		free := heap.Pop(&servers).(time.Duration)
		start := arrive
		if free > start {
			start = free
		}
		a.advance(start)
		finish := start + a.service(start)
		heap.Push(&servers, finish)
		lat := finish - arrive
		overall = append(overall, lat)
		if arrive >= a.cfg.MeasureFrom {
			steady = append(steady, lat)
		}
	}
	res := ArmResult{
		Name:         a.name,
		Requests:     len(arrivals),
		SteadyP50Ms:  msOf(quantileDur(steady, 0.50)),
		SteadyP95Ms:  msOf(quantileDur(steady, 0.95)),
		SteadyP99Ms:  msOf(quantileDur(steady, 0.99)),
		OverallP99Ms: msOf(quantileDur(overall, 0.99)),
		Replans:      a.replans,
		Adopts:       a.adopts,
		BlocksMoved:  a.moved,
	}
	for _, b := range a.placement {
		res.FinalBaseCost += float64(b.Rows) * a.base[a.devOf[b.Addr]]
		if b.Rows > res.FinalR {
			res.FinalR = b.Rows
		}
	}
	return res
}

// durHeap is a min-heap of server free times.
type durHeap []time.Duration

func (h durHeap) Len() int           { return len(h) }
func (h durHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h durHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *durHeap) Push(x any)        { *h = append(*h, x.(time.Duration)) }
func (h *durHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
func msOf(d time.Duration) float64   { return float64(d.Nanoseconds()) / 1e6 }
func quantileDur(v []time.Duration, q float64) time.Duration {
	if len(v) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), v...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	ix := int(math.Ceil(q*float64(len(s)))) - 1
	if ix < 0 {
		ix = 0
	}
	if ix >= len(s) {
		ix = len(s) - 1
	}
	return s[ix]
}
