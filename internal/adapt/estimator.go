package adapt

import (
	"sort"
	"sync"
	"time"
)

// Estimator learns per-device cost multipliers online. It consumes two live
// signals, both cheap and already flowing:
//
//   - winning-attempt latencies (the straggler digest's raw material),
//     normalized per coded row so devices holding r rows and devices holding
//     the last block's m−(i−2)·r rows are comparable;
//   - transport heartbeat round trips, the network half of the cost.
//
// Each signal is folded into a per-device EWMA; a device's factor is its
// estimate relative to the fleet median — the pessimistic max of its compute
// ratio and its network ratio — clamped to [1/maxFactor, maxFactor]. Devices
// without enough samples report the neutral factor 1: an unobserved standby
// is assumed nominal, which is what makes it an attractive migration target.
//
// All observation timestamps are durations on the caller's clock (wall
// elapsed for the live controller, virtual time in the recovery scenario),
// so the estimator itself is deterministic and clock-free.
type Estimator struct {
	alpha      float64
	minSamples int
	maxFactor  float64

	mu   sync.Mutex
	devs map[string]*devEstimate
}

// devEstimate is one device's running state.
type devEstimate struct {
	perRow   float64 // EWMA seconds of winning-attempt latency per coded row
	rtt      float64 // EWMA seconds of heartbeat round trip
	samples  int     // latency samples folded in
	rtts     int     // RTT samples folded in
	lastSeen time.Duration
}

// DeviceEstimate is one device's snapshot for introspection.
type DeviceEstimate struct {
	Device string `json:"device"`
	// PerRowNs is the EWMA winning-attempt latency per coded row.
	PerRowNs int64 `json:"perRowNs"`
	// RTTNs is the EWMA heartbeat round trip (0 when never measured).
	RTTNs int64 `json:"rttNs"`
	// Samples counts latency observations.
	Samples int `json:"samples"`
	// Factor is the learned cost multiplier (1 = nominal).
	Factor float64 `json:"factor"`
	// LastSeenMs is the caller-clock timestamp of the latest observation.
	LastSeenMs int64 `json:"lastSeenMs"`
}

// NewEstimator builds an estimator with the given EWMA weight, trust
// threshold, and factor clamp (zero values select the package defaults).
func NewEstimator(alpha float64, minSamples int, maxFactor float64) *Estimator {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	if minSamples <= 0 {
		minSamples = DefaultMinSamples
	}
	if maxFactor <= 1 {
		maxFactor = DefaultMaxFactor
	}
	return &Estimator{
		alpha:      alpha,
		minSamples: minSamples,
		maxFactor:  maxFactor,
		devs:       make(map[string]*devEstimate),
	}
}

// ObserveLatency folds one winning-attempt latency for a device serving
// `rows` coded rows, observed at caller-clock time now.
func (e *Estimator) ObserveLatency(device string, now, latency time.Duration, rows int) {
	if rows <= 0 || latency <= 0 {
		return
	}
	perRow := latency.Seconds() / float64(rows)
	e.mu.Lock()
	d := e.dev(device)
	if d.samples == 0 {
		d.perRow = perRow
	} else {
		d.perRow += e.alpha * (perRow - d.perRow)
	}
	d.samples++
	d.lastSeen = now
	e.mu.Unlock()
}

// ObserveRTT folds one transport heartbeat round trip.
func (e *Estimator) ObserveRTT(device string, now, rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	e.mu.Lock()
	d := e.dev(device)
	if d.rtts == 0 {
		d.rtt = rtt.Seconds()
	} else {
		d.rtt += e.alpha * (rtt.Seconds() - d.rtt)
	}
	d.rtts++
	d.lastSeen = now
	e.mu.Unlock()
}

// dev returns the device's state, creating it. Caller holds e.mu.
func (e *Estimator) dev(device string) *devEstimate {
	d := e.devs[device]
	if d == nil {
		d = &devEstimate{}
		e.devs[device] = d
	}
	return d
}

// Factors returns the learned cost multiplier of every observed device.
// Devices below the sample threshold (and devices the map has never seen)
// are neutral: callers treat a missing key as factor 1.
func (e *Estimator) Factors() map[string]float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	medRow, medRTT := e.medians()
	out := make(map[string]float64, len(e.devs))
	for addr, d := range e.devs {
		out[addr] = e.factor(d, medRow, medRTT)
	}
	return out
}

// factor computes one device's clamped multiplier against the fleet medians.
// Caller holds e.mu.
func (e *Estimator) factor(d *devEstimate, medRow, medRTT float64) float64 {
	f := 1.0
	if d.samples >= e.minSamples && medRow > 0 {
		f = d.perRow / medRow
	}
	if d.rtts >= e.minSamples && medRTT > 0 {
		if rf := d.rtt / medRTT; rf > f {
			f = rf
		}
	}
	if f > e.maxFactor {
		f = e.maxFactor
	}
	if f < 1/e.maxFactor {
		f = 1 / e.maxFactor
	}
	return f
}

// medians computes the fleet-median per-row latency and RTT over trusted
// devices. Caller holds e.mu.
func (e *Estimator) medians() (medRow, medRTT float64) {
	var rowSamples, rttSamples []float64
	for _, d := range e.devs {
		if d.samples >= e.minSamples {
			rowSamples = append(rowSamples, d.perRow)
		}
		if d.rtts >= e.minSamples {
			rttSamples = append(rttSamples, d.rtt)
		}
	}
	return median(rowSamples), median(rttSamples)
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// Snapshot returns every device's estimate, sorted by address, for
// /debug/adapt.
func (e *Estimator) Snapshot() []DeviceEstimate {
	e.mu.Lock()
	defer e.mu.Unlock()
	medRow, medRTT := e.medians()
	out := make([]DeviceEstimate, 0, len(e.devs))
	for addr, d := range e.devs {
		out = append(out, DeviceEstimate{
			Device:     addr,
			PerRowNs:   int64(d.perRow * 1e9),
			RTTNs:      int64(d.rtt * 1e9),
			Samples:    d.samples,
			Factor:     e.factor(d, medRow, medRTT),
			LastSeenMs: d.lastSeen.Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}
