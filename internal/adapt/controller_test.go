package adapt

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scec/scec/internal/obs"
)

// fakeSub is an in-memory Substrate: a placement, a free list, health and RTT
// maps, and scripted failures. It is safe for concurrent use so Start/Stop
// can run against it.
type fakeSub struct {
	mu        sync.Mutex
	placement []BlockHost
	free      []string
	unhealthy map[string]bool
	rtt       map[string]time.Duration
	rehostErr map[int]error

	rehosts  []Move
	reshapes int
	reshapeR int
}

func (f *fakeSub) Placements() []BlockHost {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]BlockHost(nil), f.placement...)
}

func (f *fakeSub) Free() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.free...)
}

func (f *fakeSub) Healthy(addr string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.unhealthy[addr]
}

func (f *fakeSub) RTT(addr string) (time.Duration, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.rtt[addr]
	return d, ok
}

func (f *fakeSub) Rehost(_ context.Context, block int, from, to string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.rehostErr[block]; err != nil {
		return err
	}
	for i, b := range f.placement {
		if b.Block == block && b.Addr == from {
			f.placement[i].Addr = to
			f.rehosts = append(f.rehosts, Move{Block: block, From: from, To: to})
			next := f.free[:0]
			for _, a := range f.free {
				if a != to {
					next = append(next, a)
				}
			}
			f.free = append(next, from)
			return nil
		}
	}
	return fmt.Errorf("fake: block %d is not on %s", block, from)
}

func (f *fakeSub) Reshape(_ context.Context, target []string, r int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reshapes++
	f.reshapeR = r
	return nil
}

// newFakeSub serves m=4 as three 2-row blocks (r=2, Lemma 2 shape) on a, b, c
// with d free. The 4-host pool makes r=2 the TA2 optimum (⌈4/3⌉ = 2), so
// straggler evictions stay same-r rehosts.
func newFakeSub() *fakeSub {
	return &fakeSub{
		placement: []BlockHost{
			{Block: 0, Addr: "a", Rows: 2},
			{Block: 1, Addr: "b", Rows: 2},
			{Block: 2, Addr: "c", Rows: 2},
		},
		free:      []string{"d"},
		unhealthy: map[string]bool{},
		rtt:       map[string]time.Duration{"a": time.Millisecond, "b": time.Millisecond, "c": time.Millisecond, "d": time.Millisecond},
	}
}

func testConfig() Config {
	return Config{
		MinSamples:     3,
		MinImprovement: 0.05,
		Cooldown:       time.Second,
		Metrics:        obs.New(),
	}
}

// observe feeds n winning attempts at the given per-row latency.
func observe(c *Controller, device string, block, n int, perRow time.Duration) {
	rows := (*c.rows.Load())[block]
	for i := 0; i < n; i++ {
		c.ObserveWin(device, block, perRow*time.Duration(rows))
	}
}

func TestControllerInfersInstance(t *testing.T) {
	c, err := New(testConfig(), newFakeSub())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	// 3 blocks of 2 rows hold m+r = 6 coded rows; the largest block is r=2,
	// so the inferred data size is m=4.
	if c.planner.m != 4 {
		t.Fatalf("inferred m = %d, want 4", c.planner.m)
	}
	if got := len(c.planner.Hosts()); got != 4 {
		t.Fatalf("pool = %d hosts, want 4 (3 serving + 1 free)", got)
	}
}

func TestControllerEvictsStraggler(t *testing.T) {
	sub := newFakeSub()
	c, err := New(testConfig(), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	observe(c, "a", 0, 5, 100*time.Millisecond) // 10× the fleet median
	observe(c, "b", 1, 5, 10*time.Millisecond)
	observe(c, "c", 2, 5, 10*time.Millisecond)

	d, err := c.Step(context.Background(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Adopt || d.Reshape {
		t.Fatalf("decision = %+v, want a rehost adoption", d)
	}
	if len(sub.rehosts) != 1 || sub.rehosts[0] != (Move{Block: 0, From: "a", To: "d"}) {
		t.Fatalf("rehosts = %v, want block 0 a→d", sub.rehosts)
	}
	replans, adopts, moved := c.Stats()
	if replans != 1 || adopts != 1 || moved != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", replans, adopts, moved)
	}

	// The next cycle sees the already-migrated placement and holds.
	d2, err := c.Step(context.Background(), 11*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Adopt {
		t.Fatalf("post-migration cycle adopted again: %+v", d2)
	}
}

func TestControllerUrgentOnUnhealthyHost(t *testing.T) {
	sub := newFakeSub()
	c, err := New(testConfig(), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	sub.mu.Lock()
	sub.unhealthy["a"] = true
	sub.mu.Unlock()

	// No latency samples at all: the open breaker alone pins a's factor to
	// the outage cost and forces an urgent eviction.
	d, err := c.Step(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Adopt || !strings.Contains(d.Reason, "urgent") {
		t.Fatalf("decision = %+v, want urgent adoption", d)
	}
	if len(sub.rehosts) != 1 || sub.rehosts[0].From != "a" {
		t.Fatalf("rehosts = %v, want the unhealthy host evicted", sub.rehosts)
	}
}

func TestControllerRehostFailureIsRecordedNotFatal(t *testing.T) {
	sub := newFakeSub()
	sub.rehostErr = map[int]error{0: fmt.Errorf("device hung up")}
	c, err := New(testConfig(), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	observe(c, "a", 0, 5, 100*time.Millisecond)
	observe(c, "b", 1, 5, 10*time.Millisecond)
	observe(c, "c", 2, 5, 10*time.Millisecond)

	d, err := c.Step(context.Background(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Adopt {
		t.Fatalf("decision = %+v, want adoption", d)
	}
	if len(sub.rehosts) != 0 {
		t.Fatalf("failed rehost mutated the placement: %v", sub.rehosts)
	}
	_, _, moved := c.Stats()
	if moved != 0 {
		t.Fatalf("moved = %d after a failed rehost, want 0", moved)
	}
	info := c.Debug()
	if len(info.Events) == 0 || info.Events[0].Err == "" {
		t.Fatalf("failure not recorded in events: %+v", info.Events)
	}
	// The fleet keeps serving from wherever blocks actually are; the next
	// cycle simply retries (or re-decides) — here the error persists and the
	// placement still never lies.
	if got := sub.Placements()[0].Addr; got != "a" {
		t.Fatalf("block 0 reported on %s, but the move failed", got)
	}
}

func TestControllerObserveWinBounds(t *testing.T) {
	c, err := New(testConfig(), newFakeSub())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.ObserveWin("a", -1, time.Millisecond) // must not panic
	c.ObserveWin("a", 99, time.Millisecond)
	if snap := c.Estimator().Snapshot(); len(snap) != 0 {
		t.Fatalf("out-of-range blocks were folded in: %+v", snap)
	}
}

func TestControllerStartStop(t *testing.T) {
	cfg := testConfig()
	cfg.ReplanEvery = 5 * time.Millisecond
	c, err := New(cfg, newFakeSub())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	time.Sleep(60 * time.Millisecond)
	c.Stop()
	c.Stop() // idempotent
	replans, _, _ := c.Stats()
	if replans == 0 {
		t.Fatal("ticker ran no control cycles")
	}
}

func TestDebugHandler(t *testing.T) {
	sub := newFakeSub()
	c, err := New(testConfig(), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	observe(c, "a", 0, 5, 100*time.Millisecond)
	observe(c, "b", 1, 5, 10*time.Millisecond)
	observe(c, "c", 2, 5, 10*time.Millisecond)
	if _, err := c.Step(context.Background(), 10*time.Second); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	c.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/adapt", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var info DebugInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if info.Replans != 1 || info.Adopts != 1 || info.BlocksMoved != 1 {
		t.Fatalf("debug counters = %d/%d/%d, want 1/1/1", info.Replans, info.Adopts, info.BlocksMoved)
	}
	if len(info.Estimates) == 0 || len(info.Decisions) == 0 || len(info.Events) == 0 {
		t.Fatalf("debug payload incomplete: %+v", info)
	}
	if len(info.Placements) != 3 {
		t.Fatalf("placements = %+v", info.Placements)
	}
}
