package adapt

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/flight"
	"github.com/scec/scec/internal/obs/trace"
)

// Substrate is what the controller drives: the live placement, the devices
// eligible to receive a block, health and network signals, and the two
// migration mechanisms. internal/adapt ships the fleet-backed implementation
// (FleetAdapter); tests and the virtual-clock scenario substitute models.
type Substrate interface {
	// Placements snapshots every block's serving device (the replica the
	// planner accounts for) in scheme order.
	Placements() []BlockHost
	// Free lists devices currently eligible to receive a block (warm
	// standbys outside any quarantine).
	Free() []string
	// Healthy reports whether the device's breaker is closed.
	Healthy(addr string) bool
	// RTT reports the last transport heartbeat round trip toward addr.
	RTT(addr string) (time.Duration, bool)
	// Rehost moves one block to a free device without interrupting queries.
	Rehost(ctx context.Context, block int, from, to string) error
	// Reshape re-encodes the deployment at a new r and swaps it in behind a
	// drain; target is the per-block host assignment of the new scheme.
	Reshape(ctx context.Context, target []string, r int) error
}

// MigrationEvent is one executed (or attempted) block movement.
type MigrationEvent struct {
	At    time.Duration `json:"atNs"`
	Kind  string        `json:"kind"` // "rehost" | "reshape"
	Block int           `json:"block"`
	From  string        `json:"from,omitempty"`
	To    string        `json:"to,omitempty"`
	Err   string        `json:"error,omitempty"`
}

const (
	replansHelp    = "Adaptive control cycles, by hysteresis outcome."
	migrationsHelp = "Executed adaptive migrations, by kind and outcome."
	movedHelp      = "Coded blocks moved by adaptive migrations."
	planCostHelp   = "Learned-cost objective of the current adaptive plan."
	planRHelp      = "Coding parameter r of the current adaptive plan."
	factorHelp     = "Learned per-device cost multiplier (1 = nominal)."
)

// Controller closes the loop: every ReplanEvery it snapshots the estimator,
// asks the planner for a verdict, and executes adopted plans against the
// substrate. Step is exported so tests and the virtual-clock scenario can
// drive the cycle deterministically; Start runs it on a wall-clock ticker.
type Controller struct {
	cfg     Config
	est     *Estimator
	planner *Planner
	sub     Substrate

	start time.Time
	rows  atomic.Pointer[[]int] // per-block row counts for ObserveWin

	mu        sync.Mutex
	decisions []Decision
	events    []MigrationEvent
	replans   int
	adopts    int
	moved     int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
}

// New builds a controller over the substrate. The planner's host pool is the
// union of the current placement and the currently free devices, priced by
// cfg.BaseCosts (missing addresses cost 1): every device the fleet knows at
// construction time is a candidate for the rest of the session.
func New(cfg Config, sub Substrate) (*Controller, error) {
	cfg = cfg.withDefaults()
	placements := sub.Placements()
	if len(placements) == 0 {
		return nil, fmt.Errorf("adapt: substrate serves no blocks")
	}
	m := 0
	rows := make([]int, len(placements))
	var hosts []Host
	seen := make(map[string]bool)
	add := func(addr string) {
		if addr == "" || seen[addr] {
			return
		}
		seen[addr] = true
		base := cfg.BaseCosts[addr]
		if base <= 0 {
			base = 1
		}
		hosts = append(hosts, Host{Addr: addr, Base: base})
	}
	for _, b := range placements {
		m += b.Rows
		rows[b.Block] = b.Rows
		add(b.Addr)
	}
	for _, addr := range sub.Free() {
		add(addr)
	}
	// The placement holds m+r coded rows; the planner needs the data rows m.
	// The largest block holds exactly r (Lemma 2 shape).
	r := 0
	for _, b := range placements {
		if b.Rows > r {
			r = b.Rows
		}
	}
	m -= r
	planner, err := NewPlanner(m, hosts, cfg.MinImprovement, cfg.Cooldown)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:     cfg,
		est:     NewEstimator(cfg.Alpha, cfg.MinSamples, cfg.MaxFactor),
		planner: planner,
		sub:     sub,
		start:   time.Now(),
	}
	c.rows.Store(&rows)
	c.ctx, c.cancel = context.WithCancel(context.Background())
	return c, nil
}

// Estimator exposes the cost estimator (e.g. to feed recorded observations).
func (c *Controller) Estimator() *Estimator { return c.est }

// Now is the controller's clock: elapsed time since construction.
func (c *Controller) Now() time.Duration { return time.Since(c.start) }

// ObserveWin feeds one winning replica attempt; wire it to
// fleet.Config.OnWin. It is on the query path: one atomic load and one
// short-locked EWMA fold.
func (c *Controller) ObserveWin(device string, block int, latency time.Duration) {
	rows := *c.rows.Load()
	if block < 0 || block >= len(rows) {
		return
	}
	c.est.ObserveLatency(device, c.Now(), latency, rows[block])
}

// Start runs the control loop until Stop.
func (c *Controller) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.ReplanEvery)
		defer t.Stop()
		for {
			select {
			case <-c.ctx.Done():
				return
			case <-t.C:
				_, _ = c.Step(c.ctx, c.Now())
			}
		}
	}()
}

// Stop halts the control loop; in-flight migrations finish first. Idempotent.
func (c *Controller) Stop() {
	c.once.Do(func() {
		c.cancel()
		c.wg.Wait()
	})
}

// Step runs one control cycle at caller-clock time now: poll heartbeat RTTs,
// snapshot learned factors (unhealthy devices pinned to the outage factor),
// decide, and execute an adopted plan. It returns the decision for
// introspection; execution errors are recorded as migration events and
// metrics, not returned, because a failed move leaves the fleet serving from
// wherever blocks actually are.
func (c *Controller) Step(ctx context.Context, now time.Duration) (Decision, error) {
	reg := c.cfg.Metrics
	for _, h := range c.planner.Hosts() {
		if rtt, ok := c.sub.RTT(h.Addr); ok {
			c.est.ObserveRTT(h.Addr, now, rtt)
		}
	}
	factors := c.est.Factors()
	for _, h := range c.planner.Hosts() {
		if !c.sub.Healthy(h.Addr) {
			if factors[h.Addr] < c.cfg.OutageFactor {
				factors[h.Addr] = c.cfg.OutageFactor
			}
		}
		reg.Gauge(obs.MetricAdaptDeviceFactor, factorHelp, obs.L("device", h.Addr)).Set(factorOr1(factors, h.Addr))
	}

	current := c.sub.Placements()
	rows := make([]int, len(current))
	for _, b := range current {
		rows[b.Block] = b.Rows
	}
	c.rows.Store(&rows)
	urgent := false
	for _, b := range current {
		if !c.sub.Healthy(b.Addr) {
			urgent = true
			break
		}
	}

	var span *trace.Span
	if c.cfg.Tracer != nil {
		ctx, span = c.cfg.Tracer.StartSpan(ctx, trace.SpanAdaptReplan)
		defer span.End()
	}
	d, err := c.planner.Decide(now, factors, current, urgent)
	c.mu.Lock()
	c.replans++
	if d.Adopt {
		c.adopts++
	}
	c.decisions = append(c.decisions, d)
	if len(c.decisions) > c.cfg.History {
		c.decisions = c.decisions[len(c.decisions)-c.cfg.History:]
	}
	c.mu.Unlock()
	if err != nil {
		return d, err
	}

	if d.Adopt {
		reg.Counter(obs.MetricAdaptReplansTotal, replansHelp, obs.L("outcome", "adopted")).Inc()
		c.cfg.Journal.PublishDetail(flight.KindReplanAdopt, adoptKind(d), d.Reason, int64(d.R), int64(len(d.Moves)))
		if span != nil {
			span.AddEvent(trace.EventAdopt, trace.A(trace.AttrKind, adoptKind(d)))
		}
		reg.Gauge(obs.MetricAdaptPlanCost, planCostHelp).Set(d.CandidateCost)
		reg.Gauge(obs.MetricAdaptPlanR, planRHelp).Set(float64(d.R))
		c.execute(ctx, now, d)
	} else {
		reg.Counter(obs.MetricAdaptReplansTotal, replansHelp, obs.L("outcome", "held")).Inc()
		c.cfg.Journal.PublishDetail(flight.KindReplanHold, "", d.Reason, int64(d.R), 0)
		if span != nil {
			span.AddEvent(trace.EventHold, trace.A(trace.AttrKind, d.Reason))
		}
	}
	return d, nil
}

func adoptKind(d Decision) string {
	if d.Reshape {
		return "reshape"
	}
	return "rehost"
}

func factorOr1(factors map[string]float64, addr string) float64 {
	if f, ok := factors[addr]; ok {
		return f
	}
	return 1
}

// execute realizes an adopted decision against the substrate.
func (c *Controller) execute(ctx context.Context, now time.Duration, d Decision) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.MigrateTimeout)
	defer cancel()
	if c.cfg.Tracer != nil {
		var span *trace.Span
		ctx, span = c.cfg.Tracer.StartSpan(ctx, trace.SpanAdaptMigrate, trace.A(trace.AttrKind, adoptKind(d)))
		defer span.End()
	}
	reg := c.cfg.Metrics
	if d.Reshape {
		err := c.sub.Reshape(ctx, d.Target, d.R)
		ev := MigrationEvent{At: now, Kind: "reshape", Block: -1}
		outcome := "ok"
		if err != nil {
			ev.Err = err.Error()
			outcome = "failed"
			c.cfg.Journal.PublishDetail(flight.KindReshapeFailed, "", err.Error(), int64(d.R), 0)
		} else {
			c.cfg.Journal.Publish(flight.KindReshapeOK, "", int64(d.R), int64(len(d.Target)))
		}
		reg.Counter(obs.MetricAdaptMigrationsTotal, migrationsHelp, obs.L("kind", "reshape"), obs.L("outcome", outcome)).Inc()
		if err == nil {
			reg.Counter(obs.MetricAdaptBlocksMovedTotal, movedHelp).Add(int64(len(d.Target)))
			c.mu.Lock()
			c.moved += len(d.Target)
			c.mu.Unlock()
		}
		c.record(ev)
		return
	}
	c.rehostAll(ctx, now, d)
}

// rehostAll executes a same-r adoption as a sequence of single-block
// rehosts, always moving into a device that is currently free: moving a
// block frees its source, so a chain of displacements unwinds from the free
// end. A genuine cycle (no free device at all) is broken by bouncing one
// block through a scratch standby; if none exists the remaining moves are
// deferred to a later cycle and recorded as such — they are cost-neutral
// permutations by construction (equal row counts), so nothing is lost.
func (c *Controller) rehostAll(ctx context.Context, now time.Duration, d Decision) {
	reg := c.cfg.Metrics
	occupied := make(map[string]int) // device → block it currently serves
	cur := make(map[int]string)      // block → current device
	for _, b := range c.sub.Placements() {
		occupied[b.Addr] = b.Block
		cur[b.Block] = b.Addr
	}
	target := make(map[int]string, len(d.Moves))
	pending := make([]int, 0, len(d.Moves))
	for _, mv := range d.Moves {
		if cur[mv.Block] != mv.From {
			// Placement changed under us (concurrent repair); skip.
			continue
		}
		target[mv.Block] = mv.To
		pending = append(pending, mv.Block)
	}
	move := func(block int, to string) bool {
		from := cur[block]
		err := c.sub.Rehost(ctx, block, from, to)
		ev := MigrationEvent{At: now, Kind: "rehost", Block: block, From: from, To: to}
		outcome := "ok"
		if err != nil {
			ev.Err = err.Error()
			outcome = "failed"
		}
		reg.Counter(obs.MetricAdaptMigrationsTotal, migrationsHelp, obs.L("kind", "rehost"), obs.L("outcome", outcome)).Inc()
		c.record(ev)
		if err != nil {
			return false
		}
		delete(occupied, from)
		occupied[to] = block
		cur[block] = to
		reg.Counter(obs.MetricAdaptBlocksMovedTotal, movedHelp).Inc()
		c.mu.Lock()
		c.moved++
		c.mu.Unlock()
		return true
	}
	for len(pending) > 0 {
		if ctx.Err() != nil {
			c.deferMoves(now, pending, target, cur, ctx.Err().Error())
			return
		}
		progressed := false
		next := pending[:0]
		for _, block := range pending {
			to := target[block]
			if _, busy := occupied[to]; busy {
				next = append(next, block)
				continue
			}
			move(block, to) // failure drops the move; a later cycle retries
			progressed = true
		}
		pending = next
		if progressed || len(pending) == 0 {
			continue
		}
		// Every pending target is occupied by another pending block: a pure
		// displacement cycle. Bounce one block through a free scratch device.
		scratch := c.scratchDevice(occupied, target)
		if scratch == "" {
			c.deferMoves(now, pending, target, cur, "no free device to break displacement cycle")
			return
		}
		if !move(pending[0], scratch) {
			pending = pending[1:]
		}
	}
}

// scratchDevice picks a free device that is not anyone's target.
func (c *Controller) scratchDevice(occupied map[string]int, target map[int]string) string {
	wanted := make(map[string]bool, len(target))
	for _, to := range target {
		wanted[to] = true
	}
	for _, addr := range c.sub.Free() {
		if _, busy := occupied[addr]; !busy && !wanted[addr] {
			return addr
		}
	}
	return ""
}

// deferMoves records the moves this cycle could not execute.
func (c *Controller) deferMoves(now time.Duration, pending []int, target map[int]string, cur map[int]string, why string) {
	for _, block := range pending {
		c.record(MigrationEvent{
			At: now, Kind: "rehost", Block: block,
			From: cur[block], To: target[block],
			Err: "deferred: " + why,
		})
	}
}

// record appends a migration event to the bounded history.
func (c *Controller) record(ev MigrationEvent) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	if len(c.events) > c.cfg.History {
		c.events = c.events[len(c.events)-c.cfg.History:]
	}
	c.mu.Unlock()
}

// Stats reports lifetime counters: control cycles run, plans adopted, and
// blocks moved.
func (c *Controller) Stats() (replans, adopts, blocksMoved int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replans, c.adopts, c.moved
}

// String identifies the controller in logs.
func (c *Controller) String() string {
	replans, adopts, moved := c.Stats()
	return "adapt.Controller{replans=" + strconv.Itoa(replans) +
		" adopts=" + strconv.Itoa(adopts) + " moved=" + strconv.Itoa(moved) + "}"
}
