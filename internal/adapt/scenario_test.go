package adapt

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/scec/scec/internal/alloc"
	"github.com/scec/scec/internal/loadgen"
)

// TestScenarioRecovery is the acceptance guard for the adaptive control
// plane: the default 1000-device virtual-clock scenario (chronic 5×
// straggler at 10s, 8s outage at 20s, seed 1) must show the adaptive arm
// recovering to near-oracle steady-state tails while the frozen baseline
// stays degraded — with zero failed queries and without flapping.
func TestScenarioRecovery(t *testing.T) {
	rep, err := RunScenario(ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range []ArmResult{rep.Adaptive, rep.Frozen, rep.Oracle} {
		if arm.FailedQueries != 0 {
			t.Errorf("%s arm failed %d queries; migrations must never drop a request", arm.Name, arm.FailedQueries)
		}
		if arm.Requests == 0 {
			t.Errorf("%s arm served no requests", arm.Name)
		}
	}
	if rep.AdaptiveOverOracleP99 > 1.5 {
		t.Errorf("adaptive steady p99 is %.2f× oracle (%.1fms vs %.1fms), want ≤ 1.5×",
			rep.AdaptiveOverOracleP99, rep.Adaptive.SteadyP99Ms, rep.Oracle.SteadyP99Ms)
	}
	if rep.FrozenOverAdaptiveP99 < 2 {
		t.Errorf("frozen steady p99 is only %.2f× adaptive (%.1fms vs %.1fms), want ≥ 2×",
			rep.FrozenOverAdaptiveP99, rep.Frozen.SteadyP99Ms, rep.Adaptive.SteadyP99Ms)
	}
	if rep.Adaptive.BlocksMoved < 1 {
		t.Error("adaptive arm moved no blocks; the straggler was never evicted")
	}
	// Hysteresis: the straggler and the outage each warrant one adoption
	// (plus at most a post-outage cleanup); anything more is flapping.
	if rep.Adaptive.Adopts < 2 || rep.Adaptive.Adopts > 4 {
		t.Errorf("adaptive arm adopted %d plans, want 2–4 (one per fault, no flapping); events:\n%s",
			rep.Adaptive.Adopts, strings.Join(rep.Events, "\n"))
	}
	if rep.Adaptive.Replans < 50 {
		t.Errorf("adaptive arm ran only %d control cycles over %dms", rep.Adaptive.Replans, rep.DurationMs)
	}
	// Migration-cost awareness: evicting two faulty devices must not reshape
	// the world. The same-r preference keeps r stable and the move count a
	// handful, not O(i).
	if rep.Adaptive.FinalR != rep.Frozen.FinalR {
		t.Errorf("adaptive finalR = %d, frozen = %d; straggler eviction should not have reshaped",
			rep.Adaptive.FinalR, rep.Frozen.FinalR)
	}
	if rep.Adaptive.BlocksMoved > 8 {
		t.Errorf("adaptive arm moved %d blocks; matching should keep this to a handful", rep.Adaptive.BlocksMoved)
	}
}

// TestScenarioDeterminism pins that the report is a pure function of the
// config: two runs are bit-identical (the property adapt-check relies on).
func TestScenarioDeterminism(t *testing.T) {
	cfg := ScenarioConfig{Devices: 200, M: 1024, Duration: 20 * time.Second, QPS: 50}
	a, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same config, different reports:\n%s\n%s", ja, jb)
	}
}

// TestScenarioReshape starts the deployment at a deliberately bad coding
// parameter and disables all faults: the only thing the control plane can
// discover is that a different r is worth a full reshape — exercising the
// drain-and-swap path end to end on the virtual clock.
func TestScenarioReshape(t *testing.T) {
	cfg := ScenarioConfig{
		Devices: 200, M: 1024, Duration: 20 * time.Second, QPS: 50,
		StragglerAt: -1, OutageAt: -1,
		InitialR: 512,
	}
	// Precondition: the forced plan is genuinely bad enough to clear the
	// adoption margin against the TA2 optimum.
	base := make([]float64, 200)
	for j := range base {
		base[j] = 1 + float64(j)/199
	}
	forced, err := alloc.PlanForR(alloc.Instance{M: 1024, Costs: base}, 512)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := alloc.TA2(alloc.Instance{M: 1024, Costs: base})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Cost < opt.Cost*1.1 {
		t.Fatalf("precondition: forced r=512 costs %.1f vs optimum %.1f — not bad enough to test reshape", forced.Cost, opt.Cost)
	}

	rep, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adaptive.FailedQueries != 0 {
		t.Errorf("reshape dropped %d queries", rep.Adaptive.FailedQueries)
	}
	if rep.Adaptive.FinalR != opt.R {
		t.Errorf("adaptive finalR = %d, want the TA2 optimum %d (started at 512)", rep.Adaptive.FinalR, opt.R)
	}
	if rep.Frozen.FinalR != 512 {
		t.Errorf("frozen finalR = %d, want to stay at the forced 512", rep.Frozen.FinalR)
	}
	reshaped := false
	for _, ev := range rep.Events {
		if strings.Contains(ev, "reshape") {
			reshaped = true
		}
	}
	if !reshaped {
		t.Errorf("no reshape event; events:\n%s", strings.Join(rep.Events, "\n"))
	}
	if rep.Adaptive.FinalBaseCost >= rep.Frozen.FinalBaseCost {
		t.Errorf("reshape did not reduce the base-cost objective: adaptive %.1f vs frozen %.1f",
			rep.Adaptive.FinalBaseCost, rep.Frozen.FinalBaseCost)
	}
}

// TestScenarioReplay drives the straggler from a recorded per-device
// timeline (satellite of loadgen.Replay) instead of the built-in fault:
// the control plane must still find and evict the replayed straggler.
func TestScenarioReplay(t *testing.T) {
	replay := &loadgen.Replay{Devices: [][]loadgen.ReplayStep{
		0: {{At: 5 * time.Second, Factor: 6}},
	}}
	cfg := ScenarioConfig{
		Devices: 200, M: 1024, Duration: 30 * time.Second, QPS: 50,
		OutageAt: -1,
		Replay:   replay,
	}
	rep, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adaptive.FailedQueries+rep.Frozen.FailedQueries+rep.Oracle.FailedQueries != 0 {
		t.Error("replayed scenario dropped queries")
	}
	if rep.Adaptive.Adopts < 1 || rep.Adaptive.BlocksMoved < 1 {
		t.Errorf("replayed straggler never evicted: adopts=%d moved=%d events:\n%s",
			rep.Adaptive.Adopts, rep.Adaptive.BlocksMoved, strings.Join(rep.Events, "\n"))
	}
	if rep.AdaptiveOverOracleP99 > 1.5 {
		t.Errorf("adaptive steady p99 is %.2f× oracle under replay, want ≤ 1.5×", rep.AdaptiveOverOracleP99)
	}
	if rep.FrozenOverAdaptiveP99 < 2 {
		t.Errorf("frozen steady p99 is only %.2f× adaptive under replay, want ≥ 2×", rep.FrozenOverAdaptiveP99)
	}
}

func TestScenarioRejectsInvalidReplay(t *testing.T) {
	_, err := RunScenario(ScenarioConfig{Replay: &loadgen.Replay{Devices: [][]loadgen.ReplayStep{
		{{At: time.Second, Factor: 1}, {At: 0, Factor: 2}}, // out of order
	}}})
	if err == nil {
		t.Error("out-of-order replay accepted")
	}
}
