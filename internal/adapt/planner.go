package adapt

import (
	"fmt"
	"math"
	"time"

	"github.com/scec/scec/internal/alloc"
)

// Host is one candidate device in the planner's fixed pool: an address plus
// its provisioning-time base unit cost.
type Host struct {
	Addr string  `json:"addr"`
	Base float64 `json:"base"`
}

// BlockHost is one logical block's live placement: the device serving it and
// the coded rows it holds.
type BlockHost struct {
	Block int    `json:"block"`
	Addr  string `json:"addr"`
	Rows  int    `json:"rows"`
}

// Move is one block migration an adopted plan requires.
type Move struct {
	Block int    `json:"block"`
	From  string `json:"from"`
	To    string `json:"to"`
}

// Decision is the outcome of one control cycle: the candidate TA2 plan on
// the learned costs, how it compares to the live placement at the same
// prices, and the hysteresis verdict.
type Decision struct {
	// At is the caller-clock time of the cycle.
	At time.Duration `json:"atNs"`
	// R and I are the candidate plan's coding parameter and device count.
	R int `json:"r"`
	I int `json:"i"`
	// CandidateCost is the TA2 optimum at the learned costs; CurrentCost is
	// the live placement priced at the same learned costs.
	CandidateCost float64 `json:"candidateCost"`
	CurrentCost   float64 `json:"currentCost"`
	// Adopt is the verdict; Reason explains it either way.
	Adopt  bool   `json:"adopt"`
	Reason string `json:"reason"`
	// Reshape is set when adoption requires changing r (a drain-and-swap of
	// the whole deployment rather than per-block rehosts).
	Reshape bool `json:"reshape,omitempty"`
	// Target is the adopted per-block host assignment in scheme order
	// (length = candidate I); nil when not adopted.
	Target []string `json:"target,omitempty"`
	// Moves lists the block rehosts that realize Target from the current
	// placement (empty for a reshape, which moves everything by definition).
	Moves []Move `json:"moves,omitempty"`
	// Learned is the per-host learned unit cost, in pool order.
	Learned []float64 `json:"-"`
}

// Planner re-runs TA2 over a fixed host pool with learned costs and applies
// hysteresis against the live placement. It is deterministic and clock-free;
// the controller (or the virtual-clock scenario) supplies timestamps.
type Planner struct {
	m          int
	hosts      []Host
	index      map[string]int
	minImprove float64
	cooldown   time.Duration

	lastAdopt time.Duration
	adopted   bool
}

// NewPlanner builds a planner for an m-row deployment over the given host
// pool. The pool is every device the control plane may ever use — current
// hosts plus standbys — and stays fixed for the planner's lifetime so learned
// costs and plans always refer to the same devices.
func NewPlanner(m int, hosts []Host, minImprove float64, cooldown time.Duration) (*Planner, error) {
	if m < 1 {
		return nil, fmt.Errorf("adapt: planner needs m >= 1, got %d", m)
	}
	if len(hosts) < 2 {
		return nil, fmt.Errorf("adapt: planner needs at least 2 hosts, got %d", len(hosts))
	}
	if minImprove <= 0 {
		minImprove = DefaultMinImprovement
	}
	index := make(map[string]int, len(hosts))
	for j, h := range hosts {
		if h.Addr == "" {
			return nil, fmt.Errorf("adapt: host %d has an empty address", j)
		}
		if _, dup := index[h.Addr]; dup {
			return nil, fmt.Errorf("adapt: host %s appears twice in the pool", h.Addr)
		}
		if h.Base <= 0 || math.IsInf(h.Base, 0) || math.IsNaN(h.Base) {
			return nil, fmt.Errorf("adapt: host %s has invalid base cost %g", h.Addr, h.Base)
		}
		index[h.Addr] = j
	}
	return &Planner{m: m, hosts: hosts, index: index, minImprove: minImprove, cooldown: cooldown}, nil
}

// Hosts returns the fixed candidate pool.
func (p *Planner) Hosts() []Host { return p.hosts }

// Learned computes the per-host learned unit costs: base × factor, with
// missing factors neutral and everything clamped to finite positive values
// (the allocation problem rejects zero, negative, or infinite costs).
func (p *Planner) Learned(factors map[string]float64) []float64 {
	costs := make([]float64, len(p.hosts))
	for j, h := range p.hosts {
		f := 1.0
		if v, ok := factors[h.Addr]; ok && v > 0 {
			f = v
		}
		c := h.Base * f
		if !(c > 0) || math.IsInf(c, 0) || math.IsNaN(c) {
			c = h.Base
		}
		costs[j] = c
	}
	return costs
}

// Decide runs one control cycle: TA2 on the learned costs, then hysteresis
// against the live placement priced at the same costs. urgent (an unhealthy
// incumbent device) bypasses the cooldown, never the improvement margin.
func (p *Planner) Decide(now time.Duration, factors map[string]float64, current []BlockHost, urgent bool) (Decision, error) {
	d := Decision{At: now}
	d.Learned = p.Learned(factors)
	in := alloc.Instance{M: p.m, Costs: d.Learned}
	cand, err := alloc.TA2(in)
	if err != nil {
		return d, fmt.Errorf("adapt: replan: %w", err)
	}

	currentCost := 0.0
	currentR := 0
	for _, b := range current {
		j, ok := p.index[b.Addr]
		if !ok {
			return d, fmt.Errorf("adapt: block %d lives on %s, which is outside the planner's pool", b.Block, b.Addr)
		}
		currentCost += float64(b.Rows) * d.Learned[j]
		if b.Rows > currentR {
			currentR = b.Rows
		}
	}
	d.CurrentCost = currentCost

	// Prefer the best same-r plan when it is within the hysteresis margin of
	// the unconstrained optimum: a same-r adoption moves only the displaced
	// blocks (cheap rehosts), while a changed r reshapes the whole
	// deployment. The margin keeps this migration-cost awareness from ever
	// costing more than one adoption threshold's worth of objective.
	if currentR > 0 && cand.R != currentR {
		if sameR, err := alloc.PlanForR(in, currentR); err == nil && sameR.Cost <= cand.Cost*(1+p.minImprove) {
			cand = sameR
		}
	}
	d.R, d.I = cand.R, cand.I
	d.CandidateCost = cand.Cost

	if len(current) == 0 {
		d.Adopt = true
		d.Reason = "initial plan"
		d.Target = p.match(cand, current)
		p.lastAdopt, p.adopted = now, true
		return d, nil
	}

	// The largest block holds exactly r rows in the Lemma 2 shape, so the
	// live r is readable off the placement.
	d.Reshape = cand.R != currentR || cand.I != len(current)

	if d.CandidateCost > (1-p.minImprove)*currentCost {
		d.Reason = fmt.Sprintf("held: improvement %.1f%% below %.1f%% threshold",
			100*(1-d.CandidateCost/math.Max(currentCost, math.SmallestNonzeroFloat64)), 100*p.minImprove)
		return d, nil
	}
	if !urgent && p.adopted && now-p.lastAdopt < p.cooldown {
		d.Reason = fmt.Sprintf("held: cooldown (%v since last adoption)", now-p.lastAdopt)
		return d, nil
	}

	d.Target = p.match(cand, current)
	if !d.Reshape {
		for _, b := range current {
			if d.Target[b.Block] != b.Addr {
				d.Moves = append(d.Moves, Move{Block: b.Block, From: b.Addr, To: d.Target[b.Block]})
			}
		}
		if len(d.Moves) == 0 {
			d.Adopt = false
			d.Target = nil
			d.Reason = "held: placement already optimal"
			return d, nil
		}
	}
	d.Adopt = true
	if urgent {
		d.Reason = fmt.Sprintf("adopted: %.1f%% improvement (urgent: unhealthy host)", 100*(1-d.CandidateCost/currentCost))
	} else {
		d.Reason = fmt.Sprintf("adopted: %.1f%% improvement", 100*(1-d.CandidateCost/currentCost))
	}
	p.lastAdopt, p.adopted = now, true
	return d, nil
}

// match maps the candidate plan's blocks onto pool addresses while moving as
// few blocks as possible. Blocks holding the same row count are
// interchangeable across the plan's hosts (any bijection realizes the same
// cost, and Def. 2 security only needs one block per device), so each block
// keeps its current device whenever that device appears in the candidate
// plan with a matching row count; only the remainder moves. The result is in
// scheme block order.
func (p *Planner) match(cand alloc.Plan, current []BlockHost) []string {
	target := make([]string, len(cand.Assignments))
	// wanted[rows] lists candidate hosts for that row count, plan order.
	wanted := make(map[int][]int, 2)
	for _, a := range cand.Assignments {
		wanted[a.Rows] = append(wanted[a.Rows], a.Device)
	}
	curAddr := make(map[int]string, len(current)) // block → live host
	for _, b := range current {
		curAddr[b.Block] = b.Addr
	}
	// First pass: keep blocks in place where the live host is wanted at the
	// same row count.
	taken := make(map[int]bool, len(cand.Assignments))
	for b, a := range cand.Assignments {
		addr, ok := curAddr[b]
		if !ok {
			continue
		}
		j, known := p.index[addr]
		if !known {
			continue
		}
		for _, dev := range wanted[a.Rows] {
			if dev == j && !taken[j] {
				target[b] = addr
				taken[j] = true
				break
			}
		}
	}
	// Second pass: assign the remaining blocks to the remaining wanted
	// hosts of their row class, in plan (cheapest-first) order.
	for b, a := range cand.Assignments {
		if target[b] != "" {
			continue
		}
		for _, dev := range wanted[a.Rows] {
			if !taken[dev] {
				target[b] = p.hosts[dev].Addr
				taken[dev] = true
				break
			}
		}
	}
	return target
}
