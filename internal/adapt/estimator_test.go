package adapt

import (
	"math"
	"testing"
	"time"
)

// feedNominal gives every listed device `n` identical per-row observations so
// the fleet median is well defined.
func feedNominal(e *Estimator, devs []string, n int, perRow time.Duration, rows int) {
	for i := 0; i < n; i++ {
		for _, d := range devs {
			e.ObserveLatency(d, time.Duration(i)*time.Second, perRow*time.Duration(rows), rows)
		}
	}
}

func TestEstimatorNeutralBelowMinSamples(t *testing.T) {
	e := NewEstimator(0.3, 3, 64)
	e.ObserveLatency("a", 0, 10*time.Millisecond, 1)
	e.ObserveLatency("b", 0, 500*time.Millisecond, 1)
	f := e.Factors()
	if f["a"] != 1 || f["b"] != 1 {
		t.Fatalf("factors before MinSamples should be neutral, got %v", f)
	}
}

func TestEstimatorStragglerFactor(t *testing.T) {
	e := NewEstimator(0.5, 3, 64)
	devs := []string{"a", "b", "c", "d"}
	feedNominal(e, devs, 5, 10*time.Millisecond, 4)
	// Device "e" is chronically 5× slower per row.
	feedNominal(e, []string{"e"}, 5, 50*time.Millisecond, 4)
	f := e.Factors()
	if got := f["e"]; math.Abs(got-5) > 0.01 {
		t.Fatalf("straggler factor = %g, want ≈5", got)
	}
	for _, d := range devs {
		if math.Abs(f[d]-1) > 0.01 {
			t.Fatalf("nominal device %s factor = %g, want ≈1", d, f[d])
		}
	}
}

func TestEstimatorRowNormalization(t *testing.T) {
	e := NewEstimator(0.5, 2, 64)
	// Same per-row speed, different block sizes: factors must agree.
	feedNominal(e, []string{"big"}, 4, 10*time.Millisecond, 100)
	feedNominal(e, []string{"small"}, 4, 10*time.Millisecond, 10)
	f := e.Factors()
	if math.Abs(f["big"]-f["small"]) > 1e-9 {
		t.Fatalf("row-normalized factors differ: big=%g small=%g", f["big"], f["small"])
	}
}

func TestEstimatorRTTDominates(t *testing.T) {
	e := NewEstimator(0.5, 2, 64)
	devs := []string{"a", "b", "c"}
	feedNominal(e, devs, 3, 10*time.Millisecond, 1)
	for i := 0; i < 3; i++ {
		for _, d := range devs {
			e.ObserveRTT(d, 0, 2*time.Millisecond)
		}
	}
	// "c" computes at the median but its link is 8× slower: the factor is
	// the pessimistic max of the two ratios.
	for i := 0; i < 3; i++ {
		e.ObserveRTT("c", 0, 16*time.Millisecond)
	}
	f := e.Factors()
	if f["c"] < 4 {
		t.Fatalf("RTT-degraded device factor = %g, want > 4", f["c"])
	}
}

func TestEstimatorClamp(t *testing.T) {
	e := NewEstimator(1, 1, 8)
	feedNominal(e, []string{"a", "b", "c"}, 2, 10*time.Millisecond, 1)
	feedNominal(e, []string{"slow"}, 2, 10*time.Second, 1)
	feedNominal(e, []string{"fast"}, 2, time.Nanosecond, 1)
	f := e.Factors()
	if f["slow"] != 8 {
		t.Fatalf("slow factor = %g, want clamped to 8", f["slow"])
	}
	if f["fast"] != 1.0/8 {
		t.Fatalf("fast factor = %g, want clamped to 1/8", f["fast"])
	}
}

func TestEstimatorEWMAConverges(t *testing.T) {
	e := NewEstimator(0.5, 1, 64)
	// First sample seeds the EWMA; a step change converges geometrically.
	e.ObserveLatency("a", 0, 10*time.Millisecond, 1)
	for i := 0; i < 20; i++ {
		e.ObserveLatency("a", 0, 40*time.Millisecond, 1)
	}
	snap := e.Snapshot()
	if len(snap) != 1 || snap[0].Device != "a" {
		t.Fatalf("snapshot = %+v", snap)
	}
	got := time.Duration(snap[0].PerRowNs)
	if got < 39*time.Millisecond || got > 40*time.Millisecond {
		t.Fatalf("EWMA per-row = %v, want ≈40ms after convergence", got)
	}
}

func TestEstimatorSnapshotSorted(t *testing.T) {
	e := NewEstimator(0.5, 1, 64)
	for _, d := range []string{"z", "m", "a"} {
		e.ObserveLatency(d, 0, time.Millisecond, 1)
	}
	snap := e.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Device >= snap[i].Device {
			t.Fatalf("snapshot not sorted: %+v", snap)
		}
	}
}
