package adapt

import (
	"encoding/json"
	"net/http"

	"github.com/scec/scec/internal/obs"
)

// DebugInfo is the control plane's live snapshot, served as JSON at
// /debug/adapt.
type DebugInfo struct {
	// NowMs is the controller clock (elapsed since construction).
	NowMs int64 `json:"nowMs"`
	// Replans/Adopts/BlocksMoved are lifetime counters.
	Replans     int `json:"replans"`
	Adopts      int `json:"adopts"`
	BlocksMoved int `json:"blocksMoved"`
	// Estimates is the estimator's per-device state, sorted by address.
	Estimates []DeviceEstimate `json:"estimates"`
	// Placements is the live block → device assignment.
	Placements []BlockHost `json:"placements"`
	// Free lists devices currently eligible to receive a block.
	Free []string `json:"free"`
	// Decisions is the bounded plan history, oldest first.
	Decisions []Decision `json:"decisions"`
	// Events is the bounded migration history, oldest first.
	Events []MigrationEvent `json:"events"`
}

// Debug snapshots the controller.
func (c *Controller) Debug() DebugInfo {
	info := DebugInfo{
		NowMs:      c.Now().Milliseconds(),
		Estimates:  c.est.Snapshot(),
		Placements: c.sub.Placements(),
		Free:       c.sub.Free(),
	}
	c.mu.Lock()
	info.Replans, info.Adopts, info.BlocksMoved = c.replans, c.adopts, c.moved
	info.Decisions = append([]Decision(nil), c.decisions...)
	info.Events = append([]MigrationEvent(nil), c.events...)
	c.mu.Unlock()
	return info
}

// DebugHandler serves Debug() as JSON; mount it as /debug/adapt.
func (c *Controller) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obs.JSONHeaders(w)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.Debug())
	})
}
