// Package adapt is the closed-loop adaptive control plane over a deployed
// MCSCEC fleet: it learns per-device costs from live signals, re-runs the
// paper's allocation on what it learned, and migrates coded blocks while
// queries keep flowing.
//
// The paper's TA1/TA2 allocation (Algorithms 1–2) is solved once, against
// unit costs assumed known and stationary. Real edge fleets drift: devices
// straggle chronically, links degrade, machines disappear. This package adds
// the feedback loop the paper's §VI leaves to future work, without touching
// its optimality or security arguments — the loop only changes *which*
// instance is solved and *where* blocks live, never how they are coded:
//
//   - an Estimator folds the fleet's straggler digest (winning-attempt
//     latencies) and the transport's heartbeat round trips into per-device
//     EWMA cost multipliers over the provisioning-time base costs;
//   - a Planner periodically re-runs TA2 on the learned costs and applies
//     hysteresis — a candidate plan is adopted only when it beats the
//     incumbent, evaluated at the same learned costs, by a configurable
//     margin, outside a cooldown window — so noise cannot flap the fleet;
//   - a Controller executes adopted plans live. A plan with the same r is a
//     set of block moves: each block is re-pushed to its new device and the
//     replica sets swap atomically (fleet.Rehost), with moves scheduled so a
//     destination is always free. A plan with a different r reshapes the
//     whole deployment: new rounds park on a gate, in-flight rounds drain,
//     the data matrix is reconstructed and re-encoded at the new r, and the
//     fresh fleet session swaps in (engine.Swappable.SwapDrained) — no
//     query is ever failed by a migration.
//
// Security is preserved by construction. A rehost moves B_j·T verbatim, so
// every device's view stays the single-block view of Def. 2 (the fleet layer
// additionally refuses a destination that already hosts another block). A
// reshape generates a fresh Eq. (8) encoding with fresh randomness, which is
// exactly a new deployment.
package adapt

import (
	"time"

	"github.com/scec/scec/internal/obs"
	"github.com/scec/scec/internal/obs/flight"
	"github.com/scec/scec/internal/obs/trace"
)

// Defaults for zero Config fields.
const (
	DefaultReplanEvery    = 2 * time.Second
	DefaultAlpha          = 0.3
	DefaultMinSamples     = 3
	DefaultMaxFactor      = 64.0
	DefaultOutageFactor   = 256.0
	DefaultMinImprovement = 0.05
	DefaultMigrateTimeout = 30 * time.Second
	DefaultHistory        = 64
)

// Config tunes the adaptive control plane. The zero value of every field
// selects the package default.
type Config struct {
	// ReplanEvery is the control period: how often the estimator snapshot is
	// taken and TA2 re-runs on the learned costs.
	ReplanEvery time.Duration
	// Alpha is the EWMA weight of a new latency/RTT sample (0 < Alpha ≤ 1).
	Alpha float64
	// MinSamples is how many winning-attempt samples a device needs before
	// its learned factor is trusted; below it the device is assumed nominal
	// (factor 1), so fresh standbys are attractive migration targets.
	MinSamples int
	// MaxFactor clamps a device's learned cost multiplier.
	MaxFactor float64
	// OutageFactor is the multiplier assigned to a device whose circuit
	// breaker is open. It is large but finite: the allocation problem
	// requires finite positive costs, and a finite penalty still lets TA2
	// use a dead-but-cheap device if literally nothing else can serve.
	OutageFactor float64
	// MinImprovement is the hysteresis margin: a candidate plan is adopted
	// only if its cost is at least this fraction below the incumbent's cost
	// at the same learned prices.
	MinImprovement float64
	// Cooldown is the minimum interval between adoptions. Zero selects
	// 3×ReplanEvery. An unhealthy incumbent device bypasses the cooldown
	// (but never the improvement margin).
	Cooldown time.Duration
	// MigrateTimeout bounds the execution of one adopted plan end to end.
	MigrateTimeout time.Duration
	// History is how many decisions and migration events the controller
	// retains for /debug/adapt.
	History int
	// BaseCosts maps device addresses to their provisioning-time unit costs
	// c_j; the learned cost is base×factor. Missing addresses default to 1,
	// so a nil map means "learn relative costs from scratch".
	BaseCosts map[string]float64
	// Metrics receives scec_adapt_* telemetry; nil means obs.Default().
	Metrics *obs.Registry
	// Tracer, when non-nil, records one adapt.replan span per control cycle
	// and one adapt.migrate span per executed migration.
	Tracer *trace.Tracer
	// Journal receives the controller's flight-recorder events (replan
	// adopt/hold, reshape outcomes); nil means flight.Default().
	Journal *flight.Journal
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.ReplanEvery <= 0 {
		c.ReplanEvery = DefaultReplanEvery
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.MaxFactor <= 1 {
		c.MaxFactor = DefaultMaxFactor
	}
	if c.OutageFactor <= 1 {
		c.OutageFactor = DefaultOutageFactor
	}
	if c.MinImprovement <= 0 {
		c.MinImprovement = DefaultMinImprovement
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3 * c.ReplanEvery
	}
	if c.MigrateTimeout <= 0 {
		c.MigrateTimeout = DefaultMigrateTimeout
	}
	if c.History <= 0 {
		c.History = DefaultHistory
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	if c.Journal == nil {
		c.Journal = flight.Default()
	}
	return c
}
